// Golden round-trip tests of SaveSnapshot/LoadSnapshot: a loaded scenario
// must be bit-identical to the one that was saved — same label bits, same
// TODAM trips, same answers — across both city families, both read modes,
// and chains of POI-edit epochs. The byte-identity re-export check
// (save -> load -> save produces the same file) covers every stored field
// at once; the semantic checks pin the parts queries actually consume.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/labeling.h"
#include "router/router.h"
#include "serve/scenario.h"
#include "serve/server.h"
#include "store/snapshot.h"
#include "testing/test_city.h"

namespace staq::store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "staq_snapshot_" + name;
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

serve::LabelKey SchoolKey() {
  serve::LabelKey key;
  key.category = synth::PoiCategory::kSchool;
  key.gravity.sample_rate_per_hour = 4;
  key.gravity.keep_scale = 2.0;
  key.seed = 3;
  return key;
}

serve::LabelKey VaxGacKey() {
  serve::LabelKey key = SchoolKey();
  key.category = synth::PoiCategory::kVaxCenter;
  key.cost = core::CostKind::kGeneralizedCost;
  key.seed = 7;
  return key;
}

/// Per-thread labeling context for materialising states in tests.
struct Labeler {
  explicit Labeler(const synth::City* city)
      : router(&city->feed, {}), engine(city, &router) {}
  router::Router router;
  core::LabelingEngine engine;
};

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void ExpectBitIdenticalDoubles(const std::vector<double>& a,
                               const std::vector<double>& b,
                               const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(Bits(a[i]), Bits(b[i])) << what << "[" << i << "]";
  }
}

void ExpectSameState(const serve::ExactLabelState& a,
                     const serve::ExactLabelState& b) {
  ASSERT_EQ(a.pois.size(), b.pois.size());
  for (size_t i = 0; i < a.pois.size(); ++i) {
    EXPECT_EQ(a.pois[i].id, b.pois[i].id);
    EXPECT_EQ(a.pois[i].category, b.pois[i].category);
    EXPECT_EQ(Bits(a.pois[i].position.x), Bits(b.pois[i].position.x));
    EXPECT_EQ(Bits(a.pois[i].position.y), Bits(b.pois[i].position.y));
  }
  ExpectBitIdenticalDoubles(a.zone_norm, b.zone_norm, "zone_norm");
  ASSERT_EQ(a.todam.num_zones(), b.todam.num_zones());
  EXPECT_EQ(a.todam.num_trips(), b.todam.num_trips());
  for (size_t z = 0; z < a.todam.num_zones(); ++z) {
    EXPECT_EQ(a.todam.TripsFor(static_cast<uint32_t>(z)),
              b.todam.TripsFor(static_cast<uint32_t>(z)))
        << "zone " << z;
  }
  ASSERT_EQ(a.todam.alpha().size(), b.todam.alpha().size());
  for (size_t z = 0; z < a.todam.alpha().size(); ++z) {
    ExpectBitIdenticalDoubles(a.todam.alpha()[z], b.todam.alpha()[z], "alpha");
  }
  ASSERT_EQ(a.labels.size(), b.labels.size());
  for (size_t z = 0; z < a.labels.size(); ++z) {
    EXPECT_EQ(Bits(a.labels[z].mac), Bits(b.labels[z].mac)) << "zone " << z;
    EXPECT_EQ(Bits(a.labels[z].acsd), Bits(b.labels[z].acsd)) << "zone " << z;
    EXPECT_EQ(a.labels[z].num_trips, b.labels[z].num_trips);
    EXPECT_EQ(a.labels[z].num_infeasible, b.labels[z].num_infeasible);
    EXPECT_EQ(a.labels[z].num_walk_only, b.labels[z].num_walk_only);
  }
  EXPECT_EQ(a.build_spqs, b.build_spqs);
  EXPECT_EQ(a.relabeled_zones, b.relabeled_zones);
}

/// Finds `key`'s state in a MaterializedStates() listing.
std::shared_ptr<const serve::ExactLabelState> StateFor(
    const serve::Scenario& scenario, const serve::LabelKey& key) {
  for (const auto& [k, state] : scenario.MaterializedStates()) {
    if (k.Canonical() == key.Canonical()) return state;
  }
  return nullptr;
}

TEST(SnapshotRoundTrip, TinyCityBitIdentical) {
  serve::ScenarioStore store(testing::TinyCity(), gtfs::WeekdayAmPeak());
  Labeler labeler(&store.base_city());
  auto scenario = store.Acquire();
  scenario->GetOrBuildLabelState(SchoolKey(), &labeler.engine);
  scenario->GetOrBuildLabelState(VaxGacKey(), &labeler.engine);

  const std::string path = TempPath("tiny.staq");
  ASSERT_TRUE(store.ExportSnapshot(path).ok());
  ASSERT_TRUE(VerifySnapshot(path).ok());

  auto restored = LoadSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  const serve::RestoredScenario& r = restored.value();

  // City and feed shape.
  const synth::City& original = store.base_city();
  EXPECT_EQ(r.city->spec.name, original.spec.name);
  EXPECT_EQ(r.city->spec.seed, original.spec.seed);
  EXPECT_EQ(r.city->zones.size(), original.zones.size());
  EXPECT_EQ(r.city->pois.size(), original.pois.size());
  EXPECT_EQ(r.city->feed.stops().size(), original.feed.stops().size());
  EXPECT_EQ(r.city->feed.trips().size(), original.feed.trips().size());
  EXPECT_EQ(r.city->feed.stop_times().size(),
            original.feed.stop_times().size());
  for (size_t z = 0; z < original.zones.size(); ++z) {
    EXPECT_EQ(Bits(r.city->zones[z].population),
              Bits(original.zones[z].population));
    EXPECT_EQ(Bits(r.city->zones[z].vulnerability),
              Bits(original.zones[z].vulnerability));
  }

  // Both label states came back bit-identically.
  ASSERT_EQ(r.label_states.size(), 2u);
  for (const serve::LabelKey& key : {SchoolKey(), VaxGacKey()}) {
    auto original_state = StateFor(*scenario, key);
    ASSERT_NE(original_state, nullptr);
    std::shared_ptr<const serve::ExactLabelState> loaded;
    for (const auto& [k, state] : r.label_states) {
      if (k.Canonical() == key.Canonical()) loaded = state;
    }
    ASSERT_NE(loaded, nullptr) << key.Canonical();
    ExpectSameState(*original_state, *loaded);
  }

  // Strongest check: standing the restored scenario up and re-exporting
  // must reproduce the file byte for byte.
  serve::ScenarioStore restored_store(std::move(restored).value());
  const std::string path2 = TempPath("tiny_reexport.staq");
  ASSERT_TRUE(restored_store.ExportSnapshot(path2).ok());
  EXPECT_EQ(ReadFile(path), ReadFile(path2));

  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(SnapshotRoundTrip, BrindaleFamilyBitIdentical) {
  // The other city family: Brindale's generator exercises different route
  // topology and POI densities than Covely, so its columns (and their
  // delta patterns) are a genuinely different encode/decode workload.
  auto built = synth::BuildCity(synth::CitySpec::Brindale(0.05, 11));
  ASSERT_TRUE(built.ok()) << built.status();
  serve::ScenarioStore store(std::move(built).value(), gtfs::WeekdayAmPeak());
  Labeler labeler(&store.base_city());
  auto scenario = store.Acquire();
  scenario->GetOrBuildLabelState(SchoolKey(), &labeler.engine);

  const std::string path = TempPath("brindale.staq");
  ASSERT_TRUE(store.ExportSnapshot(path).ok());
  auto restored = LoadSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status();

  auto original_state = StateFor(*scenario, SchoolKey());
  ASSERT_NE(original_state, nullptr);
  ASSERT_EQ(restored.value().label_states.size(), 1u);
  ExpectSameState(*original_state, *restored.value().label_states[0].second);

  serve::ScenarioStore restored_store(std::move(restored).value());
  const std::string path2 = TempPath("brindale_reexport.staq");
  ASSERT_TRUE(restored_store.ExportSnapshot(path2).ok());
  EXPECT_EQ(ReadFile(path), ReadFile(path2));
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(SnapshotRoundTrip, SaveIsDeterministic) {
  serve::ScenarioStore store(testing::TinyCity(), gtfs::WeekdayAmPeak());
  Labeler labeler(&store.base_city());
  store.Acquire()->GetOrBuildLabelState(SchoolKey(), &labeler.engine);

  const std::string a = TempPath("det_a.staq");
  const std::string b = TempPath("det_b.staq");
  ASSERT_TRUE(store.ExportSnapshot(a).ok());
  ASSERT_TRUE(store.ExportSnapshot(b).ok());
  EXPECT_EQ(ReadFile(a), ReadFile(b));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(SnapshotRoundTrip, SmallCityBothReadModesAgree) {
  serve::ScenarioStore store(testing::SmallCity(), gtfs::SundayMorning());
  Labeler labeler(&store.base_city());
  store.Acquire()->GetOrBuildLabelState(SchoolKey(), &labeler.engine);

  const std::string path = TempPath("small.staq");
  ASSERT_TRUE(store.ExportSnapshot(path).ok());

  Reader::Options buffered;
  buffered.mode = Reader::Mode::kBuffered;
  auto via_mmap = LoadSnapshot(path);
  auto via_buffer = LoadSnapshot(path, buffered);
  ASSERT_TRUE(via_mmap.ok()) << via_mmap.status();
  ASSERT_TRUE(via_buffer.ok()) << via_buffer.status();
  ASSERT_EQ(via_mmap.value().label_states.size(), 1u);
  ASSERT_EQ(via_buffer.value().label_states.size(), 1u);
  ExpectSameState(*via_mmap.value().label_states[0].second,
                  *via_buffer.value().label_states[0].second);
  EXPECT_EQ(via_mmap.value().next_poi_id, via_buffer.value().next_poi_id);
  std::remove(path.c_str());
}

TEST(SnapshotRoundTrip, ChainedPoiEditEpochs) {
  serve::ScenarioStore store(testing::TinyCity(), gtfs::WeekdayAmPeak());
  Labeler labeler(&store.base_city());
  store.Acquire()->GetOrBuildLabelState(SchoolKey(), &labeler.engine);

  // Drive a chain of edits so the exported state is a patched descendant,
  // not a fresh build: add two schools, remove the first again.
  const geo::BBox& extent = store.base_city().extent;
  geo::Point p1{extent.min_x + 0.3 * (extent.max_x - extent.min_x),
                extent.min_y + 0.4 * (extent.max_y - extent.min_y)};
  geo::Point p2{extent.min_x + 0.7 * (extent.max_x - extent.min_x),
                extent.min_y + 0.6 * (extent.max_y - extent.min_y)};
  auto add1 = store.AddPoi(synth::PoiCategory::kSchool, p1);
  auto add2 = store.AddPoi(synth::PoiCategory::kSchool, p2);
  auto removed = store.RemovePoi(add1.poi_id);
  ASSERT_TRUE(removed.ok()) << removed.status();
  ASSERT_EQ(store.epoch(), 3u);

  const std::string path = TempPath("chained.staq");
  ASSERT_TRUE(store.ExportSnapshot(path).ok());
  auto restored = LoadSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value().source_epoch, 3u);

  auto live = store.Acquire();
  {
    auto original_state = StateFor(*live, SchoolKey());
    ASSERT_NE(original_state, nullptr);
    ASSERT_EQ(restored.value().label_states.size(), 1u);
    ExpectSameState(*original_state,
                    *restored.value().label_states[0].second);
  }

  // The POI id cursor must survive: the same follow-up edit on the live
  // store and the restored store must assign the same stable id and patch
  // to bit-identical states (stable-id-keyed RNG streams).
  serve::ScenarioStore restored_store(std::move(restored).value());
  EXPECT_EQ(restored_store.epoch(), 0u);
  auto live_add = store.AddPoi(synth::PoiCategory::kSchool, p1);
  auto restored_add = restored_store.AddPoi(synth::PoiCategory::kSchool, p1);
  EXPECT_EQ(live_add.poi_id, restored_add.poi_id);
  EXPECT_GT(restored_add.poi_id, add2.poi_id);

  auto live_state = StateFor(*store.Acquire(), SchoolKey());
  auto restored_state = StateFor(*restored_store.Acquire(), SchoolKey());
  ASSERT_NE(live_state, nullptr);
  ASSERT_NE(restored_state, nullptr);
  ExpectSameState(*live_state, *restored_state);
  std::remove(path.c_str());
}

TEST(SnapshotRoundTrip, InspectReportsTheFile) {
  serve::ScenarioStore store(testing::TinyCity(), gtfs::WeekdayAmPeak());
  Labeler labeler(&store.base_city());
  store.Acquire()->GetOrBuildLabelState(SchoolKey(), &labeler.engine);

  const std::string path = TempPath("inspect.staq");
  ASSERT_TRUE(store.ExportSnapshot(path).ok());
  auto info = InspectSnapshot(path);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info.value().format_version, kFormatVersion);
  EXPECT_EQ(info.value().city_name, store.base_city().spec.name);
  EXPECT_EQ(info.value().interval_label, gtfs::WeekdayAmPeak().label);
  EXPECT_EQ(info.value().num_zones, store.base_city().zones.size());
  EXPECT_EQ(info.value().num_pois, store.base_city().pois.size());
  EXPECT_EQ(info.value().num_label_states, 1u);
  EXPECT_FALSE(info.value().sections.empty());
  EXPECT_EQ(info.value().file_size, ReadFile(path).size());
  std::remove(path.c_str());
}

TEST(SnapshotWarmStart, ServerAnswersBitIdenticallyToColdBuild) {
  serve::AqServer::Options cold_options;
  cold_options.num_threads = 2;
  serve::AqServer cold(testing::TinyCity(), gtfs::WeekdayAmPeak(),
                       cold_options);

  serve::AqRequest request;
  request.category = synth::PoiCategory::kSchool;
  request.options.exact = true;
  request.options.gravity.sample_rate_per_hour = 4;
  request.options.gravity.keep_scale = 2.0;
  request.options.seed = 3;
  auto cold_answer = cold.Query(request);
  ASSERT_TRUE(cold_answer.ok()) << cold_answer.status();

  const std::string path = TempPath("warm.staq");
  ASSERT_TRUE(cold.ExportSnapshot(path).ok());

  serve::AqServer::Options warm_options = cold_options;
  warm_options.warm_start_path = path;
  serve::AqServer warm(testing::TinyCity(), gtfs::WeekdayAmPeak(),
                       warm_options);
  ASSERT_TRUE(warm.warm_started());
  EXPECT_EQ(warm.epoch(), 0u);

  auto warm_answer = warm.Query(request);
  ASSERT_TRUE(warm_answer.ok()) << warm_answer.status();
  ASSERT_EQ(warm_answer.value().mac.size(), cold_answer.value().mac.size());
  for (size_t z = 0; z < cold_answer.value().mac.size(); ++z) {
    EXPECT_EQ(Bits(warm_answer.value().mac[z]),
              Bits(cold_answer.value().mac[z]))
        << "zone " << z;
    EXPECT_EQ(Bits(warm_answer.value().acsd[z]),
              Bits(cold_answer.value().acsd[z]))
        << "zone " << z;
  }
  EXPECT_EQ(warm_answer.value().gravity_trips,
            cold_answer.value().gravity_trips);

  // The warm-started server is a full server: mutations and further
  // queries keep working on top of the restored epoch.
  const geo::BBox& extent = warm.base_city().extent;
  auto report = warm.AddPoi(
      synth::PoiCategory::kSchool,
      geo::Point{extent.min_x + 0.5 * (extent.max_x - extent.min_x),
                 extent.min_y + 0.5 * (extent.max_y - extent.min_y)});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().epoch, 1u);
  auto after = warm.Query(request);
  ASSERT_TRUE(after.ok()) << after.status();
  std::remove(path.c_str());
}

TEST(SnapshotLoad, RejectsCorruptSnapshotsCleanly) {
  serve::ScenarioStore store(testing::TinyCity(), gtfs::WeekdayAmPeak());
  const std::string path = TempPath("corrupt.staq");
  ASSERT_TRUE(store.ExportSnapshot(path).ok());
  std::vector<uint8_t> good = ReadFile(path);

  const std::string bad = TempPath("corrupt_bad.staq");
  // Truncations at coarse stride across the whole file: LoadSnapshot must
  // fail with a clean status every time, never crash or half-build.
  for (size_t keep = 0; keep < good.size(); keep += good.size() / 37 + 1) {
    std::ofstream out(bad, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(good.data()),
              static_cast<std::streamsize>(keep));
    out.close();
    auto restored = LoadSnapshot(bad);
    ASSERT_FALSE(restored.ok()) << "kept " << keep;
    auto code = restored.status().code();
    EXPECT_TRUE(code == util::StatusCode::kInvalidArgument ||
                code == util::StatusCode::kDataLoss ||
                code == util::StatusCode::kIoError)
        << restored.status();
  }
  std::remove(bad.c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace staq::store
