// Container-level tests of the snapshot store: writer/reader round trips
// in both read modes, and the corruption-robustness guarantee — any
// truncation, bit flip, or header/trailer forgery degrades into a clean
// kInvalidArgument / kDataLoss status. Nothing in here may crash, which is
// what makes this suite worth running under ASAN/UBSAN.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "store/coding.h"
#include "store/format.h"
#include "store/reader.h"
#include "store/writer.h"
#include "util/status.h"

namespace staq::store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "staq_store_" + name;
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Writes a small three-section container and returns its path.
std::string WriteSample(const std::string& name) {
  const std::string path = TempPath(name);
  Writer writer;
  EXPECT_TRUE(writer.Open(path).ok());

  std::vector<uint8_t> ints;
  PutDeltaColumn(&ints, std::vector<uint32_t>{3, 1, 4, 1, 5, 9, 2, 6});
  EXPECT_TRUE(
      writer.AddSection("ints", SectionEncoding::kDelta, std::move(ints), 8)
          .ok());

  std::vector<uint8_t> raw;
  for (double v : {0.5, -1.25, 3e300}) PutFixed(&raw, v);
  EXPECT_TRUE(
      writer.AddSection("raw", SectionEncoding::kRaw, std::move(raw), 3).ok());

  std::vector<uint8_t> record;
  PutLengthPrefixed(&record, "hello");
  PutVarint64(&record, 42);
  EXPECT_TRUE(writer
                  .AddSection("record", SectionEncoding::kStruct,
                              std::move(record), 1)
                  .ok());
  EXPECT_TRUE(writer.Finish().ok());
  return path;
}

void ExpectSampleReads(Reader* reader) {
  auto ints = reader->Section("ints", SectionEncoding::kDelta);
  ASSERT_TRUE(ints.ok()) << ints.status();
  std::vector<uint32_t> decoded;
  ASSERT_TRUE(ReadDeltaColumn(&ints.value(), &decoded));
  EXPECT_EQ(decoded, (std::vector<uint32_t>{3, 1, 4, 1, 5, 9, 2, 6}));

  auto raw = reader->Section("raw", SectionEncoding::kRaw);
  ASSERT_TRUE(raw.ok()) << raw.status();
  std::vector<double> doubles;
  ASSERT_TRUE(raw.value().ReadFixedColumn(3, &doubles));
  EXPECT_EQ(doubles, (std::vector<double>{0.5, -1.25, 3e300}));

  auto record = reader->Section("record", SectionEncoding::kStruct);
  ASSERT_TRUE(record.ok()) << record.status();
  std::string s;
  uint64_t n;
  ASSERT_TRUE(record.value().ReadLengthPrefixed(&s));
  ASSERT_TRUE(record.value().ReadVarint64(&n));
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(n, 42u);
}

TEST(StoreRoundTrip, BothReadModes) {
  const std::string path = WriteSample("roundtrip.staq");
  for (Reader::Mode mode : {Reader::Mode::kBuffered, Reader::Mode::kMmap}) {
    Reader reader;
    Reader::Options options;
    options.mode = mode;
    ASSERT_TRUE(reader.Open(path, options).ok());
    EXPECT_EQ(reader.format_version(), kFormatVersion);
    EXPECT_EQ(reader.sections().size(), 3u);
    EXPECT_TRUE(reader.Has("ints"));
    EXPECT_FALSE(reader.Has("missing"));
    ExpectSampleReads(&reader);
    EXPECT_TRUE(reader.VerifyAllBlocks().ok());
  }
  std::remove(path.c_str());
}

TEST(StoreRoundTrip, SectionsAreAlignedAndDescribed) {
  const std::string path = WriteSample("aligned.staq");
  Reader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  for (const SectionEntry& s : reader.sections()) {
    EXPECT_EQ(s.offset % 8, 0u) << s.name;
    EXPECT_GE(s.offset, kHeaderSize) << s.name;
    // One checksum per started kBlockSize block.
    size_t blocks = s.size == 0 ? 0 : (s.size + kBlockSize - 1) / kBlockSize;
    EXPECT_EQ(s.block_checksums.size(), blocks) << s.name;
  }
  auto ints = reader.Section("ints");
  ASSERT_TRUE(ints.ok());
  std::remove(path.c_str());
}

TEST(StoreRoundTrip, EmptySectionAndEmptyContainer) {
  const std::string path = TempPath("empty.staq");
  {
    Writer writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(
        writer.AddSection("nothing", SectionEncoding::kRaw, {}, 0).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  Reader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  auto section = reader.Section("nothing");
  ASSERT_TRUE(section.ok()) << section.status();
  EXPECT_EQ(section.value().remaining(), 0u);
  std::remove(path.c_str());
}

TEST(StoreRoundTrip, MissingSectionIsNotFound) {
  const std::string path = WriteSample("missing.staq");
  Reader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  auto missing = reader.Section("no-such-section");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(StoreRoundTrip, EncodingMismatchIsRejected) {
  const std::string path = WriteSample("encoding.staq");
  Reader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  auto wrong = reader.Section("ints", SectionEncoding::kRaw);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(StoreRoundTrip, LargeSectionSpansMultipleBlocks) {
  const std::string path = TempPath("blocks.staq");
  std::vector<double> column(3 * kBlockSize / sizeof(double) + 17);
  for (size_t i = 0; i < column.size(); ++i) {
    column[i] = static_cast<double>(i) * 0.75;
  }
  {
    Writer writer;
    ASSERT_TRUE(writer.Open(path).ok());
    std::vector<uint8_t> payload(column.size() * sizeof(double));
    std::memcpy(payload.data(), column.data(), payload.size());
    ASSERT_TRUE(writer
                    .AddSection("big", SectionEncoding::kRaw,
                                std::move(payload), column.size())
                    .ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  Reader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  ASSERT_EQ(reader.sections().size(), 1u);
  EXPECT_EQ(reader.sections()[0].block_checksums.size(), 4u);
  auto section = reader.Section("big", SectionEncoding::kRaw);
  ASSERT_TRUE(section.ok());
  std::vector<double> out;
  ASSERT_TRUE(section.value().ReadFixedColumn(column.size(), &out));
  EXPECT_EQ(out, column);
  std::remove(path.c_str());
}

// --- corruption robustness --------------------------------------------------

bool IsCleanFailure(const util::Status& status) {
  return !status.ok() &&
         (status.code() == util::StatusCode::kInvalidArgument ||
          status.code() == util::StatusCode::kDataLoss ||
          status.code() == util::StatusCode::kIoError);
}

TEST(StoreCorruption, NonexistentEmptyAndTinyFiles) {
  Reader reader;
  EXPECT_TRUE(IsCleanFailure(reader.Open(TempPath("does_not_exist.staq"))));

  const std::string path = TempPath("tiny.staq");
  for (size_t size : {0, 1, 8, 15, 16, 23, 24, 39}) {
    WriteFile(path, std::vector<uint8_t>(size, 0x5A));
    Reader r;
    EXPECT_TRUE(IsCleanFailure(r.Open(path))) << "size " << size;
  }
  std::remove(path.c_str());
}

TEST(StoreCorruption, WrongMagicsAndVersion) {
  const std::string good_path = WriteSample("forge_src.staq");
  const std::vector<uint8_t> good = ReadFile(good_path);
  const std::string path = TempPath("forged.staq");

  {
    std::vector<uint8_t> bytes = good;
    bytes[0] ^= 0xFF;  // header magic
    WriteFile(path, bytes);
    Reader reader;
    auto status = reader.Open(path);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  }
  {
    std::vector<uint8_t> bytes = good;
    bytes[bytes.size() - 1] ^= 0xFF;  // trailer magic
    WriteFile(path, bytes);
    Reader reader;
    EXPECT_TRUE(IsCleanFailure(reader.Open(path)));
  }
  {
    std::vector<uint8_t> bytes = good;
    bytes[8] = 99;  // format_version -> unsupported future version
    WriteFile(path, bytes);
    Reader reader;
    auto status = reader.Open(path);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
  std::remove(good_path.c_str());
}

TEST(StoreCorruption, EveryTruncationFailsCleanly) {
  const std::string good_path = WriteSample("trunc_src.staq");
  const std::vector<uint8_t> good = ReadFile(good_path);
  const std::string path = TempPath("truncated.staq");

  // Every prefix of a valid file — including cuts inside the header,
  // payloads, footer, and trailer — must be rejected without crashing. A
  // torn write is exactly such a prefix.
  for (size_t keep = 0; keep < good.size(); keep += 7) {
    WriteFile(path, std::vector<uint8_t>(good.begin(), good.begin() + keep));
    Reader reader;
    EXPECT_TRUE(IsCleanFailure(reader.Open(path))) << "kept " << keep;
  }
  std::remove(path.c_str());
  std::remove(good_path.c_str());
}

TEST(StoreCorruption, EveryBitFlipIsDetected) {
  const std::string good_path = WriteSample("flip_src.staq");
  const std::vector<uint8_t> good = ReadFile(good_path);
  const std::string path = TempPath("flipped.staq");

  // Flip one bit at every byte offset. The file must either fail to open
  // (header/footer/trailer damage) or fail checksum verification — silent
  // acceptance of a flipped payload bit would defeat the store's purpose.
  for (size_t offset = 0; offset < good.size(); ++offset) {
    std::vector<uint8_t> bytes = good;
    bytes[offset] ^= 0x10;
    WriteFile(path, bytes);
    Reader reader;
    auto open_status = reader.Open(path);
    if (!open_status.ok()) {
      EXPECT_TRUE(IsCleanFailure(open_status)) << "offset " << offset;
      continue;
    }
    auto verify = reader.VerifyAllBlocks();
    ASSERT_FALSE(verify.ok()) << "undetected flip at offset " << offset;
    EXPECT_EQ(verify.code(), util::StatusCode::kDataLoss);
  }
  std::remove(path.c_str());
  std::remove(good_path.c_str());
}

TEST(StoreCorruption, FlippedPayloadFailsSectionAccess) {
  const std::string good_path = WriteSample("flip_section_src.staq");
  const std::vector<uint8_t> good = ReadFile(good_path);
  const std::string path = TempPath("flip_section.staq");

  // Damage the first payload byte specifically: Open succeeds (footer is
  // intact) and the per-section checksum catches it on access.
  std::vector<uint8_t> bytes = good;
  bytes[kHeaderSize] ^= 0x01;
  WriteFile(path, bytes);
  Reader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  auto section = reader.Section("ints");
  ASSERT_FALSE(section.ok());
  EXPECT_EQ(section.status().code(), util::StatusCode::kDataLoss);
  std::remove(path.c_str());
  std::remove(good_path.c_str());
}

TEST(StoreCorruption, GarbageWithValidSizeIsRejected) {
  const std::string path = TempPath("garbage.staq");
  std::vector<uint8_t> bytes(4096);
  uint64_t state = 0x243F6A8885A308D3ull;  // fixed-seed xorshift garbage
  for (auto& b : bytes) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    b = static_cast<uint8_t>(state);
  }
  WriteFile(path, bytes);
  Reader reader;
  EXPECT_TRUE(IsCleanFailure(reader.Open(path)));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace staq::store
