// Byte-level encoder/decoder tests: every round trip is exact, every
// decoder refuses truncated or corrupt input with `false` instead of
// reading out of bounds, and the XXH64 reimplementation matches the
// reference vectors of the published specification.
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/hash.h"
#include "store/coding.h"

namespace staq::store {
namespace {

TEST(Varint, RoundTripsBoundaryValues) {
  const std::vector<uint64_t> values = {
      0,
      1,
      127,
      128,
      16383,
      16384,
      (1ull << 32) - 1,
      1ull << 32,
      (1ull << 63) - 1,
      1ull << 63,
      std::numeric_limits<uint64_t>::max(),
  };
  std::vector<uint8_t> buffer;
  for (uint64_t v : values) PutVarint64(&buffer, v);

  ByteReader reader(buffer.data(), buffer.size());
  for (uint64_t expected : values) {
    uint64_t got = 0;
    ASSERT_TRUE(reader.ReadVarint64(&got));
    EXPECT_EQ(got, expected);
  }
  EXPECT_TRUE(reader.exhausted());
}

TEST(Varint, SingleByteForSmallValues) {
  std::vector<uint8_t> buffer;
  PutVarint64(&buffer, 127);
  EXPECT_EQ(buffer.size(), 1u);
  PutVarint64(&buffer, 128);
  EXPECT_EQ(buffer.size(), 3u);  // 128 takes two bytes
}

TEST(Varint, TruncatedInputFails) {
  std::vector<uint8_t> buffer;
  PutVarint64(&buffer, std::numeric_limits<uint64_t>::max());
  for (size_t cut = 0; cut < buffer.size(); ++cut) {
    ByteReader reader(buffer.data(), cut);
    uint64_t out;
    EXPECT_FALSE(reader.ReadVarint64(&out)) << "cut at " << cut;
  }
}

TEST(Varint, OverlongContinuationFails) {
  // Eleven continuation bytes: no valid varint64 is that long.
  std::vector<uint8_t> buffer(11, 0x80);
  ByteReader reader(buffer.data(), buffer.size());
  uint64_t out;
  EXPECT_FALSE(reader.ReadVarint64(&out));
}

TEST(ZigZag, RoundTripsSignedExtremes) {
  const std::vector<int64_t> values = {
      0, -1, 1, -2, 2, 1000000, -1000000,
      std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::max(),
  };
  for (int64_t v : values) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v) << v;
  }
  // Small magnitudes stay small after encoding (the point of zigzag).
  EXPECT_LT(ZigZagEncode(-1), 4u);
  EXPECT_LT(ZigZagEncode(1), 4u);
}

TEST(DeltaColumn, RoundTripsSortedAndUnsorted) {
  const std::vector<uint32_t> sorted = {0, 1, 1, 5, 100, 100000, 4000000000u};
  const std::vector<int32_t> mixed = {-5, 300, -40000, 0, 7, 7, -7};

  std::vector<uint8_t> buffer;
  PutDeltaColumn(&buffer, sorted);
  PutDeltaColumn(&buffer, mixed);

  ByteReader reader(buffer.data(), buffer.size());
  std::vector<uint32_t> sorted_out;
  std::vector<int32_t> mixed_out;
  ASSERT_TRUE(ReadDeltaColumn(&reader, &sorted_out));
  ASSERT_TRUE(ReadDeltaColumn(&reader, &mixed_out));
  EXPECT_EQ(sorted_out, sorted);
  EXPECT_EQ(mixed_out, mixed);
  EXPECT_TRUE(reader.exhausted());
}

TEST(DeltaColumn, EmptyColumnRoundTrips) {
  std::vector<uint8_t> buffer;
  PutDeltaColumn(&buffer, std::vector<uint32_t>{});
  ByteReader reader(buffer.data(), buffer.size());
  std::vector<uint32_t> out = {1, 2, 3};
  ASSERT_TRUE(ReadDeltaColumn(&reader, &out));
  EXPECT_TRUE(out.empty());
}

TEST(DeltaColumn, RejectsAbsurdCount) {
  // A count far beyond the remaining bytes must be rejected before any
  // allocation, not trusted into a multi-gigabyte resize.
  std::vector<uint8_t> buffer;
  PutVarint64(&buffer, 1ull << 40);
  ByteReader reader(buffer.data(), buffer.size());
  std::vector<uint32_t> out;
  EXPECT_FALSE(ReadDeltaColumn(&reader, &out));
}

TEST(DeltaColumn, RejectsValueOverflowingElementType) {
  // 2^32 fits int64 deltas but not a uint32 element: corruption must not
  // wrap around into a plausible id.
  std::vector<uint8_t> buffer;
  PutDeltaColumn(&buffer, std::vector<uint64_t>{1ull << 32});
  ByteReader reader(buffer.data(), buffer.size());
  std::vector<uint32_t> out;
  EXPECT_FALSE(ReadDeltaColumn(&reader, &out));
}

TEST(DeltaColumn, RejectsNegativeForUnsigned) {
  std::vector<uint8_t> buffer;
  PutDeltaColumn(&buffer, std::vector<int64_t>{-3});
  ByteReader reader(buffer.data(), buffer.size());
  std::vector<uint32_t> out;
  EXPECT_FALSE(ReadDeltaColumn(&reader, &out));
}

TEST(DeltaColumn, TruncationFailsCleanly) {
  std::vector<uint8_t> buffer;
  PutDeltaColumn(&buffer, std::vector<uint32_t>{10, 20, 30, 40});
  for (size_t cut = 0; cut < buffer.size(); ++cut) {
    ByteReader reader(buffer.data(), cut);
    std::vector<uint32_t> out;
    EXPECT_FALSE(ReadDeltaColumn(&reader, &out)) << "cut at " << cut;
  }
}

TEST(FixedColumn, DoubleBitsRoundTripExactly) {
  // -0.0, denormals and huge values must survive bit-for-bit: the
  // snapshot bit-identity guarantee rides on this.
  const std::vector<double> values = {
      0.0, -0.0, 1.5, -1.0 / 3.0,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::infinity(),
  };
  std::vector<uint8_t> buffer;
  PutFixedColumn(&buffer, values);
  ByteReader reader(buffer.data(), buffer.size());
  std::vector<double> out;
  ASSERT_TRUE(ReadFixedColumn(&reader, &out));
  ASSERT_EQ(out.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    uint64_t a, b;
    std::memcpy(&a, &values[i], 8);
    std::memcpy(&b, &out[i], 8);
    EXPECT_EQ(a, b) << "index " << i;
  }
}

TEST(FixedColumn, RejectsCountBeyondPayload) {
  std::vector<uint8_t> buffer;
  PutVarint64(&buffer, 1000);  // claims 1000 doubles, provides none
  ByteReader reader(buffer.data(), buffer.size());
  std::vector<double> out;
  EXPECT_FALSE(ReadFixedColumn(&reader, &out));
}

TEST(LengthPrefixed, RoundTripsAndRejectsBogusLength) {
  std::vector<uint8_t> buffer;
  PutLengthPrefixed(&buffer, "weekday-am-peak");
  PutLengthPrefixed(&buffer, "");
  {
    ByteReader reader(buffer.data(), buffer.size());
    std::string a, b;
    ASSERT_TRUE(reader.ReadLengthPrefixed(&a));
    ASSERT_TRUE(reader.ReadLengthPrefixed(&b));
    EXPECT_EQ(a, "weekday-am-peak");
    EXPECT_EQ(b, "");
  }
  std::vector<uint8_t> bogus;
  PutVarint64(&bogus, 1 << 20);  // length prefix far past the end
  ByteReader reader(bogus.data(), bogus.size());
  std::string out;
  EXPECT_FALSE(reader.ReadLengthPrefixed(&out));
}

TEST(ByteReader, FixedReadsStopAtEnd) {
  std::vector<uint8_t> buffer(7, 0xAB);  // one byte short of a double
  ByteReader reader(buffer.data(), buffer.size());
  double out;
  EXPECT_FALSE(reader.ReadFixed(&out));
  EXPECT_EQ(reader.remaining(), 7u);  // a failed read consumes nothing
}

TEST(XxHash64, MatchesReferenceVectors) {
  // Published xxHash test vectors (seed 0).
  EXPECT_EQ(util::XxHash64(nullptr, 0), 0xEF46DB3751D8E999ull);
  EXPECT_EQ(util::XxHash64("abc", 3), 0x44BC2CF5AD770999ull);
}

TEST(XxHash64, SeedAndContentChangeDigest) {
  const std::string data(1000, 'x');
  const uint64_t base = util::XxHash64(data.data(), data.size());
  EXPECT_NE(util::XxHash64(data.data(), data.size(), 1), base);

  std::string flipped = data;
  flipped[500] ^= 0x01;
  EXPECT_NE(util::XxHash64(flipped.data(), flipped.size()), base);

  // Stable across calls (no hidden state).
  EXPECT_EQ(util::XxHash64(data.data(), data.size()), base);
}

TEST(XxHash64, CoversAllStripeRemainders) {
  // Lengths around the 32-byte stripe and 8/4/1-byte tail boundaries all
  // hash distinctly and deterministically.
  std::string data(100, 0);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  std::vector<uint64_t> seen;
  for (size_t len : {0, 1, 3, 4, 7, 8, 15, 31, 32, 33, 63, 64, 65, 100}) {
    uint64_t digest = util::XxHash64(data.data(), len);
    for (uint64_t prior : seen) EXPECT_NE(digest, prior) << "len " << len;
    seen.push_back(digest);
  }
}

}  // namespace
}  // namespace staq::store
