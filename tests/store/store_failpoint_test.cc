// Deterministic fault injection against the snapshot store.
//
// Every store failpoint site — writer open/write/fsync, reader open/read —
// gets a test that trips it and asserts graceful degradation: SaveSnapshot
// and LoadSnapshot return a clean kIoError status (never an escaped
// exception), a failed save leaves only a torn file every reader rejects,
// and an AqServer whose warm start dies mid-load falls back to the cold
// build and still serves.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/scenario.h"
#include "serve/server.h"
#include "store/snapshot.h"
#include "testing/test_city.h"
#include "util/failpoint.h"

#if defined(STAQ_FAILPOINTS) && STAQ_FAILPOINTS

namespace staq::store {
namespace {

using util::FailPointConfig;
using util::FailPoints;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "staq_store_fp_" + name;
}

class StoreFaultInjectionTest : public ::testing::Test {
 protected:
  StoreFaultInjectionTest()
      : store_(testing::TinyCity(), gtfs::WeekdayAmPeak()) {}
  ~StoreFaultInjectionTest() override { FailPoints::DisarmAll(); }

  serve::ScenarioStore store_;
};

void ExpectIoError(const util::Status& status) {
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kIoError) << status;
}

// --- writer sites -----------------------------------------------------------

TEST_F(StoreFaultInjectionTest, WriterOpenFailureIsCleanStatus) {
  FailPoints::Arm("store.writer.open", FailPointConfig::Throw("disk gone"));
  const std::string path = TempPath("open_fail.staq");
  ExpectIoError(store_.ExportSnapshot(path));
  // Disarmed, the same store saves fine: the failure poisoned nothing.
  FailPoints::Disarm("store.writer.open");
  ASSERT_TRUE(store_.ExportSnapshot(path).ok());
  EXPECT_TRUE(VerifySnapshot(path).ok());
  std::remove(path.c_str());
}

TEST_F(StoreFaultInjectionTest, WriteFailureLeavesOnlyARejectedTornFile) {
  const std::string path = TempPath("write_fail.staq");
  // Fail the third flush: header and some payload reach disk, the footer
  // and trailer never do — the canonical torn write.
  FailPointConfig config = FailPointConfig::Throw("io error");
  config.skip = 2;
  config.limit = 1;
  FailPoints::Arm("store.writer.write", config);
  ExpectIoError(store_.ExportSnapshot(path));
  FailPoints::Disarm("store.writer.write");

  // Whatever bytes the failed save left behind, no reader accepts them.
  auto restored = LoadSnapshot(path);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().code(), util::StatusCode::kOk);
  Reader reader;
  EXPECT_FALSE(reader.Open(path).ok());
  std::remove(path.c_str());
}

TEST_F(StoreFaultInjectionTest, FsyncFailureFailsTheSave) {
  FailPoints::Arm("store.writer.fsync", FailPointConfig::Throw("fsync lost"));
  const std::string path = TempPath("fsync_fail.staq");
  ExpectIoError(store_.ExportSnapshot(path));
  std::remove(path.c_str());
}

// --- reader sites -----------------------------------------------------------

class StoreReaderFaultTest : public StoreFaultInjectionTest {
 protected:
  // Path is per-test: ctest runs each test as its own process, possibly in
  // parallel, so a shared fixture file would race with its siblings.
  StoreReaderFaultTest()
      : path_(TempPath(std::string(::testing::UnitTest::GetInstance()
                                       ->current_test_info()
                                       ->name()) +
                       ".staq")) {
    EXPECT_TRUE(store_.ExportSnapshot(path_).ok());
  }
  ~StoreReaderFaultTest() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(StoreReaderFaultTest, ReaderOpenFailureIsCleanStatus) {
  FailPoints::Arm("store.reader.open", FailPointConfig::Throw("mount gone"));
  auto restored = LoadSnapshot(path_);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), util::StatusCode::kIoError);
  FailPoints::Disarm("store.reader.open");
  EXPECT_TRUE(LoadSnapshot(path_).ok());
}

TEST_F(StoreReaderFaultTest, ReadFailureMidLoadIsCleanStatus) {
  // Fail the Nth section access for several N: the load dies at different
  // stages of reassembly and must always come back as a clean status.
  for (uint64_t skip : {0ull, 3ull, 8ull}) {
    FailPointConfig config = FailPointConfig::Throw("read torn");
    config.skip = skip;
    config.limit = 1;
    FailPoints::Arm("store.reader.read", config);
    auto restored = LoadSnapshot(path_);
    ASSERT_FALSE(restored.ok()) << "skip " << skip;
    EXPECT_EQ(restored.status().code(), util::StatusCode::kIoError);
    FailPoints::Disarm("store.reader.read");
  }
  EXPECT_TRUE(LoadSnapshot(path_).ok());
}

// --- warm-start fallback ----------------------------------------------------

TEST_F(StoreReaderFaultTest, WarmStartFailingMidLoadFallsBackToColdBuild) {
  FailPointConfig config = FailPointConfig::Throw("read torn");
  config.skip = 5;
  config.limit = 1;
  FailPoints::Arm("store.reader.read", config);

  serve::AqServer::Options options;
  options.num_threads = 2;
  options.warm_start_path = path_;
  serve::AqServer server(testing::TinyCity(), gtfs::WeekdayAmPeak(), options);
  FailPoints::Disarm("store.reader.read");

  // The injected fault killed the load; the server must have cold-built
  // and still serve correct answers.
  EXPECT_FALSE(server.warm_started());
  EXPECT_EQ(server.epoch(), 0u);
  serve::AqRequest request;
  request.category = synth::PoiCategory::kSchool;
  request.options.exact = true;
  request.options.gravity.sample_rate_per_hour = 4;
  request.options.gravity.keep_scale = 2.0;
  request.options.seed = 3;
  auto answer = server.Query(request);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer.value().mac.size(), server.base_city().zones.size());
}

TEST(StoreWarmStartFallback, MissingSnapshotFileFallsBackToColdBuild) {
  serve::AqServer::Options options;
  options.num_threads = 2;
  options.warm_start_path = TempPath("never_written.staq");
  serve::AqServer server(testing::TinyCity(), gtfs::WeekdayAmPeak(), options);
  EXPECT_FALSE(server.warm_started());
  serve::AqRequest request;
  request.category = synth::PoiCategory::kSchool;
  request.options.exact = true;
  request.options.gravity.sample_rate_per_hour = 4;
  request.options.gravity.keep_scale = 2.0;
  request.options.seed = 3;
  EXPECT_TRUE(server.Query(request).ok());
}

TEST(StoreWarmStartFallback, GarbageSnapshotFileFallsBackToColdBuild) {
  const std::string path = TempPath("garbage_warm.staq");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    for (int i = 0; i < 4096; ++i) out.put(static_cast<char>(i * 31));
  }
  serve::AqServer::Options options;
  options.num_threads = 2;
  options.warm_start_path = path;
  serve::AqServer server(testing::TinyCity(), gtfs::WeekdayAmPeak(), options);
  EXPECT_FALSE(server.warm_started());
  EXPECT_EQ(server.base_city().zones.size(),
            server.Snapshot()->base_city().zones.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace staq::store

#endif  // STAQ_FAILPOINTS
