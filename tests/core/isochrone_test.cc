#include "core/isochrone.h"

#include <gtest/gtest.h>

#include "graph/dijkstra.h"
#include "testing/test_city.h"

namespace staq::core {
namespace {

TEST(IsochroneConfigTest, ReachMatchesPaperParameters) {
  IsochroneConfig config;  // τ = 600 s, ω = 4.5 km/h
  EXPECT_NEAR(config.ReachMeters(), 750.0, 1e-9);
}

TEST(IsochroneTest, ContainsSourceNode) {
  synth::City city = testing::TinyCity();
  IsochroneConfig config;
  for (uint32_t z = 0; z < 10 && z < city.zones.size(); ++z) {
    geo::Polygon iso =
        WalkingIsochrone(city.road, city.zone_node[z], config);
    ASSERT_GE(iso.size(), 3u);
    EXPECT_TRUE(iso.Contains(city.road.position(city.zone_node[z])));
  }
}

TEST(IsochroneTest, CoversExactlyTheReachableNodes) {
  synth::City city = testing::TinyCity();
  IsochroneConfig config;
  graph::NodeId source = city.zone_node[0];
  geo::Polygon iso = WalkingIsochrone(city.road, source, config);
  // Every node within the walk budget lies inside the hull by definition.
  auto reached =
      graph::BoundedShortestPaths(city.road, source, config.ReachMeters());
  for (const auto& r : reached) {
    EXPECT_TRUE(iso.Contains(city.road.position(r.node)));
  }
}

TEST(IsochroneTest, LargerBudgetLargerArea) {
  synth::City city = testing::TinyCity();
  IsochroneConfig small{300, 4.5};
  IsochroneConfig large{900, 4.5};
  geo::Polygon a = WalkingIsochrone(city.road, city.zone_node[5], small);
  geo::Polygon b = WalkingIsochrone(city.road, city.zone_node[5], large);
  EXPECT_LT(a.Area(), b.Area());
}

TEST(IsochroneTest, FasterWalkerLargerArea) {
  synth::City city = testing::TinyCity();
  IsochroneConfig slow{600, 3.0};
  IsochroneConfig fast{600, 6.0};
  geo::Polygon a = WalkingIsochrone(city.road, city.zone_node[5], slow);
  geo::Polygon b = WalkingIsochrone(city.road, city.zone_node[5], fast);
  EXPECT_LT(a.Area(), b.Area());
}

TEST(IsochroneTest, IsolatedNodeGetsDegenerateBox) {
  graph::Graph g;
  graph::NodeId lone = g.AddNode({100, 100});
  g.Finalize();
  geo::Polygon iso = WalkingIsochrone(g, lone, IsochroneConfig{});
  ASSERT_EQ(iso.size(), 4u);
  EXPECT_TRUE(iso.Contains({100, 100}));
  EXPECT_GT(iso.Area(), 0.0);
}

TEST(IsochroneSetTest, OnePolygonPerZone) {
  synth::City city = testing::TinyCity();
  IsochroneSet set(city, IsochroneConfig{});
  EXPECT_EQ(set.size(), city.zones.size());
  for (uint32_t z = 0; z < city.zones.size(); ++z) {
    EXPECT_GT(set.For(z).Area(), 0.0);
  }
}

TEST(IsochroneSetTest, AdjacentZonesOverlapDistantDont) {
  synth::City city = testing::TinyCity();
  IsochroneSet set(city, IsochroneConfig{});
  // Zones 0 and 1 are lattice neighbours (~400 m apart, reach 750 m).
  EXPECT_TRUE(set.Overlap(0, 1));
  // Opposite corners of the city cannot overlap.
  uint32_t far = static_cast<uint32_t>(city.zones.size() - 1);
  EXPECT_FALSE(set.Overlap(0, far));
  // Overlap is symmetric and reflexive.
  EXPECT_EQ(set.Overlap(0, 1), set.Overlap(1, 0));
  EXPECT_TRUE(set.Overlap(3, 3));
}

}  // namespace
}  // namespace staq::core
