#include "core/features.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/gravity.h"
#include "testing/test_city.h"

namespace staq::core {
namespace {

class FeaturesTest : public ::testing::Test {
 protected:
  FeaturesTest()
      : city_(testing::TinyCity()),
        isochrones_(city_, IsochroneConfig{}),
        trees_(city_, isochrones_, gtfs::WeekdayAmPeak()),
        extractor_(&city_, &isochrones_, &trees_) {}

  synth::City city_;
  IsochroneSet isochrones_;
  HopTreeSet trees_;
  FeatureExtractor extractor_;
};

TEST_F(FeaturesTest, FeatureNamesCoverAllDimensions) {
  for (size_t i = 0; i < kNumFeatures; ++i) {
    EXPECT_STRNE(FeatureName(i), "invalid");
  }
  EXPECT_STREQ(FeatureName(kNumFeatures), "invalid");
  EXPECT_STREQ(FeatureName(0), "od_distance_m");
}

TEST_F(FeaturesTest, PoiZoneIsNearestCentroid) {
  synth::Poi poi{0, synth::PoiCategory::kSchool, city_.zones[7].centroid};
  EXPECT_EQ(extractor_.PoiZone(poi), 7u);
}

TEST_F(FeaturesTest, OdVectorBasicGeometry) {
  synth::Poi poi{0, synth::PoiCategory::kSchool,
                 city_.zones[12].centroid};
  double out[kNumFeatures];
  extractor_.ExtractOd(3, poi, out);
  double od = geo::Distance(city_.zones[3].centroid, poi.position);
  EXPECT_NEAR(out[0], od, 1e-9);
  // Flags are boolean.
  for (int flag : {1, 2, 3}) {
    EXPECT_TRUE(out[flag] == 0.0 || out[flag] == 1.0);
  }
  // 2-hop reachability implies at least 1-hop consistency.
  EXPECT_GE(out[3], out[2]);
}

TEST_F(FeaturesTest, WalkableFlagSetForCoLocatedPoi) {
  synth::Poi here{0, synth::PoiCategory::kSchool, city_.zones[5].centroid};
  double out[kNumFeatures];
  extractor_.ExtractOd(5, here, out);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 1.0);
}

TEST_F(FeaturesTest, DistanceFeaturesNeverExceedDirectDistance) {
  // Leaf/interchange proximity features fall back to the OD distance, so
  // they can never exceed it.
  double out[kNumFeatures];
  for (uint32_t z = 0; z < 20; ++z) {
    for (const synth::Poi& poi : city_.pois) {
      extractor_.ExtractOd(z, poi, out);
      for (int f : {4, 7, 11, 12, 14}) {
        EXPECT_LE(out[f], out[0] + 1e-9) << "feature " << f;
      }
    }
  }
}

TEST_F(FeaturesTest, NonNegativeAndFinite) {
  double out[kNumFeatures];
  for (uint32_t z = 0; z < city_.zones.size(); z += 7) {
    for (size_t p = 0; p < city_.pois.size(); p += 3) {
      extractor_.ExtractOd(z, city_.pois[p], out);
      for (size_t f = 0; f < kNumFeatures; ++f) {
        EXPECT_TRUE(std::isfinite(out[f])) << FeatureName(f);
        EXPECT_GE(out[f], 0.0) << FeatureName(f);
      }
    }
  }
}

TEST_F(FeaturesTest, Reach2FractionIsAFraction) {
  double out[kNumFeatures];
  extractor_.ExtractOd(0, city_.pois[0], out);
  EXPECT_GE(out[18], 0.0);
  EXPECT_LE(out[18], 1.0);
}

TEST_F(FeaturesTest, ZoneMatrixShapeAndWeighting) {
  auto pois = city_.PoisOf(synth::PoiCategory::kSchool);
  auto alpha = AttractivenessMatrix(city_.zones, pois, 3000);
  ml::Matrix features = extractor_.ExtractZoneMatrix(pois, alpha);
  ASSERT_EQ(features.rows(), city_.zones.size());
  ASSERT_EQ(features.cols(), kNumFeatures);
  for (size_t i = 0; i < features.rows(); ++i) {
    for (size_t c = 0; c < features.cols(); ++c) {
      EXPECT_TRUE(std::isfinite(features(i, c)));
    }
  }
}

TEST_F(FeaturesTest, ZoneMatrixIsAlphaWeightedMeanOfOdVectors) {
  // With a single POI, the aggregated row equals the OD vector exactly.
  auto pois = std::vector<synth::Poi>{city_.pois[0]};
  std::vector<std::vector<double>> alpha(city_.zones.size(),
                                         std::vector<double>{1.0});
  ml::Matrix features = extractor_.ExtractZoneMatrix(pois, alpha);
  double od[kNumFeatures];
  extractor_.ExtractOd(4, pois[0], od);
  for (size_t f = 0; f < kNumFeatures; ++f) {
    EXPECT_NEAR(features(4, f), od[f], 1e-9) << FeatureName(f);
  }
}

TEST_F(FeaturesTest, ZeroAlphaZoneGetsZeroRow) {
  auto pois = std::vector<synth::Poi>{city_.pois[0]};
  std::vector<std::vector<double>> alpha(city_.zones.size(),
                                         std::vector<double>{1.0});
  alpha[2][0] = 0.0;  // zone 2 never travels
  ml::Matrix features = extractor_.ExtractZoneMatrix(pois, alpha);
  for (size_t f = 0; f < kNumFeatures; ++f) {
    EXPECT_EQ(features(2, f), 0.0);
  }
}

TEST_F(FeaturesTest, WeightsSkewTowardHighAlphaPoi) {
  // Two POIs at different distances: weighting entirely to one of them
  // reproduces that POI's OD distance.
  std::vector<synth::Poi> pois{
      {0, synth::PoiCategory::kSchool, city_.zones[1].centroid},
      {1, synth::PoiCategory::kSchool,
       city_.zones[city_.zones.size() - 1].centroid},
  };
  std::vector<std::vector<double>> near_alpha(
      city_.zones.size(), std::vector<double>{1.0, 0.0});
  std::vector<std::vector<double>> far_alpha(
      city_.zones.size(), std::vector<double>{0.0, 1.0});
  ml::Matrix near_f = extractor_.ExtractZoneMatrix(pois, near_alpha);
  ml::Matrix far_f = extractor_.ExtractZoneMatrix(pois, far_alpha);
  EXPECT_LT(near_f(0, 0), far_f(0, 0));  // od_distance_m from zone 0
}

}  // namespace
}  // namespace staq::core
