// Golden bit-identity suite for the columnar measure engine
// (core/columnar.h): every columnar derivation must equal the scalar foil
// bit for bit — on synthetic journeys, on kernel-backed measure reductions,
// and end to end through AccessQueryEngine::QueryVector on both city
// families across seeds and cost kinds.
#include "core/columnar.h"

#include <gtest/gtest.h>

#include "core/access_query.h"
#include "core/measures.h"
#include "core/todam.h"
#include "synth/city_spec.h"
#include "testing/test_city.h"
#include "util/rng.h"

namespace staq::core {
namespace {

router::Journey FakeJourney(util::Rng* rng) {
  router::Journey j;
  j.feasible = true;
  j.depart = 7 * 3600 + static_cast<gtfs::TimeOfDay>(rng->NextU64() % 3600);
  j.access_walk_s = 60.0 * static_cast<double>(rng->NextU64() % 10);
  j.transfer_walk_s = 30.0 * static_cast<double>(rng->NextU64() % 4);
  j.wait_s = 15.0 * static_cast<double>(rng->NextU64() % 20);
  j.in_vehicle_s = 120.0 * static_cast<double>(rng->NextU64() % 15);
  j.egress_walk_s = 45.0 * static_cast<double>(rng->NextU64() % 8);
  j.num_boardings = static_cast<int>(rng->NextU64() % 4);
  j.total_fare = 1.5 * static_cast<double>(rng->NextU64() % 3);
  j.arrive = j.depart +
             static_cast<gtfs::TimeOfDay>(j.access_walk_s + j.wait_s +
                                          j.in_vehicle_s + j.egress_walk_s);
  return j;
}

TEST(MemberCostColumnTest, GacColumnBitIdenticalToScalarExpression) {
  util::Rng rng(77);
  TripCostColumns columns;
  std::vector<router::Journey> journeys;
  size_t base = columns.AppendZone(40);
  for (size_t i = 0; i < 40; ++i) {
    router::Journey j = FakeJourney(&rng);
    if (i % 7 == 3) j.feasible = false;  // stays a zeroed slot
    journeys.push_back(j);
    columns.Record(base + i, j);
  }

  std::vector<router::GacWeights> variants(3);
  variants[1].lambda_wt = 3.5;
  variants[1].transfer_penalty_s = 300;
  variants[2].lambda_tan = 1.0;
  variants[2].value_of_time = 12.0 / 3600.0;
  for (const router::GacWeights& w : variants) {
    std::vector<double> costs;
    MemberCostColumn(columns, {CostKind::kGeneralizedCost, w}, &costs);
    ASSERT_EQ(costs.size(), journeys.size());
    for (size_t i = 0; i < journeys.size(); ++i) {
      if (!journeys[i].feasible) continue;  // excluded by flags downstream
      EXPECT_EQ(costs[i], router::GeneralizedAccessCost(journeys[i], w))
          << "journey " << i;
    }
  }

  std::vector<double> jt;
  MemberCostColumn(columns, {CostKind::kJourneyTime, {}}, &jt);
  for (size_t i = 0; i < journeys.size(); ++i) {
    if (!journeys[i].feasible) continue;
    EXPECT_EQ(jt[i], journeys[i].JourneyTimeSeconds());
  }
}

TEST(MemberCostColumnTest, AggregationMatchesScalarLabelTail) {
  util::Rng rng(13);
  TripCostColumns columns;
  std::vector<std::vector<router::Journey>> zones(5);
  for (size_t z = 0; z < zones.size(); ++z) {
    size_t n = 3 + rng.NextU64() % 20;
    size_t base = columns.AppendZone(n);
    for (size_t i = 0; i < n; ++i) {
      router::Journey j = FakeJourney(&rng);
      if (rng.NextU64() % 5 == 0) j.feasible = false;
      zones[z].push_back(j);
      columns.Record(base + i, j);
    }
  }

  router::GacWeights w;
  std::vector<double> costs;
  MemberCostColumn(columns, {CostKind::kGeneralizedCost, w}, &costs);
  std::vector<ZoneLabel> labels = AggregateZoneLabels(columns, costs);
  ASSERT_EQ(labels.size(), zones.size());
  for (size_t z = 0; z < zones.size(); ++z) {
    // The scalar aggregation tail of labeling.cc, verbatim.
    double sum = 0.0, sum_sq = 0.0;
    uint32_t feasible = 0, infeasible = 0, walk_only = 0;
    for (const router::Journey& j : zones[z]) {
      if (!j.feasible) {
        ++infeasible;
        continue;
      }
      if (j.IsWalkOnly()) ++walk_only;
      double cost = router::GeneralizedAccessCost(j, w);
      sum += cost;
      sum_sq += cost * cost;
      ++feasible;
    }
    EXPECT_EQ(labels[z].num_trips, zones[z].size());
    EXPECT_EQ(labels[z].num_infeasible, infeasible);
    EXPECT_EQ(labels[z].num_walk_only, walk_only);
    if (feasible > 0) {
      double n = static_cast<double>(feasible);
      double mac = sum / n;
      double var = sum_sq / n - mac * mac;
      EXPECT_EQ(labels[z].mac, mac);
      EXPECT_EQ(labels[z].acsd, var > 0 ? std::sqrt(var) : 0.0);
    } else {
      EXPECT_EQ(labels[z].mac, 0.0);
      EXPECT_EQ(labels[z].acsd, 0.0);
    }
  }
}

TEST(ColumnarMeasuresTest, KernelReductionsBitIdenticalToScalarFoil) {
  util::Rng rng(99);
  for (size_t n : {1u, 2u, 63u, 500u}) {
    std::vector<double> mac(n), acsd(n), weights(n);
    for (size_t i = 0; i < n; ++i) {
      mac[i] = static_cast<double>(rng.NextU64() % 10000) / 7.0;
      acsd[i] = static_cast<double>(rng.NextU64() % 3000) / 11.0;
      weights[i] = static_cast<double>(rng.NextU64() % 500) / 3.0;
    }
    EXPECT_EQ(ClassifyAccessibility(mac, acsd),
              ClassifyAccessibilityColumnar(mac, acsd));
    EXPECT_EQ(JainIndex(mac), JainIndexColumnar(mac));
    EXPECT_EQ(WeightedJainIndex(mac, weights),
              WeightedJainIndexColumnar(mac, weights));
  }
}

TEST(ColumnarNormsTest, BitIdenticalOnBothCityFamilies) {
  for (bool brindale : {true, false}) {
    synth::CitySpec spec = brindale ? synth::CitySpec::Brindale(0.05, 11)
                                    : synth::CitySpec::Covely(0.05, 12);
    auto city = synth::BuildCity(spec);
    ASSERT_TRUE(city.ok());
    for (synth::PoiCategory cat :
         {synth::PoiCategory::kSchool, synth::PoiCategory::kHospital}) {
      std::vector<synth::Poi> pois = city.value().PoisOf(cat);
      EXPECT_EQ(StableGravityNorms(city.value().zones, pois, 3000.0),
                StableGravityNormsColumnar(city.value().zones, pois, 3000.0));
    }
  }
}

AccessQueryOptions ExactOptions(uint64_t seed) {
  AccessQueryOptions options;
  options.exact = true;
  options.gravity.sample_rate_per_hour = 4;
  options.gravity.keep_scale = 2.0;
  options.seed = seed;
  return options;
}

std::vector<CostMember> SweepMembers() {
  std::vector<CostMember> members;
  members.push_back({CostKind::kJourneyTime, {}});
  members.push_back({CostKind::kGeneralizedCost, {}});
  router::GacWeights wait_heavy;
  wait_heavy.lambda_wt = 3.5;
  wait_heavy.transfer_penalty_s = 300;
  members.push_back({CostKind::kGeneralizedCost, wait_heavy});
  return members;
}

void ExpectSameResult(const AccessQueryResult& a, const AccessQueryResult& b) {
  EXPECT_EQ(a.mac, b.mac);
  EXPECT_EQ(a.acsd, b.acsd);
  EXPECT_EQ(a.classes, b.classes);
  EXPECT_EQ(a.mean_mac, b.mean_mac);
  EXPECT_EQ(a.mean_acsd, b.mean_acsd);
  EXPECT_EQ(a.fairness, b.fairness);
  EXPECT_EQ(a.population_fairness, b.population_fairness);
  EXPECT_EQ(a.vulnerable_fairness, b.vulnerable_fairness);
  EXPECT_EQ(a.spqs, b.spqs);
  EXPECT_EQ(a.gravity_trips, b.gravity_trips);
}

TEST(QueryVectorTest, BitIdenticalToSingleQueriesOnBothFamilies) {
  for (bool brindale : {true, false}) {
    SCOPED_TRACE(brindale ? "brindale" : "covely");
    synth::CitySpec spec = brindale ? synth::CitySpec::Brindale(0.03, 21)
                                    : synth::CitySpec::Covely(0.04, 22);
    auto city = synth::BuildCity(spec);
    ASSERT_TRUE(city.ok());
    AccessQueryEngine engine(std::move(city).value(), gtfs::WeekdayAmPeak());

    for (uint64_t seed : {1u, 2u}) {
      SCOPED_TRACE("seed " + std::to_string(seed));
      VectorQuerySpec vspec;
      vspec.cost_members = SweepMembers();
      auto batch = engine.QueryVector(synth::PoiCategory::kSchool,
                                      ExactOptions(seed), vspec);
      ASSERT_TRUE(batch.ok()) << batch.status();
      ASSERT_EQ(batch.value().size(), vspec.cost_members.size());
      for (size_t m = 0; m < vspec.cost_members.size(); ++m) {
        SCOPED_TRACE("member " + std::to_string(m));
        AccessQueryOptions options = ExactOptions(seed);
        options.cost = vspec.cost_members[m].cost;
        options.gac = vspec.cost_members[m].gac;
        auto single = engine.Query(synth::PoiCategory::kSchool, options);
        ASSERT_TRUE(single.ok());
        ExpectSameResult(batch.value()[m], single.value());
      }
    }
  }
}

TEST(QueryVectorTest, ScalarFoilAlsoMatches) {
  AccessQueryEngine engine(testing::TinyCity(), gtfs::WeekdayAmPeak());
  VectorQuerySpec columnar, foil;
  columnar.cost_members = foil.cost_members = SweepMembers();
  foil.use_columnar = false;
  auto fast = engine.QueryVector(synth::PoiCategory::kHospital,
                                 ExactOptions(3), columnar);
  auto slow =
      engine.QueryVector(synth::PoiCategory::kHospital, ExactOptions(3), foil);
  ASSERT_TRUE(fast.ok() && slow.ok());
  ASSERT_EQ(fast.value().size(), slow.value().size());
  for (size_t m = 0; m < fast.value().size(); ++m) {
    ExpectSameResult(fast.value()[m], slow.value()[m]);
  }
}

TEST(QueryVectorTest, SweepsCategoryAndSeedAxesInDeclaredOrder) {
  AccessQueryEngine engine(testing::TinyCity(), gtfs::WeekdayAmPeak());
  VectorQuerySpec vspec;
  vspec.categories = {synth::PoiCategory::kSchool,
                      synth::PoiCategory::kHospital};
  vspec.seeds = {2, 5};
  auto batch =
      engine.QueryVector(synth::PoiCategory::kSchool, ExactOptions(1), vspec);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch.value().size(), 4u);
  size_t i = 0;
  for (synth::PoiCategory cat : vspec.categories) {
    for (uint64_t seed : vspec.seeds) {
      auto single = engine.Query(cat, ExactOptions(seed));
      ASSERT_TRUE(single.ok());
      ExpectSameResult(batch.value()[i++], single.value());
    }
  }
}

TEST(QueryVectorTest, RejectsSsrTemplates) {
  AccessQueryEngine engine(testing::TinyCity(), gtfs::WeekdayAmPeak());
  AccessQueryOptions ssr = ExactOptions(1);
  ssr.exact = false;
  auto result = engine.QueryVector(synth::PoiCategory::kSchool, ssr, {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(QueryVectorTest, RejectsInvalidMemberWeights) {
  AccessQueryEngine engine(testing::TinyCity(), gtfs::WeekdayAmPeak());
  VectorQuerySpec vspec;
  router::GacWeights bad;
  bad.value_of_time = 0.0;
  vspec.cost_members.push_back({CostKind::kGeneralizedCost, bad});
  auto result =
      engine.QueryVector(synth::PoiCategory::kSchool, ExactOptions(1), vspec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace staq::core
