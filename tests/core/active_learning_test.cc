#include "core/active_learning.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "testing/test_city.h"
#include "testing/test_data.h"

namespace staq::core {
namespace {

std::vector<geo::Point> GridPositions(size_t n) {
  std::vector<geo::Point> positions;
  size_t side = static_cast<size_t>(std::sqrt(static_cast<double>(n)));
  for (size_t i = 0; i < n; ++i) {
    positions.push_back(geo::Point{
        static_cast<double>(i % side) * 100.0,
        static_cast<double>(i / side) * 100.0});
  }
  return positions;
}

TEST(ActiveLearningTest, StrategyNames) {
  EXPECT_STREQ(SamplingStrategyName(SamplingStrategy::kRandom), "random");
  EXPECT_STREQ(SamplingStrategyName(SamplingStrategy::kSpatialSpread),
               "spatial_spread");
  EXPECT_STREQ(SamplingStrategyName(SamplingStrategy::kFeatureDiverse),
               "feature_diverse");
}

TEST(ActiveLearningTest, RandomMatchesPlainSampler) {
  auto via_strategy = SelectLabeledZones(SamplingStrategy::kRandom, 200, 0.1,
                                         5, nullptr, nullptr);
  auto direct = SampleLabeledZones(200, 0.1, 5);
  ASSERT_TRUE(via_strategy.ok() && direct.ok());
  EXPECT_EQ(via_strategy.value(), direct.value());
}

class StrategyContractTest
    : public ::testing::TestWithParam<SamplingStrategy> {};

TEST_P(StrategyContractTest, SizeUniquenessRangeDeterminism) {
  size_t n = 144;
  auto positions = GridPositions(n);
  auto data = testing::LinearDataset(n, 5, 10, 0.1, 3);

  auto a = SelectLabeledZones(GetParam(), n, 0.125, 9, &positions, &data.x);
  auto b = SelectLabeledZones(GetParam(), n, 0.125, 9, &positions, &data.x);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());  // deterministic per seed

  EXPECT_EQ(a.value().size(), 18u);  // ceil(0.125 * 144)
  std::set<uint32_t> unique(a.value().begin(), a.value().end());
  EXPECT_EQ(unique.size(), a.value().size());
  for (uint32_t z : a.value()) EXPECT_LT(z, n);
  for (size_t i = 1; i < a.value().size(); ++i) {
    EXPECT_LT(a.value()[i - 1], a.value()[i]);  // ascending
  }
}

TEST_P(StrategyContractTest, RejectsBadBeta) {
  auto positions = GridPositions(16);
  auto data = testing::LinearDataset(16, 3, 4, 0.1, 3);
  EXPECT_FALSE(SelectLabeledZones(GetParam(), 16, 0.0, 1, &positions, &data.x)
                   .ok());
  EXPECT_FALSE(SelectLabeledZones(GetParam(), 16, 1.5, 1, &positions, &data.x)
                   .ok());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyContractTest,
                         ::testing::Values(SamplingStrategy::kRandom,
                                           SamplingStrategy::kSpatialSpread,
                                           SamplingStrategy::kFeatureDiverse),
                         [](const auto& info) {
                           return SamplingStrategyName(info.param);
                         });

TEST(ActiveLearningTest, SpatialSpreadRequiresPositions) {
  EXPECT_FALSE(SelectLabeledZones(SamplingStrategy::kSpatialSpread, 100, 0.1,
                                  1, nullptr, nullptr)
                   .ok());
  auto short_positions = GridPositions(10);
  EXPECT_FALSE(SelectLabeledZones(SamplingStrategy::kSpatialSpread, 100, 0.1,
                                  1, &short_positions, nullptr)
                   .ok());
}

TEST(ActiveLearningTest, FeatureDiverseRequiresFeatures) {
  EXPECT_FALSE(SelectLabeledZones(SamplingStrategy::kFeatureDiverse, 100, 0.1,
                                  1, nullptr, nullptr)
                   .ok());
}

TEST(ActiveLearningTest, SpatialSpreadCoversBetterThanWorstRandom) {
  // The k-centre guarantee: the max distance from any zone to its nearest
  // labeled zone is minimised within a factor 2. Compare against random
  // draws: spread's coverage radius must never be worse than the worst of
  // several random draws.
  size_t n = 400;
  auto positions = GridPositions(n);
  auto coverage_radius = [&](const std::vector<uint32_t>& chosen) {
    double worst = 0;
    for (size_t z = 0; z < n; ++z) {
      double best = 1e18;
      for (uint32_t c : chosen) {
        best = std::min(best, geo::Distance(positions[z], positions[c]));
      }
      worst = std::max(worst, best);
    }
    return worst;
  };

  auto spread = SelectLabeledZones(SamplingStrategy::kSpatialSpread, n, 0.05,
                                   1, &positions, nullptr);
  ASSERT_TRUE(spread.ok());
  double spread_radius = coverage_radius(spread.value());

  double worst_random = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto random = SelectLabeledZones(SamplingStrategy::kRandom, n, 0.05, seed,
                                     nullptr, nullptr);
    ASSERT_TRUE(random.ok());
    worst_random = std::max(worst_random, coverage_radius(random.value()));
  }
  EXPECT_LE(spread_radius, worst_random);
}

TEST(ActiveLearningTest, FeatureDiverseHandlesConstantFeatures) {
  // Identical rows: D^2 weights collapse; the fallback must still fill the
  // budget with distinct zones.
  ml::Matrix constant(50, 4, 1.0);
  auto chosen = SelectLabeledZones(SamplingStrategy::kFeatureDiverse, 50, 0.2,
                                   3, nullptr, &constant);
  ASSERT_TRUE(chosen.ok()) << chosen.status();
  EXPECT_EQ(chosen.value().size(), 10u);
  std::set<uint32_t> unique(chosen.value().begin(), chosen.value().end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(ActiveLearningTest, PipelineRunsWithEachStrategy) {
  synth::City city = testing::SmallCity();
  SsrPipeline pipeline(&city, gtfs::WeekdayAmPeak());
  auto pois = city.PoisOf(synth::PoiCategory::kVaxCenter);
  GravityConfig gravity;
  gravity.sample_rate_per_hour = 4;
  gravity.keep_scale = 2.0;
  Todam todam = pipeline.BuildGravityTodam(pois, gravity, 1);

  for (SamplingStrategy strategy :
       {SamplingStrategy::kRandom, SamplingStrategy::kSpatialSpread,
        SamplingStrategy::kFeatureDiverse}) {
    PipelineConfig config;
    config.beta = 0.15;
    config.model = ml::ModelKind::kOls;
    config.sampling = strategy;
    config.seed = 2;
    auto run = pipeline.Run(pois, todam, config);
    ASSERT_TRUE(run.ok()) << SamplingStrategyName(strategy);
    EXPECT_EQ(run.value().mac.size(), city.zones.size());
  }
}

}  // namespace
}  // namespace staq::core
