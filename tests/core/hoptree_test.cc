#include "core/hoptree.h"

#include <gtest/gtest.h>

#include "gtfs/feed_builder.h"
#include "testing/test_city.h"

namespace staq::core {
namespace {

/// Hand-built 4-zone corridor city:
///   zones/stops/road nodes at x = 0, 1000, 2000, 3000 (y = 0);
///   one bus line with 12 trips (07:00..08:50, every 10 min), 200 s/leg.
synth::City CorridorCity() {
  synth::City city;
  city.spec = synth::CitySpec::Covely(0.06, 1);  // spec values unused here
  for (uint32_t i = 0; i < 4; ++i) {
    synth::Zone z;
    z.id = i;
    z.centroid = {1000.0 * i, 0};
    z.population = 100;
    city.zones.push_back(z);
    city.zone_node.push_back(city.road.AddNode(z.centroid));
  }
  for (uint32_t i = 0; i + 1 < 4; ++i) {
    (void)city.road.AddEdge(i, i + 1, 1000.0);
  }
  city.road.Finalize();
  city.extent = geo::BBox{0, 0, 3000, 0};

  gtfs::FeedBuilder builder;
  for (uint32_t i = 0; i < 4; ++i) {
    builder.AddStop("s", {1000.0 * i, 0});
  }
  gtfs::RouteId route = builder.AddRoute("line", 2.0);
  for (int k = 0; k < 12; ++k) {
    gtfs::TimeOfDay dep = gtfs::MakeTime(7, 0) + k * 600;
    builder.BeginTrip(route, gtfs::kEveryDay);
    for (uint32_t i = 0; i < 4; ++i) {
      (void)builder.AddCall(i, dep + 200 * static_cast<int>(i));
    }
  }
  city.feed = std::move(builder.Build()).value();
  return city;
}

class HopTreeTest : public ::testing::Test {
 protected:
  HopTreeTest()
      : city_(CorridorCity()),
        isochrones_(city_, IsochroneConfig{}),
        trees_(city_, isochrones_, gtfs::WeekdayAmPeak()) {}

  synth::City city_;
  IsochroneSet isochrones_;
  HopTreeSet trees_;
};

TEST_F(HopTreeTest, StopsAssignedToNearestZone) {
  const auto& stop_zone = trees_.stop_zone();
  ASSERT_EQ(stop_zone.size(), 4u);
  for (uint32_t s = 0; s < 4; ++s) EXPECT_EQ(stop_zone[s], s);
}

TEST_F(HopTreeTest, OutboundLeavesOfFirstZone) {
  const HopTree& ob = trees_.Outbound(0);
  EXPECT_EQ(ob.root(), 0u);
  ASSERT_EQ(ob.size(), 3u);  // zones 1, 2, 3

  const HopLeaf* leaf1 = ob.Find(1);
  const HopLeaf* leaf3 = ob.Find(3);
  ASSERT_NE(leaf1, nullptr);
  ASSERT_NE(leaf3, nullptr);
  // All 12 AM-peak departures reach each downstream zone on 1 route.
  EXPECT_EQ(leaf1->service_count, 12u);
  EXPECT_EQ(leaf1->route_count, 1u);
  EXPECT_NEAR(leaf1->mean_journey_s, 200.0, 1e-9);
  EXPECT_NEAR(leaf3->mean_journey_s, 600.0, 1e-9);
  EXPECT_EQ(ob.Find(0), nullptr);  // root is not its own leaf
}

TEST_F(HopTreeTest, TerminusHasEmptyOutboundTree) {
  EXPECT_EQ(trees_.Outbound(3).size(), 0u);
}

TEST_F(HopTreeTest, InboundLeavesOfLastZone) {
  const HopTree& ib = trees_.Inbound(3);
  ASSERT_EQ(ib.size(), 3u);  // zones 0, 1, 2 feed into 3
  const HopLeaf* leaf0 = ib.Find(0);
  ASSERT_NE(leaf0, nullptr);
  // Trips arriving at s3 within the window: departures 07:00..08:40
  // arrive 07:10..08:50 (the 08:50 trip arrives exactly 09:00, outside).
  EXPECT_EQ(leaf0->service_count, 11u);
  EXPECT_NEAR(leaf0->mean_journey_s, 600.0, 1e-9);
  EXPECT_NEAR(ib.Find(2)->mean_journey_s, 200.0, 1e-9);
}

TEST_F(HopTreeTest, OriginHasEmptyInboundTree) {
  EXPECT_EQ(trees_.Inbound(0).size(), 0u);
}

TEST_F(HopTreeTest, LeavesSortedByZoneAndFindWorks) {
  const HopTree& ob = trees_.Outbound(0);
  for (size_t i = 1; i < ob.leaves().size(); ++i) {
    EXPECT_LT(ob.leaves()[i - 1].zone, ob.leaves()[i].zone);
  }
  EXPECT_EQ(ob.Find(99), nullptr);
}

TEST_F(HopTreeTest, LeafIndexProvidesNearestLeaf) {
  const HopTree& ob = trees_.Outbound(0);
  const geo::KdTree* index = ob.LeafIndex();
  ASSERT_NE(index, nullptr);
  auto nearest = index->Nearest({2900, 0});
  EXPECT_EQ(ob.leaves()[nearest.id].zone, 3u);
  // Empty tree has no index.
  EXPECT_EQ(trees_.Outbound(3).LeafIndex(), nullptr);
}

TEST_F(HopTreeTest, ReachableZonesOneHop) {
  auto reachable = trees_.ReachableZones(0, 1);
  EXPECT_EQ(reachable, (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_TRUE(trees_.ReachableZones(3, 1).empty());
}

TEST_F(HopTreeTest, ReachableZonesMoreHopsNeverShrink) {
  auto one = trees_.ReachableZones(1, 1);
  auto two = trees_.ReachableZones(1, 2);
  EXPECT_GE(two.size(), one.size());
}

TEST_F(HopTreeTest, MaxRideCapTruncatesLeaves) {
  HopTreeOptions options;
  options.max_ride_s = 300;  // only one leg (200 s) fits
  HopTreeSet capped(city_, isochrones_, gtfs::WeekdayAmPeak(), options);
  EXPECT_EQ(capped.Outbound(0).size(), 1u);
  EXPECT_NE(capped.Outbound(0).Find(1), nullptr);
}

TEST_F(HopTreeTest, IntervalFiltersService) {
  // Sunday morning: the corridor's kEveryDay trips still run, but a window
  // before service starts is empty.
  gtfs::TimeInterval before{gtfs::MakeTime(4, 0), gtfs::MakeTime(5, 0),
                            gtfs::Day::kTuesday, "pre-dawn"};
  HopTreeSet empty_trees(city_, isochrones_, before);
  EXPECT_EQ(empty_trees.Outbound(0).size(), 0u);
}

TEST(HopTreeSyntheticTest, BuildsOnGeneratedCity) {
  synth::City city = testing::TinyCity();
  IsochroneSet isochrones(city, IsochroneConfig{});
  HopTreeSet trees(city, isochrones, gtfs::WeekdayAmPeak());
  EXPECT_EQ(trees.num_zones(), city.zones.size());
  // Most zones in a transit-served city reach something in one hop.
  size_t with_leaves = 0;
  for (uint32_t z = 0; z < city.zones.size(); ++z) {
    if (trees.Outbound(z).size() > 0) ++with_leaves;
    // Connectivity data is internally consistent on every leaf.
    for (const HopLeaf& leaf : trees.Outbound(z).leaves()) {
      EXPECT_GT(leaf.service_count, 0u);
      EXPECT_GT(leaf.route_count, 0u);
      EXPECT_LE(leaf.route_count, leaf.service_count);
      EXPECT_GT(leaf.mean_journey_s, 0.0);
      EXPECT_LT(leaf.zone, city.zones.size());
    }
  }
  EXPECT_GT(with_leaves, city.zones.size() / 2);
}

}  // namespace
}  // namespace staq::core
