#include "core/parallel_labeling.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "testing/test_city.h"

namespace staq::core {
namespace {

class ParallelLabelingTest : public ::testing::Test {
 protected:
  ParallelLabelingTest() : city_(testing::SmallCity()) {
    pois_ = city_.PoisOf(synth::PoiCategory::kSchool);
    GravityConfig gravity;
    gravity.sample_rate_per_hour = 4;
    gravity.keep_scale = 2.0;
    TodamBuilder builder(city_.zones, pois_, gtfs::WeekdayAmPeak(), gravity);
    todam_ = builder.BuildGravity(1);
    for (uint32_t z = 0; z < city_.zones.size(); ++z) {
      all_zones_.push_back(z);
    }
  }

  synth::City city_;
  std::vector<synth::Poi> pois_;
  Todam todam_;
  std::vector<uint32_t> all_zones_;
};

TEST_F(ParallelLabelingTest, MatchesSerialExactly) {
  uint64_t serial_spqs = 0, parallel_spqs = 0;
  auto serial = LabelZonesParallel(city_, todam_, all_zones_, pois_,
                                   CostKind::kJourneyTime,
                                   gtfs::Day::kTuesday, /*num_threads=*/1,
                                   {}, {}, &serial_spqs);
  auto parallel = LabelZonesParallel(city_, todam_, all_zones_, pois_,
                                     CostKind::kJourneyTime,
                                     gtfs::Day::kTuesday, /*num_threads=*/4,
                                     {}, {}, &parallel_spqs);
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(serial_spqs, parallel_spqs);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].mac, parallel[i].mac) << "zone " << i;
    EXPECT_DOUBLE_EQ(serial[i].acsd, parallel[i].acsd);
    EXPECT_EQ(serial[i].num_trips, parallel[i].num_trips);
    EXPECT_EQ(serial[i].num_walk_only, parallel[i].num_walk_only);
  }
}

TEST_F(ParallelLabelingTest, GacCostKindMatchesToo) {
  auto serial = LabelZonesParallel(city_, todam_, all_zones_, pois_,
                                   CostKind::kGeneralizedCost,
                                   gtfs::Day::kTuesday, 1);
  auto parallel = LabelZonesParallel(city_, todam_, all_zones_, pois_,
                                     CostKind::kGeneralizedCost,
                                     gtfs::Day::kTuesday, 3);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].mac, parallel[i].mac);
  }
}

TEST_F(ParallelLabelingTest, MoreThreadsThanZones) {
  std::vector<uint32_t> few{0, 1, 2};
  auto labels = LabelZonesParallel(city_, todam_, few, pois_,
                                   CostKind::kJourneyTime,
                                   gtfs::Day::kTuesday, /*num_threads=*/16);
  ASSERT_EQ(labels.size(), 3u);
  for (const ZoneLabel& label : labels) {
    EXPECT_GT(label.num_trips, 0u);
  }
}

TEST_F(ParallelLabelingTest, EmptyZoneList) {
  auto labels = LabelZonesParallel(city_, todam_, {}, pois_,
                                   CostKind::kJourneyTime,
                                   gtfs::Day::kTuesday, 4);
  EXPECT_TRUE(labels.empty());
}

TEST_F(ParallelLabelingTest, BatchedAndPerTripModesAgreeAcrossThreads) {
  uint64_t batched_spqs = 0, per_trip_spqs = 0;
  auto batched = LabelZonesParallel(
      city_, todam_, all_zones_, pois_, CostKind::kJourneyTime,
      gtfs::Day::kTuesday, /*num_threads=*/4, {}, {}, &batched_spqs,
      LabelingMode::kBatched);
  router::RouterOptions unpruned;
  unpruned.bounded_relaxation = false;
  auto per_trip = LabelZonesParallel(
      city_, todam_, all_zones_, pois_, CostKind::kJourneyTime,
      gtfs::Day::kTuesday, /*num_threads=*/4, unpruned, {}, &per_trip_spqs,
      LabelingMode::kPerTrip);
  ASSERT_EQ(batched.size(), per_trip.size());
  EXPECT_EQ(batched_spqs, per_trip_spqs);
  for (size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].mac, per_trip[i].mac) << "zone " << i;
    EXPECT_EQ(batched[i].acsd, per_trip[i].acsd) << "zone " << i;
    EXPECT_EQ(batched[i].num_infeasible, per_trip[i].num_infeasible);
    EXPECT_EQ(batched[i].num_walk_only, per_trip[i].num_walk_only);
  }
}

/// Bit-identity (not tolerance) between two labelings: the contract the
/// serve snapshots and result cache rely on is that thread count is never
/// observable in an answer.
void ExpectBitIdentical(const std::vector<ZoneLabel>& a,
                        const std::vector<ZoneLabel>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mac, b[i].mac) << "zone " << i;
    EXPECT_EQ(a[i].acsd, b[i].acsd) << "zone " << i;
    EXPECT_EQ(a[i].num_trips, b[i].num_trips) << "zone " << i;
    EXPECT_EQ(a[i].num_infeasible, b[i].num_infeasible) << "zone " << i;
    EXPECT_EQ(a[i].num_walk_only, b[i].num_walk_only) << "zone " << i;
  }
}

TEST_F(ParallelLabelingTest, ThreadCountSweepIsBitIdentical) {
  // Golden-seed determinism across the whole thread sweep, in both labeling
  // modes: 1, 2, and 8 workers partition the zones differently, yet every
  // label and the SPQ count must come out bit-identical.
  for (LabelingMode mode : {LabelingMode::kBatched, LabelingMode::kPerTrip}) {
    router::RouterOptions options;
    if (mode == LabelingMode::kPerTrip) options.bounded_relaxation = false;
    uint64_t baseline_spqs = 0;
    auto baseline = LabelZonesParallel(city_, todam_, all_zones_, pois_,
                                       CostKind::kJourneyTime,
                                       gtfs::Day::kTuesday, /*num_threads=*/1,
                                       options, {}, &baseline_spqs, mode);
    for (size_t threads : {2u, 8u}) {
      uint64_t spqs = 0;
      auto labels = LabelZonesParallel(city_, todam_, all_zones_, pois_,
                                       CostKind::kJourneyTime,
                                       gtfs::Day::kTuesday, threads, options,
                                       {}, &spqs, mode);
      SCOPED_TRACE(::testing::Message()
                   << "mode " << static_cast<int>(mode) << " threads "
                   << threads);
      EXPECT_EQ(spqs, baseline_spqs);
      ExpectBitIdentical(baseline, labels);
    }
  }
}

TEST_F(ParallelLabelingTest, ProfileModeMatchesBatchedAcrossThreads) {
  // Window-scan labeling (CSA engine, one sweep per zone) against the
  // label-correcting batched baseline. JT labels are built from journey
  // times only, which the engines produce bit-identically, so MAC/ACSD
  // must agree exactly — at every thread count, with all workers sharing
  // one connection array.
  uint64_t batched_spqs = 0;
  auto batched = LabelZonesParallel(city_, todam_, all_zones_, pois_,
                                    CostKind::kJourneyTime,
                                    gtfs::Day::kTuesday, /*num_threads=*/1,
                                    {}, {}, &batched_spqs,
                                    LabelingMode::kBatched);
  router::RouterOptions csa;
  csa.engine = router::RoutingEngine::kCsa;
  for (size_t threads : {1u, 4u, 8u}) {
    uint64_t spqs = 0;
    auto profile = LabelZonesParallel(city_, todam_, all_zones_, pois_,
                                      CostKind::kJourneyTime,
                                      gtfs::Day::kTuesday, threads, csa, {},
                                      &spqs, LabelingMode::kAuto);
    SCOPED_TRACE(::testing::Message() << "threads " << threads);
    EXPECT_EQ(spqs, batched_spqs);
    ExpectBitIdentical(batched, profile);
  }
}

TEST_F(ParallelLabelingTest, ProfileGacSweepIsBitIdentical) {
  // GAC depends on leg decomposition, which may tie-differ BETWEEN engines,
  // so the cross-thread contract is pinned within the CSA engine: the
  // thread count must never be observable in a window-scan label.
  router::RouterOptions csa;
  csa.engine = router::RoutingEngine::kCsa;
  uint64_t baseline_spqs = 0;
  auto baseline = LabelZonesParallel(city_, todam_, all_zones_, pois_,
                                     CostKind::kGeneralizedCost,
                                     gtfs::Day::kTuesday, /*num_threads=*/1,
                                     csa, {}, &baseline_spqs,
                                     LabelingMode::kProfile);
  for (size_t threads : {2u, 8u}) {
    uint64_t spqs = 0;
    auto labels = LabelZonesParallel(city_, todam_, all_zones_, pois_,
                                     CostKind::kGeneralizedCost,
                                     gtfs::Day::kTuesday, threads, csa, {},
                                     &spqs, LabelingMode::kProfile);
    SCOPED_TRACE(::testing::Message() << "threads " << threads);
    EXPECT_EQ(spqs, baseline_spqs);
    ExpectBitIdentical(baseline, labels);
  }
}

TEST(ParallelLabelingCityTest, BrindaleSweepIsBitIdentical) {
  // Second city family (the Covely fixture covers the first): Brindale's
  // radial layout produces different zone geometry and trip mixes, so a
  // scheduling-order dependence that Covely masks would surface here.
  auto built = synth::BuildCity(synth::CitySpec::Brindale(0.1, 7));
  ASSERT_TRUE(built.ok());
  synth::City city = std::move(built).value();
  std::vector<synth::Poi> pois = city.PoisOf(synth::PoiCategory::kSchool);
  ASSERT_FALSE(pois.empty());
  GravityConfig gravity;
  gravity.sample_rate_per_hour = 4;
  gravity.keep_scale = 2.0;
  TodamBuilder builder(city.zones, pois, gtfs::WeekdayAmPeak(), gravity);
  Todam todam = builder.BuildGravity(/*seed=*/3);
  std::vector<uint32_t> zones;
  for (uint32_t z = 0; z < city.zones.size(); ++z) zones.push_back(z);

  uint64_t baseline_spqs = 0;
  auto baseline = LabelZonesParallel(city, todam, zones, pois,
                                     CostKind::kJourneyTime,
                                     gtfs::Day::kTuesday, /*num_threads=*/1,
                                     {}, {}, &baseline_spqs);
  for (size_t threads : {2u, 8u}) {
    uint64_t spqs = 0;
    auto labels = LabelZonesParallel(city, todam, zones, pois,
                                     CostKind::kJourneyTime,
                                     gtfs::Day::kTuesday, threads, {}, {},
                                     &spqs);
    SCOPED_TRACE(::testing::Message() << "threads " << threads);
    EXPECT_EQ(spqs, baseline_spqs);
    ExpectBitIdentical(baseline, labels);
  }
}

TEST_F(ParallelLabelingTest, PipelineParallelMatchesSerialPredictions) {
  SsrPipeline pipeline(&city_, gtfs::WeekdayAmPeak());
  PipelineConfig config;
  config.beta = 0.2;
  config.model = ml::ModelKind::kOls;
  config.seed = 3;

  auto serial = pipeline.Run(pois_, todam_, config);
  config.labeling_threads = 4;
  auto parallel = pipeline.Run(pois_, todam_, config);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_EQ(serial.value().mac, parallel.value().mac);
  EXPECT_EQ(serial.value().acsd, parallel.value().acsd);
  EXPECT_EQ(serial.value().spqs, parallel.value().spqs);
}

TEST_F(ParallelLabelingTest, ParallelGroundTruthMatches) {
  SsrPipeline pipeline(&city_, gtfs::WeekdayAmPeak());
  GroundTruth serial = pipeline.ComputeGroundTruth(
      pois_, todam_, CostKind::kJourneyTime);
  GroundTruth parallel = pipeline.ComputeGroundTruth(
      pois_, todam_, CostKind::kJourneyTime, {}, /*num_threads=*/4);
  EXPECT_EQ(serial.mac, parallel.mac);
  EXPECT_EQ(serial.acsd, parallel.acsd);
  EXPECT_EQ(serial.spqs, parallel.spqs);
  EXPECT_DOUBLE_EQ(serial.walk_only_fraction, parallel.walk_only_fraction);
}

}  // namespace
}  // namespace staq::core
