#include "core/parallel_labeling.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "testing/test_city.h"

namespace staq::core {
namespace {

class ParallelLabelingTest : public ::testing::Test {
 protected:
  ParallelLabelingTest() : city_(testing::SmallCity()) {
    pois_ = city_.PoisOf(synth::PoiCategory::kSchool);
    GravityConfig gravity;
    gravity.sample_rate_per_hour = 4;
    gravity.keep_scale = 2.0;
    TodamBuilder builder(city_.zones, pois_, gtfs::WeekdayAmPeak(), gravity);
    todam_ = builder.BuildGravity(1);
    for (uint32_t z = 0; z < city_.zones.size(); ++z) {
      all_zones_.push_back(z);
    }
  }

  synth::City city_;
  std::vector<synth::Poi> pois_;
  Todam todam_;
  std::vector<uint32_t> all_zones_;
};

TEST_F(ParallelLabelingTest, MatchesSerialExactly) {
  uint64_t serial_spqs = 0, parallel_spqs = 0;
  auto serial = LabelZonesParallel(city_, todam_, all_zones_, pois_,
                                   CostKind::kJourneyTime,
                                   gtfs::Day::kTuesday, /*num_threads=*/1,
                                   {}, {}, &serial_spqs);
  auto parallel = LabelZonesParallel(city_, todam_, all_zones_, pois_,
                                     CostKind::kJourneyTime,
                                     gtfs::Day::kTuesday, /*num_threads=*/4,
                                     {}, {}, &parallel_spqs);
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(serial_spqs, parallel_spqs);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].mac, parallel[i].mac) << "zone " << i;
    EXPECT_DOUBLE_EQ(serial[i].acsd, parallel[i].acsd);
    EXPECT_EQ(serial[i].num_trips, parallel[i].num_trips);
    EXPECT_EQ(serial[i].num_walk_only, parallel[i].num_walk_only);
  }
}

TEST_F(ParallelLabelingTest, GacCostKindMatchesToo) {
  auto serial = LabelZonesParallel(city_, todam_, all_zones_, pois_,
                                   CostKind::kGeneralizedCost,
                                   gtfs::Day::kTuesday, 1);
  auto parallel = LabelZonesParallel(city_, todam_, all_zones_, pois_,
                                     CostKind::kGeneralizedCost,
                                     gtfs::Day::kTuesday, 3);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].mac, parallel[i].mac);
  }
}

TEST_F(ParallelLabelingTest, MoreThreadsThanZones) {
  std::vector<uint32_t> few{0, 1, 2};
  auto labels = LabelZonesParallel(city_, todam_, few, pois_,
                                   CostKind::kJourneyTime,
                                   gtfs::Day::kTuesday, /*num_threads=*/16);
  ASSERT_EQ(labels.size(), 3u);
  for (const ZoneLabel& label : labels) {
    EXPECT_GT(label.num_trips, 0u);
  }
}

TEST_F(ParallelLabelingTest, EmptyZoneList) {
  auto labels = LabelZonesParallel(city_, todam_, {}, pois_,
                                   CostKind::kJourneyTime,
                                   gtfs::Day::kTuesday, 4);
  EXPECT_TRUE(labels.empty());
}

TEST_F(ParallelLabelingTest, BatchedAndPerTripModesAgreeAcrossThreads) {
  uint64_t batched_spqs = 0, per_trip_spqs = 0;
  auto batched = LabelZonesParallel(
      city_, todam_, all_zones_, pois_, CostKind::kJourneyTime,
      gtfs::Day::kTuesday, /*num_threads=*/4, {}, {}, &batched_spqs,
      LabelingMode::kBatched);
  router::RouterOptions unpruned;
  unpruned.bounded_relaxation = false;
  auto per_trip = LabelZonesParallel(
      city_, todam_, all_zones_, pois_, CostKind::kJourneyTime,
      gtfs::Day::kTuesday, /*num_threads=*/4, unpruned, {}, &per_trip_spqs,
      LabelingMode::kPerTrip);
  ASSERT_EQ(batched.size(), per_trip.size());
  EXPECT_EQ(batched_spqs, per_trip_spqs);
  for (size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].mac, per_trip[i].mac) << "zone " << i;
    EXPECT_EQ(batched[i].acsd, per_trip[i].acsd) << "zone " << i;
    EXPECT_EQ(batched[i].num_infeasible, per_trip[i].num_infeasible);
    EXPECT_EQ(batched[i].num_walk_only, per_trip[i].num_walk_only);
  }
}

TEST_F(ParallelLabelingTest, PipelineParallelMatchesSerialPredictions) {
  SsrPipeline pipeline(&city_, gtfs::WeekdayAmPeak());
  PipelineConfig config;
  config.beta = 0.2;
  config.model = ml::ModelKind::kOls;
  config.seed = 3;

  auto serial = pipeline.Run(pois_, todam_, config);
  config.labeling_threads = 4;
  auto parallel = pipeline.Run(pois_, todam_, config);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_EQ(serial.value().mac, parallel.value().mac);
  EXPECT_EQ(serial.value().acsd, parallel.value().acsd);
  EXPECT_EQ(serial.value().spqs, parallel.value().spqs);
}

TEST_F(ParallelLabelingTest, ParallelGroundTruthMatches) {
  SsrPipeline pipeline(&city_, gtfs::WeekdayAmPeak());
  GroundTruth serial = pipeline.ComputeGroundTruth(
      pois_, todam_, CostKind::kJourneyTime);
  GroundTruth parallel = pipeline.ComputeGroundTruth(
      pois_, todam_, CostKind::kJourneyTime, {}, /*num_threads=*/4);
  EXPECT_EQ(serial.mac, parallel.mac);
  EXPECT_EQ(serial.acsd, parallel.acsd);
  EXPECT_EQ(serial.spqs, parallel.spqs);
  EXPECT_DOUBLE_EQ(serial.walk_only_fraction, parallel.walk_only_fraction);
}

}  // namespace
}  // namespace staq::core
