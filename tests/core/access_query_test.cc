#include "core/access_query.h"

#include <gtest/gtest.h>

#include "testing/test_city.h"

namespace staq::core {
namespace {

AccessQueryOptions FastOptions(bool exact = false) {
  AccessQueryOptions options;
  options.exact = exact;
  options.beta = 0.2;
  options.model = ml::ModelKind::kOls;
  options.gravity.sample_rate_per_hour = 4;
  options.gravity.keep_scale = 2.0;
  options.seed = 2;
  return options;
}

class AccessQueryTest : public ::testing::Test {
 protected:
  AccessQueryTest()
      : engine_(testing::SmallCity(), gtfs::WeekdayAmPeak()) {}

  AccessQueryEngine engine_;
};

TEST_F(AccessQueryTest, SsrQueryAnswersWithFullCoverage) {
  auto result = engine_.Query(synth::PoiCategory::kSchool, FastOptions());
  ASSERT_TRUE(result.ok()) << result.status();
  const auto& r = result.value();
  EXPECT_EQ(r.mac.size(), engine_.city().zones.size());
  EXPECT_EQ(r.classes.size(), r.mac.size());
  EXPECT_GT(r.mean_mac, 0.0);
  EXPECT_GT(r.fairness, 0.0);
  EXPECT_LE(r.fairness, 1.0);
  EXPECT_GT(r.population_fairness, 0.0);
  EXPECT_GT(r.vulnerable_fairness, 0.0);
  EXPECT_GT(r.spqs, 0u);
  EXPECT_GT(r.gravity_trips, 0u);
  EXPECT_GT(r.elapsed_s, 0.0);
}

TEST_F(AccessQueryTest, ExactQueryUsesAllTrips) {
  auto ssr = engine_.Query(synth::PoiCategory::kVaxCenter, FastOptions());
  auto exact = engine_.Query(synth::PoiCategory::kVaxCenter,
                             FastOptions(/*exact=*/true));
  ASSERT_TRUE(ssr.ok() && exact.ok());
  EXPECT_EQ(exact.value().spqs, exact.value().gravity_trips);
  EXPECT_LT(ssr.value().spqs, exact.value().spqs);
}

TEST_F(AccessQueryTest, SsrApproximatesExactMeans) {
  AccessQueryOptions options = FastOptions();
  options.model = ml::ModelKind::kMlp;  // OLS is erratic at small budgets
  options.beta = 0.3;
  auto ssr = engine_.Query(synth::PoiCategory::kSchool, options);
  auto exact =
      engine_.Query(synth::PoiCategory::kSchool, FastOptions(true));
  ASSERT_TRUE(ssr.ok() && exact.ok());
  // Not exact, but within a generous band at beta = 30%.
  EXPECT_NEAR(ssr.value().mean_mac / exact.value().mean_mac, 1.0, 0.5);
  EXPECT_NEAR(ssr.value().fairness, exact.value().fairness, 0.3);
}

TEST_F(AccessQueryTest, UnknownCategoryEmptyCityFails) {
  synth::City city = testing::SmallCity();
  city.pois.clear();
  AccessQueryEngine empty(std::move(city), gtfs::WeekdayAmPeak());
  auto result = empty.Query(synth::PoiCategory::kSchool, FastOptions());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
}

TEST_F(AccessQueryTest, AddPoiImprovesItsNeighborhood) {
  AccessQueryOptions options = FastOptions(/*exact=*/true);
  auto before = engine_.Query(synth::PoiCategory::kHospital, options);
  ASSERT_TRUE(before.ok());

  // Drop a new hospital at the worst-served zone's centroid.
  size_t worst = 0;
  for (size_t z = 1; z < before.value().mac.size(); ++z) {
    if (before.value().mac[z] > before.value().mac[worst]) worst = z;
  }
  geo::Point site = engine_.city().zones[worst].centroid;
  uint32_t id = engine_.AddPoi(synth::PoiCategory::kHospital, site);

  auto after = engine_.Query(synth::PoiCategory::kHospital, options);
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after.value().mac[worst], before.value().mac[worst]);

  // Removing it restores the original answer.
  ASSERT_TRUE(engine_.RemovePoi(id).ok());
  auto restored = engine_.Query(synth::PoiCategory::kHospital, options);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().mac, before.value().mac);
}

TEST_F(AccessQueryTest, RemoveUnknownPoiFails) {
  EXPECT_EQ(engine_.RemovePoi(999999).code(), util::StatusCode::kNotFound);
}

TEST_F(AccessQueryTest, SetIntervalRerunsOfflinePhase) {
  auto am = engine_.Query(synth::PoiCategory::kSchool, FastOptions(true));
  ASSERT_TRUE(am.ok());
  engine_.SetInterval(gtfs::SundayMorning());
  EXPECT_EQ(engine_.interval().day, gtfs::Day::kSunday);
  auto sunday = engine_.Query(synth::PoiCategory::kSchool, FastOptions(true));
  ASSERT_TRUE(sunday.ok());
  // Sparser Sunday service: mean access cost should not improve.
  EXPECT_GE(sunday.value().mean_mac, 0.9 * am.value().mean_mac);
}

TEST_F(AccessQueryTest, ClassesPartitionTheCity) {
  auto result = engine_.Query(synth::PoiCategory::kSchool, FastOptions(true));
  ASSERT_TRUE(result.ok());
  int histogram[4] = {0, 0, 0, 0};
  for (int c : result.value().classes) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 4);
    ++histogram[c];
  }
  // The classification rules guarantee at least "best" and one bad class
  // are non-empty for any non-constant distribution.
  EXPECT_GT(histogram[static_cast<int>(AccessClass::kBest)], 0);
}

}  // namespace
}  // namespace staq::core
