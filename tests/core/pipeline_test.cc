#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "testing/test_city.h"

namespace staq::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : city_(testing::SmallCity()),
        pipeline_(&city_, gtfs::WeekdayAmPeak()) {
    pois_ = city_.PoisOf(synth::PoiCategory::kVaxCenter);
    GravityConfig gravity = CalibratedGravityConfig(city_.spec);
    gravity.sample_rate_per_hour = 4;  // keep the test fast
    todam_ = pipeline_.BuildGravityTodam(pois_, gravity, 1);
  }

  PipelineConfig FastConfig(ml::ModelKind model, double beta) {
    PipelineConfig config;
    config.beta = beta;
    config.model = model;
    config.seed = 3;
    return config;
  }

  synth::City city_;
  SsrPipeline pipeline_;
  std::vector<synth::Poi> pois_;
  Todam todam_;
};

TEST_F(PipelineTest, OfflinePhaseRecorded) {
  EXPECT_GT(pipeline_.offline_seconds(), 0.0);
  EXPECT_EQ(pipeline_.isochrones().size(), city_.zones.size());
  EXPECT_EQ(pipeline_.hop_trees().num_zones(), city_.zones.size());
}

TEST_F(PipelineTest, RunProducesFullCoverage) {
  auto run = pipeline_.Run(pois_, todam_, FastConfig(ml::ModelKind::kOls, 0.2));
  ASSERT_TRUE(run.ok()) << run.status();
  const PipelineResult& result = run.value();
  EXPECT_EQ(result.mac.size(), city_.zones.size());
  EXPECT_EQ(result.acsd.size(), city_.zones.size());
  EXPECT_EQ(result.labeled.size(),
            static_cast<size_t>(std::ceil(0.2 * city_.zones.size())));
  for (size_t z = 0; z < result.mac.size(); ++z) {
    EXPECT_GE(result.mac[z], 0.0);
    EXPECT_GE(result.acsd[z], 0.0);
    EXPECT_TRUE(std::isfinite(result.mac[z]));
  }
  EXPECT_GT(result.spqs, 0u);
  EXPECT_GT(result.timings.labeling_s, 0.0);
  EXPECT_GT(result.timings.TotalSeconds(), 0.0);
}

TEST_F(PipelineTest, LabeledZonesCarryExactValues) {
  auto run = pipeline_.Run(pois_, todam_, FastConfig(ml::ModelKind::kOls, 0.2));
  ASSERT_TRUE(run.ok());
  GroundTruth truth =
      pipeline_.ComputeGroundTruth(pois_, todam_, CostKind::kJourneyTime);
  for (uint32_t z : run.value().labeled) {
    EXPECT_NEAR(run.value().mac[z], truth.mac[z], 1e-9);
    EXPECT_NEAR(run.value().acsd[z], truth.acsd[z], 1e-9);
  }
}

TEST_F(PipelineTest, SpqCountProportionalToBeta) {
  auto small = pipeline_.Run(pois_, todam_, FastConfig(ml::ModelKind::kOls, 0.05));
  auto large = pipeline_.Run(pois_, todam_, FastConfig(ml::ModelKind::kOls, 0.5));
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_LT(small.value().spqs, large.value().spqs);
  GroundTruth truth =
      pipeline_.ComputeGroundTruth(pois_, todam_, CostKind::kJourneyTime);
  EXPECT_LT(large.value().spqs, truth.spqs);
  EXPECT_EQ(truth.spqs, todam_.num_trips());
}

TEST_F(PipelineTest, PrecomputedFeaturesReproduceRun) {
  ml::Matrix features = pipeline_.feature_extractor().ExtractZoneMatrix(
      pois_, todam_.alpha());
  PipelineConfig config = FastConfig(ml::ModelKind::kOls, 0.2);
  auto with = pipeline_.Run(pois_, todam_, config, &features, 0.123);
  auto without = pipeline_.Run(pois_, todam_, config);
  ASSERT_TRUE(with.ok() && without.ok());
  EXPECT_EQ(with.value().mac, without.value().mac);
  EXPECT_DOUBLE_EQ(with.value().timings.features_s, 0.123);
}

TEST_F(PipelineTest, GroundTruthCoversAllZones) {
  GroundTruth truth =
      pipeline_.ComputeGroundTruth(pois_, todam_, CostKind::kJourneyTime);
  EXPECT_EQ(truth.mac.size(), city_.zones.size());
  EXPECT_EQ(truth.spqs, todam_.num_trips());
  EXPECT_GE(truth.walk_only_fraction, 0.0);
  EXPECT_LE(truth.walk_only_fraction, 1.0);
  EXPECT_GT(truth.labeling_s, 0.0);
}

TEST_F(PipelineTest, EvaluationMetricsSensible) {
  GroundTruth truth =
      pipeline_.ComputeGroundTruth(pois_, todam_, CostKind::kJourneyTime);
  auto run = pipeline_.Run(pois_, todam_, FastConfig(ml::ModelKind::kMlp, 0.3));
  ASSERT_TRUE(run.ok());
  EvaluationMetrics metrics = Evaluate(truth, run.value());
  EXPECT_GE(metrics.mac_mae, 0.0);
  EXPECT_GE(metrics.mac_corr, -1.0);
  EXPECT_LE(metrics.mac_corr, 1.0);
  EXPECT_GE(metrics.class_accuracy, 0.0);
  EXPECT_LE(metrics.class_accuracy, 1.0);
  EXPECT_GE(metrics.fie, 0.0);
  // With 30% labels on a small city the MLP should be clearly informative.
  EXPECT_GT(metrics.mac_corr, 0.3);
}

TEST_F(PipelineTest, PerfectPredictionGivesZeroErrors) {
  GroundTruth truth =
      pipeline_.ComputeGroundTruth(pois_, todam_, CostKind::kJourneyTime);
  PipelineResult perfect;
  perfect.mac = truth.mac;
  perfect.acsd = truth.acsd;
  perfect.labeled = {0, 1};
  EvaluationMetrics metrics = Evaluate(truth, perfect);
  EXPECT_DOUBLE_EQ(metrics.mac_mae, 0.0);
  EXPECT_NEAR(metrics.mac_corr, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(metrics.class_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(metrics.fie, 0.0);
}

TEST_F(PipelineTest, RejectsInvalidBeta) {
  auto run = pipeline_.Run(pois_, todam_, FastConfig(ml::ModelKind::kOls, 0.0));
  EXPECT_FALSE(run.ok());
}

TEST_F(PipelineTest, RejectsInvalidGacWeights) {
  PipelineConfig config = FastConfig(ml::ModelKind::kOls, 0.2);
  config.cost = CostKind::kGeneralizedCost;
  config.gac.value_of_time = 0.0;  // division by zero in Eq. 1
  EXPECT_FALSE(pipeline_.Run(pois_, todam_, config).ok());
  config.gac = router::GacWeights{};
  config.gac.lambda_wt = -1.0;
  EXPECT_FALSE(pipeline_.Run(pois_, todam_, config).ok());
  // JT runs ignore GAC weights entirely.
  config.cost = CostKind::kJourneyTime;
  EXPECT_TRUE(pipeline_.Run(pois_, todam_, config).ok());
}

TEST_F(PipelineTest, DeterministicForSameConfig) {
  PipelineConfig config = FastConfig(ml::ModelKind::kMlp, 0.2);
  auto a = pipeline_.Run(pois_, todam_, config);
  auto b = pipeline_.Run(pois_, todam_, config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().mac, b.value().mac);
  EXPECT_EQ(a.value().acsd, b.value().acsd);
  EXPECT_EQ(a.value().labeled, b.value().labeled);
}

TEST_F(PipelineTest, GacCostKindRunsEndToEnd) {
  PipelineConfig config = FastConfig(ml::ModelKind::kOls, 0.2);
  config.cost = CostKind::kGeneralizedCost;
  auto run = pipeline_.Run(pois_, todam_, config);
  ASSERT_TRUE(run.ok());
  GroundTruth jt_truth =
      pipeline_.ComputeGroundTruth(pois_, todam_, CostKind::kJourneyTime);
  GroundTruth gac_truth = pipeline_.ComputeGroundTruth(
      pois_, todam_, CostKind::kGeneralizedCost);
  // Generalized costs dominate raw journey times on average.
  double jt_mean = 0, gac_mean = 0;
  for (size_t z = 0; z < jt_truth.mac.size(); ++z) {
    jt_mean += jt_truth.mac[z];
    gac_mean += gac_truth.mac[z];
  }
  EXPECT_GT(gac_mean, jt_mean);
}

}  // namespace
}  // namespace staq::core
