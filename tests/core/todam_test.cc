#include "core/todam.h"

#include <gtest/gtest.h>

#include "testing/test_city.h"

namespace staq::core {
namespace {

class TodamTest : public ::testing::Test {
 protected:
  TodamTest() : city_(testing::TinyCity()) {
    pois_ = city_.PoisOf(synth::PoiCategory::kSchool);
    config_.sample_rate_per_hour = 6;
    config_.decay_scale_m = 3000;
    config_.keep_scale = 2.0;
  }

  synth::City city_;
  std::vector<synth::Poi> pois_;
  gtfs::TimeInterval interval_ = gtfs::WeekdayAmPeak();
  GravityConfig config_;
};

TEST_F(TodamTest, SamplesPerPairFollowsRateAndDuration) {
  TodamBuilder builder(city_.zones, pois_, interval_, config_);
  EXPECT_EQ(builder.SamplesPerPair(), 12u);  // 6/hr x 2h
}

TEST_F(TodamTest, FullCountIsProduct) {
  TodamBuilder builder(city_.zones, pois_, interval_, config_);
  EXPECT_EQ(builder.FullTripCount(),
            city_.zones.size() * pois_.size() * 12);
}

TEST_F(TodamTest, FullBuildMaterializesEveryTrip) {
  TodamBuilder builder(city_.zones, pois_, interval_, config_);
  Todam full = builder.BuildFull(1);
  EXPECT_EQ(full.num_trips(), builder.FullTripCount());
  for (uint32_t z = 0; z < city_.zones.size(); ++z) {
    EXPECT_EQ(full.TripsFor(z).size(), pois_.size() * 12);
  }
}

TEST_F(TodamTest, TripTimesInsideInterval) {
  TodamBuilder builder(city_.zones, pois_, interval_, config_);
  Todam gravity = builder.BuildGravity(1);
  for (uint32_t z = 0; z < gravity.num_zones(); ++z) {
    for (const TripEntry& trip : gravity.TripsFor(z)) {
      EXPECT_GE(trip.depart, interval_.start);
      EXPECT_LT(trip.depart, interval_.end);
      EXPECT_LT(trip.poi, pois_.size());
    }
  }
}

TEST_F(TodamTest, GravitySmallerThanFull) {
  TodamBuilder builder(city_.zones, pois_, interval_, config_);
  Todam gravity = builder.BuildGravity(1);
  EXPECT_LT(gravity.num_trips(), builder.FullTripCount());
  EXPECT_GT(gravity.num_trips(), 0u);
}

TEST_F(TodamTest, CountMatchesMaterializedBuild) {
  TodamBuilder builder(city_.zones, pois_, interval_, config_);
  for (uint64_t seed : {1ull, 2ull, 42ull}) {
    Todam gravity = builder.BuildGravity(seed);
    EXPECT_EQ(builder.GravityTripCount(seed), gravity.num_trips())
        << "seed " << seed;
  }
}

TEST_F(TodamTest, DeterministicForSeed) {
  TodamBuilder builder(city_.zones, pois_, interval_, config_);
  Todam a = builder.BuildGravity(7);
  Todam b = builder.BuildGravity(7);
  ASSERT_EQ(a.num_trips(), b.num_trips());
  for (uint32_t z = 0; z < a.num_zones(); ++z) {
    const auto& ta = a.TripsFor(z);
    const auto& tb = b.TripsFor(z);
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].poi, tb[i].poi);
      EXPECT_EQ(ta[i].depart, tb[i].depart);
    }
  }
}

TEST_F(TodamTest, SeedsChangeSampling) {
  TodamBuilder builder(city_.zones, pois_, interval_, config_);
  Todam a = builder.BuildGravity(1);
  Todam b = builder.BuildGravity(2);
  // Trip counts are random; at minimum the sampled start times must differ.
  bool any_diff = a.num_trips() != b.num_trips();
  for (uint32_t z = 0; z < a.num_zones() && !any_diff; ++z) {
    const auto& ta = a.TripsFor(z);
    const auto& tb = b.TripsFor(z);
    if (ta.size() != tb.size()) {
      any_diff = true;
      break;
    }
    for (size_t i = 0; i < ta.size(); ++i) {
      if (ta[i].depart != tb[i].depart) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(TodamTest, HigherKeepScaleKeepsMoreTrips) {
  GravityConfig low = config_;
  low.keep_scale = 0.5;
  GravityConfig high = config_;
  high.keep_scale = 8.0;
  TodamBuilder lb(city_.zones, pois_, interval_, low);
  TodamBuilder hb(city_.zones, pois_, interval_, high);
  EXPECT_LT(lb.BuildGravity(1).num_trips(), hb.BuildGravity(1).num_trips());
}

TEST_F(TodamTest, SaturatedKeepEqualsFull) {
  GravityConfig saturated = config_;
  saturated.keep_scale = 1e9;  // keep probability clamps to 1 everywhere
  TodamBuilder builder(city_.zones, pois_, interval_, saturated);
  EXPECT_EQ(builder.BuildGravity(1).num_trips(), builder.FullTripCount());
  EXPECT_EQ(builder.GravityTripCount(1), builder.FullTripCount());
}

TEST_F(TodamTest, ExpectedKeepFractionRoughlyHolds) {
  // With α normalised and keep = min(1, k α), the expected keep fraction
  // per zone is sum_j min(1, k α_j) / |P|; verify the realised count is
  // within a loose band of the expectation.
  TodamBuilder builder(city_.zones, pois_, interval_, config_);
  auto alpha = AttractivenessMatrix(city_.zones, pois_, config_.decay_scale_m);
  double expected = 0;
  for (const auto& row : alpha) {
    for (double a : row) {
      expected += std::min(1.0, config_.keep_scale * a) * 12;
    }
  }
  Todam gravity = builder.BuildGravity(3);
  double realised = static_cast<double>(gravity.num_trips());
  EXPECT_NEAR(realised / expected, 1.0, 0.05);
}

TEST_F(TodamTest, WalkOnlyFractionBounds) {
  TodamBuilder builder(city_.zones, pois_, interval_, config_);
  Todam gravity = builder.BuildGravity(1);
  double frac = gravity.WalkOnlyFraction(city_.zones, pois_, 600);
  EXPECT_GE(frac, 0.0);
  EXPECT_LE(frac, 1.0);
  // Everything is walkable with an enormous reach, nothing with zero.
  EXPECT_DOUBLE_EQ(gravity.WalkOnlyFraction(city_.zones, pois_, 1e9), 1.0);
  EXPECT_DOUBLE_EQ(gravity.WalkOnlyFraction(city_.zones, pois_, 0.0), 0.0);
}

TEST_F(TodamTest, AlphaExposedForAggregation) {
  TodamBuilder builder(city_.zones, pois_, interval_, config_);
  Todam gravity = builder.BuildGravity(1);
  ASSERT_EQ(gravity.alpha().size(), city_.zones.size());
  ASSERT_EQ(gravity.alpha()[0].size(), pois_.size());
}

}  // namespace
}  // namespace staq::core
