#include "core/interchange.h"

#include <gtest/gtest.h>

#include "testing/test_city.h"

namespace staq::core {
namespace {

/// Builds a HopTree with the given leaf zones/positions directly.
HopTree MakeTree(uint32_t root,
                 std::vector<std::pair<uint32_t, geo::Point>> leaves,
                 uint32_t service_count = 5) {
  std::vector<HopLeaf> hop_leaves;
  for (auto& [zone, pos] : leaves) {
    HopLeaf leaf;
    leaf.zone = zone;
    leaf.position = pos;
    leaf.service_count = service_count;
    leaf.route_count = 1;
    leaf.mean_journey_s = 300;
    hop_leaves.push_back(leaf);
  }
  return HopTree(root, std::move(hop_leaves));
}

class InterchangeTest : public ::testing::Test {
 protected:
  InterchangeTest()
      : city_(testing::TinyCity()),
        isochrones_(city_, IsochroneConfig{}) {}

  synth::City city_;
  IsochroneSet isochrones_;
};

TEST_F(InterchangeTest, SharedZoneAlwaysInterchanges) {
  geo::Point p = city_.zones[10].centroid;
  HopTree ob = MakeTree(0, {{10, p}});
  HopTree ib = MakeTree(20, {{10, p}});
  auto ics = FindInterchanges(ob, ib, isochrones_);
  ASSERT_EQ(ics.size(), 1u);
  EXPECT_EQ(ics[0].ob_zone, 10u);
  EXPECT_EQ(ics[0].ib_zone, 10u);
  EXPECT_DOUBLE_EQ(ics[0].gap_m, 0.0);
}

TEST_F(InterchangeTest, AdjacentZonesInterchangeViaIsochroneOverlap) {
  // Lattice neighbours' isochrones overlap (see isochrone tests).
  HopTree ob = MakeTree(0, {{0, city_.zones[0].centroid}});
  HopTree ib = MakeTree(30, {{1, city_.zones[1].centroid}});
  auto ics = FindInterchanges(ob, ib, isochrones_);
  ASSERT_EQ(ics.size(), 1u);
  EXPECT_EQ(ics[0].ob_zone, 0u);
  EXPECT_EQ(ics[0].ib_zone, 1u);
  EXPECT_GT(ics[0].gap_m, 0.0);
}

TEST_F(InterchangeTest, DistantLeavesDoNotInterchange) {
  uint32_t far = static_cast<uint32_t>(city_.zones.size() - 1);
  HopTree ob = MakeTree(0, {{0, city_.zones[0].centroid}});
  HopTree ib = MakeTree(30, {{far, city_.zones[far].centroid}});
  EXPECT_TRUE(FindInterchanges(ob, ib, isochrones_).empty());
}

TEST_F(InterchangeTest, EmptyTreesYieldNoInterchanges) {
  HopTree empty;
  HopTree ob = MakeTree(0, {{0, city_.zones[0].centroid}});
  EXPECT_TRUE(FindInterchanges(ob, empty, isochrones_).empty());
  EXPECT_TRUE(FindInterchanges(empty, ob, isochrones_).empty());
}

TEST_F(InterchangeTest, StrengthIsMinOfServiceCounts) {
  geo::Point p = city_.zones[10].centroid;
  std::vector<HopLeaf> ob_leaves(1), ib_leaves(1);
  ob_leaves[0] = HopLeaf{10, 12, 2, 300, p};
  ib_leaves[0] = HopLeaf{10, 4, 1, 200, p};
  auto ics = FindInterchanges(HopTree(0, std::move(ob_leaves)),
                              HopTree(1, std::move(ib_leaves)), isochrones_);
  ASSERT_EQ(ics.size(), 1u);
  EXPECT_EQ(ics[0].strength, 4u);
}

TEST_F(InterchangeTest, PositionIsMidpoint) {
  geo::Point a = city_.zones[0].centroid;
  geo::Point b = city_.zones[1].centroid;
  HopTree ob = MakeTree(5, {{0, a}});
  HopTree ib = MakeTree(6, {{1, b}});
  auto ics = FindInterchanges(ob, ib, isochrones_);
  ASSERT_EQ(ics.size(), 1u);
  EXPECT_NEAR(ics[0].position.x, (a.x + b.x) / 2, 1e-9);
  EXPECT_NEAR(ics[0].position.y, (a.y + b.y) / 2, 1e-9);
}

TEST_F(InterchangeTest, OneInterchangeCandidatePerOutboundLeaf) {
  // k-NN with k = 1: each OB leaf nominates at most one interchange.
  std::vector<std::pair<uint32_t, geo::Point>> ob_leaves;
  for (uint32_t z = 0; z < 6; ++z) {
    ob_leaves.push_back({z, city_.zones[z].centroid});
  }
  HopTree ob = MakeTree(50, ob_leaves);
  HopTree ib = MakeTree(51, {{0, city_.zones[0].centroid},
                             {3, city_.zones[3].centroid}});
  auto ics = FindInterchanges(ob, ib, isochrones_);
  EXPECT_LE(ics.size(), 6u);
  EXPECT_GE(ics.size(), 2u);  // the exact-zone matches at least
}

}  // namespace
}  // namespace staq::core
