#include "core/temporal.h"

#include <gtest/gtest.h>

#include "testing/test_city.h"

namespace staq::core {
namespace {

AccessQueryOptions ExactOptions() {
  AccessQueryOptions options;
  options.exact = true;
  options.gravity.sample_rate_per_hour = 4;
  options.gravity.keep_scale = 2.0;
  return options;
}

class TemporalTest : public ::testing::Test {
 protected:
  TemporalTest() : engine_(testing::SmallCity(), gtfs::WeekdayAmPeak()) {}

  AccessQueryEngine engine_;
};

TEST_F(TemporalTest, CompareIntervalsReturnsOnePerInterval) {
  auto results = CompareIntervals(
      &engine_, synth::PoiCategory::kSchool, ExactOptions(),
      {gtfs::WeekdayAmPeak(), gtfs::SundayMorning()});
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results.value().size(), 2u);
  EXPECT_EQ(results.value()[0].interval.label, "weekday-am-peak");
  EXPECT_EQ(results.value()[1].interval.label, "sunday-morning");
  EXPECT_EQ(results.value()[0].result.mac.size(),
            engine_.city().zones.size());
}

TEST_F(TemporalTest, EmptyIntervalListRejected) {
  auto results = CompareIntervals(&engine_, synth::PoiCategory::kSchool,
                                  ExactOptions(), {});
  EXPECT_FALSE(results.ok());
}

TEST_F(TemporalTest, SundayAccessNoBetterThanWeekday) {
  auto results = CompareIntervals(
      &engine_, synth::PoiCategory::kSchool, ExactOptions(),
      {gtfs::WeekdayAmPeak(), gtfs::SundayMorning()});
  ASSERT_TRUE(results.ok());
  // Weekend headways are doubled in the generator, so mean access cannot
  // meaningfully improve.
  EXPECT_GE(results.value()[1].result.mean_mac,
            0.95 * results.value()[0].result.mean_mac);
}

TEST_F(TemporalTest, TemporalSpreadNonNegativeAndZeroForSingleInterval) {
  auto one = CompareIntervals(&engine_, synth::PoiCategory::kSchool,
                              ExactOptions(), {gtfs::WeekdayAmPeak()});
  ASSERT_TRUE(one.ok());
  for (double s : TemporalSpread(one.value())) {
    EXPECT_DOUBLE_EQ(s, 0.0);
  }

  auto two = CompareIntervals(
      &engine_, synth::PoiCategory::kSchool, ExactOptions(),
      {gtfs::WeekdayAmPeak(), gtfs::SundayMorning()});
  ASSERT_TRUE(two.ok());
  auto spread = TemporalSpread(two.value());
  ASSERT_EQ(spread.size(), engine_.city().zones.size());
  double total = 0;
  for (double s : spread) {
    EXPECT_GE(s, 0.0);
    total += s;
  }
  EXPECT_GT(total, 0.0);  // schedules differ, so something must move
}

TEST_F(TemporalTest, SpreadMatchesManualComputation) {
  auto results = CompareIntervals(
      &engine_, synth::PoiCategory::kVaxCenter, ExactOptions(),
      {gtfs::WeekdayAmPeak(), gtfs::WeekdayOffPeak()});
  ASSERT_TRUE(results.ok());
  auto spread = TemporalSpread(results.value());
  for (size_t z = 0; z < spread.size(); ++z) {
    double a = results.value()[0].result.mac[z];
    double b = results.value()[1].result.mac[z];
    EXPECT_NEAR(spread[z], std::abs(a - b), 1e-9);
  }
}

TEST_F(TemporalTest, AccessDesertsDetectedAtHugeFactorOnlyWhenReal) {
  auto results = CompareIntervals(
      &engine_, synth::PoiCategory::kSchool, ExactOptions(),
      {gtfs::WeekdayAmPeak(), gtfs::SundayMorning()});
  ASSERT_TRUE(results.ok());
  // factor 1.0: any zone that worsens at all is flagged.
  auto any_worse = TemporalAccessDeserts(results.value(), 1.0);
  // factor 100: nothing degrades by 100x in this city.
  auto extreme = TemporalAccessDeserts(results.value(), 100.0);
  EXPECT_GE(any_worse.size(), extreme.size());
  EXPECT_TRUE(extreme.empty());
  for (uint32_t z : any_worse) {
    EXPECT_LT(z, engine_.city().zones.size());
  }
}

}  // namespace
}  // namespace staq::core
