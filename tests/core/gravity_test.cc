#include "core/gravity.h"

#include <gtest/gtest.h>

#include "testing/test_city.h"

namespace staq::core {
namespace {

TEST(DistanceDecayTest, MonotoneDecreasing) {
  EXPECT_DOUBLE_EQ(DistanceDecay(0, 1000), 1.0);
  EXPECT_GT(DistanceDecay(100, 1000), DistanceDecay(200, 1000));
  EXPECT_NEAR(DistanceDecay(1000, 1000), std::exp(-1.0), 1e-12);
}

TEST(DistanceDecayTest, ScaleStretchesDecay) {
  // Larger scale -> flatter decay at the same distance.
  EXPECT_GT(DistanceDecay(2000, 5000), DistanceDecay(2000, 1000));
}

TEST(AttractivenessTest, RowIsNormalized) {
  std::vector<synth::Poi> pois{
      {0, synth::PoiCategory::kSchool, {100, 0}},
      {1, synth::PoiCategory::kSchool, {2000, 0}},
      {2, synth::PoiCategory::kSchool, {8000, 0}},
  };
  auto row = AttractivenessRow({0, 0}, pois, 3000);
  ASSERT_EQ(row.size(), 3u);
  double sum = row[0] + row[1] + row[2];
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Closer POI is more attractive.
  EXPECT_GT(row[0], row[1]);
  EXPECT_GT(row[1], row[2]);
  for (double a : row) EXPECT_GT(a, 0.0);
}

TEST(AttractivenessTest, EmptyPoiSetYieldsEmptyRow) {
  auto row = AttractivenessRow({0, 0}, {}, 3000);
  EXPECT_TRUE(row.empty());
}

TEST(AttractivenessTest, EquidistantPoisShareEqually) {
  std::vector<synth::Poi> pois{
      {0, synth::PoiCategory::kSchool, {1000, 0}},
      {1, synth::PoiCategory::kSchool, {-1000, 0}},
      {2, synth::PoiCategory::kSchool, {0, 1000}},
  };
  auto row = AttractivenessRow({0, 0}, pois, 3000);
  EXPECT_NEAR(row[0], 1.0 / 3, 1e-12);
  EXPECT_NEAR(row[1], 1.0 / 3, 1e-12);
  EXPECT_NEAR(row[2], 1.0 / 3, 1e-12);
}

TEST(AttractivenessTest, MatrixHasRowPerZone) {
  synth::City city = testing::TinyCity();
  auto pois = city.PoisOf(synth::PoiCategory::kSchool);
  auto alpha = AttractivenessMatrix(city.zones, pois, 3000);
  ASSERT_EQ(alpha.size(), city.zones.size());
  for (const auto& row : alpha) {
    ASSERT_EQ(row.size(), pois.size());
    double sum = 0;
    for (double a : row) sum += a;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(CalibratedGravityTest, KeepScaleTracksSpecScale) {
  synth::CitySpec full = synth::CitySpec::Brindale(1.0);
  synth::CitySpec quarter = synth::CitySpec::Brindale(0.25);
  GravityConfig gc_full = CalibratedGravityConfig(full);
  GravityConfig gc_quarter = CalibratedGravityConfig(quarter);
  EXPECT_DOUBLE_EQ(gc_full.keep_scale, 25.0);
  EXPECT_DOUBLE_EQ(gc_quarter.keep_scale, 25.0 * 0.25);
  // Sampling rate and decay are scale-invariant.
  EXPECT_EQ(gc_full.sample_rate_per_hour, gc_quarter.sample_rate_per_hour);
  EXPECT_DOUBLE_EQ(gc_full.decay_scale_m, gc_quarter.decay_scale_m);
}

}  // namespace
}  // namespace staq::core
