#include "core/export.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "testing/test_city.h"

namespace staq::core {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  ExportTest() : engine_(testing::SmallCity(), gtfs::WeekdayAmPeak()) {
    AccessQueryOptions options;
    options.exact = true;
    options.gravity.sample_rate_per_hour = 4;
    options.gravity.keep_scale = 2.0;
    auto answer = engine_.Query(synth::PoiCategory::kVaxCenter, options);
    EXPECT_TRUE(answer.ok());
    result_ = std::move(answer).value();
  }

  std::string ReadFile(const std::string& path) {
    std::ifstream in(path);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  AccessQueryEngine engine_;
  AccessQueryResult result_;
};

TEST_F(ExportTest, GeoJsonContainsEveryZoneAndPoi) {
  std::string path = ::testing::TempDir() + "/staq_export.geojson";
  geo::LocalProjection projection(geo::LatLon{52.41, -1.51});
  auto pois = engine_.city().PoisOf(synth::PoiCategory::kVaxCenter);
  ASSERT_TRUE(ExportAccessGeoJson(engine_.city(), projection, result_, pois,
                                  path)
                  .ok());
  std::string content = ReadFile(path);
  EXPECT_NE(content.find("\"FeatureCollection\""), std::string::npos);

  size_t zone_features = 0, poi_features = 0, pos = 0;
  while ((pos = content.find("\"kind\":\"zone\"", pos)) != std::string::npos) {
    ++zone_features;
    ++pos;
  }
  pos = 0;
  while ((pos = content.find("\"kind\":\"poi\"", pos)) != std::string::npos) {
    ++poi_features;
    ++pos;
  }
  EXPECT_EQ(zone_features, engine_.city().zones.size());
  EXPECT_EQ(poi_features, pois.size());
  // Coordinates are WGS-84: longitudes near -1.5, latitudes near 52.4.
  EXPECT_NE(content.find("[-1."), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ExportTest, GeoJsonIsStructurallyBalanced) {
  std::string path = ::testing::TempDir() + "/staq_export2.geojson";
  geo::LocalProjection projection(geo::LatLon{52.41, -1.51});
  ASSERT_TRUE(ExportAccessGeoJson(engine_.city(), projection, result_, {},
                                  path)
                  .ok());
  std::string content = ReadFile(path);
  // Braces and brackets balance — a cheap well-formedness proxy that
  // catches missed separators without a JSON parser dependency.
  long braces = 0, brackets = 0;
  for (char c : content) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  std::remove(path.c_str());
}

TEST_F(ExportTest, GeoJsonRejectsMismatchedResult) {
  AccessQueryResult bad = result_;
  bad.mac.pop_back();
  geo::LocalProjection projection(geo::LatLon{52.41, -1.51});
  EXPECT_FALSE(ExportAccessGeoJson(engine_.city(), projection, bad, {},
                                   "/tmp/never.geojson")
                   .ok());
}

TEST_F(ExportTest, ReportContainsHeadlinesAndWorstZones) {
  std::string md =
      RenderAccessReport(engine_.city(), result_, "Access to vax centres");
  EXPECT_NE(md.find("# Access to vax centres"), std::string::npos);
  EXPECT_NE(md.find("mean access cost (MAC)"), std::string::npos);
  EXPECT_NE(md.find("Jain"), std::string::npos);
  EXPECT_NE(md.find("Worst-served zones"), std::string::npos);
  // The worst zone's id must appear in the table.
  uint32_t worst = 0;
  for (uint32_t z = 1; z < result_.mac.size(); ++z) {
    if (result_.mac[z] > result_.mac[worst]) worst = z;
  }
  EXPECT_NE(md.find("| " + std::to_string(worst) + " |"), std::string::npos);
  // All four classes enumerated.
  for (int c = 0; c < 4; ++c) {
    EXPECT_NE(md.find(AccessClassName(static_cast<AccessClass>(c))),
              std::string::npos);
  }
}

TEST_F(ExportTest, WriteReportRoundTrips) {
  std::string path = ::testing::TempDir() + "/staq_report.md";
  ASSERT_TRUE(WriteAccessReport(engine_.city(), result_, "T", path).ok());
  EXPECT_EQ(ReadFile(path), RenderAccessReport(engine_.city(), result_, "T"));
  std::remove(path.c_str());
}

TEST_F(ExportTest, WriteFailsOnBadPath) {
  EXPECT_FALSE(
      WriteAccessReport(engine_.city(), result_, "T", "/no-dir/x.md").ok());
  geo::LocalProjection projection(geo::LatLon{52.41, -1.51});
  EXPECT_FALSE(ExportAccessGeoJson(engine_.city(), projection, result_, {},
                                   "/no-dir/x.geojson")
                   .ok());
}

}  // namespace
}  // namespace staq::core
