#include "core/sampling.h"

#include <set>

#include <gtest/gtest.h>

namespace staq::core {
namespace {

TEST(SamplingTest, SizeFollowsBudget) {
  auto sample = SampleLabeledZones(1000, 0.05, 1);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample.value().size(), 50u);
}

TEST(SamplingTest, CeilingOnFractionalCounts) {
  auto sample = SampleLabeledZones(100, 0.031, 1);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample.value().size(), 4u);  // ceil(3.1)
}

TEST(SamplingTest, AtLeastTwoZones) {
  auto sample = SampleLabeledZones(1000, 0.0001, 1);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample.value().size(), 2u);
}

TEST(SamplingTest, FullBudgetTakesEverything) {
  auto sample = SampleLabeledZones(10, 1.0, 1);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample.value().size(), 10u);
}

TEST(SamplingTest, DistinctSortedInRange) {
  auto sample = SampleLabeledZones(500, 0.2, 7);
  ASSERT_TRUE(sample.ok());
  const auto& zones = sample.value();
  std::set<uint32_t> unique(zones.begin(), zones.end());
  EXPECT_EQ(unique.size(), zones.size());
  for (size_t i = 1; i < zones.size(); ++i) {
    EXPECT_LT(zones[i - 1], zones[i]);
  }
  EXPECT_LT(zones.back(), 500u);
}

TEST(SamplingTest, DeterministicPerSeedDifferentAcrossSeeds) {
  auto a = SampleLabeledZones(200, 0.1, 3);
  auto b = SampleLabeledZones(200, 0.1, 3);
  auto c = SampleLabeledZones(200, 0.1, 4);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_NE(a.value(), c.value());
}

TEST(SamplingTest, RejectsInvalidInputs) {
  EXPECT_FALSE(SampleLabeledZones(1, 0.5, 1).ok());
  EXPECT_FALSE(SampleLabeledZones(100, 0.0, 1).ok());
  EXPECT_FALSE(SampleLabeledZones(100, -0.1, 1).ok());
  EXPECT_FALSE(SampleLabeledZones(100, 1.1, 1).ok());
}

TEST(SamplingTest, CoverageAcrossSeeds) {
  // Over many seeds every zone should get sampled sometimes: no dead spots.
  std::vector<int> hits(50, 0);
  for (uint64_t seed = 0; seed < 300; ++seed) {
    auto sample = SampleLabeledZones(50, 0.1, seed);
    ASSERT_TRUE(sample.ok());
    for (uint32_t z : sample.value()) ++hits[z];
  }
  for (int h : hits) EXPECT_GT(h, 0);
}

}  // namespace
}  // namespace staq::core
