// Regression tests for the LabelingEngine access-stop cache (the serve hot
// path relabels the same zones repeatedly, so the per-zone AccessStops
// lookup is cached across calls). The hazard: a cached hop list computed
// under one walk table silently surviving a router swap and producing
// labels for the wrong walk budget. SetRouter must invalidate.
#include <gtest/gtest.h>

#include "core/labeling.h"
#include "core/todam.h"
#include "router/router.h"
#include "testing/test_city.h"

namespace staq::core {
namespace {

class LabelingInvalidationTest : public ::testing::Test {
 protected:
  LabelingInvalidationTest() : city_(testing::TinyCity()) {
    GravityConfig gravity;
    gravity.sample_rate_per_hour = 4;
    gravity.keep_scale = 2.0;
    TodamBuilder builder(city_.zones, city_.pois, gtfs::WeekdayAmPeak(),
                         gravity);
    todam_ = builder.BuildGravity(/*seed=*/3);
    for (uint32_t z = 0; z < city_.zones.size(); ++z) zones_.push_back(z);
  }

  synth::City city_;
  Todam todam_;
  std::vector<uint32_t> zones_;
};

/// A walk table with a drastically tighter access budget: journeys that
/// relied on longer access walks become infeasible or slower, so labels
/// computed against it must differ from the default table's.
router::RouterOptions TightWalkOptions() {
  router::RouterOptions options;
  options.walk.max_access_walk_s = 120;
  return options;
}

TEST_F(LabelingInvalidationTest, SetRouterDropsStaleAccessStops) {
  router::Router wide(&city_.feed, {});
  router::Router tight(&city_.feed, TightWalkOptions());

  // Warm the per-zone access-stop cache against the wide walk table.
  LabelingEngine engine(&city_, &wide);
  auto wide_labels =
      engine.LabelZones(todam_, zones_, city_.pois,
                        CostKind::kJourneyTime, gtfs::Day::kTuesday);

  // Rebind to the tight table and relabel the same zones: the engine must
  // recompute its access stops, or every journey would still board from
  // stops only reachable under the wide budget.
  engine.SetRouter(&tight);
  auto rebound_labels =
      engine.LabelZones(todam_, zones_, city_.pois,
                        CostKind::kJourneyTime, gtfs::Day::kTuesday);

  // Golden: a fresh engine that never saw the wide table.
  LabelingEngine fresh(&city_, &tight);
  auto fresh_labels =
      fresh.LabelZones(todam_, zones_, city_.pois,
                       CostKind::kJourneyTime, gtfs::Day::kTuesday);

  ASSERT_EQ(rebound_labels.size(), fresh_labels.size());
  bool any_difference_from_wide = false;
  for (size_t z = 0; z < fresh_labels.size(); ++z) {
    EXPECT_EQ(rebound_labels[z].mac, fresh_labels[z].mac) << "zone " << z;
    EXPECT_EQ(rebound_labels[z].acsd, fresh_labels[z].acsd) << "zone " << z;
    EXPECT_EQ(rebound_labels[z].num_infeasible,
              fresh_labels[z].num_infeasible);
    if (rebound_labels[z].mac != wide_labels[z].mac ||
        rebound_labels[z].num_infeasible != wide_labels[z].num_infeasible) {
      any_difference_from_wide = true;
    }
  }
  // Sanity: the two walk budgets genuinely disagree somewhere, otherwise
  // this regression test would pass vacuously even with a stale cache.
  EXPECT_TRUE(any_difference_from_wide);
}

TEST_F(LabelingInvalidationTest, ExplicitInvalidationKeepsLabelsIdentical) {
  router::Router router(&city_.feed, {});
  LabelingEngine engine(&city_, &router);
  auto before =
      engine.LabelZones(todam_, zones_, city_.pois,
                        CostKind::kJourneyTime, gtfs::Day::kTuesday);
  // Invalidation against an unchanged router is a pure recompute: results
  // must be bit-identical (the cache is a cache, not a semantic input).
  engine.InvalidateAccessStopCache();
  auto after =
      engine.LabelZones(todam_, zones_, city_.pois,
                        CostKind::kJourneyTime, gtfs::Day::kTuesday);
  ASSERT_EQ(before.size(), after.size());
  for (size_t z = 0; z < before.size(); ++z) {
    EXPECT_EQ(before[z].mac, after[z].mac);
    EXPECT_EQ(before[z].acsd, after[z].acsd);
  }
}

TEST_F(LabelingInvalidationTest, RepeatedRelabelingReusesCachedStops) {
  router::Router router(&city_.feed, {});
  LabelingEngine engine(&city_, &router);
  std::vector<ZoneLabel> labels(city_.zones.size());
  engine.RelabelZones(todam_, zones_, city_.pois, CostKind::kJourneyTime,
                      gtfs::Day::kTuesday, &labels);
  auto first = labels;
  // Second pass over the same zones hits the warm cache; labels must not
  // drift.
  engine.RelabelZones(todam_, zones_, city_.pois, CostKind::kJourneyTime,
                      gtfs::Day::kTuesday, &labels);
  for (size_t z = 0; z < labels.size(); ++z) {
    EXPECT_EQ(labels[z].mac, first[z].mac);
    EXPECT_EQ(labels[z].acsd, first[z].acsd);
  }
}

}  // namespace
}  // namespace staq::core
