#include "core/measures.h"

#include <gtest/gtest.h>

namespace staq::core {
namespace {

TEST(ClassifyTest, FourQuadrantsOfThePaperRuleSet) {
  // Means: MAC = 25, ACSD = 5.
  std::vector<double> mac{10, 40, 10, 40};
  std::vector<double> acsd{2, 2, 8, 8};
  auto classes = ClassifyAccessibility(mac, acsd);
  EXPECT_EQ(classes[0], static_cast<int>(AccessClass::kBest));
  EXPECT_EQ(classes[1], static_cast<int>(AccessClass::kWorst));
  EXPECT_EQ(classes[2], static_cast<int>(AccessClass::kMostlyGood));
  EXPECT_EQ(classes[3], static_cast<int>(AccessClass::kMostlyBad));
}

TEST(ClassifyTest, ExactMeanCountsAsLow) {
  std::vector<double> mac{10, 10};
  std::vector<double> acsd{5, 5};
  auto classes = ClassifyAccessibility(mac, acsd);
  for (int c : classes) {
    EXPECT_EQ(c, static_cast<int>(AccessClass::kBest));
  }
}

TEST(ClassifyTest, NamesAreStable) {
  EXPECT_STREQ(AccessClassName(AccessClass::kBest), "best");
  EXPECT_STREQ(AccessClassName(AccessClass::kWorst), "worst");
  EXPECT_STREQ(AccessClassName(AccessClass::kMostlyGood), "mostly_good");
  EXPECT_STREQ(AccessClassName(AccessClass::kMostlyBad), "mostly_bad");
}

TEST(JainTest, PerfectEqualityIsOne) {
  EXPECT_DOUBLE_EQ(JainIndex({5, 5, 5, 5}), 1.0);
}

TEST(JainTest, SingleUserDominanceApproaches1OverN) {
  // One zone has all the (bad) access cost: J = 1/n.
  EXPECT_NEAR(JainIndex({100, 0, 0, 0}), 0.25, 1e-12);
}

TEST(JainTest, KnownIntermediateValue) {
  // J = (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
  EXPECT_NEAR(JainIndex({1, 2, 3}), 36.0 / 42.0, 1e-12);
}

TEST(JainTest, ScaleInvariant) {
  std::vector<double> x{3, 7, 2, 9};
  std::vector<double> scaled;
  for (double v : x) scaled.push_back(10 * v);
  EXPECT_NEAR(JainIndex(x), JainIndex(scaled), 1e-12);
}

TEST(JainTest, AllZerosTriviallyFair) {
  EXPECT_DOUBLE_EQ(JainIndex({0, 0, 0}), 1.0);
}

TEST(WeightedJainTest, EqualWeightsReduceToPlainJain) {
  std::vector<double> x{1, 4, 2, 8};
  std::vector<double> w(4, 2.5);
  EXPECT_NEAR(WeightedJainIndex(x, w), JainIndex(x), 1e-12);
}

TEST(WeightedJainTest, WeightsShiftTheIndex) {
  std::vector<double> x{1, 10};
  // Weighting the unequal zone more exposes more unfairness than weighting
  // it less.
  double skew_to_bad = WeightedJainIndex(x, {0.1, 10});
  double skew_to_good = WeightedJainIndex(x, {10, 0.1});
  EXPECT_GT(skew_to_bad, 0);
  EXPECT_GT(skew_to_good, 0);
  EXPECT_NE(skew_to_bad, skew_to_good);
  // Putting ~all weight on one zone approaches perfect (degenerate)
  // fairness.
  EXPECT_NEAR(WeightedJainIndex(x, {1e9, 1e-9}), 1.0, 1e-6);
}

TEST(FieTest, ZeroForIdenticalDistributions) {
  std::vector<double> mac{1, 5, 3};
  EXPECT_DOUBLE_EQ(FairnessIndexError(mac, mac), 0.0);
}

TEST(FieTest, AbsoluteDifferenceOfIndices) {
  std::vector<double> truth{5, 5, 5};       // J = 1
  std::vector<double> pred{100, 0, 0};      // J = 1/3
  EXPECT_NEAR(FairnessIndexError(truth, pred), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(FairnessIndexError(pred, truth), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace staq::core
