#include "core/labeling.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testing/test_city.h"

namespace staq::core {
namespace {

class LabelingTest : public ::testing::Test {
 protected:
  LabelingTest()
      : city_(testing::TinyCity()),
        router_(&city_.feed, router::RouterOptions{}) {
    pois_ = city_.PoisOf(synth::PoiCategory::kSchool);
    GravityConfig gravity;
    gravity.sample_rate_per_hour = 4;
    gravity.keep_scale = 2.0;
    TodamBuilder builder(city_.zones, pois_, gtfs::WeekdayAmPeak(), gravity);
    todam_ = builder.BuildGravity(1);
  }

  synth::City city_;
  router::Router router_;
  std::vector<synth::Poi> pois_;
  Todam todam_;
};

TEST_F(LabelingTest, CostKindNames) {
  EXPECT_STREQ(CostKindName(CostKind::kJourneyTime), "JT");
  EXPECT_STREQ(CostKindName(CostKind::kGeneralizedCost), "GAC");
}

TEST_F(LabelingTest, LabelsAreConsistentAggregates) {
  LabelingEngine engine(&city_, &router_);
  ZoneLabel label = engine.LabelZone(todam_, 0, pois_,
                                     CostKind::kJourneyTime,
                                     gtfs::Day::kTuesday);
  EXPECT_EQ(label.num_trips, todam_.TripsFor(0).size());
  EXPECT_GE(label.mac, 0.0);
  EXPECT_GE(label.acsd, 0.0);
  EXPECT_LE(label.num_infeasible + label.num_walk_only, label.num_trips);
}

TEST_F(LabelingTest, MacMatchesManualRouting) {
  LabelingEngine engine(&city_, &router_);
  uint32_t zone = 3;
  ZoneLabel label = engine.LabelZone(todam_, zone, pois_,
                                     CostKind::kJourneyTime,
                                     gtfs::Day::kTuesday);
  // Re-run the SPQs manually with a fresh router.
  router::Router fresh(&city_.feed, router::RouterOptions{});
  double sum = 0, sum_sq = 0;
  int feasible = 0;
  for (const TripEntry& trip : todam_.TripsFor(zone)) {
    auto journey = fresh.Route(city_.zones[zone].centroid,
                               pois_[trip.poi].position,
                               gtfs::Day::kTuesday, trip.depart);
    if (!journey.feasible) continue;
    double jt = journey.JourneyTimeSeconds();
    sum += jt;
    sum_sq += jt * jt;
    ++feasible;
  }
  ASSERT_GT(feasible, 0);
  double mac = sum / feasible;
  double var = sum_sq / feasible - mac * mac;
  EXPECT_NEAR(label.mac, mac, 1e-9);
  EXPECT_NEAR(label.acsd, std::sqrt(std::max(0.0, var)), 1e-6);
}

TEST_F(LabelingTest, GacLabelsExceedJtForSameZone) {
  // GAC weights walking/waiting >= 1x and adds fares, so for the same
  // trips the mean generalized cost exceeds the mean journey time.
  LabelingEngine engine(&city_, &router_);
  ZoneLabel jt = engine.LabelZone(todam_, 5, pois_, CostKind::kJourneyTime,
                                  gtfs::Day::kTuesday);
  ZoneLabel gac = engine.LabelZone(todam_, 5, pois_,
                                   CostKind::kGeneralizedCost,
                                   gtfs::Day::kTuesday);
  ASSERT_GT(jt.num_trips, 0u);
  EXPECT_GT(gac.mac, jt.mac);
}

TEST_F(LabelingTest, SpqCountAccumulates) {
  LabelingEngine engine(&city_, &router_);
  EXPECT_EQ(engine.spq_count(), 0u);
  engine.LabelZone(todam_, 0, pois_, CostKind::kJourneyTime,
                   gtfs::Day::kTuesday);
  uint64_t after_one = engine.spq_count();
  EXPECT_EQ(after_one, todam_.TripsFor(0).size());
  engine.LabelZone(todam_, 1, pois_, CostKind::kJourneyTime,
                   gtfs::Day::kTuesday);
  EXPECT_EQ(engine.spq_count(), after_one + todam_.TripsFor(1).size());
}

TEST_F(LabelingTest, LabelZonesBatchesInOrder) {
  LabelingEngine engine(&city_, &router_);
  std::vector<uint32_t> zones{2, 8, 15};
  auto labels = engine.LabelZones(todam_, zones, pois_,
                                  CostKind::kJourneyTime,
                                  gtfs::Day::kTuesday);
  ASSERT_EQ(labels.size(), 3u);
  for (size_t i = 0; i < zones.size(); ++i) {
    EXPECT_EQ(labels[i].num_trips, todam_.TripsFor(zones[i]).size());
  }
}

TEST_F(LabelingTest, ZoneWithNoTripsGetsZeroLabel) {
  // Build a TODAM over a single distant POI with negligible keep scale so
  // some zones draw no trips at all.
  GravityConfig tiny;
  tiny.sample_rate_per_hour = 1;
  tiny.keep_scale = 1e-9;
  TodamBuilder builder(city_.zones, pois_, gtfs::WeekdayAmPeak(), tiny);
  Todam sparse = builder.BuildGravity(1);

  LabelingEngine engine(&city_, &router_);
  bool found_empty = false;
  for (uint32_t z = 0; z < sparse.num_zones() && !found_empty; ++z) {
    if (!sparse.TripsFor(z).empty()) continue;
    found_empty = true;
    ZoneLabel label = engine.LabelZone(sparse, z, pois_,
                                       CostKind::kJourneyTime,
                                       gtfs::Day::kTuesday);
    EXPECT_EQ(label.num_trips, 0u);
    EXPECT_EQ(label.mac, 0.0);
    EXPECT_EQ(label.acsd, 0.0);
  }
  EXPECT_TRUE(found_empty);
}

TEST_F(LabelingTest, BatchedModeBitIdenticalToPerTrip) {
  // The tentpole invariant: the one-to-many batched scheduler (with bounded
  // relaxation on) must reproduce the per-trip per-query path EXACTLY —
  // same floating-point aggregates, not merely close ones.
  router::Router batched_router(&city_.feed, router::RouterOptions{});
  router::RouterOptions unpruned;
  unpruned.bounded_relaxation = false;
  router::Router per_trip_router(&city_.feed, unpruned);

  for (CostKind kind : {CostKind::kJourneyTime, CostKind::kGeneralizedCost}) {
    LabelingEngine batched(&city_, &batched_router, {},
                           LabelingMode::kBatched);
    LabelingEngine per_trip(&city_, &per_trip_router, {},
                            LabelingMode::kPerTrip);
    for (uint32_t zone = 0; zone < todam_.num_zones(); ++zone) {
      ZoneLabel a = batched.LabelZone(todam_, zone, pois_, kind,
                                      gtfs::Day::kTuesday);
      ZoneLabel b = per_trip.LabelZone(todam_, zone, pois_, kind,
                                       gtfs::Day::kTuesday);
      EXPECT_EQ(a.mac, b.mac) << "zone " << zone;
      EXPECT_EQ(a.acsd, b.acsd) << "zone " << zone;
      EXPECT_EQ(a.num_trips, b.num_trips) << "zone " << zone;
      EXPECT_EQ(a.num_infeasible, b.num_infeasible) << "zone " << zone;
      EXPECT_EQ(a.num_walk_only, b.num_walk_only) << "zone " << zone;
    }
    EXPECT_EQ(batched.spq_count(), per_trip.spq_count());
  }
}

TEST_F(LabelingTest, BatchedModeDispatchesFewerExpansions) {
  LabelingEngine batched(&city_, &router_, {}, LabelingMode::kBatched);
  uint64_t trips = 0;
  for (uint32_t zone = 0; zone < todam_.num_zones(); ++zone) {
    batched.LabelZone(todam_, zone, pois_, CostKind::kJourneyTime,
                      gtfs::Day::kTuesday);
    trips += todam_.TripsFor(zone).size();
  }
  EXPECT_EQ(batched.spq_count(), trips);
  // Every departure group costs one expansion, so the dispatch count can
  // never exceed the trip count (and shrinks whenever departures collide).
  EXPECT_LE(batched.expansion_count(), batched.spq_count());
  EXPECT_GT(batched.expansion_count(), 0u);
}

TEST_F(LabelingTest, DeterministicAcrossEngines) {
  LabelingEngine a(&city_, &router_);
  ZoneLabel la = a.LabelZone(todam_, 4, pois_, CostKind::kGeneralizedCost,
                             gtfs::Day::kTuesday);
  router::Router router2(&city_.feed, router::RouterOptions{});
  LabelingEngine b(&city_, &router2);
  ZoneLabel lb = b.LabelZone(todam_, 4, pois_, CostKind::kGeneralizedCost,
                             gtfs::Day::kTuesday);
  EXPECT_DOUBLE_EQ(la.mac, lb.mac);
  EXPECT_DOUBLE_EQ(la.acsd, lb.acsd);
}

}  // namespace
}  // namespace staq::core
