#include "ml/matrix.h"

#include <gtest/gtest.h>

#include <tuple>

#include "util/rng.h"

namespace staq::ml {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
  EXPECT_FALSE(m.empty());
  EXPECT_TRUE(Matrix().empty());
}

TEST(MatrixTest, Identity) {
  Matrix eye = Matrix::Identity(3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, SelectRows) {
  Matrix m(3, 2);
  for (size_t i = 0; i < 3; ++i) {
    m(i, 0) = static_cast<double>(i);
    m(i, 1) = static_cast<double>(10 * i);
  }
  Matrix sel = m.SelectRows({2, 0});
  ASSERT_EQ(sel.rows(), 2u);
  EXPECT_DOUBLE_EQ(sel(0, 1), 20.0);
  EXPECT_DOUBLE_EQ(sel(1, 0), 0.0);
}

TEST(MatrixTest, Transposed) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 2) = 5;
  m(1, 1) = 7;
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(1, 1), 7.0);
}

TEST(MatMulTest, KnownProduct) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatMulTest, IdentityIsNeutral) {
  util::Rng rng(1);
  Matrix m(4, 4);
  for (auto& v : m.data()) v = rng.Uniform(-1, 1);
  Matrix prod = MatMul(m, Matrix::Identity(4));
  EXPECT_EQ(prod, m);
}

TEST(MatVecTest, KnownProduct) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  auto y = MatVec(a, {1, 1, 1});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6);
  EXPECT_DOUBLE_EQ(y[1], 15);
}

TEST(GramTest, MatchesExplicitTransposeProduct) {
  util::Rng rng(2);
  Matrix a(7, 4);
  for (auto& v : a.data()) v = rng.Uniform(-2, 2);
  Matrix g = Gram(a);
  Matrix expected = MatMul(a.Transposed(), a);
  ASSERT_EQ(g.rows(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(g(i, j), expected(i, j), 1e-9);
    }
  }
}

TEST(TransposeVecTest, MatchesExplicit) {
  util::Rng rng(3);
  Matrix a(5, 3);
  std::vector<double> y(5);
  for (auto& v : a.data()) v = rng.Uniform(-2, 2);
  for (auto& v : y) v = rng.Uniform(-2, 2);
  auto atv = TransposeVec(a, y);
  auto expected = MatVec(a.Transposed(), y);
  ASSERT_EQ(atv.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(atv[i], expected[i], 1e-12);
}

TEST(SolveTest, DiagonalSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(1, 1) = 4;
  auto x = SolveLinearSystem(a, {6, 8});
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ(x.value()[0], 3);
  EXPECT_DOUBLE_EQ(x.value()[1], 2);
}

TEST(SolveTest, SpdSystemViaCholesky) {
  // A = B^T B + I is SPD.
  util::Rng rng(4);
  Matrix b(6, 6);
  for (auto& v : b.data()) v = rng.Uniform(-1, 1);
  Matrix a = Gram(b);
  for (size_t i = 0; i < 6; ++i) a(i, i) += 1.0;
  std::vector<double> truth(6);
  for (auto& v : truth) v = rng.Uniform(-3, 3);
  auto rhs = MatVec(a, truth);
  auto solved = SolveLinearSystem(a, rhs);
  ASSERT_TRUE(solved.ok());
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(solved.value()[i], truth[i], 1e-8);
  }
}

TEST(SolveTest, NonSymmetricFallsBackToGaussian) {
  Matrix a(2, 2);
  a(0, 0) = 0;  // zero pivot forces pivoting
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  auto x = SolveLinearSystem(a, {3, 5});
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ(x.value()[0], 5);
  EXPECT_DOUBLE_EQ(x.value()[1], 3);
}

TEST(SolveTest, SingularFails) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;  // rank 1
  EXPECT_FALSE(SolveLinearSystem(a, {1, 2}).ok());
}

TEST(SolveTest, DimensionMismatchRejected) {
  Matrix a(2, 3);
  EXPECT_FALSE(SolveLinearSystem(a, {1, 2}).ok());
  Matrix sq(2, 2);
  EXPECT_FALSE(SolveLinearSystem(sq, {1, 2, 3}).ok());
}

// ---- blocked kernels vs straightforward reference -------------------------
// The GEMM is register-tiled and k-blocked, but per output element it must
// accumulate in plain ascending-k order: results are compared EXPECT_EQ
// against the naive triple loop, not within a tolerance.

Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      double av = a(i, k);
      for (size_t j = 0; j < b.cols(); ++j) c(i, j) += av * b(k, j);
    }
  }
  return c;
}

TEST(KernelTest, BlockedGemmBitIdenticalToNaive) {
  util::Rng rng(5);
  // Sizes straddling the register tile (4 rows) and the k panel (64).
  for (auto [m, k, n] : {std::tuple<size_t, size_t, size_t>{1, 1, 1},
                         {3, 5, 2},
                         {4, 64, 8},
                         {5, 65, 7},
                         {17, 130, 33}}) {
    Matrix a(m, k), b(k, n);
    for (auto& v : a.data()) v = rng.Uniform(-1, 1);
    for (auto& v : b.data()) v = rng.Uniform(-1, 1);
    Matrix fast = MatMul(a, b);
    Matrix naive = NaiveMatMul(a, b);
    EXPECT_EQ(fast, naive) << m << "x" << k << "x" << n;
  }
}

TEST(KernelTest, MatMulIntoReusesStorageAndMatchesMatMul) {
  util::Rng rng(6);
  Matrix a(9, 6), b(6, 4);
  for (auto& v : a.data()) v = rng.Uniform(-1, 1);
  for (auto& v : b.data()) v = rng.Uniform(-1, 1);
  Matrix out(9, 4, 123.0);  // stale contents must be overwritten
  MatMulInto(a, b, &out);
  EXPECT_EQ(out, MatMul(a, b));
  // And again with a shape change.
  Matrix a2(2, 6);
  for (auto& v : a2.data()) v = rng.Uniform(-1, 1);
  MatMulInto(a2, b, &out);
  EXPECT_EQ(out.rows(), 2u);
  EXPECT_EQ(out, MatMul(a2, b));
}

TEST(MatrixTest, ResetReshapesAndZeroes) {
  Matrix m(3, 3, 7.0);
  m.Reset(2, 5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 5u);
  for (double v : m.data()) EXPECT_EQ(v, 0.0);
  m.Reset(0, 4);
  EXPECT_TRUE(m.empty());
}

TEST(MatMulTest, EmptyOperandsProduceEmptyProduct) {
  Matrix a(0, 3), b(3, 2);
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 0u);
  EXPECT_EQ(c.cols(), 2u);
}

// ---- hard bounds/shape checks (formerly release-mode-UB asserts) ----------

using MatrixDeathTest = ::testing::Test;

TEST(MatrixDeathTest, ElementAccessOutOfRangeAborts) {
  Matrix m(2, 2);
  EXPECT_DEATH(m(2, 0), "CHECK failed");
  EXPECT_DEATH(m(0, 2), "CHECK failed");
}

TEST(MatrixDeathTest, RowAccessOutOfRangeAborts) {
  Matrix m(2, 2);
  EXPECT_DEATH(m.row(5), "CHECK failed");
}

TEST(MatrixDeathTest, MatMulShapeMismatchAborts) {
  Matrix a(2, 3), b(2, 2);
  EXPECT_DEATH(MatMul(a, b), "CHECK failed");
}

TEST(MatrixDeathTest, MatMulIntoRejectsAliasedOutput) {
  Matrix a(2, 2), b(2, 2);
  EXPECT_DEATH(MatMulInto(a, b, &a), "CHECK failed");
}

}  // namespace
}  // namespace staq::ml
