#include "ml/mlp.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testing/test_data.h"

namespace staq::ml {
namespace {

TEST(DenseNetTest, ParameterCountMatchesArchitecture) {
  util::Rng rng(1);
  DenseNet net(4, {8, 4}, &rng);
  // 4*8+8 + 8*4+4 + 4*1+1 = 40 + 36 + 5.
  EXPECT_EQ(net.num_params(), 81u);
  EXPECT_EQ(net.input_dim(), 4u);
}

TEST(DenseNetTest, ForwardIsDeterministic) {
  util::Rng rng(2);
  DenseNet net(3, {8}, &rng);
  double x[3] = {1.0, -0.5, 2.0};
  EXPECT_DOUBLE_EQ(net.Forward(x), net.Forward(x));
}

TEST(DenseNetTest, GradientMatchesFiniteDifference) {
  util::Rng rng(3);
  DenseNet net(3, {5, 4}, &rng);
  double x[3] = {0.7, -1.2, 0.3};

  std::vector<std::vector<double>> acts;
  double out = net.Forward(x, &acts);
  std::vector<double> grad(net.num_params(), 0.0);
  net.Backward(x, acts, /*dloss_dout=*/1.0, &grad);  // gradient of output

  const double eps = 1e-6;
  // Spot-check a spread of parameters against central differences.
  for (size_t p = 0; p < net.num_params(); p += 7) {
    double saved = net.params()[p];
    net.params()[p] = saved + eps;
    double up = net.Forward(x);
    net.params()[p] = saved - eps;
    double down = net.Forward(x);
    net.params()[p] = saved;
    double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(grad[p], numeric, 1e-5)
        << "param " << p << " analytic " << grad[p] << " numeric " << numeric;
  }
  (void)out;
}

TEST(DenseNetTest, BackwardAccumulates) {
  util::Rng rng(4);
  DenseNet net(2, {4}, &rng);
  double x[2] = {1.0, 1.0};
  std::vector<std::vector<double>> acts;
  net.Forward(x, &acts);
  std::vector<double> grad(net.num_params(), 0.0);
  net.Backward(x, acts, 1.0, &grad);
  std::vector<double> once = grad;
  net.Backward(x, acts, 1.0, &grad);
  for (size_t p = 0; p < grad.size(); ++p) {
    EXPECT_NEAR(grad[p], 2 * once[p], 1e-12);
  }
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimise (w - 3)^2 for each of 4 params.
  std::vector<double> params(4, 0.0);
  AdamOptimizer opt(4, 0.1, 0.0);
  for (int step = 0; step < 500; ++step) {
    std::vector<double> grad(4);
    for (size_t i = 0; i < 4; ++i) grad[i] = 2 * (params[i] - 3.0);
    opt.Step(&params, grad);
  }
  for (double w : params) EXPECT_NEAR(w, 3.0, 1e-3);
}

TEST(AdamTest, WeightDecayShrinksTowardZero) {
  std::vector<double> params{10.0};
  AdamOptimizer opt(1, 0.05, 0.5);
  for (int step = 0; step < 300; ++step) {
    opt.Step(&params, {0.0});  // no gradient, only decay
  }
  EXPECT_LT(std::abs(params[0]), 1.0);
}

MlpConfig FastMlp(uint64_t seed) {
  MlpConfig config;
  config.epochs = 150;
  config.hidden = {32, 16};
  config.seed = seed;
  return config;
}

TEST(MlpRegressorTest, LearnsLinearFunction) {
  auto data = testing::LinearDataset(250, 3, 100, 0.1, 41);
  MlpRegressor model(FastMlp(1));
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_LT(testing::UnlabeledMae(data, model.Predict()), 0.8);
}

TEST(MlpRegressorTest, LearnsNonlinearFunction) {
  // y = x0^2 + sin(3 x1): beyond OLS, a small MLP should fit it.
  util::Rng rng(42);
  Dataset data;
  size_t n = 400;
  data.x = Matrix(n, 2);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    data.x(i, 0) = rng.Uniform(-2, 2);
    data.x(i, 1) = rng.Uniform(-2, 2);
    data.y[i] = data.x(i, 0) * data.x(i, 0) + std::sin(3 * data.x(i, 1));
  }
  auto sample = rng.SampleWithoutReplacement(n, 250);
  data.labeled.assign(sample.begin(), sample.end());

  MlpConfig config = FastMlp(2);
  config.epochs = 400;
  MlpRegressor model(config);
  ASSERT_TRUE(model.Fit(data).ok());

  double mlp_mae = testing::UnlabeledMae(data, model.Predict());
  EXPECT_LT(mlp_mae, 0.5);
}

TEST(MlpRegressorTest, DeterministicForSameSeed) {
  auto data = testing::LinearDataset(120, 3, 60, 0.2, 43);
  MlpRegressor a(FastMlp(5)), b(FastMlp(5));
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  EXPECT_EQ(a.Predict(), b.Predict());
}

TEST(MlpRegressorTest, RejectsInvalidDataset) {
  MlpRegressor model;
  EXPECT_FALSE(model.Fit(Dataset{}).ok());
}

TEST(MlpRegressorTest, NameIsStable) {
  EXPECT_STREQ(MlpRegressor().name(), "MLP");
}

}  // namespace
}  // namespace staq::ml
