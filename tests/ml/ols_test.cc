#include "ml/ols.h"

#include <gtest/gtest.h>

#include "testing/test_data.h"

namespace staq::ml {
namespace {

TEST(OlsTest, RecoversNoiselessLinearFunction) {
  auto data = testing::LinearDataset(200, 4, 50, /*noise=*/0.0, /*seed=*/1);
  OlsConfig config;
  config.ridge = 0.0;  // exact recovery needs the unbiased estimator
  OlsRegressor model(config);
  ASSERT_TRUE(model.Fit(data).ok());
  auto pred = model.Predict();
  ASSERT_EQ(pred.size(), 200u);
  EXPECT_LT(testing::UnlabeledMae(data, pred), 1e-6);
}

TEST(OlsTest, HandlesNoise) {
  auto data = testing::LinearDataset(300, 4, 150, /*noise=*/0.5, /*seed=*/2);
  OlsRegressor model;
  ASSERT_TRUE(model.Fit(data).ok());
  // OLS should estimate within ~the noise level.
  EXPECT_LT(testing::UnlabeledMae(data, model.Predict()), 1.0);
}

TEST(OlsTest, InterceptOnlyData) {
  // Constant target: prediction must be that constant everywhere.
  ml::Dataset data = testing::LinearDataset(50, 2, 20, 0.0, 3);
  for (double& y : data.y) y = 42.0;
  OlsRegressor model;
  ASSERT_TRUE(model.Fit(data).ok());
  for (double p : model.Predict()) EXPECT_NEAR(p, 42.0, 1e-6);
}

TEST(OlsTest, RidgeStabilizesRankDeficiency) {
  // More features than labeled examples: pure OLS normal equations are
  // singular; ridge makes it solvable.
  auto data = testing::LinearDataset(100, 10, 5, 0.0, 4);
  OlsConfig config;
  config.ridge = 1e-3;
  OlsRegressor model(config);
  EXPECT_TRUE(model.Fit(data).ok());
}

TEST(OlsTest, RejectsInvalidDataset) {
  Dataset empty;
  OlsRegressor model;
  EXPECT_FALSE(model.Fit(empty).ok());

  auto data = testing::LinearDataset(20, 2, 5, 0.0, 5);
  data.labeled = {0};  // one label is not enough
  EXPECT_FALSE(model.Fit(data).ok());

  data = testing::LinearDataset(20, 2, 5, 0.0, 6);
  data.labeled.push_back(99);  // out of range
  EXPECT_FALSE(model.Fit(data).ok());
}

TEST(OlsTest, CoefficientsExposedAfterFit) {
  auto data = testing::LinearDataset(100, 3, 50, 0.0, 7);
  OlsRegressor model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_EQ(model.coefficients().size(), 4u);  // 3 weights + intercept
}

TEST(OlsTest, DeterministicAcrossRuns) {
  auto data = testing::LinearDataset(100, 3, 30, 0.2, 8);
  OlsRegressor a, b;
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  EXPECT_EQ(a.Predict(), b.Predict());
}

TEST(OlsTest, NameIsStable) {
  EXPECT_STREQ(OlsRegressor().name(), "OLS");
}

}  // namespace
}  // namespace staq::ml
