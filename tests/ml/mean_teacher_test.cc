#include "ml/mean_teacher.h"

#include <gtest/gtest.h>

#include "testing/test_data.h"

namespace staq::ml {
namespace {

MeanTeacherConfig FastConfig(uint64_t seed) {
  MeanTeacherConfig config;
  config.epochs = 120;
  config.hidden = {32, 16};
  config.seed = seed;
  return config;
}

TEST(MeanTeacherTest, LearnsLinearFunction) {
  auto data = testing::LinearDataset(250, 3, 80, 0.1, 31);
  MeanTeacher model(FastConfig(1));
  ASSERT_TRUE(model.Fit(data).ok());
  auto pred = model.Predict();
  ASSERT_EQ(pred.size(), 250u);
  double mean = 0;
  for (double y : data.y) mean += y;
  mean /= data.y.size();
  std::vector<double> mean_pred(250, mean);
  EXPECT_LT(testing::UnlabeledMae(data, pred),
            0.6 * testing::UnlabeledMae(data, mean_pred));
}

TEST(MeanTeacherTest, DeterministicForSameSeed) {
  auto data = testing::LinearDataset(120, 3, 40, 0.2, 32);
  MeanTeacher a(FastConfig(9)), b(FastConfig(9));
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  EXPECT_EQ(a.Predict(), b.Predict());
}

TEST(MeanTeacherTest, SeedChangesResult) {
  auto data = testing::LinearDataset(120, 3, 40, 0.2, 33);
  MeanTeacher a(FastConfig(1)), b(FastConfig(2));
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  EXPECT_NE(a.Predict(), b.Predict());
}

TEST(MeanTeacherTest, AllLabeledStillTrains) {
  auto data = testing::LinearDataset(80, 2, 80, 0.1, 34);
  MeanTeacher model(FastConfig(3));
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_EQ(model.Predict().size(), 80u);
}

TEST(MeanTeacherTest, RejectsInvalidDataset) {
  MeanTeacher model;
  EXPECT_FALSE(model.Fit(Dataset{}).ok());
}

TEST(MeanTeacherTest, NameIsStable) {
  EXPECT_STREQ(MeanTeacher().name(), "MT");
}

}  // namespace
}  // namespace staq::ml
