// Bit-identity of the parallel SSR training paths across thread counts.
//
// COREG pool screening and MLP gradient computation fan out across the
// shared util::ThreadPool, but chunk layout is fixed by the input size and
// every reduction runs serially in a fixed order — so any thread count must
// produce byte-for-byte the same model. These suites EXPECT_EQ (not NEAR)
// whole prediction vectors across ml_threads values, at the model level and
// through the full pipeline on both synthetic city families. Labeled
// `concurrency`, so the TSAN build covers the fan-out.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/pipeline.h"
#include "ml/coreg.h"
#include "ml/mean_teacher.h"
#include "ml/mlp.h"
#include "ml/parallel.h"
#include "testing/test_data.h"

namespace staq::ml {
namespace {

TEST(ForEachChunkTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> seen(103);
    ForEachChunk(threads, seen.size(), 8,
                 [&](size_t, size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     seen[i].fetch_add(1, std::memory_order_relaxed);
                   }
                 });
    for (size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ForEachChunkTest, ChunkLayoutIndependentOfThreadCount) {
  // body(chunk, begin, end) must see the same (chunk -> [begin, end)) map
  // for every thread count; only the executing thread may differ.
  auto layout_for = [](int threads) {
    std::vector<std::pair<size_t, size_t>> layout(7, {SIZE_MAX, SIZE_MAX});
    ForEachChunk(threads, 50, 8, [&](size_t chunk, size_t begin, size_t end) {
      layout[chunk] = {begin, end};
    });
    return layout;
  };
  auto reference = layout_for(1);
  EXPECT_EQ(layout_for(2), reference);
  EXPECT_EQ(layout_for(8), reference);
}

TEST(ParallelCoregTest, ThreadCountDoesNotChangeModel) {
  auto data = testing::LinearDataset(180, 3, 30, 0.2, 41);
  std::vector<double> reference;
  for (int threads : {1, 2, 8}) {
    CoregConfig config;
    config.threads = threads;
    Coreg model(config);
    ASSERT_TRUE(model.Fit(data).ok());
    auto pred = model.Predict();
    if (threads == 1) {
      reference = pred;
    } else {
      EXPECT_EQ(pred, reference) << "threads=" << threads;
    }
  }
}

TEST(ParallelMlpTest, ThreadCountDoesNotChangeMultiChunkFit) {
  auto data = testing::LinearDataset(200, 4, 120, 0.1, 42);
  std::vector<double> reference;
  for (int threads : {1, 2, 8}) {
    MlpConfig config;
    config.batch_size = 64;  // several 32-sample gradient chunks per batch
    config.epochs = 40;
    config.threads = threads;
    MlpRegressor model(config);
    ASSERT_TRUE(model.Fit(data).ok());
    auto pred = model.Predict();
    if (threads == 1) {
      reference = pred;
    } else {
      EXPECT_EQ(pred, reference) << "threads=" << threads;
    }
  }
}

TEST(ParallelMlpTest, BatchedMatchesPerSampleAtDefaultBatchSize) {
  // At the default batch size (16 <= one 32-sample chunk) the batched path
  // accumulates gradients in exactly the per-sample order, so it must be
  // bit-identical to the original loop — threads included.
  auto data = testing::LinearDataset(120, 3, 60, 0.1, 43);
  MlpConfig batched;
  batched.epochs = 30;
  batched.threads = 8;
  MlpConfig per_sample = batched;
  per_sample.threads = 1;
  per_sample.per_sample_updates = true;
  MlpRegressor fast(batched), foil(per_sample);
  ASSERT_TRUE(fast.Fit(data).ok());
  ASSERT_TRUE(foil.Fit(data).ok());
  EXPECT_EQ(fast.Predict(), foil.Predict());
}

TEST(ParallelMeanTeacherTest, BatchedMatchesPerSample) {
  auto data = testing::LinearDataset(150, 3, 40, 0.1, 44);
  MeanTeacherConfig batched;
  batched.epochs = 30;
  MeanTeacherConfig per_sample = batched;
  per_sample.per_sample_updates = true;
  MeanTeacher fast(batched), foil(per_sample);
  ASSERT_TRUE(fast.Fit(data).ok());
  ASSERT_TRUE(foil.Fit(data).ok());
  EXPECT_EQ(fast.Predict(), foil.Predict());
}

// Full-pipeline check: an access query answered with COREG must not depend
// on the server's ml_threads tuning, on either synthetic city family.
class ParallelPipelineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelPipelineTest, CoregRunBitIdenticalAcrossMlThreads) {
  synth::CitySpec spec = std::string(GetParam()) == "brindale"
                             ? synth::CitySpec::Brindale(0.06, 5)
                             : synth::CitySpec::Covely(0.06, 5);
  auto built = synth::BuildCity(spec);
  ASSERT_TRUE(built.ok());
  synth::City city = std::move(built).value();
  core::SsrPipeline pipeline(&city, gtfs::WeekdayAmPeak());
  auto pois = city.PoisOf(synth::PoiCategory::kSchool);
  core::GravityConfig gravity = core::CalibratedGravityConfig(city.spec);
  gravity.sample_rate_per_hour = 4;  // keep the test fast
  core::Todam todam = pipeline.BuildGravityTodam(pois, gravity, 1);

  std::vector<double> mac, acsd;
  for (int threads : {1, 2, 8}) {
    core::PipelineConfig config;
    config.beta = 0.2;
    config.model = ml::ModelKind::kCoreg;
    config.seed = 3;
    config.ml_threads = threads;
    auto run = pipeline.Run(pois, todam, config);
    ASSERT_TRUE(run.ok()) << run.status();
    if (threads == 1) {
      mac = run.value().mac;
      acsd = run.value().acsd;
    } else {
      EXPECT_EQ(run.value().mac, mac) << "ml_threads=" << threads;
      EXPECT_EQ(run.value().acsd, acsd) << "ml_threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cities, ParallelPipelineTest,
                         ::testing::Values("brindale", "covely"));

}  // namespace
}  // namespace staq::ml
