#include "ml/coreg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "testing/test_data.h"

namespace staq::ml {
namespace {

TEST(CoregTest, FitsSmoothFunctionBeatsMeanBaseline) {
  auto data = testing::LinearDataset(300, 3, 60, 0.1, 21);
  Coreg model;
  ASSERT_TRUE(model.Fit(data).ok());
  auto pred = model.Predict();
  ASSERT_EQ(pred.size(), 300u);
  double mean = 0;
  for (double y : data.y) mean += y;
  mean /= data.y.size();
  std::vector<double> mean_pred(300, mean);
  EXPECT_LT(testing::UnlabeledMae(data, pred),
            0.8 * testing::UnlabeledMae(data, mean_pred));
}

TEST(CoregTest, AddsPseudoLabels) {
  auto data = testing::LinearDataset(300, 3, 30, 0.05, 22);
  CoregConfig config;
  config.max_iterations = 20;
  Coreg model(config);
  ASSERT_TRUE(model.Fit(data).ok());
  // On smooth data, co-training should find beneficial pseudo-labels.
  EXPECT_GT(model.pseudo_labels_added(), 0);
}

TEST(CoregTest, DeterministicForSameSeed) {
  auto data = testing::LinearDataset(150, 3, 30, 0.2, 23);
  Coreg a, b;
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  EXPECT_EQ(a.Predict(), b.Predict());
}

TEST(CoregTest, WorksWithNoUnlabeledData) {
  auto data = testing::LinearDataset(50, 2, 50, 0.1, 24);  // all labeled
  Coreg model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_EQ(model.pseudo_labels_added(), 0);
  EXPECT_EQ(model.Predict().size(), 50u);
}

TEST(CoregTest, SmallPoolBound) {
  auto data = testing::LinearDataset(40, 2, 10, 0.1, 25);
  CoregConfig config;
  config.pool_size = 5;
  config.max_iterations = 100;  // more iterations than pool+unlabeled
  Coreg model(config);
  ASSERT_TRUE(model.Fit(data).ok());
  // Cannot add more pseudo-labels than there are unlabeled points, and each
  // iteration adds at most 2.
  EXPECT_LE(model.pseudo_labels_added(), 30 + 2);
}

TEST(CoregTest, PoolLargerThanUnlabeledSet) {
  auto data = testing::LinearDataset(30, 2, 25, 0.1, 26);  // only 5 unlabeled
  CoregConfig config;
  config.pool_size = 100;  // exceeds the unlabeled count
  config.max_iterations = 10;
  Coreg model(config);
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_LE(model.pseudo_labels_added(), 10);  // can't exceed 2x unlabeled
  EXPECT_EQ(model.Predict().size(), 30u);
}

TEST(CoregTest, RejectsInvalidDataset) {
  Coreg model;
  EXPECT_FALSE(model.Fit(Dataset{}).ok());
}

TEST(CoregTest, NameIsStable) { EXPECT_STREQ(Coreg().name(), "COREG"); }

TEST(CoregTest, EmptyPoolTrainsSupervisedOnly) {
  auto data = testing::LinearDataset(60, 2, 20, 0.1, 27);
  CoregConfig config;
  config.pool_size = 0;  // nothing to screen: degenerate co-training
  Coreg model(config);
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_EQ(model.pseudo_labels_added(), 0);
  auto pred = model.Predict();
  ASSERT_EQ(pred.size(), 60u);
  for (double p : pred) EXPECT_TRUE(std::isfinite(p));
}

TEST(CoregTest, ExhaustsReplenishedPool) {
  // Pool smaller than the unlabeled set and more iterations than needed:
  // backfill must keep the pool full until the unlabeled set runs dry, and
  // Fit must terminate cleanly once it does.
  auto data = testing::LinearDataset(40, 2, 28, 0.01, 28);  // 12 unlabeled
  CoregConfig config;
  config.pool_size = 3;
  config.max_iterations = 1000;
  Coreg model(config);
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_LE(model.pseudo_labels_added(), 12);
  EXPECT_EQ(model.Predict().size(), 40u);
}

// The incremental-cache screening must reproduce the original full-rescan
// screening bit for bit — same pseudo-label choices, same final model.
TEST(CoregTest, FastScreeningMatchesSeedScreeningExactly) {
  for (uint64_t seed : {29u, 30u, 31u}) {
    auto data = testing::LinearDataset(160, 3, 24, 0.15, seed);
    CoregConfig fast_config;
    fast_config.max_iterations = 30;
    CoregConfig seed_config = fast_config;
    seed_config.use_seed_screening = true;
    Coreg fast(fast_config), reference(seed_config);
    ASSERT_TRUE(fast.Fit(data).ok());
    ASSERT_TRUE(reference.Fit(data).ok());
    EXPECT_EQ(fast.pseudo_labels_added(), reference.pseudo_labels_added());
    EXPECT_EQ(fast.Predict(), reference.Predict()) << "seed " << seed;
  }
}

TEST(CoregTest, ThreadCountDoesNotChangeFit) {
  auto data = testing::LinearDataset(150, 3, 24, 0.15, 33);
  std::vector<double> reference;
  int reference_pseudo = 0;
  for (int threads : {1, 2, 8}) {
    CoregConfig config;
    config.max_iterations = 25;
    config.threads = threads;
    Coreg model(config);
    ASSERT_TRUE(model.Fit(data).ok());
    if (threads == 1) {
      reference = model.Predict();
      reference_pseudo = model.pseudo_labels_added();
    } else {
      EXPECT_EQ(model.Predict(), reference) << "threads=" << threads;
      EXPECT_EQ(model.pseudo_labels_added(), reference_pseudo);
    }
  }
}

}  // namespace
}  // namespace staq::ml
