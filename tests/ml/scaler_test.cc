#include "ml/scaler.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace staq::ml {
namespace {

TEST(StandardScalerTest, TransformsToZeroMeanUnitVar) {
  util::Rng rng(1);
  Matrix x(100, 3);
  for (size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.Normal(5, 2);
    x(i, 1) = rng.Normal(-10, 0.5);
    x(i, 2) = rng.Uniform(0, 100);
  }
  StandardScaler scaler;
  Matrix scaled = scaler.FitTransform(x);
  for (size_t c = 0; c < 3; ++c) {
    double mean = 0, var = 0;
    for (size_t i = 0; i < 100; ++i) mean += scaled(i, c);
    mean /= 100;
    for (size_t i = 0; i < 100; ++i) {
      var += (scaled(i, c) - mean) * (scaled(i, c) - mean);
    }
    var /= 100;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
}

TEST(StandardScalerTest, ConstantColumnMapsToZero) {
  Matrix x(10, 1, 7.0);
  StandardScaler scaler;
  Matrix scaled = scaler.FitTransform(x);
  for (size_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(scaled(i, 0), 0.0);
}

TEST(StandardScalerTest, TransformUsesFittedStats) {
  Matrix train(2, 1);
  train(0, 0) = 0;
  train(1, 0) = 2;  // mean 1, std 1
  StandardScaler scaler;
  scaler.Fit(train);
  Matrix test(1, 1);
  test(0, 0) = 5;
  EXPECT_DOUBLE_EQ(scaler.Transform(test)(0, 0), 4.0);
}

TEST(StandardScalerTest, EmptyFitIsIdentitySafe) {
  StandardScaler scaler;
  scaler.Fit(Matrix(0, 2));
  Matrix out = scaler.Transform(Matrix(0, 2));
  EXPECT_EQ(out.rows(), 0u);
}

TEST(TargetScalerTest, RoundTrip) {
  TargetScaler scaler;
  std::vector<double> y{10, 20, 30, 40};
  scaler.Fit(y);
  auto z = scaler.Transform(y);
  auto back = scaler.InverseTransform(z);
  for (size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(back[i], y[i], 1e-9);
  EXPECT_DOUBLE_EQ(scaler.mean(), 25.0);
}

TEST(TargetScalerTest, ScalarInverse) {
  TargetScaler scaler;
  scaler.Fit({0, 10});
  EXPECT_DOUBLE_EQ(scaler.InverseTransform(0.0), 5.0);
}

TEST(TargetScalerTest, ConstantTargetSafe) {
  TargetScaler scaler;
  scaler.Fit({3, 3, 3});
  auto z = scaler.Transform({3});
  EXPECT_DOUBLE_EQ(z[0], 0.0);
  EXPECT_DOUBLE_EQ(scaler.InverseTransform(0.0), 3.0);
}

TEST(StandardScalerDeathTest, TransformColumnMismatchAborts) {
  StandardScaler scaler;
  Matrix fitted(3, 2, 1.0);
  scaler.Fit(fitted);
  Matrix wrong(3, 4, 1.0);
  EXPECT_DEATH(scaler.Transform(wrong), "CHECK failed");
}

}  // namespace
}  // namespace staq::ml
