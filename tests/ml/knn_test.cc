#include "ml/knn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "testing/test_data.h"
#include "util/rng.h"

namespace staq::ml {
namespace {

TEST(KnnCoreTest, SingleExamplePredictsItsTarget) {
  KnnCore core(KnnConfig{3, 2.0, true});
  core.Add({0.0, 0.0}, 5.0);
  double row[2] = {10.0, 10.0};
  EXPECT_DOUBLE_EQ(core.PredictOne(row, 2), 5.0);
}

TEST(KnnCoreTest, ExactMatchDominatesWeighting) {
  KnnCore core(KnnConfig{2, 2.0, true});
  core.Add({0.0, 0.0}, 1.0);
  core.Add({10.0, 0.0}, 100.0);
  double at_first[2] = {0.0, 0.0};
  // Inverse-distance weighting: a near-zero distance overwhelms.
  EXPECT_NEAR(core.PredictOne(at_first, 2), 1.0, 1e-3);
}

TEST(KnnCoreTest, UnweightedMeanOfKNearest) {
  KnnCore core(KnnConfig{2, 2.0, /*distance_weighted=*/false});
  core.Add({0.0}, 10.0);
  core.Add({1.0}, 20.0);
  core.Add({100.0}, 999.0);
  double q[1] = {0.5};
  EXPECT_DOUBLE_EQ(core.PredictOne(q, 1), 15.0);
}

TEST(KnnCoreTest, MinkowskiOrderChangesNeighbors) {
  // With p=2 the diagonal point is closer; with very high p (Chebyshev-ish)
  // the axis point wins.
  KnnConfig euclid{1, 2.0, false};
  KnnConfig high_p{1, 8.0, false};
  KnnCore a(euclid), b(high_p);
  for (KnnCore* core : {&a, &b}) {
    core->Add({3.0, 3.0}, 1.0);   // euclid dist 4.24, p8 ~3.0+
    core->Add({4.1, 0.0}, 2.0);   // euclid dist 4.1, p8 4.1
  }
  double q[2] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(a.PredictOne(q, 2), 2.0);
  EXPECT_DOUBLE_EQ(b.PredictOne(q, 2), 1.0);
}

TEST(KnnCoreTest, NeighborsExcludeIndex) {
  KnnCore core(KnnConfig{2, 2.0, true});
  core.Add({0.0}, 1.0);
  core.Add({0.1}, 2.0);
  core.Add({5.0}, 3.0);
  double q[1] = {0.0};
  auto with = core.Neighbors(q, 1);
  auto without = core.Neighbors(q, 1, /*exclude=*/0);
  EXPECT_EQ(with[0], 0u);
  for (uint32_t idx : without) EXPECT_NE(idx, 0u);
}

TEST(KnnCoreTest, PredictExcludingIgnoresSelf) {
  KnnCore core(KnnConfig{1, 2.0, true});
  core.Add({0.0}, 100.0);
  core.Add({1.0}, 7.0);
  double q[1] = {0.0};
  EXPECT_NEAR(core.PredictOneExcluding(q, 1, 0), 7.0, 1e-9);
}

TEST(KnnCoreTest, RemoveLastUndoesAdd) {
  KnnCore core(KnnConfig{1, 2.0, true});
  core.Add({0.0}, 1.0);
  core.Add({0.01}, 50.0);
  core.RemoveLast();
  EXPECT_EQ(core.size(), 1u);
  double q[1] = {0.0};
  EXPECT_DOUBLE_EQ(core.PredictOne(q, 1), 1.0);
}

TEST(KnnRegressorTest, FitsSmoothFunction) {
  auto data = testing::LinearDataset(300, 3, 150, 0.1, 11);
  KnnRegressor model(KnnConfig{5, 2.0, true});
  ASSERT_TRUE(model.Fit(data).ok());
  auto pred = model.Predict();
  ASSERT_EQ(pred.size(), 300u);
  // kNN won't be exact but must clearly beat predicting the mean.
  double mean = 0;
  for (double y : data.y) mean += y;
  mean /= data.y.size();
  std::vector<double> mean_pred(300, mean);
  EXPECT_LT(testing::UnlabeledMae(data, pred),
            0.8 * testing::UnlabeledMae(data, mean_pred));
}

TEST(KnnRegressorTest, LabeledRowsPredictNearTheirTargets) {
  auto data = testing::LinearDataset(100, 2, 40, 0.0, 12);
  KnnRegressor model(KnnConfig{3, 2.0, true});
  ASSERT_TRUE(model.Fit(data).ok());
  auto pred = model.Predict();
  for (uint32_t idx : data.labeled) {
    // The row itself is in the training set at distance 0.
    EXPECT_NEAR(pred[idx], data.y[idx], 1e-3);
  }
}

TEST(KnnRegressorTest, RejectsInvalidDataset) {
  KnnRegressor model;
  EXPECT_FALSE(model.Fit(Dataset{}).ok());
}

// ---- exact distance pins --------------------------------------------------
// The p=1 and small-integer-p paths avoid per-element std::pow; these pins
// are exact (EXPECT_EQ, not NEAR) so any rounding change in the fast paths
// is a test failure.

TEST(KnnDistanceTest, ManhattanDistanceIsExact) {
  KnnCore core(KnnConfig{1, 1.0, true});
  core.Add({1.5, 2.0, -3.0}, 0.0);
  double q[3] = {0.5, 0.25, 1.0};
  // |1.0| + |1.75| + |-4.0| = 6.75, representable exactly.
  EXPECT_EQ(core.DistanceTo(0, q, 3), 6.75);
}

TEST(KnnDistanceTest, EuclideanDistanceIsExact) {
  KnnCore core(KnnConfig{1, 2.0, true});
  core.Add({0.0, 0.0}, 0.0);
  double q[2] = {3.0, 4.0};
  EXPECT_EQ(core.DistanceTo(0, q, 2), 5.0);
}

TEST(KnnDistanceTest, SmallIntegerOrdersMatchPowOfExactSum) {
  // diffs {1, 2}: sum |d|^p is an exact small integer, so the reference
  // value is unambiguous: pow(sum, 1/p).
  KnnCore cubic(KnnConfig{1, 3.0, true});
  cubic.Add({0.0, 0.0}, 0.0);
  double q[2] = {1.0, 2.0};
  EXPECT_EQ(cubic.DistanceTo(0, q, 2), std::pow(9.0, 1.0 / 3.0));

  KnnCore quintic(KnnConfig{1, 5.0, true});  // COREG's second regressor
  quintic.Add({0.0, 0.0}, 0.0);
  EXPECT_EQ(quintic.DistanceTo(0, q, 2), std::pow(33.0, 1.0 / 5.0));

  KnnCore quartic(KnnConfig{1, 4.0, true});  // even order: no abs needed
  quartic.Add({0.0, -0.0}, 0.0);
  EXPECT_EQ(quartic.DistanceTo(0, q, 2), std::pow(17.0, 1.0 / 4.0));
}

TEST(KnnDistanceTest, FractionalOrderUsesGeneralFormula) {
  KnnCore core(KnnConfig{1, 2.5, true});
  core.Add({0.0, 0.0}, 0.0);
  double q[2] = {1.0, 2.0};
  double expected = std::pow(
      std::pow(1.0, 2.5) + std::pow(2.0, 2.5), 1.0 / 2.5);
  EXPECT_EQ(core.DistanceTo(0, q, 2), expected);
}

TEST(KnnDistanceTest, OrderOneEqualsGeneralMinkowskiFormula) {
  // pow(x, 1.0) == x exactly, so skipping the pow calls cannot change bits.
  KnnCore core(KnnConfig{1, 1.0, true});
  core.Add({0.3, -1.7, 2.9}, 0.0);
  double q[3] = {1.1, 0.2, -0.4};
  double general = 0.0;
  for (size_t c = 0; c < 3; ++c) {
    general += std::pow(std::abs(core.features(0)[c] - q[c]), 1.0);
  }
  general = std::pow(general, 1.0 / 1.0);
  EXPECT_EQ(core.DistanceTo(0, q, 3), general);
}

// ---- incremental neighbour caches ----------------------------------------

TEST(KnnCacheTest, UpdateNeighborsTracksFreshSelection) {
  util::Rng rng(31);
  KnnCore core(KnnConfig{3, 2.0, true});
  std::vector<double> q = {rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
  CachedNeighbors incremental;
  NeighborScratch scratch;
  for (int add = 0; add < 40; ++add) {
    core.Add({rng.Uniform(-1, 1), rng.Uniform(-1, 1)}, rng.Uniform(0, 10));
    core.UpdateNeighbors(q.data(), UINT32_MAX, &incremental, &scratch);
    CachedNeighbors fresh;
    core.UpdateNeighbors(q.data(), UINT32_MAX, &fresh, &scratch);
    ASSERT_EQ(incremental.sorted, fresh.sorted) << "after add " << add;
    ASSERT_EQ(incremental.version, core.size());
  }
}

TEST(KnnCacheTest, UpdateNeighborsReportsChanges) {
  KnnCore core(KnnConfig{2, 2.0, true});
  core.Add({0.0}, 1.0);
  core.Add({1.0}, 2.0);
  double q[1] = {0.0};
  CachedNeighbors cache;
  NeighborScratch scratch;
  EXPECT_TRUE(core.UpdateNeighbors(q, UINT32_MAX, &cache, &scratch));
  // No additions: nothing to do.
  EXPECT_FALSE(core.UpdateNeighbors(q, UINT32_MAX, &cache, &scratch));
  // A far point does not enter the top-2.
  core.Add({100.0}, 3.0);
  EXPECT_FALSE(core.UpdateNeighbors(q, UINT32_MAX, &cache, &scratch));
  // A near point evicts the current second neighbour.
  core.Add({0.25}, 4.0);
  EXPECT_TRUE(core.UpdateNeighbors(q, UINT32_MAX, &cache, &scratch));
  ASSERT_EQ(cache.sorted.size(), 2u);
  EXPECT_EQ(cache.sorted[0].second, 0u);
  EXPECT_EQ(cache.sorted[1].second, 3u);
}

TEST(KnnCacheTest, ChangedExcludeForcesRebuild) {
  KnnCore core(KnnConfig{2, 2.0, true});
  core.Add({0.0}, 1.0);
  core.Add({0.5}, 2.0);
  core.Add({1.0}, 3.0);
  double q[1] = {0.0};
  CachedNeighbors cache;
  NeighborScratch scratch;
  core.UpdateNeighbors(q, UINT32_MAX, &cache, &scratch);
  core.UpdateNeighbors(q, /*exclude=*/0, &cache, &scratch);
  ASSERT_EQ(cache.sorted.size(), 2u);
  for (const auto& [d, idx] : cache.sorted) EXPECT_NE(idx, 0u);
}

TEST(KnnCacheTest, ScratchReuseMatchesAllocatingPath) {
  util::Rng rng(32);
  KnnCore core(KnnConfig{4, 5.0, true});
  for (int i = 0; i < 30; ++i) {
    core.Add({rng.Uniform(-2, 2), rng.Uniform(-2, 2), rng.Uniform(-2, 2)},
             rng.Uniform(0, 5));
  }
  NeighborScratch scratch;  // shared across every call below
  for (int i = 0; i < 10; ++i) {
    double q[3] = {rng.Uniform(-2, 2), rng.Uniform(-2, 2),
                   rng.Uniform(-2, 2)};
    EXPECT_EQ(core.PredictOne(q, 3, &scratch), core.PredictOne(q, 3));
    EXPECT_EQ(core.PredictOneExcluding(q, 3, 0, &scratch),
              core.PredictOneExcluding(q, 3, 0));
  }
}

TEST(KnnCacheTest, PredictFromListSupportsTentativeExtra) {
  KnnCore core(KnnConfig{2, 2.0, /*distance_weighted=*/false});
  core.Add({0.0}, 10.0);
  core.Add({1.0}, 20.0);
  // A tentative extra example (index == size()) with target 40 at the same
  // distance as example 0.
  std::pair<double, uint32_t> list[2] = {
      {1.0, 0u}, {2.0, static_cast<uint32_t>(core.size())}};
  EXPECT_EQ(core.PredictFromList(list, 2, /*extra_target=*/40.0), 25.0);
}

}  // namespace
}  // namespace staq::ml
