#include "ml/knn.h"

#include <gtest/gtest.h>

#include "testing/test_data.h"

namespace staq::ml {
namespace {

TEST(KnnCoreTest, SingleExamplePredictsItsTarget) {
  KnnCore core(KnnConfig{3, 2.0, true});
  core.Add({0.0, 0.0}, 5.0);
  double row[2] = {10.0, 10.0};
  EXPECT_DOUBLE_EQ(core.PredictOne(row, 2), 5.0);
}

TEST(KnnCoreTest, ExactMatchDominatesWeighting) {
  KnnCore core(KnnConfig{2, 2.0, true});
  core.Add({0.0, 0.0}, 1.0);
  core.Add({10.0, 0.0}, 100.0);
  double at_first[2] = {0.0, 0.0};
  // Inverse-distance weighting: a near-zero distance overwhelms.
  EXPECT_NEAR(core.PredictOne(at_first, 2), 1.0, 1e-3);
}

TEST(KnnCoreTest, UnweightedMeanOfKNearest) {
  KnnCore core(KnnConfig{2, 2.0, /*distance_weighted=*/false});
  core.Add({0.0}, 10.0);
  core.Add({1.0}, 20.0);
  core.Add({100.0}, 999.0);
  double q[1] = {0.5};
  EXPECT_DOUBLE_EQ(core.PredictOne(q, 1), 15.0);
}

TEST(KnnCoreTest, MinkowskiOrderChangesNeighbors) {
  // With p=2 the diagonal point is closer; with very high p (Chebyshev-ish)
  // the axis point wins.
  KnnConfig euclid{1, 2.0, false};
  KnnConfig high_p{1, 8.0, false};
  KnnCore a(euclid), b(high_p);
  for (KnnCore* core : {&a, &b}) {
    core->Add({3.0, 3.0}, 1.0);   // euclid dist 4.24, p8 ~3.0+
    core->Add({4.1, 0.0}, 2.0);   // euclid dist 4.1, p8 4.1
  }
  double q[2] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(a.PredictOne(q, 2), 2.0);
  EXPECT_DOUBLE_EQ(b.PredictOne(q, 2), 1.0);
}

TEST(KnnCoreTest, NeighborsExcludeIndex) {
  KnnCore core(KnnConfig{2, 2.0, true});
  core.Add({0.0}, 1.0);
  core.Add({0.1}, 2.0);
  core.Add({5.0}, 3.0);
  double q[1] = {0.0};
  auto with = core.Neighbors(q, 1);
  auto without = core.Neighbors(q, 1, /*exclude=*/0);
  EXPECT_EQ(with[0], 0u);
  for (uint32_t idx : without) EXPECT_NE(idx, 0u);
}

TEST(KnnCoreTest, PredictExcludingIgnoresSelf) {
  KnnCore core(KnnConfig{1, 2.0, true});
  core.Add({0.0}, 100.0);
  core.Add({1.0}, 7.0);
  double q[1] = {0.0};
  EXPECT_NEAR(core.PredictOneExcluding(q, 1, 0), 7.0, 1e-9);
}

TEST(KnnCoreTest, RemoveLastUndoesAdd) {
  KnnCore core(KnnConfig{1, 2.0, true});
  core.Add({0.0}, 1.0);
  core.Add({0.01}, 50.0);
  core.RemoveLast();
  EXPECT_EQ(core.size(), 1u);
  double q[1] = {0.0};
  EXPECT_DOUBLE_EQ(core.PredictOne(q, 1), 1.0);
}

TEST(KnnRegressorTest, FitsSmoothFunction) {
  auto data = testing::LinearDataset(300, 3, 150, 0.1, 11);
  KnnRegressor model(KnnConfig{5, 2.0, true});
  ASSERT_TRUE(model.Fit(data).ok());
  auto pred = model.Predict();
  ASSERT_EQ(pred.size(), 300u);
  // kNN won't be exact but must clearly beat predicting the mean.
  double mean = 0;
  for (double y : data.y) mean += y;
  mean /= data.y.size();
  std::vector<double> mean_pred(300, mean);
  EXPECT_LT(testing::UnlabeledMae(data, pred),
            0.8 * testing::UnlabeledMae(data, mean_pred));
}

TEST(KnnRegressorTest, LabeledRowsPredictNearTheirTargets) {
  auto data = testing::LinearDataset(100, 2, 40, 0.0, 12);
  KnnRegressor model(KnnConfig{3, 2.0, true});
  ASSERT_TRUE(model.Fit(data).ok());
  auto pred = model.Predict();
  for (uint32_t idx : data.labeled) {
    // The row itself is in the training set at distance 0.
    EXPECT_NEAR(pred[idx], data.y[idx], 1e-3);
  }
}

TEST(KnnRegressorTest, RejectsInvalidDataset) {
  KnnRegressor model;
  EXPECT_FALSE(model.Fit(Dataset{}).ok());
}

}  // namespace
}  // namespace staq::ml
