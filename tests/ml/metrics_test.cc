#include "ml/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace staq::ml {
namespace {

TEST(MaeTest, ZeroForIdentical) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(MaeTest, KnownValue) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({0, 0, 0}, {1, -2, 3}), 2.0);
}

TEST(RmseTest, KnownValue) {
  EXPECT_DOUBLE_EQ(RootMeanSquaredError({0, 0}, {3, 4}),
                   std::sqrt(12.5));
}

TEST(RmseTest, AtLeastMae) {
  std::vector<double> a{1, 5, 2, 8}, b{2, 2, 2, 2};
  EXPECT_GE(RootMeanSquaredError(a, b), MeanAbsoluteError(a, b));
}

TEST(PearsonTest, PerfectPositive) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegative) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {3, 2, 1}), -1.0, 1e-12);
}

TEST(PearsonTest, InvariantToAffineTransform) {
  std::vector<double> a{1, 4, 2, 8, 5};
  std::vector<double> b{2, 3, 7, 1, 9};
  double base = PearsonCorrelation(a, b);
  std::vector<double> scaled(b.size());
  for (size_t i = 0; i < b.size(); ++i) scaled[i] = 3 * b[i] - 100;
  EXPECT_NEAR(PearsonCorrelation(a, scaled), base, 1e-12);
}

TEST(PearsonTest, ZeroVarianceReturnsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2, 3}, {5, 5, 5}), 0.0);
}

TEST(PearsonTest, UncorrelatedNearZero) {
  // Symmetric design: x and x^2 over symmetric range are uncorrelated.
  std::vector<double> x{-2, -1, 0, 1, 2};
  std::vector<double> x2{4, 1, 0, 1, 4};
  EXPECT_NEAR(PearsonCorrelation(x, x2), 0.0, 1e-12);
}

TEST(AccuracyTest, Basics) {
  EXPECT_DOUBLE_EQ(ClassificationAccuracy({0, 1, 2, 3}, {0, 1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(ClassificationAccuracy({0, 1, 2, 3}, {1, 1, 1, 3}), 0.5);
  EXPECT_DOUBLE_EQ(ClassificationAccuracy({0}, {1}), 0.0);
}

}  // namespace
}  // namespace staq::ml
