#include "ml/gnn.h"

#include <gtest/gtest.h>

#include "testing/test_data.h"

namespace staq::ml {
namespace {

GnnConfig FastGnn(uint64_t seed) {
  GnnConfig config;
  config.epochs = 200;
  config.hidden = 16;
  config.seed = seed;
  return config;
}

TEST(AdjacencyTest, SymmetricWithSelfLoops) {
  std::vector<geo::Point> positions{{0, 0}, {100, 0}, {5000, 5000}};
  Matrix a = BuildNormalizedAdjacency(positions, 0.25, 0.05);
  ASSERT_EQ(a.rows(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GT(a(i, i), 0.0);  // self-loop survives normalisation
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(a(i, j), a(j, i), 1e-12);
      EXPECT_GE(a(i, j), 0.0);
    }
  }
}

TEST(AdjacencyTest, ThresholdCutsDistantPairs) {
  std::vector<geo::Point> positions{{0, 0}, {50, 0}, {100000, 0}};
  Matrix a = BuildNormalizedAdjacency(positions, 0.05, 0.05);
  EXPECT_GT(a(0, 1), 0.0);   // near pair connected
  EXPECT_EQ(a(0, 2), 0.0);   // distant pair cut
}

TEST(AdjacencyTest, RowsOfNormalizedMatrixBounded) {
  util::Rng rng(5);
  std::vector<geo::Point> positions;
  for (int i = 0; i < 50; ++i) {
    positions.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
  }
  Matrix a = BuildNormalizedAdjacency(positions, 0.25, 0.05);
  // Symmetric normalisation keeps the spectral radius <= 1, and in
  // particular every entry is in [0, 1].
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_GE(a(i, j), 0.0);
      EXPECT_LE(a(i, j), 1.0);
    }
  }
}

TEST(GnnTest, LearnsSpatiallySmoothTarget) {
  // Target varies smoothly with position: exactly the GNN's inductive bias.
  util::Rng rng(51);
  Dataset data;
  size_t n = 200;
  data.x = Matrix(n, 3);
  data.y.resize(n);
  data.positions.resize(n);
  for (size_t i = 0; i < n; ++i) {
    double px = rng.Uniform(0, 1000), py = rng.Uniform(0, 1000);
    data.positions[i] = geo::Point{px, py};
    for (size_t c = 0; c < 3; ++c) {
      data.x(i, c) = px / 1000.0 + rng.Normal(0, 0.1);
    }
    data.y[i] = px / 100.0 + py / 200.0;
  }
  auto sample = rng.SampleWithoutReplacement(n, 60);
  data.labeled.assign(sample.begin(), sample.end());

  GnnRegressor model(FastGnn(1));
  ASSERT_TRUE(model.Fit(data).ok());
  auto pred = model.Predict();
  ASSERT_EQ(pred.size(), n);

  double mean = 0;
  for (double y : data.y) mean += y;
  mean /= data.y.size();
  std::vector<double> mean_pred(n, mean);
  EXPECT_LT(testing::UnlabeledMae(data, pred),
            0.7 * testing::UnlabeledMae(data, mean_pred));
}

TEST(GnnTest, RequiresPositions) {
  auto data = testing::LinearDataset(50, 2, 20, 0.1, 52);
  data.positions.clear();
  GnnRegressor model(FastGnn(2));
  EXPECT_FALSE(model.Fit(data).ok());
}

TEST(GnnTest, DeterministicForSameSeed) {
  auto data = testing::LinearDataset(80, 3, 30, 0.2, 53);
  GnnRegressor a(FastGnn(7)), b(FastGnn(7));
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  EXPECT_EQ(a.Predict(), b.Predict());
}

TEST(GnnTest, RejectsInvalidDataset) {
  GnnRegressor model;
  EXPECT_FALSE(model.Fit(Dataset{}).ok());
}

TEST(GnnTest, NameIsStable) { EXPECT_STREQ(GnnRegressor().name(), "GNN"); }

}  // namespace
}  // namespace staq::ml
