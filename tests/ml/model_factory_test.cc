#include "ml/model_factory.h"

#include <gtest/gtest.h>

#include "testing/test_data.h"

namespace staq::ml {
namespace {

TEST(ModelFactoryTest, AllKindsConstruct) {
  for (ModelKind kind : AllModelKinds()) {
    auto model = CreateModel(kind, 1);
    ASSERT_NE(model, nullptr) << ModelKindName(kind);
    EXPECT_STREQ(model->name(), ModelKindName(kind));
  }
}

TEST(ModelFactoryTest, NamesMatchPaper) {
  EXPECT_STREQ(ModelKindName(ModelKind::kOls), "OLS");
  EXPECT_STREQ(ModelKindName(ModelKind::kMlp), "MLP");
  EXPECT_STREQ(ModelKindName(ModelKind::kCoreg), "COREG");
  EXPECT_STREQ(ModelKindName(ModelKind::kMeanTeacher), "MT");
  EXPECT_STREQ(ModelKindName(ModelKind::kGnn), "GNN");
}

TEST(ModelFactoryTest, FiveKindsInPaperOrder) {
  auto kinds = AllModelKinds();
  ASSERT_EQ(kinds.size(), static_cast<size_t>(kNumModelKinds));
  EXPECT_EQ(kinds.front(), ModelKind::kOls);
  EXPECT_EQ(kinds.back(), ModelKind::kGnn);
}

// Every factory-made model must run the full fit/predict contract on the
// same dataset.
class FactoryModelContractTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(FactoryModelContractTest, FitPredictContract) {
  auto data = testing::LinearDataset(100, 3, 40, 0.2, 61);
  auto model = CreateModel(GetParam(), 123);
  ASSERT_TRUE(model->Fit(data).ok()) << model->name();
  auto pred = model->Predict();
  ASSERT_EQ(pred.size(), data.num_instances());
  for (double p : pred) {
    EXPECT_TRUE(std::isfinite(p)) << model->name();
  }
}

TEST_P(FactoryModelContractTest, RejectsEmptyDataset) {
  auto model = CreateModel(GetParam(), 123);
  EXPECT_FALSE(model->Fit(Dataset{}).ok());
}

INSTANTIATE_TEST_SUITE_P(AllModels, FactoryModelContractTest,
                         ::testing::ValuesIn(AllModelKinds()),
                         [](const auto& info) {
                           return ModelKindName(info.param);
                         });

}  // namespace
}  // namespace staq::ml
