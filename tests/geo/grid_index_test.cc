#include "geo/grid_index.h"

#include <limits>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace staq::geo {
namespace {

std::vector<IndexedPoint> RandomPoints(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<IndexedPoint> points;
  for (uint32_t i = 0; i < n; ++i) {
    points.push_back(
        IndexedPoint{{rng.Uniform(0, 5000), rng.Uniform(0, 5000)}, i});
  }
  return points;
}

TEST(GridIndexTest, EmptyIndex) {
  GridIndex grid({}, 100);
  EXPECT_TRUE(grid.empty());
  EXPECT_TRUE(grid.WithinRadius({0, 0}, 1000).empty());
}

TEST(GridIndexTest, SinglePoint) {
  GridIndex grid({IndexedPoint{{10, 20}, 7}}, 100);
  auto hits = grid.WithinRadius({0, 0}, 100);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 7u);
  EXPECT_EQ(grid.Nearest({500, 500}).id, 7u);
}

TEST(GridIndexTest, RadiusBoundaryInclusive) {
  GridIndex grid({IndexedPoint{{100, 0}, 0}}, 50);
  EXPECT_EQ(grid.WithinRadius({0, 0}, 100).size(), 1u);
  EXPECT_EQ(grid.WithinRadius({0, 0}, 99.999).size(), 0u);
}

TEST(GridIndexTest, QueryOutsideExtent) {
  auto points = RandomPoints(100, 1);
  GridIndex grid(points, 200);
  // Query far outside the indexed area must still find points within the
  // (large) radius.
  auto hits = grid.WithinRadius({-5000, -5000}, 20000);
  EXPECT_EQ(hits.size(), 100u);
}

TEST(GridIndexTest, ResultsSortedByDistance) {
  auto points = RandomPoints(200, 2);
  GridIndex grid(points, 300);
  auto hits = grid.WithinRadius({2500, 2500}, 1500);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].distance, hits[i].distance);
  }
}

TEST(GridIndexTest, NearestOnClusteredData) {
  std::vector<IndexedPoint> points;
  points.push_back(IndexedPoint{{0, 0}, 0});
  points.push_back(IndexedPoint{{1, 1}, 1});
  points.push_back(IndexedPoint{{4000, 4000}, 2});
  GridIndex grid(points, 100);
  EXPECT_EQ(grid.Nearest({3500, 3500}).id, 2u);
  EXPECT_EQ(grid.Nearest({2, 2}).id, 1u);
}

class GridIndexPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GridIndexPropertyTest, MatchesBruteForceRadius) {
  util::Rng rng(GetParam() * 17 + 3);
  size_t n = 1 + rng.UniformU64(300);
  auto points = RandomPoints(n, GetParam());
  double cell = rng.Uniform(20, 800);
  GridIndex grid(points, cell);

  for (int q = 0; q < 10; ++q) {
    Point query{rng.Uniform(-1000, 6000), rng.Uniform(-1000, 6000)};
    double radius = rng.Uniform(0, 2000);
    auto hits = grid.WithinRadius(query, radius);

    size_t brute = 0;
    for (const auto& ip : points) {
      if (Distance(ip.point, query) <= radius) ++brute;
    }
    EXPECT_EQ(hits.size(), brute);
  }
}

TEST_P(GridIndexPropertyTest, NearestMatchesBruteForce) {
  util::Rng rng(GetParam() * 29 + 11);
  size_t n = 1 + rng.UniformU64(200);
  auto points = RandomPoints(n, GetParam() + 500);
  GridIndex grid(points, rng.Uniform(50, 500));

  for (int q = 0; q < 10; ++q) {
    Point query{rng.Uniform(-500, 5500), rng.Uniform(-500, 5500)};
    Neighbor fast = grid.Nearest(query);
    double best = std::numeric_limits<double>::infinity();
    for (const auto& ip : points) {
      best = std::min(best, Distance(ip.point, query));
    }
    EXPECT_NEAR(fast.distance, best, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridIndexPropertyTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace staq::geo
