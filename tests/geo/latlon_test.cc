#include "geo/latlon.h"

#include <gtest/gtest.h>

namespace staq::geo {
namespace {

TEST(HaversineTest, ZeroForIdenticalPoints) {
  LatLon p{52.48, -1.90};
  EXPECT_DOUBLE_EQ(HaversineMeters(p, p), 0.0);
}

TEST(HaversineTest, OneDegreeLatitudeIsAbout111km) {
  LatLon a{52.0, 0.0}, b{53.0, 0.0};
  EXPECT_NEAR(HaversineMeters(a, b), 111195, 200);
}

TEST(HaversineTest, LongitudeShrinksWithLatitude) {
  LatLon eq_a{0.0, 0.0}, eq_b{0.0, 1.0};
  LatLon mid_a{52.0, 0.0}, mid_b{52.0, 1.0};
  double at_equator = HaversineMeters(eq_a, eq_b);
  double at_52 = HaversineMeters(mid_a, mid_b);
  EXPECT_NEAR(at_52 / at_equator, std::cos(52.0 * 0.0174532925), 1e-3);
}

TEST(HaversineTest, Symmetric) {
  LatLon a{52.48, -1.90}, b{52.41, -1.51};  // Birmingham -> Coventry-ish
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
  // Roughly 27-28 km apart.
  EXPECT_NEAR(HaversineMeters(a, b), 27500, 1500);
}

TEST(LocalProjectionTest, OriginMapsToZero) {
  LatLon origin{52.48, -1.90};
  LocalProjection proj(origin);
  Point p = proj.Project(origin);
  EXPECT_NEAR(p.x, 0.0, 1e-9);
  EXPECT_NEAR(p.y, 0.0, 1e-9);
}

TEST(LocalProjectionTest, RoundTrip) {
  LocalProjection proj({52.48, -1.90});
  LatLon c{52.51, -1.85};
  LatLon back = proj.Unproject(proj.Project(c));
  EXPECT_NEAR(back.lat, c.lat, 1e-9);
  EXPECT_NEAR(back.lon, c.lon, 1e-9);
}

TEST(LocalProjectionTest, DistancesMatchHaversineAtCityScale) {
  LocalProjection proj({52.48, -1.90});
  LatLon a{52.50, -1.95}, b{52.44, -1.82};
  double planar = Distance(proj.Project(a), proj.Project(b));
  double sphere = HaversineMeters(a, b);
  EXPECT_NEAR(planar / sphere, 1.0, 1e-3);  // < 0.1% at ~10 km
}

TEST(PointTest, DistanceAndSquare) {
  Point a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSquared(a, b), 25.0);
}

TEST(BBoxTest, ContainsAndIntersects) {
  BBox box{0, 0, 10, 10};
  EXPECT_TRUE(box.Contains({5, 5}));
  EXPECT_TRUE(box.Contains({0, 0}));   // boundary inclusive
  EXPECT_TRUE(box.Contains({10, 10}));
  EXPECT_FALSE(box.Contains({11, 5}));
  EXPECT_FALSE(box.Contains({5, -0.1}));

  EXPECT_TRUE(box.Intersects(BBox{9, 9, 20, 20}));
  EXPECT_TRUE(box.Intersects(BBox{10, 10, 20, 20}));  // touching corners
  EXPECT_FALSE(box.Intersects(BBox{10.1, 0, 20, 10}));
  EXPECT_EQ(box.Width(), 10.0);
  EXPECT_EQ(box.Height(), 10.0);
}

}  // namespace
}  // namespace staq::geo
