#include "geo/polygon.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace staq::geo {
namespace {

Polygon UnitSquare() {
  return Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
}

TEST(PolygonTest, SignedAreaCcwPositive) {
  EXPECT_DOUBLE_EQ(UnitSquare().SignedArea(), 1.0);
}

TEST(PolygonTest, SignedAreaCwNegative) {
  Polygon cw({{0, 0}, {0, 1}, {1, 1}, {1, 0}});
  EXPECT_DOUBLE_EQ(cw.SignedArea(), -1.0);
  EXPECT_DOUBLE_EQ(cw.Area(), 1.0);
}

TEST(PolygonTest, DegenerateAreaIsZero) {
  EXPECT_DOUBLE_EQ(Polygon().SignedArea(), 0.0);
  EXPECT_DOUBLE_EQ(Polygon({{0, 0}, {1, 1}}).SignedArea(), 0.0);
}

TEST(PolygonTest, CentroidOfSquare) {
  Point c = UnitSquare().Centroid();
  EXPECT_NEAR(c.x, 0.5, 1e-12);
  EXPECT_NEAR(c.y, 0.5, 1e-12);
}

TEST(PolygonTest, CentroidDegenerateFallsBackToMean) {
  Polygon seg({{0, 0}, {2, 0}});
  Point c = seg.Centroid();
  EXPECT_NEAR(c.x, 1.0, 1e-12);
  EXPECT_NEAR(c.y, 0.0, 1e-12);
}

TEST(PolygonTest, ContainsInterior) {
  EXPECT_TRUE(UnitSquare().Contains({0.5, 0.5}));
  EXPECT_FALSE(UnitSquare().Contains({1.5, 0.5}));
  EXPECT_FALSE(UnitSquare().Contains({-0.1, 0.5}));
}

TEST(PolygonTest, ContainsBoundary) {
  EXPECT_TRUE(UnitSquare().Contains({0.0, 0.5}));  // edge
  EXPECT_TRUE(UnitSquare().Contains({0.0, 0.0}));  // vertex
  EXPECT_TRUE(UnitSquare().Contains({0.5, 1.0}));
}

TEST(PolygonTest, ContainsConcaveShape) {
  // An L-shape: the notch must be outside.
  Polygon l({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  EXPECT_TRUE(l.Contains({0.5, 1.5}));
  EXPECT_TRUE(l.Contains({1.5, 0.5}));
  EXPECT_FALSE(l.Contains({1.5, 1.5}));  // the notch
}

TEST(PolygonTest, EmptyNeverContains) {
  EXPECT_FALSE(Polygon().Contains({0, 0}));
  EXPECT_FALSE(Polygon({{0, 0}, {1, 1}}).Contains({0.5, 0.5}));
}

TEST(PolygonTest, BoundsAreTight) {
  BBox box = UnitSquare().Bounds();
  EXPECT_EQ(box.min_x, 0.0);
  EXPECT_EQ(box.max_x, 1.0);
  EXPECT_EQ(box.min_y, 0.0);
  EXPECT_EQ(box.max_y, 1.0);
}

TEST(PolygonTest, IntersectsOverlapping) {
  Polygon other({{0.5, 0.5}, {1.5, 0.5}, {1.5, 1.5}, {0.5, 1.5}});
  EXPECT_TRUE(UnitSquare().Intersects(other));
  EXPECT_TRUE(other.Intersects(UnitSquare()));
}

TEST(PolygonTest, IntersectsContainment) {
  Polygon inner({{0.25, 0.25}, {0.75, 0.25}, {0.75, 0.75}, {0.25, 0.75}});
  EXPECT_TRUE(UnitSquare().Intersects(inner));
  EXPECT_TRUE(inner.Intersects(UnitSquare()));
}

TEST(PolygonTest, IntersectsDisjoint) {
  Polygon far({{5, 5}, {6, 5}, {6, 6}, {5, 6}});
  EXPECT_FALSE(UnitSquare().Intersects(far));
}

TEST(PolygonTest, IntersectsCrossWithNoContainedVertex) {
  // A plus-sign configuration: tall thin and wide flat rectangles cross
  // but neither contains a vertex of the other.
  Polygon tall({{0.4, -1}, {0.6, -1}, {0.6, 2}, {0.4, 2}});
  Polygon wide({{-1, 0.4}, {2, 0.4}, {2, 0.6}, {-1, 0.6}});
  EXPECT_TRUE(tall.Intersects(wide));
  EXPECT_TRUE(wide.Intersects(tall));
}

TEST(PolygonTest, EmptyNeverIntersects) {
  EXPECT_FALSE(Polygon().Intersects(UnitSquare()));
  EXPECT_FALSE(UnitSquare().Intersects(Polygon()));
}

TEST(SegmentsIntersectTest, CrossingAndParallel) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {1, 1}, {0, 1}, {1, 0}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
  // Touching at endpoint counts.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {1, 0}, {1, 0}, {2, 5}));
  // Collinear overlapping.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  // Collinear disjoint.
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(ConvexHullTest, SquareWithInteriorPoint) {
  Polygon hull = ConvexHull({{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}});
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_DOUBLE_EQ(hull.Area(), 1.0);
  EXPECT_TRUE(hull.Contains({0.5, 0.5}));
}

TEST(ConvexHullTest, DuplicatesRemoved) {
  Polygon hull = ConvexHull({{0, 0}, {0, 0}, {1, 0}, {1, 0}, {0, 1}});
  EXPECT_EQ(hull.size(), 3u);
}

TEST(ConvexHullTest, CollinearDegeneratesToSegment) {
  Polygon hull = ConvexHull({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EXPECT_EQ(hull.size(), 2u);
}

TEST(ConvexHullTest, FewerThanThreePoints) {
  EXPECT_EQ(ConvexHull({}).size(), 0u);
  EXPECT_EQ(ConvexHull({{1, 2}}).size(), 1u);
  EXPECT_EQ(ConvexHull({{1, 2}, {3, 4}}).size(), 2u);
}

TEST(ConvexHullTest, HullContainsAllInputPoints) {
  util::Rng rng(321);
  std::vector<Point> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back({rng.Uniform(-100, 100), rng.Uniform(-100, 100)});
  }
  Polygon hull = ConvexHull(points);
  ASSERT_GE(hull.size(), 3u);
  EXPECT_GT(hull.SignedArea(), 0.0);  // counter-clockwise
  for (const Point& p : points) {
    EXPECT_TRUE(hull.Contains(p)) << p.x << "," << p.y;
  }
}

// Property sweep: hulls of random clouds are convex (every vertex triple
// turns the same way) across many seeds.
class ConvexHullPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ConvexHullPropertyTest, HullIsConvex) {
  util::Rng rng(GetParam());
  std::vector<Point> points;
  int n = 5 + static_cast<int>(rng.UniformU64(100));
  for (int i = 0; i < n; ++i) {
    points.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
  }
  Polygon hull = ConvexHull(points);
  if (hull.size() < 3) return;  // collinear degenerate, allowed
  const auto& v = hull.vertices();
  for (size_t i = 0; i < v.size(); ++i) {
    const Point& a = v[i];
    const Point& b = v[(i + 1) % v.size()];
    const Point& c = v[(i + 2) % v.size()];
    double cross = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
    EXPECT_GT(cross, 0.0);  // strict left turns everywhere
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvexHullPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace staq::geo
