#include "geo/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace staq::geo {
namespace {

std::vector<IndexedPoint> RandomPoints(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<IndexedPoint> points;
  points.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    points.push_back(
        IndexedPoint{{rng.Uniform(0, 10000), rng.Uniform(0, 10000)}, i});
  }
  return points;
}

/// Brute-force reference for nearest neighbour.
Neighbor BruteNearest(const std::vector<IndexedPoint>& points,
                      const Point& q) {
  Neighbor best{0, std::numeric_limits<double>::infinity()};
  for (const auto& ip : points) {
    double d = Distance(ip.point, q);
    if (d < best.distance) best = Neighbor{ip.id, d};
  }
  return best;
}

TEST(KdTreeTest, EmptyTree) {
  KdTree tree({});
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.KNearest({0, 0}, 3).empty());
  EXPECT_TRUE(tree.WithinRadius({0, 0}, 100).empty());
}

TEST(KdTreeTest, SinglePoint) {
  KdTree tree({IndexedPoint{{5, 5}, 42}});
  Neighbor n = tree.Nearest({0, 0});
  EXPECT_EQ(n.id, 42u);
  EXPECT_NEAR(n.distance, std::sqrt(50.0), 1e-12);
}

TEST(KdTreeTest, NearestExactPointHasZeroDistance) {
  auto points = RandomPoints(50, 1);
  KdTree tree(points);
  for (const auto& ip : points) {
    Neighbor n = tree.Nearest(ip.point);
    EXPECT_EQ(n.distance, 0.0);
  }
}

TEST(KdTreeTest, KNearestOrderedAndCorrectSize) {
  auto points = RandomPoints(100, 2);
  KdTree tree(points);
  auto result = tree.KNearest({5000, 5000}, 10);
  ASSERT_EQ(result.size(), 10u);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].distance, result[i].distance);
  }
}

TEST(KdTreeTest, KNearestKLargerThanTree) {
  auto points = RandomPoints(5, 3);
  KdTree tree(points);
  EXPECT_EQ(tree.KNearest({0, 0}, 10).size(), 5u);
}

TEST(KdTreeTest, KNearestZero) {
  auto points = RandomPoints(5, 4);
  KdTree tree(points);
  EXPECT_TRUE(tree.KNearest({0, 0}, 0).empty());
}

TEST(KdTreeTest, WithinRadiusMatchesBruteForce) {
  auto points = RandomPoints(300, 5);
  KdTree tree(points);
  Point q{4000, 6000};
  double radius = 1500;
  auto result = tree.WithinRadius(q, radius);

  size_t brute_count = 0;
  for (const auto& ip : points) {
    if (Distance(ip.point, q) <= radius) ++brute_count;
  }
  EXPECT_EQ(result.size(), brute_count);
  for (const auto& n : result) EXPECT_LE(n.distance, radius);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].distance, result[i].distance);
  }
}

TEST(KdTreeTest, WithinRadiusNegativeIsEmpty) {
  auto points = RandomPoints(10, 6);
  KdTree tree(points);
  EXPECT_TRUE(tree.WithinRadius({0, 0}, -1).empty());
}

TEST(KdTreeTest, DuplicatePointsAllReturned) {
  std::vector<IndexedPoint> points;
  for (uint32_t i = 0; i < 5; ++i) {
    points.push_back(IndexedPoint{{100, 100}, i});
  }
  KdTree tree(points);
  EXPECT_EQ(tree.WithinRadius({100, 100}, 1).size(), 5u);
}

// Property sweep: the tree agrees with brute force on nearest and k-NN for
// many random configurations.
class KdTreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KdTreePropertyTest, NearestMatchesBruteForce) {
  util::Rng rng(GetParam() * 977 + 13);
  size_t n = 1 + rng.UniformU64(400);
  auto points = RandomPoints(n, GetParam());
  KdTree tree(points);
  for (int q = 0; q < 25; ++q) {
    Point query{rng.Uniform(-2000, 12000), rng.Uniform(-2000, 12000)};
    Neighbor fast = tree.Nearest(query);
    Neighbor brute = BruteNearest(points, query);
    EXPECT_NEAR(fast.distance, brute.distance, 1e-9);
  }
}

TEST_P(KdTreePropertyTest, KNearestMatchesBruteForce) {
  util::Rng rng(GetParam() * 331 + 7);
  size_t n = 10 + rng.UniformU64(200);
  auto points = RandomPoints(n, GetParam() + 1000);
  KdTree tree(points);
  size_t k = 1 + rng.UniformU64(15);

  Point query{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
  auto fast = tree.KNearest(query, k);

  std::vector<double> brute;
  for (const auto& ip : points) brute.push_back(Distance(ip.point, query));
  std::sort(brute.begin(), brute.end());
  ASSERT_EQ(fast.size(), std::min(k, n));
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i].distance, brute[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KdTreePropertyTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace staq::geo
