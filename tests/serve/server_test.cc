#include "serve/server.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "testing/test_city.h"
#include "util/clock.h"

namespace staq::serve {
namespace {

AqRequest FastExactRequest(
    synth::PoiCategory category = synth::PoiCategory::kSchool) {
  AqRequest request;
  request.category = category;
  request.options.exact = true;
  request.options.gravity.sample_rate_per_hour = 4;
  request.options.gravity.keep_scale = 2.0;
  request.options.seed = 3;
  return request;
}

AqRequest FastSsrRequest() {
  AqRequest request = FastExactRequest();
  request.options.exact = false;
  request.options.beta = 0.2;
  request.options.model = ml::ModelKind::kOls;
  return request;
}

/// Payload equality between two answers — everything except the cost
/// accounting fields (spqs/elapsed differ between cached, incremental, and
/// from-scratch paths by design).
void ExpectSameAnswer(const core::AccessQueryResult& a,
                      const core::AccessQueryResult& b) {
  ASSERT_EQ(a.mac.size(), b.mac.size());
  for (size_t z = 0; z < a.mac.size(); ++z) {
    EXPECT_EQ(a.mac[z], b.mac[z]) << "zone " << z;
    EXPECT_EQ(a.acsd[z], b.acsd[z]) << "zone " << z;
  }
  EXPECT_EQ(a.classes, b.classes);
  EXPECT_EQ(a.mean_mac, b.mean_mac);
  EXPECT_EQ(a.mean_acsd, b.mean_acsd);
  EXPECT_EQ(a.fairness, b.fairness);
  EXPECT_EQ(a.population_fairness, b.population_fairness);
  EXPECT_EQ(a.vulnerable_fairness, b.vulnerable_fairness);
  EXPECT_EQ(a.gravity_trips, b.gravity_trips);
}

class AqServerTest : public ::testing::Test {
 protected:
  AqServerTest() {
    AqServer::Options options;
    options.num_threads = 4;
    server_ = std::make_unique<AqServer>(testing::TinyCity(),
                                         gtfs::WeekdayAmPeak(), options);
  }

  std::unique_ptr<AqServer> server_;
};

TEST_F(AqServerTest, ExactQueryMatchesUncachedGolden) {
  auto served = server_->Query(FastExactRequest());
  ASSERT_TRUE(served.ok()) << served.status();
  auto golden = server_->QueryUncached(FastExactRequest());
  ASSERT_TRUE(golden.ok());
  ExpectSameAnswer(served.value(), golden.value());
  EXPECT_EQ(served.value().spqs,
            served.value().gravity_trips);  // full build labels every trip
}

TEST_F(AqServerTest, SsrQueryMatchesUncachedGolden) {
  auto served = server_->Query(FastSsrRequest());
  ASSERT_TRUE(served.ok()) << served.status();
  auto golden = server_->QueryUncached(FastSsrRequest());
  ASSERT_TRUE(golden.ok());
  ExpectSameAnswer(served.value(), golden.value());
}

TEST_F(AqServerTest, RepeatQueriesHitTheResultCache) {
  ASSERT_TRUE(server_->Query(FastExactRequest()).ok());
  uint64_t hits_before = server_->stats().cache_hits;
  auto repeat = server_->Query(FastExactRequest());
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(server_->stats().cache_hits, hits_before + 1);
  auto golden = server_->QueryUncached(FastExactRequest());
  ASSERT_TRUE(golden.ok());
  ExpectSameAnswer(repeat.value(), golden.value());
}

TEST_F(AqServerTest, MutationInvalidatesByEpochNotByFlush) {
  auto before = server_->Query(FastExactRequest());
  ASSERT_TRUE(before.ok());

  // Corner placement keeps the perturbation local: only zones that sample
  // a trip to the new POI are relabeled.
  const geo::BBox& extent = server_->base_city().extent;
  auto report = server_->AddPoi(synth::PoiCategory::kSchool,
                                geo::Point{extent.min_x, extent.min_y});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().epoch, 1u);

  // Same request, new epoch: must miss the cache and see the new POI.
  auto after = server_->Query(FastExactRequest());
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after.value().gravity_trips, before.value().gravity_trips);

  // Incremental answer equals the uncached golden on the mutated scenario.
  auto golden = server_->QueryUncached(FastExactRequest());
  ASSERT_TRUE(golden.ok());
  ExpectSameAnswer(after.value(), golden.value());
  // ...at a fraction of the SPQ cost (only affected zones were relabeled).
  EXPECT_LT(report.value().spqs, golden.value().spqs);
}

TEST_F(AqServerTest, RemoveLastCategoryPoiYieldsNotFound) {
  std::vector<uint32_t> vax_ids;
  for (const synth::Poi& poi : server_->Snapshot()->pois()) {
    if (poi.category == synth::PoiCategory::kVaxCenter)
      vax_ids.push_back(poi.id);
  }
  ASSERT_FALSE(vax_ids.empty());
  for (uint32_t id : vax_ids) ASSERT_TRUE(server_->RemovePoi(id).ok());

  auto result = server_->Query(FastExactRequest(synth::PoiCategory::kVaxCenter));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
}

TEST_F(AqServerTest, ConcurrentClientsAllGetTheGoldenAnswer) {
  auto golden = server_->QueryUncached(FastExactRequest());
  ASSERT_TRUE(golden.ok());

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 4;
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  std::vector<core::AccessQueryResult> answers(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        auto result = server_->Query(FastExactRequest());
        if (result.ok()) {
          answers[c] = std::move(result).value();
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(ok_count.load(), kClients * kQueriesPerClient);
  for (int c = 0; c < kClients; ++c) {
    ExpectSameAnswer(answers[c], golden.value());
  }
  // The exact label state was built at most once per epoch.
  EXPECT_LE(server_->stats().exact_state_builds, 2u);
}

TEST_F(AqServerTest, ConcurrentQueriesAndMutationsStaySelfConsistent) {
  // Materialise the epoch-0 label state so mutations have patch work to do
  // while the clients hammer the query path.
  ASSERT_TRUE(server_->Query(FastExactRequest()).ok());

  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      for (int q = 0; q < 6; ++q) {
        auto result = server_->Query(FastExactRequest());
        // Every answer is a complete result for *some* epoch's scenario —
        // never a torn mix of two epochs.
        if (result.ok()) {
          EXPECT_EQ(result.value().mac.size(),
                    server_->base_city().zones.size());
          answered.fetch_add(1);
        }
      }
    });
  }
  std::vector<uint32_t> added;
  for (int m = 0; m < 4; ++m) {
    auto report = server_->AddPoi(synth::PoiCategory::kSchool,
                                  server_->base_city().Centre());
    ASSERT_TRUE(report.ok()) << report.status();
    added.push_back(report.value().poi_id);
  }
  for (uint32_t id : added) ASSERT_TRUE(server_->RemovePoi(id).ok());
  for (auto& client : clients) client.join();
  EXPECT_EQ(answered.load(), 18);
  EXPECT_EQ(server_->stats().mutations, 8u);

  // After the add/remove round-trip the scenario's answer equals epoch 0's
  // (history independence), even though the epoch advanced.
  EXPECT_EQ(server_->epoch(), 8u);
  auto final_result = server_->Query(FastExactRequest());
  auto golden = server_->QueryUncached(FastExactRequest());
  ASSERT_TRUE(final_result.ok() && golden.ok());
  ExpectSameAnswer(final_result.value(), golden.value());
}

TEST_F(AqServerTest, AdmissionRejectsWhenQueueIsFull) {
  AqServer::Options options;
  options.num_threads = 1;
  options.max_pending = 0;  // admit nothing
  AqServer tiny(testing::TinyCity(), gtfs::WeekdayAmPeak(), options);
  auto ticket = tiny.Submit(FastExactRequest());
  auto result = ticket.Get();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(tiny.stats().rejected, 1u);
}

TEST_F(AqServerTest, QueuedRequestCanBeCancelled) {
  AqServer::Options options;
  options.num_threads = 1;
  AqServer single(testing::TinyCity(), gtfs::WeekdayAmPeak(), options);
  // Occupy the only worker, then cancel a request stuck behind it.
  AqTicket busy = single.Submit(FastExactRequest());
  AqTicket queued = single.Submit(FastSsrRequest());
  if (queued.TryCancel()) {
    auto result = queued.Get();
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kCancelled);
    EXPECT_EQ(single.stats().cancelled, 1u);
  } else {
    // Lost the race: the worker already picked it up, so it must resolve
    // normally.
    EXPECT_TRUE(queued.Get().ok());
  }
  EXPECT_TRUE(busy.Get().ok());
}

TEST_F(AqServerTest, ExpiredDeadlineFailsWithoutRunning) {
  // Deadlines are read off the injected clock, so expiry is forced by
  // advancing virtual time — no sleeps, no real-time sensitivity. (The
  // fault-injection suite additionally pins the worker with a kBlock
  // failpoint for a fully schedule-independent variant.)
  util::VirtualClock clock;
  AqServer::Options options;
  options.num_threads = 1;
  options.clock = &clock;
  AqServer single(testing::TinyCity(), gtfs::WeekdayAmPeak(), options);
  // Three distinct keys: each is a full label build, so the queue stays
  // deep while the virtual clock jumps.
  AqTicket busy1 = single.Submit(FastExactRequest());
  AqTicket busy2 = single.Submit(FastExactRequest(synth::PoiCategory::kVaxCenter));
  AqRequest reseeded = FastExactRequest();
  reseeded.options.seed = 7;
  AqTicket busy3 = single.Submit(reseeded);

  AqRequest doomed = FastSsrRequest();
  doomed.deadline_s = 1000.0;  // only virtual time can expire this
  AqTicket ticket = single.Submit(doomed);
  clock.AdvanceSeconds(2000.0);

  auto result = ticket.Get();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(single.stats().deadline_exceeded, 1u);
  EXPECT_TRUE(busy1.Get().ok());
  EXPECT_TRUE(busy2.Get().ok());
  EXPECT_TRUE(busy3.Get().ok());
}

TEST_F(AqServerTest, TicketRecordsItsAdmissionEpoch) {
  AqTicket empty;
  EXPECT_EQ(empty.epoch(), AqTicket::kNoEpoch);

  AqTicket at_zero = server_->Submit(FastExactRequest());
  EXPECT_EQ(at_zero.epoch(), 0u);
  ASSERT_TRUE(at_zero.Get().ok());

  auto report = server_->AddPoi(synth::PoiCategory::kSchool,
                                server_->base_city().Centre());
  ASSERT_TRUE(report.ok());
  AqTicket at_one = server_->Submit(FastExactRequest());
  EXPECT_EQ(at_one.epoch(), 1u);
  ASSERT_TRUE(at_one.Get().ok());

  AqServer::Options options;
  options.num_threads = 1;
  options.max_pending = 0;
  AqServer full(testing::TinyCity(), gtfs::WeekdayAmPeak(), options);
  AqTicket rejected = full.Submit(FastExactRequest());
  EXPECT_EQ(rejected.epoch(), AqTicket::kNoEpoch);  // never resolved a snapshot
  EXPECT_FALSE(rejected.Get().ok());
}

TEST_F(AqServerTest, ResultCacheTtlAgesOnTheServerClock) {
  // The cache inherits the server's (virtual) clock, so cached answers age
  // out when virtual time passes the TTL — and only then.
  util::VirtualClock clock;
  AqServer::Options options;
  options.num_threads = 2;
  options.clock = &clock;
  options.cache.ttl_s = 60.0;
  AqServer server(testing::TinyCity(), gtfs::WeekdayAmPeak(), options);

  ASSERT_TRUE(server.Query(FastExactRequest()).ok());
  ASSERT_TRUE(server.Query(FastExactRequest()).ok());
  EXPECT_EQ(server.stats().cache_hits, 1u);
  EXPECT_EQ(server.stats().cache_expired, 0u);

  clock.AdvanceSeconds(120.0);
  auto refreshed = server.Query(FastExactRequest());  // aged out: recomputes
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(server.stats().cache_hits, 1u);
  EXPECT_EQ(server.stats().cache_expired, 1u);
  auto golden = server.QueryUncached(FastExactRequest());
  ASSERT_TRUE(golden.ok());
  ExpectSameAnswer(refreshed.value(), golden.value());
}

TEST_F(AqServerTest, DestructionWithOutstandingRequestsIsClean) {
  // ~AqServer tears down the pool first, which finishes already-queued
  // tasks before joining — those tasks lease worker contexts and bump the
  // stats counters, so every other member must still be alive (regression:
  // pool_ must be the last declared member).
  AqServer::Options options;
  options.num_threads = 2;
  auto server = std::make_unique<AqServer>(testing::TinyCity(),
                                           gtfs::WeekdayAmPeak(), options);
  std::vector<AqTicket> tickets;
  for (int i = 0; i < 8; ++i) {
    tickets.push_back(server->Submit(FastExactRequest()));
  }
  server.reset();  // destroys with requests still queued / in flight
  for (AqTicket& ticket : tickets) {
    EXPECT_TRUE(ticket.Get().ok());
  }
}

TEST_F(AqServerTest, GetGuardsEmptyAndConsumedTickets) {
  AqTicket empty;
  auto no_result = empty.Get();
  EXPECT_FALSE(no_result.ok());
  EXPECT_EQ(no_result.status().code(), util::StatusCode::kFailedPrecondition);

  AqTicket ticket = server_->Submit(FastExactRequest());
  EXPECT_TRUE(ticket.Get().ok());
  auto again = ticket.Get();
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(AqServerTest, StatsAccumulateAcrossTheLifetime) {
  ASSERT_TRUE(server_->Query(FastExactRequest()).ok());
  ASSERT_TRUE(server_->Query(FastExactRequest()).ok());
  auto stats = server_->stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_GE(stats.cache_misses, 1u);
  EXPECT_EQ(stats.exact_state_builds, 1u);
  EXPECT_EQ(stats.rejected, 0u);
}

}  // namespace
}  // namespace staq::serve
