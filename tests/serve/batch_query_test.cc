// Batch (vector) query tier of AqServer: SubmitBatch/QueryBatch share one
// labeling pass per exact (category, seed) group and must stay bit-identical
// to the single-request path, fill the result cache for every derived
// single-query key, and degrade into kUnavailable shedding under overload.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/server.h"
#include "testing/test_city.h"

namespace staq::serve {
namespace {

AqRequest ExactTemplate() {
  AqRequest request;
  request.category = synth::PoiCategory::kSchool;
  request.options.exact = true;
  request.options.gravity.sample_rate_per_hour = 4;
  request.options.gravity.keep_scale = 2.0;
  request.options.seed = 3;
  return request;
}

router::GacWeights WaitHeavyGac() {
  router::GacWeights gac;
  gac.lambda_wt = 3.5;
  gac.transfer_penalty_s = 300.0;
  return gac;
}

/// The three-member cost sweep used throughout: journey time, default GAC,
/// and a wait-heavy GAC variant.
std::vector<core::CostMember> SweepMembers() {
  return {
      core::CostMember{core::CostKind::kJourneyTime, router::GacWeights{}},
      core::CostMember{core::CostKind::kGeneralizedCost, router::GacWeights{}},
      core::CostMember{core::CostKind::kGeneralizedCost, WaitHeavyGac()},
  };
}

/// Full bitwise payload equality, including the accounting the batch path
/// promises to reproduce: each member reports the SPQs of the full pass it
/// would have paid alone.
void ExpectBitIdentical(const core::AccessQueryResult& a,
                        const core::AccessQueryResult& b) {
  ASSERT_EQ(a.mac.size(), b.mac.size());
  for (size_t z = 0; z < a.mac.size(); ++z) {
    EXPECT_EQ(a.mac[z], b.mac[z]) << "zone " << z;
    EXPECT_EQ(a.acsd[z], b.acsd[z]) << "zone " << z;
  }
  EXPECT_EQ(a.classes, b.classes);
  EXPECT_EQ(a.mean_mac, b.mean_mac);
  EXPECT_EQ(a.mean_acsd, b.mean_acsd);
  EXPECT_EQ(a.fairness, b.fairness);
  EXPECT_EQ(a.population_fairness, b.population_fairness);
  EXPECT_EQ(a.vulnerable_fairness, b.vulnerable_fairness);
  EXPECT_EQ(a.gravity_trips, b.gravity_trips);
  EXPECT_EQ(a.spqs, b.spqs);
}

class BatchQueryTest : public ::testing::Test {
 protected:
  BatchQueryTest() {
    AqServer::Options options;
    options.num_threads = 4;
    server_ = std::make_unique<AqServer>(testing::TinyCity(),
                                         gtfs::WeekdayAmPeak(), options);
  }

  std::unique_ptr<AqServer> server_;
};

TEST_F(BatchQueryTest, ExactBatchBitIdenticalToSingleQueriesInBatchOrder) {
  AqBatchRequest batch;
  batch.request = ExactTemplate();
  batch.categories = {synth::PoiCategory::kSchool,
                      synth::PoiCategory::kHospital};
  batch.seeds = {3, 9};
  batch.cost_members = SweepMembers();

  std::vector<AqRequest> derived = ExpandBatch(batch);
  ASSERT_EQ(derived.size(), 2u * 2u * 3u);

  auto results = server_->QueryBatch(batch);
  ASSERT_EQ(results.size(), derived.size());

  for (size_t i = 0; i < derived.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "member " << i << ": "
                                 << results[i].status();
    auto golden = server_->QueryUncached(derived[i]);
    ASSERT_TRUE(golden.ok()) << golden.status();
    ExpectBitIdentical(results[i].value(), golden.value());
  }
}

TEST_F(BatchQueryTest, EmptyAxesCollapseToTheTemplate) {
  AqBatchRequest batch;
  batch.request = ExactTemplate();

  auto results = server_->QueryBatch(batch);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok()) << results[0].status();
  auto golden = server_->QueryUncached(batch.request);
  ASSERT_TRUE(golden.ok());
  ExpectBitIdentical(results[0].value(), golden.value());
}

TEST_F(BatchQueryTest, BatchFillsTheResultCacheForEveryDerivedKey) {
  AqBatchRequest batch;
  batch.request = ExactTemplate();
  batch.seeds = {3, 9};
  batch.cost_members = SweepMembers();

  std::vector<AqRequest> derived = ExpandBatch(batch);
  auto results = server_->QueryBatch(batch);
  ASSERT_EQ(results.size(), derived.size());

  // Every subsequent single submission of a derived member must be served
  // from the result cache with the batch-computed payload.
  for (size_t i = 0; i < derived.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    const uint64_t hits_before = server_->stats().cache_hits;
    auto single = server_->Query(derived[i]);
    ASSERT_TRUE(single.ok()) << single.status();
    EXPECT_EQ(server_->stats().cache_hits, hits_before + 1)
        << "member " << i << " was not cached by the batch";
    ExpectBitIdentical(single.value(), results[i].value());
  }
}

TEST_F(BatchQueryTest, SecondBatchIsServedEntirelyFromCache) {
  AqBatchRequest batch;
  batch.request = ExactTemplate();
  batch.cost_members = SweepMembers();

  auto first = server_->QueryBatch(batch);
  const uint64_t builds_after_first = server_->stats().exact_state_builds;
  const uint64_t hits_before = server_->stats().cache_hits;

  auto second = server_->QueryBatch(batch);
  ASSERT_EQ(second.size(), first.size());
  EXPECT_EQ(server_->stats().exact_state_builds, builds_after_first)
      << "repeat batch rebuilt a labeling pass";
  EXPECT_EQ(server_->stats().cache_hits, hits_before + second.size());
  for (size_t i = 0; i < second.size(); ++i) {
    ASSERT_TRUE(second[i].ok());
    ExpectBitIdentical(second[i].value(), first[i].value());
  }
}

TEST_F(BatchQueryTest, SsrBatchRunsMembersIndividually) {
  AqBatchRequest batch;
  batch.request = ExactTemplate();
  batch.request.options.exact = false;
  batch.request.options.beta = 0.2;
  batch.request.options.model = ml::ModelKind::kOls;
  batch.seeds = {3, 9};

  std::vector<AqRequest> derived = ExpandBatch(batch);
  auto results = server_->QueryBatch(batch);
  ASSERT_EQ(results.size(), derived.size());
  for (size_t i = 0; i < derived.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status();
    auto golden = server_->QueryUncached(derived[i]);
    ASSERT_TRUE(golden.ok());
    ASSERT_EQ(results[i].value().mac.size(), golden.value().mac.size());
    for (size_t z = 0; z < golden.value().mac.size(); ++z) {
      EXPECT_EQ(results[i].value().mac[z], golden.value().mac[z]);
    }
  }
}

TEST_F(BatchQueryTest, ExactBatchTicketsAreNotCancellable) {
  AqBatchRequest batch;
  batch.request = ExactTemplate();
  batch.cost_members = SweepMembers();

  std::vector<AqTicket> tickets = server_->SubmitBatch(batch);
  ASSERT_EQ(tickets.size(), 3u);
  for (AqTicket& ticket : tickets) {
    EXPECT_TRUE(ticket.valid());
    EXPECT_FALSE(ticket.TryCancel())
        << "batch group members have no individual queue slot to withdraw";
  }
  for (AqTicket& ticket : tickets) {
    auto result = ticket.Get();
    EXPECT_TRUE(result.ok()) << result.status();
  }
  EXPECT_EQ(server_->stats().cancelled, 0u);
}

TEST_F(BatchQueryTest, BatchRecordsItsAdmissionEpoch) {
  AqBatchRequest batch;
  batch.request = ExactTemplate();
  batch.cost_members = SweepMembers();
  std::vector<AqTicket> tickets = server_->SubmitBatch(batch);
  for (AqTicket& ticket : tickets) {
    EXPECT_EQ(ticket.epoch(), server_->epoch());
    ASSERT_TRUE(ticket.Get().ok());
  }
}

TEST_F(BatchQueryTest, EmptyCategoryFailsEveryMemberCleanly) {
  // Remove every vax centre, then batch-query that category: each member
  // must resolve kNotFound instead of hanging or crashing the group task.
  std::vector<uint32_t> vax_ids;
  for (const synth::Poi& poi : server_->Snapshot()->pois()) {
    if (poi.category == synth::PoiCategory::kVaxCenter)
      vax_ids.push_back(poi.id);
  }
  ASSERT_FALSE(vax_ids.empty());
  for (uint32_t id : vax_ids) ASSERT_TRUE(server_->RemovePoi(id).ok());

  AqBatchRequest batch;
  batch.request = ExactTemplate();
  batch.request.category = synth::PoiCategory::kVaxCenter;
  batch.cost_members = SweepMembers();
  auto results = server_->QueryBatch(batch);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& result : results) {
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
  }
}

TEST(BatchSheddingTest, OverloadShedsWithUnavailable) {
  AqServer::Options options;
  options.num_threads = 1;
  options.max_pending = 4096;            // queue-full rejection out of the way
  options.max_queue_delay_s = 1e-9;      // any non-empty queue over-budget
  AqServer server(testing::TinyCity(), gtfs::WeekdayAmPeak(), options);

  AqRequest request = ExactTemplate();
  // Seed the service-time estimator: shedding is disabled until the first
  // task completes (there is nothing to estimate from).
  ASSERT_TRUE(server.Query(request).ok());

  // Burst of distinct uncached requests against one worker: the queue is
  // non-empty for nearly every submission, so the delay estimate exceeds
  // the (absurdly small) budget and the server sheds.
  constexpr int kBurst = 32;
  std::vector<AqTicket> tickets;
  tickets.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    AqRequest distinct = request;
    distinct.options.seed = 100 + static_cast<uint64_t>(i);
    tickets.push_back(server.Submit(distinct));
  }
  int ok = 0, unavailable = 0;
  for (AqTicket& ticket : tickets) {
    auto result = ticket.Get();
    if (result.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(result.status().code(), util::StatusCode::kUnavailable)
          << result.status();
      ++unavailable;
    }
  }
  EXPECT_EQ(ok + unavailable, kBurst);
  EXPECT_GE(unavailable, 1) << "overload burst was never shed";
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed, static_cast<uint64_t>(unavailable));
  EXPECT_EQ(stats.rejected, 0u);  // shedding is accounted separately

  // A shed batch resolves every ticket kUnavailable as one unit while the
  // queue is still backed up. Re-arm the backlog first: the drain above
  // emptied the queue.
  AqTicket blocker = server.Submit([&] {
    AqRequest r = request;
    r.options.seed = 999;
    return r;
  }());
  AqTicket queued = server.Submit([&] {
    AqRequest r = request;
    r.options.seed = 998;
    return r;
  }());
  AqBatchRequest batch;
  batch.request = request;
  batch.cost_members = SweepMembers();
  std::vector<AqTicket> batch_tickets = server.SubmitBatch(batch);
  uint64_t shed_before = stats.shed;
  int batch_shed = 0;
  for (AqTicket& ticket : batch_tickets) {
    auto result = ticket.Get();
    if (!result.ok() &&
        result.status().code() == util::StatusCode::kUnavailable) {
      ++batch_shed;
    }
  }
  // Either the whole batch was shed (queue still backed up at submission)
  // or none of it was (the worker had already drained both requests).
  EXPECT_TRUE(batch_shed == 0 ||
              batch_shed == static_cast<int>(batch_tickets.size()));
  if (batch_shed > 0) {
    EXPECT_GE(server.stats().shed, shed_before + batch_tickets.size());
  }
  (void)blocker.Get();
  (void)queued.Get();
}

TEST(BatchSheddingTest, DisabledBudgetNeverSheds) {
  AqServer::Options options;
  options.num_threads = 1;
  options.max_queue_delay_s = 0.0;  // default: shedding off
  AqServer server(testing::TinyCity(), gtfs::WeekdayAmPeak(), options);

  AqRequest request = ExactTemplate();
  ASSERT_TRUE(server.Query(request).ok());
  std::vector<AqTicket> tickets;
  for (int i = 0; i < 16; ++i) {
    AqRequest distinct = request;
    distinct.options.seed = 200 + static_cast<uint64_t>(i);
    tickets.push_back(server.Submit(distinct));
  }
  for (AqTicket& ticket : tickets) EXPECT_TRUE(ticket.Get().ok());
  EXPECT_EQ(server.stats().shed, 0u);
}

}  // namespace
}  // namespace staq::serve
