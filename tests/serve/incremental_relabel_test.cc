// Golden tests of the tentpole guarantee: after any POI mutation, the
// incrementally patched ExactLabelState is bit-identical to a from-scratch
// build over the edited POI set — across cities, seeds, and cost kinds.
#include <gtest/gtest.h>

#include "serve/scenario.h"
#include "testing/label_state.h"
#include "testing/test_city.h"

namespace staq::serve {
namespace {

using testing::ExpectStatesIdentical;

LabelKey FastKey(uint64_t seed,
                 core::CostKind cost = core::CostKind::kJourneyTime) {
  LabelKey key;
  key.category = synth::PoiCategory::kSchool;
  key.cost = cost;
  key.gravity.sample_rate_per_hour = 4;
  key.gravity.keep_scale = 2.0;
  key.seed = seed;
  return key;
}

/// Primes a label state, applies add + remove mutations, and asserts every
/// patched state equals its from-scratch golden rebuild.
void RunGoldenScenario(synth::City city, const LabelKey& key) {
  ScenarioStore store(std::move(city), gtfs::WeekdayAmPeak());
  // The golden rebuild must run the same routing engine the store's
  // incremental patches use: journey times agree across engines bit for
  // bit, but equal-cost GAC journeys may decompose into different legs.
  router::Router router(&store.base_city().feed, store.router_options());
  core::LabelingEngine engine(&store.base_city(), &router);

  // Materialise the state so the mutation has something to patch.
  auto base_state = store.Acquire()->GetOrBuildLabelState(key, &engine);
  const uint64_t full_build_spqs = base_state->build_spqs;

  // --- add a POI near the extent corner (local perturbation) -------------
  const geo::BBox& extent = store.base_city().extent;
  geo::Point corner{extent.min_x, extent.min_y};
  auto add_report = store.AddPoi(key.category, corner);
  EXPECT_EQ(add_report.states_patched, 1u);

  auto after_add = store.Acquire();
  bool built = false;
  auto patched = after_add->GetOrBuildLabelState(key, &engine, &built);
  EXPECT_FALSE(built) << "mutation must carry the state over, not drop it";
  auto fresh = after_add->BuildLabelState(key, &engine);
  ExpectStatesIdentical(*patched, *fresh);

  // The patch only pays for the zones the new POI actually touched.
  EXPECT_EQ(add_report.zones_relabeled, patched->relabeled_zones);
  EXPECT_LT(add_report.zones_relabeled, add_report.zones_total);
  EXPECT_LT(add_report.spqs, full_build_spqs);

  // --- remove an original POI (non-tail column) --------------------------
  uint32_t victim = base_state->pois.front().id;
  auto remove_report = store.RemovePoi(victim);
  ASSERT_TRUE(remove_report.ok());
  EXPECT_EQ(remove_report.value().states_patched, 1u);

  auto after_remove = store.Acquire();
  auto patched2 = after_remove->GetOrBuildLabelState(key, &engine, &built);
  EXPECT_FALSE(built);
  auto fresh2 = after_remove->BuildLabelState(key, &engine);
  ExpectStatesIdentical(*patched2, *fresh2);

  // --- history independence: remove the added POI again ------------------
  // After add(corner) + remove(front) + remove(corner), the state must be
  // bit-identical to a fresh build over the surviving POI set — the chain
  // of patches leaves no residue.
  ASSERT_TRUE(store.RemovePoi(add_report.poi_id).ok());
  auto final_scenario = store.Acquire();
  auto chained = final_scenario->GetOrBuildLabelState(key, &engine, &built);
  EXPECT_FALSE(built);
  auto golden = final_scenario->BuildLabelState(key, &engine);
  ExpectStatesIdentical(*chained, *golden);
}

TEST(IncrementalRelabelGoldenTest, CovelyJourneyTimeAcrossSeeds) {
  for (uint64_t seed : {3u, 11u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunGoldenScenario(testing::TinyCity(), FastKey(seed));
  }
}

TEST(IncrementalRelabelGoldenTest, BrindaleJourneyTime) {
  synth::CitySpec spec = synth::CitySpec::Brindale(0.05, 7);
  auto city = synth::BuildCity(spec);
  ASSERT_TRUE(city.ok());
  RunGoldenScenario(std::move(city).value(), FastKey(5));
}

TEST(IncrementalRelabelGoldenTest, GeneralizedCostPatchesExactly) {
  LabelKey key = FastKey(3, core::CostKind::kGeneralizedCost);
  key.gac.lambda_wt = 2.0;  // non-default weights must flow into patches
  RunGoldenScenario(testing::TinyCity(), key);
}

TEST(IncrementalRelabelGoldenTest,
     StatesOfOtherCategoriesAreSharedNotRebuilt) {
  ScenarioStore store(testing::TinyCity(), gtfs::WeekdayAmPeak());
  router::Router router(&store.base_city().feed, store.router_options());
  core::LabelingEngine engine(&store.base_city(), &router);

  LabelKey school = FastKey(3);
  LabelKey hospital = FastKey(3);
  hospital.category = synth::PoiCategory::kHospital;
  auto scenario = store.Acquire();
  auto school_state = scenario->GetOrBuildLabelState(school, &engine);
  auto hospital_state = scenario->GetOrBuildLabelState(hospital, &engine);

  auto report = store.AddPoi(synth::PoiCategory::kHospital,
                             store.base_city().Centre());
  EXPECT_EQ(report.states_patched, 1u);
  EXPECT_EQ(report.states_shared, 1u);

  auto next = store.Acquire();
  bool built = false;
  auto school_after = next->GetOrBuildLabelState(school, &engine, &built);
  EXPECT_FALSE(built);
  // The school state is byte-for-byte the same object — zero copy, zero
  // recompute for categories the mutation cannot affect.
  EXPECT_EQ(school_after.get(), school_state.get());
  auto hospital_after = next->GetOrBuildLabelState(hospital, &engine, &built);
  EXPECT_FALSE(built);
  EXPECT_NE(hospital_after.get(), hospital_state.get());
}

}  // namespace
}  // namespace staq::serve
