// Schedule-shaking stress suite for staq::serve.
//
// Each test instance runs one seed of a mixed query/mutate/cancel/destroy
// workload against an AqServer whose worker pool is perturbed (seeded task
// reordering + jitter, see ThreadPool::PerturbOptions), then model-checks
// the invariant the serve design promises: every OK response is
// bit-identical to the sequential answer on the scenario snapshot it was
// admitted under (AqTicket::epoch). Mutations are serialised on the main
// thread, which retains one snapshot per epoch as the oracle input.
//
// ctest materialises the whole ::testing::Range as independent tests, so
// `ctest -R ServeStress` runs 50 seeds — under STAQ_TSAN via the
// `concurrency` label — and a failing seed names itself in the test id.
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/labeling.h"
#include "router/router.h"
#include "serve/server.h"
#include "testing/test_city.h"

namespace staq::serve {
namespace {

AqRequest ExactRequest(synth::PoiCategory category) {
  AqRequest request;
  request.category = category;
  request.options.exact = true;
  request.options.gravity.sample_rate_per_hour = 4;
  request.options.gravity.keep_scale = 2.0;
  request.options.seed = 3;
  return request;
}

AqRequest SsrRequest() {
  AqRequest request = ExactRequest(synth::PoiCategory::kSchool);
  request.options.exact = false;
  request.options.beta = 0.2;
  request.options.model = ml::ModelKind::kOls;
  return request;
}

/// Cost-member sweep for the batch op: one shared labeling pass derives
/// all three on a worker while mutations race it.
AqBatchRequest BatchSweep(synth::PoiCategory category) {
  router::GacWeights wait_heavy;
  wait_heavy.lambda_wt = 3.5;
  wait_heavy.transfer_penalty_s = 300.0;
  AqBatchRequest batch;
  batch.request = ExactRequest(category);
  batch.cost_members = {
      core::CostMember{core::CostKind::kJourneyTime, router::GacWeights{}},
      core::CostMember{core::CostKind::kGeneralizedCost, router::GacWeights{}},
      core::CostMember{core::CostKind::kGeneralizedCost, wait_heavy},
  };
  return batch;
}

void ExpectSameAnswer(const core::AccessQueryResult& a,
                      const core::AccessQueryResult& b) {
  ASSERT_EQ(a.mac.size(), b.mac.size());
  for (size_t z = 0; z < a.mac.size(); ++z) {
    EXPECT_EQ(a.mac[z], b.mac[z]) << "zone " << z;
    EXPECT_EQ(a.acsd[z], b.acsd[z]) << "zone " << z;
  }
  EXPECT_EQ(a.mean_mac, b.mean_mac);
  EXPECT_EQ(a.mean_acsd, b.mean_acsd);
  EXPECT_EQ(a.gravity_trips, b.gravity_trips);
}

/// One submitted request plus everything the oracle needs afterwards.
struct Issued {
  AqTicket ticket;
  AqRequest request;
  bool cancelled = false;  // TryCancel succeeded: must resolve kCancelled
};

class ServeStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServeStressTest, MixedWorkloadIsEpochConsistent) {
  const uint64_t seed = GetParam();

  AqServer::Options options;
  options.num_threads = 3;
  options.max_pending = 128;
  // A deliberately tiny cache keeps the eviction path hot under load.
  options.cache.shards = 2;
  options.cache.entries_per_shard = 2;
  options.perturb = util::ThreadPool::PerturbOptions{
      .seed = seed, .max_delay_us = 200, .reorder = true};
  auto server = std::make_unique<AqServer>(testing::TinyCity(),
                                           gtfs::WeekdayAmPeak(), options);

  const std::vector<AqRequest> mix = {
      ExactRequest(synth::PoiCategory::kSchool),
      ExactRequest(synth::PoiCategory::kVaxCenter),
      SsrRequest(),
  };

  // snapshots[e] is the scenario installed as epoch e. Only the main thread
  // mutates, so retaining the snapshot right after each mutation report
  // gives the oracle exactly the epoch sequence the server published.
  std::vector<std::shared_ptr<const Scenario>> snapshots;
  snapshots.push_back(server->Snapshot());
  ASSERT_EQ(snapshots[0]->epoch(), 0u);

  constexpr int kClients = 2;
  constexpr int kOpsPerClient = 8;
  std::vector<std::vector<Issued>> issued(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Seeded per client: the workload (request choice, cancel choice) is
      // replayable for a failing seed even though the schedule is not.
      std::mt19937_64 rng(seed * 1000003 + c);
      for (int op = 0; op < kOpsPerClient; ++op) {
        if (rng() % 8 == 0) {
          // Batch op: the derived tickets join the same per-epoch oracle
          // as single submissions — a batch admitted under epoch e must be
          // bit-identical to sequential answers on snapshot e, whatever
          // mutations land while its group task runs.
          AqBatchRequest batch =
              BatchSweep(rng() % 2 == 0 ? synth::PoiCategory::kSchool
                                        : synth::PoiCategory::kVaxCenter);
          std::vector<AqRequest> derived = ExpandBatch(batch);
          std::vector<AqTicket> tickets = server->SubmitBatch(batch);
          for (size_t i = 0; i < tickets.size(); ++i) {
            Issued entry;
            entry.request = derived[i];
            entry.ticket = std::move(tickets[i]);
            issued[c].push_back(std::move(entry));
          }
          continue;
        }
        Issued entry;
        entry.request = mix[rng() % mix.size()];
        entry.ticket = server->Submit(entry.request);
        if (rng() % 4 == 0) {
          entry.cancelled = entry.ticket.TryCancel();
        }
        issued[c].push_back(std::move(entry));
      }
    });
  }

  // Mutations race the clients: add schools, remove some of them again.
  std::mt19937_64 mutate_rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<uint32_t> added;
  for (int m = 0; m < 3; ++m) {
    if (!added.empty() && mutate_rng() % 2 == 0) {
      uint32_t id = added.back();
      added.pop_back();
      auto report = server->RemovePoi(id);
      ASSERT_TRUE(report.ok()) << report.status();
    } else {
      const geo::BBox& extent = server->base_city().extent;
      double fx = static_cast<double>(mutate_rng() % 1000) / 1000.0;
      double fy = static_cast<double>(mutate_rng() % 1000) / 1000.0;
      geo::Point position{extent.min_x + fx * (extent.max_x - extent.min_x),
                          extent.min_y + fy * (extent.max_y - extent.min_y)};
      auto report = server->AddPoi(synth::PoiCategory::kSchool, position);
      ASSERT_TRUE(report.ok()) << report.status();
      added.push_back(report.value().poi_id);
    }
    snapshots.push_back(server->Snapshot());
    ASSERT_EQ(snapshots.back()->epoch(), snapshots.size() - 1);
  }
  for (auto& client : clients) client.join();

  // Oracle pass: every response must match the sequential answer on the
  // snapshot its ticket was admitted under. Goldens are memoised per
  // (epoch, canonical key) — the canonicaliser says which requests must be
  // answer-identical, so it is also the right oracle key.
  std::map<std::string, core::AccessQueryResult> goldens;
  size_t total_issued = 0;
  int answered = 0, cancelled = 0;
  for (auto& client_issued : issued) {
    total_issued += client_issued.size();
    for (Issued& entry : client_issued) {
      auto result = entry.ticket.Get();  // must always resolve
      if (entry.cancelled) {
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.status().code(), util::StatusCode::kCancelled);
        ++cancelled;
        continue;
      }
      ASSERT_TRUE(result.ok()) << result.status();
      const uint64_t epoch = entry.ticket.epoch();
      ASSERT_LT(epoch, snapshots.size());
      std::string oracle_key =
          std::to_string(epoch) + "/" + CanonicalRequestKey(entry.request);
      auto it = goldens.find(oracle_key);
      if (it == goldens.end()) {
        auto golden = server->QueryUncachedOn(*snapshots[epoch], entry.request);
        ASSERT_TRUE(golden.ok()) << golden.status();
        it = goldens.emplace(oracle_key, std::move(golden).value()).first;
      }
      ExpectSameAnswer(result.value(), it->second);
      ++answered;
    }
  }
  EXPECT_EQ(static_cast<size_t>(answered + cancelled), total_issued);

  // Destroy phase: tear the server down with requests still outstanding.
  // ~AqServer drains the queue, so every ticket must still resolve cleanly
  // to a complete, well-formed answer — never a hang or a torn result.
  const size_t zones = server->base_city().zones.size();
  std::vector<AqTicket> outstanding;
  for (int i = 0; i < 4; ++i) {
    outstanding.push_back(server->Submit(mix[i % mix.size()]));
  }
  server.reset();
  for (AqTicket& ticket : outstanding) {
    auto result = ticket.Get();
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result.value().mac.size(), zones);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServeStressTest,
                         ::testing::Range<uint64_t>(0, 50));

// Save-under-load: exporting a snapshot of a live epoch races the same
// query/mutation workload, and the file must capture that epoch exactly —
// a server warm-started from it answers bit-identically to the sequential
// oracle on the retained snapshot. Scenarios are immutable and the POI id
// cursor is read atomically, so the export never blocks and never tears.
class SaveUnderLoadTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SaveUnderLoadTest, LiveEpochSnapshotMatchesSequentialOracle) {
  const uint64_t seed = GetParam();
  const std::string path = ::testing::TempDir() + "staq_save_under_load_" +
                           std::to_string(seed) + ".staq";

  AqServer::Options options;
  options.num_threads = 3;
  options.max_pending = 128;
  options.cache.shards = 2;
  options.cache.entries_per_shard = 2;
  options.perturb = util::ThreadPool::PerturbOptions{
      .seed = seed, .max_delay_us = 200, .reorder = true};
  AqServer server(testing::TinyCity(), gtfs::WeekdayAmPeak(), options);

  const std::vector<AqRequest> mix = {
      ExactRequest(synth::PoiCategory::kSchool),
      ExactRequest(synth::PoiCategory::kVaxCenter),
      SsrRequest(),
  };

  // Client threads keep the workers busy for the whole export window.
  std::atomic<bool> stop{false};
  constexpr int kClients = 2;
  std::vector<std::vector<AqTicket>> tickets(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(seed * 7919 + c);
      while (!stop.load(std::memory_order_relaxed)) {
        tickets[c].push_back(server.Submit(mix[rng() % mix.size()]));
        if (tickets[c].size() >= 24) break;  // bounded work per seed
      }
    });
  }

  // Mutations race the clients; each installed epoch's snapshot is
  // retained, and each is exported while the workload is still running.
  std::vector<std::shared_ptr<const Scenario>> snapshots;
  snapshots.push_back(server.Snapshot());
  std::mt19937_64 mutate_rng(seed ^ 0xD1B54A32D192ED03ull);
  for (int m = 0; m < 2; ++m) {
    const geo::BBox& extent = server.base_city().extent;
    double fx = static_cast<double>(mutate_rng() % 1000) / 1000.0;
    double fy = static_cast<double>(mutate_rng() % 1000) / 1000.0;
    auto report = server.AddPoi(
        synth::PoiCategory::kSchool,
        geo::Point{extent.min_x + fx * (extent.max_x - extent.min_x),
                   extent.min_y + fy * (extent.max_y - extent.min_y)});
    ASSERT_TRUE(report.ok()) << report.status();
    snapshots.push_back(server.Snapshot());
  }

  // Export one retained (usually no longer current) epoch mid-flight.
  const size_t exported = seed % snapshots.size();
  auto save = server.ExportSnapshot(*snapshots[exported], path);
  ASSERT_TRUE(save.ok()) << save.ToString();

  stop.store(true, std::memory_order_relaxed);
  for (auto& client : clients) client.join();
  for (auto& per_client : tickets) {
    for (AqTicket& ticket : per_client) (void)ticket.Get();
  }

  // Model check: a server warm-started from the mid-flight file answers
  // exactly like the sequential oracle on the epoch that was exported.
  AqServer::Options warm_options;
  warm_options.num_threads = 2;
  warm_options.warm_start_path = path;
  AqServer warm(testing::TinyCity(), gtfs::WeekdayAmPeak(), warm_options);
  ASSERT_TRUE(warm.warm_started());
  EXPECT_EQ(warm.base_city().pois.size(),
            server.base_city().pois.size());
  for (const AqRequest& request : mix) {
    auto oracle = server.QueryUncachedOn(*snapshots[exported], request);
    auto answer = warm.QueryUncached(request);
    ASSERT_TRUE(oracle.ok()) << oracle.status();
    ASSERT_TRUE(answer.ok()) << answer.status();
    ExpectSameAnswer(answer.value(), oracle.value());
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaveUnderLoadTest,
                         ::testing::Range<uint64_t>(0, 50));

void ExpectSameLabels(const std::vector<core::ZoneLabel>& served,
                      const std::vector<core::ZoneLabel>& oracle,
                      const char* what) {
  ASSERT_EQ(served.size(), oracle.size()) << what;
  for (size_t z = 0; z < served.size(); ++z) {
    EXPECT_EQ(served[z].mac, oracle[z].mac) << what << " zone " << z;
    EXPECT_EQ(served[z].acsd, oracle[z].acsd) << what << " zone " << z;
    EXPECT_EQ(served[z].num_trips, oracle[z].num_trips) << what << " zone "
                                                        << z;
    EXPECT_EQ(served[z].num_infeasible, oracle[z].num_infeasible)
        << what << " zone " << z;
    EXPECT_EQ(served[z].num_walk_only, oracle[z].num_walk_only)
        << what << " zone " << z;
  }
}

// Chained mutations over the shared connection array. The serve default is
// the CSA engine scanning ONE ConnectionArray built at store construction
// and shared by every worker router and every scenario epoch (mutations
// edit POIs, never the feed). Each epoch's served label states — cold
// builds and incremental patches alike, raced by queries under schedule
// shaking — must be bit-identical to two sequential per-epoch oracles that
// share nothing with the server: a CSA engine over a FRESH connection
// array built for that check alone, and the label-correcting router. This
// is the test that would catch the shared array going stale, torn, or
// diverging from the oracle engine across a mutation chain.
class SharedArrayMutationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SharedArrayMutationTest, EpochStatesMatchFreshEngineOracles) {
  const uint64_t seed = GetParam();

  AqServer::Options options;
  options.num_threads = 3;
  options.max_pending = 128;
  options.cache.shards = 2;
  options.cache.entries_per_shard = 2;
  options.perturb = util::ThreadPool::PerturbOptions{
      .seed = seed, .max_delay_us = 200, .reorder = true};
  AqServer server(testing::TinyCity(), gtfs::WeekdayAmPeak(), options);
  ASSERT_NE(server.router_options().connections, nullptr)
      << "serve default should share one connection array";

  const std::vector<AqRequest> mix = {
      ExactRequest(synth::PoiCategory::kSchool),
      ExactRequest(synth::PoiCategory::kVaxCenter),
  };
  // Materialise both exact states on epoch 0 so every mutation has states
  // to patch incrementally (the shared-array relabel path under test).
  for (const AqRequest& request : mix) {
    auto cold = server.Query(request);
    ASSERT_TRUE(cold.ok()) << cold.status();
  }

  // Queries race the mutation chain so patches land while worker routers
  // are scanning the same shared array.
  constexpr int kClients = 2;
  std::vector<std::vector<AqTicket>> tickets(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(seed * 6700417 + c);
      for (int op = 0; op < 6; ++op) {
        tickets[c].push_back(server.Submit(mix[rng() % mix.size()]));
      }
    });
  }

  std::vector<std::shared_ptr<const Scenario>> snapshots;
  snapshots.push_back(server.Snapshot());
  std::mt19937_64 mutate_rng(seed ^ 0xA24BAED4963EE407ull);
  std::vector<uint32_t> added;
  for (int m = 0; m < 4; ++m) {
    if (!added.empty() && mutate_rng() % 2 == 0) {
      uint32_t id = added.back();
      added.pop_back();
      auto report = server.RemovePoi(id);
      ASSERT_TRUE(report.ok()) << report.status();
    } else {
      const geo::BBox& extent = server.base_city().extent;
      double fx = static_cast<double>(mutate_rng() % 1000) / 1000.0;
      double fy = static_cast<double>(mutate_rng() % 1000) / 1000.0;
      auto report = server.AddPoi(
          synth::PoiCategory::kSchool,
          geo::Point{extent.min_x + fx * (extent.max_x - extent.min_x),
                     extent.min_y + fy * (extent.max_y - extent.min_y)});
      ASSERT_TRUE(report.ok()) << report.status();
      added.push_back(report.value().poi_id);
    }
    snapshots.push_back(server.Snapshot());
  }
  for (auto& client : clients) client.join();
  for (auto& per_client : tickets) {
    for (AqTicket& ticket : per_client) {
      auto result = ticket.Get();
      ASSERT_TRUE(result.ok()) << result.status();
    }
  }

  // Sequential oracle pass: every label state any epoch holds materialised
  // (epoch 0's cold builds, later epochs' incremental patches) is rebuilt
  // from scratch by engines owning nothing of the server's.
  for (const auto& snapshot : snapshots) {
    const synth::City& city = snapshot->base_city();
    const auto states = snapshot->MaterializedStates();
    ASSERT_FALSE(states.empty())
        << "epoch 0 materialised both mix states; patches must carry them";
    for (const auto& [key, state] : states) {
      router::RouterOptions fresh_csa;
      fresh_csa.engine = router::RoutingEngine::kCsa;  // builds its own array
      router::Router csa_router(&city.feed, fresh_csa);
      core::LabelingEngine csa_engine(&city, &csa_router);
      auto csa_oracle = snapshot->BuildLabelState(key, &csa_engine);
      ExpectSameLabels(state->labels, csa_oracle->labels, "fresh-array csa");

      router::Router lc_router(&city.feed, router::RouterOptions{});
      core::LabelingEngine lc_engine(&city, &lc_router);
      auto lc_oracle = snapshot->BuildLabelState(key, &lc_engine);
      ExpectSameLabels(state->labels, lc_oracle->labels, "label-correcting");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedArrayMutationTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace staq::serve
