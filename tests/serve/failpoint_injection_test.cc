// Deterministic fault injection against the serve subsystem.
//
// Every failpoint site registered in production code gets at least one test
// here that trips it and asserts graceful degradation: a clean Status (never
// an escaped exception), no hung ticket, mutation atomicity (the store stays
// at the previous epoch with its label states intact), and a server that
// keeps answering correctly afterwards.
//
// The kBlock action doubles as a determinism fixture: parking a worker
// inside a site turns "the worker happens to be busy" — normally a race —
// into an explicit, observable state, which is what makes the virtual-clock
// deadline tests and the shutdown test schedule-independent.
#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/server.h"
#include "testing/test_city.h"
#include "util/clock.h"
#include "util/failpoint.h"

#if defined(STAQ_FAILPOINTS) && STAQ_FAILPOINTS

namespace staq::serve {
namespace {

using util::FailPointConfig;
using util::FailPoints;

AqRequest FastExactRequest(
    synth::PoiCategory category = synth::PoiCategory::kSchool) {
  AqRequest request;
  request.category = category;
  request.options.exact = true;
  request.options.gravity.sample_rate_per_hour = 4;
  request.options.gravity.keep_scale = 2.0;
  request.options.seed = 3;
  return request;
}

void ExpectSameAnswer(const core::AccessQueryResult& a,
                      const core::AccessQueryResult& b) {
  ASSERT_EQ(a.mac.size(), b.mac.size());
  for (size_t z = 0; z < a.mac.size(); ++z) {
    EXPECT_EQ(a.mac[z], b.mac[z]) << "zone " << z;
    EXPECT_EQ(a.acsd[z], b.acsd[z]) << "zone " << z;
  }
  EXPECT_EQ(a.mean_mac, b.mean_mac);
  EXPECT_EQ(a.mean_acsd, b.mean_acsd);
  EXPECT_EQ(a.gravity_trips, b.gravity_trips);
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() {
    AqServer::Options options;
    options.num_threads = 2;
    server_ = std::make_unique<AqServer>(testing::TinyCity(),
                                         gtfs::WeekdayAmPeak(), options);
  }
  ~FaultInjectionTest() override { FailPoints::DisarmAll(); }

  std::unique_ptr<AqServer> server_;
};

// --- serve.scenario.build_label_state --------------------------------------

TEST_F(FaultInjectionTest, LabelStateBuildFailureDegradesAndDoesNotPoison) {
  FailPoints::Arm("serve.scenario.build_label_state",
                  FailPointConfig::ThrowOnce("simulated engine fault"));
  auto failed = server_->Query(FastExactRequest());
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), util::StatusCode::kInternal);
  EXPECT_GE(server_->stats().failed, 1u);

  // The memo key is not poisoned: the retry rebuilds from scratch and the
  // answer equals the uncached golden.
  auto retry = server_->Query(FastExactRequest());
  ASSERT_TRUE(retry.ok()) << retry.status();
  auto golden = server_->QueryUncached(FastExactRequest());
  ASSERT_TRUE(golden.ok());
  ExpectSameAnswer(retry.value(), golden.value());
}

TEST_F(FaultInjectionTest, BuildFailureFailsEveryConcurrentWaiterCleanly) {
  // The first arrival builds; concurrent waiters on the same memo entry
  // must all observe the failure as a clean Status, not a hang.
  FailPoints::Arm("serve.scenario.build_label_state",
                  FailPointConfig::ThrowOnce());
  std::vector<AqTicket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(server_->Submit(FastExactRequest()));
  }
  int failed = 0;
  for (AqTicket& ticket : tickets) {
    auto result = ticket.Get();  // must resolve — never block forever
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), util::StatusCode::kInternal);
      ++failed;
    }
  }
  // At least the builder itself failed; tickets that arrived after the memo
  // entry was erased may have rebuilt successfully.
  EXPECT_GE(failed, 1);
  EXPECT_TRUE(server_->Query(FastExactRequest()).ok());
}

// --- serve.scenario.patch_add / patch_remove / relabel ----------------------

TEST_F(FaultInjectionTest, PatchAddFailureRollsTheMutationBack) {
  auto before = server_->Query(FastExactRequest());  // materialise the state
  ASSERT_TRUE(before.ok());

  FailPoints::Arm("serve.scenario.patch_add", FailPointConfig::Throw());
  auto report = server_->AddPoi(synth::PoiCategory::kSchool,
                                server_->base_city().Centre());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::StatusCode::kInternal);
  EXPECT_EQ(server_->epoch(), 0u);  // the failed epoch was never installed
  FailPoints::Disarm("serve.scenario.patch_add");

  // The previous epoch's label state is intact, and the mutation works once
  // the fault clears.
  auto after = server_->Query(FastExactRequest());
  ASSERT_TRUE(after.ok());
  ExpectSameAnswer(after.value(), before.value());
  auto retry = server_->AddPoi(synth::PoiCategory::kSchool,
                               server_->base_city().Centre());
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(retry.value().epoch, 1u);
}

TEST_F(FaultInjectionTest, PatchRemoveFailureRollsTheMutationBack) {
  auto before = server_->Query(FastExactRequest());
  ASSERT_TRUE(before.ok());
  uint32_t school_id = 0;
  bool found = false;
  for (const synth::Poi& poi : server_->Snapshot()->pois()) {
    if (poi.category == synth::PoiCategory::kSchool) {
      school_id = poi.id;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);

  FailPoints::Arm("serve.scenario.patch_remove", FailPointConfig::Throw());
  auto report = server_->RemovePoi(school_id);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::StatusCode::kInternal);
  EXPECT_EQ(server_->epoch(), 0u);
  FailPoints::Disarm("serve.scenario.patch_remove");

  auto unchanged = server_->Query(FastExactRequest());
  ASSERT_TRUE(unchanged.ok());
  ExpectSameAnswer(unchanged.value(), before.value());
  ASSERT_TRUE(server_->RemovePoi(school_id).ok());
  EXPECT_EQ(server_->epoch(), 1u);
}

TEST_F(FaultInjectionTest, RelabelFailureAbortsBeforeInstall) {
  auto before = server_->Query(FastExactRequest());
  ASSERT_TRUE(before.ok());

  FailPoints::Arm("serve.scenario.relabel", FailPointConfig::Throw());
  auto report = server_->AddPoi(synth::PoiCategory::kSchool,
                                server_->base_city().Centre());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::StatusCode::kInternal);
  EXPECT_EQ(server_->epoch(), 0u);
  EXPECT_EQ(server_->stats().mutations, 0u);
  FailPoints::Disarm("serve.scenario.relabel");

  // Only the un-installed copy was damaged; the published state still
  // answers bit-identically.
  auto after = server_->Query(FastExactRequest());
  ASSERT_TRUE(after.ok());
  ExpectSameAnswer(after.value(), before.value());
}

// --- serve.scenario.patch_network -------------------------------------------

TEST_F(FaultInjectionTest, NetworkPatchFailureRollsEveryDisruptionBack) {
  auto before = server_->Query(FastExactRequest());  // materialise the state
  ASSERT_TRUE(before.ok());

  // Every disruption kind funnels through the network-patch site; each must
  // degrade to a clean kInternal with the old epoch (and its network) still
  // installed and serving.
  FailPoints::Arm("serve.scenario.patch_network", FailPointConfig::Throw());
  const std::vector<util::Result<ScenarioStore::MutationReport>> attempts = {
      server_->SuspendRoute(0),
      server_->CloseStop(0),
      server_->ScaleHeadway(scenario::kAllRoutes, 2),
      server_->SetFare(scenario::kAllRoutes, 4.25),
      server_->ScaleWalkSpeed(0.5),
  };
  for (size_t i = 0; i < attempts.size(); ++i) {
    ASSERT_FALSE(attempts[i].ok()) << "disruption " << i;
    EXPECT_EQ(attempts[i].status().code(), util::StatusCode::kInternal)
        << "disruption " << i;
  }
  EXPECT_EQ(server_->epoch(), 0u);
  EXPECT_EQ(server_->Snapshot()->network_version(), 0u);
  FailPoints::Disarm("serve.scenario.patch_network");

  // The surviving epoch answers bit-identically, and the mutation works
  // once the fault clears.
  auto after = server_->Query(FastExactRequest());
  ASSERT_TRUE(after.ok());
  ExpectSameAnswer(after.value(), before.value());
  auto retry = server_->SuspendRoute(0);
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(retry.value().epoch, 1u);
  EXPECT_EQ(server_->Snapshot()->network_version(), 1u);
}

TEST_F(FaultInjectionTest, TransientNetworkPatchFaultRecoversOnRetry) {
  const double base_speed =
      server_->Snapshot()->router_options().walk.speed_mps;

  FailPoints::Arm("serve.scenario.patch_network",
                  FailPointConfig::ThrowOnce("transient patch fault"));
  ASSERT_FALSE(server_->ScaleWalkSpeed(0.5).ok());
  EXPECT_EQ(server_->Snapshot()->router_options().walk.speed_mps, base_speed);

  auto retry = server_->ScaleWalkSpeed(0.5);  // the once-fault is consumed
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(server_->Snapshot()->router_options().walk.speed_mps,
            base_speed * 0.5);
}

// --- serve.cache.put / serve.cache.evict ------------------------------------

TEST_F(FaultInjectionTest, CachePutFailureStillServesTheAnswer) {
  auto golden = server_->QueryUncached(FastExactRequest());
  ASSERT_TRUE(golden.ok());

  FailPoints::Arm("serve.cache.put", FailPointConfig::Throw("cache down"));
  auto first = server_->Query(FastExactRequest());
  ASSERT_TRUE(first.ok()) << first.status();  // Put failure is tolerated
  ExpectSameAnswer(first.value(), golden.value());
  // Nothing was cached: the repeat recomputes instead of hitting.
  auto repeat = server_->Query(FastExactRequest());
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(server_->stats().cache_hits, 0u);
  FailPoints::Disarm("serve.cache.put");

  ASSERT_TRUE(server_->Query(FastExactRequest()).ok());  // now cached...
  ASSERT_TRUE(server_->Query(FastExactRequest()).ok());
  EXPECT_GE(server_->stats().cache_hits, 1u);  // ...and served from cache
}

TEST_F(FaultInjectionTest, CacheEvictFailureStillServesTheAnswer) {
  AqServer::Options options;
  options.num_threads = 2;
  options.cache.shards = 1;
  options.cache.entries_per_shard = 1;  // the 2nd distinct key must evict
  AqServer tiny(testing::TinyCity(), gtfs::WeekdayAmPeak(), options);

  ASSERT_TRUE(tiny.Query(FastExactRequest(synth::PoiCategory::kSchool)).ok());
  FailPoints::Arm("serve.cache.evict", FailPointConfig::Throw());
  auto second = tiny.Query(FastExactRequest(synth::PoiCategory::kVaxCenter));
  ASSERT_TRUE(second.ok()) << second.status();
  auto golden = tiny.QueryUncached(FastExactRequest(synth::PoiCategory::kVaxCenter));
  ASSERT_TRUE(golden.ok());
  ExpectSameAnswer(second.value(), golden.value());
  FailPoints::Disarm("serve.cache.evict");

  // The over-capacity shard self-heals on the next successful insert. A
  // distinct seed makes a distinct cache key, so this query must Put (a
  // repeat of the cached keys would hit and never reach the evictor).
  AqRequest third = FastExactRequest(synth::PoiCategory::kSchool);
  third.options.seed = 4;
  ASSERT_TRUE(tiny.Query(third).ok());
  EXPECT_GE(tiny.stats().cache_evictions, 2u);
}

// --- util.thread_pool.submit ------------------------------------------------

TEST_F(FaultInjectionTest, SubmissionFailureResolvesTheTicketCleanly) {
  FailPoints::Arm("util.thread_pool.submit",
                  FailPointConfig::Throw("queue broken"));
  AqTicket ticket = server_->Submit(FastExactRequest());
  ASSERT_TRUE(ticket.valid());
  auto result = ticket.Get();  // must resolve — the promise is fulfilled
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInternal);
  EXPECT_GE(server_->stats().failed, 1u);
  FailPoints::Disarm("util.thread_pool.submit");

  auto recovered = server_->Query(FastExactRequest());
  EXPECT_TRUE(recovered.ok()) << recovered.status();
}

// --- serve.ticket.cancel ----------------------------------------------------

TEST_F(FaultInjectionTest, CancelFailureLeavesTheRequestRunning) {
  FailPoints::Arm("serve.ticket.cancel", FailPointConfig::Throw());
  AqTicket ticket = server_->Submit(FastExactRequest());
  EXPECT_FALSE(ticket.TryCancel());  // the failure reads as "not cancelled"
  FailPoints::Disarm("serve.ticket.cancel");
  auto result = ticket.Get();  // and the request completes normally
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(server_->stats().cancelled, 0u);
}

// --- kBlock fixtures: deterministic deadline & shutdown ---------------------

TEST_F(FaultInjectionTest, DeadlineExpiryIsDeterministicOnTheVirtualClock) {
  util::VirtualClock clock;
  AqServer::Options options;
  options.num_threads = 1;
  options.clock = &clock;
  AqServer single(testing::TinyCity(), gtfs::WeekdayAmPeak(), options);

  // Park the only worker inside the label-state build: "the worker is busy"
  // is now an explicit state, not a race.
  FailPoints::Arm("serve.scenario.build_label_state",
                  FailPointConfig::Block());
  AqTicket busy = single.Submit(FastExactRequest());
  while (FailPoints::BlockedCount("serve.scenario.build_label_state") == 0) {
    std::this_thread::yield();
  }

  AqRequest doomed = FastExactRequest(synth::PoiCategory::kVaxCenter);
  doomed.deadline_s = 5.0;
  AqTicket ticket = single.Submit(doomed);
  EXPECT_EQ(ticket.epoch(), 0u);
  clock.AdvanceSeconds(10.0);  // the budget expires while it is queued
  FailPoints::Disarm("serve.scenario.build_label_state");

  auto result = ticket.Get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(single.stats().deadline_exceeded, 1u);
  EXPECT_TRUE(busy.Get().ok());
}

TEST_F(FaultInjectionTest, QueuedDeadlineSurvivorRunsWhenTimeDoesNotAdvance) {
  // Control experiment for the test above: same schedule, but virtual time
  // never moves, so the deadline must NOT fire.
  util::VirtualClock clock;
  AqServer::Options options;
  options.num_threads = 1;
  options.clock = &clock;
  AqServer single(testing::TinyCity(), gtfs::WeekdayAmPeak(), options);

  FailPoints::Arm("serve.scenario.build_label_state",
                  FailPointConfig::Block());
  AqTicket busy = single.Submit(FastExactRequest());
  while (FailPoints::BlockedCount("serve.scenario.build_label_state") == 0) {
    std::this_thread::yield();
  }
  AqRequest tight = FastExactRequest(synth::PoiCategory::kVaxCenter);
  tight.deadline_s = 1e-9;  // would flake under the real clock
  AqTicket ticket = single.Submit(tight);
  FailPoints::Disarm("serve.scenario.build_label_state");

  EXPECT_TRUE(busy.Get().ok());
  auto result = ticket.Get();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(single.stats().deadline_exceeded, 0u);
}

TEST_F(FaultInjectionTest, MutationDuringShutdownStaysEpochConsistent) {
  AqServer::Options options;
  options.num_threads = 1;
  auto server = std::make_unique<AqServer>(testing::TinyCity(),
                                           gtfs::WeekdayAmPeak(), options);
  auto golden = server->QueryUncached(FastExactRequest());
  ASSERT_TRUE(golden.ok());

  // Park the worker mid-build so the remaining submissions stay queued.
  FailPoints::Arm("serve.scenario.build_label_state",
                  FailPointConfig::Block());
  std::vector<AqTicket> tickets;
  for (int i = 0; i < 3; ++i) {
    tickets.push_back(server->Submit(FastExactRequest()));
  }
  while (FailPoints::BlockedCount("serve.scenario.build_label_state") == 0) {
    std::this_thread::yield();
  }

  // Mutate while queries are in flight and shutdown is imminent. The new
  // epoch must not leak into the queued requests' answers: they were
  // admitted under epoch 0.
  auto report = server->AddPoi(synth::PoiCategory::kSchool,
                               server->base_city().Centre());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().epoch, 1u);

  std::atomic<bool> destroyed{false};
  std::thread destroyer([&] {
    server.reset();  // drains the queue: blocked until the site releases
    destroyed.store(true);
  });
  EXPECT_FALSE(destroyed.load());  // cannot finish while the worker is parked
  FailPoints::Disarm("serve.scenario.build_label_state");
  destroyer.join();
  EXPECT_TRUE(destroyed.load());

  for (AqTicket& ticket : tickets) {
    EXPECT_EQ(ticket.epoch(), 0u);
    auto result = ticket.Get();
    ASSERT_TRUE(result.ok()) << result.status();
    ExpectSameAnswer(result.value(), golden.value());  // epoch 0, not 1
  }
}

// --- catalog ----------------------------------------------------------------

TEST_F(FaultInjectionTest, EveryDocumentedSiteIsReachable) {
  // Drive each subsystem once, then check the registry saw every site the
  // DESIGN.md §8 catalog documents. Guards against sites silently compiled
  // out or renamed without the docs (and these tests) noticing.
  ASSERT_TRUE(server_->Query(FastExactRequest()).ok());
  auto report = server_->AddPoi(synth::PoiCategory::kSchool,
                                server_->base_city().Centre());
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(server_->RemovePoi(report.value().poi_id).ok());
  ASSERT_TRUE(server_->SuspendRoute(0).ok());
  AqTicket ticket = server_->Submit(FastExactRequest());
  (void)ticket.TryCancel();
  (void)ticket.Get();

  std::vector<std::string> sites = FailPoints::Registered();
  for (const char* expected :
       {"serve.scenario.build_label_state", "serve.scenario.patch_add",
        "serve.scenario.patch_remove", "serve.scenario.relabel",
        "serve.scenario.patch_network", "serve.cache.put",
        "util.thread_pool.submit", "serve.ticket.cancel"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end())
        << "site never evaluated: " << expected;
  }
}

}  // namespace
}  // namespace staq::serve

#else  // !STAQ_FAILPOINTS

namespace staq::serve {
namespace {

TEST(FaultInjectionTest, SkippedWithoutFailpointSites) {
  GTEST_SKIP() << "built with STAQ_FAILPOINTS=OFF; injection sites are "
                  "compiled out";
}

}  // namespace
}  // namespace staq::serve

#endif  // STAQ_FAILPOINTS
