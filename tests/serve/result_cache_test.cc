#include "serve/result_cache.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/clock.h"
#include "util/failpoint.h"

namespace staq::serve {
namespace {

std::shared_ptr<const core::AccessQueryResult> MakeResult(double mean_mac) {
  auto result = std::make_shared<core::AccessQueryResult>();
  result->mean_mac = mean_mac;
  return result;
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache({.shards = 4, .entries_per_shard = 8});
  EXPECT_EQ(cache.Get("k1"), nullptr);
  cache.Put("k1", MakeResult(1.5));
  auto hit = cache.Get("k1");
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->mean_mac, 1.5);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResultCacheTest, PutRefreshesExistingKey) {
  ResultCache cache({.shards = 1, .entries_per_shard = 4});
  cache.Put("k", MakeResult(1.0));
  cache.Put("k", MakeResult(2.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache.Get("k")->mean_mac, 2.0);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  // Single shard so the LRU order is fully observable.
  ResultCache cache({.shards = 1, .entries_per_shard = 2});
  cache.Put("a", MakeResult(1.0));
  cache.Put("b", MakeResult(2.0));
  ASSERT_NE(cache.Get("a"), nullptr);  // promote "a"; "b" is now LRU
  cache.Put("c", MakeResult(3.0));     // evicts "b"
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
}

TEST(ResultCacheTest, CapacityIsBoundedPerShard) {
  ResultCache cache({.shards = 2, .entries_per_shard = 4});
  for (int i = 0; i < 64; ++i) {
    cache.Put("key" + std::to_string(i), MakeResult(i));
  }
  EXPECT_LE(cache.size(), 8u);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(ResultCacheTest, ZeroOptionsAreClampedToUsableMinimum) {
  ResultCache cache({.shards = 0, .entries_per_shard = 0});
  cache.Put("k", MakeResult(1.0));
  EXPECT_NE(cache.Get("k"), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, ConcurrentReadersAndWritersStayConsistent) {
  ResultCache cache({.shards = 8, .entries_per_shard = 16});
  constexpr int kThreads = 8;
  constexpr int kOps = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        std::string key = "key" + std::to_string((t * 7 + i) % 40);
        if (i % 3 == 0) {
          cache.Put(key, MakeResult(i));
        } else if (auto hit = cache.Get(key)) {
          // A hit must always expose a fully-formed value.
          EXPECT_GE(hit->mean_mac, 0.0);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(kThreads) * ((kOps * 2) / 3));
}

TEST(ResultCacheTest, TtlAgesEntriesOutOnTheVirtualClock) {
  util::VirtualClock clock;
  ResultCache cache({.shards = 1, .entries_per_shard = 8, .ttl_s = 10.0,
                     .clock = &clock});
  cache.Put("k", MakeResult(1.0));
  EXPECT_NE(cache.Get("k"), nullptr);

  clock.AdvanceSeconds(11.0);
  EXPECT_EQ(cache.Get("k"), nullptr);  // aged out, treated as a miss
  EXPECT_EQ(cache.expired(), 1u);
  EXPECT_EQ(cache.size(), 0u);  // lazily erased, not just hidden

  cache.Put("k", MakeResult(2.0));  // a fresh insert is young again
  auto hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->mean_mac, 2.0);
}

TEST(ResultCacheTest, PutRefreshRestartsTheTtl) {
  util::VirtualClock clock;
  ResultCache cache({.shards = 1, .entries_per_shard = 8, .ttl_s = 10.0,
                     .clock = &clock});
  cache.Put("k", MakeResult(1.0));
  clock.AdvanceSeconds(6.0);
  cache.Put("k", MakeResult(2.0));  // refresh: age restarts at zero
  clock.AdvanceSeconds(6.0);        // 12 s since first insert, 6 s since refresh
  auto hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->mean_mac, 2.0);
  EXPECT_EQ(cache.expired(), 0u);
}

TEST(ResultCacheTest, ZeroTtlDisablesAging) {
  util::VirtualClock clock;
  ResultCache cache({.shards = 1, .entries_per_shard = 8, .ttl_s = 0.0,
                     .clock = &clock});
  cache.Put("k", MakeResult(1.0));
  clock.AdvanceSeconds(1e9);
  EXPECT_NE(cache.Get("k"), nullptr);
  EXPECT_EQ(cache.expired(), 0u);
}

TEST(ResultCacheTest, EvictionRacingInsertOfTheSameKeyStaysConsistent) {
  // One thread keeps re-inserting a hot key into a capacity-2 shard while
  // another floods it with cold keys, so the hot key is continually evicted
  // and re-inserted. Every Get must see nullptr or a fully-formed value,
  // and the shard must end within capacity.
  ResultCache cache({.shards = 1, .entries_per_shard = 2});
  std::thread hot([&] {
    for (int i = 0; i < 2000; ++i) {
      cache.Put("hot", MakeResult(7.0));
      if (auto hit = cache.Get("hot")) {
        EXPECT_DOUBLE_EQ(hit->mean_mac, 7.0);
      }
    }
  });
  std::thread cold([&] {
    for (int i = 0; i < 2000; ++i) {
      cache.Put("cold" + std::to_string(i % 64), MakeResult(i));
    }
  });
  hot.join();
  cold.join();
  EXPECT_LE(cache.size(), 2u);
  EXPECT_GT(cache.evictions(), 0u);
}

#if defined(STAQ_FAILPOINTS) && STAQ_FAILPOINTS
TEST(ResultCacheTest, FailedEvictionLeavesCacheUsableAndSelfHealing) {
  // An exception out of the eviction step aborts that Put mid-way, leaving
  // the shard over capacity. The next successful Put must drain the backlog
  // (the eviction loop runs while over capacity, not once).
  ResultCache cache({.shards = 1, .entries_per_shard = 2});
  cache.Put("a", MakeResult(1.0));
  cache.Put("b", MakeResult(2.0));
  {
    util::ScopedFailPoint fp("serve.cache.evict",
                             util::FailPointConfig::Throw("evict failed"));
    EXPECT_THROW(cache.Put("c", MakeResult(3.0)), util::FailPointError);
  }
  EXPECT_EQ(cache.size(), 3u);  // over capacity: the eviction never ran
  // Entries inserted before the failure are still served.
  EXPECT_NE(cache.Get("c"), nullptr);
  cache.Put("d", MakeResult(4.0));  // drains the backlog down to capacity
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_GE(cache.evictions(), 2u);
}
#endif  // STAQ_FAILPOINTS

}  // namespace
}  // namespace staq::serve
