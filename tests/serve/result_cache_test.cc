#include "serve/result_cache.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace staq::serve {
namespace {

std::shared_ptr<const core::AccessQueryResult> MakeResult(double mean_mac) {
  auto result = std::make_shared<core::AccessQueryResult>();
  result->mean_mac = mean_mac;
  return result;
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache({.shards = 4, .entries_per_shard = 8});
  EXPECT_EQ(cache.Get("k1"), nullptr);
  cache.Put("k1", MakeResult(1.5));
  auto hit = cache.Get("k1");
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->mean_mac, 1.5);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResultCacheTest, PutRefreshesExistingKey) {
  ResultCache cache({.shards = 1, .entries_per_shard = 4});
  cache.Put("k", MakeResult(1.0));
  cache.Put("k", MakeResult(2.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache.Get("k")->mean_mac, 2.0);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  // Single shard so the LRU order is fully observable.
  ResultCache cache({.shards = 1, .entries_per_shard = 2});
  cache.Put("a", MakeResult(1.0));
  cache.Put("b", MakeResult(2.0));
  ASSERT_NE(cache.Get("a"), nullptr);  // promote "a"; "b" is now LRU
  cache.Put("c", MakeResult(3.0));     // evicts "b"
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
}

TEST(ResultCacheTest, CapacityIsBoundedPerShard) {
  ResultCache cache({.shards = 2, .entries_per_shard = 4});
  for (int i = 0; i < 64; ++i) {
    cache.Put("key" + std::to_string(i), MakeResult(i));
  }
  EXPECT_LE(cache.size(), 8u);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(ResultCacheTest, ZeroOptionsAreClampedToUsableMinimum) {
  ResultCache cache({.shards = 0, .entries_per_shard = 0});
  cache.Put("k", MakeResult(1.0));
  EXPECT_NE(cache.Get("k"), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, ConcurrentReadersAndWritersStayConsistent) {
  ResultCache cache({.shards = 8, .entries_per_shard = 16});
  constexpr int kThreads = 8;
  constexpr int kOps = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        std::string key = "key" + std::to_string((t * 7 + i) % 40);
        if (i % 3 == 0) {
          cache.Put(key, MakeResult(i));
        } else if (auto hit = cache.Get(key)) {
          // A hit must always expose a fully-formed value.
          EXPECT_GE(hit->mean_mac, 0.0);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(kThreads) * ((kOps * 2) / 3));
}

}  // namespace
}  // namespace staq::serve
