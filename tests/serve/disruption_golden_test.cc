// Golden tests of the disruption contract (scenario subsystem): after a
// timetable, fare, or walk mutation, every label state the store carried
// over is bit-identical to a from-scratch build over the mutated network —
// for all five mutation kinds, chained on one store, on both city
// families. A cross-store check additionally rebuilds the disrupted feed
// through the pure transform and a *fresh* ScenarioStore, proving the
// patched epoch equals a server that loaded the mutated feed from scratch.
#include <gtest/gtest.h>

#include "scenario/transform.h"
#include "serve/scenario.h"
#include "testing/label_state.h"
#include "testing/test_city.h"

namespace staq::serve {
namespace {

using testing::ExpectStatesIdentical;

LabelKey FastKey(uint64_t seed,
                 core::CostKind cost = core::CostKind::kJourneyTime) {
  LabelKey key;
  key.category = synth::PoiCategory::kSchool;
  key.cost = cost;
  key.gravity.sample_rate_per_hour = 4;
  key.gravity.keep_scale = 2.0;
  key.seed = seed;
  return key;
}

/// Rebuilds every materialised state of the current epoch from scratch —
/// with a router over the *disrupted* feed and the epoch's own (possibly
/// walk-rescaled) router options — and asserts bit-identity.
void ExpectEpochMatchesFullRebuild(const ScenarioStore& store) {
  auto scenario = store.Acquire();
  router::Router router(&scenario->base_city().feed,
                        scenario->router_options());
  core::LabelingEngine engine(&scenario->base_city(), &router);
  auto states = scenario->MaterializedStates();
  ASSERT_FALSE(states.empty());
  for (const auto& [key, state] : states) {
    auto fresh = scenario->BuildLabelState(key, &engine);
    ExpectStatesIdentical(*state, *fresh);
  }
}

/// Primes a JT and a GAC label state, then chains all five disruption
/// kinds, golden-checking the whole state set after each epoch.
void RunDisruptionGoldens(synth::City city) {
  ScenarioStore store(std::move(city), gtfs::WeekdayAmPeak());
  router::Router router(&store.base_city().feed, store.router_options());
  core::LabelingEngine engine(&store.base_city(), &router);

  const LabelKey jt = FastKey(3);
  const LabelKey gac = FastKey(3, core::CostKind::kGeneralizedCost);
  (void)store.Acquire()->GetOrBuildLabelState(jt, &engine);
  (void)store.Acquire()->GetOrBuildLabelState(gac, &engine);
  const uint32_t zones =
      static_cast<uint32_t>(store.base_city().zones.size());

  {
    SCOPED_TRACE("suspend_route");
    auto report = store.SuspendRoute(0);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(store.network_version(), 1u);
    // Both states patched; only the screened zones paid SPQs (the report
    // accumulates the relabel count across both states).
    EXPECT_EQ(report.value().states_patched, 2u);
    EXPECT_LE(report.value().zones_relabeled, 2u * zones);
    ExpectEpochMatchesFullRebuild(store);
  }
  {
    SCOPED_TRACE("close_stop");
    // Route 0 is gone; close a stop that other routes still call at.
    auto report = store.CloseStop(
        testing::StopServedOutsideRoute(store.base_city().feed, 0));
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(store.network_version(), 2u);
    ExpectEpochMatchesFullRebuild(store);
  }
  {
    SCOPED_TRACE("scale_headway");
    auto report = store.ScaleHeadway(scenario::kAllRoutes, 2);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(store.network_version(), 3u);
    ExpectEpochMatchesFullRebuild(store);
  }
  {
    SCOPED_TRACE("set_fare");
    // Fares never enter journey time: the JT state must move across the
    // epoch as the same object, while every GAC zone relabels.
    auto jt_before = store.Acquire()->GetOrBuildLabelState(jt, &engine);
    auto report = store.SetFare(scenario::kAllRoutes, 4.25);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(store.network_version(), 4u);
    EXPECT_EQ(report.value().states_patched, 1u);  // the GAC state
    EXPECT_EQ(report.value().states_shared, 1u);   // the JT state, verbatim
    bool built = false;
    router::Router after_router(&store.Acquire()->base_city().feed,
                                store.Acquire()->router_options());
    core::LabelingEngine after_engine(&store.Acquire()->base_city(),
                                      &after_router);
    auto jt_after =
        store.Acquire()->GetOrBuildLabelState(jt, &after_engine, &built);
    EXPECT_FALSE(built);
    EXPECT_EQ(jt_after.get(), jt_before.get());
    ExpectEpochMatchesFullRebuild(store);
  }
  {
    SCOPED_TRACE("scale_walk_speed");
    auto report = store.ScaleWalkSpeed(0.5);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(store.network_version(), 5u);
    EXPECT_EQ(store.walk_scale(), 0.5);
    // A walk rescale invalidates every journey: both states relabel every
    // zone.
    EXPECT_EQ(report.value().zones_relabeled, 2u * zones);
    ExpectEpochMatchesFullRebuild(store);
  }
}

TEST(DisruptionGoldenTest, CovelyAllKindsChained) {
  RunDisruptionGoldens(testing::TinyCity());
}

TEST(DisruptionGoldenTest, BrindaleAllKindsChained) {
  auto city = synth::BuildCity(synth::CitySpec::Brindale(0.05, 7));
  ASSERT_TRUE(city.ok());
  RunDisruptionGoldens(std::move(city).value());
}

TEST(DisruptionGoldenTest, PatchedEpochEqualsAFreshStoreOverTheMutatedFeed) {
  // The strongest form of the golden: the patched epoch's states equal
  // those of a store that *started* from the transformed feed — the same
  // bytes a server would compute after loading the mutated GTFS files.
  synth::City city = testing::TinyCity();
  synth::City mutated = testing::TinyCity();  // identical deterministic build
  auto transformed = scenario::SuspendRoute(mutated.feed, 0);
  ASSERT_TRUE(transformed.ok()) << transformed.status();
  mutated.feed = std::move(transformed.value().feed);

  const LabelKey key = FastKey(11);

  ScenarioStore store(std::move(city), gtfs::WeekdayAmPeak());
  {
    router::Router router(&store.base_city().feed, store.router_options());
    core::LabelingEngine engine(&store.base_city(), &router);
    (void)store.Acquire()->GetOrBuildLabelState(key, &engine);
  }
  ASSERT_TRUE(store.SuspendRoute(0).ok());

  ScenarioStore fresh(std::move(mutated), gtfs::WeekdayAmPeak());
  router::Router fresh_router(&fresh.base_city().feed,
                              fresh.router_options());
  core::LabelingEngine fresh_engine(&fresh.base_city(), &fresh_router);
  auto golden = fresh.Acquire()->BuildLabelState(key, &fresh_engine);

  router::Router patched_router(&store.Acquire()->base_city().feed,
                                store.Acquire()->router_options());
  core::LabelingEngine patched_engine(&store.Acquire()->base_city(),
                                      &patched_router);
  auto patched =
      store.Acquire()->GetOrBuildLabelState(key, &patched_engine);
  ExpectStatesIdentical(*patched, *golden);
}

TEST(DisruptionGoldenTest, InvalidTargetsLeaveTheEpochUntouched) {
  ScenarioStore store(testing::TinyCity(), gtfs::WeekdayAmPeak());
  const uint64_t epoch = store.epoch();

  EXPECT_FALSE(store.SuspendRoute(100000).ok());
  EXPECT_FALSE(store.CloseStop(100000).ok());
  EXPECT_FALSE(store.ScaleHeadway(0, 1).ok());  // factor must be >= 2
  EXPECT_FALSE(store.SetFare(100000, 1.0).ok());
  EXPECT_FALSE(store.ScaleWalkSpeed(0.0).ok());
  EXPECT_FALSE(store.ScaleWalkSpeed(-1.0).ok());

  EXPECT_EQ(store.epoch(), epoch);
  EXPECT_EQ(store.network_version(), 0u);
  EXPECT_EQ(store.walk_scale(), 1.0);
}

}  // namespace
}  // namespace staq::serve
