#include "serve/scenario.h"

#include <gtest/gtest.h>

#include "serve/request.h"
#include "testing/test_city.h"

namespace staq::serve {
namespace {

/// Small sampling parameters so label-state builds stay in milliseconds.
LabelKey FastKey(synth::PoiCategory category = synth::PoiCategory::kSchool) {
  LabelKey key;
  key.category = category;
  key.gravity.sample_rate_per_hour = 4;
  key.gravity.keep_scale = 2.0;
  key.seed = 3;
  return key;
}

class ScenarioStoreTest : public ::testing::Test {
 protected:
  ScenarioStoreTest()
      : store_(testing::TinyCity(), gtfs::WeekdayAmPeak()),
        router_(&store_.base_city().feed, {}),
        engine_(&store_.base_city(), &router_) {}

  ScenarioStore store_;
  router::Router router_;
  core::LabelingEngine engine_;
};

TEST_F(ScenarioStoreTest, InitialEpochServesTheCityPois) {
  auto scenario = store_.Acquire();
  EXPECT_EQ(scenario->epoch(), 0u);
  EXPECT_EQ(scenario->pois().size(), store_.base_city().pois.size());
  EXPECT_EQ(scenario->interval().label, gtfs::WeekdayAmPeak().label);
}

TEST_F(ScenarioStoreTest, MutationsInstallNewEpochsWithoutTouchingOldOnes) {
  auto before = store_.Acquire();
  size_t pois_before = before->pois().size();

  auto report = store_.AddPoi(synth::PoiCategory::kSchool,
                              store_.base_city().Centre());
  EXPECT_EQ(report.epoch, 1u);
  auto after = store_.Acquire();
  EXPECT_EQ(after->epoch(), 1u);
  EXPECT_EQ(after->pois().size(), pois_before + 1);

  // RCU: the pre-mutation snapshot is untouched and still fully usable.
  EXPECT_EQ(before->epoch(), 0u);
  EXPECT_EQ(before->pois().size(), pois_before);
  auto state = before->GetOrBuildLabelState(FastKey(), &engine_);
  EXPECT_EQ(state->labels.size(), store_.base_city().zones.size());
}

TEST_F(ScenarioStoreTest, PoiEditsShareTheOfflineState) {
  auto before = store_.Acquire();
  store_.AddPoi(synth::PoiCategory::kHospital, store_.base_city().Centre());
  auto after = store_.Acquire();
  // POI edits must not re-run the offline phase.
  EXPECT_EQ(&before->offline(), &after->offline());
}

TEST_F(ScenarioStoreTest, SetIntervalRebuildsOfflineState) {
  auto before = store_.Acquire();
  auto report = store_.SetInterval(gtfs::WeekdayOffPeak());
  EXPECT_EQ(report.epoch, 1u);
  auto after = store_.Acquire();
  EXPECT_NE(&before->offline(), &after->offline());
  EXPECT_EQ(after->interval().label, gtfs::WeekdayOffPeak().label);
  EXPECT_EQ(after->pois().size(), before->pois().size());
}

TEST_F(ScenarioStoreTest, RemovePoiReportsNotFoundForUnknownId) {
  auto result = store_.RemovePoi(9999999u);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
  EXPECT_EQ(store_.epoch(), 0u);  // failed mutation installs nothing
}

TEST_F(ScenarioStoreTest, AddedPoiGetsAFreshStableId) {
  auto report = store_.AddPoi(synth::PoiCategory::kVaxCenter,
                              store_.base_city().Centre());
  auto scenario = store_.Acquire();
  EXPECT_EQ(scenario->pois().back().id, report.poi_id);
  auto removed = store_.RemovePoi(report.poi_id);
  ASSERT_TRUE(removed.ok());
  // Ids are never reused: the next add continues past the removed id.
  auto report2 = store_.AddPoi(synth::PoiCategory::kVaxCenter,
                               store_.base_city().Centre());
  EXPECT_GT(report2.poi_id, report.poi_id);
}

TEST_F(ScenarioStoreTest, LabelStateIsMemoisedPerKey) {
  auto scenario = store_.Acquire();
  bool built = false;
  auto first = scenario->GetOrBuildLabelState(FastKey(), &engine_, &built);
  EXPECT_TRUE(built);
  auto second = scenario->GetOrBuildLabelState(FastKey(), &engine_, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(first.get(), second.get());  // same object, not a rebuild

  // A different key builds its own state.
  auto other = scenario->GetOrBuildLabelState(
      FastKey(synth::PoiCategory::kHospital), &engine_, &built);
  EXPECT_TRUE(built);
  EXPECT_NE(other.get(), first.get());
}

TEST(LabelKeyTest, CanonicalDropsGacUnderJourneyTime) {
  LabelKey jt = FastKey();
  LabelKey jt_other_gac = jt;
  jt_other_gac.gac.lambda_wt = 99.0;
  // GAC weights cannot affect a JT labeling: the keys must collide.
  EXPECT_EQ(jt.Canonical(), jt_other_gac.Canonical());

  LabelKey gac = jt;
  gac.cost = core::CostKind::kGeneralizedCost;
  LabelKey gac_other = gac;
  gac_other.gac.lambda_wt = 99.0;
  EXPECT_NE(gac.Canonical(), gac_other.Canonical());
  EXPECT_NE(jt.Canonical(), gac.Canonical());
}

TEST(LabelKeyTest, CanonicalRequestKeyDropsSsrFieldsWhenExact) {
  AqRequest exact;
  exact.options.exact = true;
  exact.options.beta = 0.05;
  AqRequest exact_other_beta = exact;
  exact_other_beta.options.beta = 0.5;
  exact_other_beta.options.model = ml::ModelKind::kGnn;
  // beta/model are SSR-only: exact requests must share one cache entry.
  EXPECT_EQ(CanonicalRequestKey(exact), CanonicalRequestKey(exact_other_beta));

  AqRequest ssr = exact;
  ssr.options.exact = false;
  AqRequest ssr_other_beta = ssr;
  ssr_other_beta.options.beta = 0.5;
  EXPECT_NE(CanonicalRequestKey(ssr), CanonicalRequestKey(ssr_other_beta));
  EXPECT_NE(CanonicalRequestKey(exact), CanonicalRequestKey(ssr));
}

}  // namespace
}  // namespace staq::serve
