// AqTcpServer + AqClient over loopback: handshake, remote queries equal
// the in-process golden bit for bit, mutations, role enforcement, the
// min_sequence freshness gate, and protocol-garbage handling.
#include "net/server.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net_testing.h"
#include "testing/test_city.h"

namespace staq::net {
namespace {

using net_testing::ExpectSameAnswer;
using net_testing::FastExactRequest;
using net_testing::FastSsrRequest;

class TcpServerTest : public ::testing::Test {
 protected:
  TcpServerTest() {
    serve::AqServer::Options options;
    options.num_threads = 4;
    server_ = std::make_unique<serve::AqServer>(testing::TinyCity(),
                                                gtfs::WeekdayAmPeak(), options);
    tcp_ = std::make_unique<AqTcpServer>(server_.get(), AqTcpServer::Options());
    auto started = tcp_->Start();
    EXPECT_TRUE(started.ok()) << started;
  }

  AqClient MustConnect() {
    auto client = AqClient::Connect("127.0.0.1", tcp_->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(client).value();
  }

  std::unique_ptr<serve::AqServer> server_;
  std::unique_ptr<AqTcpServer> tcp_;
};

TEST_F(TcpServerTest, HandshakeReportsTheServersSequence) {
  AqClient client = MustConnect();
  EXPECT_EQ(client.hello_sequence(), 0u);

  auto info = client.Info();
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info.value().sequence, 0u);
  EXPECT_EQ(info.value().epoch, 0u);
  EXPECT_GE(tcp_->stats().connections, 1u);
}

TEST_F(TcpServerTest, RemoteQueryEqualsTheInProcessGolden) {
  AqClient client = MustConnect();
  auto remote = client.Query(FastExactRequest());
  ASSERT_TRUE(remote.ok()) << remote.status();
  EXPECT_EQ(remote.value().sequence, 0u);

  auto golden = server_->QueryUncached(FastExactRequest());
  ASSERT_TRUE(golden.ok());
  ExpectSameAnswer(remote.value().result, golden.value());

  // The SSR path crosses the wire bit-identically too.
  auto remote_ssr = client.Query(FastSsrRequest());
  ASSERT_TRUE(remote_ssr.ok()) << remote_ssr.status();
  auto golden_ssr = server_->QueryUncached(FastSsrRequest());
  ASSERT_TRUE(golden_ssr.ok());
  ExpectSameAnswer(remote_ssr.value().result, golden_ssr.value());
}

TEST_F(TcpServerTest, RemoteMutationsAdvanceTheSequence) {
  AqClient client = MustConnect();
  const geo::BBox& extent = server_->base_city().extent;
  auto before = client.Query(FastExactRequest());
  ASSERT_TRUE(before.ok());

  auto added = client.AddPoi(synth::PoiCategory::kSchool,
                             geo::Point{extent.min_x, extent.min_y});
  ASSERT_TRUE(added.ok()) << added.status();
  EXPECT_EQ(added.value().sequence, 1u);
  EXPECT_EQ(added.value().report.epoch, 1u);
  EXPECT_EQ(server_->sequence(), 1u);

  auto after = client.Query(FastExactRequest());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().sequence, 1u);
  EXPECT_GT(after.value().result.gravity_trips,
            before.value().result.gravity_trips);

  auto removed = client.RemovePoi(added.value().report.poi_id);
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_EQ(removed.value().sequence, 2u);

  auto switched = client.SetInterval(gtfs::WeekdayPmPeak());
  ASSERT_TRUE(switched.ok()) << switched.status();
  EXPECT_EQ(switched.value().sequence, 3u);
}

TEST_F(TcpServerTest, ReadOnlyReplicaRefusesMutations) {
  AqTcpServer::Options options;
  options.allow_mutations = false;
  AqTcpServer replica(server_.get(), options);
  ASSERT_TRUE(replica.Start().ok());

  auto client = AqClient::Connect("127.0.0.1", replica.port());
  ASSERT_TRUE(client.ok());
  auto refused =
      client.value().AddPoi(synth::PoiCategory::kSchool, geo::Point{0, 0});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), util::StatusCode::kFailedPrecondition);
  // The connection survives a refused mutation: reads still work.
  EXPECT_TRUE(client.value().Info().ok());
}

TEST_F(TcpServerTest, QueryBehindMinSequenceIsUnavailable) {
  AqClient client = MustConnect();
  auto behind = client.Query(FastExactRequest(), /*min_sequence=*/5);
  ASSERT_FALSE(behind.ok());
  EXPECT_EQ(behind.status().code(), util::StatusCode::kUnavailable);

  // At or below the server's sequence the gate opens.
  auto fresh = client.Query(FastExactRequest(), /*min_sequence=*/0);
  EXPECT_TRUE(fresh.ok()) << fresh.status();
}

TEST_F(TcpServerTest, RemoteErrorsCarryTheServersStatus) {
  AqClient client = MustConnect();
  auto missing = client.RemovePoi(9999999);
  ASSERT_FALSE(missing.ok());
  // The exact status an in-process RemovePoi would return, not a generic
  // "request failed".
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
  EXPECT_GE(tcp_->stats().errors, 1u);
}

TEST_F(TcpServerTest, VersionMismatchIsRejectedAtHandshake) {
  auto socket = Connect("127.0.0.1", tcp_->port(), 5.0);
  ASSERT_TRUE(socket.ok()) << socket.status();
  Hello hello;
  hello.protocol_version = 99;
  std::vector<uint8_t> payload;
  EncodeHello(hello, &payload);
  ASSERT_TRUE(socket.value().SendFrame(MsgType::kHello, 1, payload).ok());
  auto reply = socket.value().RecvFrame();
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply.value().type, MsgType::kError);
  store::ByteReader in(reply.value().payload.data(),
                       reply.value().payload.size());
  util::Status remote;
  ASSERT_TRUE(DecodeErrorMsg(&in, &remote));
  EXPECT_EQ(remote.code(), util::StatusCode::kInvalidArgument);
}

TEST_F(TcpServerTest, GarbageBytesDropTheConnectionNotTheServer) {
  auto socket = Connect("127.0.0.1", tcp_->port(), 5.0);
  ASSERT_TRUE(socket.ok());
  const char garbage[] = "GET / HTTP/1.1\r\nHost: wrong-protocol\r\n\r\n";
  ASSERT_TRUE(socket.value().SendAll(garbage, sizeof(garbage)).ok());
  // The server hangs up without answering; the read fails cleanly.
  auto reply = socket.value().RecvFrame();
  EXPECT_FALSE(reply.ok());

  // Other clients are unaffected.
  AqClient client = MustConnect();
  EXPECT_TRUE(client.Info().ok());
  EXPECT_GE(tcp_->stats().protocol_errors, 1u);
}

TEST_F(TcpServerTest, ConcurrentClientsAllGetTheGoldenAnswer) {
  auto golden = server_->QueryUncached(FastExactRequest());
  ASSERT_TRUE(golden.ok());

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 3;
  std::atomic<int> ok_count{0};
  std::vector<core::AccessQueryResult> answers(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = AqClient::Connect("127.0.0.1", tcp_->port());
      if (!client.ok()) return;
      for (int q = 0; q < kQueriesPerClient; ++q) {
        auto result = client.value().Query(FastExactRequest());
        if (result.ok()) {
          answers[c] = std::move(result).value().result;
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok_count.load(), kClients * kQueriesPerClient);
  for (int c = 0; c < kClients; ++c) {
    ExpectSameAnswer(answers[c], golden.value());
  }
}

TEST_F(TcpServerTest, StopJoinsEverythingAndRefusesNewCalls) {
  AqClient client = MustConnect();
  ASSERT_TRUE(client.Info().ok());
  tcp_->Stop();
  EXPECT_FALSE(tcp_->running());
  // In-flight connection is gone...
  EXPECT_FALSE(client.Info().ok());
  // ...and new dials are refused (or at best reset before the handshake).
  auto fresh = AqClient::Connect("127.0.0.1", tcp_->port(), 1.0);
  EXPECT_FALSE(fresh.ok());
  tcp_->Stop();  // idempotent
}

}  // namespace
}  // namespace staq::net
