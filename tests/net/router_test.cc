// QueryRouter — stable placement, failover on kUnavailable, primary-only
// mutations, and the read-your-writes floor across replicas.
#include "net/router.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/server.h"
#include "net_testing.h"
#include "testing/test_city.h"

namespace staq::net {
namespace {

using net_testing::ExpectSameAnswer;
using net_testing::FastExactRequest;

/// One in-process backend: an AqServer plus its TCP front end.
struct TestBackend {
  explicit TestBackend(bool allow_mutations = true) {
    serve::AqServer::Options options;
    options.num_threads = 2;
    server = std::make_unique<serve::AqServer>(testing::TinyCity(),
                                               gtfs::WeekdayAmPeak(), options);
    AqTcpServer::Options tcp_options;
    tcp_options.allow_mutations = allow_mutations;
    tcp = std::make_unique<AqTcpServer>(server.get(), tcp_options);
    auto started = tcp->Start();
    EXPECT_TRUE(started.ok()) << started;
  }

  Backend Address() const { return Backend{"127.0.0.1", tcp->port()}; }

  std::unique_ptr<serve::AqServer> server;
  std::unique_ptr<AqTcpServer> tcp;
};

/// A loopback port with nothing listening on it (bound once, then freed).
uint16_t DeadPort() {
  auto listener = Listener::Bind(0);
  EXPECT_TRUE(listener.ok());
  return listener.value().port();  // freed when the listener dies
}

/// A key that lands on `want` out of `num_shards` (scans scenario names).
ShardKey KeyForShard(size_t want, size_t num_shards) {
  for (int i = 0; i < 1000; ++i) {
    ShardKey key{"covely", "scenario-" + std::to_string(i)};
    if (QueryRouter::ShardOf(key, num_shards) == want) return key;
  }
  ADD_FAILURE() << "no key found for shard " << want;
  return ShardKey{};
}

TEST(ShardOfTest, PlacementIsStableAndInRange) {
  ShardKey key{"brindale", "am-peak"};
  const size_t first = QueryRouter::ShardOf(key, 7);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(QueryRouter::ShardOf(key, 7), first);  // no hidden state
    EXPECT_LT(QueryRouter::ShardOf(key, 7), 7u);
  }
  // The canonical form distinguishes city from scenario.
  EXPECT_EQ(key.Canonical(), "brindale/am-peak");
  ShardKey other{"brindale", "pm-peak"};
  EXPECT_NE(other.Canonical(), key.Canonical());
}

TEST(QueryRouterTest, RoutesEachKeyToItsOwnShard) {
  TestBackend shard0;
  TestBackend shard1;
  QueryRouter router({{shard0.Address()}, {shard1.Address()}});

  ShardKey key0 = KeyForShard(0, 2);
  ShardKey key1 = KeyForShard(1, 2);

  auto added = router.AddPoi(key0, synth::PoiCategory::kSchool,
                             shard0.server->base_city().Centre());
  ASSERT_TRUE(added.ok()) << added.status();
  // The mutation landed on shard 0's backend and nowhere else.
  EXPECT_EQ(shard0.server->epoch(), 1u);
  EXPECT_EQ(shard1.server->epoch(), 0u);

  auto result = router.Query(key1, FastExactRequest());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().sequence, 0u);  // shard 1 is unmutated
  EXPECT_EQ(router.stats().queries, 1u);
  EXPECT_EQ(router.stats().mutations, 1u);
}

TEST(QueryRouterTest, ReadsFailOverToALiveReplica) {
  TestBackend live;
  // Backend 0 (the "primary") is dead; reads must fail over to backend 1.
  QueryRouter router({{Backend{"127.0.0.1", DeadPort()}, live.Address()}});
  ShardKey key{"covely", "am"};

  auto golden = live.server->QueryUncached(FastExactRequest());
  ASSERT_TRUE(golden.ok());
  for (int i = 0; i < 3; ++i) {
    auto result = router.Query(key, FastExactRequest());
    ASSERT_TRUE(result.ok()) << result.status();
    ExpectSameAnswer(result.value().result, golden.value());
  }
  EXPECT_GE(router.stats().failovers, 1u);
}

TEST(QueryRouterTest, NonRetryableErrorsSurfaceImmediately) {
  TestBackend backend;
  QueryRouter router({{backend.Address(), backend.Address()}});
  ShardKey key{"covely", "am"};
  serve::AqRequest bad = FastExactRequest();
  bad.options.exact = false;   // SSR path so beta is actually consulted
  bad.options.beta = -5.0;     // semantically invalid: retrying cannot help
  auto result = router.Query(key, bad);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(router.stats().failovers, 0u);
}

TEST(QueryRouterTest, MutationsGoOnlyToThePrimary) {
  TestBackend live;
  // Primary (backend 0) dead, replica alive: a write must NOT fail over —
  // it may or may not have landed, and silently retrying could fork
  // history. It surfaces as kUnavailable instead.
  QueryRouter router({{Backend{"127.0.0.1", DeadPort()}, live.Address()}});
  ShardKey key{"covely", "am"};
  auto result = router.AddPoi(key, synth::PoiCategory::kSchool,
                              live.server->base_city().Centre());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(live.server->epoch(), 0u);  // the replica never saw the write
}

TEST(QueryRouterTest, ReadYourWritesAcrossReplicas) {
  // One shard, two backends over DIFFERENT servers: the primary takes the
  // write, the stale backend never sees it (no replication wired here —
  // that is replication_test's job). The router's floor must keep the
  // stale backend from answering reads that require the write.
  TestBackend primary;
  TestBackend stale(/*allow_mutations=*/false);
  QueryRouter router({{primary.Address(), stale.Address()}});
  ShardKey key{"covely", "am"};

  auto added = router.AddPoi(key, synth::PoiCategory::kSchool,
                             primary.server->base_city().Centre());
  ASSERT_TRUE(added.ok()) << added.status();
  ASSERT_EQ(added.value().sequence, 1u);

  auto golden = primary.server->QueryUncached(FastExactRequest());
  ASSERT_TRUE(golden.ok());
  // Round-robin alternates between primary and the stale replica; the
  // stale one answers kUnavailable (behind the floor) and the router fails
  // over, so EVERY answer reflects the write.
  for (int i = 0; i < 4; ++i) {
    auto result = router.Query(key, FastExactRequest());
    ASSERT_TRUE(result.ok()) << "query " << i << ": " << result.status();
    EXPECT_GE(result.value().sequence, 1u) << "query " << i;
    ExpectSameAnswer(result.value().result, golden.value());
  }
  EXPECT_GE(router.stats().failovers, 1u);
}

}  // namespace
}  // namespace staq::net
