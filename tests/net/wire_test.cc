// net/wire.h — frame framing/checksum behaviour and payload codec round
// trips. The wire carries raw IEEE doubles, so every round trip here is
// asserted bit-identical, the same contract the snapshot store keeps.
#include "net/wire.h"

#include <vector>

#include <gtest/gtest.h>

namespace staq::net {
namespace {

Frame MustParse(const std::vector<uint8_t>& wire) {
  uint32_t body_len = 0;
  uint64_t checksum = 0;
  auto header_st = ParseFrameHeader(wire.data(), &body_len, &checksum);
  EXPECT_TRUE(header_st.ok()) << header_st;
  EXPECT_EQ(kFrameHeaderSize + body_len, wire.size());
  auto frame = ParseFrameBody(wire.data() + kFrameHeaderSize, body_len,
                              checksum);
  EXPECT_TRUE(frame.ok()) << frame.status();
  return std::move(frame).value();
}

TEST(FrameTest, RoundTripsTypeIdAndPayload) {
  std::vector<uint8_t> payload = {0xDE, 0xAD, 0xBE, 0xEF};
  std::vector<uint8_t> wire;
  EncodeFrame(MsgType::kQuery, 0x123456789ABCull, payload, &wire);
  Frame frame = MustParse(wire);
  EXPECT_EQ(frame.type, MsgType::kQuery);
  EXPECT_EQ(frame.request_id, 0x123456789ABCull);
  EXPECT_EQ(frame.payload, payload);
}

TEST(FrameTest, EmptyPayloadIsAValidFrame) {
  std::vector<uint8_t> wire;
  EncodeFrame(MsgType::kInfo, 7, {}, &wire);
  Frame frame = MustParse(wire);
  EXPECT_EQ(frame.type, MsgType::kInfo);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameTest, HeaderRejectsBadMagicAndBadLength) {
  std::vector<uint8_t> wire;
  EncodeFrame(MsgType::kInfo, 1, {}, &wire);
  uint32_t body_len = 0;
  uint64_t checksum = 0;

  std::vector<uint8_t> bad_magic = wire;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(ParseFrameHeader(bad_magic.data(), &body_len, &checksum).code(),
            util::StatusCode::kInvalidArgument);

  // body_len beyond the 64 MB bound is corruption, not an allocation hint.
  std::vector<uint8_t> huge = wire;
  huge[4] = 0xFF;
  huge[5] = 0xFF;
  huge[6] = 0xFF;
  huge[7] = 0x7F;
  EXPECT_EQ(ParseFrameHeader(huge.data(), &body_len, &checksum).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(FrameTest, BodyChecksumMismatchIsDataLoss) {
  std::vector<uint8_t> wire;
  EncodeFrame(MsgType::kQuery, 3, {1, 2, 3}, &wire);
  uint32_t body_len = 0;
  uint64_t checksum = 0;
  ASSERT_TRUE(ParseFrameHeader(wire.data(), &body_len, &checksum).ok());
  wire.back() ^= 0x01;  // flip one payload bit
  EXPECT_EQ(
      ParseFrameBody(wire.data() + kFrameHeaderSize, body_len, checksum)
          .status()
          .code(),
      util::StatusCode::kDataLoss);
}

TEST(FrameTest, UnknownMessageTypeIsRejected) {
  std::vector<uint8_t> wire;
  EncodeFrame(static_cast<MsgType>(0x42), 3, {}, &wire);
  uint32_t body_len = 0;
  uint64_t checksum = 0;
  ASSERT_TRUE(ParseFrameHeader(wire.data(), &body_len, &checksum).ok());
  EXPECT_EQ(
      ParseFrameBody(wire.data() + kFrameHeaderSize, body_len, checksum)
          .status()
          .code(),
      util::StatusCode::kInvalidArgument);
}

TEST(WireTest, HelloRoundTrip) {
  HelloAck ack;
  ack.protocol_version = kProtocolVersion;
  ack.sequence = 12345;
  std::vector<uint8_t> bytes;
  EncodeHelloAck(ack, &bytes);
  store::ByteReader in(bytes.data(), bytes.size());
  HelloAck decoded;
  ASSERT_TRUE(DecodeHelloAck(&in, &decoded));
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(decoded.protocol_version, ack.protocol_version);
  EXPECT_EQ(decoded.sequence, ack.sequence);

  // Version 0 is nonsense from any peer.
  bytes.clear();
  store::PutVarint64(&bytes, 0);
  store::ByteReader zero(bytes.data(), bytes.size());
  Hello hello;
  EXPECT_FALSE(DecodeHello(&zero, &hello));
}

/// A request exercising every encoded field with non-default values.
QueryMsg FullQueryMsg() {
  QueryMsg msg;
  msg.min_sequence = 42;
  msg.request.category = synth::PoiCategory::kHospital;
  msg.request.options.exact = false;
  msg.request.options.beta = 0.15;
  msg.request.options.model = ml::ModelKind::kCoreg;
  msg.request.options.cost = core::CostKind::kGeneralizedCost;
  msg.request.options.gravity.decay_scale_m = 1234.5;
  msg.request.options.gravity.keep_scale = 1.75;
  msg.request.options.gravity.sample_rate_per_hour = 6;
  msg.request.options.gac.lambda_tan = 0.1;
  msg.request.options.gac.lambda_wt = 1.9;
  msg.request.options.gac.lambda_ivt = 1.1;
  msg.request.options.gac.lambda_et = 0.9;
  msg.request.options.gac.transfer_penalty_s = 240.0;
  msg.request.options.gac.value_of_time = 12.5;
  msg.request.options.seed = 987654321;
  msg.request.deadline_s = 2.5;
  return msg;
}

TEST(WireTest, QueryMsgRoundTripsEveryField) {
  QueryMsg msg = FullQueryMsg();
  std::vector<uint8_t> bytes;
  EncodeQueryMsg(msg, &bytes);
  store::ByteReader in(bytes.data(), bytes.size());
  QueryMsg decoded;
  ASSERT_TRUE(DecodeQueryMsg(&in, &decoded));
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(decoded.min_sequence, msg.min_sequence);
  EXPECT_EQ(decoded.request.category, msg.request.category);
  EXPECT_EQ(decoded.request.options.exact, msg.request.options.exact);
  EXPECT_EQ(decoded.request.options.beta, msg.request.options.beta);
  EXPECT_EQ(decoded.request.options.model, msg.request.options.model);
  EXPECT_EQ(decoded.request.options.cost, msg.request.options.cost);
  EXPECT_EQ(decoded.request.options.gravity.decay_scale_m,
            msg.request.options.gravity.decay_scale_m);
  EXPECT_EQ(decoded.request.options.gravity.keep_scale,
            msg.request.options.gravity.keep_scale);
  EXPECT_EQ(decoded.request.options.gravity.sample_rate_per_hour,
            msg.request.options.gravity.sample_rate_per_hour);
  EXPECT_EQ(decoded.request.options.gac.lambda_tan,
            msg.request.options.gac.lambda_tan);
  EXPECT_EQ(decoded.request.options.gac.transfer_penalty_s,
            msg.request.options.gac.transfer_penalty_s);
  EXPECT_EQ(decoded.request.options.gac.value_of_time,
            msg.request.options.gac.value_of_time);
  EXPECT_EQ(decoded.request.options.seed, msg.request.options.seed);
  EXPECT_EQ(decoded.request.deadline_s, msg.request.deadline_s);
}

TEST(WireTest, QueryMsgDecodeValidatesEnumRanges) {
  QueryMsg msg = FullQueryMsg();
  std::vector<uint8_t> bytes;
  EncodeQueryMsg(msg, &bytes);
  // Byte 0 is the min_sequence varint (42 fits in one byte); byte 1 is the
  // category.
  std::vector<uint8_t> bad = bytes;
  bad[1] = 0xEE;
  store::ByteReader in(bad.data(), bad.size());
  QueryMsg decoded;
  EXPECT_FALSE(DecodeQueryMsg(&in, &decoded));

  // Truncations fail cleanly at every length.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    store::ByteReader prefix(bytes.data(), cut);
    EXPECT_FALSE(DecodeQueryMsg(&prefix, &decoded)) << "prefix " << cut;
  }
}

TEST(WireTest, QueryResultRoundTripsBitIdentically) {
  QueryResultMsg msg;
  msg.sequence = 9;
  msg.result.mac = {60.0, 120.5, 0.125, 1e9};
  msg.result.acsd = {1.0, 2.0, 3.0, 4.0};
  msg.result.classes = {0, 2, 1, 3};
  msg.result.mean_mac = 75.375;
  msg.result.mean_acsd = 2.5;
  msg.result.fairness = 0.987654321;
  msg.result.population_fairness = 0.5;
  msg.result.vulnerable_fairness = 0.25;
  msg.result.spqs = 123456;
  msg.result.elapsed_s = 0.75;
  msg.result.gravity_trips = 99999;

  std::vector<uint8_t> bytes;
  EncodeQueryResultMsg(msg, &bytes);
  store::ByteReader in(bytes.data(), bytes.size());
  QueryResultMsg decoded;
  ASSERT_TRUE(DecodeQueryResultMsg(&in, &decoded));
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(decoded.sequence, msg.sequence);
  EXPECT_EQ(decoded.result.mac, msg.result.mac);  // bit-exact doubles
  EXPECT_EQ(decoded.result.acsd, msg.result.acsd);
  EXPECT_EQ(decoded.result.classes, msg.result.classes);
  EXPECT_EQ(decoded.result.mean_mac, msg.result.mean_mac);
  EXPECT_EQ(decoded.result.fairness, msg.result.fairness);
  EXPECT_EQ(decoded.result.spqs, msg.result.spqs);
  EXPECT_EQ(decoded.result.gravity_trips, msg.result.gravity_trips);
}

TEST(WireTest, MutateResultRoundTrip) {
  MutateResultMsg msg;
  msg.sequence = 17;
  msg.report.epoch = 3;
  msg.report.poi_id = 4242;
  msg.report.states_patched = 2;
  msg.report.states_shared = 5;
  msg.report.zones_relabeled = 12;
  msg.report.zones_total = 64;
  msg.report.spqs = 777;
  msg.report.seconds = 0.125;

  std::vector<uint8_t> bytes;
  EncodeMutateResultMsg(msg, &bytes);
  store::ByteReader in(bytes.data(), bytes.size());
  MutateResultMsg decoded;
  ASSERT_TRUE(DecodeMutateResultMsg(&in, &decoded));
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(decoded.sequence, msg.sequence);
  EXPECT_EQ(decoded.report.epoch, msg.report.epoch);
  EXPECT_EQ(decoded.report.poi_id, msg.report.poi_id);
  EXPECT_EQ(decoded.report.states_patched, msg.report.states_patched);
  EXPECT_EQ(decoded.report.states_shared, msg.report.states_shared);
  EXPECT_EQ(decoded.report.zones_relabeled, msg.report.zones_relabeled);
  EXPECT_EQ(decoded.report.zones_total, msg.report.zones_total);
  EXPECT_EQ(decoded.report.spqs, msg.report.spqs);
  EXPECT_EQ(decoded.report.seconds, msg.report.seconds);
}

TEST(WireTest, InfoResultRoundTrip) {
  InfoResultMsg msg;
  msg.sequence = 1000;
  msg.epoch = 12;
  std::vector<uint8_t> bytes;
  EncodeInfoResultMsg(msg, &bytes);
  store::ByteReader in(bytes.data(), bytes.size());
  InfoResultMsg decoded;
  ASSERT_TRUE(DecodeInfoResultMsg(&in, &decoded));
  EXPECT_EQ(decoded.sequence, msg.sequence);
  EXPECT_EQ(decoded.epoch, msg.epoch);
}

TEST(WireTest, ErrorMsgRoundTripsEveryStatusCode) {
  // The util::Status error model IS the wire error model: every code —
  // including the transport codes this PR added — survives the trip.
  for (uint8_t code = 1;
       code <= static_cast<uint8_t>(util::StatusCode::kAborted); ++code) {
    util::Status status = util::Status::FromCode(
        static_cast<util::StatusCode>(code), "remote detail");
    std::vector<uint8_t> bytes;
    EncodeErrorMsg(status, &bytes);
    store::ByteReader in(bytes.data(), bytes.size());
    util::Status decoded;
    ASSERT_TRUE(DecodeErrorMsg(&in, &decoded)) << int{code};
    EXPECT_EQ(decoded.code(), status.code());
    EXPECT_EQ(decoded.message(), "remote detail");
  }
}

TEST(WireTest, UnknownErrorCodeDegradesToInternal) {
  std::vector<uint8_t> bytes;
  bytes.push_back(0xC8);  // a code from the future
  store::PutLengthPrefixed(&bytes, "novel failure");
  store::ByteReader in(bytes.data(), bytes.size());
  util::Status decoded;
  ASSERT_TRUE(DecodeErrorMsg(&in, &decoded));
  EXPECT_EQ(decoded.code(), util::StatusCode::kInternal);
  EXPECT_NE(decoded.message().find("novel failure"), std::string::npos);
}

}  // namespace
}  // namespace staq::net
