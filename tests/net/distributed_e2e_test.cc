// End-to-end distributed serving: a router over one primary (logging to
// its WAL) plus three snapshot+replay replicas serves a deterministic
// query/mutate mix over real TCP, one replica is killed and restarted
// mid-run (rebootstrapping from the snapshot and catching up from the
// log), and every single response is bit-identical to an in-process
// oracle AqServer fed the same mutations.
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/replica.h"
#include "net/router.h"
#include "net/server.h"
#include "net_testing.h"
#include "serve/server.h"
#include "testing/test_city.h"
#include "wal/wal.h"

namespace staq::net {
namespace {

namespace fs = std::filesystem;

using net_testing::ExpectSameAnswer;
using net_testing::FastExactRequest;
using net_testing::FastSsrRequest;

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "staq_e2e_" + name;
  fs::remove_all(path);
  return path;
}

std::unique_ptr<Replica> StartReplica(const std::string& snapshot,
                                      const std::string& wal_dir,
                                      uint16_t port = 0) {
  Replica::Options options;
  options.snapshot_path = snapshot;
  options.wal_dir = wal_dir;
  options.serve.num_threads = 2;
  options.tcp.port = port;
  auto replica =
      Replica::Start(testing::TinyCity(), gtfs::WeekdayAmPeak(), options);
  EXPECT_TRUE(replica.ok()) << replica.status();
  return replica.ok() ? std::move(replica).value() : nullptr;
}

TEST(DistributedE2eTest, RouterOverPrimaryAndThreeReplicasMatchesTheOracle) {
  // The oracle: a plain in-process AqServer fed the identical mutation
  // sequence. POI id assignment is deterministic, so its ids — and its
  // answers — are exactly what the distributed tier must produce.
  serve::AqServer oracle(testing::TinyCity(), gtfs::WeekdayAmPeak());
  const geo::Point centre = oracle.base_city().Centre();
  const geo::BBox& extent = oracle.base_city().extent;
  const geo::Point corner{extent.min_x, extent.min_y};

  // The primary: same city, logging every mutation to the shared WAL.
  serve::AqServer::Options primary_options;
  primary_options.num_threads = 2;
  serve::AqServer primary_server(testing::TinyCity(), gtfs::WeekdayAmPeak(),
                                 primary_options);
  const std::string wal_dir = TempPath("wal");
  auto wal = wal::MutationWal::Open(wal_dir);
  ASSERT_TRUE(wal.ok()) << wal.status();
  ASSERT_TRUE(primary_server.AttachWal(wal.value().get()).ok());
  AqTcpServer primary_tcp(&primary_server, AqTcpServer::Options());
  ASSERT_TRUE(primary_tcp.Start().ok());

  // Three replicas bootstrapped from the primary's sequence-0 snapshot.
  const std::string snapshot = TempPath("snapshot");
  ASSERT_TRUE(primary_server.ExportSnapshot(snapshot).ok());
  std::vector<std::unique_ptr<Replica>> replicas;
  for (int i = 0; i < 3; ++i) {
    replicas.push_back(StartReplica(snapshot, wal_dir));
    ASSERT_NE(replicas.back(), nullptr);
  }

  // max_attempts covers every backend, so a killed replica plus a couple
  // of behind-the-floor ones can never exhaust a read's budget.
  std::vector<Backend> backends{{"127.0.0.1", primary_tcp.port()}};
  for (const auto& replica : replicas) {
    backends.push_back(Backend{"127.0.0.1", replica->port()});
  }
  QueryRouter::Options router_options;
  router_options.max_attempts = static_cast<int>(backends.size());
  QueryRouter router({backends}, router_options);
  const ShardKey key{"covely", "am-peak"};

  // The deterministic mix: queries alternating category and path, with a
  // mutation every third step. POI edits first, then the five disruption
  // kinds — so the restarted replica replays timetable mutations too.
  // Every mutation is mirrored into the oracle; every query is checked
  // against it bit for bit.
  const std::vector<wal::MutationRecord> script = {
      wal::MutationRecord::AddPoi(0, synth::PoiCategory::kSchool, corner, 0),
      wal::MutationRecord::AddPoi(0, synth::PoiCategory::kHospital, centre, 0),
      wal::MutationRecord::RemovePoi(0, 0),  // removes the school added above
      wal::MutationRecord::SetInterval(0, gtfs::WeekdayPmPeak()),
      wal::MutationRecord::AddPoi(0, synth::PoiCategory::kJobCenter, centre, 0),
      wal::MutationRecord::SetInterval(0, gtfs::WeekdayAmPeak()),
      wal::MutationRecord::SuspendRoute(0, 0),
      wal::MutationRecord::CloseStop(
          0, testing::StopServedOutsideRoute(oracle.base_city().feed, 0)),
      wal::MutationRecord::ScaleHeadway(0, wal::kAllTargets, 2),
      wal::MutationRecord::SetFare(0, wal::kAllTargets, 4.25),
      wal::MutationRecord::ScaleWalkSpeed(0, 0.5),
  };
  size_t next_mutation = 0;
  uint32_t first_added_id = 0;
  uint64_t expected_sequence = 0;
  const uint16_t killed_port = replicas[0]->port();

  for (int step = 0; step < 36; ++step) {
    if (step == 11) {
      // Kill replica 0 mid-run: its connections die, the router fails
      // over, and nobody gets a wrong (or torn) answer.
      replicas[0]->Stop();
      replicas[0].reset();
    }
    if (step == 17) {
      // Restart it on the same port as a fresh object: bootstrap from the
      // original snapshot again, catch up from the WAL alone.
      replicas[0] = StartReplica(snapshot, wal_dir, killed_port);
      ASSERT_NE(replicas[0], nullptr);
      ASSERT_TRUE(
          replicas[0]->CatchUp(expected_sequence, /*timeout_s=*/20.0).ok());
    }

    if (step % 3 == 2 && next_mutation < script.size()) {
      wal::MutationRecord mutation = script[next_mutation++];
      if (mutation.type == wal::MutationType::kRemovePoi) {
        mutation.poi_id = first_added_id;
      }
      util::Result<MutateResultMsg> remote = util::Status::Internal("");
      util::Result<serve::ScenarioStore::MutationReport> local =
          util::Status::Internal("");
      switch (mutation.type) {
        case wal::MutationType::kAddPoi:
          remote = router.AddPoi(key, mutation.category, mutation.position);
          local = oracle.AddPoi(mutation.category, mutation.position);
          break;
        case wal::MutationType::kRemovePoi:
          remote = router.RemovePoi(key, mutation.poi_id);
          local = oracle.RemovePoi(mutation.poi_id);
          break;
        case wal::MutationType::kSetInterval:
          remote = router.SetInterval(key, mutation.interval);
          local = oracle.SetInterval(mutation.interval);
          break;
        case wal::MutationType::kSuspendRoute:
          remote = router.SuspendRoute(key, mutation.target);
          local = oracle.SuspendRoute(mutation.target);
          break;
        case wal::MutationType::kCloseStop:
          remote = router.CloseStop(key, mutation.target);
          local = oracle.CloseStop(mutation.target);
          break;
        case wal::MutationType::kScaleHeadway:
          remote = router.ScaleHeadway(key, mutation.target, mutation.factor);
          local = oracle.ScaleHeadway(mutation.target, mutation.factor);
          break;
        case wal::MutationType::kSetFare:
          remote = router.SetFare(key, mutation.target, mutation.value);
          local = oracle.SetFare(mutation.target, mutation.value);
          break;
        case wal::MutationType::kScaleWalkSpeed:
          remote = router.ScaleWalkSpeed(key, mutation.value);
          local = oracle.ScaleWalkSpeed(mutation.value);
          break;
      }
      ASSERT_TRUE(remote.ok()) << "step " << step << ": " << remote.status();
      ASSERT_TRUE(local.ok()) << "step " << step << ": " << local.status();
      ++expected_sequence;
      EXPECT_EQ(remote.value().sequence, expected_sequence) << "step " << step;
      // The distributed tier assigned the same POI id the oracle did —
      // the invariant that makes replay (and this whole test) line up.
      EXPECT_EQ(remote.value().report.poi_id, local.value().poi_id)
          << "step " << step;
      if (mutation.type == wal::MutationType::kAddPoi &&
          first_added_id == 0) {
        first_added_id = remote.value().report.poi_id;
      }
    } else {
      serve::AqRequest request =
          (step % 2 == 0) ? FastExactRequest(synth::PoiCategory::kSchool)
                          : FastExactRequest(synth::PoiCategory::kHospital);
      if (step % 5 == 0) request = FastSsrRequest();
      auto remote = router.Query(key, request);
      ASSERT_TRUE(remote.ok()) << "step " << step << ": " << remote.status();
      EXPECT_GE(remote.value().sequence, expected_sequence) << "step " << step;
      auto golden = oracle.QueryUncached(request);
      ASSERT_TRUE(golden.ok()) << golden.status();
      ExpectSameAnswer(remote.value().result, golden.value());
    }
  }

  ASSERT_EQ(next_mutation, script.size());  // the whole script ran
  EXPECT_EQ(primary_server.sequence(), expected_sequence);
  // The kill cost at least one failover, never a wrong answer.
  EXPECT_GE(router.stats().failovers, 1u);

  // The restarted replica independently reaches the primary's state: a
  // direct read pinned to the final sequence is bit-identical too.
  ASSERT_TRUE(
      replicas[0]->CatchUp(expected_sequence, /*timeout_s=*/20.0).ok());
  EXPECT_FALSE(replicas[0]->diverged());
  auto direct = AqClient::Connect("127.0.0.1", replicas[0]->port());
  ASSERT_TRUE(direct.ok()) << direct.status();
  // JT plus generalized cost: the fare disruption only shows in the latter.
  serve::AqRequest gac = FastExactRequest();
  gac.options.cost = core::CostKind::kGeneralizedCost;
  for (const serve::AqRequest& request : {FastExactRequest(), gac}) {
    auto pinned = direct.value().Query(request, expected_sequence);
    ASSERT_TRUE(pinned.ok()) << pinned.status();
    auto golden = oracle.QueryUncached(request);
    ASSERT_TRUE(golden.ok());
    ExpectSameAnswer(pinned.value().result, golden.value());
  }

  for (auto& replica : replicas) replica->Stop();
  primary_tcp.Stop();
}

}  // namespace
}  // namespace staq::net
