// Fault injection for staq::net: every socket failure site degrades into
// a clean kUnavailable — a failed dial is retryable, a failed accept never
// takes the server down, and a torn read/write costs one connection, not
// the process. Sites covered (see DESIGN.md §8): net.connect, net.accept,
// net.read, net.write.
//
// Failpoints are process-wide, so client and server threads evaluate the
// same sites. Tests arm ThrowOnce and assert outcomes that hold whichever
// thread consumes the trip.
#include <memory>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/router.h"
#include "net/server.h"
#include "net_testing.h"
#include "testing/test_city.h"
#include "util/failpoint.h"

namespace staq::net {
namespace {

using net_testing::FastExactRequest;

class NetFailPointTest : public ::testing::Test {
 protected:
  NetFailPointTest() {
    serve::AqServer::Options options;
    options.num_threads = 2;
    server_ = std::make_unique<serve::AqServer>(testing::TinyCity(),
                                                gtfs::WeekdayAmPeak(), options);
    tcp_ = std::make_unique<AqTcpServer>(server_.get(), AqTcpServer::Options());
    auto started = tcp_->Start();
    EXPECT_TRUE(started.ok()) << started;
  }

  ~NetFailPointTest() override { util::FailPoints::DisarmAll(); }

  std::unique_ptr<serve::AqServer> server_;
  std::unique_ptr<AqTcpServer> tcp_;
};

TEST_F(NetFailPointTest, ConnectFailureIsUnavailableAndRetryable) {
  {
    util::ScopedFailPoint fp("net.connect",
                             util::FailPointConfig::ThrowOnce());
    auto client = AqClient::Connect("127.0.0.1", tcp_->port());
    ASSERT_FALSE(client.ok());
    EXPECT_EQ(client.status().code(), util::StatusCode::kUnavailable);
  }
  // The exact failure a dead backend produces — so the caller's retry
  // logic (the router) needs no special case; a plain redial works.
  auto retry = AqClient::Connect("127.0.0.1", tcp_->port());
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_TRUE(retry.value().Info().ok());
}

TEST_F(NetFailPointTest, AcceptFailureNeverTakesTheServerDown) {
  util::ScopedFailPoint fp("net.accept", util::FailPointConfig::ThrowOnce());
  // The accept loop hits the site when it next enters Accept — either
  // before this dial or right after serving it. Both dials must land:
  // one bad accept is logged and skipped, never fatal.
  auto first = AqClient::Connect("127.0.0.1", tcp_->port());
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = AqClient::Connect("127.0.0.1", tcp_->port());
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(first.value().Info().ok());
  EXPECT_TRUE(second.value().Info().ok());
  EXPECT_TRUE(tcp_->running());
}

TEST_F(NetFailPointTest, ReadFailureCostsAtMostOneConnection) {
  auto client = AqClient::Connect("127.0.0.1", tcp_->port());
  ASSERT_TRUE(client.ok());

  {
    util::ScopedFailPoint fp("net.read", util::FailPointConfig::ThrowOnce());
    // Whoever consumes the trip — the client reading the reply, or the
    // server's handler reading the next frame — the call either fails
    // kUnavailable or completes against a connection the server then
    // drops. Never a crash, never a wrong answer.
    auto info = client.value().Info();
    if (!info.ok()) {
      EXPECT_EQ(info.status().code(), util::StatusCode::kUnavailable);
    }
  }

  // The damage is confined to that one connection: a fresh dial works.
  auto fresh = AqClient::Connect("127.0.0.1", tcp_->port());
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_TRUE(fresh.value().Info().ok());
  EXPECT_TRUE(tcp_->running());
}

TEST_F(NetFailPointTest, WriteFailureDropsTheConnectionCleanly) {
  auto client = AqClient::Connect("127.0.0.1", tcp_->port());
  ASSERT_TRUE(client.ok());

  {
    util::ScopedFailPoint fp("net.write",
                             util::FailPointConfig::ThrowOnce());
    // The client's send trips first (the server only writes in response
    // to a frame it never receives). A half-written frame poisons the
    // stream, so the client drops the connection rather than desync.
    auto info = client.value().Info();
    ASSERT_FALSE(info.ok());
    EXPECT_EQ(info.status().code(), util::StatusCode::kUnavailable);
  }
  EXPECT_FALSE(client.value().connected());

  auto fresh = AqClient::Connect("127.0.0.1", tcp_->port());
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_TRUE(fresh.value().Info().ok());
}

TEST_F(NetFailPointTest, RouterFailsOverAnInjectedConnectFault) {
  // Two backend slots onto the same live server: the injected dial
  // failure burns the first slot and failover lands on the second.
  Backend address{"127.0.0.1", tcp_->port()};
  QueryRouter router({{address, address}});
  ShardKey key{"covely", "am"};

  util::ScopedFailPoint fp("net.connect", util::FailPointConfig::ThrowOnce());
  auto result = router.Query(key, FastExactRequest());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(router.stats().failovers, 1u);

  auto golden = server_->QueryUncached(FastExactRequest());
  ASSERT_TRUE(golden.ok());
  net_testing::ExpectSameAnswer(result.value().result, golden.value());
}

}  // namespace
}  // namespace staq::net
