// Disruption replication: all five disruption kinds flow primary -> WAL ->
// replica and land bit-identically (for both city families), travel over
// real TCP through AqClient, and ApplyMutation validates replayed records
// before touching the store.
#include <filesystem>
#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/replica.h"
#include "net/server.h"
#include "net_testing.h"
#include "serve/server.h"
#include "testing/test_city.h"
#include "wal/wal.h"

namespace staq::net {
namespace {

namespace fs = std::filesystem;

using net_testing::ExpectSameAnswer;
using net_testing::FastExactRequest;

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "staq_disrepl_" + name;
  fs::remove_all(path);
  return path;
}

serve::AqRequest GacRequest() {
  serve::AqRequest request = FastExactRequest();
  request.options.cost = core::CostKind::kGeneralizedCost;
  return request;
}

/// Applies the canonical five-kind disruption chain to `server`. The stop
/// closure targets a stop still served after route 0 is withdrawn.
void ApplyAllKinds(serve::AqServer* server) {
  ASSERT_TRUE(server->SuspendRoute(0).ok());
  ASSERT_TRUE(
      server
          ->CloseStop(testing::StopServedOutsideRoute(
              server->base_city().feed, 0))
          .ok());
  ASSERT_TRUE(server->ScaleHeadway(scenario::kAllRoutes, 2).ok());
  ASSERT_TRUE(server->SetFare(scenario::kAllRoutes, 4.25).ok());
  ASSERT_TRUE(server->ScaleWalkSpeed(0.5).ok());
}

void RunDisruptionReplication(synth::City primary_city,
                              synth::City replica_city,
                              const std::string& name) {
  serve::AqServer::Options options;
  options.num_threads = 2;
  serve::AqServer primary(std::move(primary_city), gtfs::WeekdayAmPeak(),
                          options);
  const std::string wal_dir = TempPath(name);
  auto wal = wal::MutationWal::Open(wal_dir);
  ASSERT_TRUE(wal.ok()) << wal.status();
  ASSERT_TRUE(primary.AttachWal(wal.value().get()).ok());

  // Snapshot at sequence 0: every disruption must come from the log.
  const std::string snapshot = TempPath(name + "_snap");
  ASSERT_TRUE(primary.ExportSnapshot(snapshot).ok());

  ApplyAllKinds(&primary);
  ASSERT_EQ(primary.sequence(), 5u);
  ASSERT_TRUE(wal::VerifyLog(wal_dir).ok());

  serve::AqServer::Options replica_options;
  replica_options.num_threads = 2;
  replica_options.warm_start_path = snapshot;
  serve::AqServer replica(std::move(replica_city), gtfs::WeekdayAmPeak(),
                          replica_options);
  ASSERT_TRUE(replica.warm_started());
  auto replayed = ReplayLog(&replica, wal_dir);
  ASSERT_TRUE(replayed.ok()) << replayed;
  EXPECT_EQ(replica.sequence(), 5u);

  // Bit-identical answers on the disrupted network, JT and GAC (the fare
  // shock only shows in the latter, the walk rescale in both).
  for (const serve::AqRequest& request : {FastExactRequest(), GacRequest()}) {
    auto golden = primary.QueryUncached(request);
    ASSERT_TRUE(golden.ok()) << golden.status();
    auto answer = replica.QueryUncached(request);
    ASSERT_TRUE(answer.ok()) << answer.status();
    ExpectSameAnswer(answer.value(), golden.value());
  }
}

TEST(DisruptionReplicationTest, CovelyReplicaIsBitIdentical) {
  RunDisruptionReplication(testing::TinyCity(), testing::TinyCity(),
                           "covely");
}

TEST(DisruptionReplicationTest, BrindaleReplicaIsBitIdentical) {
  auto a = synth::BuildCity(synth::CitySpec::Brindale(0.03, 7));
  auto b = synth::BuildCity(synth::CitySpec::Brindale(0.03, 7));
  ASSERT_TRUE(a.ok() && b.ok());
  RunDisruptionReplication(std::move(a).value(), std::move(b).value(),
                           "brindale");
}

TEST(DisruptionReplicationTest, AllKindsTravelOverTcp) {
  // The oracle applies the chain in-process; the same chain goes through
  // AqClient's typed mutation calls over loopback TCP.
  serve::AqServer oracle(testing::TinyCity(), gtfs::WeekdayAmPeak());
  ApplyAllKinds(&oracle);

  serve::AqServer server(testing::TinyCity(), gtfs::WeekdayAmPeak());
  AqTcpServer tcp(&server, AqTcpServer::Options());
  ASSERT_TRUE(tcp.Start().ok());
  auto client = AqClient::Connect("127.0.0.1", tcp.port());
  ASSERT_TRUE(client.ok()) << client.status();

  auto suspended = client.value().SuspendRoute(0);
  ASSERT_TRUE(suspended.ok()) << suspended.status();
  EXPECT_EQ(suspended.value().sequence, 1u);
  ASSERT_TRUE(client.value()
                  .CloseStop(testing::StopServedOutsideRoute(
                      server.base_city().feed, 0))
                  .ok());
  ASSERT_TRUE(client.value().ScaleHeadway(wal::kAllTargets, 2).ok());
  ASSERT_TRUE(client.value().SetFare(wal::kAllTargets, 4.25).ok());
  auto snowed = client.value().ScaleWalkSpeed(0.5);
  ASSERT_TRUE(snowed.ok()) << snowed.status();
  EXPECT_EQ(snowed.value().sequence, 5u);

  // Out-of-domain requests come back as clean remote errors.
  auto bad = client.value().SuspendRoute(100000);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(server.sequence(), 5u);

  auto remote = client.value().Query(FastExactRequest(), /*min_sequence=*/5);
  ASSERT_TRUE(remote.ok()) << remote.status();
  auto golden = oracle.QueryUncached(FastExactRequest());
  ASSERT_TRUE(golden.ok());
  ExpectSameAnswer(remote.value().result, golden.value());
  tcp.Stop();
}

TEST(DisruptionReplicationTest, ApplyMutationValidatesBeforeApplying) {
  serve::AqServer server(testing::TinyCity(), gtfs::WeekdayAmPeak());

  // A sequence gap is an aborted replay, not a fork.
  auto gap = server.ApplyMutation(wal::MutationRecord::SuspendRoute(2, 0));
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.status().code(), util::StatusCode::kAborted);
  EXPECT_EQ(server.sequence(), 0u);

  // A well-sequenced record with an out-of-range target fails cleanly and
  // leaves the history position unchanged.
  auto bad =
      server.ApplyMutation(wal::MutationRecord::SuspendRoute(1, 100000));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(server.sequence(), 0u);
  EXPECT_EQ(server.Snapshot()->network_version(), 0u);

  // The valid record applies and advances the chain.
  auto good = server.ApplyMutation(wal::MutationRecord::SuspendRoute(1, 0));
  ASSERT_TRUE(good.ok()) << good.status();
  EXPECT_EQ(server.sequence(), 1u);
  EXPECT_EQ(server.Snapshot()->network_version(), 1u);
}

}  // namespace
}  // namespace staq::net
