// Shared fixtures for the net test suites: fast requests against the tiny
// test city and the bit-identity comparator the distributed tests assert
// with (same shape as the serve suite's).
#pragma once

#include <gtest/gtest.h>

#include "core/access_query.h"
#include "serve/request.h"

namespace staq::net_testing {

inline serve::AqRequest FastExactRequest(
    synth::PoiCategory category = synth::PoiCategory::kSchool) {
  serve::AqRequest request;
  request.category = category;
  request.options.exact = true;
  request.options.gravity.sample_rate_per_hour = 4;
  request.options.gravity.keep_scale = 2.0;
  request.options.seed = 3;
  return request;
}

inline serve::AqRequest FastSsrRequest() {
  serve::AqRequest request = FastExactRequest();
  request.options.exact = false;
  request.options.beta = 0.2;
  request.options.model = ml::ModelKind::kOls;
  return request;
}

/// Payload equality between two answers — everything except the cost
/// accounting fields (spqs/elapsed differ between cached, incremental, and
/// remote paths by design). Doubles compare bit-identically: the wire
/// carries raw IEEE bits, so "same answer" means EXACTLY the same.
inline void ExpectSameAnswer(const core::AccessQueryResult& a,
                             const core::AccessQueryResult& b) {
  ASSERT_EQ(a.mac.size(), b.mac.size());
  for (size_t z = 0; z < a.mac.size(); ++z) {
    EXPECT_EQ(a.mac[z], b.mac[z]) << "zone " << z;
    EXPECT_EQ(a.acsd[z], b.acsd[z]) << "zone " << z;
  }
  EXPECT_EQ(a.classes, b.classes);
  EXPECT_EQ(a.mean_mac, b.mean_mac);
  EXPECT_EQ(a.mean_acsd, b.mean_acsd);
  EXPECT_EQ(a.fairness, b.fairness);
  EXPECT_EQ(a.population_fairness, b.population_fairness);
  EXPECT_EQ(a.vulnerable_fairness, b.vulnerable_fairness);
  EXPECT_EQ(a.gravity_trips, b.gravity_trips);
}

}  // namespace staq::net_testing
