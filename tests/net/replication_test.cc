// Replication: a replica bootstrapped from the primary's snapshot plus a
// WAL replay answers bit-identically to the primary — for both city
// families — a live replica tails the log, divergence aborts application
// instead of forking history, and a restarting primary recovers through
// the same snapshot+replay path before re-attaching its WAL.
#include "net/replica.h"

#include <filesystem>
#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net_testing.h"
#include "serve/server.h"
#include "testing/test_city.h"
#include "wal/wal.h"

namespace staq::net {
namespace {

namespace fs = std::filesystem;

using net_testing::ExpectSameAnswer;
using net_testing::FastExactRequest;
using net_testing::FastSsrRequest;

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "staq_repl_" + name;
  fs::remove_all(path);
  return path;
}

synth::City BrindaleCity() {
  auto built = synth::BuildCity(synth::CitySpec::Brindale(0.03, 7));
  if (!built.ok()) std::abort();
  return std::move(built).value();
}

/// A logging primary: an AqServer with an attached WAL, the way the
/// distributed quickstart runs one.
struct Primary {
  Primary(synth::City city, const std::string& name)
      : wal_dir(TempPath(name)) {
    serve::AqServer::Options options;
    options.num_threads = 2;
    server = std::make_unique<serve::AqServer>(
        std::move(city), gtfs::WeekdayAmPeak(), options);
    auto opened = wal::MutationWal::Open(wal_dir);
    EXPECT_TRUE(opened.ok()) << opened.status();
    wal = std::move(opened).value();
    auto attached = server->AttachWal(wal.get());
    EXPECT_TRUE(attached.ok()) << attached;
  }

  std::string wal_dir;
  std::unique_ptr<serve::AqServer> server;
  std::unique_ptr<wal::MutationWal> wal;
};

/// The golden scenario: chained edits (later ones depend on the POI id an
/// earlier one assigned), a snapshot exported mid-chain, and a replica
/// that must land bit-identical to the primary after replaying the rest.
void RunGoldenReplication(synth::City city, const std::string& name) {
  Primary primary(std::move(city), name);
  const geo::Point centre = primary.server->base_city().Centre();
  const geo::BBox& extent = primary.server->base_city().extent;

  auto school = primary.server->AddPoi(synth::PoiCategory::kSchool,
                                       geo::Point{extent.min_x, extent.min_y});
  ASSERT_TRUE(school.ok()) << school.status();
  auto hospital =
      primary.server->AddPoi(synth::PoiCategory::kHospital, centre);
  ASSERT_TRUE(hospital.ok()) << hospital.status();

  // Snapshot at sequence 2; everything after must come from the log.
  const std::string snapshot = TempPath(name + "_snap");
  ASSERT_TRUE(primary.server->ExportSnapshot(snapshot).ok());

  // The chained half: removing the school only replays correctly if the
  // replica assigned it the identical id.
  auto removed = primary.server->RemovePoi(school.value().poi_id);
  ASSERT_TRUE(removed.ok()) << removed.status();
  auto switched = primary.server->SetInterval(gtfs::WeekdayPmPeak());
  ASSERT_TRUE(switched.ok()) << switched.status();
  auto park = primary.server->AddPoi(synth::PoiCategory::kJobCenter, centre);
  ASSERT_TRUE(park.ok()) << park.status();
  ASSERT_EQ(primary.server->sequence(), 5u);

  // Bootstrap: warm start from the snapshot, then replay the tail.
  serve::AqServer::Options options;
  options.num_threads = 2;
  options.warm_start_path = snapshot;
  serve::AqServer replica(primary.server->base_city(), gtfs::WeekdayAmPeak(),
                          options);
  ASSERT_TRUE(replica.warm_started());
  EXPECT_EQ(replica.sequence(), 2u);  // the snapshot's source sequence
  auto replayed = ReplayLog(&replica, primary.wal_dir);
  ASSERT_TRUE(replayed.ok()) << replayed;
  EXPECT_EQ(replica.sequence(), 5u);
  EXPECT_EQ(replica.epoch(), 3u);  // local epochs restart per process

  // Bit-identical answers on both query paths, for two categories.
  for (synth::PoiCategory category :
       {synth::PoiCategory::kSchool, synth::PoiCategory::kHospital}) {
    auto golden = primary.server->QueryUncached(FastExactRequest(category));
    ASSERT_TRUE(golden.ok()) << golden.status();
    auto answer = replica.QueryUncached(FastExactRequest(category));
    ASSERT_TRUE(answer.ok()) << answer.status();
    ExpectSameAnswer(answer.value(), golden.value());
  }
  auto golden_ssr = primary.server->QueryUncached(FastSsrRequest());
  ASSERT_TRUE(golden_ssr.ok());
  auto answer_ssr = replica.QueryUncached(FastSsrRequest());
  ASSERT_TRUE(answer_ssr.ok());
  ExpectSameAnswer(answer_ssr.value(), golden_ssr.value());
}

TEST(ReplicationGoldenTest, CovelyReplicaIsBitIdentical) {
  RunGoldenReplication(testing::TinyCity(), "covely");
}

TEST(ReplicationGoldenTest, BrindaleReplicaIsBitIdentical) {
  RunGoldenReplication(BrindaleCity(), "brindale");
}

TEST(ReplicaTest, TailsThePrimaryAndServesConsistentReads) {
  Primary primary(testing::TinyCity(), "tail");
  const geo::Point centre = primary.server->base_city().Centre();
  ASSERT_TRUE(
      primary.server->AddPoi(synth::PoiCategory::kSchool, centre).ok());

  const std::string snapshot = TempPath("tail_snap");
  ASSERT_TRUE(primary.server->ExportSnapshot(snapshot).ok());

  Replica::Options options;
  options.snapshot_path = snapshot;
  options.wal_dir = primary.wal_dir;
  options.serve.num_threads = 2;
  auto replica = Replica::Start(primary.server->base_city(),
                                gtfs::WeekdayAmPeak(), options);
  ASSERT_TRUE(replica.ok()) << replica.status();
  EXPECT_EQ(replica.value()->sequence(), 1u);

  // Mutations after the replica started arrive via the tail thread.
  auto hospital =
      primary.server->AddPoi(synth::PoiCategory::kHospital, centre);
  ASSERT_TRUE(hospital.ok());
  ASSERT_TRUE(primary.server->SetInterval(gtfs::WeekdayPmPeak()).ok());
  ASSERT_EQ(primary.server->sequence(), 3u);
  ASSERT_TRUE(replica.value()->CatchUp(3, /*timeout_s=*/10.0).ok());
  EXPECT_FALSE(replica.value()->diverged());

  // Epoch-consistent remote reads: demanding the primary's sequence from
  // the caught-up replica succeeds, and the answer is the primary's bit
  // for bit. Mutations stay refused (the replica is forced read-only).
  auto client = AqClient::Connect("127.0.0.1", replica.value()->port());
  ASSERT_TRUE(client.ok()) << client.status();
  auto remote = client.value().Query(FastExactRequest(), /*min_sequence=*/3);
  ASSERT_TRUE(remote.ok()) << remote.status();
  EXPECT_GE(remote.value().sequence, 3u);
  auto golden = primary.server->QueryUncached(FastExactRequest());
  ASSERT_TRUE(golden.ok());
  ExpectSameAnswer(remote.value().result, golden.value());

  auto refused =
      client.value().AddPoi(synth::PoiCategory::kSchool, geo::Point{0, 0});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), util::StatusCode::kFailedPrecondition);

  replica.value()->Stop();  // idempotent with ~Replica
}

TEST(ReplicaTest, RefusesToStartWithoutAUsableSnapshot) {
  Replica::Options options;
  options.wal_dir = TempPath("nosnap_wal");
  auto missing_path =
      Replica::Start(testing::TinyCity(), gtfs::WeekdayAmPeak(), options);
  ASSERT_FALSE(missing_path.ok());
  EXPECT_EQ(missing_path.status().code(),
            util::StatusCode::kInvalidArgument);

  // A snapshot that fails to load degrades the AqServer to a cold build —
  // which a replica must refuse to serve, not silently impersonate.
  options.snapshot_path = TempPath("nosnap_snapshot") + "/absent.staq";
  auto cold = Replica::Start(testing::TinyCity(), gtfs::WeekdayAmPeak(),
                             options);
  ASSERT_FALSE(cold.ok());
  EXPECT_EQ(cold.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(ReplicaTest, BootstrapDivergenceAbortsStart) {
  // A log whose AddPoi claims a POI id the deterministic assignment will
  // not produce: replaying it can only fork history, so Start must refuse.
  serve::AqServer probe(testing::TinyCity(), gtfs::WeekdayAmPeak());
  const geo::Point centre = probe.base_city().Centre();
  auto assigned = probe.AddPoi(synth::PoiCategory::kSchool, centre);
  ASSERT_TRUE(assigned.ok());

  serve::AqServer primary(testing::TinyCity(), gtfs::WeekdayAmPeak());
  const std::string snapshot = TempPath("diverge_snap");
  ASSERT_TRUE(primary.ExportSnapshot(snapshot).ok());

  const std::string wal_dir = TempPath("diverge_wal");
  {
    auto wal = wal::MutationWal::Open(wal_dir);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()
                    ->Append(wal::MutationRecord::AddPoi(
                        1, synth::PoiCategory::kSchool, centre,
                        assigned.value().poi_id + 7))
                    .ok());
  }

  Replica::Options options;
  options.snapshot_path = snapshot;
  options.wal_dir = wal_dir;
  auto replica = Replica::Start(testing::TinyCity(), gtfs::WeekdayAmPeak(),
                                options);
  ASSERT_FALSE(replica.ok());
  EXPECT_EQ(replica.status().code(), util::StatusCode::kAborted);
}

TEST(ApplyMutationTest, SequenceGapsAndIdMismatchesAreAborted) {
  serve::AqServer reference(testing::TinyCity(), gtfs::WeekdayAmPeak());
  const geo::Point centre = reference.base_city().Centre();
  auto assigned = reference.AddPoi(synth::PoiCategory::kSchool, centre);
  ASSERT_TRUE(assigned.ok());
  const uint32_t real_id = assigned.value().poi_id;

  serve::AqServer server(testing::TinyCity(), gtfs::WeekdayAmPeak());
  // Record #2 cannot extend a history at sequence 0.
  auto gap = server.ApplyMutation(wal::MutationRecord::AddPoi(
      2, synth::PoiCategory::kSchool, centre, real_id));
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.status().code(), util::StatusCode::kAborted);
  EXPECT_EQ(server.sequence(), 0u);  // refused cleanly, nothing applied

  // Right sequence, wrong id: the local deterministic assignment disagrees
  // with the log, so applying would diverge silently everywhere.
  auto mismatch = server.ApplyMutation(wal::MutationRecord::AddPoi(
      1, synth::PoiCategory::kSchool, centre, real_id + 7));
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), util::StatusCode::kAborted);
  EXPECT_EQ(server.sequence(), 0u);

  // The well-formed record applies — and is not re-logged anywhere.
  auto applied = server.ApplyMutation(wal::MutationRecord::AddPoi(
      1, synth::PoiCategory::kSchool, centre, real_id));
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(applied.value().poi_id, real_id);
  EXPECT_EQ(server.sequence(), 1u);
}

TEST(PrimaryRestartTest, RecoversThroughSnapshotAndReplayThenReattaches) {
  std::string wal_dir;
  std::string snapshot = TempPath("restart_snap");
  {
    Primary primary(testing::TinyCity(), "restart");
    wal_dir = primary.wal_dir;
    const geo::Point centre = primary.server->base_city().Centre();
    ASSERT_TRUE(
        primary.server->AddPoi(synth::PoiCategory::kSchool, centre).ok());
    ASSERT_TRUE(primary.server->ExportSnapshot(snapshot).ok());
    ASSERT_TRUE(
        primary.server->AddPoi(synth::PoiCategory::kHospital, centre).ok());
    ASSERT_TRUE(primary.server->SetInterval(gtfs::WeekdayPmPeak()).ok());
  }  // crash: the process is gone; snapshot + WAL are what survives

  serve::AqServer::Options options;
  options.num_threads = 2;
  options.warm_start_path = snapshot;
  serve::AqServer server(testing::TinyCity(), gtfs::WeekdayAmPeak(), options);
  ASSERT_TRUE(server.warm_started());

  auto wal = wal::MutationWal::Open(wal_dir);
  ASSERT_TRUE(wal.ok()) << wal.status();

  // Attach before replay must be refused: the WAL is ahead of the server
  // and logging from here would fork the sequence chain.
  EXPECT_EQ(server.AttachWal(wal.value().get()).code(),
            util::StatusCode::kFailedPrecondition);

  ASSERT_TRUE(ReplayLog(&server, wal_dir).ok());
  EXPECT_EQ(server.sequence(), 3u);
  ASSERT_TRUE(server.AttachWal(wal.value().get()).ok());

  // The restarted primary logs onwards in the same chain.
  ASSERT_TRUE(
      server.AddPoi(synth::PoiCategory::kJobCenter, server.base_city().Centre())
          .ok());
  EXPECT_EQ(server.sequence(), 4u);
  EXPECT_EQ(wal.value()->last_sequence(), 4u);
  EXPECT_TRUE(wal::VerifyLog(wal_dir).ok());
}

}  // namespace
}  // namespace staq::net
