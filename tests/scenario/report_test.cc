// Equity reports: CompareAccess folds two query answers into deltas,
// migration counts, and the worst zone; the JSON document round-trips
// bit-for-bit through ParseEquityReportJson; and the text rendering is
// deterministic.
#include "scenario/report.h"

#include <gtest/gtest.h>

namespace staq::scenario {
namespace {

core::AccessQueryResult MakeResult(std::vector<double> mac,
                                   std::vector<int> classes) {
  core::AccessQueryResult result;
  result.mac = std::move(mac);
  result.acsd.assign(result.mac.size(), 120.0);
  result.classes = std::move(classes);
  result.mean_mac = 0.0;
  for (double m : result.mac) result.mean_mac += m / result.mac.size();
  result.mean_acsd = 120.0;
  result.fairness = 0.875;
  result.population_fairness = 0.75;
  result.vulnerable_fairness = 0.5;
  return result;
}

TEST(CompareAccessTest, DeltasMigrationAndWorstZone) {
  std::vector<synth::Zone> zones(4);
  auto before = MakeResult({100, 200, 300, 400}, {0, 1, 2, 3});
  auto after = MakeResult({160, 200, 420.25, 400}, {1, 1, 3, 3});

  EquityReport report = CompareAccess("outage", "covely", zones, before, after);
  EXPECT_EQ(report.scenario, "outage");
  EXPECT_EQ(report.city, "covely");
  EXPECT_EQ(report.zones, 4u);

  ASSERT_EQ(report.mac_delta_s.size(), 4u);
  EXPECT_EQ(report.mac_delta_s[0], 60.0);
  EXPECT_EQ(report.mac_delta_s[1], 0.0);
  EXPECT_EQ(report.mac_delta_s[2], 120.25);
  EXPECT_EQ(report.mac_delta_s[3], 0.0);

  // Worst = largest MAC increase (access loss).
  EXPECT_EQ(report.worst.zone, 2u);
  EXPECT_EQ(report.worst.mac_delta_s, 120.25);

  EXPECT_EQ(report.migration[0][1], 1u);
  EXPECT_EQ(report.migration[1][1], 1u);
  EXPECT_EQ(report.migration[2][3], 1u);
  EXPECT_EQ(report.migration[3][3], 1u);
  EXPECT_EQ(report.migration[0][0], 0u);

  EXPECT_EQ(report.before.class_counts[0], 1u);
  EXPECT_EQ(report.after.class_counts[3], 2u);
  EXPECT_EQ(report.before.mean_mac, before.mean_mac);
  EXPECT_EQ(report.after.fairness, 0.875);
}

TEST(CompareAccessTest, WorstZoneTiesKeepTheLowestId) {
  std::vector<synth::Zone> zones(3);
  auto before = MakeResult({100, 100, 100}, {0, 0, 0});
  auto after = MakeResult({150, 150, 100}, {0, 0, 0});
  EquityReport report = CompareAccess("tie", "c", zones, before, after);
  EXPECT_EQ(report.worst.zone, 0u);
}

EquityReport SampleReport() {
  std::vector<synth::Zone> zones(4);
  auto before = MakeResult({100, 200, 300, 400}, {0, 1, 2, 3});
  auto after = MakeResult({160, 200, 420.25, 400}, {1, 1, 3, 3});
  EquityReport report =
      CompareAccess("snow \"day\"", "covely-0.06", zones, before, after);
  report.disruptions = {"scale_walk:0.5 => all routes",
                        "suspend_route:busiest => route 3"};
  report.mutation_seconds = 0.125;
  report.mutation_spqs = 4242;
  return report;
}

TEST(EquityReportJsonTest, RoundTripsEveryField) {
  EquityReport report = SampleReport();
  auto parsed = ParseEquityReportJson(EquityReportJson(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const EquityReport& r = parsed.value();

  EXPECT_EQ(r.scenario, report.scenario);  // quote survives escaping
  EXPECT_EQ(r.city, report.city);
  EXPECT_EQ(r.zones, report.zones);
  EXPECT_EQ(r.disruptions, report.disruptions);
  EXPECT_EQ(r.before.mean_mac, report.before.mean_mac);
  EXPECT_EQ(r.before.class_counts, report.before.class_counts);
  EXPECT_EQ(r.after.fairness, report.after.fairness);
  EXPECT_EQ(r.after.vulnerable_fairness, report.after.vulnerable_fairness);
  EXPECT_EQ(r.migration, report.migration);
  EXPECT_EQ(r.mac_delta_s, report.mac_delta_s);
  EXPECT_EQ(r.worst.zone, report.worst.zone);
  EXPECT_EQ(r.worst.mac_delta_s, report.worst.mac_delta_s);
  EXPECT_EQ(r.mutation_seconds, report.mutation_seconds);
  EXPECT_EQ(r.mutation_spqs, report.mutation_spqs);

  // Determinism: rendering the parsed report reproduces the document.
  EXPECT_EQ(EquityReportJson(r), EquityReportJson(report));
}

TEST(EquityReportJsonTest, RejectsIncompleteDocuments) {
  EXPECT_FALSE(ParseEquityReportJson("not json").ok());
  EXPECT_FALSE(ParseEquityReportJson("{}").ok());
  // A truncated but valid JSON document (missing the migration matrix).
  EXPECT_FALSE(ParseEquityReportJson(
                   "{\"scenario\": \"s\", \"city\": \"c\", \"zones\": 0, "
                   "\"before\": {}, \"after\": {}}")
                   .ok());
}

TEST(FormatEquityReportTest, RendersDeterministically) {
  EquityReport report = SampleReport();
  std::string text = FormatEquityReport(report);
  EXPECT_EQ(text, FormatEquityReport(report));
  // The resolved disruptions and the worst zone appear verbatim.
  EXPECT_NE(text.find("suspend_route:busiest => route 3"), std::string::npos);
  EXPECT_NE(text.find("worst zone: 2"), std::string::npos);
  EXPECT_NE(text.find("4242 patch SPQs"), std::string::npos);
}

}  // namespace
}  // namespace staq::scenario
