// Scenario pack files: the block grammar parses into ordered disruption
// lists, and every malformation — duplicate names, foreign keys, bad
// specs, empty packs — fails load with the scenario name attached.
#include "scenario/pack.h"

#include <gtest/gtest.h>

namespace staq::scenario {
namespace {

TEST(ScenarioPackTest, ParsesScenariosWithOrderedDisruptions) {
  auto pack = ScenarioPack::Parse(
      "# comments and blank lines are fine\n"
      "scenario trunk_outage {\n"
      "  disrupt = suspend_route:busiest\n"
      "}\n"
      "\n"
      "scenario snow_day {\n"
      "  disrupt = scale_walk:0.5, scale_headway:all:2, set_fare:all:4.0\n"
      "}\n");
  ASSERT_TRUE(pack.ok()) << pack.status();
  ASSERT_EQ(pack.value().scenarios.size(), 2u);

  const PackScenario& outage = pack.value().scenarios[0];
  EXPECT_EQ(outage.name, "trunk_outage");
  ASSERT_EQ(outage.disruptions.size(), 1u);
  EXPECT_EQ(outage.disruptions[0].kind, wal::MutationType::kSuspendRoute);
  EXPECT_EQ(outage.disruptions[0].selector, TargetSelector::kBusiest);

  // `disrupt` is an ordered application list — declaration order, never a
  // matrix expansion.
  const PackScenario& snow = pack.value().scenarios[1];
  ASSERT_EQ(snow.disruptions.size(), 3u);
  EXPECT_EQ(snow.disruptions[0].kind, wal::MutationType::kScaleWalkSpeed);
  EXPECT_EQ(snow.disruptions[1].kind, wal::MutationType::kScaleHeadway);
  EXPECT_EQ(snow.disruptions[2].kind, wal::MutationType::kSetFare);

  EXPECT_EQ(pack.value().Find("snow_day"), &snow);
  EXPECT_EQ(pack.value().Find("absent"), nullptr);
}

TEST(ScenarioPackTest, RejectsDuplicateScenarioNames) {
  auto pack = ScenarioPack::Parse(
      "scenario twice { disrupt = scale_walk:0.5 }\n"
      "scenario twice { disrupt = scale_walk:0.9 }\n");
  ASSERT_FALSE(pack.ok());
  EXPECT_NE(pack.status().message().find("twice"), std::string::npos);
}

TEST(ScenarioPackTest, RejectsForeignKeys) {
  auto pack = ScenarioPack::Parse(
      "scenario s { disrupt = scale_walk:0.5\n  city = covely }\n");
  ASSERT_FALSE(pack.ok());
  EXPECT_NE(pack.status().message().find("city"), std::string::npos);
}

TEST(ScenarioPackTest, RejectsBadSpecsWithTheScenarioNamed) {
  auto pack = ScenarioPack::Parse(
      "scenario broken { disrupt = suspend_route:all }\n");
  ASSERT_FALSE(pack.ok());
  EXPECT_EQ(pack.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(pack.status().message().find("broken"), std::string::npos);
  EXPECT_NE(pack.status().message().find("suspend_route:all"),
            std::string::npos);
}

TEST(ScenarioPackTest, RejectsEmptyPacks) {
  EXPECT_FALSE(ScenarioPack::Parse("").ok());
  EXPECT_FALSE(ScenarioPack::Parse("# only a comment\n").ok());
}

TEST(ScenarioPackTest, LoadFailsCleanlyOnAMissingFile) {
  auto pack = ScenarioPack::Load("/nonexistent/pack/file.pack");
  ASSERT_FALSE(pack.ok());
  EXPECT_EQ(pack.status().code(), util::StatusCode::kIoError);
}

TEST(ScenarioPackTest, CheckedInStandardPackParses) {
#ifdef STAQ_SOURCE_DIR
  auto pack = ScenarioPack::Load(std::string(STAQ_SOURCE_DIR) +
                                 "/scenarios/standard.pack");
  ASSERT_TRUE(pack.ok()) << pack.status();
  EXPECT_GE(pack.value().scenarios.size(), 5u);
  // Portability: the checked-in pack must never hard-code numeric ids, so
  // it runs against any city family or loaded GTFS feed.
  for (const PackScenario& scenario : pack.value().scenarios) {
    for (const Disruption& d : scenario.disruptions) {
      EXPECT_NE(d.selector, TargetSelector::kId)
          << scenario.name << ": " << d.spec;
    }
  }
#else
  GTEST_SKIP() << "source dir not wired";
#endif
}

}  // namespace
}  // namespace staq::scenario
