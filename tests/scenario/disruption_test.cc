// Disruption spec grammar and selector resolution: every kind parses,
// malformed and out-of-domain specs are rejected with the offending spec
// in the message, and `busiest` resolves deterministically with lowest-id
// tie-breaking.
#include "scenario/disruption.h"

#include <gtest/gtest.h>

#include "gtfs/feed_builder.h"
#include "testing/test_city.h"

namespace staq::scenario {
namespace {

TEST(DisruptionSpecTest, ParsesEveryKind) {
  auto suspend = ParseDisruptionSpec("suspend_route:7");
  ASSERT_TRUE(suspend.ok()) << suspend.status();
  EXPECT_EQ(suspend.value().kind, wal::MutationType::kSuspendRoute);
  EXPECT_EQ(suspend.value().selector, TargetSelector::kId);
  EXPECT_EQ(suspend.value().id, 7u);
  EXPECT_EQ(suspend.value().spec, "suspend_route:7");

  auto close = ParseDisruptionSpec("close_stop:busiest");
  ASSERT_TRUE(close.ok()) << close.status();
  EXPECT_EQ(close.value().kind, wal::MutationType::kCloseStop);
  EXPECT_EQ(close.value().selector, TargetSelector::kBusiest);

  auto thin = ParseDisruptionSpec("scale_headway:all:3");
  ASSERT_TRUE(thin.ok()) << thin.status();
  EXPECT_EQ(thin.value().kind, wal::MutationType::kScaleHeadway);
  EXPECT_EQ(thin.value().selector, TargetSelector::kAll);
  EXPECT_EQ(thin.value().factor, 3u);

  auto fare = ParseDisruptionSpec("set_fare:2:4.5");
  ASSERT_TRUE(fare.ok()) << fare.status();
  EXPECT_EQ(fare.value().kind, wal::MutationType::kSetFare);
  EXPECT_EQ(fare.value().selector, TargetSelector::kId);
  EXPECT_EQ(fare.value().id, 2u);
  EXPECT_DOUBLE_EQ(fare.value().value, 4.5);

  auto walk = ParseDisruptionSpec("scale_walk:0.5");
  ASSERT_TRUE(walk.ok()) << walk.status();
  EXPECT_EQ(walk.value().kind, wal::MutationType::kScaleWalkSpeed);
  EXPECT_DOUBLE_EQ(walk.value().value, 0.5);
}

TEST(DisruptionSpecTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                         // no kind at all
      "demolish_bridge:3",        // unknown kind
      "suspend_route",            // missing selector
      "suspend_route:all",        // 'all' not valid for suspensions
      "suspend_route:3:4",        // too many fields
      "close_stop:first",         // unknown selector word
      "close_stop:-1",            // signs are not part of the grammar
      "close_stop:3.5",           // ids are integers
      "scale_headway:all",        // missing factor
      "scale_headway:all:1",      // factor must be >= 2
      "scale_headway:all:x",      // non-numeric factor
      "set_fare:all",             // missing fare
      "set_fare:all:-2",          // negative fare
      "set_fare:all:abc",         // non-numeric fare
      "scale_walk:0",             // factor must be positive
      "scale_walk:-0.5",          //
      "scale_walk:fast",          //
      "scale_walk:0.5:0.5",       // too many fields
  };
  for (const char* spec : bad) {
    auto parsed = ParseDisruptionSpec(spec);
    EXPECT_FALSE(parsed.ok()) << "accepted '" << spec << "'";
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument);
      // The message names the offending spec, so a pack error is traceable.
      EXPECT_NE(parsed.status().message().find(spec), std::string::npos)
          << parsed.status().message();
    }
  }
}

/// Two routes with different trip counts and a shared mid-line stop: the
/// busiest answers are unambiguous and not index-0 defaults.
gtfs::Feed AsymmetricFeed() {
  gtfs::FeedBuilder builder;
  gtfs::StopId x = builder.AddStop("x", {0, 0});
  gtfs::StopId y = builder.AddStop("y", {1000, 0});
  gtfs::StopId z = builder.AddStop("z", {2000, 0});
  gtfs::RouteId r0 = builder.AddRoute("r0", 1.0);
  gtfs::RouteId r1 = builder.AddRoute("r1", 1.0);
  for (int k = 0; k < 2; ++k) {
    builder.BeginTrip(r0, gtfs::kEveryDay);
    (void)builder.AddCall(x, gtfs::MakeTime(7, 10 * k));
    (void)builder.AddCall(y, gtfs::MakeTime(7, 10 * k) + 300);
  }
  for (int k = 0; k < 3; ++k) {
    builder.BeginTrip(r1, gtfs::kEveryDay);
    (void)builder.AddCall(y, gtfs::MakeTime(8, 10 * k));
    (void)builder.AddCall(z, gtfs::MakeTime(8, 10 * k) + 300);
  }
  auto feed = builder.Build();
  EXPECT_TRUE(feed.ok());
  return std::move(feed).value();
}

TEST(BusiestTest, PicksMostTripsAndMostDepartures) {
  gtfs::Feed feed = AsymmetricFeed();
  auto route = BusiestRoute(feed);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route.value(), 1u);  // r1 runs 3 trips to r0's 2

  // y boards 3 departures (r1); x boards 2; z is a terminus only.
  auto stop = BusiestStop(feed);
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop.value(), 1u);
}

TEST(BusiestTest, TiesKeepTheLowestId) {
  // LineFeed: one route; stops s0 and s1 both board every one of the 12
  // trips (s2 is the terminus) — the tie must resolve to s0.
  gtfs::Feed feed = testing::LineFeed(600);
  auto route = BusiestRoute(feed);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route.value(), 0u);
  auto stop = BusiestStop(feed);
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop.value(), 0u);

  // TransferFeed: routes A and B both run 12 trips — ties to A (id 0).
  auto tied = BusiestRoute(testing::TransferFeed());
  ASSERT_TRUE(tied.ok());
  EXPECT_EQ(tied.value(), 0u);
}

TEST(ResolveDisruptionTest, ResolvesSelectorsIntoConcreteRecords) {
  gtfs::Feed feed = AsymmetricFeed();

  auto busiest = ParseDisruptionSpec("suspend_route:busiest");
  ASSERT_TRUE(busiest.ok());
  auto record = ResolveDisruption(busiest.value(), feed);
  ASSERT_TRUE(record.ok()) << record.status();
  EXPECT_EQ(record.value().type, wal::MutationType::kSuspendRoute);
  EXPECT_EQ(record.value().target, 1u);
  EXPECT_EQ(record.value().sequence, 0u);  // the primary assigns positions

  auto all = ParseDisruptionSpec("scale_headway:all:2");
  ASSERT_TRUE(all.ok());
  auto thin = ResolveDisruption(all.value(), feed);
  ASSERT_TRUE(thin.ok());
  EXPECT_EQ(thin.value().target, wal::kAllTargets);
  EXPECT_EQ(thin.value().factor, 2u);

  auto fare = ParseDisruptionSpec("set_fare:0:3.25");
  ASSERT_TRUE(fare.ok());
  auto shock = ResolveDisruption(fare.value(), feed);
  ASSERT_TRUE(shock.ok());
  EXPECT_EQ(shock.value().target, 0u);
  EXPECT_EQ(shock.value().value, 3.25);

  auto walk = ParseDisruptionSpec("scale_walk:0.75");
  ASSERT_TRUE(walk.ok());
  auto snow = ResolveDisruption(walk.value(), feed);
  ASSERT_TRUE(snow.ok());
  EXPECT_EQ(snow.value().type, wal::MutationType::kScaleWalkSpeed);
  EXPECT_EQ(snow.value().value, 0.75);
}

TEST(ResolveDisruptionTest, RangeChecksExplicitIds) {
  gtfs::Feed feed = AsymmetricFeed();  // 2 routes, 3 stops

  auto route = ParseDisruptionSpec("suspend_route:2");
  ASSERT_TRUE(route.ok());
  auto missing_route = ResolveDisruption(route.value(), feed);
  ASSERT_FALSE(missing_route.ok());
  EXPECT_EQ(missing_route.status().code(), util::StatusCode::kNotFound);

  auto stop = ParseDisruptionSpec("close_stop:3");
  ASSERT_TRUE(stop.ok());
  auto missing_stop = ResolveDisruption(stop.value(), feed);
  ASSERT_FALSE(missing_stop.ok());
  EXPECT_EQ(missing_stop.status().code(), util::StatusCode::kNotFound);

  // In-range ids pass the same check.
  auto ok_stop = ParseDisruptionSpec("close_stop:2");
  ASSERT_TRUE(ok_stop.ok());
  EXPECT_TRUE(ResolveDisruption(ok_stop.value(), feed).ok());
}

}  // namespace
}  // namespace staq::scenario
