// Pure timetable transforms and the affected-zone screen: the semantic
// core the disruption epochs and their replicas both rebuild from.
#include "scenario/transform.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "router/walk_table.h"
#include "scenario/impact.h"
#include "testing/test_city.h"

namespace staq::scenario {
namespace {

TEST(SuspendRouteTest, DropsEveryTripButKeepsTheRouteEntity) {
  gtfs::Feed feed = testing::TransferFeed();  // routes A and B, 12 trips each
  auto result = SuspendRoute(feed, 0);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_EQ(result.value().feed.num_routes(), feed.num_routes());
  EXPECT_EQ(result.value().feed.num_trips(), 12u);  // only B survives
  for (const gtfs::Trip& trip : result.value().feed.trips()) {
    EXPECT_EQ(trip.route, 1u);
  }
  // Removed trips are reported in *input* ids, one per suspended trip.
  EXPECT_EQ(result.value().removed_trips.size(), 12u);
  EXPECT_TRUE(result.value().feed.Validate().ok());
}

TEST(SuspendRouteTest, RejectsMissingRoutesAndEmptyResults) {
  gtfs::Feed line = testing::LineFeed();
  EXPECT_FALSE(SuspendRoute(line, 5).ok());
  // Suspending the only route would empty the timetable.
  EXPECT_FALSE(SuspendRoute(line, 0).ok());
}

TEST(CloseStopTest, RideThroughKeepsTripsRunning) {
  gtfs::Feed feed = testing::LineFeed(600);  // s0 -> s1 -> s2, 12 trips
  auto result = CloseStop(feed, 1);
  ASSERT_TRUE(result.ok()) << result.status();
  const gtfs::Feed& closed = result.value().feed;

  // Every trip still runs, skipping s1 with times at s0/s2 unchanged.
  EXPECT_EQ(closed.num_trips(), feed.num_trips());
  EXPECT_EQ(closed.num_stops(), feed.num_stops());  // the entity stays
  EXPECT_EQ(result.value().closed_stop, 1u);
  EXPECT_TRUE(result.value().removed_trips.empty());
  for (const gtfs::Trip& trip : closed.trips()) {
    ASSERT_EQ(trip.num_stop_times, 2u);
    const gtfs::StopTime* calls = closed.trip_begin(trip.id);
    EXPECT_EQ(calls[0].stop, 0u);
    EXPECT_EQ(calls[1].stop, 2u);
    EXPECT_EQ(calls[1].departure - calls[0].departure, 600);
  }
}

TEST(CloseStopTest, TripsLeftWithOneCallAreDropped) {
  gtfs::Feed feed = testing::TransferFeed();  // A: a0->a1; B: b0->b1
  auto result = CloseStop(feed, 0);           // a0: route A trips collapse
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().feed.num_trips(), 12u);  // only B's trips remain
  EXPECT_EQ(result.value().removed_trips.size(), 12u);
}

TEST(ScaleHeadwayTest, KeepsEveryFactorThTripInDepartureOrder) {
  gtfs::Feed feed = testing::LineFeed(600);  // 12 trips, 07:00 + k*600
  auto result = ScaleHeadway(feed, 0, 3);
  ASSERT_TRUE(result.ok()) << result.status();
  const gtfs::Feed& thinned = result.value().feed;
  ASSERT_EQ(thinned.num_trips(), 4u);
  EXPECT_EQ(result.value().removed_trips.size(), 8u);
  // Survivors are the 1st, 4th, 7th, 10th departures: 1800 s apart.
  std::vector<gtfs::TimeOfDay> departures;
  for (const gtfs::Trip& trip : thinned.trips()) {
    departures.push_back(thinned.trip_begin(trip.id)[0].departure);
  }
  std::sort(departures.begin(), departures.end());
  for (size_t i = 0; i < departures.size(); ++i) {
    EXPECT_EQ(departures[i], gtfs::MakeTime(7, 0) + 1800 * static_cast<int>(i));
  }
  EXPECT_FALSE(ScaleHeadway(feed, 0, 1).ok());  // factor >= 2
}

TEST(SetFlatFareTest, TouchesOnlyTheSelectedFare) {
  gtfs::Feed feed = testing::TransferFeed();  // fares 2.0 / 2.5
  auto one = SetFlatFare(feed, 1, 9.75);
  ASSERT_TRUE(one.ok()) << one.status();
  EXPECT_EQ(one.value().route(0).flat_fare, 2.0);
  EXPECT_EQ(one.value().route(1).flat_fare, 9.75);
  EXPECT_EQ(one.value().num_trips(), feed.num_trips());

  auto all = SetFlatFare(feed, kAllRoutes, 0.0);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().route(0).flat_fare, 0.0);
  EXPECT_EQ(all.value().route(1).flat_fare, 0.0);
}

TEST(AffectedZonesTest, IsSortedDeduplicatedAndBounded) {
  synth::City city = testing::TinyCity();
  router::WalkTable walk(&city.feed, router::WalkParams());
  auto transformed = SuspendRoute(city.feed, 0);
  ASSERT_TRUE(transformed.ok());

  ImpactInputs inputs;
  inputs.city = &city;
  inputs.feed = &city.feed;
  inputs.walk = &walk;
  inputs.interval = gtfs::WeekdayAmPeak();
  inputs.removed_trips = transformed.value().removed_trips;

  std::vector<uint32_t> affected = AffectedZones(inputs);
  for (size_t i = 1; i < affected.size(); ++i) {
    EXPECT_LT(affected[i - 1], affected[i]);  // strictly ascending => deduped
  }
  for (uint32_t z : affected) EXPECT_LT(z, city.zones.size());
  // Deterministic: primaries and replicas must screen identically.
  EXPECT_EQ(AffectedZones(inputs), affected);
}

TEST(AffectedZonesTest, NoRemovalsMeansNoAffectedZones) {
  synth::City city = testing::TinyCity();
  router::WalkTable walk(&city.feed, router::WalkParams());
  ImpactInputs inputs;
  inputs.city = &city;
  inputs.feed = &city.feed;
  inputs.walk = &walk;
  inputs.interval = gtfs::WeekdayAmPeak();
  EXPECT_TRUE(AffectedZones(inputs).empty());
}

}  // namespace
}  // namespace staq::scenario
