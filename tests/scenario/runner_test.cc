// The scenario-pack runner: deterministic before/after reports against a
// live AqServer, error context naming the scenario and spec, report
// emission, and graceful degradation of the report-write failpoint.
#include "scenario/runner.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "testing/test_city.h"
#include "util/failpoint.h"

namespace staq::scenario {
namespace {

namespace fs = std::filesystem;

CityFactory TinyFactory() {
  return [] { return util::Result<synth::City>(testing::TinyCity()); };
}

RunOptions FastOptions() {
  RunOptions options;
  options.server.num_threads = 1;
  return options;
}

ScenarioPack ParsePack(const std::string& text) {
  auto pack = ScenarioPack::Parse(text);
  EXPECT_TRUE(pack.ok()) << pack.status();
  return pack.ok() ? std::move(pack).value() : ScenarioPack{};
}

TEST(RunScenarioTest, ProducesADeterministicBeforeAfterReport) {
  ScenarioPack pack = ParsePack(
      "scenario outage { disrupt = suspend_route:busiest }\n");

  auto report = RunScenario(TinyFactory(), pack.scenarios[0], FastOptions());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().scenario, "outage");
  EXPECT_EQ(report.value().city, testing::TinyCity().spec.name);
  EXPECT_EQ(report.value().zones, testing::TinyCity().zones.size());
  ASSERT_EQ(report.value().disruptions.size(), 1u);
  // The resolved target is recorded, so the report is self-describing.
  EXPECT_NE(report.value().disruptions[0].find("=> route"),
            std::string::npos);

  // Suspending the busiest route must cost someone access: mean MAC can
  // only go up, and at least one zone moves.
  EXPECT_GE(report.value().after.mean_mac, report.value().before.mean_mac);
  EXPECT_GT(report.value().worst.mac_delta_s, 0.0);

  // Determinism: a second run over a fresh server matches bit for bit on
  // every equity number (timing is wall clock and exempt).
  auto again = RunScenario(TinyFactory(), pack.scenarios[0], FastOptions());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().mac_delta_s, report.value().mac_delta_s);
  EXPECT_EQ(again.value().before.mean_mac, report.value().before.mean_mac);
  EXPECT_EQ(again.value().after.mean_mac, report.value().after.mean_mac);
  EXPECT_EQ(again.value().migration, report.value().migration);
  EXPECT_EQ(again.value().mutation_spqs, report.value().mutation_spqs);
}

TEST(RunScenarioTest, SequentialDisruptionsComposeOnTheLiveServer) {
  // `busiest` twice: the second resolution must see the feed the first
  // suspension produced, so the two resolved routes differ.
  ScenarioPack pack = ParsePack(
      "scenario double { disrupt = suspend_route:busiest, "
      "suspend_route:busiest }\n");
  auto report = RunScenario(TinyFactory(), pack.scenarios[0], FastOptions());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report.value().disruptions.size(), 2u);
  EXPECT_NE(report.value().disruptions[0], report.value().disruptions[1]);
}

TEST(RunScenarioTest, ErrorsNameTheScenarioAndSpec) {
  ScenarioPack pack = ParsePack(
      "scenario broken { disrupt = close_stop:99999 }\n");
  auto report = RunScenario(TinyFactory(), pack.scenarios[0], FastOptions());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::StatusCode::kNotFound);
  EXPECT_NE(report.status().message().find("close_stop:99999"),
            std::string::npos);
}

TEST(RunPackTest, RunsEveryScenarioIndependently) {
  ScenarioPack pack = ParsePack(
      "scenario first { disrupt = scale_headway:all:2 }\n"
      "scenario second { disrupt = scale_walk:0.5 }\n");
  auto reports = RunPack(TinyFactory(), pack, FastOptions());
  ASSERT_TRUE(reports.ok()) << reports.status();
  ASSERT_EQ(reports.value().size(), 2u);
  EXPECT_EQ(reports.value()[0].scenario, "first");
  EXPECT_EQ(reports.value()[1].scenario, "second");
  // Independent what-if branches: both start from the same pristine
  // "before" side.
  EXPECT_EQ(reports.value()[0].before.mean_mac,
            reports.value()[1].before.mean_mac);
}

TEST(WriteReportsTest, EmitsJsonPerScenarioPlusText) {
  ScenarioPack pack = ParsePack(
      "scenario thin { disrupt = scale_headway:all:2 }\n");
  auto reports = RunPack(TinyFactory(), pack, FastOptions());
  ASSERT_TRUE(reports.ok()) << reports.status();

  std::string dir = ::testing::TempDir() + "staq_scenario_reports";
  fs::remove_all(dir);
  ASSERT_TRUE(WriteReports(reports.value(), dir).ok());

  std::ifstream json(dir + "/report_thin.json");
  ASSERT_TRUE(json.good());
  std::stringstream buffer;
  buffer << json.rdbuf();
  auto parsed = ParseEquityReportJson(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().scenario, "thin");
  EXPECT_EQ(parsed.value().zones, reports.value()[0].zones);

  std::ifstream text(dir + "/reports.txt");
  ASSERT_TRUE(text.good());
  fs::remove_all(dir);
}

#if defined(STAQ_FAILPOINTS) && STAQ_FAILPOINTS
TEST(WriteReportsTest, InjectedWriteFaultDegradesToACleanIoError) {
  ScenarioPack pack = ParsePack(
      "scenario thin { disrupt = scale_headway:all:2 }\n");
  auto reports = RunPack(TinyFactory(), pack, FastOptions());
  ASSERT_TRUE(reports.ok()) << reports.status();

  std::string dir = ::testing::TempDir() + "staq_scenario_fail";
  fs::remove_all(dir);
  util::FailPoints::Arm("scenario.pack.report_write",
                        util::FailPointConfig::Throw("disk full"));
  auto st = WriteReports(reports.value(), dir);
  util::FailPoints::DisarmAll();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kIoError);

  // Recovery: the same reports write cleanly once the fault clears.
  EXPECT_TRUE(WriteReports(reports.value(), dir).ok());
  fs::remove_all(dir);
}
#endif

}  // namespace
}  // namespace staq::scenario
