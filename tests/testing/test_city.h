// Shared fixtures: tiny deterministic cities and hand-built feeds whose
// optimal journeys are known in closed form.
#pragma once

#include <cstdlib>

#include "gtfs/feed.h"
#include "gtfs/feed_builder.h"
#include "synth/city_builder.h"
#include "synth/city_spec.h"

namespace staq::testing {

/// A tiny synthetic city (~64 zones) that builds in milliseconds. Seeded,
/// so every test sees the identical city.
inline synth::City TinyCity(uint64_t seed = 5) {
  synth::CitySpec spec = synth::CitySpec::Covely(0.06, seed);
  auto result = synth::BuildCity(spec);
  if (!result.ok()) {
    // Tests depend on this never failing; abort loudly if it does.
    std::abort();
  }
  return std::move(result).value();
}

/// A slightly larger city for pipeline-level tests (~100 zones).
inline synth::City SmallCity(uint64_t seed = 9) {
  synth::CitySpec spec = synth::CitySpec::Covely(0.1, seed);
  auto result = synth::BuildCity(spec);
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

/// A hand-built single-line feed:
///
///   stop0 (0,0) --- stop1 (2000,0) --- stop2 (4000,0)
///
/// One route, trips every `headway_s` seconds from 07:00 to 09:00 on
/// weekdays, 300 s per leg, zero dwell, fare 2.0.
inline gtfs::Feed LineFeed(int headway_s = 600) {
  gtfs::FeedBuilder builder;
  gtfs::StopId s0 = builder.AddStop("s0", {0, 0});
  gtfs::StopId s1 = builder.AddStop("s1", {2000, 0});
  gtfs::StopId s2 = builder.AddStop("s2", {4000, 0});
  gtfs::RouteId route = builder.AddRoute("line", 2.0);
  for (gtfs::TimeOfDay dep = gtfs::MakeTime(7, 0);
       dep < gtfs::MakeTime(9, 0); dep += headway_s) {
    builder.BeginTrip(route, gtfs::kWeekdays);
    (void)builder.AddCall(s0, dep);
    (void)builder.AddCall(s1, dep + 300);
    (void)builder.AddCall(s2, dep + 600);
  }
  auto feed = builder.Build();
  if (!feed.ok()) std::abort();
  return std::move(feed).value();
}

/// Two parallel lines that require a walk transfer in the middle:
///
///   A: a0 (0,0)    -> a1 (3000,0)
///   B: b0 (3000,150) -> b1 (6000,150)
///
/// A departs 07:00/07:10/...; B departs 07:12/07:22/... Legs 300 s.
inline gtfs::Feed TransferFeed() {
  gtfs::FeedBuilder builder;
  gtfs::StopId a0 = builder.AddStop("a0", {0, 0});
  gtfs::StopId a1 = builder.AddStop("a1", {3000, 0});
  gtfs::StopId b0 = builder.AddStop("b0", {3000, 150});
  gtfs::StopId b1 = builder.AddStop("b1", {6000, 150});
  gtfs::RouteId ra = builder.AddRoute("A", 2.0);
  gtfs::RouteId rb = builder.AddRoute("B", 2.5);
  for (int k = 0; k < 12; ++k) {
    gtfs::TimeOfDay dep = gtfs::MakeTime(7, 0) + k * 600;
    builder.BeginTrip(ra, gtfs::kEveryDay);
    (void)builder.AddCall(a0, dep);
    (void)builder.AddCall(a1, dep + 300);
  }
  for (int k = 0; k < 12; ++k) {
    gtfs::TimeOfDay dep = gtfs::MakeTime(7, 12) + k * 600;
    builder.BeginTrip(rb, gtfs::kEveryDay);
    (void)builder.AddCall(b0, dep);
    (void)builder.AddCall(b1, dep + 300);
  }
  auto feed = builder.Build();
  if (!feed.ok()) std::abort();
  return std::move(feed).value();
}

/// A stop that keeps timetable calls after route `suspended` is withdrawn:
/// the first call of the lowest-id trip on any other route. Deterministic,
/// so chained disruption tests (suspend route, then close a stop) pick a
/// target that is still closable on any city family.
inline gtfs::StopId StopServedOutsideRoute(const gtfs::Feed& feed,
                                           gtfs::RouteId suspended) {
  for (gtfs::TripId t = 0; t < feed.num_trips(); ++t) {
    if (feed.trip(t).route == suspended) continue;
    if (feed.trip(t).num_stop_times == 0) continue;
    return feed.trip_begin(t)->stop;
  }
  std::abort();  // test feeds always have a second route
}

}  // namespace staq::testing
