// Shared assertion: bit-level equality of two ExactLabelStates. Both the
// POI-mutation and the disruption golden suites check the same contract —
// an incrementally patched state equals a from-scratch build — so the
// comparison lives here once.
#pragma once

#include <gtest/gtest.h>

#include "serve/scenario.h"

namespace staq::testing {

/// Full bit-level equality: POIs, per-zone trip sequences, α rows, labels.
inline void ExpectStatesIdentical(const serve::ExactLabelState& patched,
                                  const serve::ExactLabelState& fresh) {
  ASSERT_EQ(patched.pois.size(), fresh.pois.size());
  for (size_t p = 0; p < fresh.pois.size(); ++p) {
    EXPECT_EQ(patched.pois[p].id, fresh.pois[p].id);
  }
  ASSERT_EQ(patched.todam.num_zones(), fresh.todam.num_zones());
  EXPECT_EQ(patched.todam.num_trips(), fresh.todam.num_trips());
  for (uint32_t z = 0; z < fresh.todam.num_zones(); ++z) {
    EXPECT_EQ(patched.todam.TripsFor(z), fresh.todam.TripsFor(z))
        << "trip sequence differs in zone " << z;
  }
  ASSERT_EQ(patched.todam.alpha().size(), fresh.todam.alpha().size());
  for (size_t z = 0; z < fresh.todam.alpha().size(); ++z) {
    EXPECT_EQ(patched.todam.alpha()[z], fresh.todam.alpha()[z])
        << "alpha row differs in zone " << z;
  }
  ASSERT_EQ(patched.labels.size(), fresh.labels.size());
  for (size_t z = 0; z < fresh.labels.size(); ++z) {
    // EXPECT_EQ on doubles on purpose: the claim is bit-identity, not
    // tolerance-level agreement.
    EXPECT_EQ(patched.labels[z].mac, fresh.labels[z].mac) << "zone " << z;
    EXPECT_EQ(patched.labels[z].acsd, fresh.labels[z].acsd) << "zone " << z;
    EXPECT_EQ(patched.labels[z].num_trips, fresh.labels[z].num_trips);
    EXPECT_EQ(patched.labels[z].num_infeasible,
              fresh.labels[z].num_infeasible);
    EXPECT_EQ(patched.labels[z].num_walk_only,
              fresh.labels[z].num_walk_only);
  }
}

}  // namespace staq::testing
