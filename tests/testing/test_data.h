// Synthetic regression datasets for the ML model tests.
#pragma once

#include <cmath>

#include "ml/model.h"
#include "util/rng.h"

namespace staq::testing {

/// A transductive dataset where y = w.x + b + noise, with `n` rows, `d`
/// features and the first `num_labeled` rows labeled. Positions are laid
/// out so that feature values vary smoothly in space (GNN-friendly).
inline ml::Dataset LinearDataset(size_t n, size_t d, size_t num_labeled,
                                 double noise, uint64_t seed) {
  util::Rng rng(seed);
  ml::Dataset data;
  data.x = ml::Matrix(n, d);
  data.y.resize(n);
  data.positions.resize(n);

  std::vector<double> w(d);
  for (size_t c = 0; c < d; ++c) w[c] = rng.Uniform(-2, 2);
  double b = rng.Uniform(-5, 5);

  for (size_t i = 0; i < n; ++i) {
    // Smooth spatial layout: features depend on position.
    double px = rng.Uniform(0, 1000);
    double py = rng.Uniform(0, 1000);
    data.positions[i] = geo::Point{px, py};
    for (size_t c = 0; c < d; ++c) {
      data.x(i, c) = std::sin(px / 200.0 + static_cast<double>(c)) +
                     py / 500.0 + rng.Normal(0, 0.3);
    }
    double y = b;
    for (size_t c = 0; c < d; ++c) y += w[c] * data.x(i, c);
    data.y[i] = y + rng.Normal(0, noise);
  }

  // Label a random subset.
  auto sample = rng.SampleWithoutReplacement(n, num_labeled);
  data.labeled.assign(sample.begin(), sample.end());
  return data;
}

/// Mean absolute error on the unlabeled rows only.
inline double UnlabeledMae(const ml::Dataset& data,
                           const std::vector<double>& predictions) {
  double acc = 0.0;
  size_t count = 0;
  for (uint32_t idx : data.UnlabeledIndices()) {
    acc += std::abs(predictions[idx] - data.y[idx]);
    ++count;
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

}  // namespace staq::testing
