#include "gtfs/time.h"

#include <gtest/gtest.h>

namespace staq::gtfs {
namespace {

TEST(TimeTest, MakeTime) {
  EXPECT_EQ(MakeTime(0, 0), 0);
  EXPECT_EQ(MakeTime(7, 30), 27000);
  EXPECT_EQ(MakeTime(23, 59, 59), 86399);
}

TEST(TimeTest, ParseValid) {
  auto r = ParseTime("07:30:15");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), MakeTime(7, 30, 15));

  auto short_form = ParseTime("9:05");
  ASSERT_TRUE(short_form.ok());
  EXPECT_EQ(short_form.value(), MakeTime(9, 5));
}

TEST(TimeTest, ParseAllowsPostMidnight) {
  auto r = ParseTime("25:10:00");  // GTFS late-night service
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 25 * 3600 + 600);
}

TEST(TimeTest, ParseTrimsWhitespace) {
  auto r = ParseTime("  08:00  ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), MakeTime(8, 0));
}

TEST(TimeTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseTime("").ok());
  EXPECT_FALSE(ParseTime("7").ok());
  EXPECT_FALSE(ParseTime("aa:bb").ok());
  EXPECT_FALSE(ParseTime("7:60").ok());
  EXPECT_FALSE(ParseTime("48:00").ok());
  EXPECT_FALSE(ParseTime("1:2:3:4").ok());
  EXPECT_FALSE(ParseTime("123:00").ok());
}

TEST(TimeTest, FormatRoundTrip) {
  EXPECT_EQ(FormatTime(MakeTime(7, 5, 3)), "07:05:03");
  EXPECT_EQ(FormatTime(0), "00:00:00");
  auto parsed = ParseTime(FormatTime(MakeTime(16, 45)));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), MakeTime(16, 45));
}

TEST(DayMaskTest, WeekdayAndWeekend) {
  EXPECT_TRUE(RunsOn(kWeekdays, Day::kMonday));
  EXPECT_TRUE(RunsOn(kWeekdays, Day::kFriday));
  EXPECT_FALSE(RunsOn(kWeekdays, Day::kSaturday));
  EXPECT_TRUE(RunsOn(kWeekend, Day::kSunday));
  EXPECT_FALSE(RunsOn(kWeekend, Day::kTuesday));
  for (int d = 0; d < 7; ++d) {
    EXPECT_TRUE(RunsOn(kEveryDay, static_cast<Day>(d)));
  }
}

TEST(DayMaskTest, MaskOfSingleDay) {
  DayMask tue = MaskOf(Day::kTuesday);
  EXPECT_TRUE(RunsOn(tue, Day::kTuesday));
  EXPECT_FALSE(RunsOn(tue, Day::kWednesday));
}

TEST(TimeIntervalTest, ContainsHalfOpen) {
  TimeInterval v{MakeTime(7, 0), MakeTime(9, 0), Day::kTuesday, "am"};
  EXPECT_TRUE(v.Contains(MakeTime(7, 0)));
  EXPECT_TRUE(v.Contains(MakeTime(8, 59, 59)));
  EXPECT_FALSE(v.Contains(MakeTime(9, 0)));
  EXPECT_FALSE(v.Contains(MakeTime(6, 59, 59)));
}

TEST(TimeIntervalTest, DurationHours) {
  EXPECT_DOUBLE_EQ(WeekdayAmPeak().DurationHours(), 2.0);
  EXPECT_DOUBLE_EQ(WeekdayPmPeak().DurationHours(), 2.0);
}

TEST(TimeIntervalTest, PresetsAreDistinctAndLabeled) {
  EXPECT_EQ(WeekdayAmPeak().label, "weekday-am-peak");
  EXPECT_EQ(SundayMorning().day, Day::kSunday);
  EXPECT_NE(WeekdayAmPeak().start, WeekdayPmPeak().start);
}

}  // namespace
}  // namespace staq::gtfs
