#include "gtfs/feed.h"

#include <gtest/gtest.h>

#include "gtfs/feed_builder.h"
#include "testing/test_city.h"

namespace staq::gtfs {
namespace {

TEST(FeedBuilderTest, BuildsLineFeed) {
  Feed feed = testing::LineFeed(600);
  EXPECT_EQ(feed.num_stops(), 3u);
  EXPECT_EQ(feed.num_routes(), 1u);
  EXPECT_EQ(feed.num_trips(), 12u);  // every 10 min, 07:00..08:50
  EXPECT_EQ(feed.num_stop_times(), 36u);
  EXPECT_TRUE(feed.Validate().ok());
}

TEST(FeedBuilderTest, AddCallBeforeTripFails) {
  FeedBuilder builder;
  StopId s = builder.AddStop("s", {0, 0});
  EXPECT_EQ(builder.AddCall(s, MakeTime(7, 0)).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(FeedBuilderTest, AddCallUnknownStopFails) {
  FeedBuilder builder;
  RouteId r = builder.AddRoute("r");
  builder.BeginTrip(r, kEveryDay);
  EXPECT_EQ(builder.AddCall(99, MakeTime(7, 0)).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(FeedBuilderTest, DepartureBeforeArrivalFails) {
  FeedBuilder builder;
  StopId s = builder.AddStop("s", {0, 0});
  RouteId r = builder.AddRoute("r");
  builder.BeginTrip(r, kEveryDay);
  EXPECT_EQ(builder.AddCall(s, MakeTime(7, 0), MakeTime(6, 59)).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(FeedBuilderTest, SingleCallTripFailsValidation) {
  FeedBuilder builder;
  StopId s = builder.AddStop("s", {0, 0});
  RouteId r = builder.AddRoute("r");
  builder.BeginTrip(r, kEveryDay);
  ASSERT_TRUE(builder.AddCall(s, MakeTime(7, 0)).ok());
  auto feed = builder.Build();
  EXPECT_FALSE(feed.ok());
}

TEST(FeedBuilderTest, TimeTravelFailsValidation) {
  FeedBuilder builder;
  StopId s0 = builder.AddStop("s0", {0, 0});
  StopId s1 = builder.AddStop("s1", {100, 0});
  RouteId r = builder.AddRoute("r");
  builder.BeginTrip(r, kEveryDay);
  ASSERT_TRUE(builder.AddCall(s0, MakeTime(8, 0)).ok());
  ASSERT_TRUE(builder.AddCall(s1, MakeTime(7, 0)).ok());  // goes backwards
  auto feed = builder.Build();
  EXPECT_FALSE(feed.ok());
}

TEST(FeedBuilderTest, BuildTwiceFails) {
  Feed unused = testing::LineFeed();
  FeedBuilder builder;
  StopId s0 = builder.AddStop("s0", {0, 0});
  StopId s1 = builder.AddStop("s1", {100, 0});
  RouteId r = builder.AddRoute("r");
  builder.BeginTrip(r, kEveryDay);
  ASSERT_TRUE(builder.AddCall(s0, MakeTime(7, 0)).ok());
  ASSERT_TRUE(builder.AddCall(s1, MakeTime(7, 5)).ok());
  ASSERT_TRUE(builder.Build().ok());
  EXPECT_FALSE(builder.Build().ok());
}

TEST(FeedTest, TripRangeOrdered) {
  Feed feed = testing::LineFeed(600);
  for (TripId t = 0; t < feed.num_trips(); ++t) {
    const StopTime* begin = feed.trip_begin(t);
    const StopTime* end = feed.trip_end(t);
    ASSERT_EQ(end - begin, 3);
    EXPECT_LT(begin[0].departure, begin[1].arrival);
    EXPECT_LT(begin[1].departure, begin[2].arrival);
  }
}

TEST(FeedTest, DeparturesSortedPerStop) {
  Feed feed = testing::LineFeed(600);
  for (StopId s = 0; s < feed.num_stops(); ++s) {
    const auto& deps = feed.departures(s);
    EXPECT_EQ(deps.size(), 12u);
    for (size_t i = 1; i < deps.size(); ++i) {
      EXPECT_LE(deps[i - 1].time, deps[i].time);
    }
  }
}

TEST(FeedTest, DeparturesInWindowFiltersTimeAndDay) {
  Feed feed = testing::LineFeed(600);
  auto window = feed.DeparturesInWindow(0, Day::kTuesday, MakeTime(7, 0),
                                        MakeTime(8, 0));
  EXPECT_EQ(window.size(), 6u);  // 07:00..07:50
  // Weekday-only service: Sunday is empty.
  EXPECT_TRUE(feed.DeparturesInWindow(0, Day::kSunday, MakeTime(7, 0),
                                      MakeTime(9, 0))
                  .empty());
}

TEST(FeedTest, DeparturesInWindowHalfOpen) {
  Feed feed = testing::LineFeed(600);
  auto window = feed.DeparturesInWindow(0, Day::kMonday, MakeTime(7, 0),
                                        MakeTime(7, 10));
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(window[0].time, MakeTime(7, 0));
}

TEST(FeedTest, NextDepartureSkipsFinalCall) {
  Feed feed = testing::LineFeed(600);
  Departure dep;
  // Stop 2 is the terminus: every call there is final, so nothing to ride.
  EXPECT_FALSE(feed.NextDeparture(2, Day::kTuesday, MakeTime(7, 0), &dep));
  // Stop 1 is mid-line: next departure at or after 07:06 is the 07:00
  // trip's call (07:05 departure already gone) -> the 07:10 trip at 07:15.
  ASSERT_TRUE(feed.NextDeparture(1, Day::kTuesday, MakeTime(7, 6), &dep));
  EXPECT_EQ(dep.time, MakeTime(7, 15));
}

TEST(FeedTest, NextDepartureNoneAfterLastService) {
  Feed feed = testing::LineFeed(600);
  Departure dep;
  EXPECT_FALSE(feed.NextDeparture(0, Day::kTuesday, MakeTime(9, 1), &dep));
}

TEST(FeedTest, RoutesThroughStop) {
  Feed feed = testing::TransferFeed();
  auto routes_a1 = feed.RoutesThrough(1, Day::kMonday, MakeTime(7, 0),
                                      MakeTime(9, 0));
  ASSERT_EQ(routes_a1.size(), 1u);
  EXPECT_EQ(routes_a1[0], 0u);
}

TEST(FeedTest, ServiceStats) {
  Feed feed = testing::LineFeed(600);
  TimeInterval v{MakeTime(7, 0), MakeTime(9, 0), Day::kTuesday, "am"};
  StopServiceStats stats = feed.ServiceStats(0, v);
  EXPECT_EQ(stats.num_departures, 12u);
  EXPECT_EQ(stats.num_routes, 1u);
  EXPECT_NEAR(stats.mean_headway_s, 600.0, 1.0);
}

TEST(FeedTest, ServiceStatsSingleDepartureNoHeadway) {
  Feed feed = testing::LineFeed(600);
  TimeInterval v{MakeTime(7, 0), MakeTime(7, 5), Day::kTuesday, "tiny"};
  StopServiceStats stats = feed.ServiceStats(0, v);
  EXPECT_EQ(stats.num_departures, 1u);
  EXPECT_EQ(stats.mean_headway_s, 0.0);
}

}  // namespace
}  // namespace staq::gtfs
