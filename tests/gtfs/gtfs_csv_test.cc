#include "gtfs/gtfs_csv.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "testing/test_city.h"
#include "util/csv.h"
#include "util/strings.h"

namespace staq::gtfs {
namespace {

namespace fs = std::filesystem;

geo::LocalProjection TestProjection() {
  return geo::LocalProjection(geo::LatLon{52.48, -1.90});
}

std::string FreshDir(const char* name) {
  std::string dir = ::testing::TempDir() + "/staq_gtfs_" + name;
  fs::remove_all(dir);
  return dir;
}

void ExpectFeedsEquivalent(const Feed& a, const Feed& b) {
  ASSERT_EQ(a.num_stops(), b.num_stops());
  ASSERT_EQ(a.num_routes(), b.num_routes());
  ASSERT_EQ(a.num_trips(), b.num_trips());
  ASSERT_EQ(a.num_stop_times(), b.num_stop_times());
  for (StopId s = 0; s < a.num_stops(); ++s) {
    // Projection round trip costs < 1 m at city scale.
    EXPECT_NEAR(a.stop(s).position.x, b.stop(s).position.x, 1.0);
    EXPECT_NEAR(a.stop(s).position.y, b.stop(s).position.y, 1.0);
  }
  for (RouteId r = 0; r < a.num_routes(); ++r) {
    EXPECT_NEAR(a.route(r).flat_fare, b.route(r).flat_fare, 0.01);
  }
  for (TripId t = 0; t < a.num_trips(); ++t) {
    EXPECT_EQ(a.trip(t).route, b.trip(t).route);
    EXPECT_EQ(a.trip(t).days, b.trip(t).days);
    ASSERT_EQ(a.trip(t).num_stop_times, b.trip(t).num_stop_times);
    const StopTime* sa = a.trip_begin(t);
    const StopTime* sb = b.trip_begin(t);
    for (uint32_t i = 0; i < a.trip(t).num_stop_times; ++i) {
      EXPECT_EQ(sa[i].stop, sb[i].stop);
      EXPECT_EQ(sa[i].arrival, sb[i].arrival);
      EXPECT_EQ(sa[i].departure, sb[i].departure);
    }
  }
}

TEST(GtfsCsvTest, RoundTripLineFeed) {
  Feed original = testing::LineFeed(600);
  std::string dir = FreshDir("line");
  geo::LocalProjection projection = TestProjection();
  ASSERT_TRUE(WriteFeedCsv(original, projection, dir).ok());

  // All standard files written.
  for (const char* file : {"stops.txt", "routes.txt", "calendar.txt",
                           "trips.txt", "stop_times.txt",
                           "fare_attributes.txt", "fare_rules.txt"}) {
    EXPECT_TRUE(fs::exists(dir + "/" + file)) << file;
  }

  auto loaded = ReadFeedCsv(dir, projection);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectFeedsEquivalent(original, loaded.value());
  fs::remove_all(dir);
}

TEST(GtfsCsvTest, RoundTripSyntheticCityFeed) {
  synth::City city = testing::TinyCity();
  std::string dir = FreshDir("city");
  geo::LocalProjection projection = TestProjection();
  ASSERT_TRUE(WriteFeedCsv(city.feed, projection, dir).ok());
  auto loaded = ReadFeedCsv(dir, projection);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectFeedsEquivalent(city.feed, loaded.value());
  EXPECT_TRUE(loaded.value().Validate().ok());
  fs::remove_all(dir);
}

TEST(GtfsCsvTest, MissingFileFails) {
  auto loaded = ReadFeedCsv("/nonexistent-gtfs-dir", TestProjection());
  EXPECT_FALSE(loaded.ok());
}

TEST(GtfsCsvTest, MissingRequiredColumnFails) {
  std::string dir = FreshDir("badcol");
  fs::create_directories(dir);
  std::ofstream(dir + "/stops.txt") << "stop_id,stop_name\nS0,zero\n";
  auto loaded = ReadFeedCsv(dir, TestProjection());
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("stop_lat"), std::string::npos);
  fs::remove_all(dir);
}

TEST(GtfsCsvTest, ExtraColumnsIgnored) {
  Feed original = testing::LineFeed(1200);
  std::string dir = FreshDir("extra");
  geo::LocalProjection projection = TestProjection();
  ASSERT_TRUE(WriteFeedCsv(original, projection, dir).ok());
  // Append an extra column to stops.txt.
  {
    auto rows = util::ReadCsvFile(dir + "/stops.txt");
    ASSERT_TRUE(rows.ok());
    std::ofstream out(dir + "/stops.txt");
    for (size_t r = 0; r < rows.value().size(); ++r) {
      out << util::Join(rows.value()[r], ",")
          << (r == 0 ? ",wheelchair_boarding" : ",1") << "\n";
    }
  }
  auto loaded = ReadFeedCsv(dir, projection);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().num_stops(), original.num_stops());
  fs::remove_all(dir);
}

TEST(GtfsCsvTest, UnknownStopInStopTimesFails) {
  Feed original = testing::LineFeed(1200);
  std::string dir = FreshDir("badstop");
  geo::LocalProjection projection = TestProjection();
  ASSERT_TRUE(WriteFeedCsv(original, projection, dir).ok());
  std::ofstream(dir + "/stop_times.txt", std::ios::app)
      << "T0,07:00:00,07:00:00,S999,99\n";
  auto loaded = ReadFeedCsv(dir, projection);
  EXPECT_FALSE(loaded.ok());
  fs::remove_all(dir);
}

TEST(GtfsCsvTest, FaresOptional) {
  Feed original = testing::LineFeed(1200);
  std::string dir = FreshDir("nofares");
  geo::LocalProjection projection = TestProjection();
  ASSERT_TRUE(WriteFeedCsv(original, projection, dir).ok());
  fs::remove(dir + "/fare_attributes.txt");
  fs::remove(dir + "/fare_rules.txt");
  auto loaded = ReadFeedCsv(dir, projection);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_DOUBLE_EQ(loaded.value().route(0).flat_fare, 0.0);
  fs::remove_all(dir);
}

TEST(GtfsCsvTest, StopTimesOutOfOrderAreSortedBySequence) {
  // Hand-write a feed whose stop_times rows are shuffled; stop_sequence
  // must drive ordering.
  std::string dir = FreshDir("shuffled");
  fs::create_directories(dir);
  std::ofstream(dir + "/stops.txt")
      << "stop_id,stop_name,stop_lat,stop_lon\n"
      << "A,a,52.4800,-1.9000\nB,b,52.4900,-1.9000\nC,c,52.5000,-1.9000\n";
  std::ofstream(dir + "/routes.txt")
      << "route_id,route_short_name,route_type\nR1,one,3\n";
  std::ofstream(dir + "/calendar.txt")
      << "service_id,monday,tuesday,wednesday,thursday,friday,saturday,"
         "sunday,start_date,end_date\n"
      << "WK,1,1,1,1,1,0,0,20240101,20991231\n";
  std::ofstream(dir + "/trips.txt")
      << "route_id,service_id,trip_id\nR1,WK,trip-1\n";
  std::ofstream(dir + "/stop_times.txt")
      << "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n"
      << "trip-1,07:20:00,07:20:00,C,3\n"
      << "trip-1,07:00:00,07:00:00,A,1\n"
      << "trip-1,07:10:00,07:10:00,B,2\n";

  auto loaded = ReadFeedCsv(dir, TestProjection());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const Feed& feed = loaded.value();
  ASSERT_EQ(feed.num_trips(), 1u);
  const StopTime* calls = feed.trip_begin(0);
  EXPECT_EQ(calls[0].arrival, MakeTime(7, 0));
  EXPECT_EQ(calls[1].arrival, MakeTime(7, 10));
  EXPECT_EQ(calls[2].arrival, MakeTime(7, 20));
  EXPECT_TRUE(feed.Validate().ok());
  fs::remove_all(dir);
}

TEST(GtfsCsvTest, FrequenciesExpandTripTemplates) {
  std::string dir = FreshDir("frequencies");
  fs::create_directories(dir);
  std::ofstream(dir + "/stops.txt")
      << "stop_id,stop_name,stop_lat,stop_lon\n"
      << "A,a,52.4800,-1.9000\nB,b,52.4900,-1.9000\n";
  std::ofstream(dir + "/routes.txt")
      << "route_id,route_short_name,route_type\nR1,one,3\n";
  std::ofstream(dir + "/calendar.txt")
      << "service_id,monday,tuesday,wednesday,thursday,friday,saturday,"
         "sunday,start_date,end_date\n"
      << "WK,1,1,1,1,1,0,0,20240101,20991231\n";
  std::ofstream(dir + "/trips.txt")
      << "route_id,service_id,trip_id\nR1,WK,template\n";
  // Template: 5-minute run from A to B; offsets matter, absolute times
  // don't.
  std::ofstream(dir + "/stop_times.txt")
      << "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n"
      << "template,06:00:00,06:00:00,A,1\n"
      << "template,06:05:00,06:05:00,B,2\n";
  // Every 10 minutes from 07:00 to 08:00 -> 6 concrete trips.
  std::ofstream(dir + "/frequencies.txt")
      << "trip_id,start_time,end_time,headway_secs\n"
      << "template,07:00:00,08:00:00,600\n";

  auto loaded = ReadFeedCsv(dir, TestProjection());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const Feed& feed = loaded.value();
  EXPECT_EQ(feed.num_trips(), 6u);
  EXPECT_TRUE(feed.Validate().ok());
  // First expansion departs 07:00 and preserves the 5-minute offset.
  const StopTime* calls = feed.trip_begin(0);
  EXPECT_EQ(calls[0].departure, MakeTime(7, 0));
  EXPECT_EQ(calls[1].arrival, MakeTime(7, 5));
  // Departure index at stop A sees all six headway copies.
  auto deps = feed.DeparturesInWindow(0, Day::kMonday, MakeTime(7, 0),
                                      MakeTime(8, 0));
  EXPECT_EQ(deps.size(), 6u);
  fs::remove_all(dir);
}

TEST(GtfsCsvTest, FrequenciesRejectNonPositiveHeadway) {
  std::string dir = FreshDir("badfreq");
  fs::create_directories(dir);
  std::ofstream(dir + "/stops.txt")
      << "stop_id,stop_name,stop_lat,stop_lon\nA,a,52.48,-1.9\nB,b,52.49,-1.9\n";
  std::ofstream(dir + "/routes.txt")
      << "route_id,route_short_name,route_type\nR1,one,3\n";
  std::ofstream(dir + "/calendar.txt")
      << "service_id,monday,tuesday,wednesday,thursday,friday,saturday,"
         "sunday,start_date,end_date\nWK,1,1,1,1,1,0,0,20240101,20991231\n";
  std::ofstream(dir + "/trips.txt")
      << "route_id,service_id,trip_id\nR1,WK,t\n";
  std::ofstream(dir + "/stop_times.txt")
      << "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n"
      << "t,06:00:00,06:00:00,A,1\nt,06:05:00,06:05:00,B,2\n";
  std::ofstream(dir + "/frequencies.txt")
      << "trip_id,start_time,end_time,headway_secs\nt,07:00:00,08:00:00,0\n";
  EXPECT_FALSE(ReadFeedCsv(dir, TestProjection()).ok());
  fs::remove_all(dir);
}

TEST(WeekdayOfTest, KnownDatesAndLeapYears) {
  EXPECT_EQ(WeekdayOf(20240101).value(), Day::kMonday);
  EXPECT_EQ(WeekdayOf(20260808).value(), Day::kSaturday);
  EXPECT_EQ(WeekdayOf(19991231).value(), Day::kFriday);
  // Leap rules: divisible-by-4 yes, century no, quadricentennial yes.
  EXPECT_EQ(WeekdayOf(20240229).value(), Day::kThursday);
  EXPECT_EQ(WeekdayOf(20000229).value(), Day::kTuesday);
  EXPECT_FALSE(WeekdayOf(19000229).ok());
  EXPECT_FALSE(WeekdayOf(20230229).ok());

  EXPECT_FALSE(WeekdayOf(20241301).ok());  // month 13
  EXPECT_FALSE(WeekdayOf(20240100).ok());  // day 0
  EXPECT_FALSE(WeekdayOf(20240631).ok());  // June has 30 days
  EXPECT_FALSE(WeekdayOf(9990101).ok());   // year below 1000
}

TEST(GtfsCsvTest, CalendarDatesFoldIntoTheWeeklyMask) {
  Feed original = testing::LineFeed(600);  // every trip runs kWeekdays
  std::string dir = FreshDir("caldates");
  geo::LocalProjection projection = TestProjection();
  // The exporter's single service is "C0". Add a Saturday, drop the Monday.
  std::vector<CalendarDateException> exceptions = {
      {"C0", 20260808, /*added=*/true},    // a Saturday
      {"C0", 20240101, /*added=*/false},   // a Monday
  };
  ASSERT_TRUE(WriteFeedCsv(original, projection, dir, exceptions).ok());
  ASSERT_TRUE(fs::exists(dir + "/calendar_dates.txt"));

  auto loaded = ReadFeedCsv(dir, projection);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const DayMask expected = static_cast<DayMask>(
      (kWeekdays | MaskOf(Day::kSaturday)) & ~MaskOf(Day::kMonday));
  for (const Trip& trip : loaded.value().trips()) {
    EXPECT_EQ(trip.days, expected) << "trip " << trip.id;
  }
  fs::remove_all(dir);
}

TEST(GtfsCsvTest, CalendarDatesOnlyServiceIsCreated) {
  // GTFS permits a service defined purely by added dates; the loader must
  // create it with just those weekday bits.
  std::string dir = FreshDir("caldates_only");
  fs::create_directories(dir);
  std::ofstream(dir + "/stops.txt")
      << "stop_id,stop_name,stop_lat,stop_lon\n"
      << "A,a,52.4800,-1.9000\nB,b,52.4900,-1.9000\n";
  std::ofstream(dir + "/routes.txt")
      << "route_id,route_short_name,route_type\nR1,one,3\n";
  std::ofstream(dir + "/calendar.txt")
      << "service_id,monday,tuesday,wednesday,thursday,friday,saturday,"
         "sunday,start_date,end_date\n"
      << "WK,1,1,1,1,1,0,0,20240101,20991231\n";
  std::ofstream(dir + "/calendar_dates.txt")
      << "service_id,date,exception_type\n"
      << "XDAY,20260808,1\n"   // Saturday
      << "XDAY,20260809,1\n";  // Sunday
  std::ofstream(dir + "/trips.txt")
      << "route_id,service_id,trip_id\nR1,WK,t-wk\nR1,XDAY,t-x\n";
  std::ofstream(dir + "/stop_times.txt")
      << "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n"
      << "t-wk,07:00:00,07:00:00,A,1\nt-wk,07:05:00,07:05:00,B,2\n"
      << "t-x,08:00:00,08:00:00,A,1\nt-x,08:05:00,08:05:00,B,2\n";

  auto loaded = ReadFeedCsv(dir, TestProjection());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded.value().num_trips(), 2u);
  EXPECT_EQ(loaded.value().trip(0).days, kWeekdays);
  EXPECT_EQ(loaded.value().trip(1).days,
            static_cast<DayMask>(MaskOf(Day::kSaturday) |
                                 MaskOf(Day::kSunday)));
  fs::remove_all(dir);
}

TEST(GtfsCsvTest, MalformedCalendarDatesRowsAreRejected) {
  Feed original = testing::LineFeed(600);
  std::string dir = FreshDir("caldates_bad");
  geo::LocalProjection projection = TestProjection();
  ASSERT_TRUE(WriteFeedCsv(original, projection, dir).ok());

  struct Case {
    const char* row;
    const char* expect;  // message fragment
  };
  const Case cases[] = {
      {"C0,20240101.5,1", "YYYYMMDD"},  // non-numeric date
      {"C0,2024010,1", "YYYYMMDD"},     // 7 digits
      {"C0,20230229,1", "bad YYYYMMDD"},// nonexistent date
      {"C0,20240101", "too short"},     // missing exception_type
      {"C0,20240101,3", "exception_type"},
  };
  for (const Case& c : cases) {
    std::ofstream(dir + "/calendar_dates.txt")
        << "service_id,date,exception_type\n"
        << c.row << "\n";
    auto loaded = ReadFeedCsv(dir, projection);
    ASSERT_FALSE(loaded.ok()) << c.row;
    EXPECT_NE(loaded.status().message().find(c.expect), std::string::npos)
        << c.row << " -> " << loaded.status().message();
  }
  fs::remove_all(dir);
}

TEST(GtfsCsvTest, ExporterValidatesExceptionDatesUpFront) {
  Feed original = testing::LineFeed(600);
  std::string dir = FreshDir("caldates_export_bad");
  geo::LocalProjection projection = TestProjection();
  std::vector<CalendarDateException> bad = {{"C0", 20241301, true}};
  auto st = WriteFeedCsv(original, projection, dir, bad);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kInvalidArgument);
  // The invalid file was never written.
  EXPECT_FALSE(fs::exists(dir + "/calendar_dates.txt"));
  fs::remove_all(dir);
}

TEST(ParseCsvTest, HandlesQuotingAndCrlf) {
  auto rows = util::ParseCsv("a,\"b,с\",c\r\n\"x\"\"y\",,z\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0][1], "b,с");
  EXPECT_EQ(rows.value()[1][0], "x\"y");
  EXPECT_EQ(rows.value()[1][1], "");
}

TEST(ParseCsvTest, EmbeddedNewlineInQuotes) {
  auto rows = util::ParseCsv("\"line1\nline2\",b\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0][0], "line1\nline2");
}

TEST(ParseCsvTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(util::ParseCsv("\"abc").ok());
}

TEST(ParseCsvTest, RoundTripWithCsvTable) {
  util::CsvTable table({"h1", "h2"});
  ASSERT_TRUE(table.AddRow({"plain", "with,comma"}).ok());
  ASSERT_TRUE(table.AddRow({"with\"quote", "with\nnewline"}).ok());
  auto rows = util::ParseCsv(table.ToCsv());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 3u);
  EXPECT_EQ(rows.value()[1][1], "with,comma");
  EXPECT_EQ(rows.value()[2][0], "with\"quote");
  EXPECT_EQ(rows.value()[2][1], "with\nnewline");
}

}  // namespace
}  // namespace staq::gtfs
