// GTFS round-trip golden: both synthetic city families export to CSV,
// reload through ReadFeedCsv, and come back with a bit-identical
// timetable (times, sequences, day masks) and fares on the interchange
// grid. A second export is the fixpoint check: every file except
// stops.txt (lat/lon reprojection is lossy by design, documented in
// gtfs_csv.h) must be byte-identical to the first.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "gtfs/gtfs_csv.h"
#include "synth/city_builder.h"
#include "testing/test_city.h"

namespace staq::gtfs {
namespace {

namespace fs = std::filesystem;

geo::LocalProjection TestProjection() {
  return geo::LocalProjection(geo::LatLon{52.48, -1.90});
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "staq_gtfs_golden_" + name;
  fs::remove_all(dir);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Exact timetable equality: every integer field bit for bit, fares within
/// the 2-decimal interchange grid, positions within the documented
/// projection tolerance.
void ExpectTimetableIdentical(const Feed& a, const Feed& b) {
  ASSERT_EQ(a.num_stops(), b.num_stops());
  ASSERT_EQ(a.num_routes(), b.num_routes());
  ASSERT_EQ(a.num_trips(), b.num_trips());
  ASSERT_EQ(a.num_stop_times(), b.num_stop_times());
  for (StopId s = 0; s < a.num_stops(); ++s) {
    EXPECT_EQ(a.stop(s).name, b.stop(s).name) << "stop " << s;
    EXPECT_NEAR(a.stop(s).position.x, b.stop(s).position.x, 1.0);
    EXPECT_NEAR(a.stop(s).position.y, b.stop(s).position.y, 1.0);
  }
  for (RouteId r = 0; r < a.num_routes(); ++r) {
    EXPECT_EQ(a.route(r).name, b.route(r).name) << "route " << r;
    EXPECT_NEAR(a.route(r).flat_fare, b.route(r).flat_fare, 0.005)
        << "route " << r;
  }
  for (TripId t = 0; t < a.num_trips(); ++t) {
    EXPECT_EQ(a.trip(t).route, b.trip(t).route) << "trip " << t;
    EXPECT_EQ(a.trip(t).days, b.trip(t).days) << "trip " << t;
    ASSERT_EQ(a.trip(t).num_stop_times, b.trip(t).num_stop_times);
    const StopTime* sa = a.trip_begin(t);
    const StopTime* sb = b.trip_begin(t);
    for (uint32_t i = 0; i < a.trip(t).num_stop_times; ++i) {
      EXPECT_EQ(sa[i].stop, sb[i].stop) << "trip " << t << " call " << i;
      EXPECT_EQ(sa[i].arrival, sb[i].arrival) << "trip " << t << " call " << i;
      EXPECT_EQ(sa[i].departure, sb[i].departure)
          << "trip " << t << " call " << i;
    }
  }
}

void RunRoundTripGolden(const Feed& original, const std::string& name) {
  geo::LocalProjection projection = TestProjection();
  const std::string first = FreshDir(name + "_1");
  ASSERT_TRUE(WriteFeedCsv(original, projection, first).ok());

  auto loaded = ReadFeedCsv(first, projection);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(loaded.value().Validate().ok());
  ExpectTimetableIdentical(original, loaded.value());

  // Fixpoint: exporting the reloaded feed reproduces the identical bytes
  // for every file whose content is exact on the interchange grid. Only
  // stops.txt re-derives through the (lossy) projection.
  const std::string second = FreshDir(name + "_2");
  ASSERT_TRUE(WriteFeedCsv(loaded.value(), projection, second).ok());
  for (const char* file :
       {"routes.txt", "calendar.txt", "trips.txt", "stop_times.txt",
        "fare_attributes.txt", "fare_rules.txt"}) {
    EXPECT_EQ(ReadFile(first + "/" + file), ReadFile(second + "/" + file))
        << file;
  }

  // And loading the second generation lands on exactly the first's feed:
  // one CSV trip is the entire information loss, applied once.
  auto reloaded = ReadFeedCsv(second, projection);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  ExpectTimetableIdentical(loaded.value(), reloaded.value());
  for (RouteId r = 0; r < loaded.value().num_routes(); ++r) {
    // Fares are exact from the second generation on (2-decimal grid).
    EXPECT_EQ(loaded.value().route(r).flat_fare,
              reloaded.value().route(r).flat_fare);
  }
  for (TripId t = 0; t < loaded.value().num_trips(); ++t) {
    EXPECT_EQ(loaded.value().trip(t).days, reloaded.value().trip(t).days);
  }

  fs::remove_all(first);
  fs::remove_all(second);
}

TEST(GtfsRoundTripGoldenTest, CovelyFamilyFeed) {
  RunRoundTripGolden(testing::TinyCity().feed, "covely");
}

TEST(GtfsRoundTripGoldenTest, BrindaleFamilyFeed) {
  auto city = synth::BuildCity(synth::CitySpec::Brindale(0.05, 7));
  ASSERT_TRUE(city.ok()) << city.status();
  RunRoundTripGolden(city.value().feed, "brindale");
}

}  // namespace
}  // namespace staq::gtfs
