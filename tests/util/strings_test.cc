#include "util/strings.h"

#include <gtest/gtest.h>

namespace staq::util {
namespace {

TEST(SplitTest, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, EmptyFieldsPreserved) {
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
}

TEST(SplitTest, NoSeparator) {
  EXPECT_EQ(Split("solo", ','), (std::vector<std::string>{"solo"}));
}

TEST(SplitTest, EmptyInput) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Split(Join(parts, ";"), ';'), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim("nochange"), "nochange");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("a b"), "a b");  // interior spaces kept
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("weekday-am-peak", "weekday"));
  EXPECT_FALSE(StartsWith("am", "am-peak"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(FormatTest, PrintfSemantics) {
  EXPECT_EQ(Format("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(Format("%.2f", 1.005), "1.00");
  EXPECT_EQ(Format("plain"), "plain");
}

TEST(FormatTest, LongOutput) {
  std::string long_arg(500, 'x');
  std::string out = Format("%s!", long_arg.c_str());
  EXPECT_EQ(out.size(), 501u);
  EXPECT_EQ(out.back(), '!');
}

}  // namespace
}  // namespace staq::util
