#include "util/clock.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/stopwatch.h"

namespace staq::util {
namespace {

using namespace std::chrono_literals;

TEST(ClockTest, RealClockIsMonotonicAndSingleton) {
  const Clock* clock = Clock::Real();
  ASSERT_NE(clock, nullptr);
  EXPECT_EQ(clock, Clock::Real());
  Clock::TimePoint a = clock->Now();
  Clock::TimePoint b = clock->Now();
  EXPECT_LE(a, b);
  EXPECT_GE(clock->SecondsSince(a), 0.0);
}

TEST(VirtualClockTest, AdvancesOnlyWhenTold) {
  VirtualClock clock;
  Clock::TimePoint start = clock.Now();
  EXPECT_EQ(clock.Now(), start);  // no passage of real time leaks in
  EXPECT_DOUBLE_EQ(clock.SecondsSince(start), 0.0);

  clock.Advance(1500ms);
  EXPECT_DOUBLE_EQ(clock.SecondsSince(start), 1.5);
  clock.AdvanceSeconds(0.5);
  EXPECT_DOUBLE_EQ(clock.SecondsSince(start), 2.0);
}

TEST(VirtualClockTest, HonoursExplicitOrigin) {
  Clock::TimePoint origin = Clock::Real()->Now();
  VirtualClock clock(origin);
  EXPECT_EQ(clock.Now(), origin);
  clock.Advance(2s);
  EXPECT_EQ(clock.Now(), origin + 2s);
}

TEST(VirtualClockTest, ConcurrentReadersSeeMonotonicTime) {
  VirtualClock clock;
  Clock::TimePoint start = clock.Now();
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      double last = 0.0;
      for (int i = 0; i < 2000; ++i) {
        double now = clock.SecondsSince(start);
        EXPECT_GE(now, last);  // time never goes backwards
        last = now;
      }
    });
  }
  for (int i = 0; i < 1000; ++i) clock.Advance(1ms);
  for (auto& reader : readers) reader.join();
  EXPECT_DOUBLE_EQ(clock.SecondsSince(start), 1.0);
}

TEST(StopwatchTest, DefaultStopwatchReadsTheRealClock) {
  Stopwatch watch;
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
}

TEST(StopwatchTest, VirtualStopwatchMeasuresExactlyWhatWasAdvanced) {
  VirtualClock clock;
  Stopwatch watch(&clock);
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 0.0);
  clock.AdvanceSeconds(3.25);
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 3.25);
  EXPECT_DOUBLE_EQ(watch.ElapsedMillis(), 3250.0);

  watch.Reset();
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 0.0);
  clock.AdvanceSeconds(0.75);
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 0.75);
}

}  // namespace
}  // namespace staq::util
