#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace staq::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(13);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(RngTest, UniformU64CoversAllValues) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformU64(6));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(19);
  int lo_hits = 0, hi_hits = 0;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) ++lo_hits;
    if (v == 3) ++hi_hits;
  }
  EXPECT_GT(lo_hits, 0);
  EXPECT_GT(hi_hits, 0);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(23);
  constexpr int kDraws = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / kDraws;
  double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(29);
  constexpr int kDraws = 100000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / kDraws, 10.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(31);
  constexpr int kDraws = 100000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.Exponential(0.5);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kDraws, 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(37);
  constexpr int kDraws = 100000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(43);
  for (double mean : {0.5, 4.0, 100.0}) {  // covers Knuth and normal-approx
    constexpr int kDraws = 50000;
    double sum = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      int v = rng.Poisson(mean);
      EXPECT_GE(v, 0);
      sum += v;
    }
    EXPECT_NEAR(sum / kDraws, mean, std::max(0.05, mean * 0.03));
  }
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(47);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(53);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(59);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(61);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(67);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementUnbiased) {
  // Each index should be selected ~k/n of the time.
  constexpr int kTrials = 20000;
  std::vector<int> counts(10, 0);
  Rng rng(71);
  for (int t = 0; t < kTrials; ++t) {
    Rng trial = rng.Fork(t);
    for (size_t idx : trial.SampleWithoutReplacement(10, 3)) {
      ++counts[idx];
    }
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.3, 0.02);
  }
}

TEST(RngTest, ForkIsIndependentOfParentContinuation) {
  Rng parent(97);
  Rng child = parent.Fork(1);
  // Child stream should not equal the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForksWithDifferentTagsDiffer) {
  Rng a(101), b(101);
  Rng fa = a.Fork(1);
  Rng fb = b.Fork(2);
  EXPECT_NE(fa.NextU64(), fb.NextU64());
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  // Golden values lock the algorithm down so seeds stay portable.
  SplitMix64 sm(0);
  uint64_t first = sm.Next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.Next());
  EXPECT_NE(first, sm.Next());
}

}  // namespace
}  // namespace staq::util
