#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/stopwatch.h"

namespace staq::util {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, EmitBelowThresholdIsSilentButSafe) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // Must not crash or emit; there is no output capture here, the contract
  // is purely "safe to call at any level".
  LogDebug("suppressed");
  LogInfo("suppressed");
  LogWarning("suppressed");
  LogError("visible-in-stderr");
  SetLogLevel(original);
}

TEST(StopwatchTest, ElapsedIncreasesMonotonically) {
  Stopwatch watch;
  double first = watch.ElapsedSeconds();
  double second = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1000, 50.0);
}

TEST(StopwatchTest, ResetRestartsFromZero) {
  Stopwatch watch;
  // Burn a little time.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  double before = watch.ElapsedSeconds();
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), before + 1e-3);
}

TEST(StageTimerTest, AccumulatesAcrossWindows) {
  StageTimer timer;
  EXPECT_DOUBLE_EQ(timer.TotalSeconds(), 0.0);
  timer.Add(1.5);
  timer.Add(0.5);
  EXPECT_DOUBLE_EQ(timer.TotalSeconds(), 2.0);
  timer.Start();
  timer.Stop();
  EXPECT_GE(timer.TotalSeconds(), 2.0);
  EXPECT_LT(timer.TotalSeconds(), 2.1);
}

}  // namespace
}  // namespace staq::util
