#include "util/status.h"

#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <string>

namespace staq::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad beta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad beta");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad beta");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAborted), "Aborted");
}

TEST(StatusTest, TransportFactoriesCarryCode) {
  Status unavailable = Status::Unavailable("replica behind");
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_EQ(unavailable.ToString(), "Unavailable: replica behind");
  Status aborted = Status::Aborted("replay diverged");
  EXPECT_EQ(aborted.code(), StatusCode::kAborted);
  EXPECT_EQ(aborted.ToString(), "Aborted: replay diverged");
}

TEST(StatusTest, CodeNamesRoundTripUniquely) {
  // The wire protocol ships codes by value and reports them by name; a
  // duplicate or recycled name would make remote errors ambiguous. Walk
  // every code (kOk..kAborted are contiguous) and require distinct names.
  constexpr StatusCode kAllCodes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kOutOfRange,
      StatusCode::kFailedPrecondition, StatusCode::kInternal,
      StatusCode::kIoError,      StatusCode::kResourceExhausted,
      StatusCode::kDeadlineExceeded,   StatusCode::kCancelled,
      StatusCode::kDataLoss,     StatusCode::kUnavailable,
      StatusCode::kAborted,
  };
  std::set<std::string> names;
  for (StatusCode code : kAllCodes) {
    std::string name = StatusCodeName(code);
    EXPECT_NE(name, "Unknown") << "unnamed code";
    EXPECT_TRUE(names.insert(name).second) << "duplicate name: " << name;
  }
  EXPECT_EQ(names.size(), std::size(kAllCodes));
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

Status Inner(bool fail) {
  if (fail) return Status::Internal("inner failed");
  return Status::OK();
}

Status Outer(bool fail) {
  STAQ_RETURN_NOT_OK(Inner(fail));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Outer(false).ok());
  Status s = Outer(true);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "inner failed");
}

}  // namespace
}  // namespace staq::util
