#include "util/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace staq::util {
namespace {

TEST(ThreadPoolTest, SpawnsAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  ThreadPool pool4(4);
  EXPECT_EQ(pool4.num_threads(), 4u);
}

TEST(ThreadPoolTest, SubmitRunsTaskAndFutureCompletes) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  auto future = pool.Submit([&] { value.store(42); });
  future.get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPoolTest, ReusableAcrossSubmitWaves) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; ++wave) {
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 20; ++i) {
      futures.push_back(pool.Submit([&] { count.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(count.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPoolTest, TaskExceptionReachesFutureAndPoolSurvives) {
  ThreadPool pool(2);
  auto bad = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still accept work.
  std::atomic<int> value{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] { value.fetch_add(1); }).get();
  }
  EXPECT_EQ(value.load(), 8);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForResultIndependentOfWorkerCount) {
  constexpr size_t kN = 257;
  auto run = [&](size_t workers) {
    ThreadPool pool(workers);
    std::vector<double> out(kN);
    pool.ParallelFor(kN, [&](size_t i) {
      out[i] = static_cast<double>(i) * 1.5 + 1.0;
    });
    return out;
  };
  std::vector<double> serial = run(1);
  std::vector<double> parallel = run(5);
  EXPECT_EQ(serial, parallel);
}

TEST(ThreadPoolTest, ParallelForZeroAndOneElement) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsAfterAllChunksFinish) {
  ThreadPool pool(3);
  std::atomic<size_t> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [&](size_t i) {
                         ran.fetch_add(1);
                         if (i == 7) throw std::logic_error("bad index");
                       }),
      std::logic_error);
  // Every index either ran or was skipped as part of the throwing chunk;
  // the pool is intact afterwards.
  std::atomic<int> value{0};
  pool.ParallelFor(16, [&](size_t) { value.fetch_add(1); });
  EXPECT_EQ(value.load(), 16);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&] { done.fetch_add(1); });
    }
    // Destructor must run all 32 queued tasks before joining.
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, HandleReportsLifecycleAndWaits) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  TaskHandle handle = pool.SubmitHandle([&] { value.store(11); });
  ASSERT_TRUE(handle.valid());
  handle.Wait();
  EXPECT_EQ(handle.state(), TaskState::kDone);
  EXPECT_EQ(value.load(), 11);

  TaskHandle empty;
  EXPECT_FALSE(empty.valid());
  empty.Wait();  // no-op, must not block
}

TEST(ThreadPoolTest, HandleWaitRethrowsTaskException) {
  ThreadPool pool(1);
  TaskHandle handle =
      pool.SubmitHandle([] { throw std::runtime_error("handled boom"); });
  EXPECT_THROW(handle.Wait(), std::runtime_error);
  EXPECT_EQ(handle.state(), TaskState::kDone);
  // Pool survives, as with plain Submit.
  std::atomic<int> value{0};
  pool.Submit([&] { value.store(1); }).get();
  EXPECT_EQ(value.load(), 1);
}

TEST(ThreadPoolTest, CancelWithdrawsQueuedTaskBeforeItRuns) {
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  // Occupy the only worker so the second task is provably still queued.
  auto blocker = pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  std::atomic<bool> ran{false};
  TaskHandle handle = pool.SubmitHandle([&] { ran.store(true); });
  EXPECT_EQ(handle.state(), TaskState::kQueued);
  EXPECT_GE(pool.PendingTasks(), 1u);
  EXPECT_TRUE(handle.Cancel());
  EXPECT_EQ(handle.state(), TaskState::kCancelled);
  EXPECT_FALSE(handle.Cancel());  // idempotent: already withdrawn

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  blocker.get();
  handle.Wait();  // resolves immediately for a cancelled task
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPoolTest, CancelAfterStartFailsAndTaskResultSurvives) {
  // The cancel/start race resolves under the handle state machine: once a
  // worker has claimed the task (kQueued -> kRunning), Cancel() must lose
  // and the caller gets the completed result, never a half-run task.
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool started = false, release = false;
  std::atomic<int> value{0};
  TaskHandle handle = pool.SubmitHandle([&] {
    {
      std::lock_guard<std::mutex> lock(mu);
      started = true;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    value.store(99);
  });
  {
    // Wait until the worker has provably entered the task body.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return started; });
  }
  EXPECT_EQ(handle.state(), TaskState::kRunning);
  EXPECT_FALSE(handle.Cancel());  // too late: the worker owns it now
  EXPECT_EQ(handle.state(), TaskState::kRunning);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  handle.Wait();
  EXPECT_EQ(handle.state(), TaskState::kDone);
  EXPECT_EQ(value.load(), 99);  // the task ran to completion despite Cancel
}

TEST(ThreadPoolTest, CancelFailsOnceTaskIsDone) {
  ThreadPool pool(2);
  TaskHandle handle = pool.SubmitHandle([] {});
  handle.Wait();
  EXPECT_FALSE(handle.Cancel());
  EXPECT_EQ(handle.state(), TaskState::kDone);
}

TEST(ThreadPoolTest, PendingTasksDrainsToZero) {
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([] {}));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(pool.PendingTasks(), 0u);
}

TEST(ThreadPoolTest, SharedPoolIsASingleton) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
  std::atomic<int> value{0};
  a.Submit([&] { value.store(7); }).get();
  EXPECT_EQ(value.load(), 7);
}

// --- schedule shaking ------------------------------------------------------

TEST(PerturbedPoolTest, EveryTaskStillRunsExactlyOnce) {
  ThreadPool pool(4);
  pool.EnablePerturbation({.seed = 7, .max_delay_us = 50, .reorder = true});
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> runs(kTasks);
  for (auto& r : runs) r.store(0);
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&runs, i] { runs[i].fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
}

TEST(PerturbedPoolTest, HandleSemanticsSurviveReordering) {
  // Reordering must not break the handle state machine: a cancelled task
  // never runs, everything else runs exactly once, whatever order the
  // perturbation popped the queue in.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ThreadPool pool(1);
    pool.EnablePerturbation({.seed = seed, .max_delay_us = 20,
                             .reorder = true});
    std::mutex mu;
    std::condition_variable cv;
    bool started = false, release = false;
    auto blocker = pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      started = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    });
    {
      // The only worker must hold the blocker before anything else is
      // queued, or the reordering pop could start a task we plan to cancel.
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return started; });
    }

    constexpr int kTasks = 16;
    std::vector<std::atomic<int>> runs(kTasks);
    for (auto& r : runs) r.store(0);
    std::vector<TaskHandle> handles;
    for (int i = 0; i < kTasks; ++i) {
      handles.push_back(pool.SubmitHandle([&runs, i] { runs[i].fetch_add(1); }));
    }
    std::vector<bool> cancelled(kTasks, false);
    for (int i = 0; i < kTasks; i += 3) {
      cancelled[i] = handles[i].Cancel();  // all still queued: must succeed
      EXPECT_TRUE(cancelled[i]);
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
    blocker.get();
    for (int i = 0; i < kTasks; ++i) {
      handles[i].Wait();
      EXPECT_EQ(runs[i].load(), cancelled[i] ? 0 : 1)
          << "task " << i << " seed " << seed;
      EXPECT_EQ(handles[i].state(),
                cancelled[i] ? TaskState::kCancelled : TaskState::kDone);
    }
  }
}

TEST(PerturbedPoolTest, ParallelForResultIsUnchanged) {
  constexpr size_t kN = 257;
  auto run = [&](std::optional<ThreadPool::PerturbOptions> perturb) {
    ThreadPool pool(4);
    if (perturb) pool.EnablePerturbation(*perturb);
    std::vector<double> out(kN);
    pool.ParallelFor(kN, [&](size_t i) {
      out[i] = static_cast<double>(i) * 2.5 - 1.0;
    });
    return out;
  };
  std::vector<double> quiet = run(std::nullopt);
  std::vector<double> shaken =
      run(ThreadPool::PerturbOptions{.seed = 11, .max_delay_us = 30,
                                     .reorder = true});
  EXPECT_EQ(quiet, shaken);
}

TEST(PerturbingExecutorTest, SubmitsThroughJitterAndDrains) {
  PerturbingExecutor::Options options;
  options.perturb = {.seed = 3, .max_delay_us = 40, .reorder = true};
  options.max_submit_delay_us = 40;
  PerturbingExecutor executor(3, options);
  EXPECT_EQ(executor.num_threads(), 3u);

  constexpr int kTasks = 64;
  std::vector<std::atomic<int>> runs(kTasks);
  for (auto& r : runs) r.store(0);
  std::vector<TaskHandle> handles;
  for (int i = 0; i < kTasks; ++i) {
    handles.push_back(executor.SubmitHandle([&runs, i] { runs[i].fetch_add(1); }));
  }
  for (auto& handle : handles) handle.Wait();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
  EXPECT_EQ(executor.PendingTasks(), 0u);
  // The wrapped pool stays usable directly.
  std::atomic<int> value{0};
  executor.pool().Submit([&] { value.store(5); }).get();
  EXPECT_EQ(value.load(), 5);
}

}  // namespace
}  // namespace staq::util
