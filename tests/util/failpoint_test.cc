// Unit tests for the failpoint registry itself. These call
// FailPoints::Evaluate directly (the registry is always compiled); whether
// the STAQ_FAILPOINT macro in production code expands to Evaluate is a
// build-option concern covered by the serve fault-injection suite.
#include "util/failpoint.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace staq::util {
namespace {

using namespace std::chrono_literals;

class FailPointTest : public ::testing::Test {
 protected:
  ~FailPointTest() override { FailPoints::DisarmAll(); }
};

TEST_F(FailPointTest, UnarmedSiteIsANoopButCountsHits) {
  uint64_t before = FailPoints::HitCount("test.fp.unarmed");
  FailPoints::Evaluate("test.fp.unarmed");
  FailPoints::Evaluate("test.fp.unarmed");
  EXPECT_EQ(FailPoints::HitCount("test.fp.unarmed"), before + 2);
  EXPECT_EQ(FailPoints::TripCount("test.fp.unarmed"), 0u);
}

TEST_F(FailPointTest, ThrowFiresWithSiteAndMessage) {
  FailPoints::Arm("test.fp.throw", FailPointConfig::Throw("disk full"));
  try {
    FailPoints::Evaluate("test.fp.throw");
    FAIL() << "armed site did not throw";
  } catch (const FailPointError& error) {
    EXPECT_NE(std::string(error.what()).find("test.fp.throw"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("disk full"), std::string::npos);
  }
  EXPECT_EQ(FailPoints::TripCount("test.fp.throw"), 1u);
}

TEST_F(FailPointTest, DisarmedSitePassesThrough) {
  FailPoints::Arm("test.fp.disarm", FailPointConfig::Throw());
  FailPoints::Disarm("test.fp.disarm");
  FailPoints::Evaluate("test.fp.disarm");  // must not throw
  EXPECT_EQ(FailPoints::TripCount("test.fp.disarm"), 0u);
}

TEST_F(FailPointTest, ThrowOnceFiresExactlyOnce) {
  FailPoints::Arm("test.fp.once", FailPointConfig::ThrowOnce());
  EXPECT_THROW(FailPoints::Evaluate("test.fp.once"), FailPointError);
  FailPoints::Evaluate("test.fp.once");  // limit reached: passes
  FailPoints::Evaluate("test.fp.once");
  EXPECT_EQ(FailPoints::TripCount("test.fp.once"), 1u);
}

TEST_F(FailPointTest, SkipAndEveryScheduleSelectsHits) {
  // Ignore the first 2 hits, then fire on every 3rd of the remainder:
  // hits 3, 6, 9, ... fire.
  FailPointConfig config = FailPointConfig::Throw();
  config.skip = 2;
  config.every = 3;
  FailPoints::Arm("test.fp.schedule", config);
  std::vector<int> fired;
  for (int hit = 1; hit <= 12; ++hit) {
    try {
      FailPoints::Evaluate("test.fp.schedule");
    } catch (const FailPointError&) {
      fired.push_back(hit);
    }
  }
  EXPECT_EQ(fired, (std::vector<int>{3, 6, 9, 12}));
  EXPECT_EQ(FailPoints::TripCount("test.fp.schedule"), 4u);
}

TEST_F(FailPointTest, ReArmingRestartsTheScheduleCounter) {
  FailPointConfig third = FailPointConfig::Throw();
  third.skip = 2;
  FailPoints::Arm("test.fp.rearm", third);
  FailPoints::Evaluate("test.fp.rearm");  // hit 1: skipped
  FailPoints::Arm("test.fp.rearm", third);
  // The two pre-rearm hits no longer count: two more skips are needed.
  FailPoints::Evaluate("test.fp.rearm");
  FailPoints::Evaluate("test.fp.rearm");
  EXPECT_THROW(FailPoints::Evaluate("test.fp.rearm"), FailPointError);
}

TEST_F(FailPointTest, DelayPassesThroughAfterSleeping) {
  FailPoints::Arm("test.fp.delay", FailPointConfig::Delay(1ms));
  FailPoints::Evaluate("test.fp.delay");  // returns normally
  EXPECT_EQ(FailPoints::TripCount("test.fp.delay"), 1u);
}

TEST_F(FailPointTest, BlockParksThreadsUntilDisarm) {
  FailPoints::Arm("test.fp.block", FailPointConfig::Block());
  std::atomic<int> released{0};
  std::vector<std::thread> parked;
  for (int t = 0; t < 3; ++t) {
    parked.emplace_back([&] {
      FailPoints::Evaluate("test.fp.block");
      released.fetch_add(1);
    });
  }
  // Wait until all three threads are provably inside the site.
  while (FailPoints::BlockedCount("test.fp.block") < 3) {
    std::this_thread::yield();
  }
  EXPECT_EQ(released.load(), 0);
  FailPoints::Disarm("test.fp.block");
  for (auto& thread : parked) thread.join();
  EXPECT_EQ(released.load(), 3);
  EXPECT_EQ(FailPoints::BlockedCount("test.fp.block"), 0u);
}

TEST_F(FailPointTest, DisarmAllReleasesBlockedThreads) {
  FailPoints::Arm("test.fp.blockall", FailPointConfig::Block());
  std::thread parked([&] { FailPoints::Evaluate("test.fp.blockall"); });
  while (FailPoints::BlockedCount("test.fp.blockall") == 0) {
    std::this_thread::yield();
  }
  FailPoints::DisarmAll();
  parked.join();
}

TEST_F(FailPointTest, ScopedFailPointDisarmsOnDestruction) {
  {
    ScopedFailPoint fp("test.fp.scoped", FailPointConfig::Throw());
    EXPECT_EQ(fp.site(), "test.fp.scoped");
    EXPECT_THROW(FailPoints::Evaluate("test.fp.scoped"), FailPointError);
  }
  FailPoints::Evaluate("test.fp.scoped");  // disarmed: passes
}

TEST_F(FailPointTest, ScopedFailPointReleasesBlockedThreadsOnDestruction) {
  std::atomic<bool> released{false};
  std::thread parked;
  {
    ScopedFailPoint fp("test.fp.scoped_block", FailPointConfig::Block());
    parked = std::thread([&] {
      FailPoints::Evaluate("test.fp.scoped_block");
      released.store(true);
    });
    while (FailPoints::BlockedCount("test.fp.scoped_block") == 0) {
      std::this_thread::yield();
    }
    EXPECT_FALSE(released.load());
  }
  parked.join();
  EXPECT_TRUE(released.load());
}

TEST_F(FailPointTest, ArmingBeforeFirstEvaluateWorks) {
  FailPoints::Arm("test.fp.fresh_site_never_seen", FailPointConfig::Throw());
  EXPECT_THROW(FailPoints::Evaluate("test.fp.fresh_site_never_seen"),
               FailPointError);
}

TEST_F(FailPointTest, RegisteredListsEverySiteSorted) {
  FailPoints::Evaluate("test.fp.catalog_b");
  FailPoints::Evaluate("test.fp.catalog_a");
  std::vector<std::string> sites = FailPoints::Registered();
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
  EXPECT_NE(std::find(sites.begin(), sites.end(), "test.fp.catalog_a"),
            sites.end());
  EXPECT_NE(std::find(sites.begin(), sites.end(), "test.fp.catalog_b"),
            sites.end());
}

TEST_F(FailPointTest, EvaluateIsSafeFromManyThreads) {
  FailPointConfig config = FailPointConfig::Throw();
  config.every = 2;
  FailPoints::Arm("test.fp.mt", config);
  std::atomic<int> threw{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        try {
          FailPoints::Evaluate("test.fp.mt");
        } catch (const FailPointError&) {
          threw.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(threw.load(), 200);  // every 2nd of 400 hits
  EXPECT_EQ(FailPoints::TripCount("test.fp.mt"), 200u);
}

}  // namespace
}  // namespace staq::util
