#include "util/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace staq::util {
namespace {

TEST(CsvTableTest, HeaderOnly) {
  CsvTable table({"a", "b"});
  EXPECT_EQ(table.num_columns(), 2u);
  EXPECT_EQ(table.num_rows(), 0u);
  EXPECT_EQ(table.ToCsv(), "a,b\n");
}

TEST(CsvTableTest, AddRowAndSerialize) {
  CsvTable table({"city", "zones"});
  ASSERT_TRUE(table.AddRow({"brindale", "784"}).ok());
  ASSERT_TRUE(table.AddRow({"covely", "256"}).ok());
  EXPECT_EQ(table.ToCsv(), "city,zones\nbrindale,784\ncovely,256\n");
  EXPECT_EQ(table.row(1)[0], "covely");
}

TEST(CsvTableTest, RejectsWrongArity) {
  CsvTable table({"a", "b"});
  Status s = table.AddRow({"only-one"});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(CsvTableTest, QuotesSpecialCharacters) {
  CsvTable table({"x"});
  ASSERT_TRUE(table.AddRow({"has,comma"}).ok());
  ASSERT_TRUE(table.AddRow({"has\"quote"}).ok());
  ASSERT_TRUE(table.AddRow({"has\nnewline"}).ok());
  EXPECT_EQ(table.ToCsv(),
            "x\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(CsvTableTest, NumFormatting) {
  EXPECT_EQ(CsvTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(CsvTable::Num(3.14159, 0), "3");
  EXPECT_EQ(CsvTable::Num(static_cast<int64_t>(-42)), "-42");
  EXPECT_EQ(CsvTable::Num(0.5, 3), "0.500");
}

TEST(CsvTableTest, WriteFileRoundTrip) {
  CsvTable table({"k", "v"});
  ASSERT_TRUE(table.AddRow({"one", "1"}).ok());
  std::string path = ::testing::TempDir() + "/staq_csv_test.csv";
  ASSERT_TRUE(table.WriteFile(path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "k,v\none,1\n");
  std::remove(path.c_str());
}

TEST(CsvTableTest, WriteFileFailsForBadPath) {
  CsvTable table({"a"});
  Status s = table.WriteFile("/nonexistent-dir-xyz/out.csv");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace staq::util
