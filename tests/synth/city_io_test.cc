#include "synth/city_io.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "graph/dijkstra.h"
#include "gtfs/gtfs_csv.h"
#include "router/router.h"
#include "testing/test_city.h"
#include "util/rng.h"

namespace staq::synth {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const char* name) {
  std::string dir = ::testing::TempDir() + "/staq_city_" + name;
  fs::remove_all(dir);
  return dir;
}

/// Save + reload a city, carrying the feed through a copy.
City RoundTrip(const City& city, const std::string& dir) {
  EXPECT_TRUE(SaveCityCsv(city, dir).ok());
  // The feed is persisted separately (GTFS); here we route it through the
  // GTFS writer/reader as the CLI does.
  geo::LocalProjection projection(geo::LatLon{52.45, -1.7});
  EXPECT_TRUE(gtfs::WriteFeedCsv(city.feed, projection, dir).ok());
  auto feed = gtfs::ReadFeedCsv(dir, projection);
  EXPECT_TRUE(feed.ok());
  auto loaded = LoadCityCsv(dir, std::move(feed).value());
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return std::move(loaded).value();
}

TEST(CityIoTest, RoundTripPreservesZonesAndPois) {
  City original = testing::TinyCity();
  std::string dir = FreshDir("roundtrip");
  City loaded = RoundTrip(original, dir);

  ASSERT_EQ(loaded.zones.size(), original.zones.size());
  for (size_t z = 0; z < original.zones.size(); ++z) {
    EXPECT_NEAR(loaded.zones[z].centroid.x, original.zones[z].centroid.x, 0.01);
    EXPECT_NEAR(loaded.zones[z].centroid.y, original.zones[z].centroid.y, 0.01);
    EXPECT_NEAR(loaded.zones[z].population, original.zones[z].population, 0.01);
    EXPECT_NEAR(loaded.zones[z].vulnerability,
                original.zones[z].vulnerability, 1e-5);
  }
  ASSERT_EQ(loaded.pois.size(), original.pois.size());
  for (size_t p = 0; p < original.pois.size(); ++p) {
    EXPECT_EQ(loaded.pois[p].category, original.pois[p].category);
    EXPECT_NEAR(loaded.pois[p].position.x, original.pois[p].position.x, 0.01);
  }
  fs::remove_all(dir);
}

TEST(CityIoTest, RoundTripPreservesRoadGraph) {
  City original = testing::TinyCity();
  std::string dir = FreshDir("roads");
  City loaded = RoundTrip(original, dir);

  ASSERT_EQ(loaded.road.num_nodes(), original.road.num_nodes());
  ASSERT_EQ(loaded.road.num_arcs(), original.road.num_arcs());
  // Shortest paths must agree (edge set identical up to rounding).
  auto d_orig = graph::ShortestPaths(original.road, 0);
  auto d_load = graph::ShortestPaths(loaded.road, 0);
  for (size_t n = 0; n < d_orig.size(); ++n) {
    EXPECT_NEAR(d_orig[n], d_load[n], 1.0);
  }
  EXPECT_EQ(loaded.zone_node.size(), loaded.zones.size());
  fs::remove_all(dir);
}

TEST(CityIoTest, LoadedCityRunsTheFullPipeline) {
  City original = testing::SmallCity();
  std::string dir = FreshDir("pipeline");
  City loaded = RoundTrip(original, dir);

  core::SsrPipeline pipeline(&loaded, gtfs::WeekdayAmPeak());
  auto pois = loaded.PoisOf(PoiCategory::kVaxCenter);
  ASSERT_FALSE(pois.empty());
  core::GravityConfig gravity;
  gravity.sample_rate_per_hour = 4;
  core::Todam todam = pipeline.BuildGravityTodam(pois, gravity, 1);
  core::PipelineConfig config;
  config.beta = 0.2;
  config.model = ml::ModelKind::kOls;
  auto run = pipeline.Run(pois, todam, config);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run.value().mac.size(), loaded.zones.size());
  fs::remove_all(dir);
}

TEST(CityIoTest, MissingDirectoryFails) {
  gtfs::Feed feed = testing::LineFeed();
  auto loaded = LoadCityCsv("/nonexistent-city-dir", std::move(feed));
  EXPECT_FALSE(loaded.ok());
}

TEST(CityIoTest, NonDenseZoneIdsRejected) {
  std::string dir = FreshDir("badzones");
  fs::create_directories(dir);
  std::ofstream(dir + "/zones.csv")
      << "zone_id,x_m,y_m,population,vulnerability\n"
      << "0,0,0,100,0.5\n"
      << "2,100,0,100,0.5\n";  // gap: id 1 missing
  std::ofstream(dir + "/pois.csv") << "poi_id,category,x_m,y_m\n";
  std::ofstream(dir + "/roads.csv")
      << "kind,a,b,c\nN,0,0,0\nN,1,100,0\nE,0,1,100\n";
  auto loaded = LoadCityCsv(dir, testing::LineFeed());
  EXPECT_FALSE(loaded.ok());
  fs::remove_all(dir);
}

TEST(CityIoTest, BadNumberRejected) {
  std::string dir = FreshDir("badnum");
  fs::create_directories(dir);
  std::ofstream(dir + "/zones.csv")
      << "zone_id,x_m,y_m,population,vulnerability\n"
      << "0,zero,0,100,0.5\n";
  std::ofstream(dir + "/pois.csv") << "poi_id,category,x_m,y_m\n";
  std::ofstream(dir + "/roads.csv") << "kind,a,b,c\nN,0,0,0\n";
  auto loaded = LoadCityCsv(dir, testing::LineFeed());
  EXPECT_FALSE(loaded.ok());
  fs::remove_all(dir);
}

TEST(CityIoTest, UnknownPoiCategoryRejected) {
  std::string dir = FreshDir("badpoi");
  fs::create_directories(dir);
  std::ofstream(dir + "/zones.csv")
      << "zone_id,x_m,y_m,population,vulnerability\n0,0,0,100,0.5\n"
      << "1,100,0,100,0.5\n";
  std::ofstream(dir + "/pois.csv")
      << "poi_id,category,x_m,y_m\n0,nightclub,0,0\n";
  std::ofstream(dir + "/roads.csv") << "kind,a,b,c\nN,0,0,0\n";
  auto loaded = LoadCityCsv(dir, testing::LineFeed());
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("nightclub"), std::string::npos);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace staq::synth
