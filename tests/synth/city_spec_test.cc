#include "synth/city_spec.h"

#include <gtest/gtest.h>

namespace staq::synth {
namespace {

TEST(CitySpecTest, BrindaleFullScaleMatchesPaperCounts) {
  CitySpec spec = CitySpec::Brindale(1.0);
  // Birmingham: 3217 zones; lattice is the nearest square.
  EXPECT_NEAR(spec.num_zones(), 3217, 120);
  ASSERT_EQ(spec.pois.size(), 4u);
  EXPECT_EQ(spec.pois[0].category, PoiCategory::kSchool);
  EXPECT_EQ(spec.pois[0].count, 874);
  EXPECT_EQ(spec.pois[1].count, 56);  // hospitals
  EXPECT_EQ(spec.pois[2].count, 82);  // vax centres
  EXPECT_EQ(spec.pois[3].count, 20);  // job centres
  EXPECT_DOUBLE_EQ(spec.scale, 1.0);
}

TEST(CitySpecTest, CovelyFullScaleMatchesPaperCounts) {
  CitySpec spec = CitySpec::Covely(1.0);
  EXPECT_NEAR(spec.num_zones(), 1014, 60);
  EXPECT_EQ(spec.pois[0].count, 230);
  EXPECT_EQ(spec.pois[1].count, 6);
  EXPECT_EQ(spec.pois[2].count, 22);
  EXPECT_EQ(spec.pois[3].count, 2);
}

TEST(CitySpecTest, ScalingShrinksZonesAndPois) {
  CitySpec full = CitySpec::Brindale(1.0);
  CitySpec quarter = CitySpec::Brindale(0.25);
  EXPECT_LT(quarter.num_zones(), full.num_zones() / 3);
  EXPECT_NEAR(quarter.pois[0].count, 874 / 4, 5);
  EXPECT_DOUBLE_EQ(quarter.scale, 0.25);
}

TEST(CitySpecTest, SmallPoiCategoriesAreFloored) {
  CitySpec spec = CitySpec::Covely(0.1);
  // 6 hospitals scaled to 0.6 would destroy the category; floored at 4.
  EXPECT_GE(spec.pois[1].count, 4);
  // 2 job centres can never exceed the paper's count.
  EXPECT_EQ(spec.pois[3].count, 2);
}

TEST(CitySpecTest, BrindaleHasDenserTransitThanCovely) {
  CitySpec b = CitySpec::Brindale(0.25);
  CitySpec c = CitySpec::Covely(0.25);
  EXPECT_GT(b.num_radial_routes, c.num_radial_routes);
  EXPECT_LT(b.peak_headway_s, c.peak_headway_s);
}

TEST(CitySpecTest, TinyScaleStillValid) {
  CitySpec spec = CitySpec::Covely(0.01);
  EXPECT_GE(spec.zones_x, 4);
  EXPECT_GE(spec.zones_y, 4);
  for (const PoiSpec& p : spec.pois) EXPECT_GE(p.count, 1);
}

TEST(CitySpecTest, UpscalingBeyondPaperWorks) {
  CitySpec spec = CitySpec::Brindale(1.5);
  EXPECT_GT(spec.num_zones(), 4000);
  EXPECT_GT(spec.pois[0].count, 874);
  EXPECT_DOUBLE_EQ(spec.scale, 1.5);
}

TEST(PoiCategoryTest, NamesAreStable) {
  EXPECT_STREQ(PoiCategoryName(PoiCategory::kSchool), "school");
  EXPECT_STREQ(PoiCategoryName(PoiCategory::kHospital), "hospital");
  EXPECT_STREQ(PoiCategoryName(PoiCategory::kVaxCenter), "vax_center");
  EXPECT_STREQ(PoiCategoryName(PoiCategory::kJobCenter), "job_center");
}

}  // namespace
}  // namespace staq::synth
