#include "synth/city_builder.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "geo/latlon.h"
#include "testing/test_city.h"

namespace staq::synth {
namespace {

TEST(CityBuilderTest, RejectsDegenerateSpecs) {
  CitySpec spec = CitySpec::Covely(0.06);
  spec.zones_x = 1;
  EXPECT_FALSE(BuildCity(spec).ok());
  spec = CitySpec::Covely(0.06);
  spec.zone_spacing_m = 0;
  EXPECT_FALSE(BuildCity(spec).ok());
  spec = CitySpec::Covely(0.06);
  spec.bus_speed_mps = -1;
  EXPECT_FALSE(BuildCity(spec).ok());
}

TEST(CityBuilderTest, DeterministicForSameSeed) {
  City a = testing::TinyCity(5);
  City b = testing::TinyCity(5);
  ASSERT_EQ(a.zones.size(), b.zones.size());
  for (size_t i = 0; i < a.zones.size(); ++i) {
    EXPECT_EQ(a.zones[i].centroid, b.zones[i].centroid);
    EXPECT_DOUBLE_EQ(a.zones[i].population, b.zones[i].population);
  }
  EXPECT_EQ(a.feed.num_trips(), b.feed.num_trips());
  ASSERT_EQ(a.pois.size(), b.pois.size());
  for (size_t i = 0; i < a.pois.size(); ++i) {
    EXPECT_EQ(a.pois[i].position, b.pois[i].position);
  }
}

TEST(CityBuilderTest, DifferentSeedsProduceDifferentCities) {
  City a = testing::TinyCity(5);
  City b = testing::TinyCity(6);
  bool any_diff = false;
  for (size_t i = 0; i < a.zones.size() && !any_diff; ++i) {
    any_diff = !(a.zones[i].centroid == b.zones[i].centroid);
  }
  EXPECT_TRUE(any_diff);
}

TEST(CityBuilderTest, ZonesInsideExtentWithPositivePopulation) {
  City city = testing::TinyCity();
  EXPECT_EQ(city.zones.size(),
            static_cast<size_t>(city.spec.num_zones()));
  for (const Zone& z : city.zones) {
    EXPECT_TRUE(city.extent.Contains(z.centroid))
        << z.centroid.x << "," << z.centroid.y;
    EXPECT_GT(z.population, 0.0);
    EXPECT_GE(z.vulnerability, 0.0);
    EXPECT_LE(z.vulnerability, 1.0);
  }
}

TEST(CityBuilderTest, CentralZonesDenserOnAverage) {
  City city = std::move(BuildCity(CitySpec::Brindale(0.1, 3))).value();
  geo::Point centre = city.Centre();
  double extent = std::min(city.extent.Width(), city.extent.Height());
  double inner_sum = 0, outer_sum = 0;
  int inner_n = 0, outer_n = 0;
  for (const Zone& z : city.zones) {
    double r = geo::Distance(z.centroid, centre);
    if (r < 0.2 * extent) {
      inner_sum += z.population;
      ++inner_n;
    } else if (r > 0.4 * extent) {
      outer_sum += z.population;
      ++outer_n;
    }
  }
  ASSERT_GT(inner_n, 0);
  ASSERT_GT(outer_n, 0);
  EXPECT_GT(inner_sum / inner_n, outer_sum / outer_n);
}

TEST(CityBuilderTest, RoadGraphIsFinalizedAndMostlyConnected) {
  City city = testing::TinyCity();
  EXPECT_TRUE(city.road.finalized());
  EXPECT_GT(city.road.num_nodes(), city.zones.size());
  std::vector<uint32_t> labels;
  size_t components = city.road.ConnectedComponents(&labels);
  EXPECT_EQ(components, 1u);  // lattice with full 4-neighbour edges
}

TEST(CityBuilderTest, ZoneNodesAreValidRoadNodes) {
  City city = testing::TinyCity();
  ASSERT_EQ(city.zone_node.size(), city.zones.size());
  for (size_t z = 0; z < city.zones.size(); ++z) {
    ASSERT_LT(city.zone_node[z], city.road.num_nodes());
    // The snapped node should be near the centroid (within one zone pitch).
    double d = geo::Distance(city.road.position(city.zone_node[z]),
                             city.zones[z].centroid);
    EXPECT_LT(d, city.spec.zone_spacing_m);
  }
}

TEST(CityBuilderTest, FeedValidatesAndServesTheAmPeak) {
  City city = testing::TinyCity();
  EXPECT_TRUE(city.feed.Validate().ok());
  EXPECT_GT(city.feed.num_routes(), 0u);
  EXPECT_GT(city.feed.num_trips(), 0u);
  // Some stop must have weekday AM-peak departures.
  gtfs::TimeInterval am = gtfs::WeekdayAmPeak();
  bool any = false;
  for (gtfs::StopId s = 0; s < city.feed.num_stops() && !any; ++s) {
    any = !city.feed.DeparturesInWindow(s, am.day, am.start, am.end).empty();
  }
  EXPECT_TRUE(any);
}

TEST(CityBuilderTest, WeekendServiceSparserThanWeekday) {
  City city = testing::TinyCity();
  gtfs::TimeInterval am = gtfs::WeekdayAmPeak();
  size_t weekday = 0, weekend = 0;
  for (gtfs::StopId s = 0; s < city.feed.num_stops(); ++s) {
    weekday +=
        city.feed.DeparturesInWindow(s, gtfs::Day::kTuesday, am.start, am.end)
            .size();
    weekend +=
        city.feed.DeparturesInWindow(s, gtfs::Day::kSunday, am.start, am.end)
            .size();
  }
  EXPECT_GT(weekday, 0u);
  EXPECT_LT(weekend, weekday);
}

TEST(CityBuilderTest, PoiCountsMatchSpecAndSitInExtent) {
  City city = testing::TinyCity();
  for (const PoiSpec& ps : city.spec.pois) {
    auto pois = city.PoisOf(ps.category);
    EXPECT_EQ(pois.size(), static_cast<size_t>(ps.count))
        << PoiCategoryName(ps.category);
  }
  // POIs may jitter slightly outside the zone lattice but not far.
  double margin = 3 * city.spec.zone_spacing_m;
  for (const Poi& p : city.pois) {
    EXPECT_GT(p.position.x, city.extent.min_x - margin);
    EXPECT_LT(p.position.x, city.extent.max_x + margin);
  }
}

TEST(CityBuilderTest, PoiIdsAreDense) {
  City city = testing::TinyCity();
  for (size_t i = 0; i < city.pois.size(); ++i) {
    EXPECT_EQ(city.pois[i].id, i);
  }
}

TEST(CityBuilderTest, DispersedPoisSpreadOut) {
  // Hospitals (dispersed placement) should have a larger mean pairwise
  // distance than job centres (central placement) relative to counts.
  City city = std::move(BuildCity(CitySpec::Brindale(0.1, 3))).value();
  auto hospitals = city.PoisOf(PoiCategory::kHospital);
  ASSERT_GE(hospitals.size(), 2u);
  double min_pair = 1e18;
  for (size_t i = 0; i < hospitals.size(); ++i) {
    for (size_t j = i + 1; j < hospitals.size(); ++j) {
      min_pair = std::min(min_pair, geo::Distance(hospitals[i].position,
                                                  hospitals[j].position));
    }
  }
  // Max-min placement: even the closest pair is well separated.
  EXPECT_GT(min_pair, city.spec.zone_spacing_m);
}

TEST(CityBuilderTest, SharedStopsExistAtRouteCrossings) {
  City city = testing::TinyCity();
  // At least one stop should serve more than one route (the interchange
  // prerequisite).
  gtfs::TimeInterval all_day{gtfs::MakeTime(5, 0), gtfs::MakeTime(23, 0),
                             gtfs::Day::kTuesday, "day"};
  bool shared = false;
  for (gtfs::StopId s = 0; s < city.feed.num_stops() && !shared; ++s) {
    shared = city.feed
                 .RoutesThrough(s, all_day.day, all_day.start, all_day.end)
                 .size() > 1;
  }
  EXPECT_TRUE(shared);
}

TEST(CityTest, TotalPopulationIsSumOfZones) {
  City city = testing::TinyCity();
  double sum = 0;
  for (const Zone& z : city.zones) sum += z.population;
  EXPECT_DOUBLE_EQ(city.TotalPopulation(), sum);
  EXPECT_GT(sum, 0.0);
}

}  // namespace
}  // namespace staq::synth
