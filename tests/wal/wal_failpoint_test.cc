// Fault injection for staq::wal: every failure site degrades into a clean
// Status, a failed write turns the log read-only (broken()), and reopening
// recovers a consistent prefix — never a crash, never silent corruption.
//
// Sites covered (see DESIGN.md §8): wal.open, wal.append, wal.fsync,
// wal.recover.read.
#include <filesystem>

#include <gtest/gtest.h>

#include "util/failpoint.h"
#include "wal/wal.h"

namespace staq::wal {
namespace {

namespace fs = std::filesystem;

std::string WalDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "staq_wal_fp_" + name;
  fs::remove_all(dir);
  return dir;
}

MutationRecord Record(uint64_t sequence) {
  return MutationRecord::AddPoi(sequence, synth::PoiCategory::kSchool,
                                geo::Point{10.0, 20.0},
                                static_cast<uint32_t>(sequence));
}

class WalFailPointTest : public ::testing::Test {
 protected:
  ~WalFailPointTest() override { util::FailPoints::DisarmAll(); }
};

TEST_F(WalFailPointTest, OpenFailureIsACleanStatus) {
  std::string dir = WalDir("open");
  util::ScopedFailPoint fp("wal.open", util::FailPointConfig::ThrowOnce());
  auto wal = MutationWal::Open(dir);
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), util::StatusCode::kIoError);

  // The failure consumed the arming; a retry simply works.
  auto retry = MutationWal::Open(dir);
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_TRUE(retry.value()->Append(Record(1)).ok());
}

TEST_F(WalFailPointTest, RecoveryReadFailureIsACleanStatus) {
  std::string dir = WalDir("recover");
  {
    auto wal = MutationWal::Open(dir);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(Record(1)).ok());
  }
  util::ScopedFailPoint fp("wal.recover.read",
                           util::FailPointConfig::ThrowOnce());
  EXPECT_EQ(ReadLog(dir).status().code(), util::StatusCode::kIoError);
  // The log itself is intact: the next read sees everything.
  auto contents = ReadLog(dir);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_EQ(contents.value().records.size(), 1u);
}

TEST_F(WalFailPointTest, AppendFailureBreaksTheWalUntilReopened) {
  std::string dir = WalDir("append");
  {
    auto wal = MutationWal::Open(dir);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(Record(1)).ok());

    {
      util::ScopedFailPoint fp("wal.append",
                               util::FailPointConfig::ThrowOnce());
      auto st = wal.value()->Append(Record(2));
      EXPECT_EQ(st.code(), util::StatusCode::kIoError);
    }
    // Bytes of unknown extent may be on disk: the WAL refuses to continue.
    EXPECT_TRUE(wal.value()->broken());
    EXPECT_EQ(wal.value()->Append(Record(2)).code(),
              util::StatusCode::kFailedPrecondition);
  }  // close the broken instance before recovery touches its segment

  // Reopen recovers the acknowledged prefix; the never-acked record #2 is
  // gone (correct — its Append returned an error) and the chain continues.
  auto wal = MutationWal::Open(dir);
  ASSERT_TRUE(wal.ok()) << wal.status();
  EXPECT_EQ(wal.value()->last_sequence(), 1u);
  EXPECT_TRUE(wal.value()->Append(Record(2)).ok());
  EXPECT_TRUE(VerifyLog(dir).ok());
}

TEST_F(WalFailPointTest, SegmentHeaderWriteFailureRecovers) {
  std::string dir = WalDir("header");
  {
    auto wal = MutationWal::Open(dir);
    ASSERT_TRUE(wal.ok());

    // The very first append creates the segment; fail its header write
    // (wal.append guards every WriteAll, the header included).
    {
      util::ScopedFailPoint fp("wal.append",
                               util::FailPointConfig::ThrowOnce());
      EXPECT_EQ(wal.value()->Append(Record(1)).code(),
                util::StatusCode::kIoError);
    }
    EXPECT_TRUE(wal.value()->broken());
  }

  // The debris is a headerless file; Open drops it and the log is empty.
  auto wal = MutationWal::Open(dir);
  ASSERT_TRUE(wal.ok()) << wal.status();
  EXPECT_EQ(wal.value()->last_sequence(), 0u);
  EXPECT_TRUE(wal.value()->Append(Record(1)).ok());
  EXPECT_TRUE(VerifyLog(dir).ok());
}

TEST_F(WalFailPointTest, FsyncFailureBreaksTheWal) {
  std::string dir = WalDir("fsync");
  {
    auto wal = MutationWal::Open(dir);  // kEveryAppend: Append syncs
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(Record(1)).ok());

    {
      util::ScopedFailPoint fp("wal.fsync",
                               util::FailPointConfig::ThrowOnce());
      EXPECT_EQ(wal.value()->Append(Record(2)).code(),
                util::StatusCode::kIoError);
    }
    // fsyncgate discipline: after a failed fsync durability is unknown, so
    // the WAL will not accept further appends.
    EXPECT_TRUE(wal.value()->broken());
    EXPECT_EQ(wal.value()->Append(Record(3)).code(),
              util::StatusCode::kFailedPrecondition);
  }

  // Reopen recovers a clean prefix. Record #2 was never acknowledged, so
  // both outcomes are legal: present (the buffered bytes reached disk when
  // the file closed) or absent — but the chain must be gap-free either way.
  auto wal = MutationWal::Open(dir);
  ASSERT_TRUE(wal.ok()) << wal.status();
  EXPECT_GE(wal.value()->last_sequence(), 1u);
  EXPECT_LE(wal.value()->last_sequence(), 2u);
  EXPECT_TRUE(VerifyLog(dir).ok());
  EXPECT_TRUE(
      wal.value()->Append(Record(wal.value()->last_sequence() + 1)).ok());
}

TEST_F(WalFailPointTest, ExplicitSyncFailureBreaksTheWal) {
  std::string dir = WalDir("sync");
  WalOptions options;
  options.fsync = WalOptions::Fsync::kManual;
  auto wal = MutationWal::Open(dir, options);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append(Record(1)).ok());

  util::ScopedFailPoint fp("wal.fsync", util::FailPointConfig::ThrowOnce());
  EXPECT_EQ(wal.value()->Sync().code(), util::StatusCode::kIoError);
  EXPECT_TRUE(wal.value()->broken());
}

}  // namespace
}  // namespace staq::wal
