// staq::wal — record codec, append/recover round trips, rotation, torn
// tails, corruption taxonomy, and the tailing follower.
#include "wal/wal.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "wal/record.h"

namespace staq::wal {
namespace {

namespace fs = std::filesystem;

/// Fresh (empty) per-test WAL directory under the gtest temp root.
std::string WalDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "staq_wal_" + name;
  fs::remove_all(dir);
  return dir;
}

MutationRecord SampleAdd(uint64_t sequence) {
  return MutationRecord::AddPoi(sequence, synth::PoiCategory::kHospital,
                                geo::Point{1234.5, -67.25},
                                /*poi_id=*/900 + static_cast<uint32_t>(sequence));
}

/// A short history touching every mutation type.
std::vector<MutationRecord> SampleHistory(uint64_t first_sequence = 1) {
  std::vector<MutationRecord> records;
  records.push_back(SampleAdd(first_sequence));
  records.push_back(MutationRecord::RemovePoi(first_sequence + 1, 17));
  records.push_back(
      MutationRecord::SetInterval(first_sequence + 2, gtfs::WeekdayPmPeak()));
  records.push_back(SampleAdd(first_sequence + 3));
  return records;
}

TEST(MutationRecordTest, CodecRoundTripsEveryType) {
  for (const MutationRecord& record : SampleHistory(41)) {
    std::vector<uint8_t> bytes;
    EncodeMutationRecord(record, &bytes);
    store::ByteReader in(bytes.data(), bytes.size());
    MutationRecord decoded;
    ASSERT_TRUE(DecodeMutationRecord(&in, &decoded))
        << MutationTypeName(record.type);
    EXPECT_TRUE(in.exhausted());
    EXPECT_EQ(record, decoded) << record.ToString();
  }
}

TEST(MutationRecordTest, DecodeRejectsTruncationEverywhere) {
  std::vector<uint8_t> bytes;
  EncodeMutationRecord(SampleAdd(7), &bytes);
  // Every strict prefix must fail cleanly, never read past the end.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    store::ByteReader in(bytes.data(), cut);
    MutationRecord decoded;
    EXPECT_FALSE(DecodeMutationRecord(&in, &decoded)) << "prefix " << cut;
  }
}

/// The five disruption records (types 4-8), explicit and all-target forms.
std::vector<MutationRecord> DisruptionHistory(uint64_t first_sequence = 1) {
  std::vector<MutationRecord> records;
  records.push_back(MutationRecord::SuspendRoute(first_sequence, 3));
  records.push_back(MutationRecord::CloseStop(first_sequence + 1, 41));
  records.push_back(MutationRecord::ScaleHeadway(first_sequence + 2, 7, 2));
  records.push_back(
      MutationRecord::ScaleHeadway(first_sequence + 3, kAllTargets, 4));
  records.push_back(MutationRecord::SetFare(first_sequence + 4, 5, 4.25));
  records.push_back(
      MutationRecord::SetFare(first_sequence + 5, kAllTargets, 0.0));
  records.push_back(MutationRecord::ScaleWalkSpeed(first_sequence + 6, 0.5));
  return records;
}

TEST(MutationRecordTest, CodecRoundTripsEveryDisruptionType) {
  for (const MutationRecord& record : DisruptionHistory(91)) {
    std::vector<uint8_t> bytes;
    EncodeMutationRecord(record, &bytes);
    store::ByteReader in(bytes.data(), bytes.size());
    MutationRecord decoded;
    ASSERT_TRUE(DecodeMutationRecord(&in, &decoded))
        << MutationTypeName(record.type);
    EXPECT_TRUE(in.exhausted());
    EXPECT_EQ(record, decoded) << record.ToString();
    // Truncation stays clean for the new layouts too.
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      store::ByteReader prefix(bytes.data(), cut);
      EXPECT_FALSE(DecodeMutationRecord(&prefix, &decoded))
          << MutationTypeName(record.type) << " prefix " << cut;
    }
  }
}

TEST(MutationRecordTest, DecodeRejectsOutOfDomainDisruptions) {
  // The encoder writes whatever it is given; the *decoder* is the trust
  // boundary (WAL recovery, the wire), so out-of-domain payloads must come
  // back as corruption, not as records a replay would choke on.
  std::vector<MutationRecord> bad;
  bad.push_back(MutationRecord::SuspendRoute(1, kAllTargets));
  bad.push_back(MutationRecord::CloseStop(1, kAllTargets));
  bad.push_back(MutationRecord::ScaleHeadway(1, 0, 1));  // factor must be >= 2
  bad.push_back(MutationRecord::ScaleHeadway(1, 0, 0));
  bad.push_back(MutationRecord::SetFare(1, 0, -0.25));
  bad.push_back(
      MutationRecord::SetFare(1, 0, std::numeric_limits<double>::quiet_NaN()));
  bad.push_back(MutationRecord::ScaleWalkSpeed(1, 0.0));
  bad.push_back(MutationRecord::ScaleWalkSpeed(1, -0.5));
  bad.push_back(
      MutationRecord::ScaleWalkSpeed(1, std::numeric_limits<double>::infinity()));
  for (const MutationRecord& record : bad) {
    std::vector<uint8_t> bytes;
    EncodeMutationRecord(record, &bytes);
    store::ByteReader in(bytes.data(), bytes.size());
    MutationRecord decoded;
    EXPECT_FALSE(DecodeMutationRecord(&in, &decoded)) << record.ToString();
  }
}

TEST(MutationRecordTest, DecodeRejectsUnknownType) {
  std::vector<uint8_t> bytes;
  EncodeMutationRecord(SampleAdd(7), &bytes);
  bytes[0] = 0x7F;  // type byte is first
  store::ByteReader in(bytes.data(), bytes.size());
  MutationRecord decoded;
  EXPECT_FALSE(DecodeMutationRecord(&in, &decoded));
}

TEST(WalTest, AbsentDirectoryIsAnEmptyLog) {
  std::string dir = WalDir("absent");
  auto contents = ReadLog(dir);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_TRUE(contents.value().records.empty());
  EXPECT_TRUE(contents.value().segments.empty());
  EXPECT_TRUE(VerifyLog(dir).ok());
}

TEST(WalTest, AppendReadRoundTrip) {
  std::string dir = WalDir("roundtrip");
  auto wal = MutationWal::Open(dir);
  ASSERT_TRUE(wal.ok()) << wal.status();
  std::vector<MutationRecord> history = SampleHistory();
  for (const MutationRecord& record : history) {
    ASSERT_TRUE(wal.value()->Append(record).ok()) << record.ToString();
  }
  EXPECT_EQ(wal.value()->last_sequence(), 4u);
  EXPECT_EQ(wal.value()->stats().appends, 4u);

  auto contents = ReadLog(dir);
  ASSERT_TRUE(contents.ok()) << contents.status();
  ASSERT_EQ(contents.value().records.size(), history.size());
  for (size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(contents.value().records[i], history[i]) << "record " << i;
  }
  EXPECT_FALSE(contents.value().torn_tail);
  EXPECT_TRUE(VerifyLog(dir).ok());
}

TEST(WalTest, PreDisruptionSegmentsRecoverAndExtendWithDisruptions) {
  // Compatibility: the disruption extension added types 4-8 without
  // changing the segment header version or the byte layout of types 1-3,
  // so a log written before the extension is byte-for-byte what today's
  // writer produces for the same records — recover it, then keep logging
  // disruptions into the same chain.
  std::string dir = WalDir("predisruption");
  {
    auto wal = MutationWal::Open(dir);
    ASSERT_TRUE(wal.ok());
    for (const MutationRecord& record : SampleHistory()) {
      ASSERT_TRUE(wal.value()->Append(record).ok());
    }
  }
  ASSERT_TRUE(VerifyLog(dir).ok());

  auto wal = MutationWal::Open(dir);
  ASSERT_TRUE(wal.ok()) << wal.status();
  EXPECT_EQ(wal.value()->last_sequence(), 4u);
  for (const MutationRecord& record : DisruptionHistory(5)) {
    ASSERT_TRUE(wal.value()->Append(record).ok()) << record.ToString();
  }
  EXPECT_EQ(wal.value()->last_sequence(), 11u);

  auto contents = ReadLog(dir);
  ASSERT_TRUE(contents.ok()) << contents.status();
  ASSERT_EQ(contents.value().records.size(), 11u);
  EXPECT_EQ(contents.value().records[4],
            MutationRecord::SuspendRoute(5, 3));  // the mixed log round-trips
  EXPECT_TRUE(VerifyLog(dir).ok());
}

TEST(WalTest, ReopenContinuesTheChain) {
  std::string dir = WalDir("reopen");
  {
    auto wal = MutationWal::Open(dir);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(SampleAdd(1)).ok());
    ASSERT_TRUE(wal.value()->Append(SampleAdd(2)).ok());
  }
  auto wal = MutationWal::Open(dir);
  ASSERT_TRUE(wal.ok()) << wal.status();
  EXPECT_EQ(wal.value()->last_sequence(), 2u);
  ASSERT_TRUE(wal.value()->Append(SampleAdd(3)).ok());
  auto contents = ReadLog(dir);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value().records.size(), 3u);
}

TEST(WalTest, OutOfOrderAppendIsAbortedAndHarmless) {
  std::string dir = WalDir("order");
  auto wal = MutationWal::Open(dir);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append(SampleAdd(1)).ok());

  // A gap, a duplicate, and a rewind are all refused with kAborted...
  for (uint64_t bad : {3ull, 1ull, 0ull}) {
    auto st = wal.value()->Append(SampleAdd(bad));
    EXPECT_EQ(st.code(), util::StatusCode::kAborted) << "sequence " << bad;
  }
  // ...without breaking the log: the in-order append still lands.
  EXPECT_FALSE(wal.value()->broken());
  EXPECT_TRUE(wal.value()->Append(SampleAdd(2)).ok());
  auto contents = ReadLog(dir);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value().records.size(), 2u);
}

TEST(WalTest, FirstRecordSeedsTheChainAboveOne) {
  // A warm-started primary resumes its snapshot's history: the first record
  // of the empty log carries snapshot_sequence + 1.
  std::string dir = WalDir("seeded");
  {
    auto wal = MutationWal::Open(dir);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal.value()->Append(SampleAdd(0)).code(),
              util::StatusCode::kFailedPrecondition);  // sequences start at 1
    ASSERT_TRUE(wal.value()->Append(SampleAdd(41)).ok());
    ASSERT_TRUE(wal.value()->Append(SampleAdd(42)).ok());
  }
  auto wal = MutationWal::Open(dir);
  ASSERT_TRUE(wal.ok()) << wal.status();
  EXPECT_EQ(wal.value()->last_sequence(), 42u);
  EXPECT_EQ(wal.value()->Append(SampleAdd(7)).code(),
            util::StatusCode::kAborted);
  EXPECT_TRUE(wal.value()->Append(SampleAdd(43)).ok());
}

TEST(WalTest, RotationSpansSegmentsSeamlessly) {
  std::string dir = WalDir("rotation");
  WalOptions options;
  options.segment_bytes = 64;  // every record rotates
  auto wal = MutationWal::Open(dir, options);
  ASSERT_TRUE(wal.ok());
  constexpr uint64_t kRecords = 10;
  for (uint64_t seq = 1; seq <= kRecords; ++seq) {
    ASSERT_TRUE(wal.value()->Append(SampleAdd(seq)).ok());
  }
  EXPECT_GT(wal.value()->stats().segments_created, 1u);

  auto contents = ReadLog(dir);
  ASSERT_TRUE(contents.ok()) << contents.status();
  ASSERT_EQ(contents.value().records.size(), kRecords);
  EXPECT_GT(contents.value().segments.size(), 1u);
  for (uint64_t seq = 1; seq <= kRecords; ++seq) {
    EXPECT_EQ(contents.value().records[seq - 1].sequence, seq);
  }
  EXPECT_TRUE(VerifyLog(dir).ok());

  // Reopen across the rotation boundary and keep appending.
  wal = MutationWal::Open(dir, options);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal.value()->last_sequence(), kRecords);
  EXPECT_TRUE(wal.value()->Append(SampleAdd(kRecords + 1)).ok());
}

/// Appends `extra` garbage bytes to the lexicographically last segment —
/// the shape a crash mid-write leaves behind.
void TearTail(const std::string& dir, size_t extra) {
  std::string last;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().string() > last) last = entry.path().string();
  }
  ASSERT_FALSE(last.empty());
  std::ofstream out(last, std::ios::binary | std::ios::app);
  for (size_t i = 0; i < extra; ++i) out.put('\x5A');
}

TEST(WalTest, TornTailIsReportedAndTruncatedOnOpen) {
  std::string dir = WalDir("torn");
  {
    auto wal = MutationWal::Open(dir);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(SampleAdd(1)).ok());
    ASSERT_TRUE(wal.value()->Append(SampleAdd(2)).ok());
  }
  TearTail(dir, 5);  // less than a frame header: unambiguous crash debris

  // ReadLog tolerates it: valid prefix plus a torn-tail report.
  auto contents = ReadLog(dir);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_EQ(contents.value().records.size(), 2u);
  EXPECT_TRUE(contents.value().torn_tail);
  EXPECT_GT(contents.value().torn_offset, 0u);
  // VerifyLog is stricter: a torn tail is not a clean log.
  EXPECT_EQ(VerifyLog(dir).code(), util::StatusCode::kDataLoss);

  // Open truncates the debris and appends continue from the durable prefix.
  auto wal = MutationWal::Open(dir);
  ASSERT_TRUE(wal.ok()) << wal.status();
  EXPECT_EQ(wal.value()->last_sequence(), 2u);
  ASSERT_TRUE(wal.value()->Append(SampleAdd(3)).ok());
  EXPECT_TRUE(VerifyLog(dir).ok());
}

TEST(WalTest, MidLogCorruptionIsDataLoss) {
  std::string dir = WalDir("midlog");
  WalOptions options;
  options.segment_bytes = 64;  // force several segments
  {
    auto wal = MutationWal::Open(dir, options);
    ASSERT_TRUE(wal.ok());
    for (uint64_t seq = 1; seq <= 6; ++seq) {
      ASSERT_TRUE(wal.value()->Append(SampleAdd(seq)).ok());
    }
  }
  // Tear a *non-last* segment: durable successors exist, so this is loss,
  // not crash debris.
  std::vector<std::string> segments;
  for (const auto& entry : fs::directory_iterator(dir)) {
    segments.push_back(entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  ASSERT_GT(segments.size(), 2u);
  fs::resize_file(segments[0], fs::file_size(segments[0]) - 3);

  EXPECT_EQ(ReadLog(dir).status().code(), util::StatusCode::kDataLoss);
  EXPECT_EQ(VerifyLog(dir).code(), util::StatusCode::kDataLoss);
  EXPECT_EQ(MutationWal::Open(dir, options).status().code(),
            util::StatusCode::kDataLoss);
}

TEST(WalTest, FlippedPayloadByteIsCaughtByTheChecksum) {
  std::string dir = WalDir("bitflip");
  {
    auto wal = MutationWal::Open(dir);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(SampleAdd(1)).ok());
    ASSERT_TRUE(wal.value()->Append(SampleAdd(2)).ok());
  }
  std::string segment;
  for (const auto& entry : fs::directory_iterator(dir)) {
    segment = entry.path().string();
  }
  // Flip one byte in the first record's payload (just past the segment
  // header and frame header). The checksum must catch it; within the last
  // segment a bad frame is indistinguishable from crash debris, so the
  // valid-prefix contract applies: record 1 and everything after it is cut.
  std::fstream file(segment, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(static_cast<std::streamoff>(kWalHeaderSize + kWalFrameSize + 2));
  file.put('\xFF');
  file.close();

  auto contents = ReadLog(dir);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_TRUE(contents.value().torn_tail);
  EXPECT_TRUE(contents.value().records.empty());
  EXPECT_EQ(contents.value().torn_offset, kWalHeaderSize);
  // VerifyLog never blesses a log that lost bytes, whatever the cause.
  EXPECT_EQ(VerifyLog(dir).code(), util::StatusCode::kDataLoss);
}

TEST(WalTest, NonWalFileIsInvalidArgument) {
  std::string dir = WalDir("notawal");
  fs::create_directories(dir);
  std::ofstream(dir + "/wal-00000000000000000001.log", std::ios::binary)
      << "definitely not a WAL segment header, but comfortably long";
  EXPECT_EQ(ReadLog(dir).status().code(), util::StatusCode::kInvalidArgument);
}

TEST(WalFollowerTest, TailsNewlyDurableRecords) {
  std::string dir = WalDir("follower");
  auto wal = MutationWal::Open(dir);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append(SampleAdd(1)).ok());
  ASSERT_TRUE(wal.value()->Append(SampleAdd(2)).ok());

  WalFollower follower(dir, /*start_after_sequence=*/1);
  std::vector<MutationRecord> batch;
  ASSERT_TRUE(follower.Poll(&batch).ok());
  ASSERT_EQ(batch.size(), 1u);  // record 1 is behind the cursor
  EXPECT_EQ(batch[0].sequence, 2u);
  EXPECT_EQ(follower.next_sequence(), 3u);

  // Nothing new: an empty poll, not an error.
  batch.clear();
  ASSERT_TRUE(follower.Poll(&batch).ok());
  EXPECT_TRUE(batch.empty());

  // The writer appends; the follower picks it up on the next poll.
  ASSERT_TRUE(wal.value()->Append(SampleAdd(3)).ok());
  ASSERT_TRUE(follower.Poll(&batch).ok());
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].sequence, 3u);
}

TEST(WalFollowerTest, IgnoresATornTailUntilItBecomesDurable) {
  std::string dir = WalDir("follower_torn");
  {
    auto wal = MutationWal::Open(dir);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(SampleAdd(1)).ok());
  }
  TearTail(dir, 4);

  WalFollower follower(dir, /*start_after_sequence=*/0);
  std::vector<MutationRecord> batch;
  ASSERT_TRUE(follower.Poll(&batch).ok());  // torn tail = "not there yet"
  EXPECT_EQ(batch.size(), 1u);

  // Recovery truncates the debris; the follower carries on unfazed.
  auto wal = MutationWal::Open(dir);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append(SampleAdd(2)).ok());
  batch.clear();
  ASSERT_TRUE(follower.Poll(&batch).ok());
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].sequence, 2u);
}

TEST(WalTest, ManualFsyncPolicyCountsSyncs) {
  std::string dir = WalDir("manual");
  WalOptions options;
  options.fsync = WalOptions::Fsync::kManual;
  auto wal = MutationWal::Open(dir, options);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append(SampleAdd(1)).ok());
  EXPECT_EQ(wal.value()->stats().syncs, 0u);
  ASSERT_TRUE(wal.value()->Sync().ok());
  EXPECT_EQ(wal.value()->stats().syncs, 1u);

  // kEveryAppend syncs as part of the append itself.
  std::string dir2 = WalDir("every");
  auto wal2 = MutationWal::Open(dir2);
  ASSERT_TRUE(wal2.ok());
  ASSERT_TRUE(wal2.value()->Append(SampleAdd(1)).ok());
  EXPECT_EQ(wal2.value()->stats().syncs, 1u);
}

}  // namespace
}  // namespace staq::wal
