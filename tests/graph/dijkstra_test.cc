#include "graph/dijkstra.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace staq::graph {
namespace {

/// A 1-D chain 0 - 1 - 2 - ... - (n-1) with unit edges.
Graph Chain(size_t n) {
  Graph g;
  for (size_t i = 0; i < n; ++i) {
    g.AddNode({static_cast<double>(i), 0});
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    (void)g.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), 1.0);
  }
  g.Finalize();
  return g;
}

/// Grid graph with unit edges, rows x cols.
Graph GridGraph(int rows, int cols) {
  Graph g;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      g.AddNode({static_cast<double>(c), static_cast<double>(r)});
    }
  }
  auto id = [cols](int r, int c) { return static_cast<NodeId>(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) (void)g.AddEdge(id(r, c), id(r, c + 1), 1.0);
      if (r + 1 < rows) (void)g.AddEdge(id(r, c), id(r + 1, c), 1.0);
    }
  }
  g.Finalize();
  return g;
}

TEST(DijkstraTest, ChainDistances) {
  Graph g = Chain(5);
  auto dist = ShortestPaths(g, 0);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(dist[i], static_cast<double>(i));
  }
}

TEST(DijkstraTest, UnreachableNodesAreInfinite) {
  Graph g;
  g.AddNode({0, 0});
  g.AddNode({1, 0});
  g.Finalize();
  auto dist = ShortestPaths(g, 0);
  EXPECT_EQ(dist[0], 0.0);
  EXPECT_EQ(dist[1], kUnreachable);
}

TEST(DijkstraTest, PrefersShorterOfTwoPaths) {
  // Triangle: 0-1 direct length 10; 0-2-1 total 3.
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({1, 0});
  NodeId c = g.AddNode({0, 1});
  (void)g.AddEdge(a, b, 10.0);
  (void)g.AddEdge(a, c, 1.0);
  (void)g.AddEdge(c, b, 2.0);
  g.Finalize();
  auto dist = ShortestPaths(g, a);
  EXPECT_DOUBLE_EQ(dist[b], 3.0);
}

TEST(DijkstraTest, GridManhattanDistances) {
  Graph g = GridGraph(4, 5);
  auto dist = ShortestPaths(g, 0);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 5; ++c) {
      EXPECT_DOUBLE_EQ(dist[r * 5 + c], static_cast<double>(r + c));
    }
  }
}

TEST(BoundedDijkstraTest, RespectsBound) {
  Graph g = Chain(10);
  auto reached = BoundedShortestPaths(g, 0, 3.0);
  ASSERT_EQ(reached.size(), 4u);  // nodes 0..3
  for (size_t i = 0; i < reached.size(); ++i) {
    EXPECT_EQ(reached[i].node, i);
    EXPECT_DOUBLE_EQ(reached[i].distance, static_cast<double>(i));
  }
}

TEST(BoundedDijkstraTest, NonDecreasingOrder) {
  Graph g = GridGraph(6, 6);
  auto reached = BoundedShortestPaths(g, 14, 4.0);
  for (size_t i = 1; i < reached.size(); ++i) {
    EXPECT_LE(reached[i - 1].distance, reached[i].distance);
  }
}

TEST(BoundedDijkstraTest, ZeroBudgetOnlySource) {
  Graph g = Chain(5);
  auto reached = BoundedShortestPaths(g, 2, 0.0);
  ASSERT_EQ(reached.size(), 1u);
  EXPECT_EQ(reached[0].node, 2u);
}

TEST(PointToPointTest, MatchesFullSearch) {
  Graph g = GridGraph(8, 8);
  auto dist = ShortestPaths(g, 0);
  for (NodeId target : {1u, 9u, 63u, 32u}) {
    EXPECT_DOUBLE_EQ(ShortestPathDistance(g, 0, target), dist[target]);
  }
}

TEST(PointToPointTest, SourceEqualsTarget) {
  Graph g = Chain(3);
  EXPECT_DOUBLE_EQ(ShortestPathDistance(g, 1, 1), 0.0);
}

TEST(PointToPointTest, Unreachable) {
  Graph g;
  g.AddNode({0, 0});
  g.AddNode({1, 0});
  g.Finalize();
  EXPECT_EQ(ShortestPathDistance(g, 0, 1), kUnreachable);
}

TEST(MultiSourceTest, TakesMinimumOverSources) {
  Graph g = Chain(10);
  std::vector<ReachedNode> sources{{0, 0.0}, {9, 0.0}};
  auto dist = MultiSourceShortestPaths(g, sources);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[9], 0.0);
  EXPECT_DOUBLE_EQ(dist[4], 4.0);
  EXPECT_DOUBLE_EQ(dist[5], 4.0);  // closer to node 9
}

TEST(MultiSourceTest, InitialDistancesRespected) {
  Graph g = Chain(5);
  std::vector<ReachedNode> sources{{0, 10.0}, {4, 0.0}};
  auto dist = MultiSourceShortestPaths(g, sources);
  // Node 1: via node 0 costs 11, via node 4 costs 3.
  EXPECT_DOUBLE_EQ(dist[1], 3.0);
  EXPECT_DOUBLE_EQ(dist[0], 4.0);  // reached cheaper through the chain!
}

TEST(MultiSourceTest, EmptySources) {
  Graph g = Chain(3);
  auto dist = MultiSourceShortestPaths(g, {});
  for (double d : dist) EXPECT_EQ(d, kUnreachable);
}

// Property: bounded search results equal the full search restricted to the
// bound, on random graphs.
class DijkstraPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DijkstraPropertyTest, BoundedEqualsFilteredFull) {
  util::Rng rng(GetParam());
  Graph g;
  size_t n = 20 + rng.UniformU64(80);
  for (size_t i = 0; i < n; ++i) {
    g.AddNode({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  size_t edges = n * 2;
  for (size_t e = 0; e < edges; ++e) {
    NodeId a = static_cast<NodeId>(rng.UniformU64(n));
    NodeId b = static_cast<NodeId>(rng.UniformU64(n));
    if (a == b) continue;
    (void)g.AddEdge(a, b, rng.Uniform(0.1, 10.0));
  }
  g.Finalize();

  NodeId src = static_cast<NodeId>(rng.UniformU64(n));
  double bound = rng.Uniform(1.0, 20.0);
  auto full = ShortestPaths(g, src);
  auto bounded = BoundedShortestPaths(g, src, bound);

  size_t expect = 0;
  for (double d : full) {
    if (d <= bound) ++expect;
  }
  EXPECT_EQ(bounded.size(), expect);
  for (const auto& r : bounded) {
    EXPECT_DOUBLE_EQ(r.distance, full[r.node]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraPropertyTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace staq::graph
