#include "graph/graph.h"

#include <gtest/gtest.h>

namespace staq::graph {
namespace {

TEST(GraphTest, AddNodesAssignsDenseIds) {
  Graph g;
  EXPECT_EQ(g.AddNode({0, 0}), 0u);
  EXPECT_EQ(g.AddNode({1, 0}), 1u);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.position(1).x, 1.0);
}

TEST(GraphTest, BidirectionalEdgeCreatesTwoArcs) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({1, 0});
  ASSERT_TRUE(g.AddEdge(a, b, 5.0).ok());
  g.Finalize();
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_EQ(g.degree(a), 1u);
  EXPECT_EQ(g.degree(b), 1u);
  EXPECT_EQ(g.arcs_begin(a)->head, b);
  EXPECT_DOUBLE_EQ(g.arcs_begin(a)->length_m, 5.0);
}

TEST(GraphTest, DirectedEdgeCreatesOneArc) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({1, 0});
  ASSERT_TRUE(g.AddEdge(a, b, 5.0, /*bidirectional=*/false).ok());
  g.Finalize();
  EXPECT_EQ(g.num_arcs(), 1u);
  EXPECT_EQ(g.degree(a), 1u);
  EXPECT_EQ(g.degree(b), 0u);
}

TEST(GraphTest, AddEdgeRejectsUnknownNode) {
  Graph g;
  g.AddNode({0, 0});
  EXPECT_EQ(g.AddEdge(0, 5, 1.0).code(), util::StatusCode::kInvalidArgument);
}

TEST(GraphTest, AddEdgeRejectsNegativeLength) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({1, 0});
  EXPECT_EQ(g.AddEdge(a, b, -1.0).code(), util::StatusCode::kInvalidArgument);
}

TEST(GraphTest, AddEdgeAfterFinalizeFails) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({1, 0});
  g.Finalize();
  EXPECT_EQ(g.AddEdge(a, b, 1.0).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(GraphTest, FinalizeIdempotent) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({1, 0});
  ASSERT_TRUE(g.AddEdge(a, b, 1.0).ok());
  g.Finalize();
  g.Finalize();
  EXPECT_EQ(g.num_arcs(), 2u);
}

TEST(GraphTest, MultipleArcsGroupedByTail) {
  Graph g;
  NodeId n0 = g.AddNode({0, 0});
  NodeId n1 = g.AddNode({1, 0});
  NodeId n2 = g.AddNode({2, 0});
  ASSERT_TRUE(g.AddEdge(n0, n1, 1.0, false).ok());
  ASSERT_TRUE(g.AddEdge(n0, n2, 2.0, false).ok());
  ASSERT_TRUE(g.AddEdge(n1, n2, 3.0, false).ok());
  g.Finalize();
  EXPECT_EQ(g.degree(n0), 2u);
  EXPECT_EQ(g.degree(n1), 1u);
  EXPECT_EQ(g.degree(n2), 0u);
}

TEST(GraphTest, ConnectedComponentsSingle) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({1, 0});
  NodeId c = g.AddNode({2, 0});
  ASSERT_TRUE(g.AddEdge(a, b, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(b, c, 1.0).ok());
  g.Finalize();
  std::vector<uint32_t> labels;
  EXPECT_EQ(g.ConnectedComponents(&labels), 1u);
  EXPECT_EQ(labels[a], labels[c]);
}

TEST(GraphTest, ConnectedComponentsMultiple) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({1, 0});
  NodeId c = g.AddNode({10, 0});
  NodeId d = g.AddNode({11, 0});
  g.AddNode({20, 0});  // isolated
  ASSERT_TRUE(g.AddEdge(a, b, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(c, d, 1.0).ok());
  g.Finalize();
  std::vector<uint32_t> labels;
  EXPECT_EQ(g.ConnectedComponents(&labels), 3u);
  EXPECT_EQ(labels[a], labels[b]);
  EXPECT_EQ(labels[c], labels[d]);
  EXPECT_NE(labels[a], labels[c]);
}

}  // namespace
}  // namespace staq::graph
