// The tolerance policy + diff engine: every rule kind through its pass /
// fail / missing-metric paths, the approximate-quantile skip, the
// sanitizer relaxation, and a round trip over the checked-in baselines
// (each bench/baselines/BENCH_*.json must parse and self-diff clean under
// the checked-in policy — the perfgate contract, asserted in-process).
#include "exp/diff.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "exp/json.h"

namespace staq::exp {
namespace {

JsonDoc ParseOrDie(const std::string& text) {
  auto doc = JsonDoc::Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return doc.ok() ? std::move(doc).value() : JsonDoc();
}

BenchPolicy PolicyOrDie(const std::string& text) {
  auto policy = TolerancePolicy::Parse(text);
  EXPECT_TRUE(policy.ok()) << policy.status();
  EXPECT_EQ(policy.value().benches().size(), 1u);
  return policy.value().benches()[0];
}

TEST(TolerancePolicy, ParsesEveryRuleKind) {
  auto policy = TolerancePolicy::Parse(R"(# floors for the labeling bench
bench labeling {
  min csa_profile_speedup 3.0
  ceiling modes[4].seconds 2.5
  ratio_floor modes[4].spqs_per_s 0.50
  exact bit_identical
}

bench store {
  min speedup 10.0
}
)");
  ASSERT_TRUE(policy.ok()) << policy.status();
  ASSERT_EQ(policy.value().benches().size(), 2u);
  const BenchPolicy& labeling = policy.value().benches()[0];
  EXPECT_EQ(labeling.bench, "labeling");
  ASSERT_EQ(labeling.rules.size(), 4u);
  EXPECT_EQ(labeling.rules[0].kind, RuleKind::kMin);
  EXPECT_EQ(labeling.rules[0].metric, "csa_profile_speedup");
  EXPECT_EQ(labeling.rules[0].value, 3.0);
  EXPECT_EQ(labeling.rules[1].kind, RuleKind::kCeiling);
  EXPECT_EQ(labeling.rules[2].kind, RuleKind::kRatioFloor);
  EXPECT_EQ(labeling.rules[2].metric, "modes[4].spqs_per_s");
  EXPECT_EQ(labeling.rules[3].kind, RuleKind::kExact);
  ASSERT_NE(policy.value().Find("store"), nullptr);
  EXPECT_EQ(policy.value().Find("store")->rules.size(), 1u);
  EXPECT_EQ(policy.value().Find("absent"), nullptr);
}

TEST(TolerancePolicy, RejectsMalformedPoliciesWithPosition) {
  struct Case {
    const char* text;
    const char* wants;
  };
  const Case cases[] = {
      {"", "no bench blocks"},
      {"block labeling { min x 1 }", "expected 'bench', got 'block'"},
      {"bench { min x 1 }", "bench block needs a name"},
      {"bench a { min x 1 }\nbench a { min y 2 }",
       "duplicate bench block 'a'"},
      {"bench a { min x 1", "unterminated bench block"},
      {"bench a {\n  floor x 1\n}", "unknown rule kind 'floor'"},
      {"bench a {\n  min\n}", "rule 'min' needs a metric path"},
      {"bench a {\n  min x\n}", "needs a numeric threshold"},
      {"bench a {\n  min x lots\n}", "bad threshold 'lots'"},
      {"bench a {\n  exact x 1.0\n}", "unexpected trailing content"},
  };
  for (const Case& c : cases) {
    auto policy = TolerancePolicy::Parse(c.text);
    ASSERT_FALSE(policy.ok()) << c.text;
    EXPECT_NE(policy.status().message().find(c.wants), std::string::npos)
        << "policy: " << c.text << "\nerror: " << policy.status().message();
    EXPECT_NE(policy.status().message().find("policy parse error at line"),
              std::string::npos)
        << policy.status().message();
  }
}

TEST(DiffDocuments, MinRule) {
  BenchPolicy policy = PolicyOrDie("bench b { min speedup 3.0 }");
  JsonDoc baseline = ParseOrDie(R"({"speedup": 5.0})");

  DiffReport pass = DiffDocuments(ParseOrDie(R"({"speedup": 3.5})"), baseline,
                                  policy, {});
  EXPECT_TRUE(pass.ok());
  EXPECT_EQ(pass.passed, 1u);

  DiffReport fail = DiffDocuments(ParseOrDie(R"({"speedup": 2.9})"), baseline,
                                  policy, {});
  EXPECT_FALSE(fail.ok());
  EXPECT_EQ(fail.failed, 1u);
  EXPECT_NE(fail.ToString().find("FAIL"), std::string::npos);

  // A bench silently dropping a gated metric must not pass.
  DiffReport missing = DiffDocuments(ParseOrDie(R"({"other": 1})"), baseline,
                                     policy, {});
  EXPECT_FALSE(missing.ok());
  EXPECT_NE(missing.checks[0].detail.find("missing from run"),
            std::string::npos);
}

TEST(DiffDocuments, CeilingRule) {
  BenchPolicy policy = PolicyOrDie("bench b { ceiling p99_total_ms 10.0 }");
  JsonDoc baseline = ParseOrDie(R"({"p99_total_ms": 4.0})");
  EXPECT_TRUE(DiffDocuments(ParseOrDie(R"({"p99_total_ms": 9.9})"), baseline,
                            policy, {})
                  .ok());
  EXPECT_FALSE(DiffDocuments(ParseOrDie(R"({"p99_total_ms": 10.1})"), baseline,
                             policy, {})
                   .ok());
}

TEST(DiffDocuments, RatioFloorRule) {
  BenchPolicy policy = PolicyOrDie("bench b { ratio_floor qps 0.5 }");
  JsonDoc baseline = ParseOrDie(R"({"qps": 1000.0})");
  EXPECT_TRUE(DiffDocuments(ParseOrDie(R"({"qps": 501.0})"), baseline, policy,
                            {})
                  .ok());
  EXPECT_FALSE(DiffDocuments(ParseOrDie(R"({"qps": 499.0})"), baseline, policy,
                             {})
                   .ok());
  // ratio_floor needs the baseline value; its absence is a failure too.
  DiffReport no_base = DiffDocuments(ParseOrDie(R"({"qps": 900.0})"),
                                     ParseOrDie(R"({"other": 1})"), policy, {});
  EXPECT_FALSE(no_base.ok());
  EXPECT_NE(no_base.checks[0].detail.find("missing from baseline"),
            std::string::npos);
}

TEST(DiffDocuments, ExactRule) {
  BenchPolicy policy = PolicyOrDie("bench b { exact bit_identical }");
  EXPECT_TRUE(DiffDocuments(ParseOrDie(R"({"bit_identical": true})"),
                            ParseOrDie(R"({"bit_identical": true})"), policy,
                            {})
                  .ok());
  EXPECT_FALSE(DiffDocuments(ParseOrDie(R"({"bit_identical": false})"),
                             ParseOrDie(R"({"bit_identical": true})"), policy,
                             {})
                   .ok());
  EXPECT_FALSE(DiffDocuments(ParseOrDie(R"({"bit_identical": true})"),
                             ParseOrDie(R"({"other": 1})"), policy, {})
                   .ok());
  // Numbers compare by raw text: a formatting change fails exact.
  BenchPolicy count = PolicyOrDie("bench b { exact zones }");
  EXPECT_FALSE(DiffDocuments(ParseOrDie(R"({"zones": 324.0})"),
                             ParseOrDie(R"({"zones": 324})"), count, {})
                   .ok());
}

TEST(DiffDocuments, ApproximateQuantilesAreSkipped) {
  // cold.p99_ms was computed from 7 samples — its *_approx sibling marks
  // it unusable for gating, whichever side carries the flag.
  BenchPolicy policy = PolicyOrDie("bench b { ceiling cold.p99_ms 5.0 }");
  JsonDoc run_approx = ParseOrDie(
      R"({"cold": {"p99_ms": 50.0, "p99_approx": true}})");
  JsonDoc base_exact = ParseOrDie(
      R"({"cold": {"p99_ms": 2.0, "p99_approx": false}})");
  DiffReport skipped = DiffDocuments(run_approx, base_exact, policy, {});
  EXPECT_TRUE(skipped.ok());
  EXPECT_EQ(skipped.skipped, 1u);
  EXPECT_EQ(skipped.checks[0].state, CheckState::kSkipped);

  // Baseline-side flag skips too (an old baseline from a short run must
  // not gate a new, well-sampled run).
  JsonDoc base_approx = ParseOrDie(
      R"({"cold": {"p99_ms": 1.0, "p99_approx": true}})");
  JsonDoc run_exact = ParseOrDie(
      R"({"cold": {"p99_ms": 50.0, "p99_approx": false}})");
  EXPECT_EQ(DiffDocuments(run_exact, base_approx, policy, {}).skipped, 1u);

  // Both flags false: the rule gates normally.
  EXPECT_FALSE(DiffDocuments(run_exact, base_exact, policy, {}).ok());
}

TEST(DiffDocuments, RelaxPerfKeepsOnlyExactRules) {
  auto policy = TolerancePolicy::Parse(R"(bench b {
    min speedup 10.0
    ceiling p99_total_ms 1.0
    ratio_floor qps 0.9
    exact bit_identical
  })");
  ASSERT_TRUE(policy.ok()) << policy.status();
  // Terrible timings, wrong bit_identical: under relax_perf only the
  // exact rule may fail.
  JsonDoc run = ParseOrDie(
      R"({"speedup": 0.1, "p99_total_ms": 99.0, "qps": 1.0,
          "bit_identical": false})");
  JsonDoc baseline = ParseOrDie(
      R"({"speedup": 20.0, "p99_total_ms": 0.5, "qps": 1000.0,
          "bit_identical": true})");
  DiffOptions relax;
  relax.relax_perf = true;
  DiffReport report =
      DiffDocuments(run, baseline, policy.value().benches()[0], relax);
  EXPECT_EQ(report.skipped, 3u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.checks[3].rule.kind, RuleKind::kExact);
  EXPECT_EQ(report.checks[3].state, CheckState::kFail);

  // With a matching exact field the relaxed diff is clean.
  JsonDoc fixed = ParseOrDie(
      R"({"speedup": 0.1, "p99_total_ms": 99.0, "qps": 1.0,
          "bit_identical": true})");
  EXPECT_TRUE(
      DiffDocuments(fixed, baseline, policy.value().benches()[0], relax).ok());
}

TEST(DiffDocuments, ReportCountsAndRendering) {
  auto policy = TolerancePolicy::Parse(R"(bench b {
    min a 1.0
    min b 1.0
    ceiling c_ms 1.0
  })");
  ASSERT_TRUE(policy.ok()) << policy.status();
  JsonDoc run = ParseOrDie(
      R"({"a": 2.0, "b": 0.5, "c_ms": 9.0, "c_approx": true})");
  JsonDoc baseline = ParseOrDie(R"({"a": 2.0, "b": 2.0, "c_ms": 0.5})");
  DiffReport report =
      DiffDocuments(run, baseline, policy.value().benches()[0], {});
  EXPECT_EQ(report.passed, 1u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_FALSE(report.ok());
  std::string text = report.ToString();
  EXPECT_NE(text.find("PASS"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("SKIP"), std::string::npos);
}

// --- checked-in baseline round trip ----------------------------------------

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return text;
}

TEST(Baselines, EveryCheckedInBaselineParsesAndSelfDiffsClean) {
  const std::string dir = STAQ_BASELINES_DIR;
  auto policy = TolerancePolicy::Load(dir + "/policy.rules");
  ASSERT_TRUE(policy.ok()) << policy.status();
  ASSERT_FALSE(policy.value().benches().empty());
  for (const BenchPolicy& bench : policy.value().benches()) {
    const std::string path = dir + "/BENCH_" + bench.bench + ".json";
    std::string text = ReadFileOrEmpty(path);
    ASSERT_FALSE(text.empty()) << "policy names bench '" << bench.bench
                               << "' but " << path << " is missing";
    auto doc = JsonDoc::Parse(text);
    ASSERT_TRUE(doc.ok()) << path << ": " << doc.status();
    // A baseline must satisfy its own floors/ceilings — otherwise the
    // perfgate was checked in red.
    DiffReport report = DiffDocuments(doc.value(), doc.value(), bench, {});
    EXPECT_TRUE(report.ok())
        << path << " does not self-diff clean:\n" << report.ToString();
    EXPECT_EQ(report.failed, 0u);
  }
}

}  // namespace
}  // namespace staq::exp
