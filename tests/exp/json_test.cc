// The flattened JSON reader the diff layer runs on: every scalar of a
// bench document addressable by path, raw number text preserved so
// exact-match rules compare what was printed.
#include "exp/json.h"

#include <gtest/gtest.h>

namespace staq::exp {
namespace {

TEST(JsonDoc, FlattensNestedObjectsAndArrays) {
  auto doc = JsonDoc::Parse(R"({
    "bench": "labeling",
    "zones": 324,
    "modes": [
      {"name": "seed", "seconds": 0.5},
      {"name": "csa", "seconds": 0.1}
    ],
    "wal": {"append_mean_ms": 0.25, "fsyncs": 3}
  })");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const JsonDoc& d = doc.value();
  ASSERT_TRUE(d.Has("bench"));
  EXPECT_EQ(d.Find("bench")->kind, JsonKind::kString);
  EXPECT_EQ(d.Find("bench")->str, "labeling");
  EXPECT_EQ(d.Find("zones")->num, 324.0);
  EXPECT_EQ(d.Find("modes[0].name")->str, "seed");
  EXPECT_EQ(d.Find("modes[1].seconds")->num, 0.1);
  EXPECT_EQ(d.Find("wal.fsyncs")->num, 3.0);
  EXPECT_FALSE(d.Has("modes[2].name"));
  EXPECT_FALSE(d.Has("wal"));  // containers are not leaves
  EXPECT_EQ(d.entries().size(), 8u);
}

TEST(JsonDoc, RootScalarGetsEmptyPath) {
  auto doc = JsonDoc::Parse("42");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_TRUE(doc.value().Has(""));
  EXPECT_EQ(doc.value().Find("")->num, 42.0);
}

TEST(JsonDoc, PreservesRawNumberText) {
  auto doc = JsonDoc::Parse(R"({"a": 3.0, "b": 3.00, "c": 1e3})");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc.value().Find("a")->raw, "3.0");
  EXPECT_EQ(doc.value().Find("b")->raw, "3.00");
  EXPECT_EQ(doc.value().Find("c")->raw, "1e3");
  EXPECT_EQ(doc.value().Find("c")->num, 1000.0);
}

TEST(JsonDoc, BoolsAndNull) {
  auto doc = JsonDoc::Parse(R"({"t": true, "f": false, "n": null})");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc.value().Find("t")->kind, JsonKind::kBool);
  EXPECT_TRUE(doc.value().Find("t")->b);
  EXPECT_FALSE(doc.value().Find("f")->b);
  EXPECT_EQ(doc.value().Find("n")->kind, JsonKind::kNull);
}

TEST(JsonDoc, StringEscapes) {
  auto doc = JsonDoc::Parse(R"({"s": "a\"b\\c\nd", "u": "A\u00df"})");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc.value().Find("s")->str, "a\"b\\c\nd");
  EXPECT_EQ(doc.value().Find("u")->str, "A\xc3\x9f");
}

TEST(JsonDoc, EmptyContainersContributeNoEntries) {
  auto doc = JsonDoc::Parse(R"({"a": {}, "b": [], "c": 1})");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc.value().entries().size(), 1u);
}

TEST(JsonScalar, SameAsComparesNumbersByRawText) {
  auto doc = JsonDoc::Parse(R"({"a": 3.0, "b": 3.00, "c": 3.0})");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const JsonDoc& d = doc.value();
  // 3.0 vs 3.00 is a formatting change a baseline diff should surface.
  EXPECT_FALSE(d.Find("a")->SameAs(*d.Find("b")));
  EXPECT_TRUE(d.Find("a")->SameAs(*d.Find("c")));
}

TEST(JsonDoc, ErrorsNamePosition) {
  auto doc = JsonDoc::Parse("{\n  \"a\": 1,\n  \"b\": nope\n}");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("json parse error at line 3"),
            std::string::npos)
      << doc.status();
}

TEST(JsonDoc, RejectsTrailingContent) {
  auto doc = JsonDoc::Parse("{\"a\": 1} extra");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("trailing content"),
            std::string::npos);
}

TEST(JsonDoc, RejectsUnterminatedString) {
  auto doc = JsonDoc::Parse("{\"a\": \"oops");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("unterminated string"),
            std::string::npos);
}

TEST(JsonDoc, RejectsMissingComma) {
  auto doc = JsonDoc::Parse("{\"a\": 1 \"b\": 2}");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("line 1"), std::string::npos);
}

}  // namespace
}  // namespace staq::exp
