// The resumable sweep runner, driven by deterministic mock benches: cell
// execution order, failure accounting, snapshot reuse, the interruption
// seam (max_executed), and the headline resume contract — an interrupted
// sweep resumed over the same state dir assembles a final JSON
// byte-identical to the uninterrupted run's.
#include "exp/runner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "exp/config.h"
#include "util/strings.h"

namespace staq::exp {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "staq_exp_runner_" + name;
  fs::remove_all(dir);
  return dir;
}

ExperimentConfig ConfigOrDie(const std::string& text) {
  auto config = ExperimentConfig::Parse(text);
  EXPECT_TRUE(config.ok()) << config.status();
  return std::move(config).value();
}

/// A deterministic mock bench: result JSON is a pure function of the cell
/// parameters, and `calls` counts real executions (never cache hits).
BenchFn MockBench(int* calls, int exit_code = 0) {
  return [calls, exit_code](const RunSpec& spec) {
    ++*calls;
    std::string json = "{\n  \"bench\": \"" + spec.bench + "\"";
    for (const auto& [k, v] : spec.params) {
      json += ",\n  \"" + k + "\": \"" + v + "\"";
    }
    json += "\n}\n";
    return RunResult{exit_code, std::move(json)};
  };
}

constexpr char kConfig[] = R"(matrix sweep {
  bench = mock
  x = 1, 2, 3
  y = a, b
})";

TEST(RunSweep, ExecutesEveryCellInOrder) {
  int calls = 0;
  BenchRegistry registry;
  registry["mock"] = MockBench(&calls);
  RunnerOptions options;
  options.verbose = false;
  auto report = RunSweep(ConfigOrDie(kConfig), registry, options);
  ASSERT_TRUE(report.ok()) << report.status();
  const SweepReport& r = report.value();
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(calls, 6);
  EXPECT_EQ(r.executed, 6u);
  EXPECT_EQ(r.cached, 0u);
  EXPECT_EQ(r.failures, 0u);
  ASSERT_EQ(r.outcomes.size(), 6u);
  // Last-declared key ticks fastest: y varies first.
  EXPECT_EQ(r.outcomes[0].cell.params.at("x"), "1");
  EXPECT_EQ(r.outcomes[0].cell.params.at("y"), "a");
  EXPECT_EQ(r.outcomes[1].cell.params.at("y"), "b");
  EXPECT_EQ(r.outcomes[2].cell.params.at("x"), "2");
  // The superset document embeds every cell verbatim.
  EXPECT_NE(r.final_json.find(util::Format("\"config_hash\": \"%016llx\"",
                                           static_cast<unsigned long long>(
                                               ConfigHash(ConfigOrDie(
                                                   kConfig))))),
            std::string::npos);
  EXPECT_NE(r.final_json.find("\"cells\": 6"), std::string::npos);
  EXPECT_NE(r.final_json.find("\"x\": \"3\""), std::string::npos);
  EXPECT_FALSE(r.tables.empty());
}

TEST(RunSweep, UnknownBenchFailsItsCellsWithoutAborting) {
  int calls = 0;
  BenchRegistry registry;
  registry["mock"] = MockBench(&calls);
  auto config = ConfigOrDie(R"(matrix a { bench = typo }
matrix b { bench = mock })");
  RunnerOptions options;
  options.verbose = false;
  auto report = RunSweep(config, registry, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report.value().complete);
  EXPECT_EQ(report.value().failures, 1u);
  EXPECT_EQ(report.value().outcomes[0].exit_code, 127);
  EXPECT_EQ(report.value().outcomes[1].exit_code, 0);
  EXPECT_EQ(calls, 1);
  // A failed cell embeds a null result, and the sweep still assembles.
  EXPECT_NE(report.value().final_json.find("\"result\": null"),
            std::string::npos);
  EXPECT_NE(report.value().final_json.find("\"failures\": 1"),
            std::string::npos);
}

TEST(RunSweep, QualityPivotAggregatesSeedsIntoMeanAndSd) {
  // Two seeds at beta=0.05 share one pivot bucket (RowLabel strips the
  // seed); one seed at beta=0.10 stays a plain single-sample cell.
  BenchRegistry registry;
  registry["qmock"] = [](const RunSpec& spec) {
    const double seed = std::atof(spec.params.at("seed").c_str());
    std::string json = util::Format(
        "{\n  \"jt_mae_min\": %.2f,\n  \"spq_reduction_pct\": %.2f\n}\n",
        4.0 + seed, 90.0);
    return RunResult{0, std::move(json)};
  };
  auto config = ConfigOrDie(R"(matrix multi {
  bench = qmock
  model = MLP
  beta = 0.05
  seed = 1, 3
}
matrix single {
  bench = qmock
  model = MLP
  beta = 0.10
  seed = 1
})");
  RunnerOptions options;
  options.verbose = false;
  auto report = RunSweep(config, registry, options);
  ASSERT_TRUE(report.ok()) << report.status();
  const std::string& tables = report.value().tables;
  // beta=0.05 MAE: seeds {1, 3} give {5, 7} -> mean 6, sample sd sqrt(2).
  EXPECT_NE(tables.find("6.00±1.41"), std::string::npos) << tables;
  // Identical replicated reductions still show their (zero) spread.
  EXPECT_NE(tables.find("90.00±0.00"), std::string::npos) << tables;
  // The single-sample beta=0.10 cell prints without a variance suffix.
  EXPECT_NE(tables.find("5.00"), std::string::npos) << tables;
  EXPECT_EQ(tables.find("5.00±"), std::string::npos) << tables;
  // Both seeds collapsed into one pivot row: the grids (unlike the
  // per-cell summary above them) never mention the seed.
  const size_t pivots = tables.find("JT MAE");
  ASSERT_NE(pivots, std::string::npos) << tables;
  EXPECT_EQ(tables.find("seed=", pivots), std::string::npos) << tables;
}

TEST(RunSweep, SecondRunOverSameStateDirIsAllCached) {
  const std::string state = FreshDir("all_cached");
  int calls = 0;
  BenchRegistry registry;
  registry["mock"] = MockBench(&calls);
  RunnerOptions options;
  options.verbose = false;
  options.state_dir = state;

  auto first = RunSweep(ConfigOrDie(kConfig), registry, options);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(calls, 6);

  auto second = RunSweep(ConfigOrDie(kConfig), registry, options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(calls, 6);  // nothing re-executed
  EXPECT_EQ(second.value().cached, 6u);
  EXPECT_EQ(second.value().executed, 0u);
  EXPECT_EQ(second.value().final_json, first.value().final_json);

  // resume=false re-executes everything even with snapshots present.
  options.resume = false;
  auto third = RunSweep(ConfigOrDie(kConfig), registry, options);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_EQ(calls, 12);
  EXPECT_EQ(third.value().cached, 0u);
  EXPECT_EQ(third.value().final_json, first.value().final_json);
}

TEST(RunSweep, InterruptedSweepResumesByteIdentical) {
  const std::string state = FreshDir("resume");
  BenchRegistry registry;
  int calls = 0;
  registry["mock"] = MockBench(&calls);
  RunnerOptions options;
  options.verbose = false;

  // The reference: one uninterrupted run, no persistence.
  auto reference = RunSweep(ConfigOrDie(kConfig), registry, options);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_TRUE(reference.value().complete);

  // Interrupt after 2 executed cells…
  options.state_dir = state;
  options.max_executed = 2;
  auto interrupted = RunSweep(ConfigOrDie(kConfig), registry, options);
  ASSERT_TRUE(interrupted.ok()) << interrupted.status();
  EXPECT_FALSE(interrupted.value().complete);
  EXPECT_EQ(interrupted.value().executed, 2u);
  EXPECT_EQ(interrupted.value().final_json, "");  // nothing assembled

  // …interrupt again mid-way…
  options.max_executed = 3;
  auto partial = RunSweep(ConfigOrDie(kConfig), registry, options);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_FALSE(partial.value().complete);
  EXPECT_EQ(partial.value().cached, 2u);
  EXPECT_EQ(partial.value().executed, 3u);

  // …then finish. The assembled document is byte-identical to the
  // uninterrupted run's.
  options.max_executed = 0;
  auto resumed = RunSweep(ConfigOrDie(kConfig), registry, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(resumed.value().complete);
  EXPECT_EQ(resumed.value().cached, 5u);
  EXPECT_EQ(resumed.value().executed, 1u);
  // Byte-identical: the superset document carries no timestamps and no
  // cached/executed provenance, only the verbatim per-cell results.
  EXPECT_EQ(resumed.value().final_json, reference.value().final_json);
}

TEST(RunSweep, FailedCellsAreNeverCached) {
  const std::string state = FreshDir("failed_not_cached");
  // Fails on first execution of each cell, succeeds on retry.
  int calls = 0;
  BenchRegistry registry;
  registry["mock"] = [&calls](const RunSpec& spec) {
    ++calls;
    if (calls <= 1) return RunResult{1, ""};
    return MockBench(&calls)(spec);  // counts the call twice; see below
  };
  RunnerOptions options;
  options.verbose = false;
  options.state_dir = state;
  auto config = ConfigOrDie("matrix one { bench = mock\n  x = 1 }");

  auto first = RunSweep(config, registry, options);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first.value().failures, 1u);

  // The failure was not snapshotted: the resume retries the cell and now
  // caches the success.
  auto second = RunSweep(config, registry, options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second.value().cached, 0u);
  EXPECT_EQ(second.value().executed, 1u);
  EXPECT_EQ(second.value().failures, 0u);

  auto third = RunSweep(config, registry, options);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_EQ(third.value().cached, 1u);
  EXPECT_EQ(third.value().executed, 0u);
}

TEST(RunSweep, CorruptSnapshotIsReExecuted) {
  const std::string state = FreshDir("corrupt");
  int calls = 0;
  BenchRegistry registry;
  registry["mock"] = MockBench(&calls);
  RunnerOptions options;
  options.verbose = false;
  options.state_dir = state;
  auto config = ConfigOrDie("matrix one { bench = mock\n  x = 1 }");

  auto first = RunSweep(config, registry, options);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(calls, 1);

  // Flip a byte in the middle of the snapshot; the checksummed container
  // rejects it and the runner re-executes rather than trusting it.
  const std::string path =
      state + "/cell_" + config.Expand()[0].HashHex() + ".staq";
  ASSERT_TRUE(fs::exists(path));
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(fs::file_size(path) / 2), SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);
  }
  auto second = RunSweep(config, registry, options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second.value().cached, 0u);
  EXPECT_EQ(second.value().executed, 1u);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(second.value().final_json, first.value().final_json);

  // The re-execution rewrote a valid snapshot.
  auto third = RunSweep(config, registry, options);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_EQ(third.value().cached, 1u);
}

TEST(RunSweep, ConfigHashIgnoresFormattingButNotCells) {
  auto a = ConfigOrDie("matrix m { bench = mock\n  x = 1, 2 }");
  auto b = ConfigOrDie("# same cells, different formatting\nmatrix m {\n"
                       "  x = 1, 2\n  bench = mock\n}");
  auto c = ConfigOrDie("matrix m { bench = mock\n  x = 1, 2, 3 }");
  EXPECT_EQ(ConfigHash(a), ConfigHash(b));
  EXPECT_NE(ConfigHash(a), ConfigHash(c));
}

TEST(RunSweep, UnwritableStateDirIsAnError) {
  BenchRegistry registry;
  int calls = 0;
  registry["mock"] = MockBench(&calls);
  RunnerOptions options;
  options.verbose = false;
  options.state_dir = "/proc/does_not_exist/state";
  auto report = RunSweep(ConfigOrDie(kConfig), registry, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace staq::exp
