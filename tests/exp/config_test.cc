// The declarative sweep config: parse errors carry positions, expansion
// is a deterministic cartesian product, and the cell hash is independent
// of field declaration order (so reordering a config file invalidates
// neither resume snapshots nor baselines).
#include "exp/config.h"

#include <gtest/gtest.h>

#include <set>

namespace staq::exp {
namespace {

constexpr char kSweep[] = R"(# error-vs-budget sweep
matrix quality_sweep {
  bench = quality
  city = brindale, covely
  model = MLP, OLS
  beta = 0.03, 0.05, 0.10
  scale = 0.05
}

matrix gates {
  bench = labeling, store
  scale = 0.1
}
)";

TEST(ExperimentConfig, ParsesBlocksAndAxes) {
  auto config = ExperimentConfig::Parse(kSweep);
  ASSERT_TRUE(config.ok()) << config.status();
  const auto& blocks = config.value().blocks();
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].name, "quality_sweep");
  ASSERT_EQ(blocks[0].axes.size(), 5u);
  EXPECT_EQ(blocks[0].axes[1].first, "city");
  EXPECT_EQ(blocks[0].axes[1].second,
            (std::vector<std::string>{"brindale", "covely"}));
  EXPECT_EQ(blocks[1].name, "gates");
}

TEST(ExperimentConfig, ExpandsCartesianProduct) {
  auto config = ExperimentConfig::Parse(kSweep);
  ASSERT_TRUE(config.ok()) << config.status();
  std::vector<Cell> cells = config.value().Expand();
  // 1*2*2*3*1 + 2*1 = 12 + 2.
  ASSERT_EQ(cells.size(), 14u);
  // Blocks expand in file order; the odometer ticks the last-declared key
  // fastest, so beta varies first, then model, then city.
  EXPECT_EQ(cells[0].matrix, "quality_sweep");
  EXPECT_EQ(cells[0].bench, "quality");
  EXPECT_EQ(cells[0].params.at("city"), "brindale");
  EXPECT_EQ(cells[0].params.at("model"), "MLP");
  EXPECT_EQ(cells[0].params.at("beta"), "0.03");
  EXPECT_EQ(cells[1].params.at("beta"), "0.05");
  EXPECT_EQ(cells[3].params.at("model"), "OLS");
  EXPECT_EQ(cells[3].params.at("beta"), "0.03");
  EXPECT_EQ(cells[6].params.at("city"), "covely");
  EXPECT_EQ(cells[12].bench, "labeling");
  EXPECT_EQ(cells[13].bench, "store");
  // "bench" never leaks into the parameter map.
  EXPECT_EQ(cells[0].params.count("bench"), 0u);
  // All 14 cells are distinct experiments.
  std::set<uint64_t> hashes;
  for (const Cell& cell : cells) hashes.insert(cell.Hash());
  EXPECT_EQ(hashes.size(), cells.size());
}

TEST(ExperimentConfig, CellHashIgnoresDeclarationOrder) {
  auto a = ExperimentConfig::Parse(
      "matrix m { bench = quality\n  city = covely\n  beta = 0.05 }");
  auto b = ExperimentConfig::Parse(
      "matrix m { beta = 0.05\n  city = covely\n  bench = quality }");
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  std::vector<Cell> ca = a.value().Expand();
  std::vector<Cell> cb = b.value().Expand();
  ASSERT_EQ(ca.size(), 1u);
  ASSERT_EQ(cb.size(), 1u);
  EXPECT_EQ(ca[0].CanonicalKey(), cb[0].CanonicalKey());
  EXPECT_EQ(ca[0].Hash(), cb[0].Hash());
  EXPECT_EQ(ca[0].HashHex(), cb[0].HashHex());
  EXPECT_EQ(ca[0].HashHex().size(), 16u);
}

TEST(ExperimentConfig, CanonicalKeyShape) {
  auto config = ExperimentConfig::Parse(
      "matrix m { bench = store\n  scale = 0.1\n  engine = csa }");
  ASSERT_TRUE(config.ok()) << config.status();
  std::vector<Cell> cells = config.value().Expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].CanonicalKey(), "bench=store\nengine=csa\nscale=0.1\n");
  EXPECT_EQ(cells[0].ParamSummary(), "engine=csa scale=0.1");
}

struct BadConfigCase {
  const char* text;
  const char* wants;  // substring of the error, position included
};

TEST(ExperimentConfig, RejectsMalformedConfigsWithPosition) {
  const BadConfigCase cases[] = {
      {"", "line 1, column 1: no matrix blocks"},
      {"grid m { bench = a }", "expected 'matrix', got 'grid'"},
      {"matrix { bench = a }", "matrix block needs a name"},
      {"matrix m { bench = a }\nmatrix m { bench = b }",
       "at line 2"},
      {"matrix m { bench = a }\nmatrix n { bench = b }\nmatrix m { bench = c }",
       "duplicate matrix name 'm'"},
      {"matrix m { bench = a", "unterminated matrix block"},
      {"matrix m { bench = a\n  bench = b }", "duplicate key 'bench'"},
      {"matrix m { bench a }", "expected '=' after key 'bench'"},
      {"matrix m { bench = }", "expected a value for key 'bench'"},
      {"matrix m { scale = 0.1 }", "matrix 'm' has no 'bench' key"},
      {"matrix m { bench = a } trailing", "expected 'matrix', got 'trailing'"},
  };
  for (const BadConfigCase& c : cases) {
    auto config = ExperimentConfig::Parse(c.text);
    ASSERT_FALSE(config.ok()) << c.text;
    EXPECT_NE(config.status().message().find(c.wants), std::string::npos)
        << "config: " << c.text << "\nerror: " << config.status().message();
    EXPECT_NE(config.status().message().find("config parse error at line"),
              std::string::npos)
        << config.status().message();
  }
}

TEST(ExperimentConfig, LoadReportsMissingFile) {
  auto config = ExperimentConfig::Load("/nonexistent/sweep.cfg");
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find("cannot open config"),
            std::string::npos);
}

}  // namespace
}  // namespace staq::exp
