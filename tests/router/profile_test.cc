#include "router/profile.h"

#include <gtest/gtest.h>

#include "testing/test_city.h"

namespace staq::router {
namespace {

TEST(ProfileTest, SampleCountFollowsStep) {
  gtfs::Feed feed = testing::LineFeed(600);
  Router router(&feed, RouterOptions{});
  gtfs::TimeInterval v{gtfs::MakeTime(7, 0), gtfs::MakeTime(8, 0),
                       gtfs::Day::kTuesday, "am"};
  auto profile = SampleProfile(&router, {0, 100}, {4000, 100}, v, 300);
  EXPECT_EQ(profile.size(), 12u);  // 3600 / 300
  for (size_t i = 0; i < profile.size(); ++i) {
    EXPECT_EQ(profile[i].depart,
              v.start + static_cast<gtfs::TimeOfDay>(i) * 300);
  }
}

TEST(ProfileTest, ArrivalsMatchIndividualRoutes) {
  gtfs::Feed feed = testing::LineFeed(600);
  Router router(&feed, RouterOptions{});
  gtfs::TimeInterval v{gtfs::MakeTime(7, 0), gtfs::MakeTime(7, 30),
                       gtfs::Day::kTuesday, "am"};
  auto profile = SampleProfile(&router, {0, 100}, {4000, 100}, v, 600);
  for (const ProfilePoint& point : profile) {
    Journey check = router.Route({0, 100}, {4000, 100}, v.day, point.depart);
    ASSERT_EQ(point.feasible, check.feasible);
    EXPECT_EQ(point.arrive, check.arrive);
  }
}

TEST(ProfileTest, ArrivalNonDecreasingInDeparture) {
  // FIFO timetables: leaving later can never get you there earlier.
  gtfs::Feed feed = testing::TransferFeed();
  Router router(&feed, RouterOptions{});
  gtfs::TimeInterval v{gtfs::MakeTime(7, 0), gtfs::MakeTime(8, 30),
                       gtfs::Day::kMonday, "am"};
  auto profile = SampleProfile(&router, {0, 50}, {6000, 100}, v, 120);
  for (size_t i = 1; i < profile.size(); ++i) {
    if (profile[i - 1].feasible && profile[i].feasible) {
      EXPECT_GE(profile[i].arrive, profile[i - 1].arrive);
    }
  }
}

TEST(ProfileTest, SawtoothJourneyTimes) {
  // Just after a departure, JT jumps by ~the headway; just before it, JT is
  // minimal. The profile's max-min JT spread therefore approaches the
  // headway for a transit-bound pair.
  gtfs::Feed feed = testing::LineFeed(600);
  Router router(&feed, RouterOptions{});
  gtfs::TimeInterval v{gtfs::MakeTime(7, 0), gtfs::MakeTime(8, 30),
                       gtfs::Day::kTuesday, "am"};
  auto profile = SampleProfile(&router, {0, 0}, {4000, 0}, v, 60);
  ProfileStats stats = SummarizeProfile(profile);
  ASSERT_GT(stats.num_feasible, 0u);
  EXPECT_NEAR(stats.max_jt_s - stats.min_jt_s, 540, 70);  // headway - step
  EXPECT_GT(stats.stddev_jt_s, 0.0);
}

TEST(ProfileTest, StatsMatchManualAggregation) {
  gtfs::Feed feed = testing::LineFeed(600);
  Router router(&feed, RouterOptions{});
  gtfs::TimeInterval v = gtfs::WeekdayAmPeak();
  auto profile = SampleProfile(&router, {0, 100}, {4000, 100}, v, 300);
  ProfileStats stats = SummarizeProfile(profile);

  double sum = 0;
  uint32_t n = 0;
  for (const ProfilePoint& p : profile) {
    if (!p.feasible) continue;
    sum += p.JourneyTimeSeconds();
    ++n;
  }
  ASSERT_EQ(stats.num_feasible, n);
  EXPECT_NEAR(stats.mean_jt_s, sum / n, 1e-9);
  EXPECT_EQ(stats.num_points, profile.size());
}

TEST(ProfileTest, WalkOnlyPairHasFlatProfile) {
  gtfs::Feed feed = testing::LineFeed(600);
  Router router(&feed, RouterOptions{});
  gtfs::TimeInterval v = gtfs::WeekdayAmPeak();
  // 200 m apart: walking always wins, so JT is departure-invariant.
  auto profile = SampleProfile(&router, {0, 0}, {200, 0}, v, 300);
  ProfileStats stats = SummarizeProfile(profile);
  EXPECT_EQ(stats.num_feasible, stats.num_points);
  EXPECT_DOUBLE_EQ(stats.stddev_jt_s, 0.0);
  EXPECT_DOUBLE_EQ(stats.min_jt_s, stats.max_jt_s);
}

TEST(ProfileTest, EmptyProfileStats) {
  ProfileStats stats = SummarizeProfile({});
  EXPECT_EQ(stats.num_points, 0u);
  EXPECT_EQ(stats.num_feasible, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_jt_s, 0.0);
}

}  // namespace
}  // namespace staq::router
