// RouterOptions validation: non-positive horizons, boarding waits, or walk
// budgets would silently turn every query into an empty search, so the
// Router constructor aborts on them via STAQ_CHECK (util/check.h) — for
// both engines, since CSA shares the options struct.
#include <gtest/gtest.h>

#include "router/router.h"
#include "testing/test_city.h"

namespace staq::router {
namespace {

class RouterOptionsDeathTest : public ::testing::Test {
 protected:
  gtfs::Feed feed_ = testing::LineFeed(600);
};

TEST_F(RouterOptionsDeathTest, RejectsNonPositiveHorizon) {
  RouterOptions options;
  options.horizon_s = 0;
  EXPECT_DEATH(Router(&feed_, options), "CHECK failed");
  options.horizon_s = -3600;
  EXPECT_DEATH(Router(&feed_, options), "CHECK failed");
}

TEST_F(RouterOptionsDeathTest, RejectsNonPositiveBoardingWait) {
  RouterOptions options;
  options.max_boarding_wait_s = 0;
  EXPECT_DEATH(Router(&feed_, options), "CHECK failed");
}

TEST_F(RouterOptionsDeathTest, RejectsNonPositiveWalkSpeed) {
  RouterOptions options;
  options.walk.speed_mps = 0;
  EXPECT_DEATH(Router(&feed_, options), "CHECK failed");
}

TEST_F(RouterOptionsDeathTest, RejectsNonPositiveDetourFactor) {
  RouterOptions options;
  options.walk.detour_factor = -1.0;
  EXPECT_DEATH(Router(&feed_, options), "CHECK failed");
}

TEST_F(RouterOptionsDeathTest, RejectsNonPositiveWalkBudgets) {
  RouterOptions options;
  options.walk.max_access_walk_s = 0;
  EXPECT_DEATH(Router(&feed_, options), "CHECK failed");
  options = RouterOptions{};
  options.walk.max_transfer_walk_s = -5;
  EXPECT_DEATH(Router(&feed_, options), "CHECK failed");
}

TEST_F(RouterOptionsDeathTest, CsaEngineValidatesTheSameOptions) {
  RouterOptions options;
  options.engine = RoutingEngine::kCsa;
  options.horizon_s = 0;
  EXPECT_DEATH(Router(&feed_, options), "CHECK failed");
}

TEST_F(RouterOptionsDeathTest, ValidOptionsConstruct) {
  Router lc(&feed_, RouterOptions{});
  EXPECT_EQ(lc.csa(), nullptr);
  RouterOptions csa_options;
  csa_options.engine = RoutingEngine::kCsa;
  Router csa(&feed_, csa_options);
  EXPECT_NE(csa.csa(), nullptr);
}

}  // namespace
}  // namespace staq::router
