#include "router/router.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testing/test_city.h"
#include "util/rng.h"

namespace staq::router {
namespace {

constexpr double kWalkSecondsPerMeter = 1.3 / 1.25;

TEST(RouterTest, SingleRideJourney) {
  gtfs::Feed feed = testing::LineFeed(600);
  Router router(&feed, RouterOptions{});
  // Origin 100 m from stop 0, destination 100 m from stop 2.
  Journey j = router.Route({0, 100}, {4000, 100}, gtfs::Day::kTuesday,
                           gtfs::MakeTime(7, 0));
  ASSERT_TRUE(j.feasible);
  EXPECT_EQ(j.num_boardings, 1);
  EXPECT_DOUBLE_EQ(j.total_fare, 2.0);

  int access = static_cast<int>(std::lround(100 * kWalkSecondsPerMeter));
  // Walk 104 s to stop 0 (07:01:44), board the 07:10, arrive stop 2 at
  // 07:20, walk 104 s.
  EXPECT_EQ(j.arrive, gtfs::MakeTime(7, 20) + access);
  EXPECT_NEAR(j.access_walk_s, 104, 1.0);
  EXPECT_NEAR(j.wait_s, 600 - access, 1.0);
  EXPECT_NEAR(j.in_vehicle_s, 600, 1e-9);
  EXPECT_NEAR(j.egress_walk_s, 104, 1.0);
  // Component sum equals total journey time.
  EXPECT_NEAR(j.access_walk_s + j.wait_s + j.in_vehicle_s + j.egress_walk_s,
              j.JourneyTimeSeconds(), 1.5);
}

TEST(RouterTest, CatchesExactDeparture) {
  gtfs::Feed feed = testing::LineFeed(600);
  Router router(&feed, RouterOptions{});
  // Standing at stop 0 exactly at 07:10 catches the 07:10 trip.
  Journey j = router.Route({0, 0}, {4000, 0}, gtfs::Day::kTuesday,
                           gtfs::MakeTime(7, 10));
  ASSERT_TRUE(j.feasible);
  EXPECT_EQ(j.arrive, gtfs::MakeTime(7, 20));
  EXPECT_EQ(j.wait_s, 0.0);
}

TEST(RouterTest, WalkOnlyWinsShortTrips) {
  gtfs::Feed feed = testing::LineFeed(600);
  Router router(&feed, RouterOptions{});
  Journey j = router.Route({0, 0}, {300, 0}, gtfs::Day::kTuesday,
                           gtfs::MakeTime(7, 0));
  ASSERT_TRUE(j.feasible);
  EXPECT_TRUE(j.IsWalkOnly());
  EXPECT_EQ(j.num_boardings, 0);
  EXPECT_NEAR(j.JourneyTimeSeconds(), 300 * kWalkSecondsPerMeter, 1.0);
  ASSERT_EQ(j.legs.size(), 1u);
  EXPECT_EQ(j.legs[0].type, JourneyLeg::Type::kWalk);
}

TEST(RouterTest, TransferJourney) {
  gtfs::Feed feed = testing::TransferFeed();
  Router router(&feed, RouterOptions{});
  Journey j = router.Route({0, 50}, {6000, 100}, gtfs::Day::kMonday,
                           gtfs::MakeTime(7, 0));
  ASSERT_TRUE(j.feasible);
  EXPECT_EQ(j.num_boardings, 2);
  EXPECT_DOUBLE_EQ(j.total_fare, 4.5);
  EXPECT_GT(j.transfer_walk_s, 0.0);
  // Ride A 07:10->07:15, walk 150 m, board B 07:22, arrive 07:27, walk 50m.
  EXPECT_EQ(j.arrive,
            gtfs::MakeTime(7, 27) +
                static_cast<int>(std::lround(50 * kWalkSecondsPerMeter)));
}

TEST(RouterTest, DayFilterMakesServiceInvisible) {
  gtfs::Feed feed = testing::LineFeed(600);  // weekdays only
  Router router(&feed, RouterOptions{});
  Journey sunday = router.Route({0, 100}, {4000, 100}, gtfs::Day::kSunday,
                                gtfs::MakeTime(7, 0));
  // No transit on Sunday: only the (long) walk remains.
  ASSERT_TRUE(sunday.feasible);
  EXPECT_TRUE(sunday.IsWalkOnly());
}

TEST(RouterTest, InfeasibleBeyondHorizon) {
  gtfs::Feed feed = testing::LineFeed(600);
  RouterOptions options;
  options.horizon_s = 600;  // 10 minutes
  Router router(&feed, options);
  // 40 km walk with no useful transit: infeasible within 10 min.
  Journey j = router.Route({0, 20000}, {40000, 20000}, gtfs::Day::kTuesday,
                           gtfs::MakeTime(7, 0));
  EXPECT_FALSE(j.feasible);
}

TEST(RouterTest, ZeroDistanceTrip) {
  gtfs::Feed feed = testing::LineFeed(600);
  Router router(&feed, RouterOptions{});
  Journey j = router.Route({500, 500}, {500, 500}, gtfs::Day::kTuesday,
                           gtfs::MakeTime(8, 0));
  ASSERT_TRUE(j.feasible);
  EXPECT_EQ(j.JourneyTimeSeconds(), 0.0);
}

TEST(RouterTest, AfterLastServiceFallsBackToWalk) {
  gtfs::Feed feed = testing::LineFeed(600);
  Router router(&feed, RouterOptions{});
  Journey j = router.Route({0, 100}, {4000, 100}, gtfs::Day::kTuesday,
                           gtfs::MakeTime(10, 0));
  ASSERT_TRUE(j.feasible);
  EXPECT_TRUE(j.IsWalkOnly());
}

TEST(RouterTest, BoardingWaitCapSkipsSparseService) {
  gtfs::Feed feed = testing::LineFeed(600);
  RouterOptions options;
  options.max_boarding_wait_s = 120;  // nobody waits 2+ minutes
  Router router(&feed, options);
  // Departing at 07:12: next bus is 07:20, an 8-minute wait — beyond the
  // cap, so the router walks instead.
  Journey j = router.Route({0, 0}, {4000, 0}, gtfs::Day::kTuesday,
                           gtfs::MakeTime(7, 12));
  ASSERT_TRUE(j.feasible);
  EXPECT_TRUE(j.IsWalkOnly());
  // Departing at 07:19 the wait is 1 minute: boarding happens.
  Journey quick = router.Route({0, 0}, {4000, 0}, gtfs::Day::kTuesday,
                               gtfs::MakeTime(7, 19));
  ASSERT_TRUE(quick.feasible);
  EXPECT_EQ(quick.num_boardings, 1);
}

TEST(RouterTest, AccessBudgetLimitsReachableStops) {
  gtfs::Feed feed = testing::LineFeed(600);
  RouterOptions options;
  options.walk.max_access_walk_s = 60;  // ~58 m of straight line
  Router router(&feed, options);
  // 100 m from the stop: outside the tightened access budget -> walk only.
  Journey j = router.Route({0, 100}, {4000, 100}, gtfs::Day::kTuesday,
                           gtfs::MakeTime(7, 0));
  ASSERT_TRUE(j.feasible);
  EXPECT_TRUE(j.IsWalkOnly());
}

TEST(RouterTest, LaterDepartureNeverArrivesEarlier) {
  gtfs::Feed feed = testing::TransferFeed();
  Router router(&feed, RouterOptions{});
  gtfs::TimeOfDay prev_arrival = 0;
  for (int m = 0; m <= 60; m += 7) {
    Journey j = router.Route({0, 50}, {6000, 100}, gtfs::Day::kMonday,
                             gtfs::MakeTime(7, m));
    ASSERT_TRUE(j.feasible);
    EXPECT_GE(j.arrive, prev_arrival);
    prev_arrival = j.arrive;
  }
}

TEST(RouterTest, ScratchReuseAcrossQueriesIsClean) {
  gtfs::Feed feed = testing::LineFeed(600);
  Router router(&feed, RouterOptions{});
  Journey first = router.Route({0, 100}, {4000, 100}, gtfs::Day::kTuesday,
                               gtfs::MakeTime(7, 0));
  // Run 50 other queries, then repeat the first: identical answer.
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    router.Route({rng.Uniform(0, 4000), rng.Uniform(0, 500)},
                 {rng.Uniform(0, 4000), rng.Uniform(0, 500)},
                 gtfs::Day::kTuesday,
                 gtfs::MakeTime(7, static_cast<int>(rng.UniformU64(60))));
  }
  Journey again = router.Route({0, 100}, {4000, 100}, gtfs::Day::kTuesday,
                               gtfs::MakeTime(7, 0));
  EXPECT_EQ(first.arrive, again.arrive);
  EXPECT_EQ(first.num_boardings, again.num_boardings);
  EXPECT_DOUBLE_EQ(first.wait_s, again.wait_s);
}

TEST(RouterTest, ComponentsSumToJourneyTime) {
  // Property over a synthetic city: journey component decomposition is
  // internally consistent for every feasible trip.
  synth::City city = testing::TinyCity();
  Router router(&city.feed, RouterOptions{});
  util::Rng rng(77);
  int checked = 0;
  for (int i = 0; i < 200; ++i) {
    geo::Point o{rng.Uniform(city.extent.min_x, city.extent.max_x),
                 rng.Uniform(city.extent.min_y, city.extent.max_y)};
    geo::Point d{rng.Uniform(city.extent.min_x, city.extent.max_x),
                 rng.Uniform(city.extent.min_y, city.extent.max_y)};
    Journey j = router.Route(o, d, gtfs::Day::kTuesday,
                             gtfs::MakeTime(7, static_cast<int>(rng.UniformU64(120))));
    if (!j.feasible) continue;
    ++checked;
    double components = j.access_walk_s + j.transfer_walk_s + j.wait_s +
                        j.in_vehicle_s + j.egress_walk_s;
    // Rounding of each walk leg to whole seconds bounds the gap.
    EXPECT_NEAR(components, j.JourneyTimeSeconds(), 3.0);
    EXPECT_GE(j.JourneyTimeSeconds(), 0.0);
    // Legs are contiguous in time.
    for (size_t l = 1; l < j.legs.size(); ++l) {
      EXPECT_GE(j.legs[l].start, j.legs[l - 1].end - 1);
    }
  }
  EXPECT_GT(checked, 100);
}

TEST(RouterTest, TransitNeverWorseThanNotUsingIt) {
  // The router's answer is never slower than the pure walk baseline.
  synth::City city = testing::TinyCity();
  Router router(&city.feed, RouterOptions{});
  WalkParams walk;
  util::Rng rng(78);
  for (int i = 0; i < 100; ++i) {
    geo::Point o{rng.Uniform(city.extent.min_x, city.extent.max_x),
                 rng.Uniform(city.extent.min_y, city.extent.max_y)};
    geo::Point d{rng.Uniform(city.extent.min_x, city.extent.max_x),
                 rng.Uniform(city.extent.min_y, city.extent.max_y)};
    Journey j = router.Route(o, d, gtfs::Day::kTuesday, gtfs::MakeTime(8, 0));
    if (!j.feasible) continue;
    double walk_s = walk.WalkSeconds(geo::Distance(o, d));
    EXPECT_LE(j.JourneyTimeSeconds(), walk_s + 1.0);
  }
}

}  // namespace
}  // namespace staq::router
