#include "router/walk_table.h"

#include <gtest/gtest.h>

#include "testing/test_city.h"

namespace staq::router {
namespace {

TEST(WalkParamsTest, DefaultsMatchPaper) {
  WalkParams p;
  EXPECT_NEAR(p.speed_mps, 1.25, 1e-9);        // ω = 4.5 km/h
  EXPECT_DOUBLE_EQ(p.max_access_walk_s, 600);  // τ
}

TEST(WalkParamsTest, WalkSecondsAndReachAreInverse) {
  WalkParams p;
  double reach = p.ReachMeters(600);
  EXPECT_NEAR(p.WalkSeconds(reach), 600, 1e-9);
  // 600 s at 1.25 m/s with 1.3 detour: ~577 m of straight line.
  EXPECT_NEAR(reach, 600 * 1.25 / 1.3, 1e-9);
}

TEST(WalkTableTest, AccessStopsWithinBudget) {
  gtfs::Feed feed = testing::LineFeed();
  WalkTable table(&feed, WalkParams{});
  // Origin 100 m from stop 0; stops 1 and 2 are 2 km+ away.
  auto access = table.AccessStops({0, 100});
  ASSERT_EQ(access.size(), 1u);
  EXPECT_EQ(access[0].stop, 0u);
  EXPECT_NEAR(access[0].walk_s, 100 * 1.3 / 1.25, 1e-9);
}

TEST(WalkTableTest, AccessStopsSortedByWalkTime) {
  gtfs::Feed feed = testing::TransferFeed();
  WalkTable table(&feed, WalkParams{});
  // Near a1 (3000,0) and b0 (3000,150): both within budget.
  auto access = table.AccessStops({3000, 50});
  ASSERT_EQ(access.size(), 2u);
  EXPECT_EQ(access[0].stop, 1u);  // a1, 50 m
  EXPECT_EQ(access[1].stop, 2u);  // b0, 100 m
  EXPECT_LT(access[0].walk_s, access[1].walk_s);
}

TEST(WalkTableTest, NoStopsInRange) {
  gtfs::Feed feed = testing::LineFeed();
  WalkTable table(&feed, WalkParams{});
  EXPECT_TRUE(table.AccessStops({0, 5000}).empty());
}

TEST(WalkTableTest, TransfersExcludeSelfAndRespectBudget) {
  gtfs::Feed feed = testing::TransferFeed();
  WalkTable table(&feed, WalkParams{});
  // a1 (3000,0) and b0 (3000,150) are 150 m apart: transferable.
  const auto& from_a1 = table.Transfers(1);
  ASSERT_EQ(from_a1.size(), 1u);
  EXPECT_EQ(from_a1[0].stop, 2u);
  // a0 has nothing within 288 m.
  EXPECT_TRUE(table.Transfers(0).empty());
}

TEST(WalkTableTest, TransfersSymmetric) {
  gtfs::Feed feed = testing::TransferFeed();
  WalkTable table(&feed, WalkParams{});
  const auto& from_b0 = table.Transfers(2);
  ASSERT_EQ(from_b0.size(), 1u);
  EXPECT_EQ(from_b0[0].stop, 1u);
}

TEST(WalkTableTest, EmptyFeed) {
  gtfs::FeedBuilder builder;
  auto feed = builder.Build();
  ASSERT_TRUE(feed.ok());
  WalkTable table(&feed.value(), WalkParams{});
  EXPECT_TRUE(table.AccessStops({0, 0}).empty());
}

TEST(WalkTableTest, WalkSecondsBetweenUsesDetour) {
  gtfs::Feed feed = testing::LineFeed();
  WalkTable table(&feed, WalkParams{});
  EXPECT_NEAR(table.WalkSecondsBetween({0, 0}, {1000, 0}), 1000 * 1.3 / 1.25,
              1e-9);
}

}  // namespace
}  // namespace staq::router
