// Golden equivalence for the Connection Scan engine against the
// label-correcting oracle, and for the window (profile) scan against
// per-departure scans.
//
// The cross-engine contract (DESIGN.md §11): journey times, feasibility,
// and departure/arrival instants are bit-identical; equal-cost journeys may
// decompose into different legs (the same bounded equivalence the Router's
// own heap-vs-bucket disciplines exhibit). The within-engine contract is
// stronger: a window scan's lanes are bit-identical — legs and all — to
// running each departure's scan alone.
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "router/cost.h"
#include "router/csa.h"
#include "router/router.h"
#include "synth/city_builder.h"
#include "synth/city_spec.h"
#include "testing/test_city.h"
#include "util/rng.h"

namespace staq::router {
namespace {

RouterOptions CsaOptions() {
  RouterOptions options;
  options.engine = RoutingEngine::kCsa;
  return options;
}

/// The exact cross-engine contract: everything journey-time-derived.
void ExpectEquivalentJourney(const Journey& oracle, const Journey& csa) {
  EXPECT_EQ(oracle.feasible, csa.feasible);
  EXPECT_EQ(oracle.depart, csa.depart);
  EXPECT_EQ(oracle.arrive, csa.arrive);
  EXPECT_EQ(oracle.JourneyTimeSeconds(), csa.JourneyTimeSeconds());
  EXPECT_EQ(oracle.IsWalkOnly(), csa.IsWalkOnly());
}

/// Full bit-identity, for within-engine comparisons.
void ExpectSameJourney(const Journey& a, const Journey& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.depart, b.depart);
  EXPECT_EQ(a.arrive, b.arrive);
  EXPECT_EQ(a.access_walk_s, b.access_walk_s);
  EXPECT_EQ(a.transfer_walk_s, b.transfer_walk_s);
  EXPECT_EQ(a.wait_s, b.wait_s);
  EXPECT_EQ(a.in_vehicle_s, b.in_vehicle_s);
  EXPECT_EQ(a.egress_walk_s, b.egress_walk_s);
  EXPECT_EQ(a.num_boardings, b.num_boardings);
  EXPECT_EQ(a.total_fare, b.total_fare);
  GacWeights w;
  EXPECT_EQ(GeneralizedAccessCost(a, w), GeneralizedAccessCost(b, w));
  ASSERT_EQ(a.legs.size(), b.legs.size());
  for (size_t i = 0; i < a.legs.size(); ++i) {
    EXPECT_EQ(a.legs[i].type, b.legs[i].type);
    EXPECT_EQ(a.legs[i].start, b.legs[i].start);
    EXPECT_EQ(a.legs[i].end, b.legs[i].end);
    EXPECT_EQ(a.legs[i].route, b.legs[i].route);
    EXPECT_EQ(a.legs[i].from_stop, b.legs[i].from_stop);
    EXPECT_EQ(a.legs[i].to_stop, b.legs[i].to_stop);
  }
}

/// A feasible journey's legs must decompose its own span regardless of
/// which tie-break produced them.
void ExpectSelfConsistent(const Journey& j) {
  if (!j.feasible) return;
  double components = j.access_walk_s + j.transfer_walk_s + j.wait_s +
                      j.in_vehicle_s + j.egress_walk_s;
  EXPECT_NEAR(components, j.JourneyTimeSeconds(), 2.0 + j.legs.size());
  ASSERT_FALSE(j.legs.empty());
  for (size_t i = 0; i + 1 < j.legs.size(); ++i) {
    EXPECT_LE(j.legs[i].end, j.legs[i + 1].start);
  }
}

std::vector<geo::Point> SampleTargets(const synth::City& city, uint64_t seed,
                                      int count) {
  std::vector<geo::Point> targets;
  util::Rng rng(seed);
  const int64_t max_zone = static_cast<int64_t>(city.zones.size()) - 1;
  for (int i = 0; i < count; ++i) {
    const auto& z =
        city.zones[static_cast<size_t>(rng.UniformInt(0, max_zone))];
    targets.push_back(geo::Point{z.centroid.x + rng.UniformDouble() * 300.0,
                                 z.centroid.y - rng.UniformDouble() * 300.0});
  }
  targets.push_back(geo::Point{1e7, 1e7});  // unreachable
  return targets;
}

std::vector<geo::Point> SampleOrigins(const synth::City& city, uint64_t seed,
                                      int count) {
  std::vector<geo::Point> origins;
  util::Rng rng(seed);
  const int64_t max_zone = static_cast<int64_t>(city.zones.size()) - 1;
  for (int i = 0; i < count; ++i) {
    origins.push_back(
        city.zones[static_cast<size_t>(rng.UniformInt(0, max_zone))].centroid);
  }
  return origins;
}

// Both city families x 3 seeds x several departures: every target's journey
// time, feasibility, and instants match the label-correcting oracle.
TEST(CsaEquivalenceTest, MatchesOracleAcrossCityFamiliesAndSeeds) {
  for (uint64_t seed : {11ull, 29ull, 47ull}) {
    std::vector<synth::City> cities;
    cities.push_back(
        std::move(synth::BuildCity(synth::CitySpec::Brindale(0.05, seed)))
            .value());
    cities.push_back(
        std::move(synth::BuildCity(synth::CitySpec::Covely(0.06, seed)))
            .value());
    for (const synth::City& city : cities) {
      Router oracle(&city.feed, RouterOptions{});
      Router csa(&city.feed, CsaOptions());
      ASSERT_NE(csa.csa(), nullptr);
      std::vector<geo::Point> origins = SampleOrigins(city, seed + 1, 4);
      std::vector<geo::Point> targets = SampleTargets(city, seed + 2, 8);

      for (const geo::Point& origin : origins) {
        for (gtfs::TimeOfDay depart :
             {gtfs::MakeTime(7, 0), gtfs::MakeTime(8, 17) + 23,
              gtfs::MakeTime(12, 30), gtfs::MakeTime(17, 45) + 7}) {
          std::vector<Journey> want =
              oracle.RouteMany(origin, targets, gtfs::Day::kTuesday, depart);
          std::vector<Journey> got =
              csa.RouteMany(origin, targets, gtfs::Day::kTuesday, depart);
          ASSERT_EQ(want.size(), got.size());
          for (size_t t = 0; t < targets.size(); ++t) {
            ExpectEquivalentJourney(want[t], got[t]);
            ExpectSelfConsistent(got[t]);
          }
        }
      }
    }
  }
}

TEST(CsaEquivalenceTest, MatchesOracleOnHandBuiltFeeds) {
  gtfs::Feed line = testing::LineFeed(600);
  gtfs::Feed transfer = testing::TransferFeed();
  for (gtfs::Feed* feed : {&line, &transfer}) {
    Router oracle(feed, RouterOptions{});
    Router csa(feed, CsaOptions());
    std::vector<geo::Point> targets = {
        {4000, 100}, {300, 0}, {6000, 100}, {0, 0}, {1e7, 1e7}};
    for (gtfs::TimeOfDay depart :
         {gtfs::MakeTime(6, 55), gtfs::MakeTime(7, 0), gtfs::MakeTime(7, 3),
          gtfs::MakeTime(8, 59), gtfs::MakeTime(10, 0)}) {
      std::vector<Journey> want =
          oracle.RouteMany({0, 50}, targets, gtfs::Day::kMonday, depart);
      std::vector<Journey> got =
          csa.RouteMany({0, 50}, targets, gtfs::Day::kMonday, depart);
      for (size_t t = 0; t < targets.size(); ++t) {
        ExpectEquivalentJourney(want[t], got[t]);
        ExpectSelfConsistent(got[t]);
      }
    }
  }
}

TEST(CsaEquivalenceTest, MatchesOracleWithoutPruning) {
  // The bounded-relaxation and route-break levers are result-preserving in
  // both engines; switching them off must not change what CSA returns.
  synth::City city = testing::TinyCity();
  RouterOptions unpruned = CsaOptions();
  unpruned.bounded_relaxation = false;
  Router pruned(&city.feed, CsaOptions());
  Router full(&city.feed, unpruned);
  Router oracle(&city.feed, RouterOptions{});
  std::vector<geo::Point> origins = SampleOrigins(city, 3, 3);
  std::vector<geo::Point> targets = SampleTargets(city, 4, 6);
  for (const geo::Point& origin : origins) {
    for (gtfs::TimeOfDay depart :
         {gtfs::MakeTime(7, 45), gtfs::MakeTime(9, 3) + 41}) {
      std::vector<Journey> a =
          pruned.RouteMany(origin, targets, gtfs::Day::kWednesday, depart);
      std::vector<Journey> b =
          full.RouteMany(origin, targets, gtfs::Day::kWednesday, depart);
      std::vector<Journey> want =
          oracle.RouteMany(origin, targets, gtfs::Day::kWednesday, depart);
      for (size_t t = 0; t < targets.size(); ++t) {
        ExpectSameJourney(a[t], b[t]);
        ExpectEquivalentJourney(want[t], a[t]);
      }
    }
  }
}

TEST(CsaEquivalenceTest, WalkOnlyAndInfeasibleEdgeCases) {
  gtfs::Feed feed = testing::LineFeed(600);
  Router csa(&feed, CsaOptions());
  Router oracle(&feed, RouterOptions{});

  // Origin == target: zero-duration walk-only journey.
  std::vector<geo::Point> same = {{0, 100}};
  std::vector<Journey> got =
      csa.RouteMany({0, 100}, same, gtfs::Day::kTuesday, gtfs::MakeTime(7, 0));
  ASSERT_TRUE(got[0].feasible);
  EXPECT_TRUE(got[0].IsWalkOnly());
  EXPECT_EQ(got[0].JourneyTimeSeconds(), 0.0);

  // Unreachable target.
  std::vector<geo::Point> far = {{1e7, 1e7}};
  got = csa.RouteMany({0, 100}, far, gtfs::Day::kTuesday, gtfs::MakeTime(7, 0));
  EXPECT_FALSE(got[0].feasible);

  // Departure after the last trip of the day: walk or nothing, same as the
  // oracle.
  std::vector<geo::Point> targets = {{4000, 100}, {300, 0}};
  std::vector<Journey> want = oracle.RouteMany(
      {0, 50}, targets, gtfs::Day::kMonday, gtfs::MakeTime(23, 0));
  got = csa.RouteMany({0, 50}, targets, gtfs::Day::kMonday,
                      gtfs::MakeTime(23, 0));
  for (size_t t = 0; t < targets.size(); ++t) {
    ExpectEquivalentJourney(want[t], got[t]);
  }

  // Day with no service (weekday-only feed queried on Sunday).
  want = oracle.RouteMany({0, 50}, targets, gtfs::Day::kSunday,
                          gtfs::MakeTime(7, 0));
  got = csa.RouteMany({0, 50}, targets, gtfs::Day::kSunday,
                      gtfs::MakeTime(7, 0));
  for (size_t t = 0; t < targets.size(); ++t) {
    ExpectEquivalentJourney(want[t], got[t]);
  }
}

TEST(CsaEquivalenceTest, ScratchReuseAcrossCallsStaysExact) {
  synth::City city = testing::TinyCity();
  Router reused(&city.feed, CsaOptions());
  Router oracle(&city.feed, RouterOptions{});
  std::vector<geo::Point> origins = SampleOrigins(city, 23, 4);
  std::vector<geo::Point> targets = SampleTargets(city, 24, 6);
  for (int round = 0; round < 3; ++round) {
    for (const geo::Point& origin : origins) {
      gtfs::TimeOfDay depart = gtfs::MakeTime(7, 0) + round * 1117;
      std::vector<Journey> got =
          reused.RouteMany(origin, targets, gtfs::Day::kFriday, depart);
      std::vector<Journey> want =
          oracle.RouteMany(origin, targets, gtfs::Day::kFriday, depart);
      for (size_t t = 0; t < targets.size(); ++t) {
        ExpectEquivalentJourney(want[t], got[t]);
      }
      // Fresh engine answering the same query: scratch reuse is invisible.
      Router fresh(&city.feed, CsaOptions());
      std::vector<Journey> again =
          fresh.RouteMany(origin, targets, gtfs::Day::kFriday, depart);
      for (size_t t = 0; t < targets.size(); ++t) {
        ExpectSameJourney(got[t], again[t]);
      }
    }
  }
}

// The profile contract: one window sweep answers every lane bit-identically
// to running that departure's scan alone — legs included.
TEST(CsaProfileTest, WindowScanEqualsPerDepartureScans) {
  synth::City city = testing::TinyCity();
  Router router(&city.feed, CsaOptions());
  CsaEngine* csa = router.csa();
  ASSERT_NE(csa, nullptr);

  std::vector<geo::Point> origins = SampleOrigins(city, 31, 3);
  std::vector<geo::Point> unique = SampleTargets(city, 32, 9);

  // Lanes over a rate window with overlapping target subsets, including two
  // lanes sharing a departure and a lane owning every target.
  util::Rng rng(33);
  std::vector<std::vector<uint32_t>> subsets;
  std::vector<gtfs::TimeOfDay> departs;
  for (int lane = 0; lane < 14; ++lane) {
    departs.push_back(gtfs::MakeTime(7, 0) + lane * 523);
    std::vector<uint32_t> subset;
    for (uint32_t u = 0; u < unique.size(); ++u) {
      if (rng.UniformInt(0, 2) != 0) subset.push_back(u);
    }
    if (subset.empty()) subset.push_back(0);
    subsets.push_back(std::move(subset));
  }
  departs[5] = departs[4];  // duplicate departure, different subset
  std::vector<uint32_t> all(unique.size());
  std::iota(all.begin(), all.end(), 0u);
  subsets[7] = all;

  for (const geo::Point& origin : origins) {
    std::vector<WindowLane> lanes(departs.size());
    std::vector<std::vector<Journey>> out(departs.size());
    for (size_t l = 0; l < departs.size(); ++l) {
      out[l].resize(subsets[l].size());
      lanes[l].depart = departs[l];
      lanes[l].targets = subsets[l].data();
      lanes[l].num_targets = subsets[l].size();
      lanes[l].out = out[l].data();
    }
    csa->RouteWindow(origin, unique.data(), unique.size(), lanes.data(),
                     lanes.size(), gtfs::Day::kTuesday);

    for (size_t l = 0; l < departs.size(); ++l) {
      std::vector<geo::Point> lane_targets;
      for (uint32_t u : subsets[l]) lane_targets.push_back(unique[u]);
      std::vector<Journey> solo(lane_targets.size());
      csa->RouteMany(origin, lane_targets.data(), lane_targets.size(),
                     gtfs::Day::kTuesday, departs[l], solo.data());
      for (size_t k = 0; k < solo.size(); ++k) {
        ExpectSameJourney(solo[k], out[l][k]);
      }
    }
  }
}

TEST(CsaProfileTest, WindowScanMatchesOracleAcrossRateWindows) {
  // Rate-window shapes the labeling hot path produces: dense departures
  // over AM-peak-like spans, all targets shared.
  synth::City city = testing::TinyCity();
  Router router(&city.feed, CsaOptions());
  Router oracle(&city.feed, RouterOptions{});
  CsaEngine* csa = router.csa();

  std::vector<geo::Point> unique = SampleTargets(city, 41, 7);
  std::vector<uint32_t> all(unique.size());
  std::iota(all.begin(), all.end(), 0u);
  const geo::Point origin = SampleOrigins(city, 42, 1)[0];

  struct Window {
    gtfs::TimeOfDay start;
    gtfs::TimeOfDay step;
    int count;
  };
  for (const Window& w : {Window{gtfs::MakeTime(7, 0), 300, 24},
                          Window{gtfs::MakeTime(16, 30), 601, 12},
                          Window{gtfs::MakeTime(22, 40), 900, 8}}) {
    std::vector<WindowLane> lanes(static_cast<size_t>(w.count));
    std::vector<std::vector<Journey>> out(lanes.size());
    for (size_t l = 0; l < lanes.size(); ++l) {
      out[l].resize(unique.size());
      lanes[l].depart = w.start + static_cast<gtfs::TimeOfDay>(l) * w.step;
      lanes[l].targets = all.data();
      lanes[l].num_targets = all.size();
      lanes[l].out = out[l].data();
    }
    csa->RouteWindow(origin, unique.data(), unique.size(), lanes.data(),
                     lanes.size(), gtfs::Day::kTuesday);
    for (size_t l = 0; l < lanes.size(); ++l) {
      std::vector<Journey> want = oracle.RouteMany(
          origin, unique, gtfs::Day::kTuesday, lanes[l].depart);
      for (size_t k = 0; k < unique.size(); ++k) {
        ExpectEquivalentJourney(want[k], out[l][k]);
      }
    }
  }
}

}  // namespace
}  // namespace staq::router
