// Golden equivalence for the batched SPQ path: RouteMany and the bounded
// relaxation must reproduce the per-query router bit for bit — the batched
// labeling pipeline depends on this being exact, not approximate.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "router/cost.h"
#include "router/router.h"
#include "testing/test_city.h"
#include "util/rng.h"

namespace staq::router {
namespace {

void ExpectSameJourney(const Journey& a, const Journey& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.depart, b.depart);
  EXPECT_EQ(a.arrive, b.arrive);
  EXPECT_EQ(a.access_walk_s, b.access_walk_s);
  EXPECT_EQ(a.transfer_walk_s, b.transfer_walk_s);
  EXPECT_EQ(a.wait_s, b.wait_s);
  EXPECT_EQ(a.in_vehicle_s, b.in_vehicle_s);
  EXPECT_EQ(a.egress_walk_s, b.egress_walk_s);
  EXPECT_EQ(a.num_boardings, b.num_boardings);
  EXPECT_EQ(a.total_fare, b.total_fare);
  EXPECT_EQ(a.IsWalkOnly(), b.IsWalkOnly());
  EXPECT_EQ(a.JourneyTimeSeconds(), b.JourneyTimeSeconds());
  GacWeights w;
  EXPECT_EQ(GeneralizedAccessCost(a, w), GeneralizedAccessCost(b, w));
  ASSERT_EQ(a.legs.size(), b.legs.size());
  for (size_t i = 0; i < a.legs.size(); ++i) {
    EXPECT_EQ(a.legs[i].type, b.legs[i].type);
    EXPECT_EQ(a.legs[i].start, b.legs[i].start);
    EXPECT_EQ(a.legs[i].end, b.legs[i].end);
    EXPECT_EQ(a.legs[i].route, b.legs[i].route);
    EXPECT_EQ(a.legs[i].from_stop, b.legs[i].from_stop);
    EXPECT_EQ(a.legs[i].to_stop, b.legs[i].to_stop);
  }
}

// Sample origins/targets spread across the synthetic city, including points
// far outside the network (infeasible) and pairs closer than a walk.
struct QuerySet {
  std::vector<geo::Point> origins;
  std::vector<geo::Point> targets;
};

QuerySet SampleQueries(const synth::City& city, uint64_t seed) {
  QuerySet q;
  util::Rng rng(seed);
  const int64_t max_zone = static_cast<int64_t>(city.zones.size()) - 1;
  for (int i = 0; i < 6; ++i) {
    const auto& z =
        city.zones[static_cast<size_t>(rng.UniformInt(0, max_zone))];
    q.origins.push_back(z.centroid);
  }
  for (int i = 0; i < 10; ++i) {
    const auto& z =
        city.zones[static_cast<size_t>(rng.UniformInt(0, max_zone))];
    q.targets.push_back(
        geo::Point{z.centroid.x + rng.UniformDouble() * 200.0,
                   z.centroid.y - rng.UniformDouble() * 200.0});
  }
  // Unreachable target well outside any stop's walking reach.
  q.targets.push_back(geo::Point{1e7, 1e7});
  return q;
}

TEST(RouteManyTest, MatchesPerTargetRouteOnSyntheticCity) {
  synth::City city = testing::TinyCity();
  Router batched(&city.feed, RouterOptions{});
  Router single(&city.feed, RouterOptions{});
  QuerySet q = SampleQueries(city, /*seed=*/11);

  for (const geo::Point& origin : q.origins) {
    for (gtfs::TimeOfDay depart :
         {gtfs::MakeTime(7, 0), gtfs::MakeTime(8, 17) + 23,
          gtfs::MakeTime(12, 30)}) {
      std::vector<Journey> many =
          batched.RouteMany(origin, q.targets, gtfs::Day::kTuesday, depart);
      ASSERT_EQ(many.size(), q.targets.size());
      for (size_t t = 0; t < q.targets.size(); ++t) {
        Journey one = single.Route(origin, q.targets[t], gtfs::Day::kTuesday,
                                   depart);
        ExpectSameJourney(many[t], one);
      }
    }
  }
}

TEST(RouteManyTest, BoundedRelaxationMatchesUnbounded) {
  synth::City city = testing::TinyCity();
  RouterOptions unbounded;
  unbounded.bounded_relaxation = false;
  Router pruned(&city.feed, RouterOptions{});
  Router full(&city.feed, unbounded);
  QuerySet q = SampleQueries(city, /*seed=*/17);

  for (const geo::Point& origin : q.origins) {
    for (const geo::Point& target : q.targets) {
      for (gtfs::TimeOfDay depart :
           {gtfs::MakeTime(7, 45), gtfs::MakeTime(9, 3) + 41}) {
        Journey a = pruned.Route(origin, target, gtfs::Day::kWednesday,
                                 depart);
        Journey b = full.Route(origin, target, gtfs::Day::kWednesday, depart);
        ExpectSameJourney(a, b);
      }
    }
  }
}

TEST(RouteManyTest, BoardingRouteBreakMatchesFullWindowScan) {
  // The route-break scan skips only departures whose route already claimed
  // an earlier (FIFO-dominant) boarding, so it must be exactly equivalent
  // to walking the full max_boarding_wait_s window.
  synth::City city = testing::TinyCity();
  RouterOptions full_scan;
  full_scan.boarding_route_break = false;
  full_scan.bounded_relaxation = false;
  Router pruned(&city.feed, RouterOptions{});
  Router full(&city.feed, full_scan);
  QuerySet q = SampleQueries(city, /*seed=*/19);

  for (const geo::Point& origin : q.origins) {
    for (const geo::Point& target : q.targets) {
      for (gtfs::TimeOfDay depart :
           {gtfs::MakeTime(8, 12) + 7, gtfs::MakeTime(17, 30)}) {
        Journey a = pruned.Route(origin, target, gtfs::Day::kFriday, depart);
        Journey b = full.Route(origin, target, gtfs::Day::kFriday, depart);
        ExpectSameJourney(a, b);
      }
    }
  }
}

TEST(RouteManyTest, HeapAndBucketQueuesAgreeOnArrivals) {
  // The two queue disciplines settle equal-time entries in different
  // orders, which may tie-break equal-cost journeys into different leg
  // decompositions — but earliest arrivals (hence feasibility and journey
  // time) are discipline-invariant.
  synth::City city = testing::TinyCity();
  RouterOptions heap_opts;
  heap_opts.bucket_queue = false;
  Router bucket(&city.feed, RouterOptions{});
  Router heap(&city.feed, heap_opts);
  QuerySet q = SampleQueries(city, /*seed=*/31);

  for (const geo::Point& origin : q.origins) {
    for (const geo::Point& target : q.targets) {
      for (gtfs::TimeOfDay depart :
           {gtfs::MakeTime(7, 58), gtfs::MakeTime(12, 4) + 13}) {
        Journey a = bucket.Route(origin, target, gtfs::Day::kTuesday, depart);
        Journey b = heap.Route(origin, target, gtfs::Day::kTuesday, depart);
        EXPECT_EQ(a.feasible, b.feasible);
        EXPECT_EQ(a.depart, b.depart);
        EXPECT_EQ(a.arrive, b.arrive);
        EXPECT_EQ(a.JourneyTimeSeconds(), b.JourneyTimeSeconds());
      }
    }
  }
}

TEST(RouteManyTest, MatchesRouteOnHandBuiltFeeds) {
  gtfs::Feed line = testing::LineFeed(600);
  gtfs::Feed transfer = testing::TransferFeed();
  for (gtfs::Feed* feed : {&line, &transfer}) {
    Router batched(feed, RouterOptions{});
    Router single(feed, RouterOptions{});
    std::vector<geo::Point> targets = {
        {4000, 100}, {300, 0}, {6000, 100}, {0, 0}, {1e7, 1e7}};
    std::vector<Journey> many = batched.RouteMany(
        {0, 50}, targets, gtfs::Day::kMonday, gtfs::MakeTime(7, 0));
    for (size_t t = 0; t < targets.size(); ++t) {
      Journey one = single.Route({0, 50}, targets[t], gtfs::Day::kMonday,
                                 gtfs::MakeTime(7, 0));
      ExpectSameJourney(many[t], one);
    }
  }
}

TEST(RouteManyTest, DuplicateTargetsGetIdenticalJourneys) {
  gtfs::Feed feed = testing::LineFeed(600);
  Router router(&feed, RouterOptions{});
  std::vector<geo::Point> targets = {{4000, 100}, {4000, 100}, {4000, 100}};
  std::vector<Journey> many = router.RouteMany(
      {0, 100}, targets, gtfs::Day::kTuesday, gtfs::MakeTime(7, 0));
  ASSERT_EQ(many.size(), 3u);
  ExpectSameJourney(many[0], many[1]);
  ExpectSameJourney(many[0], many[2]);
  EXPECT_TRUE(many[0].feasible);
}

TEST(RouteManyTest, OriginEqualsTarget) {
  gtfs::Feed feed = testing::LineFeed(600);
  Router router(&feed, RouterOptions{});
  std::vector<geo::Point> targets = {{0, 100}};
  std::vector<Journey> many = router.RouteMany(
      {0, 100}, targets, gtfs::Day::kTuesday, gtfs::MakeTime(7, 0));
  ASSERT_EQ(many.size(), 1u);
  ASSERT_TRUE(many[0].feasible);
  EXPECT_TRUE(many[0].IsWalkOnly());
  EXPECT_EQ(many[0].JourneyTimeSeconds(), 0.0);
}

TEST(RouteManyTest, EmptyTargetListIsANoOp) {
  gtfs::Feed feed = testing::LineFeed(600);
  Router router(&feed, RouterOptions{});
  std::vector<Journey> many = router.RouteMany(
      {0, 100}, {}, gtfs::Day::kTuesday, gtfs::MakeTime(7, 0));
  EXPECT_TRUE(many.empty());
}

TEST(RouteManyTest, ScratchReuseAcrossCallsStaysExact) {
  // Interleave batches and singles on ONE router so stale epoch state from
  // a previous call would be caught.
  synth::City city = testing::TinyCity();
  Router reused(&city.feed, RouterOptions{});
  Router fresh_feed(&city.feed, RouterOptions{});
  QuerySet q = SampleQueries(city, /*seed=*/23);

  for (int round = 0; round < 3; ++round) {
    for (const geo::Point& origin : q.origins) {
      gtfs::TimeOfDay depart = gtfs::MakeTime(7, 0) + round * 1117;
      std::vector<Journey> many =
          reused.RouteMany(origin, q.targets, gtfs::Day::kFriday, depart);
      for (size_t t = 0; t < q.targets.size(); ++t) {
        Router oneshot(&city.feed, RouterOptions{});
        Journey one = oneshot.Route(origin, q.targets[t], gtfs::Day::kFriday,
                                    depart);
        ExpectSameJourney(many[t], one);
      }
      // The same reused router answering a single query is also unaffected.
      Journey single = reused.Route(origin, q.targets[0], gtfs::Day::kFriday,
                                    depart);
      Journey expect = fresh_feed.Route(origin, q.targets[0],
                                        gtfs::Day::kFriday, depart);
      ExpectSameJourney(single, expect);
    }
  }
}

TEST(RouteManyTest, CachedOriginAccessMatchesInternalLookup) {
  synth::City city = testing::TinyCity();
  Router router(&city.feed, RouterOptions{});
  QuerySet q = SampleQueries(city, /*seed=*/29);
  const geo::Point origin = q.origins[0];
  std::vector<WalkHop> access = router.walk_table().AccessStops(origin);

  std::vector<Journey> with_cache(q.targets.size());
  router.RouteMany(origin, q.targets.data(), q.targets.size(),
                   gtfs::Day::kTuesday, gtfs::MakeTime(8, 0),
                   with_cache.data(), &access);
  std::vector<Journey> without =
      router.RouteMany(origin, q.targets, gtfs::Day::kTuesday,
                       gtfs::MakeTime(8, 0));
  for (size_t t = 0; t < q.targets.size(); ++t) {
    ExpectSameJourney(with_cache[t], without[t]);
  }
}

}  // namespace
}  // namespace staq::router
