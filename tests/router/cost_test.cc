#include "router/cost.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace staq::router {
namespace {

Journey SampleJourney() {
  Journey j;
  j.feasible = true;
  j.depart = gtfs::MakeTime(7, 0);
  j.arrive = gtfs::MakeTime(7, 30);
  j.access_walk_s = 120;
  j.transfer_walk_s = 60;
  j.wait_s = 300;
  j.in_vehicle_s = 1200;
  j.egress_walk_s = 120;
  j.num_boardings = 2;
  j.total_fare = 4.0;
  return j;
}

TEST(JourneyTest, JourneyTimeSeconds) {
  Journey j = SampleJourney();
  EXPECT_DOUBLE_EQ(j.JourneyTimeSeconds(), 1800.0);
}

TEST(JourneyTest, WalkOnlyDetection) {
  Journey j = SampleJourney();
  EXPECT_FALSE(j.IsWalkOnly());
  j.num_boardings = 0;
  EXPECT_TRUE(j.IsWalkOnly());
  j.feasible = false;
  EXPECT_FALSE(j.IsWalkOnly());
}

TEST(GacTest, MatchesHandComputedEq1) {
  Journey j = SampleJourney();
  GacWeights w;  // defaults: λ_tan 2.0, λ_wt 2.5, λ_ivt 1.0, λ_et 2.0,
                 // TP 600 s, VOT 9/3600.
  double expected = 2.0 * (120 + 60) +   // TAN (access + transfer walk)
                    2.5 * 300 +          // WT
                    1.0 * 1200 +         // IVT
                    2.0 * 120 +          // ET
                    600.0 * 1 +          // TP: (2 boardings - 1) transfer
                    4.0 / (9.0 / 3600);  // FARE/VOT
  EXPECT_DOUBLE_EQ(GeneralizedAccessCost(j, w), expected);
}

TEST(GacTest, NoTransferPenaltyForSingleBoarding) {
  Journey j = SampleJourney();
  j.num_boardings = 1;
  GacWeights w;
  w.lambda_tan = w.lambda_wt = w.lambda_et = 0;
  w.lambda_ivt = 0;
  Journey j2 = j;
  j2.total_fare = 0;
  // With all λ zero and no fare, a single boarding costs nothing.
  EXPECT_DOUBLE_EQ(GeneralizedAccessCost(j2, w), 0.0);
}

TEST(GacTest, WalkOnlyJourneyWeightsWalk) {
  Journey j;
  j.feasible = true;
  j.depart = 0;
  j.arrive = 1000;
  j.access_walk_s = 1000;
  GacWeights w;
  EXPECT_DOUBLE_EQ(GeneralizedAccessCost(j, w), 2.0 * 1000);
}

TEST(GacTest, InfeasibleIsInfinite) {
  Journey j;
  EXPECT_TRUE(std::isinf(GeneralizedAccessCost(j, GacWeights{})));
}

TEST(GacTest, HigherVotLowersFareComponent) {
  Journey j = SampleJourney();
  GacWeights cheap_time;
  GacWeights dear_time;
  dear_time.value_of_time = cheap_time.value_of_time * 2;
  EXPECT_GT(GeneralizedAccessCost(j, cheap_time),
            GeneralizedAccessCost(j, dear_time));
}

TEST(GacWeightsTest, Validity) {
  GacWeights w;
  EXPECT_TRUE(w.Valid());
  w.value_of_time = 0;
  EXPECT_FALSE(w.Valid());
  w = GacWeights{};
  w.lambda_wt = -1;
  EXPECT_FALSE(w.Valid());
}

TEST(DescribeJourneyTest, MentionsLegsAndTimes) {
  Journey j = SampleJourney();
  JourneyLeg walk;
  walk.type = JourneyLeg::Type::kWalk;
  walk.start = j.depart;
  walk.end = j.depart + 120;
  JourneyLeg ride;
  ride.type = JourneyLeg::Type::kRide;
  ride.route = 3;
  ride.start = walk.end;
  ride.end = j.arrive;
  j.legs = {walk, ride};
  std::string text = DescribeJourney(j);
  EXPECT_NE(text.find("walk 120s"), std::string::npos);
  EXPECT_NE(text.find("route 3"), std::string::npos);
  EXPECT_NE(text.find("07:00:00"), std::string::npos);
}

TEST(DescribeJourneyTest, Infeasible) {
  EXPECT_EQ(DescribeJourney(Journey{}), "infeasible");
}

}  // namespace
}  // namespace staq::router
