// Cross-module property tests: invariants that must hold on ANY generated
// city, swept across seeds with parameterised gtest.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "router/router.h"
#include "synth/city_builder.h"
#include "util/rng.h"

namespace staq {
namespace {

class CityPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  synth::City BuildSeededCity() {
    // Alternate between city families across the sweep.
    synth::CitySpec spec =
        (GetParam() % 2 == 0)
            ? synth::CitySpec::Covely(0.06, 100 + GetParam())
            : synth::CitySpec::Brindale(0.03, 100 + GetParam());
    auto built = synth::BuildCity(spec);
    EXPECT_TRUE(built.ok());
    return std::move(built).value();
  }
};

TEST_P(CityPropertyTest, GeneratedCityIsStructurallySound) {
  synth::City city = BuildSeededCity();
  EXPECT_TRUE(city.feed.Validate().ok());
  EXPECT_GT(city.feed.num_trips(), 0u);

  std::vector<uint32_t> labels;
  EXPECT_EQ(city.road.ConnectedComponents(&labels), 1u);

  for (const synth::Zone& z : city.zones) {
    EXPECT_TRUE(city.extent.Contains(z.centroid));
    EXPECT_GT(z.population, 0.0);
  }
  // Stops lie within (a margin of) the city extent.
  double margin = 2 * city.spec.zone_spacing_m;
  for (const gtfs::Stop& s : city.feed.stops()) {
    EXPECT_GT(s.position.x, city.extent.min_x - margin);
    EXPECT_LT(s.position.x, city.extent.max_x + margin);
  }
}

TEST_P(CityPropertyTest, LargerHorizonNeverHurtsArrival) {
  synth::City city = BuildSeededCity();
  router::RouterOptions tight;
  tight.horizon_s = 1800;
  router::RouterOptions loose;
  loose.horizon_s = 4 * 3600;
  router::Router tight_router(&city.feed, tight);
  router::Router loose_router(&city.feed, loose);

  util::Rng rng(GetParam());
  for (int i = 0; i < 30; ++i) {
    geo::Point o{rng.Uniform(city.extent.min_x, city.extent.max_x),
                 rng.Uniform(city.extent.min_y, city.extent.max_y)};
    geo::Point d{rng.Uniform(city.extent.min_x, city.extent.max_x),
                 rng.Uniform(city.extent.min_y, city.extent.max_y)};
    gtfs::TimeOfDay t = gtfs::MakeTime(8, 0);
    auto a = tight_router.Route(o, d, gtfs::Day::kTuesday, t);
    auto b = loose_router.Route(o, d, gtfs::Day::kTuesday, t);
    if (a.feasible) {
      ASSERT_TRUE(b.feasible);
      // A larger horizon explores a superset of labels: never worse.
      EXPECT_LE(b.arrive, a.arrive);
      // And when the tight answer fits strictly within the tight horizon,
      // the search there was not truncated, so the answers coincide.
      // (Journeys whose transit portion brushes the horizon may be found
      // suboptimally — the horizon prunes stop labels, not egress walks.)
      if (a.JourneyTimeSeconds() <= tight.horizon_s) {
        EXPECT_EQ(b.arrive, a.arrive);
      }
    }
  }
}

TEST_P(CityPropertyTest, HopTreeLeavesRespectRideCapAndZoneRange) {
  synth::City city = BuildSeededCity();
  core::IsochroneSet isochrones(city, core::IsochroneConfig{});
  core::HopTreeOptions options;
  options.max_ride_s = 1200;
  core::HopTreeSet trees(city, isochrones, gtfs::WeekdayAmPeak(), options);
  for (uint32_t z = 0; z < city.zones.size(); ++z) {
    for (const core::HopLeaf& leaf : trees.Outbound(z).leaves()) {
      EXPECT_LT(leaf.zone, city.zones.size());
      EXPECT_NE(leaf.zone, z);
      EXPECT_LE(leaf.mean_journey_s, options.max_ride_s);
    }
    for (const core::HopLeaf& leaf : trees.Inbound(z).leaves()) {
      EXPECT_LE(leaf.mean_journey_s, options.max_ride_s);
    }
  }
}

TEST_P(CityPropertyTest, GravityCountLockstepHoldsOnAnyCity) {
  synth::City city = BuildSeededCity();
  auto pois = city.PoisOf(synth::PoiCategory::kSchool);
  core::GravityConfig gravity = core::CalibratedGravityConfig(city.spec);
  gravity.sample_rate_per_hour = 3;
  core::TodamBuilder builder(city.zones, pois, gtfs::WeekdayAmPeak(),
                             gravity);
  uint64_t seed = 900 + GetParam();
  EXPECT_EQ(builder.GravityTripCount(seed),
            builder.BuildGravity(seed).num_trips());
}

TEST_P(CityPropertyTest, PipelinePredictionsAreFiniteAndNonNegative) {
  synth::City city = BuildSeededCity();
  core::SsrPipeline pipeline(&city, gtfs::WeekdayAmPeak());
  auto pois = city.PoisOf(synth::PoiCategory::kVaxCenter);
  core::GravityConfig gravity;
  gravity.sample_rate_per_hour = 3;
  gravity.keep_scale = 2.0;
  core::Todam todam = pipeline.BuildGravityTodam(pois, gravity, GetParam());

  core::PipelineConfig config;
  config.beta = 0.25;
  config.model = ml::ModelKind::kOls;
  config.seed = GetParam();
  auto run = pipeline.Run(pois, todam, config);
  ASSERT_TRUE(run.ok());
  for (size_t z = 0; z < run.value().mac.size(); ++z) {
    EXPECT_TRUE(std::isfinite(run.value().mac[z]));
    EXPECT_GE(run.value().mac[z], 0.0);
    EXPECT_GE(run.value().acsd[z], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CityPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace staq
