// End-to-end integration tests: the full paper pipeline — synthetic city ->
// gravity TODAM -> offline structures -> SSR run -> access measures —
// checked against the ground-truth (naive) computation for the qualitative
// properties the paper reports.
#include <gtest/gtest.h>

#include "core/access_query.h"
#include "core/pipeline.h"
#include "testing/test_city.h"

namespace staq {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest()
      : city_(std::move(synth::BuildCity(synth::CitySpec::Covely(0.15, 17)))
                  .value()),
        pipeline_(&city_, gtfs::WeekdayAmPeak()) {
    pois_ = city_.PoisOf(synth::PoiCategory::kSchool);
    core::GravityConfig gravity = core::CalibratedGravityConfig(city_.spec);
    gravity.sample_rate_per_hour = 4;
    todam_ = pipeline_.BuildGravityTodam(pois_, gravity, 1);
    truth_ = pipeline_.ComputeGroundTruth(pois_, todam_,
                                          core::CostKind::kJourneyTime);
  }

  core::EvaluationMetrics RunModel(ml::ModelKind model, double beta) {
    core::PipelineConfig config;
    config.beta = beta;
    config.model = model;
    config.seed = 4;
    auto run = pipeline_.Run(pois_, todam_, config);
    EXPECT_TRUE(run.ok());
    return Evaluate(truth_, run.value());
  }

  synth::City city_;
  core::SsrPipeline pipeline_;
  std::vector<synth::Poi> pois_;
  core::Todam todam_;
  core::GroundTruth truth_;
};

TEST_F(IntegrationTest, GravityMatrixShrinksTheWorkload) {
  core::GravityConfig gravity = core::CalibratedGravityConfig(city_.spec);
  gravity.sample_rate_per_hour = 4;
  core::TodamBuilder builder(city_.zones, pois_, gtfs::WeekdayAmPeak(),
                             gravity);
  // The paper's headline: the gravity construction removes most trips.
  EXPECT_LT(static_cast<double>(todam_.num_trips()),
            0.5 * static_cast<double>(builder.FullTripCount()));
}

TEST_F(IntegrationTest, MlpBeatsChanceAtModestBudget) {
  core::EvaluationMetrics metrics = RunModel(ml::ModelKind::kMlp, 0.1);
  EXPECT_GT(metrics.mac_corr, 0.5);
  EXPECT_GT(metrics.class_accuracy, 0.25);  // 4 classes -> chance 0.25
  EXPECT_LT(metrics.fie, 0.1);
}

TEST_F(IntegrationTest, LargerBudgetNotWorse) {
  // Error at beta=30% should not be dramatically worse than at 5% (and is
  // typically much better). Allow slack for stochastic variation.
  core::EvaluationMetrics small = RunModel(ml::ModelKind::kMlp, 0.05);
  core::EvaluationMetrics large = RunModel(ml::ModelKind::kMlp, 0.3);
  EXPECT_LT(large.mac_mae, 1.5 * small.mac_mae + 30.0);
}

TEST_F(IntegrationTest, SsrCutsLabelingCost) {
  core::PipelineConfig config;
  config.beta = 0.05;
  config.model = ml::ModelKind::kOls;
  config.seed = 4;
  auto run = pipeline_.Run(pois_, todam_, config);
  ASSERT_TRUE(run.ok());
  // The SPQ saving is the paper's central claim: at beta=5% the solution
  // issues ~5% of the naive SPQs.
  double spq_fraction = static_cast<double>(run.value().spqs) /
                        static_cast<double>(truth_.spqs);
  EXPECT_LT(spq_fraction, 0.10);
  EXPECT_GT(spq_fraction, 0.01);
}

TEST_F(IntegrationTest, AllModelsRunEndToEnd) {
  for (ml::ModelKind model : ml::AllModelKinds()) {
    core::EvaluationMetrics metrics = RunModel(model, 0.2);
    EXPECT_TRUE(std::isfinite(metrics.mac_mae)) << ml::ModelKindName(model);
    EXPECT_GT(metrics.mac_corr, 0.0) << ml::ModelKindName(model);
  }
}

TEST_F(IntegrationTest, FairnessIndexPredictedAccurately) {
  // Paper: FIE remains low even at the lowest budgets.
  core::EvaluationMetrics metrics = RunModel(ml::ModelKind::kMlp, 0.05);
  EXPECT_LT(metrics.fie, 0.15);
}

TEST(IntegrationDynamicTest, EndToEndDynamicScenario) {
  // The motivating workflow: measure access, add a facility, re-query.
  core::AccessQueryEngine engine(
      std::move(synth::BuildCity(synth::CitySpec::Covely(0.1, 21))).value(),
      gtfs::WeekdayAmPeak());

  core::AccessQueryOptions options;
  options.exact = true;
  options.gravity.sample_rate_per_hour = 4;
  options.gravity.keep_scale = 2.0;

  auto before = engine.Query(synth::PoiCategory::kVaxCenter, options);
  ASSERT_TRUE(before.ok());

  engine.AddPoi(synth::PoiCategory::kVaxCenter, engine.city().Centre());
  auto after = engine.Query(synth::PoiCategory::kVaxCenter, options);
  ASSERT_TRUE(after.ok());

  // More provision can only help the mean access cost.
  EXPECT_LE(after.value().mean_mac, before.value().mean_mac * 1.02);
}

}  // namespace
}  // namespace staq
