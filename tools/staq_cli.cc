// staq command-line tool.
//
//   staq_cli synth --city brindale --scale 0.25 --seed 42 --out DIR
//       Generate a synthetic city and save it (zones/pois/roads CSV +
//       GTFS timetable) for later queries.
//
//   staq_cli info --city-dir DIR
//       Summarise a saved city.
//
//   staq_cli query --city-dir DIR --poi school --interval am
//             [--beta 0.05] [--model MLP|OLS|COREG|MT|GNN] [--cost jt|gac]
//             [--exact] [--threads N] [--zones-out FILE]
//       Answer an access query; optionally dump per-zone measures as CSV.
//
//   staq_cli snapshot save|load|inspect|verify ...
//       Persist a full serving snapshot (city + offline structures +
//       exact label states) in the staq::store container format, reload
//       it (warm start), or check a file's integrity.
//
//   staq_cli wal inspect|verify --dir DIR
//       Walk a mutation WAL directory: list segments and records, or
//       check every record checksum and the sequence chain.
//
//   staq_cli bench list|run|diff ...
//       The experiment harness: enumerate the linkable benches and their
//       baseline coverage, run a declarative sweep config (with per-cell
//       resume snapshots), or diff a run's BENCH_*.json documents against
//       the checked-in golden baselines under the tolerance policy.
//
//   staq_cli scenario list|run|report ...
//       Disruption scenarios: list a pack's scenarios, run a pack against
//       a city (each scenario applies its timetable disruptions to a live
//       server and reports the before/after equity impact), or re-render a
//       saved report JSON.
//
// Queries can also run directly on a synthetic spec without saving:
//   staq_cli query --synth covely --scale 0.1 --poi hospital
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <initializer_list>
#include <map>
#include <string>

#include "bench_registry.h"
#include "core/access_query.h"
#include "core/export.h"
#include "exp/config.h"
#include "exp/diff.h"
#include "exp/json.h"
#include "exp/runner.h"
#include "core/labeling.h"
#include "core/parallel_labeling.h"
#include "gtfs/gtfs_csv.h"
#include "router/router.h"
#include "scenario/pack.h"
#include "scenario/report.h"
#include "scenario/runner.h"
#include "serve/request.h"
#include "serve/scenario.h"
#include "store/snapshot.h"
#include "synth/city_builder.h"
#include "synth/city_io.h"
#include "util/csv.h"
#include "util/strings.h"
#include "wal/wal.h"

namespace staq {
namespace {

/// Minimal --flag value parser; flags without a following value get "".
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }

  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

constexpr char kSynthUsage[] =
    "  synth --city brindale|covely [--scale S] [--seed N] --out DIR\n";
constexpr char kInfoUsage[] =
    "  info  (--city-dir DIR | --synth brindale|covely [--scale S] "
    "[--seed N])\n";
constexpr char kQueryUsage[] =
    "  query (--city-dir DIR | --synth brindale|covely [--scale S] "
    "[--seed N])\n"
    "        --poi school|hospital|vax_center|job_center\n"
    "        [--interval am|offpeak|pm|sunday] [--beta B]\n"
    "        [--model MLP|OLS|COREG|MT|GNN] [--cost jt|gac]\n"
    "        [--exact] [--threads N] [--zones-out FILE]\n"
    "        [--geojson FILE] [--report FILE]\n"
    "        [--batch [--batch-seeds N]]  (requires --exact: sweeps\n"
    "          jt+gac across N TODAM seeds in one labeling pass)\n";
constexpr char kSnapshotUsage[] =
    "  snapshot save (--city-dir DIR | --synth brindale|covely [--scale S] "
    "[--seed N])\n"
    "           [--interval am|offpeak|pm|sunday] [--poi CATEGORY]\n"
    "           [--cost jt|gac] [--label-seed N] --out FILE\n"
    "  snapshot load --in FILE [--buffered]\n"
    "  snapshot inspect --in FILE\n"
    "  snapshot verify --in FILE\n";
constexpr char kWalUsage[] =
    "  wal inspect --dir DIR [--records]\n"
    "  wal verify --dir DIR\n";
constexpr char kBenchUsage[] =
    "  bench list [--baselines DIR]\n"
    "  bench run --config FILE --out DIR [--state DIR] [--no-resume]\n"
    "        [--max-executed N] [--quiet]\n"
    "  bench diff --run DIR [--baselines DIR] [--policy FILE] "
    "[--relax-perf]\n";
constexpr char kScenarioUsage[] =
    "  scenario list --pack FILE\n"
    "  scenario run --pack FILE (--city-dir DIR | --synth brindale|covely "
    "[--scale S] [--seed N])\n"
    "           [--name SCENARIO] [--poi CATEGORY] "
    "[--interval am|offpeak|pm|sunday]\n"
    "           [--cost jt|gac] [--threads N] [--out DIR]\n"
    "  scenario report --in FILE\n";

int Usage() {
  std::fprintf(stderr,
               "usage: staq_cli <synth|info|query|snapshot|wal|bench|"
               "scenario> [flags]\n%s%s%s%s%s%s%s",
               kSynthUsage, kInfoUsage, kQueryUsage, kSnapshotUsage, kWalUsage,
               kBenchUsage, kScenarioUsage);
  return 2;
}

/// Per-subcommand usage, shown on bad flags or missing arguments.
int UsageFor(const std::string& command, const char* block) {
  std::fprintf(stderr, "usage: staq_cli %s [flags]\n%s", command.c_str(),
               block);
  return 2;
}

/// Rejects flags the subcommand does not understand. A silently ignored
/// flag (historically: any typo) is worse than an error — the caller
/// believes the flag took effect.
bool CheckFlags(const Args& args, const std::string& command,
                std::initializer_list<const char*> allowed) {
  bool ok = true;
  for (const auto& [key, value] : args.values()) {
    bool known = std::any_of(allowed.begin(), allowed.end(),
                             [&key](const char* a) { return key == a; });
    if (!known) {
      std::fprintf(stderr, "staq_cli %s: unknown flag --%s\n", command.c_str(),
                   key.c_str());
      ok = false;
    }
  }
  return ok;
}

/// The positional analogue of CheckFlags: rejects a command or verb the
/// tool does not understand, through the same complain-then-usage path a
/// typoed flag takes. `scope` is "" for top-level commands, the command
/// name for its verbs.
bool CheckCommand(const std::string& scope, const std::string& name,
                  std::initializer_list<const char*> allowed) {
  bool known = std::any_of(allowed.begin(), allowed.end(),
                           [&name](const char* a) { return name == a; });
  if (!known) {
    std::fprintf(stderr, "staq_cli%s%s: unknown %s '%s'\n",
                 scope.empty() ? "" : " ", scope.c_str(),
                 scope.empty() ? "command" : "verb", name.c_str());
  }
  return known;
}

util::Result<synth::CitySpec> SpecFor(const std::string& name, double scale,
                                      uint64_t seed) {
  if (name == "brindale") return synth::CitySpec::Brindale(scale, seed);
  if (name == "covely") return synth::CitySpec::Covely(scale, seed);
  return util::Status::InvalidArgument("unknown city: " + name);
}

util::Result<synth::PoiCategory> CategoryFor(const std::string& name) {
  for (int c = 0; c < synth::kNumPoiCategories; ++c) {
    auto category = static_cast<synth::PoiCategory>(c);
    if (name == synth::PoiCategoryName(category)) return category;
  }
  return util::Status::InvalidArgument("unknown poi category: " + name);
}

util::Result<gtfs::TimeInterval> IntervalFor(const std::string& name) {
  if (name == "am") return gtfs::WeekdayAmPeak();
  if (name == "offpeak") return gtfs::WeekdayOffPeak();
  if (name == "pm") return gtfs::WeekdayPmPeak();
  if (name == "sunday") return gtfs::SundayMorning();
  return util::Status::InvalidArgument("unknown interval: " + name);
}

util::Result<ml::ModelKind> ModelFor(const std::string& name) {
  for (ml::ModelKind kind : ml::AllModelKinds()) {
    if (name == ml::ModelKindName(kind)) return kind;
  }
  return util::Status::InvalidArgument("unknown model: " + name);
}

/// The projection used for GTFS export/import of saved cities.
geo::LocalProjection CliProjection() {
  return geo::LocalProjection(geo::LatLon{52.45, -1.7});
}

util::Result<synth::City> LoadOrSynth(const Args& args) {
  if (args.Has("city-dir")) {
    std::string dir = args.Get("city-dir", "");
    auto feed = gtfs::ReadFeedCsv(dir, CliProjection());
    if (!feed.ok()) return feed.status();
    return synth::LoadCityCsv(dir, std::move(feed).value());
  }
  if (args.Has("synth")) {
    auto spec = SpecFor(args.Get("synth", ""), args.GetDouble("scale", 0.1),
                        static_cast<uint64_t>(args.GetInt("seed", 42)));
    if (!spec.ok()) return spec.status();
    return synth::BuildCity(spec.value());
  }
  return util::Status::InvalidArgument("need --city-dir or --synth");
}

int RunSynth(const Args& args) {
  if (!CheckFlags(args, "synth", {"city", "scale", "seed", "out"})) {
    return UsageFor("synth", kSynthUsage);
  }
  if (!args.Has("out")) {
    std::fprintf(stderr, "synth: --out DIR is required\n");
    return UsageFor("synth", kSynthUsage);
  }
  auto spec = SpecFor(args.Get("city", "covely"), args.GetDouble("scale", 0.1),
                      static_cast<uint64_t>(args.GetInt("seed", 42)));
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  auto city = synth::BuildCity(spec.value());
  if (!city.ok()) {
    std::fprintf(stderr, "%s\n", city.status().ToString().c_str());
    return 1;
  }
  std::string out = args.Get("out", "");
  if (auto st = synth::SaveCityCsv(city.value(), out); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (auto st = gtfs::WriteFeedCsv(city.value().feed, CliProjection(), out);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu zones, %zu stops, %zu trips, %zu pois\n",
              out.c_str(), city.value().zones.size(),
              city.value().feed.num_stops(), city.value().feed.num_trips(),
              city.value().pois.size());
  return 0;
}

int RunInfo(const Args& args) {
  if (!CheckFlags(args, "info", {"city-dir", "synth", "scale", "seed"})) {
    return UsageFor("info", kInfoUsage);
  }
  auto city = LoadOrSynth(args);
  if (!city.ok()) {
    std::fprintf(stderr, "%s\n", city.status().ToString().c_str());
    return 1;
  }
  const synth::City& c = city.value();
  std::printf("zones        : %zu\n", c.zones.size());
  std::printf("population   : %.0f\n", c.TotalPopulation());
  std::printf("road nodes   : %zu (%zu arcs)\n", c.road.num_nodes(),
              c.road.num_arcs());
  std::printf("stops        : %zu\n", c.feed.num_stops());
  std::printf("routes       : %zu\n", c.feed.num_routes());
  std::printf("trips        : %zu\n", c.feed.num_trips());
  for (int cat = 0; cat < synth::kNumPoiCategories; ++cat) {
    auto category = static_cast<synth::PoiCategory>(cat);
    std::printf("%-13s: %zu\n", synth::PoiCategoryName(category),
                c.PoisOf(category).size());
  }
  return 0;
}

int RunQuery(const Args& args) {
  if (!CheckFlags(args, "query",
                  {"city-dir", "synth", "scale", "seed", "poi", "interval",
                   "beta", "model", "cost", "exact", "threads", "zones-out",
                   "geojson", "report", "batch", "batch-seeds"})) {
    return UsageFor("query", kQueryUsage);
  }
  auto city = LoadOrSynth(args);
  if (!city.ok()) {
    std::fprintf(stderr, "%s\n", city.status().ToString().c_str());
    return 1;
  }
  auto category = CategoryFor(args.Get("poi", "school"));
  auto interval = IntervalFor(args.Get("interval", "am"));
  auto model = ModelFor(args.Get("model", "MLP"));
  if (!category.ok() || !interval.ok() || !model.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!category.ok()   ? category.status()
                  : !interval.ok() ? interval.status()
                                   : model.status())
                     .ToString()
                     .c_str());
    return 1;
  }

  core::AccessQueryEngine engine(std::move(city).value(), interval.value());
  core::AccessQueryOptions options;
  options.exact = args.Has("exact");
  options.beta = args.GetDouble("beta", 0.05);
  options.model = model.value();
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  std::string cost = args.Get("cost", "jt");
  if (cost == "gac") {
    options.cost = core::CostKind::kGeneralizedCost;
  } else if (cost != "jt") {
    std::fprintf(stderr, "unknown cost: %s\n", cost.c_str());
    return 1;
  }

  if (args.Has("batch")) {
    // One columnar labeling pass per seed answers the whole jt+gac sweep
    // (journeys do not depend on the cost definition); the per-row SPQ
    // column shows the shared pass every single query would pay in full.
    if (!options.exact) {
      std::fprintf(stderr,
                   "query --batch requires --exact: SSR members train "
                   "per-member models and share no labeling pass\n");
      return 1;
    }
    if (args.Has("zones-out") || args.Has("geojson") || args.Has("report")) {
      std::fprintf(stderr,
                   "query --batch: --zones-out/--geojson/--report export a "
                   "single result; drop --batch to use them\n");
      return 1;
    }
    int batch_seeds = args.GetInt("batch-seeds", 2);
    if (batch_seeds < 1) batch_seeds = 1;
    core::VectorQuerySpec spec;
    for (int i = 0; i < batch_seeds; ++i) {
      spec.seeds.push_back(options.seed + static_cast<uint64_t>(i));
    }
    spec.cost_members.push_back({core::CostKind::kJourneyTime, {}});
    spec.cost_members.push_back(
        {core::CostKind::kGeneralizedCost, options.gac});
    auto batch = engine.QueryVector(category.value(), options, spec);
    if (!batch.ok()) {
      std::fprintf(stderr, "%s\n", batch.status().ToString().c_str());
      return 1;
    }
    std::printf("poi=%s interval=%s (exact batch: %d seed%s x jt,gac)\n",
                synth::PoiCategoryName(category.value()),
                interval.value().label.c_str(), batch_seeds,
                batch_seeds == 1 ? "" : "s");
    std::printf("%-6s %-5s %10s %10s %8s %10s\n", "seed", "cost", "MAC(min)",
                "ACSD(min)", "Jain", "SPQs");
    size_t i = 0;
    for (uint64_t seed : spec.seeds) {
      for (const core::CostMember& member : spec.cost_members) {
        const core::AccessQueryResult& row = batch.value()[i++];
        std::printf("%-6llu %-5s %10.1f %10.1f %8.3f %10llu\n",
                    static_cast<unsigned long long>(seed),
                    member.cost == core::CostKind::kJourneyTime ? "jt" : "gac",
                    row.mean_mac / 60, row.mean_acsd / 60, row.fairness,
                    static_cast<unsigned long long>(row.spqs));
      }
    }
    return 0;
  }

  auto result = engine.Query(category.value(), options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const core::AccessQueryResult& r = result.value();
  std::printf("poi=%s interval=%s cost=%s %s\n",
              synth::PoiCategoryName(category.value()),
              interval.value().label.c_str(), cost.c_str(),
              options.exact
                  ? "(exact)"
                  : util::Format("(SSR beta=%.0f%% model=%s)",
                                 options.beta * 100,
                                 ml::ModelKindName(options.model))
                        .c_str());
  std::printf("mean MAC          : %.1f min\n", r.mean_mac / 60);
  std::printf("mean ACSD         : %.1f min\n", r.mean_acsd / 60);
  std::printf("fairness (Jain)   : %.3f\n", r.fairness);
  std::printf("pop fairness      : %.3f\n", r.population_fairness);
  std::printf("vulnerable        : %.3f\n", r.vulnerable_fairness);
  std::printf("SPQs / M_g trips  : %llu / %llu\n",
              static_cast<unsigned long long>(r.spqs),
              static_cast<unsigned long long>(r.gravity_trips));
  std::printf("answered in       : %.2f s\n", r.elapsed_s);

  if (args.Has("geojson")) {
    std::string path = args.Get("geojson", "access.geojson");
    auto pois = engine.city().PoisOf(category.value());
    if (auto st = core::ExportAccessGeoJson(engine.city(), CliProjection(),
                                            r, pois, path);
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("GeoJSON           : %s\n", path.c_str());
  }

  if (args.Has("report")) {
    std::string path = args.Get("report", "access_report.md");
    std::string title = util::Format(
        "Access to %s (%s)", synth::PoiCategoryName(category.value()),
        interval.value().label.c_str());
    if (auto st = core::WriteAccessReport(engine.city(), r, title, path);
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("report            : %s\n", path.c_str());
  }

  if (args.Has("zones-out")) {
    util::CsvTable table({"zone", "mac_s", "acsd_s", "class"});
    for (size_t z = 0; z < r.mac.size(); ++z) {
      (void)table.AddRow(
          {util::CsvTable::Num(static_cast<int64_t>(z)),
           util::CsvTable::Num(r.mac[z], 1), util::CsvTable::Num(r.acsd[z], 1),
           core::AccessClassName(static_cast<core::AccessClass>(r.classes[z]))});
    }
    std::string path = args.Get("zones-out", "zones_out.csv");
    if (auto st = table.WriteFile(path); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("per-zone CSV      : %s\n", path.c_str());
  }
  return 0;
}

int RunSnapshotSave(const Args& args) {
  if (!CheckFlags(args, "snapshot save",
                  {"city-dir", "synth", "scale", "seed", "interval", "poi",
                   "cost", "label-seed", "out"})) {
    return UsageFor("snapshot save", kSnapshotUsage);
  }
  if (!args.Has("out")) {
    std::fprintf(stderr, "snapshot save: --out FILE is required\n");
    return UsageFor("snapshot save", kSnapshotUsage);
  }
  auto city = LoadOrSynth(args);
  auto interval = IntervalFor(args.Get("interval", "am"));
  if (!city.ok() || !interval.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!city.ok() ? city.status() : interval.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  serve::ScenarioStore store(std::move(city).value(), interval.value());

  // Optionally materialise one exact label state so the snapshot carries a
  // warm labeling (the expensive part a warm start wants to skip).
  if (args.Has("poi")) {
    auto category = CategoryFor(args.Get("poi", "school"));
    if (!category.ok()) {
      std::fprintf(stderr, "%s\n", category.status().ToString().c_str());
      return 1;
    }
    serve::LabelKey key;
    key.category = category.value();
    key.seed = static_cast<uint64_t>(args.GetInt("label-seed", 1));
    std::string cost = args.Get("cost", "jt");
    if (cost == "gac") {
      key.cost = core::CostKind::kGeneralizedCost;
    } else if (cost != "jt") {
      std::fprintf(stderr, "unknown cost: %s\n", cost.c_str());
      return 1;
    }
    router::Router router(&store.base_city().feed, {});
    core::LabelingEngine engine(&store.base_city(), &router);
    store.Acquire()->GetOrBuildLabelState(key, &engine);
  }

  std::string out = args.Get("out", "");
  if (auto st = store.ExportSnapshot(out); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto info = store::InspectSnapshot(out);
  if (!info.ok()) {
    std::fprintf(stderr, "wrote %s but it does not read back: %s\n",
                 out.c_str(), info.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %llu bytes, %zu sections, %llu label states\n",
              out.c_str(),
              static_cast<unsigned long long>(info.value().file_size),
              info.value().sections.size(),
              static_cast<unsigned long long>(info.value().num_label_states));
  return 0;
}

int RunSnapshotLoad(const Args& args) {
  if (!CheckFlags(args, "snapshot load", {"in", "buffered"})) {
    return UsageFor("snapshot load", kSnapshotUsage);
  }
  if (!args.Has("in")) {
    std::fprintf(stderr, "snapshot load: --in FILE is required\n");
    return UsageFor("snapshot load", kSnapshotUsage);
  }
  store::Reader::Options options;
  if (args.Has("buffered")) options.mode = store::Reader::Mode::kBuffered;
  auto restored = store::LoadSnapshot(args.Get("in", ""), options);
  if (!restored.ok()) {
    std::fprintf(stderr, "%s\n", restored.status().ToString().c_str());
    return 1;
  }
  // Stand the serving state up for real — the point of `load` is proving
  // the file warm-starts, not just that it parses.
  uint64_t source_epoch = restored.value().source_epoch;
  serve::ScenarioStore store(std::move(restored).value());
  auto scenario = store.Acquire();
  std::printf("loaded %s (%s)\n", args.Get("in", "").c_str(),
              args.Has("buffered") ? "buffered" : "mmap");
  std::printf("city          : %s\n",
              scenario->base_city().spec.name.c_str());
  std::printf("zones         : %zu\n", scenario->base_city().zones.size());
  std::printf("interval      : %s\n", scenario->interval().label.c_str());
  std::printf("POIs          : %zu\n", scenario->pois().size());
  std::printf("label states  : %zu\n", scenario->MaterializedStates().size());
  std::printf("source epoch  : %llu (republished as 0)\n",
              static_cast<unsigned long long>(source_epoch));
  return 0;
}

int RunSnapshotInspect(const Args& args) {
  if (!CheckFlags(args, "snapshot inspect", {"in"})) {
    return UsageFor("snapshot inspect", kSnapshotUsage);
  }
  if (!args.Has("in")) {
    std::fprintf(stderr, "snapshot inspect: --in FILE is required\n");
    return UsageFor("snapshot inspect", kSnapshotUsage);
  }
  auto info = store::InspectSnapshot(args.Get("in", ""));
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }
  const store::SnapshotInfo& i = info.value();
  std::printf("format        : v%u, %llu bytes\n", i.format_version,
              static_cast<unsigned long long>(i.file_size));
  std::printf("city          : %s (epoch %llu, next POI id %u)\n",
              i.city_name.c_str(),
              static_cast<unsigned long long>(i.source_epoch), i.next_poi_id);
  std::printf("interval      : %s\n", i.interval_label.c_str());
  std::printf("zones/POIs    : %llu / %llu\n",
              static_cast<unsigned long long>(i.num_zones),
              static_cast<unsigned long long>(i.num_pois));
  std::printf("feed          : %llu stops, %llu trips, %llu stop_times\n",
              static_cast<unsigned long long>(i.num_stops),
              static_cast<unsigned long long>(i.num_trips),
              static_cast<unsigned long long>(i.num_stop_times));
  std::printf("label states  : %llu\n",
              static_cast<unsigned long long>(i.num_label_states));
  std::printf("%-20s %-8s %10s %10s %8s\n", "section", "encoding", "bytes",
              "elements", "blocks");
  for (const store::SectionEntry& s : i.sections) {
    std::printf("%-20s %-8s %10llu %10llu %8zu\n", s.name.c_str(),
                store::SectionEncodingName(s.encoding),
                static_cast<unsigned long long>(s.size),
                static_cast<unsigned long long>(s.element_count),
                s.block_checksums.size());
  }
  return 0;
}

int RunSnapshotVerify(const Args& args) {
  if (!CheckFlags(args, "snapshot verify", {"in"})) {
    return UsageFor("snapshot verify", kSnapshotUsage);
  }
  if (!args.Has("in")) {
    std::fprintf(stderr, "snapshot verify: --in FILE is required\n");
    return UsageFor("snapshot verify", kSnapshotUsage);
  }
  std::string path = args.Get("in", "");
  if (auto st = store::VerifySnapshot(path); !st.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
    return 1;
  }
  std::printf("%s: OK (all block checksums verified)\n", path.c_str());
  return 0;
}

int RunSnapshot(int argc, char** argv, const Args& args) {
  if (argc < 3) return UsageFor("snapshot", kSnapshotUsage);
  std::string verb = argv[2];
  if (!CheckCommand("snapshot", verb, {"save", "load", "inspect", "verify"})) {
    return UsageFor("snapshot", kSnapshotUsage);
  }
  if (verb == "save") return RunSnapshotSave(args);
  if (verb == "load") return RunSnapshotLoad(args);
  if (verb == "inspect") return RunSnapshotInspect(args);
  return RunSnapshotVerify(args);
}

int RunWalInspect(const Args& args) {
  if (!CheckFlags(args, "wal inspect", {"dir", "records"})) {
    return UsageFor("wal inspect", kWalUsage);
  }
  if (!args.Has("dir")) {
    std::fprintf(stderr, "wal inspect: --dir DIR is required\n");
    return UsageFor("wal inspect", kWalUsage);
  }
  std::string dir = args.Get("dir", "");
  auto contents = wal::ReadLog(dir);
  if (!contents.ok()) {
    std::fprintf(stderr, "%s: %s\n", dir.c_str(),
                 contents.status().ToString().c_str());
    return 1;
  }
  const wal::WalContents& log = contents.value();
  std::printf("segments      : %zu\n", log.segments.size());
  std::printf("records       : %zu\n", log.records.size());
  if (!log.records.empty()) {
    std::printf("sequences     : %llu .. %llu\n",
                static_cast<unsigned long long>(log.records.front().sequence),
                static_cast<unsigned long long>(log.records.back().sequence));
  }
  std::printf("%-32s %20s %10s %12s\n", "segment", "start_seq", "records",
              "bytes");
  for (const wal::WalSegmentInfo& s : log.segments) {
    std::printf("%-32s %20llu %10llu %12llu\n", s.path.c_str(),
                static_cast<unsigned long long>(s.start_sequence),
                static_cast<unsigned long long>(s.records),
                static_cast<unsigned long long>(s.bytes));
  }
  if (log.torn_tail) {
    std::printf("torn tail     : %s at byte %llu (Open() will truncate)\n",
                log.torn_path.c_str(),
                static_cast<unsigned long long>(log.torn_offset));
  }
  if (args.Has("records")) {
    for (const wal::MutationRecord& record : log.records) {
      std::printf("%s\n", record.ToString().c_str());
    }
  }
  return 0;
}

int RunWalVerify(const Args& args) {
  if (!CheckFlags(args, "wal verify", {"dir"})) {
    return UsageFor("wal verify", kWalUsage);
  }
  if (!args.Has("dir")) {
    std::fprintf(stderr, "wal verify: --dir DIR is required\n");
    return UsageFor("wal verify", kWalUsage);
  }
  std::string dir = args.Get("dir", "");
  if (auto st = wal::VerifyLog(dir); !st.ok()) {
    std::fprintf(stderr, "%s: %s\n", dir.c_str(), st.ToString().c_str());
    return 1;
  }
  std::printf("%s: OK (checksums valid, sequence chain gap-free)\n",
              dir.c_str());
  return 0;
}

int RunWal(int argc, char** argv, const Args& args) {
  if (argc < 3) return UsageFor("wal", kWalUsage);
  std::string verb = argv[2];
  if (!CheckCommand("wal", verb, {"inspect", "verify"})) {
    return UsageFor("wal", kWalUsage);
  }
  if (verb == "inspect") return RunWalInspect(args);
  return RunWalVerify(args);
}

util::Result<std::string> ReadTextFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return util::Status::IoError("cannot open: " + path);
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return text;
}

bool WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "short write: %s\n", path.c_str());
  return ok;
}

std::string BaselinePath(const std::string& dir, const std::string& bench) {
  return dir + "/BENCH_" + bench + ".json";
}

int RunBenchList(const Args& args) {
  if (!CheckFlags(args, "bench list", {"baselines"})) {
    return UsageFor("bench list", kBenchUsage);
  }
  std::string dir = args.Get("baselines", "bench/baselines");
  // Policy coverage is advisory here: an unreadable policy file just means
  // every bench shows "-" in the rules column.
  std::map<std::string, size_t> rule_counts;
  if (auto policy = exp::TolerancePolicy::Load(dir + "/policy.rules");
      policy.ok()) {
    for (const exp::BenchPolicy& b : policy.value().benches()) {
      rule_counts[b.bench] = b.rules.size();
    }
  }
  std::printf("%-10s %-6s %-9s %-6s %s\n", "bench", "kind", "baseline",
              "rules", "title");
  for (const bench::BenchInfo& info : bench::BenchTable()) {
    std::error_code ec;
    bool has_baseline =
        std::filesystem::exists(BaselinePath(dir, info.name), ec);
    auto it = rule_counts.find(info.name);
    std::string rules =
        it == rule_counts.end() ? "-" : std::to_string(it->second);
    std::printf("%-10s %-6s %-9s %-6s %s\n", info.name, info.kind,
                has_baseline ? "yes" : "-", rules.c_str(), info.title);
  }
  return 0;
}

int RunBenchRun(const Args& args) {
  if (!CheckFlags(args, "bench run",
                  {"config", "out", "state", "no-resume", "max-executed",
                   "quiet"})) {
    return UsageFor("bench run", kBenchUsage);
  }
  if (!args.Has("config") || !args.Has("out")) {
    std::fprintf(stderr, "bench run: --config FILE and --out DIR are "
                         "required\n");
    return UsageFor("bench run", kBenchUsage);
  }
  auto config = exp::ExperimentConfig::Load(args.Get("config", ""));
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  std::string out = args.Get("out", "");
  std::error_code ec;
  std::filesystem::create_directories(out, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out.c_str(),
                 ec.message().c_str());
    return 1;
  }
  // Benches write their BENCH_<name>.json into STAQ_BENCH_OUT; pointing it
  // at the run directory is what makes the output diffable.
  ::setenv("STAQ_BENCH_OUT", out.c_str(), 1);

  exp::RunnerOptions options;
  options.state_dir = args.Get("state", out + "/state");
  options.resume = !args.Has("no-resume");
  options.max_executed =
      static_cast<size_t>(std::max(0, args.GetInt("max-executed", 0)));
  options.verbose = !args.Has("quiet");

  auto report = exp::RunSweep(config.value(), bench::MakeBenchRegistry(),
                              options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  const exp::SweepReport& r = report.value();
  std::printf("sweep %016llx: %zu cells (%zu executed, %zu cached, "
              "%zu failed)\n",
              static_cast<unsigned long long>(
                  exp::ConfigHash(config.value())),
              r.outcomes.size(), r.executed, r.cached, r.failures);
  if (!r.complete) {
    std::printf("interrupted after %zu executed cells; re-run with the same "
                "--state to resume\n", r.executed);
    return 3;
  }
  if (!WriteTextFile(out + "/sweep.json", r.final_json)) return 1;
  if (!WriteTextFile(out + "/tables.txt", r.tables)) return 1;
  if (!args.Has("quiet")) std::printf("%s", r.tables.c_str());
  std::printf("wrote %s/sweep.json and %s/tables.txt\n", out.c_str(),
              out.c_str());
  return r.failures == 0 ? 0 : 1;
}

int RunBenchDiff(const Args& args) {
  if (!CheckFlags(args, "bench diff",
                  {"run", "baselines", "policy", "relax-perf"})) {
    return UsageFor("bench diff", kBenchUsage);
  }
  if (!args.Has("run")) {
    std::fprintf(stderr, "bench diff: --run DIR is required\n");
    return UsageFor("bench diff", kBenchUsage);
  }
  std::string run_dir = args.Get("run", "");
  std::string baselines = args.Get("baselines", "bench/baselines");
  std::string policy_path = args.Get("policy", baselines + "/policy.rules");
  auto policy = exp::TolerancePolicy::Load(policy_path);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 1;
  }
  exp::DiffOptions options;
  options.relax_perf = args.Has("relax-perf");

  size_t passed = 0, failed = 0, skipped = 0;
  bool ok = true;
  for (const exp::BenchPolicy& bench_policy : policy.value().benches()) {
    const std::string& name = bench_policy.bench;
    std::printf("== bench %s ==\n", name.c_str());
    auto LoadDoc = [&](const std::string& path, const char* what)
        -> util::Result<exp::JsonDoc> {
      auto text = ReadTextFile(path);
      if (!text.ok()) {
        return util::Status::IoError(std::string(what) + " document missing: " +
                                     text.status().message());
      }
      auto doc = exp::JsonDoc::Parse(text.value());
      if (!doc.ok()) {
        return util::Status::InvalidArgument(path + ": " +
                                             doc.status().message());
      }
      return doc;
    };
    auto run_doc = LoadDoc(BaselinePath(run_dir, name), "run");
    auto base_doc = LoadDoc(BaselinePath(baselines, name), "baseline");
    if (!run_doc.ok() || !base_doc.ok()) {
      std::fprintf(stderr, "  FAIL %s\n",
                   (!run_doc.ok() ? run_doc.status() : base_doc.status())
                       .ToString()
                       .c_str());
      ok = false;
      ++failed;
      continue;
    }
    exp::DiffReport report = exp::DiffDocuments(
        run_doc.value(), base_doc.value(), bench_policy, options);
    std::printf("%s", report.ToString().c_str());
    passed += report.passed;
    failed += report.failed;
    skipped += report.skipped;
    if (!report.ok()) ok = false;
  }

  // Baselines nobody polices are stale weight in the tree — flag them (not
  // fatally; deleting a policy block mid-investigation is legitimate).
  std::error_code ec;
  std::filesystem::directory_iterator it(baselines, ec);
  if (!ec) {
    for (const auto& entry : it) {
      std::string file = entry.path().filename().string();
      if (file.rfind("BENCH_", 0) != 0 || file.size() <= 11 ||
          file.substr(file.size() - 5) != ".json") {
        continue;
      }
      std::string name = file.substr(6, file.size() - 11);
      if (policy.value().Find(name) == nullptr) {
        std::printf("note: baseline %s has no policy block\n", file.c_str());
      }
    }
  }

  std::printf("%s: %zu passed, %zu failed, %zu skipped\n",
              ok ? "PASS" : "FAIL", passed, failed, skipped);
  return ok ? 0 : 1;
}

int RunScenarioList(const Args& args) {
  if (!CheckFlags(args, "scenario list", {"pack"})) {
    return UsageFor("scenario list", kScenarioUsage);
  }
  if (!args.Has("pack")) {
    std::fprintf(stderr, "scenario list: --pack FILE is required\n");
    return UsageFor("scenario list", kScenarioUsage);
  }
  auto pack = scenario::ScenarioPack::Load(args.Get("pack", ""));
  if (!pack.ok()) {
    std::fprintf(stderr, "%s\n", pack.status().ToString().c_str());
    return 1;
  }
  std::printf("%-24s %s\n", "scenario", "disruptions");
  for (const scenario::PackScenario& s : pack.value().scenarios) {
    std::string specs;
    for (const scenario::Disruption& d : s.disruptions) {
      if (!specs.empty()) specs += ", ";
      specs += d.spec;
    }
    std::printf("%-24s %s\n", s.name.c_str(), specs.c_str());
  }
  return 0;
}

int RunScenarioRun(const Args& args) {
  if (!CheckFlags(args, "scenario run",
                  {"pack", "city-dir", "synth", "scale", "seed", "name",
                   "poi", "interval", "cost", "threads", "out"})) {
    return UsageFor("scenario run", kScenarioUsage);
  }
  if (!args.Has("pack")) {
    std::fprintf(stderr, "scenario run: --pack FILE is required\n");
    return UsageFor("scenario run", kScenarioUsage);
  }
  auto pack = scenario::ScenarioPack::Load(args.Get("pack", ""));
  auto category = CategoryFor(args.Get("poi", "school"));
  auto interval = IntervalFor(args.Get("interval", "am"));
  if (!pack.ok() || !category.ok() || !interval.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!pack.ok()       ? pack.status()
                  : !category.ok() ? category.status()
                                   : interval.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  // --name restricts the run to one scenario of the pack.
  scenario::ScenarioPack selected = std::move(pack).value();
  if (args.Has("name")) {
    const scenario::PackScenario* found =
        selected.Find(args.Get("name", ""));
    if (found == nullptr) {
      std::fprintf(stderr, "scenario run: no scenario '%s' in pack\n",
                   args.Get("name", "").c_str());
      return 1;
    }
    selected.scenarios = {*found};
  }

  scenario::RunOptions options;
  options.interval = interval.value();
  options.category = category.value();
  options.server.num_threads =
      static_cast<size_t>(std::max(0, args.GetInt("threads", 1)));
  std::string cost = args.Get("cost", "jt");
  if (cost == "gac") {
    options.cost = core::CostKind::kGeneralizedCost;
  } else if (cost != "jt") {
    std::fprintf(stderr, "unknown cost: %s\n", cost.c_str());
    return 1;
  }

  auto reports = scenario::RunPack([&args] { return LoadOrSynth(args); },
                                   selected, options);
  if (!reports.ok()) {
    std::fprintf(stderr, "%s\n", reports.status().ToString().c_str());
    return 1;
  }
  for (const scenario::EquityReport& report : reports.value()) {
    std::printf("%s", scenario::FormatEquityReport(report).c_str());
  }
  if (args.Has("out")) {
    std::string out = args.Get("out", "");
    if (auto st = scenario::WriteReports(reports.value(), out); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu reports to %s\n", reports.value().size(),
                out.c_str());
  }
  return 0;
}

int RunScenarioReport(const Args& args) {
  if (!CheckFlags(args, "scenario report", {"in"})) {
    return UsageFor("scenario report", kScenarioUsage);
  }
  if (!args.Has("in")) {
    std::fprintf(stderr, "scenario report: --in FILE is required\n");
    return UsageFor("scenario report", kScenarioUsage);
  }
  auto text = ReadTextFile(args.Get("in", ""));
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  auto report = scenario::ParseEquityReportJson(text.value());
  if (!report.ok()) {
    std::fprintf(stderr, "%s: %s\n", args.Get("in", "").c_str(),
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", scenario::FormatEquityReport(report.value()).c_str());
  return 0;
}

int RunScenario(int argc, char** argv, const Args& args) {
  if (argc < 3) return UsageFor("scenario", kScenarioUsage);
  std::string verb = argv[2];
  if (!CheckCommand("scenario", verb, {"list", "run", "report"})) {
    return UsageFor("scenario", kScenarioUsage);
  }
  if (verb == "list") return RunScenarioList(args);
  if (verb == "run") return RunScenarioRun(args);
  return RunScenarioReport(args);
}

int RunBench(int argc, char** argv, const Args& args) {
  if (argc < 3) return UsageFor("bench", kBenchUsage);
  std::string verb = argv[2];
  if (!CheckCommand("bench", verb, {"list", "run", "diff"})) {
    return UsageFor("bench", kBenchUsage);
  }
  if (verb == "list") return RunBenchList(args);
  if (verb == "run") return RunBenchRun(args);
  return RunBenchDiff(args);
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  if (!CheckCommand("", command, {"synth", "info", "query", "snapshot",
                                  "wal", "bench", "scenario"})) {
    return Usage();
  }
  Args args(argc, argv);
  if (command == "synth") return RunSynth(args);
  if (command == "info") return RunInfo(args);
  if (command == "query") return RunQuery(args);
  if (command == "snapshot") return RunSnapshot(argc, argv, args);
  if (command == "wal") return RunWal(argc, argv, args);
  if (command == "scenario") return RunScenario(argc, argv, args);
  return RunBench(argc, argv, args);
}

}  // namespace
}  // namespace staq

int main(int argc, char** argv) { return staq::Main(argc, argv); }
