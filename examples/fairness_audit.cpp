// Fairness audit — the paper's question 4 (§I): "are the accessibility
// benefits provided by the transit system fairly distributed between, and
// within, key demographic groups?"
//
// Audits access to each POI category across multiple time intervals,
// reporting the Jain fairness index (plain, population-weighted, and
// vulnerability-weighted) plus the gap between the most- and
// least-deprived halves of the city.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/access_query.h"
#include "scenario/report.h"
#include "synth/city_builder.h"

using namespace staq;

namespace {

/// Mean MAC over zones selected by a predicate.
template <typename Pred>
double GroupMean(const synth::City& city, const std::vector<double>& mac,
                 Pred pred) {
  double weighted = 0, weight = 0;
  for (const synth::Zone& z : city.zones) {
    if (!pred(z)) continue;
    weighted += z.population * mac[z.id];
    weight += z.population;
  }
  return weight > 0 ? weighted / weight : 0.0;
}

}  // namespace

int main() {
  auto built = synth::BuildCity(synth::CitySpec::Covely(0.15, 13));
  if (!built.ok()) return 1;
  core::AccessQueryEngine engine(std::move(built).value(),
                                 gtfs::WeekdayAmPeak());
  const synth::City& city = engine.city();

  // Median vulnerability splits the city into "more deprived" / "less
  // deprived" halves for the between-group gap.
  std::vector<double> vuln;
  for (const synth::Zone& z : city.zones) vuln.push_back(z.vulnerability);
  std::nth_element(vuln.begin(), vuln.begin() + vuln.size() / 2, vuln.end());
  double median_vuln = vuln[vuln.size() / 2];

  core::AccessQueryOptions options;
  options.beta = 0.15;
  options.model = ml::ModelKind::kMlp;
  options.cost = core::CostKind::kGeneralizedCost;
  options.gravity.sample_rate_per_hour = 8;

  std::vector<gtfs::TimeInterval> intervals{
      gtfs::WeekdayAmPeak(), gtfs::WeekdayOffPeak(), gtfs::SundayMorning()};

  for (const gtfs::TimeInterval& interval : intervals) {
    engine.SetInterval(interval);
    std::printf("\n=== interval: %s ===\n", interval.label.c_str());
    std::printf("%-11s %9s %9s %9s %9s %14s\n", "poi", "jain", "pop-jain",
                "vuln-jain", "gap(min)", "mean MAC(min)");

    for (synth::PoiCategory category :
         {synth::PoiCategory::kSchool, synth::PoiCategory::kHospital,
          synth::PoiCategory::kVaxCenter, synth::PoiCategory::kJobCenter}) {
      auto result = engine.Query(category, options);
      if (!result.ok()) {
        std::printf("%-11s query failed: %s\n",
                    synth::PoiCategoryName(category),
                    result.status().ToString().c_str());
        continue;
      }
      const core::AccessQueryResult& r = result.value();
      double deprived = GroupMean(city, r.mac, [&](const synth::Zone& z) {
        return z.vulnerability >= median_vuln;
      });
      double affluent = GroupMean(city, r.mac, [&](const synth::Zone& z) {
        return z.vulnerability < median_vuln;
      });
      std::printf("%-11s %9.3f %9.3f %9.3f %+9.1f %14.1f\n",
                  synth::PoiCategoryName(category), r.fairness,
                  r.population_fairness, r.vulnerable_fairness,
                  (deprived - affluent) / 60, r.mean_mac / 60);
    }
  }

  std::printf(
      "\nReading: Jain index near 1 = evenly distributed access; a positive"
      " gap means\nthe more-deprived half of the city pays more to reach the"
      " service. Off-peak and\nSunday rows show how fairness erodes when "
      "service thins out.\n");

  // The same peak-vs-Sunday question as a full equity report: exact
  // queries on both sides through the scenario formatter — per-zone MAC
  // deltas, class migration, the worst-hit zone — the identical rendering
  // `staq_cli scenario run` produces for disruption packs.
  core::AccessQueryOptions exact = options;
  exact.exact = true;
  engine.SetInterval(gtfs::WeekdayAmPeak());
  auto peak = engine.Query(synth::PoiCategory::kSchool, exact);
  engine.SetInterval(gtfs::SundayMorning());
  auto sunday = engine.Query(synth::PoiCategory::kSchool, exact);
  if (peak.ok() && sunday.ok()) {
    scenario::EquityReport report = scenario::CompareAccess(
        "sunday_service", "covely", city.zones, peak.value(), sunday.value());
    std::printf("\n%s", scenario::FormatEquityReport(report).c_str());
  }
  return 0;
}
