// Temporal accessibility profile — the paper's questions 1 and 3 (§I):
// how does access vary over the day and week, and does the varying transit
// schedule "restrict or prevent access at particular times"?
//
// Compares access to hospitals across four time intervals, reports the
// per-zone temporal spread (the quantity ACSD summarises within one
// interval, here measured *between* intervals), and lists the zones whose
// access collapses outside the AM peak — temporal access deserts.
#include <algorithm>
#include <cstdio>

#include "core/temporal.h"
#include "synth/city_builder.h"

using namespace staq;

int main() {
  auto built = synth::BuildCity(synth::CitySpec::Covely(0.15, 23));
  if (!built.ok()) return 1;
  core::AccessQueryEngine engine(std::move(built).value(),
                                 gtfs::WeekdayAmPeak());

  core::AccessQueryOptions options;
  options.beta = 0.15;
  options.model = ml::ModelKind::kMlp;
  options.gravity.sample_rate_per_hour = 8;

  std::vector<gtfs::TimeInterval> intervals{
      gtfs::WeekdayAmPeak(), gtfs::WeekdayOffPeak(), gtfs::WeekdayPmPeak(),
      gtfs::SundayMorning()};

  auto comparison = core::CompareIntervals(
      &engine, synth::PoiCategory::kHospital, options, intervals);
  if (!comparison.ok()) {
    std::fprintf(stderr, "%s\n", comparison.status().ToString().c_str());
    return 1;
  }
  const auto& results = comparison.value();

  std::printf("access to hospitals across the schedule:\n");
  std::printf("%-18s %14s %12s %10s\n", "interval", "mean MAC (min)",
              "mean ACSD", "fairness");
  for (const core::IntervalResult& r : results) {
    std::printf("%-18s %14.1f %12.1f %10.3f\n", r.interval.label.c_str(),
                r.result.mean_mac / 60, r.result.mean_acsd / 60,
                r.result.fairness);
  }

  // Per-zone spread between intervals.
  auto spread = core::TemporalSpread(results);
  double mean_spread = 0, max_spread = 0;
  uint32_t most_volatile = 0;
  for (uint32_t z = 0; z < spread.size(); ++z) {
    mean_spread += spread[z];
    if (spread[z] > max_spread) {
      max_spread = spread[z];
      most_volatile = z;
    }
  }
  mean_spread /= static_cast<double>(spread.size());
  std::printf("\ntemporal spread (max - min MAC across intervals):\n");
  std::printf("  mean over zones : %.1f min\n", mean_spread / 60);
  std::printf("  most volatile   : zone %u, %.1f min swing\n", most_volatile,
              max_spread / 60);

  // Temporal access deserts: zones that are fine in the AM peak but lose
  // >50% of their access quality at some other time.
  auto deserts = core::TemporalAccessDeserts(results, /*factor=*/1.5);
  std::printf("\ntemporal access deserts (MAC worsens >1.5x vs AM peak): %zu"
              " of %zu zones\n", deserts.size(), spread.size());
  for (size_t i = 0; i < std::min<size_t>(deserts.size(), 5); ++i) {
    uint32_t z = deserts[i];
    std::printf("  zone %4u: ", z);
    for (const core::IntervalResult& r : results) {
      std::printf(" %s=%.0fmin", r.interval.label.c_str(),
                  r.result.mac[z] / 60);
    }
    std::printf("\n");
  }

  std::printf(
      "\nEach interval re-runs the offline phase (hop trees are interval-"
      "specific) and\na fresh SSR pass — the dynamic-AQ workload the paper "
      "targets.\n");
  return 0;
}
