// GTFS interchange — running the pipeline on feeds from disk.
//
// The paper's evaluation uses the published TfWM GTFS feed. This example
// shows the equivalent workflow with staq: a timetable is written to the
// standard GTFS text files, loaded back as if it were a downloaded feed,
// and the loaded feed drives the router — with a consistency check that
// journeys through the round-tripped feed match the original.
//
// To use a real feed: unzip it to a directory and call ReadFeedCsv with a
// LocalProjection centred on the network.
#include <cstdio>
#include <filesystem>

#include "gtfs/gtfs_csv.h"
#include "router/router.h"
#include "synth/city_builder.h"
#include "util/rng.h"

using namespace staq;

int main() {
  // A synthetic city stands in for "the agency's network".
  auto built = synth::BuildCity(synth::CitySpec::Covely(0.1, 29));
  if (!built.ok()) return 1;
  synth::City city = std::move(built).value();
  std::printf("source feed: %zu stops, %zu routes, %zu trips, %zu calls\n",
              city.feed.num_stops(), city.feed.num_routes(),
              city.feed.num_trips(), city.feed.num_stop_times());

  // Export as GTFS. The projection anchors the network near Coventry.
  geo::LocalProjection projection(geo::LatLon{52.41, -1.51});
  std::string dir =
      (std::filesystem::temp_directory_path() / "staq_gtfs_demo").string();
  if (auto status = gtfs::WriteFeedCsv(city.feed, projection, dir);
      !status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("exported GTFS to %s:\n", dir.c_str());
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::printf("  %-22s %8jd bytes\n",
                entry.path().filename().c_str(),
                static_cast<intmax_t>(entry.file_size()));
  }

  // Import it back — the path a real downloaded feed would take.
  auto loaded = gtfs::ReadFeedCsv(dir, projection);
  if (!loaded.ok()) {
    std::fprintf(stderr, "import failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const gtfs::Feed& feed = loaded.value();
  std::printf("\nimported:    %zu stops, %zu routes, %zu trips, %zu calls\n",
              feed.num_stops(), feed.num_routes(), feed.num_trips(),
              feed.num_stop_times());

  // Route the same random SPQs through both feeds: arrivals must agree to
  // within coordinate round-off (lat/lon is written with 7 decimals).
  router::Router original(&city.feed, router::RouterOptions{});
  router::Router reloaded(&feed, router::RouterOptions{});
  util::Rng rng(3);
  int checked = 0, agreed = 0;
  for (int i = 0; i < 200; ++i) {
    geo::Point o{rng.Uniform(city.extent.min_x, city.extent.max_x),
                 rng.Uniform(city.extent.min_y, city.extent.max_y)};
    geo::Point d{rng.Uniform(city.extent.min_x, city.extent.max_x),
                 rng.Uniform(city.extent.min_y, city.extent.max_y)};
    gtfs::TimeOfDay t =
        gtfs::MakeTime(7, 0) + static_cast<gtfs::TimeOfDay>(rng.UniformU64(7200));
    auto a = original.Route(o, d, gtfs::Day::kTuesday, t);
    auto b = reloaded.Route(o, d, gtfs::Day::kTuesday, t);
    if (!a.feasible && !b.feasible) continue;
    ++checked;
    if (a.feasible == b.feasible && std::abs(a.arrive - b.arrive) <= 2) {
      ++agreed;
    }
  }
  std::printf("\nrouting consistency: %d/%d journeys agree within 2 s\n",
              agreed, checked);

  std::filesystem::remove_all(dir);
  return agreed == checked ? 0 : 1;
}
