// Vaccination-centre siting — the paper's motivating scenario (§I): the
// authors supported Transport for the West Midlands in locating COVID-19
// vaccination sites with a focus on the clinically vulnerable.
//
// This example:
//   1. measures baseline access to vaccination centres,
//   2. identifies the worst-served high-vulnerability zones,
//   3. evaluates candidate sites for ONE new centre by re-running the
//      access query per candidate (a dynamic AQ per candidate — the
//      workload that makes the SSR speed-up matter),
//   4. recommends the candidate that most improves vulnerability-weighted
//      access.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/access_query.h"
#include "synth/city_builder.h"

using namespace staq;

namespace {

/// Vulnerability-weighted mean access cost: the quantity the planning
/// exercise minimises.
double VulnerableMeanAccess(const synth::City& city,
                            const std::vector<double>& mac) {
  double weighted = 0, weight = 0;
  for (const synth::Zone& z : city.zones) {
    double w = z.population * z.vulnerability;
    weighted += w * mac[z.id];
    weight += w;
  }
  return weighted / weight;
}

}  // namespace

int main() {
  auto built = synth::BuildCity(synth::CitySpec::Brindale(0.12, 11));
  if (!built.ok()) return 1;
  core::AccessQueryEngine engine(std::move(built).value(),
                                 gtfs::WeekdayAmPeak());
  const synth::City& city = engine.city();

  core::AccessQueryOptions options;
  options.beta = 0.10;
  options.model = ml::ModelKind::kMlp;
  options.cost = core::CostKind::kGeneralizedCost;  // money + inconvenience
  options.gravity.sample_rate_per_hour = 8;

  // 1. Baseline.
  auto baseline = engine.Query(synth::PoiCategory::kVaxCenter, options);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }
  double baseline_cost = VulnerableMeanAccess(city, baseline.value().mac);
  std::printf("baseline vulnerable-weighted GAC : %.1f generalized minutes\n",
              baseline_cost / 60);
  std::printf("baseline fairness (vulnerable)   : %.3f\n",
              baseline.value().vulnerable_fairness);

  // 2. Worst-served vulnerable zones become candidate sites.
  std::vector<uint32_t> zone_ids(city.zones.size());
  for (uint32_t z = 0; z < zone_ids.size(); ++z) zone_ids[z] = z;
  std::sort(zone_ids.begin(), zone_ids.end(), [&](uint32_t a, uint32_t b) {
    auto need = [&](uint32_t z) {
      return baseline.value().mac[z] * city.zones[z].vulnerability *
             city.zones[z].population;
    };
    return need(a) > need(b);
  });
  std::vector<uint32_t> candidates(zone_ids.begin(), zone_ids.begin() + 4);

  std::printf("\ncandidate sites (worst vulnerability-weighted access):\n");
  for (uint32_t z : candidates) {
    std::printf("  zone %4u  MAC %.1f gen-min  vulnerability %.2f\n", z,
                baseline.value().mac[z] / 60, city.zones[z].vulnerability);
  }

  // 3. Evaluate each candidate with a dynamic AQ: add, query, remove.
  std::printf("\nevaluating candidates...\n");
  uint32_t best_zone = candidates[0];
  double best_cost = baseline_cost;
  for (uint32_t z : candidates) {
    uint32_t poi = engine.AddPoi(synth::PoiCategory::kVaxCenter,
                                 city.zones[z].centroid);
    auto with_site = engine.Query(synth::PoiCategory::kVaxCenter, options);
    (void)engine.RemovePoi(poi);
    if (!with_site.ok()) continue;
    double cost = VulnerableMeanAccess(city, with_site.value().mac);
    std::printf("  site at zone %4u -> %.1f gen-min (%+.1f%%), in %.2f s\n",
                z, cost / 60, 100 * (cost - baseline_cost) / baseline_cost,
                with_site.value().elapsed_s);
    if (cost < best_cost) {
      best_cost = cost;
      best_zone = z;
    }
  }

  // 4. Recommendation.
  std::printf("\nrecommended site: zone %u  (vulnerable-weighted GAC %.1f ->"
              " %.1f gen-min)\n",
              best_zone, baseline_cost / 60, best_cost / 60);
  return 0;
}
