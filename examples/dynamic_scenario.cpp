// Dynamic access queries — the paper's core motivation (§I): policy makers
// "need to operate in a dynamic environment and test new policy scenarios,
// such as optimally locating a new school ... or introducing new bus stops
// to avoid 'access deserts'".
//
// This example drives the scenario-pack subsystem (scenario/runner.h): a
// declarative pack names three disruption scenarios, the runner applies
// each one to a fresh serving instance as incremental timetable mutations,
// and every run comes back as a before/after equity report. The same packs
// run unchanged from the command line:
//
//   staq_cli scenario run --pack scenarios/standard.pack --synth brindale
//
#include <cstdio>

#include "scenario/pack.h"
#include "scenario/runner.h"
#include "synth/city_builder.h"

using namespace staq;

namespace {

// A pack is plain text — normally a checked-in file (see
// scenarios/standard.pack), inlined here so the example is self-contained.
// `busiest` and `all` selectors resolve against whichever feed the pack
// runs on, so the same pack is portable across city families.
constexpr const char* kPackText =
    R"(# What happens to school access when service degrades?
scenario trunk_outage {
  disrupt = suspend_route:busiest
}
scenario snow_day {
  disrupt = scale_walk:0.5, scale_headway:all:2
}
scenario fare_shock {
  disrupt = set_fare:all:4.0
}
)";

}  // namespace

int main() {
  // 1. Parse the pack. Every disruption spec is validated up front: a typo
  //    fails here with the scenario's name attached, not mid-run.
  auto pack = scenario::ScenarioPack::Parse(kPackText);
  if (!pack.ok()) {
    std::printf("pack error: %s\n", pack.status().ToString().c_str());
    return 1;
  }
  std::printf("pack loaded: %zu scenarios\n", pack.value().scenarios.size());

  // 2. The city factory. Each scenario runs against a *fresh* server built
  //    from this factory — what-if branches, not a cumulative history — so
  //    it must be deterministic for reports to be comparable.
  scenario::CityFactory factory = [] {
    return synth::BuildCity(synth::CitySpec::Brindale(0.12, 19));
  };

  // 3. Run every scenario: exact "before" query, disruptions applied as
  //    incremental epochs on the live server, exact "after" query, equity
  //    comparison. Exact labeling keeps SSR sampling noise out of the
  //    deltas — the report measures the disruption and nothing else.
  scenario::RunOptions options;
  options.category = synth::PoiCategory::kSchool;
  options.cost = core::CostKind::kGeneralizedCost;
  options.server.num_threads = 4;

  auto reports = scenario::RunPack(factory, pack.value(), options);
  if (!reports.ok()) {
    std::printf("run error: %s\n", reports.status().ToString().c_str());
    return 1;
  }

  // 4. Print each report — per-zone MAC deltas summarised into fairness
  //    indices, mean ACSD, the four-class migration matrix, and the single
  //    worst-hit zone. The formatter is deterministic (fixed formats, zone
  //    id order), which is what lets golden tests diff report text.
  for (const scenario::EquityReport& report : reports.value()) {
    std::printf("\n%s", scenario::FormatEquityReport(report).c_str());
    std::printf("  applied in %.3f s of incremental relabeling (%llu SPQs)\n",
                report.mutation_seconds,
                static_cast<unsigned long long>(report.mutation_spqs));
  }

  std::printf(
      "\nReading: each scenario is an independent branch off the same "
      "baseline.\nA disruption costs O(affected zones) of relabeling, so a "
      "pack of what-ifs\nruns interactively — which is the point of dynamic "
      "access queries.\n");
  return 0;
}
