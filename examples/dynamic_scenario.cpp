// Dynamic access queries — the paper's core motivation (§I): policy makers
// "need to operate in a dynamic environment and test new policy scenarios,
// such as optimally locating a new school ... or introducing new bus stops
// to avoid 'access deserts'".
//
// This example drives the serving subsystem (serve/server.h) through a
// scenario loop:
//   1. baseline AQ for schools (exact + SSR) against epoch 0,
//   2. a repeat of the same question, answered from the result cache,
//   3. find the worst "access desert" zone,
//   4. scenario A: build a school there — the mutation patches the
//      materialised label states incrementally (only the affected zones
//      are relabeled) and the follow-up query answers from the patch,
//   5. roll the edit back and verify the answer returns to baseline
//      bit-for-bit (the edit-stable TODAM is history-independent),
//   6. scenario B: switch to Sunday morning service levels instead.
#include <cstdio>

#include "serve/server.h"
#include "synth/city_builder.h"

using namespace staq;

namespace {

void PrintAnswer(const char* tag, const core::AccessQueryResult& r) {
  std::printf("  %-22s mean %.1f min, %llu SPQs, %.3f s\n", tag,
              r.mean_mac / 60, static_cast<unsigned long long>(r.spqs),
              r.elapsed_s);
}

}  // namespace

int main() {
  auto built = synth::BuildCity(synth::CitySpec::Brindale(0.12, 19));
  if (!built.ok()) return 1;

  serve::AqServer server(std::move(built).value(), gtfs::WeekdayAmPeak());
  const synth::City& city = server.base_city();

  serve::AqRequest ssr;
  ssr.category = synth::PoiCategory::kSchool;
  ssr.options.beta = 0.07;
  ssr.options.model = ml::ModelKind::kMlp;
  ssr.options.gravity.sample_rate_per_hour = 8;
  serve::AqRequest exact = ssr;
  exact.options.exact = true;

  // 1. Baseline, both ways, to show the cost gap on identical questions.
  auto baseline_exact = server.Query(exact);
  auto baseline_ssr = server.Query(ssr);
  if (!baseline_exact.ok() || !baseline_ssr.ok()) return 1;
  std::printf("baseline access to schools (weekday AM peak, epoch %llu)\n",
              static_cast<unsigned long long>(server.epoch()));
  PrintAnswer("exact:", baseline_exact.value());
  PrintAnswer("SSR:", baseline_ssr.value());

  // 2. Same question again: one probe of the sharded result cache.
  auto repeat = server.Query(exact);
  if (!repeat.ok()) return 1;
  PrintAnswer("exact (cached):", repeat.value());
  std::printf("  cache: %llu hits / %llu misses so far\n",
              static_cast<unsigned long long>(server.stats().cache_hits),
              static_cast<unsigned long long>(server.stats().cache_misses));

  // 3. The worst-served zone is the candidate "access desert".
  const auto& mac = baseline_exact.value().mac;
  uint32_t desert = 0;
  for (uint32_t z = 1; z < mac.size(); ++z) {
    if (mac[z] > mac[desert]) desert = z;
  }
  std::printf("\naccess desert: zone %u at (%.0f, %.0f), MAC %.1f min\n",
              desert, city.zones[desert].centroid.x,
              city.zones[desert].centroid.y, mac[desert] / 60);

  // 4. Scenario A: build a school in the desert. The mutation installs a
  //    new epoch and patches the school label state in place of a full
  //    rebuild: only zones that sample a trip to the new POI are relabeled.
  auto added =
      server.AddPoi(synth::PoiCategory::kSchool, city.zones[desert].centroid);
  if (!added.ok()) return 1;
  const auto& report = added.value();
  std::printf("\nscenario A — new school in the desert zone (epoch %llu):\n",
              static_cast<unsigned long long>(report.epoch));
  std::printf("  mutation: %.3f s, relabeled %u/%u zones, %llu SPQs "
              "(full build: %llu)\n",
              report.seconds, report.zones_relabeled, report.zones_total,
              static_cast<unsigned long long>(report.spqs),
              static_cast<unsigned long long>(baseline_exact.value().spqs));
  auto scenario_a = server.Query(exact);
  if (!scenario_a.ok()) return 1;
  PrintAnswer("exact (incremental):", scenario_a.value());
  std::printf("  desert zone MAC: %.1f -> %.1f min\n",
              baseline_exact.value().mac[desert] / 60,
              scenario_a.value().mac[desert] / 60);

  // 5. Roll back. History independence makes the round-trip exact: the
  //    answer after add+remove is bit-identical to the baseline.
  if (!server.RemovePoi(report.poi_id).ok()) return 1;
  auto rolled_back = server.Query(exact);
  if (!rolled_back.ok()) return 1;
  bool identical = rolled_back.value().mac == baseline_exact.value().mac &&
                   rolled_back.value().acsd == baseline_exact.value().acsd;
  std::printf("\nrollback (epoch %llu): answer %s the baseline\n",
              static_cast<unsigned long long>(server.epoch()),
              identical ? "bit-identical to" : "DIFFERS from");
  if (!identical) return 1;

  // 6. Scenario B: the same question at Sunday morning service levels.
  //    An interval switch rebuilds the offline structures; label states
  //    are interval-dependent and start cold in the new epoch.
  if (!server.SetInterval(gtfs::SundayMorning()).ok()) return 1;
  auto scenario_b = server.Query(ssr);
  if (!scenario_b.ok()) return 1;
  std::printf("\nscenario B — Sunday morning instead of AM peak:\n");
  std::printf("  citywide mean (SSR): %.1f min (weekday %.1f)\n",
              scenario_b.value().mean_mac / 60,
              baseline_ssr.value().mean_mac / 60);

  // 7. Takeaway.
  std::printf(
      "\nA scenario edit costs O(affected zones): this one relabeled %u of "
      "%u zones\n(%llu SPQs vs %llu for a from-scratch labeling), and "
      "repeated questions on a\nstable scenario cost one cache probe — which "
      "is what makes interactive\nwhat-if analysis practical.\n",
      report.zones_relabeled, report.zones_total,
      static_cast<unsigned long long>(report.spqs),
      static_cast<unsigned long long>(baseline_exact.value().spqs));
  return 0;
}
