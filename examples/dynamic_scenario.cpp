// Dynamic access queries — the paper's core motivation (§I): policy makers
// "need to operate in a dynamic environment and test new policy scenarios,
// such as optimally locating a new school ... or introducing new bus stops
// to avoid 'access deserts'".
//
// This example runs a scenario loop:
//   1. baseline AQ for schools,
//   2. find the worst "access desert" zone,
//   3. scenario A: build a school there (POI edit) -> re-query,
//   4. scenario B: instead analyse a different time interval,
//   5. compare the naive (exact) cost against the SSR cost for the same
//      queries, demonstrating why dynamic querying needs the SSR solution.
#include <cstdio>

#include "core/access_query.h"
#include "synth/city_builder.h"

using namespace staq;

int main() {
  auto built = synth::BuildCity(synth::CitySpec::Brindale(0.12, 19));
  if (!built.ok()) return 1;
  core::AccessQueryEngine engine(std::move(built).value(),
                                 gtfs::WeekdayAmPeak());
  const synth::City& city = engine.city();

  core::AccessQueryOptions ssr;
  ssr.beta = 0.07;
  ssr.model = ml::ModelKind::kMlp;
  ssr.gravity.sample_rate_per_hour = 8;
  core::AccessQueryOptions exact = ssr;
  exact.exact = true;

  // 1. Baseline, both ways, to show the cost gap on identical questions.
  auto baseline_exact = engine.Query(synth::PoiCategory::kSchool, exact);
  auto baseline_ssr = engine.Query(synth::PoiCategory::kSchool, ssr);
  if (!baseline_exact.ok() || !baseline_ssr.ok()) return 1;

  std::printf("baseline access to schools (weekday AM peak)\n");
  std::printf("  exact : mean %.1f min, %llu SPQs, %.2f s\n",
              baseline_exact.value().mean_mac / 60,
              static_cast<unsigned long long>(baseline_exact.value().spqs),
              baseline_exact.value().elapsed_s);
  std::printf("  SSR   : mean %.1f min, %llu SPQs, %.2f s  (%.0f%% fewer "
              "SPQs)\n",
              baseline_ssr.value().mean_mac / 60,
              static_cast<unsigned long long>(baseline_ssr.value().spqs),
              baseline_ssr.value().elapsed_s,
              100.0 * (1.0 - static_cast<double>(baseline_ssr.value().spqs) /
                                 baseline_exact.value().spqs));

  // 2. The worst-served zone is the candidate "access desert".
  const auto& mac = baseline_ssr.value().mac;
  uint32_t desert = 0;
  for (uint32_t z = 1; z < mac.size(); ++z) {
    if (mac[z] > mac[desert]) desert = z;
  }
  std::printf("\naccess desert: zone %u at (%.0f, %.0f), MAC %.1f min\n",
              desert, city.zones[desert].centroid.x,
              city.zones[desert].centroid.y, mac[desert] / 60);

  // 3. Scenario A: build a school in the desert and re-query. The SSR
  //    answer gives the cheap citywide picture; the single desert zone's
  //    before/after is checked exactly (its improvement is too local for
  //    an unlabeled-zone prediction to resolve).
  uint32_t new_school = engine.AddPoi(synth::PoiCategory::kSchool,
                                      city.zones[desert].centroid);
  auto scenario_a = engine.Query(synth::PoiCategory::kSchool, ssr);
  auto scenario_a_exact = engine.Query(synth::PoiCategory::kSchool, exact);
  if (!scenario_a.ok() || !scenario_a_exact.ok()) return 1;
  std::printf("\nscenario A — new school in the desert zone:\n");
  std::printf("  desert zone MAC (exact): %.1f -> %.1f min\n",
              baseline_exact.value().mac[desert] / 60,
              scenario_a_exact.value().mac[desert] / 60);
  std::printf("  citywide mean (SSR)    : %.1f -> %.1f min (answered in "
              "%.2f s)\n",
              baseline_ssr.value().mean_mac / 60,
              scenario_a.value().mean_mac / 60,
              scenario_a.value().elapsed_s);
  (void)engine.RemovePoi(new_school);

  // 4. Scenario B: the same question at Sunday morning service levels.
  engine.SetInterval(gtfs::SundayMorning());
  auto scenario_b = engine.Query(synth::PoiCategory::kSchool, ssr);
  if (!scenario_b.ok()) return 1;
  std::printf("\nscenario B — Sunday morning instead of AM peak:\n");
  std::printf("  citywide mean  : %.1f min (weekday %.1f); offline re-prep "
              "%.2f s\n",
              scenario_b.value().mean_mac / 60,
              baseline_ssr.value().mean_mac / 60, engine.offline_seconds());

  // 5. Takeaway.
  std::printf(
      "\nEach scenario is a fresh TODAM + labeling pass; at beta=%.0f%% the "
      "SSR solution\nanswers every variation with ~%.0f%% of the naive SPQ "
      "workload, which is what\nmakes interactive what-if analysis "
      "practical.\n",
      ssr.beta * 100,
      100.0 * static_cast<double>(baseline_ssr.value().spqs) /
          baseline_exact.value().spqs);
  return 0;
}
