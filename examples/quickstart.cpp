// Quickstart: build a synthetic city, ask one access query, print the
// zone-level accessibility summary.
//
//   $ ./quickstart
//
// This is the smallest complete use of the public API:
//   1. describe a city (or load your own zones/feed into synth::City),
//   2. create an AccessQueryEngine for a time interval,
//   3. query aggregate access to a POI category — exactly, or with the
//      SSR solution at a labeling budget.
#include <cstdio>

#include "core/access_query.h"
#include "synth/city_builder.h"

using namespace staq;

int main() {
  // 1. A Coventry-shaped city at 1/10 scale (~100 zones) so the example
  //    runs in well under a second.
  synth::CitySpec spec = synth::CitySpec::Covely(/*scale=*/0.1, /*seed=*/7);
  auto built = synth::BuildCity(spec);
  if (!built.ok()) {
    std::fprintf(stderr, "city build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  synth::City city = std::move(built).value();
  std::printf("city '%s': %zu zones, %zu stops, %zu scheduled trips\n",
              spec.name.c_str(), city.zones.size(), city.feed.num_stops(),
              city.feed.num_trips());

  // 2. Engine for the weekday AM peak (07:00-09:00 Tuesday). Construction
  //    runs the offline phase: walking isochrones + transit-hop trees.
  core::AccessQueryEngine engine(std::move(city), gtfs::WeekdayAmPeak());
  std::printf("offline pre-computation: %.3f s\n", engine.offline_seconds());

  // 3. "What is the average journey time to a school, and how fairly is
  //    it distributed?" — answered with the SSR solution at a 10% budget.
  core::AccessQueryOptions options;
  options.beta = 0.10;
  options.model = ml::ModelKind::kMlp;
  options.cost = core::CostKind::kJourneyTime;

  auto answer = engine.Query(synth::PoiCategory::kSchool, options);
  if (!answer.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 answer.status().ToString().c_str());
    return 1;
  }
  const core::AccessQueryResult& r = answer.value();

  std::printf("\naccess to schools (weekday AM peak):\n");
  std::printf("  mean journey time       : %.1f min\n", r.mean_mac / 60);
  std::printf("  mean temporal variation : %.1f min\n", r.mean_acsd / 60);
  std::printf("  fairness (Jain index)   : %.3f\n", r.fairness);
  std::printf("  population-weighted     : %.3f\n", r.population_fairness);
  std::printf("  SPQs issued             : %llu of %llu gravity trips\n",
              static_cast<unsigned long long>(r.spqs),
              static_cast<unsigned long long>(r.gravity_trips));
  std::printf("  answered in             : %.2f s\n", r.elapsed_s);

  // Per-zone classification histogram (the paper's AC measure).
  int histogram[4] = {0, 0, 0, 0};
  for (int c : r.classes) ++histogram[c];
  std::printf("\nzone classification:\n");
  for (int c = 0; c < 4; ++c) {
    std::printf("  %-12s %4d zones\n",
                core::AccessClassName(static_cast<core::AccessClass>(c)),
                histogram[c]);
  }
  return 0;
}
