// Fig. 3 — Journey-time (JT) errors of the SSR solution: mean-absolute
// error of predicted zone MAC (in minutes) for every model x labeling
// budget x POI type x city.
//
// The paper reports heat-grids per (city, POI type) with models on one
// axis and budgets on the other; this bench prints the same grids and
// writes a long-form CSV.
#include <cstdio>

#include "bench_common.h"
#include "bench_registry.h"

namespace staq::bench {
namespace {

}  // namespace

exp::RunResult RunFig3Bench() {
  PrintHeader("Fig. 3: JT mean-absolute error across models and budgets");
  util::CsvTable csv({"city", "poi", "model", "beta", "jt_mae_min",
                      "mac_corr", "spqs", "ground_truth_spqs"});

  auto budgets = PaperBudgets();
  auto models = ml::AllModelKinds();

  for (BenchCity& bc : MakeBothCities()) {
    for (synth::PoiCategory category : PaperCategories()) {
      auto pois = bc.city->PoisOf(category);
      core::Todam todam =
          bc.pipeline->BuildGravityTodam(pois, bc.gravity, BenchSeed());
      core::GroundTruth truth = bc.pipeline->ComputeGroundTruth(
          pois, todam, core::CostKind::kJourneyTime);

      // Features are identical across budgets and models: extract once.
      util::Stopwatch feature_watch;
      ml::Matrix features = bc.pipeline->feature_extractor().ExtractZoneMatrix(
          pois, todam.alpha());
      double features_s = feature_watch.ElapsedSeconds();

      std::printf("\n%s / %s  (|P|=%zu, |M_g|=%llu, walk-only=%.1f%%)\n",
                  bc.name.c_str(), synth::PoiCategoryName(category),
                  pois.size(),
                  static_cast<unsigned long long>(todam.num_trips()),
                  100 * truth.walk_only_fraction);
      std::printf("%-7s", "model");
      for (double beta : budgets) std::printf("  b=%-4.0f%%", beta * 100);
      std::printf("   (JT MAE, minutes)\n");

      for (ml::ModelKind model : models) {
        std::printf("%-7s", ml::ModelKindName(model));
        for (double beta : budgets) {
          core::PipelineConfig config;
          config.beta = beta;
          config.model = model;
          config.cost = core::CostKind::kJourneyTime;
          config.seed = BenchSeed();
          auto run = bc.pipeline->Run(pois, todam, config, &features,
                                      features_s);
          if (!run.ok()) {
            std::printf("  %7s", "err");
            continue;
          }
          core::EvaluationMetrics metrics = Evaluate(truth, run.value());
          std::printf("  %7.2f", metrics.mac_mae / 60.0);
          (void)csv.AddRow(
              {bc.name, synth::PoiCategoryName(category),
               ml::ModelKindName(model), util::CsvTable::Num(beta, 2),
               util::CsvTable::Num(metrics.mac_mae / 60.0, 3),
               util::CsvTable::Num(metrics.mac_corr, 3),
               util::CsvTable::Num(static_cast<int64_t>(run.value().spqs)),
               util::CsvTable::Num(static_cast<int64_t>(truth.spqs))});
        }
        std::printf("\n");
      }
    }
  }

  std::printf(
      "\nPaper reference (Fig. 3): MLP is the strongest model; errors grow "
      "as the budget\nshrinks (gracefully for MLP, erratically for OLS); "
      "Birmingham tolerates lower\nbudgets than Coventry; at beta=3%% school"
      " JT error is ~3.3 minutes.\n");
  EmitCsv(csv, "fig3_jt_errors.csv");

  JsonWriter w;
  w.BeginObject();
  w.String("bench", "fig3");
  w.Fixed("scale", BenchScale(), 4);
  w.Int("rate_per_hour", BenchRate());
  w.Uint("seed", BenchSeed());
  w.String("csv", "fig3_jt_errors.csv");
  w.Uint("csv_rows", csv.num_rows());
  w.EndObject();
  std::string json = w.Take();
  EmitBenchJson("fig3", json);
  return {0, std::move(json)};
}

}  // namespace staq::bench
