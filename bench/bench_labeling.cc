// Zone-labeling throughput: per-trip vs batched SPQ execution.
//
// Labeling is the dominant cost of the whole solution (paper §IV-E), so
// this bench measures exactly that hot path in three result-identical
// configurations:
//   per-trip (seed)     — one Route per TODAM trip on the original engine:
//                         binary heap, full-window boarding scans, unbounded
//                         relaxation (the speedup baseline)
//   per-trip+pruning    — one Route per trip with the optimized search
//                         (bucket queue, route-break scans, bound-aware
//                         pruning)
//   batched             — RouteMany per departure group on the optimized
//                         search + cached access stops (the production
//                         configuration)
// plus the thread-pooled variant of the batched engine. Labels are checked
// bit-identical across configurations before any number is reported.
//
// Output: paper-style table on stdout and a machine-readable
// BENCH_labeling.json in STAQ_BENCH_OUT.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/labeling.h"
#include "core/parallel_labeling.h"
#include "core/todam.h"
#include "router/router.h"
#include "util/stopwatch.h"

namespace staq::bench {
namespace {

struct ModeResult {
  std::string name;
  double seconds = 0.0;
  uint64_t spqs = 0;
  uint64_t expansions = 0;
  std::vector<core::ZoneLabel> labels;
};

bool SameLabels(const std::vector<core::ZoneLabel>& a,
                const std::vector<core::ZoneLabel>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].mac != b[i].mac || a[i].acsd != b[i].acsd ||
        a[i].num_trips != b[i].num_trips ||
        a[i].num_infeasible != b[i].num_infeasible ||
        a[i].num_walk_only != b[i].num_walk_only) {
      return false;
    }
  }
  return true;
}

int Run() {
  PrintHeader("Zone-labeling throughput: per-trip vs batched SPQ engine");

  BenchCity bc =
      MakeBenchCity(synth::CitySpec::Brindale(BenchScale(), BenchSeed()));
  const synth::City& city = *bc.city;
  auto pois = city.PoisOf(synth::PoiCategory::kSchool);
  core::TodamBuilder builder(city.zones, pois, gtfs::WeekdayAmPeak(),
                             bc.gravity);
  core::Todam todam = builder.BuildGravity(BenchSeed());

  std::vector<uint32_t> zones(city.zones.size());
  for (uint32_t z = 0; z < zones.size(); ++z) zones[z] = z;
  std::printf("  city=%s  zones=%zu  pois=%zu  trips=%llu\n", bc.name.c_str(),
              zones.size(), pois.size(),
              static_cast<unsigned long long>(todam.num_trips()));

  auto run_serial = [&](const char* name, router::RouterOptions opts,
                        core::LabelingMode mode) {
    router::Router router(&city.feed, opts);
    core::LabelingEngine engine(&city, &router, {}, mode);
    ModeResult r;
    r.name = name;
    util::Stopwatch watch;
    r.labels = engine.LabelZones(todam, zones, pois,
                                 core::CostKind::kJourneyTime,
                                 gtfs::Day::kTuesday);
    r.seconds = watch.ElapsedSeconds();
    r.spqs = engine.spq_count();
    r.expansions = engine.expansion_count();
    return r;
  };

  // The baseline runs the original engine: binary heap, full-window
  // boarding scans, unbounded relaxation.
  router::RouterOptions seed_opts;
  seed_opts.bounded_relaxation = false;
  seed_opts.boarding_route_break = false;
  seed_opts.bucket_queue = false;

  std::vector<ModeResult> results;
  results.push_back(
      run_serial("per-trip (seed)", seed_opts, core::LabelingMode::kPerTrip));
  results.push_back(run_serial("per-trip+pruning", {},
                               core::LabelingMode::kPerTrip));
  results.push_back(run_serial("batched", {}, core::LabelingMode::kBatched));

  {
    // Thread-pooled batched engine (worker count = hardware concurrency).
    int threads =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    ModeResult r;
    r.name = "batched+pool(" + std::to_string(threads) + ")";
    util::Stopwatch watch;
    r.labels = core::LabelZonesParallel(
        city, todam, zones, pois, core::CostKind::kJourneyTime,
        gtfs::Day::kTuesday, threads, {}, {}, &r.spqs,
        core::LabelingMode::kBatched);
    r.seconds = watch.ElapsedSeconds();
    results.push_back(std::move(r));
  }

  // Equivalence gate: a throughput number for a mode that changes results
  // would be meaningless.
  for (size_t i = 1; i < results.size(); ++i) {
    if (!SameLabels(results[0].labels, results[i].labels)) {
      std::fprintf(stderr, "FATAL: %s labels differ from %s\n",
                   results[i].name.c_str(), results[0].name.c_str());
      return 1;
    }
  }
  std::printf("  all modes bit-identical to '%s'\n\n",
              results[0].name.c_str());

  std::printf("  %-20s %9s %10s %10s %12s %8s\n", "mode", "seconds",
              "zones/s", "SPQs/s", "expansions", "speedup");
  for (const ModeResult& r : results) {
    double zps = static_cast<double>(zones.size()) / r.seconds;
    double sps = static_cast<double>(r.spqs) / r.seconds;
    double speedup = results[0].seconds / r.seconds;
    std::printf("  %-20s %9.3f %10.1f %10.0f %12llu %7.2fx\n",
                r.name.c_str(), r.seconds, zps, sps,
                static_cast<unsigned long long>(r.expansions), speedup);
  }

  std::string path = OutDir() + "/BENCH_labeling.json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "  (json write failed: %s)\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"labeling\",\n");
  std::fprintf(f, "  \"city\": \"%s\",\n", bc.name.c_str());
  std::fprintf(f, "  \"scale\": %.4f,\n", BenchScale());
  std::fprintf(f, "  \"rate_per_hour\": %d,\n", BenchRate());
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(BenchSeed()));
  std::fprintf(f, "  \"zones\": %zu,\n", zones.size());
  std::fprintf(f, "  \"trips\": %llu,\n",
               static_cast<unsigned long long>(todam.num_trips()));
  std::fprintf(f, "  \"modes\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"seconds\": %.6f, "
                 "\"zones_per_s\": %.3f, \"spqs_per_s\": %.1f, "
                 "\"spqs\": %llu, \"expansions\": %llu, "
                 "\"speedup_vs_baseline\": %.4f}%s\n",
                 r.name.c_str(), r.seconds,
                 static_cast<double>(zones.size()) / r.seconds,
                 static_cast<double>(r.spqs) / r.seconds,
                 static_cast<unsigned long long>(r.spqs),
                 static_cast<unsigned long long>(r.expansions),
                 results[0].seconds / r.seconds,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"bit_identical\": true\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("  -> wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace staq::bench

int main() { return staq::bench::Run(); }
