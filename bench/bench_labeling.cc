// Zone-labeling throughput: per-trip vs batched SPQ execution.
//
// Labeling is the dominant cost of the whole solution (paper §IV-E), so
// this bench measures exactly that hot path in three result-identical
// configurations:
//   per-trip (seed)     — one Route per TODAM trip on the original engine:
//                         binary heap, full-window boarding scans, unbounded
//                         relaxation (the speedup baseline)
//   per-trip+pruning    — one Route per trip with the optimized search
//                         (bucket queue, route-break scans, bound-aware
//                         pruning)
//   batched             — RouteMany per departure group on the optimized
//                         search + cached access stops
//   csa batched         — RouteMany per departure group on the Connection
//                         Scan engine over the shared connection array
//   csa profile         — ONE window scan per zone: every departure group
//                         is a lane of the same connection sweep (the
//                         production configuration)
// plus the thread-pooled variants of the batched and profile engines.
// Labels are checked bit-identical across configurations before any number
// is reported, and the binary exits non-zero unless the CSA profile engine
// clears the speedup floor over the seed baseline — the regression gate
// for the routing core. The issue's 10x design target is reported
// alongside (see kCsaTargetSpeedup).
//
// Output: paper-style table on stdout and a machine-readable
// BENCH_labeling.json in STAQ_BENCH_OUT.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_registry.h"
#include "core/labeling.h"
#include "core/parallel_labeling.h"
#include "core/todam.h"
#include "router/connections.h"
#include "router/router.h"
#include "util/stopwatch.h"

namespace staq::bench {
namespace {

/// Regression floor: the serial CSA profile engine must beat the seed
/// per-trip baseline by at least this factor or the bench exits non-zero.
/// Set below the ~4.3x the engine holds on the 1-core reference box (with
/// headroom for machine noise) so a regression of the achieved win fails
/// loudly; the design target below is reported separately.
constexpr double kCsaSpeedupFloor = 3.0;

/// The issue's design target for cold builds. Not met serially on the
/// 1-core reference machine — the remaining scan is memory-bandwidth-bound
/// at ~1 label write per (live lane, stop) — so it is reported in the JSON
/// (`csa_target_speedup` / `target_met`) rather than enforced. The pooled
/// profile configuration is expected to clear it on multicore hardware.
constexpr double kCsaTargetSpeedup = 10.0;

struct ModeResult {
  std::string name;
  std::string engine;  // "label_correcting" | "csa"
  double seconds = 0.0;
  uint64_t spqs = 0;
  uint64_t expansions = 0;
  std::vector<core::ZoneLabel> labels;
};

bool SameLabels(const std::vector<core::ZoneLabel>& a,
                const std::vector<core::ZoneLabel>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].mac != b[i].mac || a[i].acsd != b[i].acsd ||
        a[i].num_trips != b[i].num_trips ||
        a[i].num_infeasible != b[i].num_infeasible ||
        a[i].num_walk_only != b[i].num_walk_only) {
      return false;
    }
  }
  return true;
}

}  // namespace

exp::RunResult RunLabelingBench() {
  PrintHeader("Zone-labeling throughput: per-trip vs batched SPQ engine");

  BenchCity bc =
      MakeBenchCity(synth::CitySpec::Brindale(BenchScale(), BenchSeed()));
  const synth::City& city = *bc.city;
  auto pois = city.PoisOf(synth::PoiCategory::kSchool);
  core::TodamBuilder builder(city.zones, pois, gtfs::WeekdayAmPeak(),
                             bc.gravity);
  core::Todam todam = builder.BuildGravity(BenchSeed());

  std::vector<uint32_t> zones(city.zones.size());
  for (uint32_t z = 0; z < zones.size(); ++z) zones[z] = z;
  std::printf("  city=%s  zones=%zu  pois=%zu  trips=%llu\n", bc.name.c_str(),
              zones.size(), pois.size(),
              static_cast<unsigned long long>(todam.num_trips()));

  // The connection array is timetable-derived and shared by every CSA mode
  // below (and by every worker of the pooled runs), so its build is timed
  // once here and reported separately from the scans.
  auto connections =
      router::ConnectionArray::EnsureFor(nullptr, &city.feed);
  std::printf("  connection array: %zu connections, built in %.3fs\n",
              connections->num_connections(), connections->build_seconds());
  router::RouterOptions csa_opts;
  csa_opts.engine = router::RoutingEngine::kCsa;
  csa_opts.connections = connections;

  auto run_serial = [&](const char* name, router::RouterOptions opts,
                        core::LabelingMode mode) {
    router::Router router(&city.feed, opts);
    core::LabelingEngine engine(&city, &router, {}, mode);
    ModeResult r;
    r.name = name;
    r.engine = opts.engine == router::RoutingEngine::kCsa ? "csa"
                                                          : "label_correcting";
    util::Stopwatch watch;
    r.labels = engine.LabelZones(todam, zones, pois,
                                 core::CostKind::kJourneyTime,
                                 gtfs::Day::kTuesday);
    r.seconds = watch.ElapsedSeconds();
    r.spqs = engine.spq_count();
    r.expansions = engine.expansion_count();
    return r;
  };

  // The baseline runs the original engine: binary heap, full-window
  // boarding scans, unbounded relaxation.
  router::RouterOptions seed_opts;
  seed_opts.bounded_relaxation = false;
  seed_opts.boarding_route_break = false;
  seed_opts.bucket_queue = false;

  std::vector<ModeResult> results;
  results.push_back(
      run_serial("per-trip (seed)", seed_opts, core::LabelingMode::kPerTrip));
  results.push_back(run_serial("per-trip+pruning", {},
                               core::LabelingMode::kPerTrip));
  results.push_back(run_serial("batched", {}, core::LabelingMode::kBatched));
  results.push_back(
      run_serial("csa batched", csa_opts, core::LabelingMode::kBatched));
  results.push_back(
      run_serial("csa profile", csa_opts, core::LabelingMode::kProfile));

  int threads = Params().threads > 0
                    ? Params().threads
                    : static_cast<int>(
                          std::max(1u, std::thread::hardware_concurrency()));
  auto run_pooled = [&](const std::string& name, router::RouterOptions opts,
                        core::LabelingMode mode) {
    ModeResult r;
    r.name = name + "+pool(" + std::to_string(threads) + ")";
    r.engine = opts.engine == router::RoutingEngine::kCsa ? "csa"
                                                          : "label_correcting";
    util::Stopwatch watch;
    r.labels = core::LabelZonesParallel(
        city, todam, zones, pois, core::CostKind::kJourneyTime,
        gtfs::Day::kTuesday, threads, opts, {}, &r.spqs, mode);
    r.seconds = watch.ElapsedSeconds();
    return r;
  };
  results.push_back(run_pooled("batched", {}, core::LabelingMode::kBatched));
  results.push_back(
      run_pooled("csa profile", csa_opts, core::LabelingMode::kProfile));

  // Equivalence gate: a throughput number for a mode that changes results
  // would be meaningless.
  for (size_t i = 1; i < results.size(); ++i) {
    if (!SameLabels(results[0].labels, results[i].labels)) {
      std::fprintf(stderr, "FATAL: %s labels differ from %s\n",
                   results[i].name.c_str(), results[0].name.c_str());
      return {1, ""};
    }
  }
  std::printf("  all modes bit-identical to '%s'\n\n",
              results[0].name.c_str());

  std::printf("  %-22s %-17s %9s %10s %10s %12s %8s\n", "mode", "engine",
              "seconds", "zones/s", "SPQs/s", "expansions", "speedup");
  for (const ModeResult& r : results) {
    double zps = static_cast<double>(zones.size()) / r.seconds;
    double sps = static_cast<double>(r.spqs) / r.seconds;
    double speedup = results[0].seconds / r.seconds;
    std::printf("  %-22s %-17s %9.3f %10.1f %10.0f %12llu %7.2fx\n",
                r.name.c_str(), r.engine.c_str(), r.seconds, zps, sps,
                static_cast<unsigned long long>(r.expansions), speedup);
  }

  // Regression gate: the serial window-scan engine (connection-array build
  // time included — that is the true cold-build cost) must hold the floor.
  double csa_total = connections->build_seconds();
  for (const ModeResult& r : results) {
    if (r.name == "csa profile") csa_total += r.seconds;
  }
  double csa_speedup = results[0].seconds / csa_total;
  bool gate_passed = csa_speedup >= kCsaSpeedupFloor;
  bool target_met = csa_speedup >= kCsaTargetSpeedup;
  std::printf("\n  gate: csa profile %.2fx vs seed (incl. %.3fs array build, "
              "floor %.0fx) -> %s  [design target %.0fx: %s]\n",
              csa_speedup, connections->build_seconds(), kCsaSpeedupFloor,
              gate_passed ? "PASS" : "FAIL", kCsaTargetSpeedup,
              target_met ? "met" : "not met serially");

  JsonWriter w;
  w.BeginObject();
  w.String("bench", "labeling");
  w.String("city", bc.name);
  w.Fixed("scale", BenchScale(), 4);
  w.Int("rate_per_hour", BenchRate());
  w.Uint("seed", BenchSeed());
  w.Uint("zones", zones.size());
  w.Uint("trips", todam.num_trips());
  w.Uint("connections", connections->num_connections());
  w.Fixed("connections_build_seconds", connections->build_seconds(), 6);
  w.BeginArray("modes");
  for (const ModeResult& r : results) {
    w.BeginObject();
    w.String("name", r.name);
    w.String("engine", r.engine);
    w.Fixed("seconds", r.seconds, 6);
    w.Fixed("zones_per_s", static_cast<double>(zones.size()) / r.seconds, 3);
    w.Fixed("spqs_per_s", static_cast<double>(r.spqs) / r.seconds, 1);
    w.Uint("spqs", r.spqs);
    w.Uint("expansions", r.expansions);
    w.Fixed("speedup_vs_baseline", results[0].seconds / r.seconds, 4);
    w.EndObject();
  }
  w.EndArray();
  w.Fixed("csa_speedup_floor", kCsaSpeedupFloor, 1);
  w.Fixed("csa_target_speedup", kCsaTargetSpeedup, 1);
  w.Fixed("csa_profile_speedup", csa_speedup, 4);
  w.Bool("gate_passed", gate_passed);
  w.Bool("target_met", target_met);
  w.Bool("bit_identical", true);
  w.EndObject();
  std::string json = w.Take();
  EmitBenchJson("labeling", json);

  int exit_code = gate_passed ? 0 : 1;
  if (!gate_passed && Params().relax_gates) {
    std::printf("  (gate relaxed: reporting only)\n");
    exit_code = 0;
  }
  return {exit_code, std::move(json)};
}

}  // namespace staq::bench

