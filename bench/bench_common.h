// Shared infrastructure for the paper-reproduction benches.
//
// Every experiment binary accepts environment overrides so the suite can
// be run at laptop scale (defaults) or closer to paper scale:
//   STAQ_BENCH_SCALE  linear zone/POI count multiplier (default 0.25;
//                     1.0 reproduces the paper's 3217/1014 zone counts)
//   STAQ_BENCH_RATE   TODAM start-time samples per hour (default 12;
//                     the paper's matrices correspond to ~30)
//   STAQ_BENCH_SEED   master seed (default 42)
//   STAQ_BENCH_OUT    directory for CSV outputs (default ".")
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/access_query.h"
#include "core/pipeline.h"
#include "synth/city_builder.h"
#include "util/csv.h"
#include "util/stopwatch.h"

namespace staq::bench {

inline double BenchScale() {
  const char* env = std::getenv("STAQ_BENCH_SCALE");
  return env != nullptr ? std::atof(env) : 0.25;
}

inline int BenchRate() {
  const char* env = std::getenv("STAQ_BENCH_RATE");
  return env != nullptr ? std::atoi(env) : 12;
}

inline uint64_t BenchSeed() {
  const char* env = std::getenv("STAQ_BENCH_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 42;
}

inline std::string OutDir() {
  const char* env = std::getenv("STAQ_BENCH_OUT");
  return env != nullptr ? env : ".";
}

/// The β grid of the paper's sweeps (Figs. 3-4, Table II).
inline std::vector<double> PaperBudgets() {
  return {0.03, 0.05, 0.07, 0.10, 0.20, 0.30};
}

/// The four POI categories in paper order.
inline std::vector<synth::PoiCategory> PaperCategories() {
  return {synth::PoiCategory::kSchool, synth::PoiCategory::kHospital,
          synth::PoiCategory::kVaxCenter, synth::PoiCategory::kJobCenter};
}

/// One evaluation city with its pipeline and calibrated gravity settings.
/// The city lives behind a unique_ptr so the pipeline's pointer to it stays
/// valid when a BenchCity is moved (e.g. into a vector).
struct BenchCity {
  std::string name;
  std::unique_ptr<synth::City> city;
  std::unique_ptr<core::SsrPipeline> pipeline;
  core::GravityConfig gravity;
};

inline BenchCity MakeBenchCity(const synth::CitySpec& spec) {
  BenchCity bc;
  bc.name = spec.name;
  auto built = synth::BuildCity(spec);
  if (!built.ok()) {
    std::fprintf(stderr, "city build failed: %s\n",
                 built.status().ToString().c_str());
    std::exit(1);
  }
  bc.city = std::make_unique<synth::City>(std::move(built).value());
  bc.pipeline = std::make_unique<core::SsrPipeline>(bc.city.get(),
                                                    gtfs::WeekdayAmPeak());
  bc.gravity = core::CalibratedGravityConfig(spec);
  bc.gravity.sample_rate_per_hour = BenchRate();
  return bc;
}

/// Both evaluation cities at the configured scale.
inline std::vector<BenchCity> MakeBothCities() {
  std::vector<BenchCity> cities;
  cities.push_back(
      MakeBenchCity(synth::CitySpec::Brindale(BenchScale(), BenchSeed())));
  cities.push_back(
      MakeBenchCity(synth::CitySpec::Covely(BenchScale(), BenchSeed() + 1)));
  return cities;
}

/// Writes a CSV next to printing it; failures are reported but non-fatal.
inline void EmitCsv(const util::CsvTable& table, const std::string& filename) {
  std::string path = OutDir() + "/" + filename;
  auto status = table.WriteFile(path);
  if (status.ok()) {
    std::printf("  -> wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "  (csv write failed: %s)\n",
                 status.ToString().c_str());
  }
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("  scale=%.2f  rate=%d/hr  seed=%llu\n", BenchScale(),
              BenchRate(), static_cast<unsigned long long>(BenchSeed()));
  std::printf("================================================================\n");
}

}  // namespace staq::bench
