// Shared infrastructure for the paper-reproduction benches.
//
// Every bench reads its settings from the process-wide BenchParams, which
// layer three sources (later wins):
//   1. compiled defaults (laptop scale);
//   2. environment overrides —
//        STAQ_BENCH_SCALE  linear zone/POI count multiplier (default 0.25;
//                          1.0 reproduces the paper's 3217/1014 zones)
//        STAQ_BENCH_RATE   TODAM start-time samples per hour (default 12;
//                          the paper's matrices correspond to ~30)
//        STAQ_BENCH_SEED   master seed (default 42)
//        STAQ_BENCH_OUT    directory for CSV/JSON outputs (default ".")
//        STAQ_BENCH_THREADS, STAQ_SERVE_ENGINE, STAQ_BENCH_SPQ_MS,
//        STAQ_BENCH_RELAX_GATES (see BenchParams fields);
//   3. experiment-cell parameters when a bench runs under the staq::exp
//      runner (ScopedBenchParams installs them for the cell's duration).
//
// The header also provides bench::JsonWriter — the one JSON emitter every
// bench uses for its BENCH_*.json document (same escaping, fixed float
// precision, byte-stable output) — and the shared latency Summarise()
// with explicit sample counts and approx-quantile marking.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/access_query.h"
#include "core/pipeline.h"
#include "synth/city_builder.h"
#include "util/csv.h"
#include "util/stopwatch.h"

namespace staq::bench {

// ---------------------------------------------------------------------------
// Parameters

struct BenchParams {
  double scale = 0.25;
  int rate = 12;
  uint64_t seed = 42;
  std::string out_dir = ".";
  /// Worker threads for pooled modes; 0 = hardware concurrency.
  int threads = 0;
  /// Serve-bench engine selector ("", "csa", "label_correcting").
  std::string engine;
  /// Per-SPQ latency budget override for the Table II bench; <0 = default.
  double spq_budget_ms = -1.0;
  /// Soften inline perf gates to warnings (sanitizer builds, where wall
  /// times carry no information). Correctness gates stay fatal.
  bool relax_gates = false;
  /// Bench-specific parameters from an experiment cell (beta, city, ...).
  std::map<std::string, std::string> extra;

  /// Compiled defaults overlaid with the STAQ_BENCH_* environment.
  static BenchParams FromEnv() {
    BenchParams p;
    if (const char* env = std::getenv("STAQ_BENCH_SCALE")) {
      p.scale = std::atof(env);
    }
    if (const char* env = std::getenv("STAQ_BENCH_RATE")) {
      p.rate = std::atoi(env);
    }
    if (const char* env = std::getenv("STAQ_BENCH_SEED")) {
      p.seed = std::strtoull(env, nullptr, 10);
    }
    if (const char* env = std::getenv("STAQ_BENCH_OUT")) p.out_dir = env;
    if (const char* env = std::getenv("STAQ_BENCH_THREADS")) {
      p.threads = std::atoi(env);
    }
    if (const char* env = std::getenv("STAQ_SERVE_ENGINE")) p.engine = env;
    if (const char* env = std::getenv("STAQ_BENCH_SPQ_MS")) {
      p.spq_budget_ms = std::atof(env);
    }
    if (const char* env = std::getenv("STAQ_BENCH_RELAX_GATES")) {
      p.relax_gates = std::atoi(env) != 0;
    }
    return p;
  }

  /// Overlays experiment-cell parameters. Reserved keys map onto the
  /// typed fields; anything else lands in `extra` for the bench to read.
  void Apply(const std::map<std::string, std::string>& cell) {
    for (const auto& [key, value] : cell) {
      if (key == "scale") {
        scale = std::atof(value.c_str());
      } else if (key == "rate") {
        rate = std::atoi(value.c_str());
      } else if (key == "seed") {
        seed = std::strtoull(value.c_str(), nullptr, 10);
      } else if (key == "threads") {
        threads = std::atoi(value.c_str());
      } else if (key == "engine") {
        engine = value;
      } else if (key == "spq_budget_ms") {
        spq_budget_ms = std::atof(value.c_str());
      } else if (key == "relax_gates") {
        relax_gates = value == "1" || value == "true";
      } else {
        extra[key] = value;
      }
    }
  }

  /// An `extra` parameter, or `fallback` when the cell didn't set it.
  std::string Extra(const std::string& key, const std::string& fallback) const {
    auto it = extra.find(key);
    return it == extra.end() ? fallback : it->second;
  }
};

/// The process-wide bench parameters. Initialised from the environment on
/// first use; the experiment runner swaps them per cell.
inline BenchParams& Params() {
  static BenchParams params = BenchParams::FromEnv();
  return params;
}

/// RAII parameter swap for running a bench as an experiment cell.
class ScopedBenchParams {
 public:
  explicit ScopedBenchParams(BenchParams params) : saved_(Params()) {
    Params() = std::move(params);
  }
  ~ScopedBenchParams() { Params() = std::move(saved_); }
  ScopedBenchParams(const ScopedBenchParams&) = delete;
  ScopedBenchParams& operator=(const ScopedBenchParams&) = delete;

 private:
  BenchParams saved_;
};

inline double BenchScale() { return Params().scale; }
inline int BenchRate() { return Params().rate; }
inline uint64_t BenchSeed() { return Params().seed; }
inline std::string OutDir() { return Params().out_dir; }

/// The β grid of the paper's sweeps (Figs. 3-4, Table II).
inline std::vector<double> PaperBudgets() {
  return {0.03, 0.05, 0.07, 0.10, 0.20, 0.30};
}

/// The four POI categories in paper order.
inline std::vector<synth::PoiCategory> PaperCategories() {
  return {synth::PoiCategory::kSchool, synth::PoiCategory::kHospital,
          synth::PoiCategory::kVaxCenter, synth::PoiCategory::kJobCenter};
}

// ---------------------------------------------------------------------------
// Cities

/// One evaluation city with its pipeline and calibrated gravity settings.
/// The city lives behind a unique_ptr so the pipeline's pointer to it stays
/// valid when a BenchCity is moved (e.g. into a vector).
struct BenchCity {
  std::string name;
  std::unique_ptr<synth::City> city;
  std::unique_ptr<core::SsrPipeline> pipeline;
  core::GravityConfig gravity;
};

inline BenchCity MakeBenchCity(const synth::CitySpec& spec) {
  BenchCity bc;
  bc.name = spec.name;
  auto built = synth::BuildCity(spec);
  if (!built.ok()) {
    std::fprintf(stderr, "city build failed: %s\n",
                 built.status().ToString().c_str());
    std::exit(1);
  }
  bc.city = std::make_unique<synth::City>(std::move(built).value());
  bc.pipeline = std::make_unique<core::SsrPipeline>(bc.city.get(),
                                                    gtfs::WeekdayAmPeak());
  bc.gravity = core::CalibratedGravityConfig(spec);
  bc.gravity.sample_rate_per_hour = BenchRate();
  return bc;
}

/// Both evaluation cities at the configured scale.
inline std::vector<BenchCity> MakeBothCities() {
  std::vector<BenchCity> cities;
  cities.push_back(
      MakeBenchCity(synth::CitySpec::Brindale(BenchScale(), BenchSeed())));
  cities.push_back(
      MakeBenchCity(synth::CitySpec::Covely(BenchScale(), BenchSeed() + 1)));
  return cities;
}

// ---------------------------------------------------------------------------
// Output

/// Writes a CSV next to printing it; failures are reported but non-fatal.
inline void EmitCsv(const util::CsvTable& table, const std::string& filename) {
  std::string path = OutDir() + "/" + filename;
  auto status = table.WriteFile(path);
  if (status.ok()) {
    std::printf("  -> wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "  (csv write failed: %s)\n",
                 status.ToString().c_str());
  }
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("  scale=%.2f  rate=%d/hr  seed=%llu\n", BenchScale(),
              BenchRate(), static_cast<unsigned long long>(BenchSeed()));
  std::printf("================================================================\n");
}

/// The one JSON emitter behind every BENCH_*.json document: stable
/// two-space indentation, printf fixed-precision floats, full string
/// escaping. Identical inputs produce identical bytes, which is what the
/// baseline diff and the resume byte-identity guarantee stand on.
class JsonWriter {
 public:
  JsonWriter& BeginObject(const char* key = nullptr) {
    Item(key);
    out_ += "{";
    scopes_.push_back('o');
    first_.push_back(true);
    return *this;
  }
  JsonWriter& EndObject() { return Close('}'); }

  JsonWriter& BeginArray(const char* key = nullptr) {
    Item(key);
    out_ += "[";
    scopes_.push_back('a');
    first_.push_back(true);
    return *this;
  }
  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& String(const char* key, const std::string& value) {
    Item(key);
    out_ += "\"" + Escape(value) + "\"";
    return *this;
  }
  /// Fixed-precision float — the precision is part of the output contract
  /// (baselines compare number tokens textually).
  JsonWriter& Fixed(const char* key, double value, int decimals) {
    Item(key);
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    out_ += buffer;
    return *this;
  }
  JsonWriter& Int(const char* key, long long value) {
    Item(key);
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& Uint(const char* key, unsigned long long value) {
    Item(key);
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& Bool(const char* key, bool value) {
    Item(key);
    out_ += value ? "true" : "false";
    return *this;
  }

  /// The finished document (with trailing newline). The writer is spent.
  std::string Take() {
    out_ += "\n";
    return std::move(out_);
  }

  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out += buffer;
          } else {
            out.push_back(c);
          }
      }
    }
    return out;
  }

 private:
  void Item(const char* key) {
    if (!scopes_.empty()) {
      out_ += first_.back() ? "\n" : ",\n";
      first_.back() = false;
      out_.append(scopes_.size() * 2, ' ');
    }
    if (key != nullptr) {
      out_ += "\"" + Escape(key) + "\": ";
    }
  }

  JsonWriter& Close(char bracket) {
    bool empty = first_.back();
    scopes_.pop_back();
    first_.pop_back();
    if (!empty) {
      out_ += "\n";
      out_.append(scopes_.size() * 2, ' ');
    }
    out_.push_back(bracket);
    return *this;
  }

  std::string out_;
  std::vector<char> scopes_;  // 'o' object, 'a' array
  std::vector<bool> first_;
};

/// Writes a bench's BENCH_<name>.json to OutDir(). Non-fatal on IO error
/// (the document also travels back to the caller inside RunResult).
inline void EmitBenchJson(const std::string& bench, const std::string& json) {
  std::string path = OutDir() + "/BENCH_" + bench + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "  (json write failed: %s)\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("  -> wrote %s\n", path.c_str());
}

// ---------------------------------------------------------------------------
// Latency summaries

/// Order-statistic summary with explicit provenance: `n` is the sample
/// count, and a quantile computed from fewer samples than its rank needs
/// (p99 of 7 requests *is* the max, not a p99) carries an approx flag so
/// the regression diff never gates on it.
struct LatencySummary {
  size_t n = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  bool p95_approx = true;
  bool p99_approx = true;
};

inline LatencySummary Summarise(std::vector<double> latencies_ms) {
  LatencySummary s;
  s.n = latencies_ms.size();
  if (s.n == 0) return s;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  double total = 0.0;
  for (double v : latencies_ms) total += v;
  s.mean_ms = total / static_cast<double>(s.n);
  auto quantile = [&](double q) {
    size_t index = static_cast<size_t>(q * static_cast<double>(s.n - 1));
    return latencies_ms[index];
  };
  s.p50_ms = quantile(0.50);
  s.p95_ms = quantile(0.95);
  s.p99_ms = quantile(0.99);
  // A p-quantile needs at least 1/(1-p) samples before it is a distinct
  // order statistic; below that it collapses onto the max.
  s.p95_approx = s.n < 20;
  s.p99_approx = s.n < 100;
  return s;
}

/// Emits one phase/summary latency block through the shared writer:
/// requests, qps, mean/p50/p95/p99 with approx flags.
inline void WriteLatency(JsonWriter& w, const LatencySummary& s,
                         double seconds) {
  w.Uint("requests", s.n);
  w.Fixed("seconds", seconds, 6);
  w.Fixed("qps", seconds > 0 ? static_cast<double>(s.n) / seconds : 0.0, 1);
  w.Fixed("mean_ms", s.mean_ms, 3);
  w.Fixed("p50_ms", s.p50_ms, 3);
  w.Fixed("p95_ms", s.p95_ms, 3);
  w.Bool("p95_approx", s.p95_approx);
  w.Fixed("p99_ms", s.p99_ms, 3);
  w.Bool("p99_approx", s.p99_approx);
}

}  // namespace staq::bench
