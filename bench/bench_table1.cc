// Table I — Matrix composition: size of the full TODAM M_f vs the
// gravity-constructed M_g and the percentage reduction, for both cities
// and all four POI categories.
//
// Two modes in one run:
//  1. Paper-scale counting: full zone/POI counts (3217 / 1014 zones), no
//     trips materialised — reproduces the magnitude of the paper's table.
//  2. Bench-scale verification: the configured scale with a materialised
//     M_g, verifying the counting path equals the built matrix.
#include <cstdio>

#include "bench_common.h"
#include "bench_registry.h"
#include "core/todam.h"

namespace staq::bench {
namespace {

void RunAtScale(double scale, bool materialize, util::CsvTable* csv) {
  std::vector<synth::CitySpec> specs{
      synth::CitySpec::Brindale(scale, BenchSeed()),
      synth::CitySpec::Covely(scale, BenchSeed() + 1),
  };
  // The paper's |R| ~ 60 start times per pair (30/hr over the 2 h peak).
  int rate = materialize ? BenchRate() : 30;

  std::printf("%-10s %-11s %6s %14s %14s %8s\n", "city", "poi", "|P|",
              "full", "gravity", "%red");
  for (const synth::CitySpec& spec : specs) {
    auto built = synth::BuildCity(spec);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed\n");
      std::exit(1);
    }
    synth::City city = std::move(built).value();
    core::GravityConfig gravity = core::CalibratedGravityConfig(spec);
    gravity.sample_rate_per_hour = rate;

    for (synth::PoiCategory category : PaperCategories()) {
      auto pois = city.PoisOf(category);
      core::TodamBuilder builder(city.zones, pois, gtfs::WeekdayAmPeak(),
                                 gravity);
      uint64_t full = builder.FullTripCount();
      uint64_t grav;
      if (materialize) {
        core::Todam todam = builder.BuildGravity(BenchSeed());
        grav = todam.num_trips();
        // Invariant: the counting path agrees with materialisation.
        if (builder.GravityTripCount(BenchSeed()) != grav) {
          std::fprintf(stderr, "COUNT MISMATCH for %s/%s\n",
                       spec.name.c_str(), synth::PoiCategoryName(category));
          std::exit(1);
        }
      } else {
        grav = builder.GravityTripCount(BenchSeed());
      }
      double reduction =
          100.0 * (1.0 - static_cast<double>(grav) / static_cast<double>(full));
      std::printf("%-10s %-11s %6zu %14llu %14llu %7.1f%%\n",
                  spec.name.c_str(), synth::PoiCategoryName(category),
                  pois.size(), static_cast<unsigned long long>(full),
                  static_cast<unsigned long long>(grav), reduction);
      (void)csv->AddRow({spec.name, synth::PoiCategoryName(category),
                         util::CsvTable::Num(static_cast<int64_t>(pois.size())),
                         util::CsvTable::Num(static_cast<int64_t>(full)),
                         util::CsvTable::Num(static_cast<int64_t>(grav)),
                         util::CsvTable::Num(reduction, 1),
                         util::CsvTable::Num(scale, 2)});
    }
  }
}

}  // namespace

exp::RunResult RunTable1Bench() {
  PrintHeader("Table I: TODAM size, full vs gravity construction");
  util::CsvTable csv({"city", "poi", "num_pois", "full_trips", "gravity_trips",
                      "reduction_pct", "scale"});

  std::printf("\n--- paper scale (counting only; |R| = 60/pair) ---\n");
  RunAtScale(1.0, /*materialize=*/false, &csv);

  std::printf("\n--- bench scale %.2f (materialised M_g) ---\n", BenchScale());
  RunAtScale(BenchScale(), /*materialize=*/true, &csv);

  std::printf(
      "\nPaper reference (Table I): Birmingham reductions 97.9 / 78.6 / 86.5"
      " / 74.9 %%; Coventry 94.3 / 60.9 / 75.9 / 0.0 %%.\n"
      "Expected shape: larger POI sets reduce more; the 1-2 POI Covely job-"
      "centre set reduces ~0%%.\n");
  EmitCsv(csv, "table1_matrix_composition.csv");

  JsonWriter w;
  w.BeginObject();
  w.String("bench", "table1");
  w.Fixed("scale", BenchScale(), 4);
  w.Int("rate_per_hour", BenchRate());
  w.Uint("seed", BenchSeed());
  w.String("csv", "table1_matrix_composition.csv");
  w.Uint("csv_rows", csv.num_rows());
  w.EndObject();
  std::string json = w.Take();
  EmitBenchJson("table1", json);
  return {0, std::move(json)};
}

}  // namespace staq::bench
