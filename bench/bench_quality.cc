// Quality cell: one (city, poi, model, beta) point of the paper's sweeps.
//
// Unlike the grid benches (fig3/fig4/table2, which loop every combination
// internally), this bench evaluates exactly ONE configuration — the cell
// shape the staq::exp runner sweeps over. The runner's pivot tables
// (error vs budget, % SPQ reduction) are assembled from many quality
// cells, and the perfgate diff checks a checked-in quality baseline for
// metric drift (error ceilings, reduction floors).
//
// Cell parameters (via the `extra` side of BenchParams):
//   city   brindale | covely           (default brindale)
//   poi    school | hospital | vax_center | job_center   (default school)
//   model  OLS | MLP | COREG | MT | GNN                  (default MLP)
//   beta   labeling budget fraction                      (default 0.05)
//
// Output: BENCH_quality.json with jt_mae_min / mac_corr / class_accuracy
// plus the SPQ accounting (spqs, truth_spqs, spq_reduction_pct).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "bench_registry.h"

namespace staq::bench {

exp::RunResult RunQualityBench() {
  const std::string city_name = Params().Extra("city", "brindale");
  const std::string poi_name = Params().Extra("poi", "school");
  const std::string model_name = Params().Extra("model", "MLP");
  const double beta = std::atof(Params().Extra("beta", "0.05").c_str());

  PrintHeader("Quality cell: SSR error and SPQ reduction at one budget");
  std::printf("  city=%s poi=%s model=%s beta=%.2f\n", city_name.c_str(),
              poi_name.c_str(), model_name.c_str(), beta);

  if (beta <= 0.0 || beta > 1.0) {
    std::fprintf(stderr, "invalid beta %.4f (want 0 < beta <= 1)\n", beta);
    return {2, ""};
  }
  synth::CitySpec spec = synth::CitySpec::Brindale(BenchScale(), BenchSeed());
  if (city_name == "covely") {
    spec = synth::CitySpec::Covely(BenchScale(), BenchSeed() + 1);
  } else if (city_name != "brindale") {
    std::fprintf(stderr, "unknown city '%s'\n", city_name.c_str());
    return {2, ""};
  }
  synth::PoiCategory category = synth::PoiCategory::kSchool;
  bool poi_found = false;
  for (synth::PoiCategory c : PaperCategories()) {
    if (poi_name == synth::PoiCategoryName(c)) {
      category = c;
      poi_found = true;
    }
  }
  if (!poi_found) {
    std::fprintf(stderr, "unknown poi '%s'\n", poi_name.c_str());
    return {2, ""};
  }
  ml::ModelKind model = ml::ModelKind::kMlp;
  bool model_found = false;
  for (ml::ModelKind kind : ml::AllModelKinds()) {
    if (model_name == ml::ModelKindName(kind)) {
      model = kind;
      model_found = true;
    }
  }
  if (!model_found) {
    std::fprintf(stderr, "unknown model '%s'\n", model_name.c_str());
    return {2, ""};
  }

  BenchCity bc = MakeBenchCity(spec);
  auto pois = bc.city->PoisOf(category);
  core::Todam todam =
      bc.pipeline->BuildGravityTodam(pois, bc.gravity, BenchSeed());
  core::GroundTruth truth = bc.pipeline->ComputeGroundTruth(
      pois, todam, core::CostKind::kJourneyTime);

  core::PipelineConfig config;
  config.beta = beta;
  config.model = model;
  config.cost = core::CostKind::kJourneyTime;
  config.seed = BenchSeed();
  auto run = bc.pipeline->Run(pois, todam, config);
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline run failed: %s\n",
                 run.status().ToString().c_str());
    return {1, ""};
  }
  core::EvaluationMetrics m = Evaluate(truth, run.value());
  const double spq_reduction_pct =
      100.0 * (1.0 - static_cast<double>(run.value().spqs) /
                         static_cast<double>(truth.spqs));

  std::printf("  jt_mae=%.2f min  mac_corr=%.3f  class_acc=%.3f  "
              "SPQs %llu vs %llu truth (%.1f%% fewer)\n",
              m.mac_mae / 60.0, m.mac_corr, m.class_accuracy,
              static_cast<unsigned long long>(run.value().spqs),
              static_cast<unsigned long long>(truth.spqs), spq_reduction_pct);

  JsonWriter w;
  w.BeginObject();
  w.String("bench", "quality");
  w.String("city", bc.name);
  w.String("poi", poi_name);
  w.String("model", model_name);
  w.Fixed("beta", beta, 4);
  w.Fixed("scale", BenchScale(), 4);
  w.Int("rate_per_hour", BenchRate());
  w.Uint("seed", BenchSeed());
  w.Uint("zones", bc.city->zones.size());
  w.Uint("pois", pois.size());
  w.Uint("trips", todam.num_trips());
  w.Uint("labeled_zones", run.value().labeled.size());
  w.Fixed("jt_mae_min", m.mac_mae / 60.0, 4);
  w.Fixed("mac_corr", m.mac_corr, 4);
  w.Fixed("class_accuracy", m.class_accuracy, 4);
  w.Uint("spqs", run.value().spqs);
  w.Uint("truth_spqs", truth.spqs);
  w.Fixed("spq_reduction_pct", spq_reduction_pct, 2);
  w.Fixed("labeling_s", run.value().timings.labeling_s, 6);
  w.Fixed("training_s", run.value().timings.training_s, 6);
  w.EndObject();
  std::string json = w.Take();
  EmitBenchJson("quality", json);
  return {0, std::move(json)};
}

}  // namespace staq::bench
