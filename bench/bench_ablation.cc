// Ablation benches for the design choices DESIGN.md calls out:
//
//  A. Distance-decay scale: how the gravity e-folding distance trades the
//     Table-I matrix reduction against the walk-only trip share that
//     §V-B2 identifies as the driver of weak ACSD correlations.
//  B. Feature-group ablation: geometry-only vs + hop-tree connectivity vs
//     + interchanges vs the full 20-dim descriptor (MLP, beta = 5%).
//  C. Keep-scale sweep: thinner gravity matrices vs labeling cost and
//     estimate quality at a fixed beta.
#include <cstdio>
#include <set>
#include <thread>

#include "bench_common.h"
#include "bench_registry.h"

namespace staq::bench {
namespace {

void DecayScaleSweep(BenchCity& bc, util::CsvTable* csv) {
  std::printf("\n--- A. distance-decay scale sweep (%s, schools) ---\n",
              bc.name.c_str());
  std::printf("%10s %12s %10s %12s\n", "decay_m", "gravity_trips", "%red",
              "walk_share");
  auto pois = bc.city->PoisOf(synth::PoiCategory::kSchool);
  router::WalkParams walk;
  for (double decay : {1500.0, 3000.0, 6000.0, 12000.0}) {
    core::GravityConfig gravity = bc.gravity;
    gravity.decay_scale_m = decay;
    core::TodamBuilder builder(bc.city->zones, pois, gtfs::WeekdayAmPeak(),
                               gravity);
    core::Todam todam = builder.BuildGravity(BenchSeed());
    double reduction = 100.0 * (1.0 - static_cast<double>(todam.num_trips()) /
                                          builder.FullTripCount());
    double walk_share = todam.WalkOnlyFraction(
        bc.city->zones, pois, walk.ReachMeters(walk.max_access_walk_s));
    std::printf("%10.0f %12llu %9.1f%% %11.1f%%\n", decay,
                static_cast<unsigned long long>(todam.num_trips()), reduction,
                100 * walk_share);
    (void)csv->AddRow({"decay_sweep", bc.name, util::CsvTable::Num(decay, 0),
                       util::CsvTable::Num(static_cast<int64_t>(todam.num_trips())),
                       util::CsvTable::Num(reduction, 2),
                       util::CsvTable::Num(walk_share, 4)});
  }
}

void FeatureAblation(BenchCity& bc, util::CsvTable* csv) {
  std::printf("\n--- B. feature-group ablation (%s, vax centres, MLP, "
              "beta=5%%) ---\n", bc.name.c_str());
  auto pois = bc.city->PoisOf(synth::PoiCategory::kVaxCenter);
  core::Todam todam =
      bc.pipeline->BuildGravityTodam(pois, bc.gravity, BenchSeed());
  core::GroundTruth truth = bc.pipeline->ComputeGroundTruth(
      pois, todam, core::CostKind::kJourneyTime);
  ml::Matrix full = bc.pipeline->feature_extractor().ExtractZoneMatrix(
      pois, todam.alpha());

  struct Group {
    const char* name;
    std::set<size_t> keep;  // feature indices retained
  };
  // Indices follow core/features.cc: 0-1 geometry, 2-9 hop-tree leaves,
  // 10-15 interchanges + high-frequency, 16-19 origin coverage.
  std::vector<Group> groups{
      {"geometry_only", {0, 1}},
      {"+hoptree", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
      {"+interchange", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}},
      {"full", {}},  // empty = all
  };

  std::printf("%-15s %10s %10s %10s\n", "features", "mac_corr", "mae_min",
              "acsd_corr");
  for (const Group& group : groups) {
    // Excluded columns are zeroed: constant columns standardise to zero,
    // removing their influence without reshaping the matrix.
    ml::Matrix masked = full;
    if (!group.keep.empty()) {
      for (size_t r = 0; r < masked.rows(); ++r) {
        for (size_t c = 0; c < masked.cols(); ++c) {
          if (group.keep.count(c) == 0) masked(r, c) = 0.0;
        }
      }
    }
    core::PipelineConfig config;
    config.beta = 0.05;
    config.model = ml::ModelKind::kMlp;
    config.seed = BenchSeed();
    auto run = bc.pipeline->Run(pois, todam, config, &masked, 0.0);
    if (!run.ok()) continue;
    core::EvaluationMetrics m = Evaluate(truth, run.value());
    std::printf("%-15s %10.3f %10.2f %10.3f\n", group.name, m.mac_corr,
                m.mac_mae / 60, m.acsd_corr);
    (void)csv->AddRow({"feature_ablation", bc.name, group.name,
                       util::CsvTable::Num(m.mac_corr, 3),
                       util::CsvTable::Num(m.mac_mae / 60, 3),
                       util::CsvTable::Num(m.acsd_corr, 3)});
  }
}

void KeepScaleSweep(BenchCity& bc, util::CsvTable* csv) {
  std::printf("\n--- C. keep-scale sweep (%s, schools, MLP, beta=10%%) ---\n",
              bc.name.c_str());
  std::printf("%10s %12s %10s %10s %12s\n", "keep", "trips", "label_s",
              "mac_corr", "mae_min");
  auto pois = bc.city->PoisOf(synth::PoiCategory::kSchool);
  for (double factor : {0.25, 0.5, 1.0, 2.0}) {
    core::GravityConfig gravity = bc.gravity;
    gravity.keep_scale *= factor;
    core::Todam todam =
        bc.pipeline->BuildGravityTodam(pois, gravity, BenchSeed());
    core::GroundTruth truth = bc.pipeline->ComputeGroundTruth(
        pois, todam, core::CostKind::kJourneyTime);
    core::PipelineConfig config;
    config.beta = 0.10;
    config.model = ml::ModelKind::kMlp;
    config.seed = BenchSeed();
    auto run = bc.pipeline->Run(pois, todam, config);
    if (!run.ok()) continue;
    core::EvaluationMetrics m = Evaluate(truth, run.value());
    std::printf("%10.2f %12llu %10.2f %10.3f %12.2f\n", gravity.keep_scale,
                static_cast<unsigned long long>(todam.num_trips()),
                run.value().timings.labeling_s, m.mac_corr, m.mac_mae / 60);
    (void)csv->AddRow({"keep_sweep", bc.name,
                       util::CsvTable::Num(gravity.keep_scale, 3),
                       util::CsvTable::Num(static_cast<int64_t>(todam.num_trips())),
                       util::CsvTable::Num(m.mac_corr, 3),
                       util::CsvTable::Num(m.mac_mae / 60, 3)});
  }
}

void SamplingStrategyComparison(BenchCity& bc, util::CsvTable* csv) {
  std::printf("\n--- D. sampling strategies (%s, vax centres, MLP) ---\n",
              bc.name.c_str());
  auto pois = bc.city->PoisOf(synth::PoiCategory::kVaxCenter);
  core::Todam todam =
      bc.pipeline->BuildGravityTodam(pois, bc.gravity, BenchSeed());
  core::GroundTruth truth = bc.pipeline->ComputeGroundTruth(
      pois, todam, core::CostKind::kJourneyTime);
  util::Stopwatch watch;
  ml::Matrix features = bc.pipeline->feature_extractor().ExtractZoneMatrix(
      pois, todam.alpha());
  double features_s = watch.ElapsedSeconds();

  std::printf("%-16s %8s %10s %10s\n", "strategy", "beta", "mac_corr",
              "mae_min");
  for (double beta : {0.03, 0.05, 0.10}) {
    for (core::SamplingStrategy strategy :
         {core::SamplingStrategy::kRandom,
          core::SamplingStrategy::kSpatialSpread,
          core::SamplingStrategy::kFeatureDiverse}) {
      core::PipelineConfig config;
      config.beta = beta;
      config.model = ml::ModelKind::kMlp;
      config.sampling = strategy;
      config.seed = BenchSeed();
      auto run = bc.pipeline->Run(pois, todam, config, &features, features_s);
      if (!run.ok()) continue;
      core::EvaluationMetrics m = Evaluate(truth, run.value());
      std::printf("%-16s %7.0f%% %10.3f %10.2f\n",
                  core::SamplingStrategyName(strategy), beta * 100,
                  m.mac_corr, m.mac_mae / 60);
      (void)csv->AddRow({"sampling", bc.name,
                         core::SamplingStrategyName(strategy),
                         util::CsvTable::Num(beta, 2),
                         util::CsvTable::Num(m.mac_corr, 3),
                         util::CsvTable::Num(m.mac_mae / 60, 3)});
    }
  }
}

void ParallelLabelingSpeedup(BenchCity& bc, util::CsvTable* csv) {
  std::printf("\n--- E. parallel labeling speed-up (%s, schools, full "
              "labeling) ---\n", bc.name.c_str());
  std::printf("hardware threads available: %u (speed-up is bounded by "
              "this)\n", std::thread::hardware_concurrency());
  auto pois = bc.city->PoisOf(synth::PoiCategory::kSchool);
  core::Todam todam =
      bc.pipeline->BuildGravityTodam(pois, bc.gravity, BenchSeed());
  std::printf("%8s %10s %9s\n", "threads", "seconds", "speedup");
  double base_s = 0;
  for (int threads : {1, 2, 4, 8}) {
    util::Stopwatch watch;
    core::GroundTruth truth = bc.pipeline->ComputeGroundTruth(
        pois, todam, core::CostKind::kJourneyTime, {}, threads);
    double elapsed = watch.ElapsedSeconds();
    if (threads == 1) base_s = elapsed;
    std::printf("%8d %10.2f %8.2fx\n", threads, elapsed,
                base_s / std::max(elapsed, 1e-9));
    (void)csv->AddRow({"parallel_labeling", bc.name,
                       util::CsvTable::Num(static_cast<int64_t>(threads)),
                       util::CsvTable::Num(elapsed, 3),
                       util::CsvTable::Num(base_s / std::max(elapsed, 1e-9), 2),
                       util::CsvTable::Num(static_cast<int64_t>(truth.spqs))});
  }
}

}  // namespace

exp::RunResult RunAblationBench() {
  PrintHeader(
      "Ablations: decay scale, feature groups, keep scale, sampling "
      "strategies, parallel labeling");
  util::CsvTable csv({"experiment", "city", "x", "v1", "v2", "v3"});

  auto cities = MakeBothCities();
  for (BenchCity& bc : cities) {
    DecayScaleSweep(bc, &csv);
  }
  FeatureAblation(cities[0], &csv);
  KeepScaleSweep(cities[0], &csv);
  SamplingStrategyComparison(cities[0], &csv);
  ParallelLabelingSpeedup(cities[0], &csv);

  std::printf(
      "\nExpected shapes: flatter decay -> weaker reduction but lower walk-"
      "only share;\neach feature group adds MAC-corr over geometry alone; "
      "thinner matrices label\nfaster at mild quality cost; coverage-aware "
      "sampling helps most at tiny budgets;\nlabeling parallelises near-"
      "linearly (paper §II).\n");
  EmitCsv(csv, "ablation.csv");

  JsonWriter w;
  w.BeginObject();
  w.String("bench", "ablation");
  w.Fixed("scale", BenchScale(), 4);
  w.Int("rate_per_hour", BenchRate());
  w.Uint("seed", BenchSeed());
  w.String("csv", "ablation.csv");
  w.Uint("csv_rows", csv.num_rows());
  w.EndObject();
  std::string json = w.Take();
  EmitBenchJson("ablation", json);
  return {0, std::move(json)};
}

}  // namespace staq::bench
