// Fig. 4 — Generalized-access-cost (GAC) performance on vaccination-centre
// POIs: MAC correlation, ACSD correlation, accessibility-classification
// accuracy, and fairness-index error, per model x budget x city.
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "bench_registry.h"

namespace staq::bench {
namespace {

}  // namespace

exp::RunResult RunFig4Bench() {
  PrintHeader(
      "Fig. 4: GAC metrics on vaccination centres (MAC corr / ACSD corr / "
      "AC accuracy / FIE)");
  util::CsvTable csv({"city", "model", "beta", "mac_corr", "acsd_corr",
                      "class_accuracy", "fie"});

  auto budgets = PaperBudgets();
  auto models = ml::AllModelKinds();

  for (BenchCity& bc : MakeBothCities()) {
    auto pois = bc.city->PoisOf(synth::PoiCategory::kVaxCenter);
    core::Todam todam =
        bc.pipeline->BuildGravityTodam(pois, bc.gravity, BenchSeed());
    core::GroundTruth truth = bc.pipeline->ComputeGroundTruth(
        pois, todam, core::CostKind::kGeneralizedCost);

    util::Stopwatch feature_watch;
    ml::Matrix features = bc.pipeline->feature_extractor().ExtractZoneMatrix(
        pois, todam.alpha());
    double features_s = feature_watch.ElapsedSeconds();

    std::printf("\n=== %s (|P|=%zu, walk-only=%.1f%%) ===\n", bc.name.c_str(),
                pois.size(), 100 * truth.walk_only_fraction);

    // One run per (model, budget); the four grids print from stored
    // metrics.
    std::map<std::pair<int, double>, core::EvaluationMetrics> grid;
    for (ml::ModelKind model : models) {
      for (double beta : budgets) {
        core::PipelineConfig config;
        config.beta = beta;
        config.model = model;
        config.cost = core::CostKind::kGeneralizedCost;
        config.seed = BenchSeed();
        auto run =
            bc.pipeline->Run(pois, todam, config, &features, features_s);
        if (!run.ok()) continue;
        core::EvaluationMetrics m = Evaluate(truth, run.value());
        grid[{static_cast<int>(model), beta}] = m;
        (void)csv.AddRow({bc.name, ml::ModelKindName(model),
                          util::CsvTable::Num(beta, 2),
                          util::CsvTable::Num(m.mac_corr, 3),
                          util::CsvTable::Num(m.acsd_corr, 3),
                          util::CsvTable::Num(m.class_accuracy, 3),
                          util::CsvTable::Num(m.fie, 4)});
      }
    }

    struct MetricView {
      const char* title;
      double core::EvaluationMetrics::* field;
    };
    const MetricView views[] = {
        {"MAC corr", &core::EvaluationMetrics::mac_corr},
        {"ACSD corr", &core::EvaluationMetrics::acsd_corr},
        {"AC accuracy", &core::EvaluationMetrics::class_accuracy},
        {"FIE", &core::EvaluationMetrics::fie},
    };
    for (const MetricView& view : views) {
      std::printf("\n-- %s --\n%-7s", view.title, "model");
      for (double beta : budgets) std::printf("  b=%-4.0f%%", beta * 100);
      std::printf("\n");
      for (ml::ModelKind model : models) {
        std::printf("%-7s", ml::ModelKindName(model));
        for (double beta : budgets) {
          auto it = grid.find({static_cast<int>(model), beta});
          if (it == grid.end()) {
            std::printf("  %7s", "err");
          } else {
            std::printf("  %7.3f", it->second.*(view.field));
          }
        }
        std::printf("\n");
      }
    }
  }

  std::printf(
      "\nPaper reference (Fig. 4): MAC correlations high (~0.85 for MLP) "
      "even at low\nbudgets; ACSD correlation weaker and dropping at low "
      "budgets, worse in the\nsmaller (more walk-only) city; accuracy > 60%%"
      " for MLP at beta=5%% in Birmingham;\nFIE small everywhere.\n");
  EmitCsv(csv, "fig4_gac_metrics.csv");

  JsonWriter w;
  w.BeginObject();
  w.String("bench", "fig4");
  w.Fixed("scale", BenchScale(), 4);
  w.Int("rate_per_hour", BenchRate());
  w.Uint("seed", BenchSeed());
  w.String("csv", "fig4_gac_metrics.csv");
  w.Uint("csv_rows", csv.num_rows());
  w.EndObject();
  std::string json = w.Take();
  EmitBenchJson("fig4", json);
  return {0, std::move(json)};
}

}  // namespace staq::bench
