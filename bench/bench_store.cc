// Snapshot store benchmark: cold build vs warm start.
//
// Measures the full warm-start story of the snapshot store on one Brindale
// city:
//   cold   — AqServer construction (offline isochrone/hop-tree build) plus
//            the first exact query (full labeling sweep): the cost a
//            process pays every restart without snapshots
//   save   — SaveSnapshot of the materialised serving state, plus the
//            resulting file size and a full checksum verification pass
//   load   — LoadSnapshot alone, in both read modes (mmap zero-copy vs
//            buffered), isolating deserialisation cost
//   warm   — AqServer construction with Options::warm_start_path plus the
//            same first query answered from the restored label state: the
//            cost a restart pays with snapshots
//
// Correctness gates run before any number is reported: the warm server must
// actually warm-start (no silent cold fallback) and its answers must be
// bit-identical to the cold server's. The headline gate — warm start at
// least 10x faster than the cold build — fails the bench with exit code 1,
// so CI catches a regression that quietly turns the warm path cold.
//
// Output: a summary table on stdout and BENCH_store.json in STAQ_BENCH_OUT.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_registry.h"
#include "serve/server.h"
#include "store/snapshot.h"
#include "util/stopwatch.h"

namespace staq::bench {
namespace {

serve::AqRequest ExactRequest(synth::PoiCategory category,
                              const core::GravityConfig& gravity) {
  serve::AqRequest request;
  request.category = category;
  request.options.exact = true;
  request.options.gravity = gravity;
  request.options.seed = BenchSeed();
  return request;
}

bool BitIdentical(const core::AccessQueryResult& a,
                  const core::AccessQueryResult& b) {
  if (a.mac.size() != b.mac.size() || a.acsd.size() != b.acsd.size()) {
    return false;
  }
  auto same_bits = [](double x, double y) {
    uint64_t xb, yb;
    std::memcpy(&xb, &x, 8);
    std::memcpy(&yb, &y, 8);
    return xb == yb;
  };
  for (size_t z = 0; z < a.mac.size(); ++z) {
    if (!same_bits(a.mac[z], b.mac[z]) || !same_bits(a.acsd[z], b.acsd[z])) {
      return false;
    }
  }
  return same_bits(a.mean_mac, b.mean_mac) &&
         same_bits(a.mean_acsd, b.mean_acsd) &&
         a.gravity_trips == b.gravity_trips;
}

}  // namespace

exp::RunResult RunStoreBench() {
  PrintHeader("staq snapshot store: cold build vs warm start");

  const synth::CitySpec spec =
      synth::CitySpec::Brindale(BenchScale(), BenchSeed());
  core::GravityConfig gravity = core::CalibratedGravityConfig(spec);
  gravity.sample_rate_per_hour = BenchRate();
  const std::vector<serve::AqRequest> requests = {
      ExactRequest(synth::PoiCategory::kSchool, gravity),
      ExactRequest(synth::PoiCategory::kHospital, gravity),
  };

  auto build_city = [&]() {
    auto built = synth::BuildCity(spec);
    if (!built.ok()) {
      std::fprintf(stderr, "city build failed: %s\n",
                   built.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(built).value();
  };
  // City synthesis happens on both paths identically; build both up front
  // so neither phase's timing includes it.
  synth::City cold_city = build_city();
  synth::City warm_city = build_city();

  serve::AqServer::Options options;
  options.num_threads = 2;

  // --- cold: offline build + first exact answers ---------------------------
  util::Stopwatch cold_watch;
  serve::AqServer cold(std::move(cold_city), gtfs::WeekdayAmPeak(), options);
  std::vector<core::AccessQueryResult> cold_answers;
  for (const serve::AqRequest& request : requests) {
    auto answer = cold.Query(request);
    if (!answer.ok()) {
      std::fprintf(stderr, "cold query failed: %s\n",
                   answer.status().ToString().c_str());
      return {1, ""};
    }
    cold_answers.push_back(std::move(answer).value());
  }
  const double cold_seconds = cold_watch.ElapsedSeconds();
  const size_t num_zones = cold.base_city().zones.size();
  std::printf("  cold build + first answers : %8.3f s  (%zu zones)\n",
              cold_seconds, num_zones);

  // --- save + verify --------------------------------------------------------
  const std::string path = OutDir() + "/bench_store_snapshot.staq";
  util::Stopwatch save_watch;
  auto saved = cold.ExportSnapshot(path);
  const double save_seconds = save_watch.ElapsedSeconds();
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return {1, ""};
  }
  auto info = store::InspectSnapshot(path);
  if (!info.ok()) {
    std::fprintf(stderr, "inspect failed: %s\n",
                 info.status().ToString().c_str());
    return {1, ""};
  }
  const uint64_t file_bytes = info.value().file_size;
  util::Stopwatch verify_watch;
  auto verified = store::VerifySnapshot(path);
  const double verify_seconds = verify_watch.ElapsedSeconds();
  if (!verified.ok()) {
    std::fprintf(stderr, "verify failed: %s\n", verified.ToString().c_str());
    return {1, ""};
  }
  std::printf("  save                       : %8.3f s  (%.2f MiB, "
              "verify %.3f s)\n",
              save_seconds, static_cast<double>(file_bytes) / (1 << 20),
              verify_seconds);

  // --- load alone, both read modes -----------------------------------------
  double load_seconds[2] = {0, 0};
  const char* mode_names[2] = {"mmap", "buffered"};
  for (int m = 0; m < 2; ++m) {
    store::Reader::Options read_options;
    read_options.mode = m == 0 ? store::Reader::Mode::kMmap
                               : store::Reader::Mode::kBuffered;
    util::Stopwatch load_watch;
    auto restored = store::LoadSnapshot(path, read_options);
    load_seconds[m] = load_watch.ElapsedSeconds();
    if (!restored.ok()) {
      std::fprintf(stderr, "load (%s) failed: %s\n", mode_names[m],
                   restored.status().ToString().c_str());
      return {1, ""};
    }
    std::printf("  load (%-8s)            : %8.3f s\n", mode_names[m],
                load_seconds[m]);
  }

  // --- warm: load + publish + same first answers ---------------------------
  serve::AqServer::Options warm_options = options;
  warm_options.warm_start_path = path;
  util::Stopwatch warm_watch;
  serve::AqServer warm(std::move(warm_city), gtfs::WeekdayAmPeak(),
                       warm_options);
  std::vector<core::AccessQueryResult> warm_answers;
  for (const serve::AqRequest& request : requests) {
    auto answer = warm.Query(request);
    if (!answer.ok()) {
      std::fprintf(stderr, "warm query failed: %s\n",
                   answer.status().ToString().c_str());
      return {1, ""};
    }
    warm_answers.push_back(std::move(answer).value());
  }
  const double warm_seconds = warm_watch.ElapsedSeconds();
  std::printf("  warm start + first answers : %8.3f s\n", warm_seconds);

  // --- gates ----------------------------------------------------------------
  if (!warm.warm_started()) {
    std::fprintf(stderr,
                 "GATE FAILED: server fell back to a cold build instead of "
                 "warm-starting from %s\n",
                 path.c_str());
    return {1, ""};
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!BitIdentical(cold_answers[i], warm_answers[i])) {
      std::fprintf(stderr,
                   "GATE FAILED: warm answer %zu differs from cold build\n",
                   i);
      return {1, ""};
    }
  }
  const double speedup =
      warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0;
  std::printf("  speedup                    : %8.1fx (gate: >= 10x)\n",
              speedup);
  bool gate_passed = speedup >= 10.0;
  if (!gate_passed) {
    std::fprintf(stderr,
                 "GATE FAILED: warm start %.1fx faster than cold build, "
                 "gate requires >= 10x\n",
                 speedup);
  }

  JsonWriter w;
  w.BeginObject();
  w.String("bench", "store");
  w.String("city", spec.name);
  w.Fixed("scale", BenchScale(), 4);
  w.Int("rate_per_hour", BenchRate());
  w.Uint("seed", BenchSeed());
  w.Uint("zones", num_zones);
  w.Uint("label_states", requests.size());
  w.Fixed("cold_seconds", cold_seconds, 6);
  w.Fixed("save_seconds", save_seconds, 6);
  w.Fixed("verify_seconds", verify_seconds, 6);
  w.Uint("file_bytes", file_bytes);
  w.Fixed("load_mmap_seconds", load_seconds[0], 6);
  w.Fixed("load_buffered_seconds", load_seconds[1], 6);
  w.Fixed("warm_seconds", warm_seconds, 6);
  w.Fixed("speedup", speedup, 2);
  w.Fixed("speedup_gate", 10.0, 1);
  w.Bool("gate_passed", gate_passed);
  w.Bool("bit_identical", true);
  w.EndObject();
  std::string json = w.Take();
  EmitBenchJson("store", json);
  std::remove(path.c_str());

  int exit_code = gate_passed ? 0 : 1;
  if (!gate_passed && Params().relax_gates) {
    std::printf("  (gate relaxed: reporting only)\n");
    exit_code = 0;
  }
  return {exit_code, std::move(json)};
}

}  // namespace staq::bench
