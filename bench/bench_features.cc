// Micro-benchmarks for the offline structures and online feature
// extraction (§IV-A/B, complexity analysis §IV-E): isochrone computation,
// hop-tree construction, interchange identification, and per-OD / per-zone
// feature extraction.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/features.h"
#include "core/hoptree.h"
#include "core/interchange.h"
#include "core/isochrone.h"
#include "util/rng.h"

namespace staq::bench {
namespace {

struct FeatureFixture {
  explicit FeatureFixture(synth::CitySpec spec)
      : city(std::move(synth::BuildCity(spec)).value()),
        isochrones(city, core::IsochroneConfig{}),
        trees(city, isochrones, gtfs::WeekdayAmPeak()),
        extractor(&city, &isochrones, &trees) {}

  synth::City city;
  core::IsochroneSet isochrones;
  core::HopTreeSet trees;
  core::FeatureExtractor extractor;
};

FeatureFixture& Fixture() {
  static FeatureFixture* fixture =
      new FeatureFixture(synth::CitySpec::Brindale(BenchScale(), BenchSeed()));
  return *fixture;
}

void BM_IsochroneSingle(benchmark::State& state) {
  FeatureFixture& f = Fixture();
  util::Rng rng(1);
  for (auto _ : state) {
    uint32_t z = static_cast<uint32_t>(rng.UniformU64(f.city.zones.size()));
    geo::Polygon iso = core::WalkingIsochrone(f.city.road, f.city.zone_node[z],
                                              core::IsochroneConfig{});
    benchmark::DoNotOptimize(iso.size());
  }
}
BENCHMARK(BM_IsochroneSingle)->Unit(benchmark::kMicrosecond);

void BM_IsochroneSetBuild(benchmark::State& state) {
  FeatureFixture& f = Fixture();
  for (auto _ : state) {
    core::IsochroneSet set(f.city, core::IsochroneConfig{});
    benchmark::DoNotOptimize(set.size());
  }
  state.counters["zones"] = static_cast<double>(f.city.zones.size());
}
BENCHMARK(BM_IsochroneSetBuild)->Unit(benchmark::kMillisecond);

void BM_HopTreeSetBuild(benchmark::State& state) {
  // The paper's offline pre-computation phase for one time interval.
  FeatureFixture& f = Fixture();
  for (auto _ : state) {
    core::HopTreeSet trees(f.city, f.isochrones, gtfs::WeekdayAmPeak());
    benchmark::DoNotOptimize(trees.num_zones());
  }
  state.counters["zones"] = static_cast<double>(f.city.zones.size());
}
BENCHMARK(BM_HopTreeSetBuild)->Unit(benchmark::kMillisecond);

void BM_HopTreeRetrieval(benchmark::State& state) {
  // §IV-A claims O(1) retrieval; this is the lookup plus a leaf Find.
  FeatureFixture& f = Fixture();
  util::Rng rng(2);
  for (auto _ : state) {
    uint32_t z = static_cast<uint32_t>(rng.UniformU64(f.city.zones.size()));
    uint32_t target =
        static_cast<uint32_t>(rng.UniformU64(f.city.zones.size()));
    const core::HopTree& tree = f.trees.Outbound(z);
    benchmark::DoNotOptimize(tree.Find(target));
  }
}
BENCHMARK(BM_HopTreeRetrieval)->Unit(benchmark::kNanosecond);

void BM_InterchangeIdentification(benchmark::State& state) {
  // §IV-B1: k-NN (k=1) over the inbound leaves per outbound leaf.
  FeatureFixture& f = Fixture();
  util::Rng rng(3);
  for (auto _ : state) {
    uint32_t o = static_cast<uint32_t>(rng.UniformU64(f.city.zones.size()));
    uint32_t d = static_cast<uint32_t>(rng.UniformU64(f.city.zones.size()));
    auto ics = core::FindInterchanges(f.trees.Outbound(o), f.trees.Inbound(d),
                                      f.isochrones);
    benchmark::DoNotOptimize(ics.size());
  }
}
BENCHMARK(BM_InterchangeIdentification)->Unit(benchmark::kMicrosecond);

void BM_OdFeatureVector(benchmark::State& state) {
  // The full per-(z_i, p_j) online feature computation of §IV-B2.
  FeatureFixture& f = Fixture();
  util::Rng rng(4);
  double out[core::kNumFeatures];
  for (auto _ : state) {
    uint32_t z = static_cast<uint32_t>(rng.UniformU64(f.city.zones.size()));
    const synth::Poi& poi =
        f.city.pois[rng.UniformU64(f.city.pois.size())];
    f.extractor.ExtractOd(z, poi, out);
    benchmark::DoNotOptimize(out[0]);
  }
}
BENCHMARK(BM_OdFeatureVector)->Unit(benchmark::kMicrosecond);

void BM_ZoneFeatureMatrix(benchmark::State& state) {
  // Aggregated |Z| x d matrix over the vax-centre POI set.
  FeatureFixture& f = Fixture();
  auto pois = f.city.PoisOf(synth::PoiCategory::kVaxCenter);
  auto alpha = core::AttractivenessMatrix(f.city.zones, pois, 3000);
  for (auto _ : state) {
    ml::Matrix features = f.extractor.ExtractZoneMatrix(pois, alpha);
    benchmark::DoNotOptimize(features.row(0));
  }
  state.counters["zones"] = static_cast<double>(f.city.zones.size());
  state.counters["pois"] = static_cast<double>(pois.size());
}
BENCHMARK(BM_ZoneFeatureMatrix)->Unit(benchmark::kMillisecond);

void BM_GravityTodamBuild(benchmark::State& state) {
  FeatureFixture& f = Fixture();
  auto pois = f.city.PoisOf(synth::PoiCategory::kSchool);
  core::GravityConfig gravity = core::CalibratedGravityConfig(f.city.spec);
  gravity.sample_rate_per_hour = BenchRate();
  core::TodamBuilder builder(f.city.zones, pois, gtfs::WeekdayAmPeak(),
                             gravity);
  for (auto _ : state) {
    core::Todam todam = builder.BuildGravity(BenchSeed());
    benchmark::DoNotOptimize(todam.num_trips());
  }
}
BENCHMARK(BM_GravityTodamBuild)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace staq::bench

BENCHMARK_MAIN();
