// SSR training throughput: fast kernels vs the original implementations.
//
// Training is the third cost component of Table II, and PR "fast SSR
// kernels" rebuilt it: blocked GEMM/GEMV under ml::Matrix, incremental
// cached kNN screening under COREG, and mini-batch forward/backward for the
// neural models. Every fast path is bit-identical to the implementation it
// replaced, and the originals are kept behind config foils:
//   COREG  use_seed_screening  — full-rescan tentative add/remove screening
//   MLP    per_sample_updates  — one-sample-at-a-time forward/backward
//   MT     per_sample_updates  — ditto, plus per-sample noise/teacher passes
// This bench fits every model both ways on a Table-VI-like dataset
// (3217·scale zones, 20 features, β = 0.05), checks the predictions (and
// COREG's pseudo-label count) bit-identical before reporting, then prints
// fit/predict timings and speedups.
//
// Gate: COREG fit speedup must be >= 3x (the PR's acceptance floor); the
// binary exits non-zero otherwise, so CI can run it as a perf regression
// test. Output: paper-style table on stdout and BENCH_ml.json in
// STAQ_BENCH_OUT.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_registry.h"
#include "ml/coreg.h"
#include "ml/gnn.h"
#include "ml/mean_teacher.h"
#include "ml/mlp.h"
#include "ml/ols.h"
#include "testing_dataset.h"
#include "util/stopwatch.h"

namespace staq::bench {
namespace {

constexpr double kCoregFitSpeedupGate = 3.0;

struct Timed {
  double fit_s = 0.0;
  double predict_s = 0.0;
  std::vector<double> predictions;
  int coreg_pseudo_labels = -1;
};

Timed FitAndPredict(ml::SsrModel* model, const ml::Dataset& data) {
  Timed t;
  util::Stopwatch watch;
  auto status = model->Fit(data);
  t.fit_s = watch.ElapsedSeconds();
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s Fit failed: %s\n", model->name(),
                 status.ToString().c_str());
    std::exit(1);
  }
  watch.Reset();
  t.predictions = model->Predict();
  t.predict_s = watch.ElapsedSeconds();
  if (auto* coreg = dynamic_cast<ml::Coreg*>(model)) {
    t.coreg_pseudo_labels = coreg->pseudo_labels_added();
  }
  return t;
}

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    // memcmp-style equality: NaNs would differ, and they should.
    if (a[i] != b[i]) return false;
  }
  return true;
}

struct ModelReport {
  std::string name;
  Timed fast;
  bool has_foil = false;
  Timed foil;
  bool bit_identical = true;
};

}  // namespace

exp::RunResult RunMlBench() {
  PrintHeader("SSR training throughput: fast kernels vs seed implementations");

  const size_t zones = std::max<size_t>(
      64, static_cast<size_t>(std::lround(3217.0 * BenchScale())));
  const size_t features = 20;
  const double beta = 0.05;
  ml::Dataset data = MakeZoneLikeDataset(zones, features, beta, BenchSeed());
  const int threads = Params().threads > 0
                          ? Params().threads
                          : static_cast<int>(
                                std::max(1u, std::thread::hardware_concurrency()));
  std::printf("  zones=%zu  features=%zu  beta=%.2f  labeled=%zu  threads=%d\n",
              zones, features, beta, data.labeled.size(), threads);

  std::vector<ModelReport> reports;

  {
    ModelReport r;
    r.name = "OLS";
    ml::OlsRegressor model;
    r.fast = FitAndPredict(&model, data);
    reports.push_back(std::move(r));
  }
  {
    ModelReport r;
    r.name = "MLP";
    ml::MlpConfig fast_cfg;
    fast_cfg.threads = threads;
    ml::MlpRegressor fast(fast_cfg);
    r.fast = FitAndPredict(&fast, data);
    ml::MlpConfig foil_cfg;
    foil_cfg.per_sample_updates = true;
    ml::MlpRegressor foil(foil_cfg);
    r.foil = FitAndPredict(&foil, data);
    r.has_foil = true;
    r.bit_identical = BitIdentical(r.fast.predictions, r.foil.predictions);
    reports.push_back(std::move(r));
  }
  {
    ModelReport r;
    r.name = "COREG";
    ml::CoregConfig fast_cfg;
    fast_cfg.threads = threads;
    ml::Coreg fast(fast_cfg);
    r.fast = FitAndPredict(&fast, data);
    ml::CoregConfig foil_cfg;
    foil_cfg.use_seed_screening = true;
    ml::Coreg foil(foil_cfg);
    r.foil = FitAndPredict(&foil, data);
    r.has_foil = true;
    r.bit_identical =
        BitIdentical(r.fast.predictions, r.foil.predictions) &&
        r.fast.coreg_pseudo_labels == r.foil.coreg_pseudo_labels;
    reports.push_back(std::move(r));
  }
  {
    ModelReport r;
    r.name = "MT";
    ml::MeanTeacherConfig fast_cfg;
    ml::MeanTeacher fast(fast_cfg);
    r.fast = FitAndPredict(&fast, data);
    ml::MeanTeacherConfig foil_cfg;
    foil_cfg.per_sample_updates = true;
    ml::MeanTeacher foil(foil_cfg);
    r.foil = FitAndPredict(&foil, data);
    r.has_foil = true;
    r.bit_identical = BitIdentical(r.fast.predictions, r.foil.predictions);
    reports.push_back(std::move(r));
  }
  {
    ModelReport r;
    r.name = "GNN";
    ml::GnnRegressor model;
    r.fast = FitAndPredict(&model, data);
    reports.push_back(std::move(r));
  }

  // Equivalence gate first: a speedup for a path that changes results
  // would be meaningless.
  for (const ModelReport& r : reports) {
    if (r.has_foil && !r.bit_identical) {
      std::fprintf(stderr,
                   "FATAL: %s fast path is not bit-identical to its foil\n",
                   r.name.c_str());
      return {1, ""};
    }
  }
  std::printf("  all fast paths bit-identical to their foils\n\n");

  std::printf("  %-7s %10s %10s %12s %12s %9s %9s\n", "model", "fit_s",
              "predict_s", "foil_fit_s", "zones/s", "fit_spd", "pred_spd");
  for (const ModelReport& r : reports) {
    double zps = static_cast<double>(zones) / r.fast.predict_s;
    if (r.has_foil) {
      std::printf("  %-7s %10.3f %10.4f %12.3f %12.0f %8.2fx %8.2fx\n",
                  r.name.c_str(), r.fast.fit_s, r.fast.predict_s, r.foil.fit_s,
                  zps, r.foil.fit_s / r.fast.fit_s,
                  r.foil.predict_s / r.fast.predict_s);
    } else {
      std::printf("  %-7s %10.3f %10.4f %12s %12.0f %9s %9s\n", r.name.c_str(),
                  r.fast.fit_s, r.fast.predict_s, "-", zps, "-", "-");
    }
  }

  double coreg_speedup = 0.0;
  for (const ModelReport& r : reports) {
    if (r.name == "COREG") coreg_speedup = r.foil.fit_s / r.fast.fit_s;
  }
  bool gate_passed = coreg_speedup >= kCoregFitSpeedupGate;
  std::printf("\n  COREG fit speedup %.2fx (gate >= %.1fx): %s\n",
              coreg_speedup, kCoregFitSpeedupGate,
              gate_passed ? "PASS" : "FAIL");

  JsonWriter w;
  w.BeginObject();
  w.String("bench", "ml");
  w.Fixed("scale", BenchScale(), 4);
  w.Uint("seed", BenchSeed());
  w.Uint("zones", zones);
  w.Uint("features", features);
  w.Fixed("beta", beta, 2);
  w.Uint("labeled", data.labeled.size());
  w.Int("threads", threads);
  w.BeginArray("models");
  for (const ModelReport& r : reports) {
    w.BeginObject();
    w.String("name", r.name);
    w.Fixed("fit_s", r.fast.fit_s, 6);
    w.Fixed("predict_s", r.fast.predict_s, 6);
    w.Fixed("predict_zones_per_s",
            static_cast<double>(zones) / r.fast.predict_s, 1);
    if (r.has_foil) {
      w.Fixed("foil_fit_s", r.foil.fit_s, 6);
      w.Fixed("foil_predict_s", r.foil.predict_s, 6);
      w.Fixed("fit_speedup", r.foil.fit_s / r.fast.fit_s, 4);
      w.Fixed("predict_speedup", r.foil.predict_s / r.fast.predict_s, 4);
      w.Bool("bit_identical", true);
    }
    if (r.fast.coreg_pseudo_labels >= 0) {
      w.Int("pseudo_labels", r.fast.coreg_pseudo_labels);
    }
    w.EndObject();
  }
  w.EndArray();
  w.Fixed("coreg_fit_speedup", coreg_speedup, 4);
  w.Fixed("coreg_fit_speedup_gate", kCoregFitSpeedupGate, 1);
  w.Bool("gate_passed", gate_passed);
  w.EndObject();
  std::string json = w.Take();
  EmitBenchJson("ml", json);

  int exit_code = gate_passed ? 0 : 1;
  if (!gate_passed && Params().relax_gates) {
    std::printf("  (gate relaxed: reporting only)\n");
    exit_code = 0;
  }
  return {exit_code, std::move(json)};
}

}  // namespace staq::bench
