// Micro-benchmarks for the SSR learning stage (the "training" component of
// Table II): per-model fit + transductive-predict cost on a realistic
// zone-level dataset, plus the shared numeric kernels.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "ml/model_factory.h"
#include "testing_dataset.h"

namespace staq::bench {
namespace {

/// Fit + predict once; the dataset mimics a city sweep cell (|Z| zones,
/// 20 features, beta-sized labeled set).
void RunModel(benchmark::State& state, ml::ModelKind kind) {
  size_t zones = static_cast<size_t>(state.range(0));
  double beta = 0.05;
  ml::Dataset data = MakeZoneLikeDataset(zones, 20, beta, 7);
  for (auto _ : state) {
    auto model = ml::CreateModel(kind, 7);
    auto status = model->Fit(data);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
    auto pred = model->Predict();
    benchmark::DoNotOptimize(pred.data());
  }
  state.counters["zones"] = static_cast<double>(zones);
}

void BM_FitOls(benchmark::State& state) {
  RunModel(state, ml::ModelKind::kOls);
}
void BM_FitMlp(benchmark::State& state) {
  RunModel(state, ml::ModelKind::kMlp);
}
void BM_FitCoreg(benchmark::State& state) {
  RunModel(state, ml::ModelKind::kCoreg);
}
void BM_FitMeanTeacher(benchmark::State& state) {
  RunModel(state, ml::ModelKind::kMeanTeacher);
}
void BM_FitGnn(benchmark::State& state) {
  RunModel(state, ml::ModelKind::kGnn);
}

BENCHMARK(BM_FitOls)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitMlp)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitCoreg)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitMeanTeacher)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitGnn)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_MatMul(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(1);
  ml::Matrix a(n, n), b(n, n);
  for (auto& v : a.data()) v = rng.Uniform(-1, 1);
  for (auto& v : b.data()) v = rng.Uniform(-1, 1);
  for (auto _ : state) {
    ml::Matrix c = ml::MatMul(a, b);
    benchmark::DoNotOptimize(c.row(0));
  }
}
BENCHMARK(BM_MatMul)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_SolveSpd(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(2);
  ml::Matrix b(n, n);
  for (auto& v : b.data()) v = rng.Uniform(-1, 1);
  ml::Matrix a = ml::Gram(b);
  for (size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  std::vector<double> rhs(n);
  for (auto& v : rhs) v = rng.Uniform(-1, 1);
  for (auto _ : state) {
    auto x = ml::SolveLinearSystem(a, rhs);
    benchmark::DoNotOptimize(x.ok());
  }
}
BENCHMARK(BM_SolveSpd)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_AdjacencyBuild(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(3);
  std::vector<geo::Point> positions;
  for (size_t i = 0; i < n; ++i) {
    positions.push_back({rng.Uniform(0, 10000), rng.Uniform(0, 10000)});
  }
  for (auto _ : state) {
    ml::Matrix a = ml::BuildNormalizedAdjacency(positions, 0.25, 0.05);
    benchmark::DoNotOptimize(a.row(0));
  }
}
BENCHMARK(BM_AdjacencyBuild)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace staq::bench

BENCHMARK_MAIN();
