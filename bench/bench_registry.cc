#include "bench_registry.h"

#include <cstdio>

#include "bench_common.h"

namespace staq::bench {

const std::vector<BenchInfo>& BenchTable() {
  static const std::vector<BenchInfo> kTable = {
      {"labeling", "perf", "zone-labeling throughput + CSA speedup gate",
       &RunLabelingBench},
      {"ml", "perf", "SSR model fit/predict throughput + COREG gate",
       &RunMlBench},
      {"store", "perf", "snapshot warm-start vs cold rebuild gate",
       &RunStoreBench},
      {"serve", "perf", "serving tier end-to-end latency phases",
       &RunServeBench},
      {"load", "perf", "columnar batch speedup gate + open-loop SLO generator",
       &RunLoadBench},
      {"net", "perf", "TCP wire protocol / WAL / replication latency",
       &RunNetBench},
      {"quality", "perf", "SSR quality cell: error + SPQ reduction at one β",
       &RunQualityBench},
      {"table1", "paper", "Table I: city statistics", &RunTable1Bench},
      {"table2", "paper", "Table II: % SPQ reduction vs budget",
       &RunTable2Bench},
      {"fig3", "paper", "Fig. 3: error vs labeling budget", &RunFig3Bench},
      {"fig4", "paper", "Fig. 4: MAC rank correlation", &RunFig4Bench},
      {"fig5", "paper", "Fig. 5: dynamic re-labeling", &RunFig5Bench},
      {"ablation", "paper", "ablation: feature/co-training variants",
       &RunAblationBench},
      {"router", "micro", "google-benchmark: SPQ router kernels", nullptr},
      {"features", "micro", "google-benchmark: feature extraction", nullptr},
  };
  return kTable;
}

const BenchInfo* FindBench(const std::string& name) {
  for (const BenchInfo& info : BenchTable()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

exp::BenchRegistry MakeBenchRegistry() {
  exp::BenchRegistry registry;
  for (const BenchInfo& info : BenchTable()) {
    if (info.fn == nullptr) continue;
    exp::RunResult (*fn)() = info.fn;
    registry[info.name] = [fn](const exp::RunSpec& spec) {
      BenchParams params = BenchParams::FromEnv();
      params.Apply(spec.params);
      ScopedBenchParams scoped(std::move(params));
      return fn();
    };
  }
  return registry;
}

int RunBenchMain(const char* name) {
  const BenchInfo* info = FindBench(name);
  if (info == nullptr) {
    std::fprintf(stderr, "unknown bench '%s'\n", name);
    return 2;
  }
  if (info->fn == nullptr) {
    std::fprintf(stderr, "'%s' is a micro bench; run its own binary\n", name);
    return 2;
  }
  return info->fn().exit_code;
}

}  // namespace staq::bench
