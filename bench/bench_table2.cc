// Table II — Run-time of the naive solution (labeling every zone of M_g)
// vs the SSR solution (feature extraction + labeling L + SSR learning) and
// the percentage saving, for each city x POI type x budget.
//
// Three views of the saving are reported:
//   wall   measured wall-clock on this machine. staq's router answers an
//          SPQ in tens of microseconds (~1000x faster than the paper's
//          OTP stack), so the fixed ML-training cost is proportionally
//          much larger here and the measured saving understates the
//          paper's setting.
//   spq    SPQ-count saving, 1 - SPQs_solution / SPQs_naive: the paper's
//          underlying mechanism, hardware-independent.
//   @18ms  projected wall-clock saving if each SPQ cost the paper's
//          measured 0.018 s (feature + training costs kept as measured);
//          this reconstructs the paper's cost regime. Override the latency
//          with STAQ_BENCH_SPQ_MS.
//
// The solution model is MLP (the paper's strongest performer); quality at
// each cell is in the CSV so the cost/accuracy trade-off stays visible.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "bench_registry.h"

namespace staq::bench {
namespace {

double PaperSpqSeconds() {
  double ms = Params().spq_budget_ms;
  return (ms >= 0 ? ms : 18.0) / 1000.0;
}

}  // namespace

exp::RunResult RunTable2Bench() {
  PrintHeader("Table II: naive labeling cost vs SSR end-to-end cost");
  double spq_s = PaperSpqSeconds();
  std::printf("projected-latency view uses %.1f ms per SPQ\n", spq_s * 1000);

  util::CsvTable csv({"city", "poi", "beta", "naive_s", "features_s",
                      "labeling_s", "training_s", "solution_s",
                      "wall_saving_pct", "spq_saving_pct",
                      "projected_saving_pct", "jt_mae_min", "mac_corr",
                      "class_accuracy"});

  auto budgets = PaperBudgets();

  for (BenchCity& bc : MakeBothCities()) {
    std::printf("\n=== %s ===\n", bc.name.c_str());

    for (synth::PoiCategory category : PaperCategories()) {
      auto pois = bc.city->PoisOf(category);
      core::Todam todam =
          bc.pipeline->BuildGravityTodam(pois, bc.gravity, BenchSeed());

      // Naive baseline: label everything (this is also the ground truth
      // the quality columns are measured against).
      core::GroundTruth truth = bc.pipeline->ComputeGroundTruth(
          pois, todam, core::CostKind::kJourneyTime);
      double naive_s = truth.labeling_s;
      double naive_projected_s = static_cast<double>(truth.spqs) * spq_s;

      std::printf("\n%-11s naive: %.2fs measured, %llu SPQs "
                  "(%.0fs at paper latency)\n",
                  synth::PoiCategoryName(category), naive_s,
                  static_cast<unsigned long long>(truth.spqs),
                  naive_projected_s);
      std::printf("  %8s %10s %8s %8s %8s\n", "beta", "solution_s", "wall",
                  "spq", "@paper");

      for (double beta : budgets) {
        core::PipelineConfig config;
        config.beta = beta;
        config.model = ml::ModelKind::kMlp;
        config.cost = core::CostKind::kJourneyTime;
        config.seed = BenchSeed();
        // Features are honestly re-extracted per run: their cost is part
        // of what Table II accounts.
        auto run = bc.pipeline->Run(pois, todam, config);
        if (!run.ok()) continue;

        const core::StageTimings& t = run.value().timings;
        double solution_s = t.TotalSeconds();
        double wall_saving = 100.0 * (1.0 - solution_s / naive_s);
        double spq_saving =
            100.0 * (1.0 - static_cast<double>(run.value().spqs) /
                               static_cast<double>(truth.spqs));
        double projected_solution_s =
            t.features_s + t.training_s +
            static_cast<double>(run.value().spqs) * spq_s;
        double projected_saving =
            100.0 * (1.0 - projected_solution_s / naive_projected_s);

        std::printf("  %7.0f%% %10.2f %7.1f%% %7.1f%% %7.1f%%\n", beta * 100,
                    solution_s, wall_saving, spq_saving, projected_saving);

        core::EvaluationMetrics m = Evaluate(truth, run.value());
        (void)csv.AddRow({bc.name, synth::PoiCategoryName(category),
                          util::CsvTable::Num(beta, 2),
                          util::CsvTable::Num(naive_s, 3),
                          util::CsvTable::Num(t.features_s, 3),
                          util::CsvTable::Num(t.labeling_s, 3),
                          util::CsvTable::Num(t.training_s, 3),
                          util::CsvTable::Num(solution_s, 3),
                          util::CsvTable::Num(wall_saving, 1),
                          util::CsvTable::Num(spq_saving, 1),
                          util::CsvTable::Num(projected_saving, 1),
                          util::CsvTable::Num(m.mac_mae / 60.0, 3),
                          util::CsvTable::Num(m.mac_corr, 3),
                          util::CsvTable::Num(m.class_accuracy, 3)});
      }
    }
  }

  std::printf(
      "\nPaper reference (Table II): savings ~96-97%% at beta=3%% falling "
      "to ~77-79%% at\nbeta=30%%. The spq and @paper columns reproduce that "
      "shape; the measured wall\ncolumn is diluted because this router "
      "answers an SPQ in ~20-60 us instead of\nOTP's 18 ms, so fixed "
      "feature/training overheads dominate at small scales.\n");
  EmitCsv(csv, "table2_runtime_savings.csv");

  JsonWriter w;
  w.BeginObject();
  w.String("bench", "table2");
  w.Fixed("scale", BenchScale(), 4);
  w.Int("rate_per_hour", BenchRate());
  w.Uint("seed", BenchSeed());
  w.String("csv", "table2_runtime_savings.csv");
  w.Uint("csv_rows", csv.num_rows());
  w.EndObject();
  std::string json = w.Take();
  EmitBenchJson("table2", json);
  return {0, std::move(json)};
}

}  // namespace staq::bench
