// Micro-benchmarks for the SPQ oracle (§IV intro).
//
// The paper measured 0.018 ± 0.016 s per SPQ on their OTP stack; this
// bench reports the equivalent figure for staq's router on both synthetic
// cities, plus the access-stop lookup and walk-table construction costs.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "router/router.h"
#include "util/rng.h"

namespace staq::bench {
namespace {

/// Shared fixtures: building a city per benchmark iteration would swamp
/// the timings, so cities and routers are constructed once.
struct RouterFixture {
  explicit RouterFixture(synth::CitySpec spec)
      : city(std::move(synth::BuildCity(spec)).value()),
        router(&city.feed, router::RouterOptions{}) {}

  synth::City city;
  router::Router router;
};

RouterFixture& Brindale() {
  static RouterFixture* fixture =
      new RouterFixture(synth::CitySpec::Brindale(BenchScale(), BenchSeed()));
  return *fixture;
}

RouterFixture& Covely() {
  static RouterFixture* fixture = new RouterFixture(
      synth::CitySpec::Covely(BenchScale(), BenchSeed() + 1));
  return *fixture;
}

void RunSpq(benchmark::State& state, RouterFixture& fixture) {
  util::Rng rng(7);
  const geo::BBox& extent = fixture.city.extent;
  uint64_t feasible = 0, total = 0;
  for (auto _ : state) {
    geo::Point o{rng.Uniform(extent.min_x, extent.max_x),
                 rng.Uniform(extent.min_y, extent.max_y)};
    geo::Point d{rng.Uniform(extent.min_x, extent.max_x),
                 rng.Uniform(extent.min_y, extent.max_y)};
    gtfs::TimeOfDay depart =
        gtfs::MakeTime(7, 0) +
        static_cast<gtfs::TimeOfDay>(rng.UniformU64(7200));
    router::Journey journey =
        fixture.router.Route(o, d, gtfs::Day::kTuesday, depart);
    benchmark::DoNotOptimize(journey.arrive);
    feasible += journey.feasible ? 1 : 0;
    ++total;
  }
  state.counters["feasible_frac"] =
      static_cast<double>(feasible) / static_cast<double>(total);
}

void BM_SpqBrindale(benchmark::State& state) { RunSpq(state, Brindale()); }
void BM_SpqCovely(benchmark::State& state) { RunSpq(state, Covely()); }
BENCHMARK(BM_SpqBrindale)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SpqCovely)->Unit(benchmark::kMicrosecond);

void BM_SpqShortTrips(benchmark::State& state) {
  // Trips within ~2 km: the common zone->POI case in the gravity TODAM.
  RouterFixture& fixture = Brindale();
  util::Rng rng(9);
  const geo::BBox& extent = fixture.city.extent;
  for (auto _ : state) {
    geo::Point o{rng.Uniform(extent.min_x, extent.max_x),
                 rng.Uniform(extent.min_y, extent.max_y)};
    geo::Point d{o.x + rng.Uniform(-2000, 2000),
                 o.y + rng.Uniform(-2000, 2000)};
    router::Journey journey = fixture.router.Route(
        o, d, gtfs::Day::kTuesday,
        gtfs::MakeTime(7, 0) + static_cast<gtfs::TimeOfDay>(rng.UniformU64(7200)));
    benchmark::DoNotOptimize(journey.arrive);
  }
}
BENCHMARK(BM_SpqShortTrips)->Unit(benchmark::kMicrosecond);

void BM_AccessStops(benchmark::State& state) {
  RouterFixture& fixture = Brindale();
  util::Rng rng(11);
  const geo::BBox& extent = fixture.city.extent;
  for (auto _ : state) {
    geo::Point p{rng.Uniform(extent.min_x, extent.max_x),
                 rng.Uniform(extent.min_y, extent.max_y)};
    auto stops = fixture.router.walk_table().AccessStops(p);
    benchmark::DoNotOptimize(stops.data());
  }
}
BENCHMARK(BM_AccessStops)->Unit(benchmark::kMicrosecond);

void BM_WalkTableBuild(benchmark::State& state) {
  RouterFixture& fixture = Brindale();
  for (auto _ : state) {
    router::WalkTable table(&fixture.city.feed, router::WalkParams{});
    benchmark::DoNotOptimize(&table);
  }
}
BENCHMARK(BM_WalkTableBuild)->Unit(benchmark::kMillisecond);

void BM_RouterConstruction(benchmark::State& state) {
  RouterFixture& fixture = Brindale();
  for (auto _ : state) {
    router::Router router(&fixture.city.feed, router::RouterOptions{});
    benchmark::DoNotOptimize(&router);
  }
}
BENCHMARK(BM_RouterConstruction)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace staq::bench

BENCHMARK_MAIN();
