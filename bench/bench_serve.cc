// Serving throughput and latency of the staq::serve subsystem.
//
// The serve bench drives one AqServer through the three request mixes a
// deployed endpoint sees:
//   cold         — first query per distinct request on a fresh scenario:
//                  pays the full exact labeling (or SSR pipeline) once
//   cached       — concurrent clients repeating the same analytical
//                  queries: one sharded-LRU probe per request
//   incremental  — a POI edit lands between queries: the mutation patches
//                  the materialised label states (O(affected zones) SPQs)
//                  and the next query answers from the patched state
// plus the mutations themselves (latency, affected-zone counts, SPQ cost).
//
// Correctness gates run before any number is reported: every cached and
// every incremental answer is compared field-by-field against
// AqServer::QueryUncached(), which recomputes from scratch on the caller's
// thread bypassing the result cache, the label-state memo, and the
// incremental patches. Any mismatch aborts the bench with exit code 1.
//
// Output: paper-style tables on stdout and a machine-readable
// BENCH_serve.json in STAQ_BENCH_OUT.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "router/connections.h"
#include "serve/server.h"
#include "util/stopwatch.h"

namespace staq::bench {
namespace {

/// Payload equality between two answers — everything except the cost
/// accounting fields (spqs/elapsed differ between cached, incremental, and
/// from-scratch paths by design).
bool SameAnswer(const core::AccessQueryResult& a,
                const core::AccessQueryResult& b) {
  return a.mac == b.mac && a.acsd == b.acsd && a.classes == b.classes &&
         a.mean_mac == b.mean_mac && a.mean_acsd == b.mean_acsd &&
         a.fairness == b.fairness &&
         a.population_fairness == b.population_fairness &&
         a.vulnerable_fairness == b.vulnerable_fairness &&
         a.gravity_trips == b.gravity_trips;
}

/// Hard gate: `result` must be OK and bit-identical to the from-scratch
/// golden for the same request on the current scenario.
bool GateAgainstGolden(serve::AqServer& server, const serve::AqRequest& request,
                       const util::Result<core::AccessQueryResult>& result,
                       const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "GATE FAILED (%s): query error: %s\n", what,
                 result.status().ToString().c_str());
    return false;
  }
  auto golden = server.QueryUncached(request);
  if (!golden.ok()) {
    std::fprintf(stderr, "GATE FAILED (%s): golden error: %s\n", what,
                 golden.status().ToString().c_str());
    return false;
  }
  if (!SameAnswer(result.value(), golden.value())) {
    std::fprintf(stderr,
                 "GATE FAILED (%s): answer differs from uncached golden\n",
                 what);
    return false;
  }
  return true;
}

struct LatencySummary {
  size_t count = 0;
  double seconds = 0.0;  // wall-clock of the whole phase
  double qps = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

LatencySummary Summarise(std::vector<double> latencies_ms,
                         double phase_seconds) {
  LatencySummary s;
  s.count = latencies_ms.size();
  s.seconds = phase_seconds;
  if (latencies_ms.empty()) return s;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  double sum = 0.0;
  for (double ms : latencies_ms) sum += ms;
  s.mean_ms = sum / static_cast<double>(s.count);
  auto pct = [&](double q) {
    size_t index = static_cast<size_t>(q * static_cast<double>(s.count - 1));
    return latencies_ms[index];
  };
  s.p50_ms = pct(0.50);
  s.p95_ms = pct(0.95);
  s.p99_ms = pct(0.99);
  s.qps = static_cast<double>(s.count) / phase_seconds;
  return s;
}

void PrintPhase(const char* name, const LatencySummary& s) {
  std::printf("  %-12s %6zu req %9.3f s %8.1f q/s   p50 %8.2f  p95 %8.2f  "
              "p99 %8.2f ms\n",
              name, s.count, s.seconds, s.qps, s.p50_ms, s.p95_ms, s.p99_ms);
}

int Run() {
  PrintHeader("staq::serve — concurrent AQ serving (cold/cached/incremental)");

  const synth::CitySpec spec = synth::CitySpec::Brindale(BenchScale(), BenchSeed());
  auto built = synth::BuildCity(spec);
  if (!built.ok()) {
    std::fprintf(stderr, "city build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  synth::City city = std::move(built).value();
  const size_t num_zones = city.zones.size();

  core::GravityConfig gravity = core::CalibratedGravityConfig(spec);
  gravity.sample_rate_per_hour = BenchRate();

  serve::AqServer::Options options;
  options.num_threads = std::max(2u, std::thread::hardware_concurrency());
  // STAQ_SERVE_ENGINE=label_correcting runs the identical workload on the
  // pre-CSA engine — the apples-to-apples baseline for the cold/mutation
  // means reported by the default (csa) run.
  if (const char* env = std::getenv("STAQ_SERVE_ENGINE");
      env != nullptr && std::string(env) == "label_correcting") {
    options.scenario.router = router::RouterOptions{};
  }
  serve::AqServer server(std::move(city), gtfs::WeekdayAmPeak(), options);
  const router::RouterOptions& router_opts = server.router_options();
  const char* engine_name =
      router_opts.engine == router::RoutingEngine::kCsa ? "csa"
                                                        : "label_correcting";
  const double connections_build_s =
      router_opts.connections ? router_opts.connections->build_seconds() : 0.0;
  std::printf("  city=%s  zones=%zu  pois=%zu  workers=%zu\n", spec.name.c_str(),
              num_zones, server.base_city().pois.size(), server.num_threads());
  std::printf("  engine=%s", engine_name);
  if (router_opts.connections) {
    std::printf("  connection array: %zu connections, built in %.3fs",
                router_opts.connections->num_connections(),
                connections_build_s);
  }
  std::printf("\n");

  // The request mix: one exact query per category, an exact re-sample of
  // the first category under a different TODAM seed (a distinct label
  // state, so cold pays a second full labeling), and two SSR queries at
  // different budgets/models — the analytical dashboard workload the cache
  // is built for.
  std::vector<serve::AqRequest> mix;
  for (synth::PoiCategory category : PaperCategories()) {
    serve::AqRequest request;
    request.category = category;
    request.options.exact = true;
    request.options.gravity = gravity;
    request.options.seed = BenchSeed();
    mix.push_back(request);
  }
  {
    serve::AqRequest reseed = mix.front();
    reseed.options.seed = BenchSeed() + 1;
    mix.push_back(reseed);
  }
  {
    serve::AqRequest ssr = mix.front();
    ssr.options.exact = false;
    ssr.options.beta = 0.07;
    ssr.options.model = ml::ModelKind::kOls;
    mix.push_back(ssr);
    ssr.options.beta = 0.10;
    ssr.options.model = ml::ModelKind::kCoreg;
    mix.push_back(ssr);
  }

  // --- cold: first query per distinct request ---------------------------
  std::vector<double> cold_ms;
  std::vector<core::AccessQueryResult> cold_answers;
  util::Stopwatch cold_watch;
  for (const serve::AqRequest& request : mix) {
    util::Stopwatch watch;
    auto result = server.Query(request);
    cold_ms.push_back(watch.ElapsedMillis());
    if (!result.ok()) {
      std::fprintf(stderr, "cold query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    cold_answers.push_back(std::move(result).value());
  }
  LatencySummary cold = Summarise(cold_ms, cold_watch.ElapsedSeconds());

  // Gate the cold answers (they seed the cache every later phase reads).
  for (size_t i = 0; i < mix.size(); ++i) {
    util::Result<core::AccessQueryResult> answer = cold_answers[i];
    if (!GateAgainstGolden(server, mix[i], answer, "cold")) return 1;
  }

  // --- cached: concurrent clients over a stable scenario ----------------
  const size_t kClients = server.num_threads();
  const size_t kQueriesPerClient = 40;
  std::vector<std::vector<double>> client_ms(kClients);
  std::atomic<bool> cached_ok{true};
  util::Stopwatch cached_watch;
  {
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        client_ms[c].reserve(kQueriesPerClient);
        for (size_t q = 0; q < kQueriesPerClient; ++q) {
          const serve::AqRequest& request = mix[(c + q) % mix.size()];
          util::Stopwatch watch;
          auto result = server.Query(request);
          client_ms[c].push_back(watch.ElapsedMillis());
          if (!result.ok() ||
              !SameAnswer(result.value(), cold_answers[(c + q) % mix.size()])) {
            cached_ok.store(false);
          }
        }
      });
    }
    for (auto& client : clients) client.join();
  }
  double cached_seconds = cached_watch.ElapsedSeconds();
  if (!cached_ok.load()) {
    std::fprintf(stderr,
                 "GATE FAILED (cached): a concurrent answer differed from "
                 "the gated cold answer\n");
    return 1;
  }
  std::vector<double> cached_ms;
  for (const auto& ms : client_ms) {
    cached_ms.insert(cached_ms.end(), ms.begin(), ms.end());
  }
  LatencySummary cached = Summarise(std::move(cached_ms), cached_seconds);

  // --- incremental: POI edits between queries ---------------------------
  // Each mutation patches every materialised label state of its category
  // (here: all five mix entries' states exist), then the follow-up query
  // answers from the patched state and is gated against a from-scratch
  // rebuild of the mutated scenario.
  const geo::BBox& extent = server.base_city().extent;
  const geo::Point corner{extent.min_x, extent.min_y};
  const serve::AqRequest& mutated_request = mix.front();  // kSchool, exact
  const int kEdits = 4;  // add/remove round-trips

  std::vector<serve::ScenarioStore::MutationReport> reports;
  std::vector<double> incremental_ms;
  double incremental_query_seconds = 0.0;
  for (int edit = 0; edit < kEdits; ++edit) {
    auto add = server.AddPoi(synth::PoiCategory::kSchool, corner);
    if (!add.ok()) {
      std::fprintf(stderr, "add failed: %s\n",
                   add.status().ToString().c_str());
      return 1;
    }
    reports.push_back(add.value());
    {
      util::Stopwatch watch;
      auto result = server.Query(mutated_request);
      incremental_ms.push_back(watch.ElapsedMillis());
      incremental_query_seconds += watch.ElapsedSeconds();
      if (!GateAgainstGolden(server, mutated_request, result,
                             "incremental/add")) {
        return 1;
      }
    }
    auto removed = server.RemovePoi(add.value().poi_id);
    if (!removed.ok()) {
      std::fprintf(stderr, "remove failed: %s\n",
                   removed.status().ToString().c_str());
      return 1;
    }
    reports.push_back(removed.value());
    {
      util::Stopwatch watch;
      auto result = server.Query(mutated_request);
      incremental_ms.push_back(watch.ElapsedMillis());
      incremental_query_seconds += watch.ElapsedSeconds();
      if (!GateAgainstGolden(server, mutated_request, result,
                             "incremental/remove")) {
        return 1;
      }
    }
  }
  LatencySummary incremental =
      Summarise(incremental_ms, incremental_query_seconds);

  // After the add/remove round-trips the whole mix must still equal its
  // from-scratch golden on the final scenario (history independence).
  for (const serve::AqRequest& request : mix) {
    if (!GateAgainstGolden(server, request, server.Query(request), "final")) {
      return 1;
    }
  }

  // Mutation cost summary. full-build SPQs = SPQs of one from-scratch
  // exact labeling, read off the cold exact answer.
  double mutation_mean_ms = 0.0, mutation_max_ms = 0.0;
  double mean_zones = 0.0;
  uint64_t mutation_spqs = 0;
  for (const auto& report : reports) {
    mutation_mean_ms += report.seconds * 1e3;
    mutation_max_ms = std::max(mutation_max_ms, report.seconds * 1e3);
    mean_zones += report.zones_relabeled;
    mutation_spqs += report.spqs;
  }
  mutation_mean_ms /= static_cast<double>(reports.size());
  mean_zones /= static_cast<double>(reports.size());
  const uint64_t full_build_spqs = cold_answers.front().spqs;
  const double mean_spqs =
      static_cast<double>(mutation_spqs) / static_cast<double>(reports.size());

  serve::ServerStats stats = server.stats();

  std::printf("\n  all cached and incremental answers bit-identical to "
              "QueryUncached goldens\n\n");
  PrintPhase("cold", cold);
  PrintPhase("cached", cached);
  PrintPhase("incremental", incremental);
  std::printf("\n  mutations: %zu edits  mean %.2f ms (max %.2f)  "
              "zones relabeled %.1f/%zu  SPQs %.0f vs %llu full build "
              "(%.1fx cheaper)\n",
              reports.size(), mutation_mean_ms, mutation_max_ms, mean_zones,
              num_zones, mean_spqs,
              static_cast<unsigned long long>(full_build_spqs),
              mean_spqs > 0.0 ? static_cast<double>(full_build_spqs) / mean_spqs
                              : 0.0);
  std::printf("  server: %llu submitted, %llu cache hits / %llu misses, "
              "%llu exact state builds, %llu states patched across %llu "
              "mutations\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              static_cast<unsigned long long>(stats.exact_state_builds),
              static_cast<unsigned long long>(stats.states_patched),
              static_cast<unsigned long long>(stats.mutations));

  std::string path = OutDir() + "/BENCH_serve.json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "  (json write failed: %s)\n", path.c_str());
    return 1;
  }
  auto phase_json = [&](const char* name, const LatencySummary& s,
                        const char* tail) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"requests\": %zu, "
                 "\"seconds\": %.6f, \"qps\": %.2f, \"mean_ms\": %.4f, "
                 "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
                 name, s.count, s.seconds, s.qps, s.mean_ms, s.p50_ms,
                 s.p95_ms, s.p99_ms, tail);
  };
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serve\",\n");
  std::fprintf(f, "  \"city\": \"%s\",\n", spec.name.c_str());
  std::fprintf(f, "  \"scale\": %.4f,\n", BenchScale());
  std::fprintf(f, "  \"rate_per_hour\": %d,\n", BenchRate());
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(BenchSeed()));
  std::fprintf(f, "  \"zones\": %zu,\n", num_zones);
  std::fprintf(f, "  \"workers\": %zu,\n", server.num_threads());
  std::fprintf(f, "  \"clients\": %zu,\n", kClients);
  std::fprintf(f, "  \"engine\": \"%s\",\n", engine_name);
  std::fprintf(f, "  \"connections\": %zu,\n",
               router_opts.connections
                   ? router_opts.connections->num_connections()
                   : 0);
  std::fprintf(f, "  \"connections_build_seconds\": %.6f,\n",
               connections_build_s);
  std::fprintf(f, "  \"bit_identical\": true,\n");
  std::fprintf(f, "  \"phases\": [\n");
  phase_json("cold", cold, ",");
  phase_json("cached", cached, ",");
  phase_json("incremental", incremental, "");
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"mutations\": {\"count\": %zu, \"mean_ms\": %.4f, "
               "\"max_ms\": %.4f, \"mean_zones_relabeled\": %.2f, "
               "\"zones_total\": %zu, \"mean_spqs\": %.1f, "
               "\"full_build_spqs\": %llu},\n",
               reports.size(), mutation_mean_ms, mutation_max_ms, mean_zones,
               num_zones, mean_spqs,
               static_cast<unsigned long long>(full_build_spqs));
  std::fprintf(f, "  \"server_stats\": {\"submitted\": %llu, "
               "\"cache_hits\": %llu, \"cache_misses\": %llu, "
               "\"exact_state_builds\": %llu, \"states_patched\": %llu, "
               "\"mutations\": %llu}\n",
               static_cast<unsigned long long>(stats.submitted),
               static_cast<unsigned long long>(stats.cache_hits),
               static_cast<unsigned long long>(stats.cache_misses),
               static_cast<unsigned long long>(stats.exact_state_builds),
               static_cast<unsigned long long>(stats.states_patched),
               static_cast<unsigned long long>(stats.mutations));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("  -> wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace staq::bench

int main() { return staq::bench::Run(); }
