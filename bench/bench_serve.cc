// Serving throughput and latency of the staq::serve subsystem.
//
// The serve bench drives one AqServer through the three request mixes a
// deployed endpoint sees:
//   cold         — first query per distinct request on a fresh scenario:
//                  pays the full exact labeling (or SSR pipeline) once
//   cached       — concurrent clients repeating the same analytical
//                  queries: one sharded-LRU probe per request
//   incremental  — a POI edit lands between queries: the mutation patches
//                  the materialised label states (O(affected zones) SPQs)
//                  and the next query answers from the patched state
// plus the mutations themselves (latency, affected-zone counts, SPQ cost).
//
// Correctness gates run before any number is reported: every cached and
// every incremental answer is compared field-by-field against
// AqServer::QueryUncached(), which recomputes from scratch on the caller's
// thread bypassing the result cache, the label-state memo, and the
// incremental patches. Any mismatch aborts the bench with exit code 1.
//
// Output: paper-style tables on stdout and a machine-readable
// BENCH_serve.json in STAQ_BENCH_OUT.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_registry.h"
#include "router/connections.h"
#include "scenario/disruption.h"
#include "serve/server.h"
#include "util/stopwatch.h"

namespace staq::bench {
namespace {

/// Payload equality between two answers — everything except the cost
/// accounting fields (spqs/elapsed differ between cached, incremental, and
/// from-scratch paths by design).
bool SameAnswer(const core::AccessQueryResult& a,
                const core::AccessQueryResult& b) {
  return a.mac == b.mac && a.acsd == b.acsd && a.classes == b.classes &&
         a.mean_mac == b.mean_mac && a.mean_acsd == b.mean_acsd &&
         a.fairness == b.fairness &&
         a.population_fairness == b.population_fairness &&
         a.vulnerable_fairness == b.vulnerable_fairness &&
         a.gravity_trips == b.gravity_trips;
}

/// Hard gate: `result` must be OK and bit-identical to the from-scratch
/// golden for the same request on the current scenario.
bool GateAgainstGolden(serve::AqServer& server, const serve::AqRequest& request,
                       const util::Result<core::AccessQueryResult>& result,
                       const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "GATE FAILED (%s): query error: %s\n", what,
                 result.status().ToString().c_str());
    return false;
  }
  auto golden = server.QueryUncached(request);
  if (!golden.ok()) {
    std::fprintf(stderr, "GATE FAILED (%s): golden error: %s\n", what,
                 golden.status().ToString().c_str());
    return false;
  }
  if (!SameAnswer(result.value(), golden.value())) {
    std::fprintf(stderr,
                 "GATE FAILED (%s): answer differs from uncached golden\n",
                 what);
    return false;
  }
  return true;
}

void PrintPhase(const char* name, const LatencySummary& s, double seconds) {
  std::printf("  %-12s %6zu req %9.3f s %8.1f q/s   p50 %8.2f  p95 %8.2f  "
              "p99 %8.2f ms\n",
              name, s.n, seconds,
              seconds > 0 ? static_cast<double>(s.n) / seconds : 0.0, s.p50_ms,
              s.p95_ms, s.p99_ms);
}

}  // namespace

exp::RunResult RunServeBench() {
  PrintHeader("staq::serve — concurrent AQ serving (cold/cached/incremental)");

  const synth::CitySpec spec = synth::CitySpec::Brindale(BenchScale(), BenchSeed());
  auto built = synth::BuildCity(spec);
  if (!built.ok()) {
    std::fprintf(stderr, "city build failed: %s\n",
                 built.status().ToString().c_str());
    return {1, ""};
  }
  synth::City city = std::move(built).value();
  const size_t num_zones = city.zones.size();

  core::GravityConfig gravity = core::CalibratedGravityConfig(spec);
  gravity.sample_rate_per_hour = BenchRate();

  serve::AqServer::Options options;
  options.num_threads =
      Params().threads > 0
          ? static_cast<unsigned>(Params().threads)
          : std::max(2u, std::thread::hardware_concurrency());
  // STAQ_SERVE_ENGINE=label_correcting runs the identical workload on the
  // pre-CSA engine — the apples-to-apples baseline for the cold/mutation
  // means reported by the default (csa) run.
  if (Params().engine == "label_correcting") {
    options.scenario.router = router::RouterOptions{};
  }
  serve::AqServer server(std::move(city), gtfs::WeekdayAmPeak(), options);
  const router::RouterOptions& router_opts = server.router_options();
  const char* engine_name =
      router_opts.engine == router::RoutingEngine::kCsa ? "csa"
                                                        : "label_correcting";
  const double connections_build_s =
      router_opts.connections ? router_opts.connections->build_seconds() : 0.0;
  std::printf("  city=%s  zones=%zu  pois=%zu  workers=%zu\n", spec.name.c_str(),
              num_zones, server.base_city().pois.size(), server.num_threads());
  std::printf("  engine=%s", engine_name);
  if (router_opts.connections) {
    std::printf("  connection array: %zu connections, built in %.3fs",
                router_opts.connections->num_connections(),
                connections_build_s);
  }
  std::printf("\n");

  // The request mix: one exact query per category, exact re-samples of the
  // first two categories under a different TODAM seed (distinct label
  // states, so cold pays extra full labelings), and an SSR sweep — OLS
  // across the β grid for two categories plus one COREG and one MLP cell.
  // 20 distinct requests in total, so the cold phase's p95 is measured
  // from 20 samples rather than approximated, and the cached phase
  // round-robins a realistic dashboard workload.
  std::vector<serve::AqRequest> mix;
  for (synth::PoiCategory category : PaperCategories()) {
    serve::AqRequest request;
    request.category = category;
    request.options.exact = true;
    request.options.gravity = gravity;
    request.options.seed = BenchSeed();
    mix.push_back(request);
  }
  {
    serve::AqRequest reseed = mix[0];
    reseed.options.seed = BenchSeed() + 1;
    mix.push_back(reseed);
    reseed = mix[1];
    reseed.options.seed = BenchSeed() + 1;
    mix.push_back(reseed);
  }
  for (synth::PoiCategory category :
       {synth::PoiCategory::kSchool, synth::PoiCategory::kHospital}) {
    for (double beta : {0.03, 0.05, 0.07, 0.10, 0.15, 0.20}) {
      serve::AqRequest ssr = mix.front();
      ssr.category = category;
      ssr.options.exact = false;
      ssr.options.beta = beta;
      ssr.options.model = ml::ModelKind::kOls;
      mix.push_back(ssr);
    }
  }
  {
    serve::AqRequest ssr = mix.front();
    ssr.options.exact = false;
    ssr.options.beta = 0.10;
    ssr.options.model = ml::ModelKind::kCoreg;
    mix.push_back(ssr);
    ssr.options.beta = 0.07;
    ssr.options.model = ml::ModelKind::kMlp;
    mix.push_back(ssr);
  }

  // --- cold: first query per distinct request ---------------------------
  std::vector<double> cold_ms;
  std::vector<core::AccessQueryResult> cold_answers;
  util::Stopwatch cold_watch;
  for (const serve::AqRequest& request : mix) {
    util::Stopwatch watch;
    auto result = server.Query(request);
    cold_ms.push_back(watch.ElapsedMillis());
    if (!result.ok()) {
      std::fprintf(stderr, "cold query failed: %s\n",
                   result.status().ToString().c_str());
      return {1, ""};
    }
    cold_answers.push_back(std::move(result).value());
  }
  const double cold_seconds = cold_watch.ElapsedSeconds();
  LatencySummary cold = Summarise(cold_ms);

  // Gate the cold answers (they seed the cache every later phase reads).
  for (size_t i = 0; i < mix.size(); ++i) {
    util::Result<core::AccessQueryResult> answer = cold_answers[i];
    if (!GateAgainstGolden(server, mix[i], answer, "cold")) return {1, ""};
  }

  // --- cached: concurrent clients over a stable scenario ----------------
  const size_t kClients = server.num_threads();
  const size_t kQueriesPerClient = 40;
  std::vector<std::vector<double>> client_ms(kClients);
  std::atomic<bool> cached_ok{true};
  util::Stopwatch cached_watch;
  {
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        client_ms[c].reserve(kQueriesPerClient);
        for (size_t q = 0; q < kQueriesPerClient; ++q) {
          const serve::AqRequest& request = mix[(c + q) % mix.size()];
          util::Stopwatch watch;
          auto result = server.Query(request);
          client_ms[c].push_back(watch.ElapsedMillis());
          if (!result.ok() ||
              !SameAnswer(result.value(), cold_answers[(c + q) % mix.size()])) {
            cached_ok.store(false);
          }
        }
      });
    }
    for (auto& client : clients) client.join();
  }
  double cached_seconds = cached_watch.ElapsedSeconds();
  if (!cached_ok.load()) {
    std::fprintf(stderr,
                 "GATE FAILED (cached): a concurrent answer differed from "
                 "the gated cold answer\n");
    return {1, ""};
  }
  std::vector<double> cached_ms;
  for (const auto& ms : client_ms) {
    cached_ms.insert(cached_ms.end(), ms.begin(), ms.end());
  }
  LatencySummary cached = Summarise(std::move(cached_ms));

  // --- incremental: POI edits between queries ---------------------------
  // Each mutation patches every materialised label state of its category
  // (here: all six exact mix entries' states exist), then the follow-up query
  // answers from the patched state and is gated against a from-scratch
  // rebuild of the mutated scenario.
  const geo::BBox& extent = server.base_city().extent;
  const geo::Point corner{extent.min_x, extent.min_y};
  const serve::AqRequest& mutated_request = mix.front();  // kSchool, exact
  const int kEdits = 4;  // add/remove round-trips

  std::vector<serve::ScenarioStore::MutationReport> reports;
  std::vector<double> incremental_ms;
  double incremental_query_seconds = 0.0;
  for (int edit = 0; edit < kEdits; ++edit) {
    auto add = server.AddPoi(synth::PoiCategory::kSchool, corner);
    if (!add.ok()) {
      std::fprintf(stderr, "add failed: %s\n",
                   add.status().ToString().c_str());
      return {1, ""};
    }
    reports.push_back(add.value());
    {
      util::Stopwatch watch;
      auto result = server.Query(mutated_request);
      incremental_ms.push_back(watch.ElapsedMillis());
      incremental_query_seconds += watch.ElapsedSeconds();
      if (!GateAgainstGolden(server, mutated_request, result,
                             "incremental/add")) {
        return {1, ""};
      }
    }
    auto removed = server.RemovePoi(add.value().poi_id);
    if (!removed.ok()) {
      std::fprintf(stderr, "remove failed: %s\n",
                   removed.status().ToString().c_str());
      return {1, ""};
    }
    reports.push_back(removed.value());
    {
      util::Stopwatch watch;
      auto result = server.Query(mutated_request);
      incremental_ms.push_back(watch.ElapsedMillis());
      incremental_query_seconds += watch.ElapsedSeconds();
      if (!GateAgainstGolden(server, mutated_request, result,
                             "incremental/remove")) {
        return {1, ""};
      }
    }
  }
  LatencySummary incremental = Summarise(incremental_ms);

  // After the add/remove round-trips the whole mix must still equal its
  // from-scratch golden on the final scenario (history independence).
  for (const serve::AqRequest& request : mix) {
    if (!GateAgainstGolden(server, request, server.Query(request), "final")) {
      return {1, ""};
    }
  }

  // --- disruptions: the scenario-pack mutation mix ----------------------
  // The same disruption grammar `staq_cli scenario run` executes, one of
  // each timetable-rewriting kind, selectors resolved against the live
  // feed just before each apply (client-side resolution, as the pack
  // runner does). Every apply patches all materialised label states
  // incrementally; the follow-up query is gated against a from-scratch
  // rebuild over the disrupted network.
  const char* const kDisruptionSpecs[] = {
      "close_stop:busiest", "suspend_route:busiest", "scale_headway:all:2",
      "set_fare:all:4.0",   "scale_walk:0.9",
  };
  std::vector<serve::ScenarioStore::MutationReport> disruption_reports;
  double disruption_mean_ms = 0.0, disruption_max_ms = 0.0;
  for (const char* spec_text : kDisruptionSpecs) {
    auto spec = scenario::ParseDisruptionSpec(spec_text);
    if (!spec.ok()) {
      std::fprintf(stderr, "disruption spec '%s' failed: %s\n", spec_text,
                   spec.status().ToString().c_str());
      return {1, ""};
    }
    auto record = scenario::ResolveDisruption(
        spec.value(), server.Snapshot()->base_city().feed);
    if (!record.ok()) {
      std::fprintf(stderr, "disruption '%s' did not resolve: %s\n", spec_text,
                   record.status().ToString().c_str());
      return {1, ""};
    }
    record.value().sequence = server.sequence() + 1;
    auto applied = server.ApplyMutation(record.value());
    if (!applied.ok()) {
      std::fprintf(stderr, "disruption '%s' failed: %s\n", spec_text,
                   applied.status().ToString().c_str());
      return {1, ""};
    }
    disruption_reports.push_back(applied.value());
    const double ms = applied.value().seconds * 1e3;
    disruption_mean_ms += ms;
    disruption_max_ms = std::max(disruption_max_ms, ms);
    if (!GateAgainstGolden(server, mutated_request, server.Query(mutated_request),
                           spec_text)) {
      return {1, ""};
    }
  }
  disruption_mean_ms /= static_cast<double>(disruption_reports.size());
  uint64_t disruption_spqs = 0;
  uint64_t disruption_zones = 0;
  for (const auto& report : disruption_reports) {
    disruption_spqs += report.spqs;
    disruption_zones += report.zones_relabeled;
  }

  // Every request of the mix answers bit-identically on the fully
  // disrupted network too.
  for (const serve::AqRequest& request : mix) {
    if (!GateAgainstGolden(server, request, server.Query(request),
                           "disrupted/final")) {
      return {1, ""};
    }
  }

  // Mutation cost summary. full-build SPQs = SPQs of one from-scratch
  // exact labeling, read off the cold exact answer.
  double mutation_mean_ms = 0.0, mutation_max_ms = 0.0;
  double mean_zones = 0.0;
  uint64_t mutation_spqs = 0;
  for (const auto& report : reports) {
    mutation_mean_ms += report.seconds * 1e3;
    mutation_max_ms = std::max(mutation_max_ms, report.seconds * 1e3);
    mean_zones += report.zones_relabeled;
    mutation_spqs += report.spqs;
  }
  mutation_mean_ms /= static_cast<double>(reports.size());
  mean_zones /= static_cast<double>(reports.size());
  const uint64_t full_build_spqs = cold_answers.front().spqs;
  const double mean_spqs =
      static_cast<double>(mutation_spqs) / static_cast<double>(reports.size());

  serve::ServerStats stats = server.stats();

  std::printf("\n  all cached and incremental answers bit-identical to "
              "QueryUncached goldens\n\n");
  PrintPhase("cold", cold, cold_seconds);
  PrintPhase("cached", cached, cached_seconds);
  PrintPhase("incremental", incremental, incremental_query_seconds);
  std::printf("\n  mutations: %zu edits  mean %.2f ms (max %.2f)  "
              "zones relabeled %.1f/%zu  SPQs %.0f vs %llu full build "
              "(%.1fx cheaper)\n",
              reports.size(), mutation_mean_ms, mutation_max_ms, mean_zones,
              num_zones, mean_spqs,
              static_cast<unsigned long long>(full_build_spqs),
              mean_spqs > 0.0 ? static_cast<double>(full_build_spqs) / mean_spqs
                              : 0.0);
  std::printf("  disruptions: %zu applied (network v%llu)  mean %.2f ms "
              "(max %.2f)  %llu zones relabeled, %llu SPQs\n",
              disruption_reports.size(),
              static_cast<unsigned long long>(
                  server.Snapshot()->network_version()),
              disruption_mean_ms, disruption_max_ms,
              static_cast<unsigned long long>(disruption_zones),
              static_cast<unsigned long long>(disruption_spqs));
  std::printf("  server: %llu submitted, %llu cache hits / %llu misses, "
              "%llu exact state builds, %llu states patched across %llu "
              "mutations\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              static_cast<unsigned long long>(stats.exact_state_builds),
              static_cast<unsigned long long>(stats.states_patched),
              static_cast<unsigned long long>(stats.mutations));

  JsonWriter w;
  w.BeginObject();
  w.String("bench", "serve");
  w.String("city", spec.name);
  w.Fixed("scale", BenchScale(), 4);
  w.Int("rate_per_hour", BenchRate());
  w.Uint("seed", BenchSeed());
  w.Uint("zones", num_zones);
  w.Uint("workers", server.num_threads());
  w.Uint("clients", kClients);
  w.String("engine", engine_name);
  w.Uint("connections", router_opts.connections
                            ? router_opts.connections->num_connections()
                            : 0);
  w.Fixed("connections_build_seconds", connections_build_s, 6);
  w.Bool("bit_identical", true);
  w.BeginArray("phases");
  auto phase_json = [&w](const char* name, const LatencySummary& s,
                         double seconds) {
    w.BeginObject();
    w.String("name", name);
    WriteLatency(w, s, seconds);
    w.EndObject();
  };
  phase_json("cold", cold, cold_seconds);
  phase_json("cached", cached, cached_seconds);
  phase_json("incremental", incremental, incremental_query_seconds);
  w.EndArray();
  w.BeginObject("mutations");
  w.Uint("count", reports.size());
  w.Fixed("mean_ms", mutation_mean_ms, 4);
  w.Fixed("max_ms", mutation_max_ms, 4);
  w.Fixed("mean_zones_relabeled", mean_zones, 2);
  w.Uint("zones_total", num_zones);
  w.Fixed("mean_spqs", mean_spqs, 1);
  w.Uint("full_build_spqs", full_build_spqs);
  w.EndObject();
  w.BeginObject("disruptions");
  w.Uint("count", disruption_reports.size());
  w.Uint("network_version", server.Snapshot()->network_version());
  w.Fixed("mean_ms", disruption_mean_ms, 4);
  w.Fixed("max_ms", disruption_max_ms, 4);
  w.Uint("zones_relabeled", disruption_zones);
  w.Uint("spqs", disruption_spqs);
  w.EndObject();
  w.BeginObject("server_stats");
  w.Uint("submitted", stats.submitted);
  w.Uint("cache_hits", stats.cache_hits);
  w.Uint("cache_misses", stats.cache_misses);
  w.Uint("exact_state_builds", stats.exact_state_builds);
  w.Uint("states_patched", stats.states_patched);
  w.Uint("mutations", stats.mutations);
  w.EndObject();
  w.EndObject();
  std::string json = w.Take();
  EmitBenchJson("serve", json);
  return {0, std::move(json)};
}

}  // namespace staq::bench
