// Shared main for the per-bench executables: each binary is this stub
// compiled with -DSTAQ_BENCH_NAME="<name>", dispatching into the bench
// registry. The bench logic itself lives in a library so the experiment
// runner and staq_cli can call it in-process.
#include "bench_registry.h"

int main() { return staq::bench::RunBenchMain(STAQ_BENCH_NAME); }
