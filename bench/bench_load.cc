// Columnar batch evaluation throughput + open-loop SLO load generator.
//
// Three sections:
//
//   measure_eval — the tentpole perf claim. A 16-member cost sweep (journey
//       time + 15 GAC variants) over one (category, seed) is evaluated two
//       ways on the same engine: the scalar foil (16 independent uncached
//       exact queries, sharing nothing) and the columnar vector path (ONE
//       labeling pass, per-member SoA derivation through ml::kernels).
//       Every member pair is gated bit-identical first; then the speedup
//       must clear the 10x floor or the bench exits non-zero.
//
//   load — an open-loop (arrival-scheduled) generator drives an AqServer at
//       a fixed target QPS over the warmed batch mix. Open-loop means a
//       slow response does NOT slow the arrival schedule, so queueing delay
//       is measured instead of hidden (no coordinated omission): latency =
//       completion - scheduled arrival. p50/p95/p99 are reported at the
//       stated target with shed/rejected/failed accounted separately.
//
//   overload — the same server is driven past capacity with expensive
//       distinct exact requests. The delay-budget admission path must
//       engage: at least one request is shed with kUnavailable (gated).
//
// Output: tables on stdout and BENCH_load.json in STAQ_BENCH_OUT.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_registry.h"
#include "core/access_query.h"
#include "serve/server.h"
#include "util/stopwatch.h"

namespace staq::bench {
namespace {

constexpr double kSpeedupFloor = 10.0;

/// The 16-member cost sweep: journey time + a 3x5 grid of GAC variants
/// (wait-time weight x transfer penalty) — the "same journeys, different
/// cost definitions" workload the columnar engine amortises.
std::vector<core::CostMember> SweepMembers() {
  std::vector<core::CostMember> members;
  members.push_back(
      core::CostMember{core::CostKind::kJourneyTime, router::GacWeights{}});
  for (double lambda_wt : {1.5, 2.0, 2.5}) {
    for (double penalty_s : {0.0, 300.0, 600.0, 900.0, 1200.0}) {
      router::GacWeights gac;
      gac.lambda_wt = lambda_wt;
      gac.transfer_penalty_s = penalty_s;
      members.push_back(
          core::CostMember{core::CostKind::kGeneralizedCost, gac});
    }
  }
  return members;
}

/// Full bitwise equality including accounting: the columnar path promises
/// each member the exact result (and SPQ count) of the query it replaces.
bool BitIdentical(const core::AccessQueryResult& a,
                  const core::AccessQueryResult& b) {
  return a.mac == b.mac && a.acsd == b.acsd && a.classes == b.classes &&
         a.mean_mac == b.mean_mac && a.mean_acsd == b.mean_acsd &&
         a.fairness == b.fairness &&
         a.population_fairness == b.population_fairness &&
         a.vulnerable_fairness == b.vulnerable_fairness &&
         a.spqs == b.spqs && a.gravity_trips == b.gravity_trips;
}

/// Payload equality for the serve-path gate (spqs differ between the
/// memoised and from-scratch serve paths by design).
bool SameAnswer(const core::AccessQueryResult& a,
                const core::AccessQueryResult& b) {
  return a.mac == b.mac && a.acsd == b.acsd && a.classes == b.classes &&
         a.fairness == b.fairness && a.gravity_trips == b.gravity_trips;
}

using SteadyClock = std::chrono::steady_clock;

double MillisBetween(SteadyClock::time_point from, SteadyClock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Outcome tally of one generator phase.
struct PhaseOutcome {
  std::vector<double> latency_ms;  // completed requests only
  size_t completed = 0;
  size_t shed = 0;      // kUnavailable (delay-budget admission)
  size_t rejected = 0;  // kResourceExhausted (queue full)
  size_t failed = 0;    // anything else non-OK
};

/// Drives `server` open-loop: request i of `mix` (round-robin) is submitted
/// at start + i/qps, regardless of how previous requests are doing. Two
/// harvester threads resolve tickets in submission order and stamp
/// completion against the *scheduled* arrival, so queueing shows up in the
/// tail instead of slowing the generator (no coordinated omission).
PhaseOutcome RunOpenLoop(serve::AqServer& server,
                         const std::vector<serve::AqRequest>& mix,
                         size_t total, double qps) {
  std::vector<serve::AqTicket> tickets(total);
  std::vector<SteadyClock::time_point> scheduled(total);
  std::atomic<size_t> submitted{0};

  std::thread producer([&] {
    const auto start = SteadyClock::now();
    const std::chrono::duration<double> spacing(1.0 / qps);
    for (size_t i = 0; i < total; ++i) {
      const auto arrival =
          start + std::chrono::duration_cast<SteadyClock::duration>(
                      spacing * static_cast<double>(i));
      std::this_thread::sleep_until(arrival);
      scheduled[i] = arrival;
      tickets[i] = server.Submit(mix[i % mix.size()]);
      submitted.store(i + 1, std::memory_order_release);
    }
  });

  constexpr size_t kHarvesters = 2;
  std::vector<PhaseOutcome> partial(kHarvesters);
  std::atomic<size_t> next{0};
  std::vector<std::thread> harvesters;
  for (size_t h = 0; h < kHarvesters; ++h) {
    harvesters.emplace_back([&, h] {
      PhaseOutcome& mine = partial[h];
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) return;
        while (submitted.load(std::memory_order_acquire) <= i) {
          std::this_thread::yield();
        }
        auto result = tickets[i].Get();
        const auto now = SteadyClock::now();
        if (result.ok()) {
          ++mine.completed;
          mine.latency_ms.push_back(MillisBetween(scheduled[i], now));
        } else if (result.status().code() == util::StatusCode::kUnavailable) {
          ++mine.shed;
        } else if (result.status().code() ==
                   util::StatusCode::kResourceExhausted) {
          ++mine.rejected;
        } else {
          ++mine.failed;
        }
      }
    });
  }
  producer.join();
  for (auto& harvester : harvesters) harvester.join();

  PhaseOutcome outcome;
  for (PhaseOutcome& p : partial) {
    outcome.completed += p.completed;
    outcome.shed += p.shed;
    outcome.rejected += p.rejected;
    outcome.failed += p.failed;
    outcome.latency_ms.insert(outcome.latency_ms.end(), p.latency_ms.begin(),
                              p.latency_ms.end());
  }
  return outcome;
}

void WriteOutcome(JsonWriter& w, const PhaseOutcome& outcome,
                  const LatencySummary& latency, double seconds) {
  w.Uint("offered",
         outcome.completed + outcome.shed + outcome.rejected + outcome.failed);
  w.Uint("completed", outcome.completed);
  w.Uint("shed", outcome.shed);
  w.Uint("rejected", outcome.rejected);
  w.Uint("failed", outcome.failed);
  w.BeginObject("latency");
  WriteLatency(w, latency, seconds);
  w.EndObject();
}

}  // namespace

exp::RunResult RunLoadBench() {
  PrintHeader(
      "staq bench load — columnar batch evaluation + open-loop SLO generator");

  const synth::CitySpec spec =
      synth::CitySpec::Brindale(BenchScale(), BenchSeed());
  core::GravityConfig gravity;
  {
    // CalibratedGravityConfig needs the spec; rate follows the bench knob.
    gravity = core::CalibratedGravityConfig(spec);
    gravity.sample_rate_per_hour = BenchRate();
  }
  const std::vector<core::CostMember> members = SweepMembers();

  // --- section 1: measure_eval (the 10x gate) ---------------------------
  auto built = synth::BuildCity(spec);
  if (!built.ok()) {
    std::fprintf(stderr, "city build failed: %s\n",
                 built.status().ToString().c_str());
    return {1, ""};
  }
  const size_t num_zones = built.value().zones.size();
  core::AccessQueryEngine engine(std::move(built).value(),
                                 gtfs::WeekdayAmPeak());

  core::AccessQueryOptions base;
  base.exact = true;
  base.gravity = gravity;
  base.seed = BenchSeed();

  core::VectorQuerySpec scalar_spec;
  scalar_spec.cost_members = members;
  scalar_spec.use_columnar = false;
  util::Stopwatch scalar_watch;
  auto scalar = engine.QueryVector(synth::PoiCategory::kSchool, base,
                                   scalar_spec);
  const double scalar_s = scalar_watch.ElapsedSeconds();
  if (!scalar.ok()) {
    std::fprintf(stderr, "scalar foil failed: %s\n",
                 scalar.status().ToString().c_str());
    return {1, ""};
  }

  core::VectorQuerySpec columnar_spec = scalar_spec;
  columnar_spec.use_columnar = true;
  util::Stopwatch columnar_watch;
  auto columnar = engine.QueryVector(synth::PoiCategory::kSchool, base,
                                     columnar_spec);
  const double columnar_s = columnar_watch.ElapsedSeconds();
  if (!columnar.ok()) {
    std::fprintf(stderr, "columnar evaluation failed: %s\n",
                 columnar.status().ToString().c_str());
    return {1, ""};
  }

  bool bit_identical = scalar.value().size() == columnar.value().size();
  for (size_t i = 0; bit_identical && i < members.size(); ++i) {
    bit_identical = BitIdentical(scalar.value()[i], columnar.value()[i]);
    if (!bit_identical) {
      std::fprintf(stderr,
                   "GATE FAILED (measure_eval): member %zu differs between "
                   "the columnar path and the scalar foil\n",
                   i);
    }
  }
  if (!bit_identical) return {1, ""};  // correctness gate: never relaxed

  const double speedup = columnar_s > 0.0 ? scalar_s / columnar_s : 0.0;
  const bool speedup_gate = speedup >= kSpeedupFloor;
  std::printf("  measure_eval: %zu members x %zu zones\n", members.size(),
              num_zones);
  std::printf("    scalar foil   %8.3f s  (%7.1f members/s)\n", scalar_s,
              static_cast<double>(members.size()) / scalar_s);
  std::printf("    columnar      %8.3f s  (%7.1f members/s)\n", columnar_s,
              static_cast<double>(members.size()) / columnar_s);
  std::printf("    speedup       %8.2fx  (floor %.0fx)  %s\n", speedup,
              kSpeedupFloor, speedup_gate ? "PASS" : "FAIL");
  std::printf("    all %zu members bit-identical to the scalar foil\n",
              members.size());

  // --- section 2: open-loop load at the target QPS ----------------------
  const double target_qps = std::atof(Params().Extra("load_qps", "2000").c_str());
  const double load_s = std::atof(Params().Extra("load_s", "2").c_str());
  const double shed_budget_s =
      std::atof(Params().Extra("shed_budget_s", "0.005").c_str());

  auto serve_city = synth::BuildCity(spec);
  if (!serve_city.ok()) {
    std::fprintf(stderr, "city build failed: %s\n",
                 serve_city.status().ToString().c_str());
    return {1, ""};
  }
  serve::AqServer::Options options;
  options.num_threads =
      Params().threads > 0
          ? static_cast<unsigned>(Params().threads)
          : std::max(2u, std::thread::hardware_concurrency());
  options.max_queue_delay_s = shed_budget_s;
  serve::AqServer server(std::move(serve_city).value(), gtfs::WeekdayAmPeak(),
                         options);

  // Warm the cache through the serve batch tier: one SubmitBatch evaluates
  // the whole sweep in a single labeling pass and fills the result cache
  // under every derived single-query key the generator will hit.
  serve::AqBatchRequest batch;
  batch.request.category = synth::PoiCategory::kSchool;
  batch.request.options = base;
  batch.cost_members = members;
  std::vector<serve::AqRequest> mix = serve::ExpandBatch(batch);
  util::Stopwatch warm_watch;
  auto warm = server.QueryBatch(batch);
  const double warm_s = warm_watch.ElapsedSeconds();
  for (const auto& result : warm) {
    if (!result.ok()) {
      std::fprintf(stderr, "warm batch failed: %s\n",
                   result.status().ToString().c_str());
      return {1, ""};
    }
  }
  // Spot-gate the serve batch path against from-scratch goldens (a full
  // per-member gate would cost another 16 passes; the dedicated serve
  // tests cover that exhaustively).
  for (size_t i = 0; i < mix.size(); i += 5) {
    auto golden = server.QueryUncached(mix[i]);
    if (!golden.ok() || !SameAnswer(warm[i].value(), golden.value())) {
      std::fprintf(stderr,
                   "GATE FAILED (warm): batch member %zu differs from the "
                   "uncached golden\n",
                   i);
      return {1, ""};
    }
  }
  // Settle the service-time estimator on cached-hit timings so the load
  // phase starts from the steady state it measures.
  for (size_t i = 0; i < 4 * mix.size(); ++i) {
    if (!server.Query(mix[i % mix.size()]).ok()) return {1, ""};
  }

  const size_t load_total = static_cast<size_t>(target_qps * load_s);
  util::Stopwatch load_watch;
  PhaseOutcome load = RunOpenLoop(server, mix, load_total, target_qps);
  const double load_seconds = load_watch.ElapsedSeconds();
  LatencySummary load_latency = Summarise(load.latency_ms);
  std::printf("\n  load: target %.0f q/s for %.1f s over the %zu-member "
              "cached mix (%zu workers, shed budget %.1f ms)\n",
              target_qps, load_s, mix.size(), server.num_threads(),
              shed_budget_s * 1e3);
  std::printf("    offered %zu  completed %zu  shed %zu  rejected %zu  "
              "failed %zu\n",
              load_total, load.completed, load.shed, load.rejected,
              load.failed);
  std::printf("    latency p50 %7.3f  p95 %7.3f  p99 %7.3f ms  "
              "(achieved %.1f q/s)\n",
              load_latency.p50_ms, load_latency.p95_ms, load_latency.p99_ms,
              load_seconds > 0
                  ? static_cast<double>(load.completed) / load_seconds
                  : 0.0);
  if (load.failed > 0) {
    std::fprintf(stderr, "GATE FAILED (load): %zu requests failed\n",
                 load.failed);
    return {1, ""};
  }

  // --- section 3: overload (the shedding gate) --------------------------
  // Distinct TODAM seeds defeat both the result cache and the label-state
  // memo, so every admitted request is a full labeling pass: offered load
  // far exceeds capacity and the delay-budget path must engage.
  std::vector<serve::AqRequest> expensive;
  expensive.reserve(256);
  for (size_t i = 0; i < 256; ++i) {
    serve::AqRequest request = batch.request;
    request.options.seed = BenchSeed() + 1000 + i;
    expensive.push_back(request);
  }
  const size_t overload_total =
      static_cast<size_t>(target_qps * load_s / 2.0);
  util::Stopwatch overload_watch;
  PhaseOutcome overload =
      RunOpenLoop(server, expensive, overload_total, target_qps);
  const double overload_seconds = overload_watch.ElapsedSeconds();
  LatencySummary overload_latency = Summarise(overload.latency_ms);
  const bool shed_gate = overload.shed >= 1;
  std::printf("\n  overload: %zu uncacheable exact requests at %.0f q/s\n",
              overload_total, target_qps);
  std::printf("    admitted+completed %zu  shed %zu  rejected %zu  "
              "failed %zu  %s\n",
              overload.completed, overload.shed, overload.rejected,
              overload.failed, shed_gate ? "PASS" : "FAIL (nothing shed)");

  serve::ServerStats stats = server.stats();

  JsonWriter w;
  w.BeginObject();
  w.String("bench", "load");
  w.String("city", spec.name);
  w.Fixed("scale", BenchScale(), 4);
  w.Int("rate_per_hour", BenchRate());
  w.Uint("seed", BenchSeed());
  w.Uint("zones", num_zones);
  w.Uint("workers", server.num_threads());
  w.BeginObject("measure_eval");
  w.Uint("members", members.size());
  w.Fixed("scalar_s", scalar_s, 6);
  w.Fixed("columnar_s", columnar_s, 6);
  w.Fixed("scalar_members_per_s",
          static_cast<double>(members.size()) / scalar_s, 2);
  w.Fixed("columnar_members_per_s",
          static_cast<double>(members.size()) / columnar_s, 2);
  w.Fixed("speedup", speedup, 4);
  w.Fixed("speedup_floor", kSpeedupFloor, 1);
  w.Bool("bit_identical", bit_identical);
  w.Bool("gate_passed", speedup_gate);
  w.EndObject();
  w.BeginObject("load");
  w.Fixed("target_qps", target_qps, 1);
  w.Fixed("duration_s", load_s, 3);
  w.Fixed("warm_batch_s", warm_s, 6);
  w.Fixed("shed_budget_ms", shed_budget_s * 1e3, 3);
  WriteOutcome(w, load, load_latency, load_seconds);
  w.EndObject();
  w.BeginObject("overload");
  w.Fixed("target_qps", target_qps, 1);
  WriteOutcome(w, overload, overload_latency, overload_seconds);
  w.Bool("shed_gate_passed", shed_gate);
  w.EndObject();
  w.BeginObject("server_stats");
  w.Uint("submitted", stats.submitted);
  w.Uint("completed", stats.completed);
  w.Uint("shed", stats.shed);
  w.Uint("rejected", stats.rejected);
  w.Uint("cache_hits", stats.cache_hits);
  w.Uint("cache_misses", stats.cache_misses);
  w.Uint("exact_state_builds", stats.exact_state_builds);
  w.EndObject();
  w.EndObject();
  std::string json = w.Take();
  EmitBenchJson("load", json);

  int exit_code = (speedup_gate && shed_gate) ? 0 : 1;
  if (exit_code != 0 && Params().relax_gates) {
    std::printf("  (gate relaxed: reporting only)\n");
    exit_code = 0;
  }
  return {exit_code, std::move(json)};
}

}  // namespace staq::bench
