// Fig. 5 — Predicted GAC MAC choropleth for vaccination centres:
// Brindale at beta = 3%, Covely at beta = 10% (the budgets the paper maps).
//
// Output: a per-zone CSV (zone id, centroid, truth MAC, predicted MAC) and
// a coarse ASCII choropleth comparing the spatial pattern of ground truth
// vs prediction — the "accurately captures accessibility patterns even with
// low labeling budgets" claim, made inspectable in a terminal.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "bench_registry.h"

namespace staq::bench {
namespace {

/// Renders zone values as an ASCII grid using quintile shades.
void AsciiChoropleth(const synth::City& city, const std::vector<double>& mac,
                     const char* title) {
  // Shades light->dark = good->bad access.
  const char kShades[] = {'.', ':', 'o', 'O', '#'};
  std::vector<double> sorted = mac;
  std::sort(sorted.begin(), sorted.end());
  auto shade = [&](double v) {
    size_t rank = std::lower_bound(sorted.begin(), sorted.end(), v) -
                  sorted.begin();
    size_t quintile = rank * 5 / sorted.size();
    return kShades[std::min<size_t>(quintile, 4)];
  };

  // Map zones back onto their lattice; lattice order is row-major by
  // construction.
  int cols = city.spec.zones_x;
  int rows = city.spec.zones_y;
  // Cap the rendering width for readability.
  int step = std::max(1, cols / 64);
  std::printf("\n%s  ('.'=best access quintile, '#'=worst)\n", title);
  for (int y = rows - 1; y >= 0; y -= step) {
    std::printf("  ");
    for (int x = 0; x < cols; x += step) {
      std::printf("%c", shade(mac[static_cast<size_t>(y) * cols + x]));
    }
    std::printf("\n");
  }
}

}  // namespace

exp::RunResult RunFig5Bench() {
  PrintHeader("Fig. 5: predicted GAC MAC maps for vaccination centres");
  util::CsvTable csv({"city", "beta", "zone", "x_m", "y_m", "truth_mac",
                      "predicted_mac", "labeled"});

  struct MapSpec {
    synth::CitySpec spec;
    double beta;
  };
  std::vector<MapSpec> maps{
      {synth::CitySpec::Brindale(BenchScale(), BenchSeed()), 0.03},
      {synth::CitySpec::Covely(BenchScale(), BenchSeed() + 1), 0.10},
  };

  for (MapSpec& map_spec : maps) {
    BenchCity bc = MakeBenchCity(map_spec.spec);
    auto pois = bc.city->PoisOf(synth::PoiCategory::kVaxCenter);
    core::Todam todam =
        bc.pipeline->BuildGravityTodam(pois, bc.gravity, BenchSeed());
    core::GroundTruth truth = bc.pipeline->ComputeGroundTruth(
        pois, todam, core::CostKind::kGeneralizedCost);

    core::PipelineConfig config;
    config.beta = map_spec.beta;
    config.model = ml::ModelKind::kMlp;
    config.cost = core::CostKind::kGeneralizedCost;
    config.seed = BenchSeed();
    auto run = bc.pipeline->Run(pois, todam, config);
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   run.status().ToString().c_str());
      return {1, ""};
    }

    core::EvaluationMetrics m = Evaluate(truth, run.value());
    std::printf("\n=== %s at beta=%.0f%%: MAC corr %.3f, MAE %.1f gen-min ===\n",
                bc.name.c_str(), map_spec.beta * 100, m.mac_corr,
                m.mac_mae / 60);

    AsciiChoropleth(*bc.city, truth.mac, "ground truth");
    AsciiChoropleth(*bc.city, run.value().mac, "SSR prediction");

    std::vector<uint8_t> labeled(bc.city->zones.size(), 0);
    for (uint32_t z : run.value().labeled) labeled[z] = 1;
    for (uint32_t z = 0; z < bc.city->zones.size(); ++z) {
      (void)csv.AddRow({bc.name, util::CsvTable::Num(map_spec.beta, 2),
                        util::CsvTable::Num(static_cast<int64_t>(z)),
                        util::CsvTable::Num(bc.city->zones[z].centroid.x, 1),
                        util::CsvTable::Num(bc.city->zones[z].centroid.y, 1),
                        util::CsvTable::Num(truth.mac[z], 1),
                        util::CsvTable::Num(run.value().mac[z], 1),
                        util::CsvTable::Num(static_cast<int64_t>(labeled[z]))});
    }
  }

  std::printf(
      "\nPaper reference (Fig. 5): the predicted map reproduces the spatial "
      "access\npattern (good centre / worse periphery structure) at low "
      "budgets.\n");
  EmitCsv(csv, "fig5_mac_maps.csv");

  JsonWriter w;
  w.BeginObject();
  w.String("bench", "fig5");
  w.Fixed("scale", BenchScale(), 4);
  w.Int("rate_per_hour", BenchRate());
  w.Uint("seed", BenchSeed());
  w.String("csv", "fig5_mac_maps.csv");
  w.Uint("csv_rows", csv.num_rows());
  w.EndObject();
  std::string json = w.Take();
  EmitBenchJson("fig5", json);
  return {0, std::move(json)};
}

}  // namespace staq::bench
