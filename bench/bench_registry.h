// The bench registry: every experiment in the suite as a linkable entry
// point with a uniform result record.
//
// Each bench_*.cc defines one Run<Name>Bench() returning exp::RunResult
// (exit code + the machine-readable BENCH_*.json document). The table
// below is the single source of truth for what exists; it feeds
//   * the per-bench executables (bench_main.cc stub, one per entry),
//   * `staq_cli bench list` / `bench run`,
//   * the experiment runner (MakeBenchRegistry() adapts entries into an
//     exp::BenchRegistry, overlaying cell parameters onto BenchParams).
//
// Micro benches (google-benchmark binaries) are listed for `bench list`
// completeness but carry no entry point — they keep their own mains.
#pragma once

#include <string>
#include <vector>

#include "exp/runner.h"

namespace staq::bench {

/// Kind of bench: "perf" emits a gated BENCH_*.json, "paper" reproduces a
/// paper table/figure (CSV + summary JSON), "micro" is a google-benchmark
/// binary with no linkable entry point.
struct BenchInfo {
  const char* name;
  const char* kind;
  const char* title;
  exp::RunResult (*fn)();  // nullptr for micro benches
};

/// All benches, in suite order.
const std::vector<BenchInfo>& BenchTable();

/// The bench for `name`, or nullptr.
const BenchInfo* FindBench(const std::string& name);

/// Adapts every runnable entry into an exp::BenchRegistry. Each call
/// rebuilds BenchParams from the environment, overlays the cell's
/// parameters, and installs them for the bench's duration.
exp::BenchRegistry MakeBenchRegistry();

/// Entry point for the per-bench executables: runs `name` with
/// environment parameters and returns its exit code.
int RunBenchMain(const char* name);

// One entry point per bench (defined in the matching bench_*.cc).
exp::RunResult RunLabelingBench();
exp::RunResult RunMlBench();
exp::RunResult RunStoreBench();
exp::RunResult RunServeBench();
exp::RunResult RunLoadBench();
exp::RunResult RunNetBench();
exp::RunResult RunQualityBench();
exp::RunResult RunTable1Bench();
exp::RunResult RunTable2Bench();
exp::RunResult RunFig3Bench();
exp::RunResult RunFig4Bench();
exp::RunResult RunFig5Bench();
exp::RunResult RunAblationBench();

}  // namespace staq::bench
