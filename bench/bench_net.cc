// Distributed serving: the serve bench mix over real TCP.
//
// Topology: one primary AqServer (mutations logged to its WAL) plus three
// snapshot+replay replicas, fronted by a QueryRouter — the "Distributed
// serving" quickstart in README.md, driven as one process. The run:
//
//   cold    — first routed query per distinct mix request
//   steady  — rounds over the mix with POI edits landing between rounds;
//             one replica is killed mid-phase and restarted later
//             (rebootstrapping from the snapshot, catching up from the
//             WAL), so the phase includes real failover latency
//
// Correctness gates run on every single response: each routed answer is
// compared field-by-field against AqServer::QueryUncached() on the
// primary — the single in-process server the distributed tier must be
// indistinguishable from. Any mismatch aborts with exit code 1.
//
// Alongside the networked latencies the bench measures the WAL itself:
// per-append cost under the fsync-every-append durability contract, and
// recovery (reopen + full read-back) cost, on a scratch log.
//
// Output: tables on stdout, BENCH_net.json in STAQ_BENCH_OUT.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_registry.h"
#include "net/client.h"
#include "net/replica.h"
#include "net/router.h"
#include "net/server.h"
#include "serve/server.h"
#include "util/stopwatch.h"
#include "wal/wal.h"

namespace staq::bench {
namespace {

namespace fs = std::filesystem;

bool SameAnswer(const core::AccessQueryResult& a,
                const core::AccessQueryResult& b) {
  return a.mac == b.mac && a.acsd == b.acsd && a.classes == b.classes &&
         a.mean_mac == b.mean_mac && a.mean_acsd == b.mean_acsd &&
         a.fairness == b.fairness &&
         a.population_fairness == b.population_fairness &&
         a.vulnerable_fairness == b.vulnerable_fairness &&
         a.gravity_trips == b.gravity_trips;
}

void PrintPhase(const char* name, const LatencySummary& s, double seconds) {
  std::printf("  %-8s %6zu req %9.3f s %8.1f q/s   p50 %8.2f  p95 %8.2f  "
              "p99 %8.2f ms\n",
              name, s.n, seconds,
              seconds > 0 ? static_cast<double>(s.n) / seconds : 0.0, s.p50_ms,
              s.p95_ms, s.p99_ms);
}

std::unique_ptr<net::Replica> StartReplica(const synth::City& city,
                                           const std::string& snapshot,
                                           const std::string& wal_dir,
                                           uint16_t port = 0) {
  net::Replica::Options options;
  options.snapshot_path = snapshot;
  options.wal_dir = wal_dir;
  options.serve.num_threads = 2;
  options.tcp.port = port;
  auto replica = net::Replica::Start(city, gtfs::WeekdayAmPeak(), options);
  if (!replica.ok()) {
    std::fprintf(stderr, "replica start failed: %s\n",
                 replica.status().ToString().c_str());
    return nullptr;
  }
  return std::move(replica).value();
}

/// WAL microcosts on a scratch directory: per-append latency under the
/// fsync-every-append contract, then recovery (reopen + full read-back).
struct WalCosts {
  LatencySummary append;
  double append_seconds = 0.0;
  double recovery_open_ms = 0.0;
  double recovery_read_ms = 0.0;
  size_t records = 0;
  uint64_t bytes = 0;
};

bool MeasureWal(const std::string& dir, WalCosts* costs) {
  fs::remove_all(dir);
  constexpr size_t kRecords = 256;
  std::vector<double> append_ms;
  append_ms.reserve(kRecords);
  util::Stopwatch phase;
  {
    auto wal = wal::MutationWal::Open(dir);
    if (!wal.ok()) {
      std::fprintf(stderr, "wal open failed: %s\n",
                   wal.status().ToString().c_str());
      return false;
    }
    for (size_t i = 1; i <= kRecords; ++i) {
      wal::MutationRecord record = wal::MutationRecord::AddPoi(
          i, synth::PoiCategory::kSchool,
          geo::Point{static_cast<double>(i), 0.0},
          static_cast<uint32_t>(1000 + i));
      util::Stopwatch watch;
      auto appended = wal.value()->Append(record);
      append_ms.push_back(watch.ElapsedMillis());
      if (!appended.ok()) {
        std::fprintf(stderr, "wal append failed: %s\n",
                     appended.ToString().c_str());
        return false;
      }
    }
    costs->bytes = wal.value()->stats().bytes_appended;
  }
  costs->append = Summarise(std::move(append_ms));
  costs->append_seconds = phase.ElapsedSeconds();
  costs->records = kRecords;

  util::Stopwatch open_watch;
  auto reopened = wal::MutationWal::Open(dir);
  costs->recovery_open_ms = open_watch.ElapsedMillis();
  if (!reopened.ok() || reopened.value()->last_sequence() != kRecords) {
    std::fprintf(stderr, "wal recovery failed\n");
    return false;
  }
  util::Stopwatch read_watch;
  auto contents = wal::ReadLog(dir);
  costs->recovery_read_ms = read_watch.ElapsedMillis();
  if (!contents.ok() || contents.value().records.size() != kRecords) {
    std::fprintf(stderr, "wal read-back failed\n");
    return false;
  }
  fs::remove_all(dir);
  return true;
}

}  // namespace

exp::RunResult RunNetBench() {
  PrintHeader("staq::net — router + 3 replicas over TCP, kill-and-recover");

  const synth::CitySpec spec =
      synth::CitySpec::Brindale(BenchScale(), BenchSeed());
  auto built = synth::BuildCity(spec);
  if (!built.ok()) {
    std::fprintf(stderr, "city build failed: %s\n",
                 built.status().ToString().c_str());
    return {1, ""};
  }
  synth::City city = std::move(built).value();
  const size_t num_zones = city.zones.size();

  core::GravityConfig gravity = core::CalibratedGravityConfig(spec);
  gravity.sample_rate_per_hour = BenchRate();

  // The primary: the single in-process AqServer every routed response is
  // gated against, logging mutations to the WAL the replicas tail.
  const std::string wal_dir = OutDir() + "/bench_net_wal";
  const std::string snapshot = OutDir() + "/bench_net_snapshot.staq";
  fs::remove_all(wal_dir);
  serve::AqServer::Options primary_options;
  primary_options.num_threads = 4;
  serve::AqServer primary(std::move(city), gtfs::WeekdayAmPeak(),
                          primary_options);
  auto wal = wal::MutationWal::Open(wal_dir);
  if (!wal.ok()) {
    std::fprintf(stderr, "wal open failed: %s\n",
                 wal.status().ToString().c_str());
    return {1, ""};
  }
  if (auto attached = primary.AttachWal(wal.value().get()); !attached.ok()) {
    std::fprintf(stderr, "attach failed: %s\n", attached.ToString().c_str());
    return {1, ""};
  }
  net::AqTcpServer primary_tcp(&primary, net::AqTcpServer::Options());
  if (!primary_tcp.Start().ok()) {
    std::fprintf(stderr, "primary tcp start failed\n");
    return {1, ""};
  }

  util::Stopwatch snapshot_watch;
  if (auto exported = primary.ExportSnapshot(snapshot); !exported.ok()) {
    std::fprintf(stderr, "snapshot export failed: %s\n",
                 exported.ToString().c_str());
    return {1, ""};
  }
  const double snapshot_export_ms = snapshot_watch.ElapsedMillis();

  std::vector<std::unique_ptr<net::Replica>> replicas;
  std::vector<double> bootstrap_ms;
  for (int i = 0; i < 3; ++i) {
    util::Stopwatch watch;
    replicas.push_back(
        StartReplica(primary.base_city(), snapshot, wal_dir));
    bootstrap_ms.push_back(watch.ElapsedMillis());
    if (replicas.back() == nullptr) return {1, ""};
  }
  std::printf("  city=%s  zones=%zu  primary + 3 replicas over loopback TCP\n",
              spec.name.c_str(), num_zones);
  std::printf("  snapshot export %.1f ms, replica bootstrap %.1f / %.1f / "
              "%.1f ms\n",
              snapshot_export_ms, bootstrap_ms[0], bootstrap_ms[1],
              bootstrap_ms[2]);

  std::vector<net::Backend> backends{{"127.0.0.1", primary_tcp.port()}};
  for (const auto& replica : replicas) {
    backends.push_back(net::Backend{"127.0.0.1", replica->port()});
  }
  net::QueryRouter::Options router_options;
  router_options.max_attempts = static_cast<int>(backends.size());
  net::QueryRouter router({backends}, router_options);
  const net::ShardKey key{spec.name, "am-peak"};

  // The serve bench mix: one exact query per category, a reseeded exact,
  // and two SSR queries at different budgets/models.
  std::vector<serve::AqRequest> mix;
  for (synth::PoiCategory category : PaperCategories()) {
    serve::AqRequest request;
    request.category = category;
    request.options.exact = true;
    request.options.gravity = gravity;
    request.options.seed = BenchSeed();
    mix.push_back(request);
  }
  {
    serve::AqRequest reseed = mix.front();
    reseed.options.seed = BenchSeed() + 1;
    mix.push_back(reseed);
  }
  {
    serve::AqRequest ssr = mix.front();
    ssr.options.exact = false;
    ssr.options.beta = 0.07;
    ssr.options.model = ml::ModelKind::kOls;
    mix.push_back(ssr);
    ssr.options.beta = 0.10;
    ssr.options.model = ml::ModelKind::kCoreg;
    mix.push_back(ssr);
  }

  // Gate: the routed answer vs the primary recomputing from scratch.
  auto gate = [&](const serve::AqRequest& request,
                  const util::Result<net::QueryResultMsg>& routed,
                  const char* what) {
    if (!routed.ok()) {
      std::fprintf(stderr, "GATE FAILED (%s): routed query error: %s\n", what,
                   routed.status().ToString().c_str());
      return false;
    }
    auto golden = primary.QueryUncached(request);
    if (!golden.ok()) {
      std::fprintf(stderr, "GATE FAILED (%s): golden error: %s\n", what,
                   golden.status().ToString().c_str());
      return false;
    }
    if (!SameAnswer(routed.value().result, golden.value())) {
      std::fprintf(stderr,
                   "GATE FAILED (%s): routed answer differs from the "
                   "in-process golden\n",
                   what);
      return false;
    }
    return true;
  };

  // --- cold: first routed query per distinct request --------------------
  std::vector<double> cold_ms;
  util::Stopwatch cold_watch;
  for (const serve::AqRequest& request : mix) {
    util::Stopwatch watch;
    auto routed = router.Query(key, request);
    cold_ms.push_back(watch.ElapsedMillis());
    if (!gate(request, routed, "cold")) return {1, ""};
  }
  const double cold_seconds = cold_watch.ElapsedSeconds();
  LatencySummary cold = Summarise(std::move(cold_ms));

  // --- steady: rounds over the mix, edits landing in between, one
  // replica killed and recovered mid-phase ------------------------------
  const geo::BBox& extent = primary.base_city().extent;
  const geo::Point corner{extent.min_x, extent.min_y};
  const int kRounds = 8;
  const int kill_round = 3, restart_round = 6;
  const uint16_t killed_port = replicas[0]->port();
  double replica_restart_ms = 0.0;
  uint64_t expected_sequence = 0;
  uint32_t pending_poi = 0;

  std::vector<double> steady_ms;
  util::Stopwatch steady_watch;
  for (int round = 0; round < kRounds; ++round) {
    if (round == kill_round) {
      replicas[0]->Stop();
      replicas[0].reset();
      std::printf("  [round %d] replica 0 killed\n", round);
    }
    if (round == restart_round) {
      util::Stopwatch watch;
      replicas[0] = StartReplica(primary.base_city(), snapshot, wal_dir,
                                 killed_port);
      if (replicas[0] == nullptr) return {1, ""};
      if (!replicas[0]->CatchUp(expected_sequence, 60.0).ok()) {
        std::fprintf(stderr, "restarted replica failed to catch up\n");
        return {1, ""};
      }
      replica_restart_ms = watch.ElapsedMillis();
      std::printf("  [round %d] replica 0 restarted and caught up in "
                  "%.1f ms\n",
                  round, replica_restart_ms);
    }

    // One POI edit between rounds: add on even rounds, remove it on odd —
    // each routed to the primary, logged, and replicated.
    if (round % 2 == 0) {
      auto added = router.AddPoi(key, synth::PoiCategory::kSchool, corner);
      if (!added.ok()) {
        std::fprintf(stderr, "routed add failed: %s\n",
                     added.status().ToString().c_str());
        return {1, ""};
      }
      pending_poi = added.value().report.poi_id;
      expected_sequence = added.value().sequence;
    } else {
      auto removed = router.RemovePoi(key, pending_poi);
      if (!removed.ok()) {
        std::fprintf(stderr, "routed remove failed: %s\n",
                     removed.status().ToString().c_str());
        return {1, ""};
      }
      expected_sequence = removed.value().sequence;
    }

    for (const serve::AqRequest& request : mix) {
      util::Stopwatch watch;
      auto routed = router.Query(key, request);
      steady_ms.push_back(watch.ElapsedMillis());
      if (!gate(request, routed, "steady")) return {1, ""};
      if (routed.value().sequence < expected_sequence) {
        std::fprintf(stderr,
                     "GATE FAILED (steady): answer at sequence %llu below "
                     "the read-your-writes floor %llu\n",
                     static_cast<unsigned long long>(routed.value().sequence),
                     static_cast<unsigned long long>(expected_sequence));
        return {1, ""};
      }
    }
  }
  const double steady_seconds = steady_watch.ElapsedSeconds();
  LatencySummary steady = Summarise(std::move(steady_ms));

  const net::QueryRouter::Stats router_stats = router.stats();
  const wal::WalStats wal_stats = wal.value()->stats();

  // --- WAL microcosts on a scratch log ----------------------------------
  WalCosts wal_costs;
  if (!MeasureWal(OutDir() + "/bench_net_scratch_wal", &wal_costs)) return {1, ""};

  std::printf("\n  every routed response bit-identical to the primary's "
              "QueryUncached golden\n\n");
  PrintPhase("cold", cold, cold_seconds);
  PrintPhase("steady", steady, steady_seconds);
  std::printf("\n  router: %llu queries, %llu mutations, %llu failovers, "
              "%llu redials\n",
              static_cast<unsigned long long>(router_stats.queries),
              static_cast<unsigned long long>(router_stats.mutations),
              static_cast<unsigned long long>(router_stats.failovers),
              static_cast<unsigned long long>(router_stats.redials));
  std::printf("  primary wal: %llu appends, %llu bytes, %llu fsyncs\n",
              static_cast<unsigned long long>(wal_stats.appends),
              static_cast<unsigned long long>(wal_stats.bytes_appended),
              static_cast<unsigned long long>(wal_stats.syncs));
  std::printf("  wal append (fsync each): mean %.3f ms  p50 %.3f  p95 %.3f "
              "over %zu records\n",
              wal_costs.append.mean_ms, wal_costs.append.p50_ms,
              wal_costs.append.p95_ms, wal_costs.records);
  std::printf("  wal recovery: reopen %.2f ms, read-back %.2f ms (%llu "
              "bytes)\n",
              wal_costs.recovery_open_ms, wal_costs.recovery_read_ms,
              static_cast<unsigned long long>(wal_costs.bytes));
  std::printf("  replica restart (snapshot + replay + catch-up): %.1f ms\n",
              replica_restart_ms);

  JsonWriter w;
  w.BeginObject();
  w.String("bench", "net");
  w.String("city", spec.name);
  w.Fixed("scale", BenchScale(), 4);
  w.Int("rate_per_hour", BenchRate());
  w.Uint("seed", BenchSeed());
  w.Uint("zones", num_zones);
  w.Uint("replicas", replicas.size());
  w.Bool("bit_identical", true);
  w.BeginArray("phases");
  auto phase_json = [&w](const char* name, const LatencySummary& s,
                         double seconds) {
    w.BeginObject();
    w.String("name", name);
    WriteLatency(w, s, seconds);
    w.EndObject();
  };
  phase_json("cold", cold, cold_seconds);
  phase_json("steady", steady, steady_seconds);
  w.EndArray();
  w.BeginObject("router");
  w.Uint("queries", router_stats.queries);
  w.Uint("mutations", router_stats.mutations);
  w.Uint("failovers", router_stats.failovers);
  w.Uint("redials", router_stats.redials);
  w.EndObject();
  w.BeginObject("wal");
  w.Fixed("append_mean_ms", wal_costs.append.mean_ms, 4);
  w.Fixed("append_p50_ms", wal_costs.append.p50_ms, 4);
  w.Fixed("append_p95_ms", wal_costs.append.p95_ms, 4);
  w.Bool("append_p95_approx", wal_costs.append.p95_approx);
  w.Uint("append_records", wal_costs.records);
  w.Fixed("recovery_open_ms", wal_costs.recovery_open_ms, 4);
  w.Fixed("recovery_read_ms", wal_costs.recovery_read_ms, 4);
  w.Uint("bytes", wal_costs.bytes);
  w.EndObject();
  w.BeginObject("replication");
  w.Fixed("snapshot_export_ms", snapshot_export_ms, 4);
  w.BeginArray("bootstrap_ms");
  for (double ms : bootstrap_ms) w.Fixed(nullptr, ms, 4);
  w.EndArray();
  w.Fixed("restart_recover_ms", replica_restart_ms, 4);
  w.EndObject();
  w.EndObject();
  std::string json = w.Take();
  EmitBenchJson("net", json);

  for (auto& replica : replicas) replica->Stop();
  primary_tcp.Stop();
  fs::remove_all(wal_dir);
  fs::remove(snapshot);
  return {0, std::move(json)};
}

}  // namespace staq::bench
