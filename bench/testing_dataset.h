// Synthetic zone-like datasets for the ML micro-benchmarks: smooth spatial
// targets over jittered positions, mirroring what the pipeline feeds the
// SSR models.
#pragma once

#include <cmath>

#include "ml/gnn.h"
#include "ml/model.h"
#include "util/rng.h"

namespace staq::bench {

inline ml::Dataset MakeZoneLikeDataset(size_t zones, size_t features,
                                       double beta, uint64_t seed) {
  util::Rng rng(seed);
  ml::Dataset data;
  data.x = ml::Matrix(zones, features);
  data.y.resize(zones);
  data.positions.resize(zones);
  for (size_t i = 0; i < zones; ++i) {
    double px = rng.Uniform(0, 12000), py = rng.Uniform(0, 12000);
    data.positions[i] = geo::Point{px, py};
    for (size_t c = 0; c < features; ++c) {
      data.x(i, c) =
          std::sin(px / 1500.0 + static_cast<double>(c)) + py / 4000.0 +
          rng.Normal(0, 0.25);
    }
    data.y[i] = 1800 + px / 10.0 + 400 * std::sin(py / 2000.0) +
                rng.Normal(0, 60);
  }
  size_t labeled =
      std::max<size_t>(2, static_cast<size_t>(beta * static_cast<double>(zones)));
  auto sample = rng.SampleWithoutReplacement(zones, labeled);
  data.labeled.assign(sample.begin(), sample.end());
  return data;
}

}  // namespace staq::bench
