#include "geo/latlon.h"

namespace staq::geo {

namespace {
constexpr double kDegToRad = 0.017453292519943295;
constexpr double kRadToDeg = 57.29577951308232;
}  // namespace

double HaversineMeters(const LatLon& a, const LatLon& b) {
  double lat1 = a.lat * kDegToRad;
  double lat2 = b.lat * kDegToRad;
  double dlat = (b.lat - a.lat) * kDegToRad;
  double dlon = (b.lon - a.lon) * kDegToRad;
  double s1 = std::sin(dlat / 2);
  double s2 = std::sin(dlon / 2);
  double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  if (h > 1.0) h = 1.0;
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(h));
}

LocalProjection::LocalProjection(const LatLon& origin)
    : origin_(origin), cos_lat_(std::cos(origin.lat * kDegToRad)) {}

Point LocalProjection::Project(const LatLon& c) const {
  return Point{(c.lon - origin_.lon) * kDegToRad * kEarthRadiusMeters * cos_lat_,
               (c.lat - origin_.lat) * kDegToRad * kEarthRadiusMeters};
}

LatLon LocalProjection::Unproject(const Point& p) const {
  return LatLon{origin_.lat + (p.y / kEarthRadiusMeters) * kRadToDeg,
                origin_.lon +
                    (p.x / (kEarthRadiusMeters * cos_lat_)) * kRadToDeg};
}

}  // namespace staq::geo
