// Uniform-grid spatial index.
//
// Complements the k-d tree for dense radius queries with a fixed radius —
// e.g. "all bus stops within the walking budget of a zone centroid", where
// the query radius is known up front and queries are issued for every zone.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/kdtree.h"  // for IndexedPoint / Neighbor
#include "geo/latlon.h"

namespace staq::geo {

/// Buckets points into square cells of a fixed size; radius queries visit
/// only the cells overlapping the query disc.
class GridIndex {
 public:
  /// Builds the index with the given cell size in metres. A cell size close
  /// to the typical query radius is near-optimal. Requires cell_size > 0.
  GridIndex(std::vector<IndexedPoint> points, double cell_size);

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// All points within `radius` metres of `query`, ascending by distance.
  std::vector<Neighbor> WithinRadius(const Point& query, double radius) const;

  /// Reuse-buffer variant: fills `*out` (cleared first) with the same
  /// result. `out` keeps its capacity across calls, so repeated queries
  /// through a warmed buffer allocate nothing.
  void WithinRadius(const Point& query, double radius,
                    std::vector<Neighbor>* out) const;

  /// Nearest point, searched by expanding rings of cells. Requires a
  /// non-empty index.
  Neighbor Nearest(const Point& query) const;

 private:
  int64_t CellX(double x) const;
  int64_t CellY(double y) const;
  size_t CellIndex(int64_t cx, int64_t cy) const;
  void ScanCell(int64_t cx, int64_t cy, const Point& query, double radius_sq,
                std::vector<Neighbor>* out) const;

  std::vector<IndexedPoint> points_;
  double cell_size_;
  double min_x_ = 0.0, min_y_ = 0.0;
  int64_t cols_ = 0, rows_ = 0;
  // CSR-style layout: cell_start_[c]..cell_start_[c+1] indexes into order_.
  std::vector<uint32_t> cell_start_;
  std::vector<uint32_t> order_;
};

}  // namespace staq::geo
