// Geographic primitives: WGS-84 coordinates, great-circle distance, and a
// local equirectangular projection into metres.
//
// staq keeps raw inputs (zone centroids, stops, POIs) in lat/lon, but all
// geometric computation (isochrones, k-NN, interchange tests) happens in a
// per-city local projection where Euclidean distance approximates ground
// distance to well under 0.1% at city scale.
#pragma once

#include <cmath>

namespace staq::geo {

/// Mean Earth radius in metres (IUGG).
inline constexpr double kEarthRadiusMeters = 6371008.8;

/// A WGS-84 coordinate in decimal degrees.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;

  bool operator==(const LatLon&) const = default;
};

/// A point in a local projected plane, metres east (x) / north (y) of the
/// projection origin.
struct Point {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Point&) const = default;
};

/// Euclidean distance between two projected points, in metres.
inline double Distance(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared Euclidean distance (avoids the sqrt for comparisons).
inline double DistanceSquared(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Great-circle (haversine) distance between two coordinates, in metres.
double HaversineMeters(const LatLon& a, const LatLon& b);

/// Equirectangular projection centred on a reference coordinate.
///
/// Within a ~50 km city radius the distortion relative to haversine is
/// negligible for accessibility purposes; the projection is exactly
/// invertible.
class LocalProjection {
 public:
  /// Creates a projection whose origin (0,0) is `origin`.
  explicit LocalProjection(const LatLon& origin);

  const LatLon& origin() const { return origin_; }

  /// Projects a coordinate to local metres.
  Point Project(const LatLon& c) const;

  /// Inverse projection back to lat/lon.
  LatLon Unproject(const Point& p) const;

 private:
  LatLon origin_;
  double cos_lat_;  // cos(origin.lat), cached for Project/Unproject.
};

/// Axis-aligned bounding box in projected metres.
struct BBox {
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  bool Intersects(const BBox& o) const {
    return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
           o.min_y <= max_y;
  }
  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }
};

}  // namespace staq::geo
