#include "geo/kdtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace staq::geo {

namespace {

inline double Coord(const Point& p, int axis) { return axis == 0 ? p.x : p.y; }

/// Max-heap ordering on distance for the k-NN candidate set.
inline bool HeapLess(const Neighbor& a, const Neighbor& b) {
  return a.distance < b.distance;
}

}  // namespace

KdTree::KdTree(std::vector<IndexedPoint> points) : points_(std::move(points)) {
  if (!points_.empty()) Build(0, points_.size(), 0);
}

void KdTree::Build(size_t begin, size_t end, int axis) {
  if (end - begin <= 1) return;
  size_t mid = begin + (end - begin) / 2;
  std::nth_element(points_.begin() + begin, points_.begin() + mid,
                   points_.begin() + end,
                   [axis](const IndexedPoint& a, const IndexedPoint& b) {
                     return Coord(a.point, axis) < Coord(b.point, axis);
                   });
  Build(begin, mid, 1 - axis);
  Build(mid + 1, end, 1 - axis);
}

Neighbor KdTree::Nearest(const Point& query) const {
  assert(!points_.empty());
  Neighbor best{points_[0].id,
                std::sqrt(DistanceSquared(points_[0].point, query))};
  double best_dist_sq = best.distance * best.distance;
  NearestImpl(0, points_.size(), 0, query, &best, &best_dist_sq);
  best.distance = std::sqrt(best_dist_sq);
  return best;
}

void KdTree::NearestImpl(size_t begin, size_t end, int axis,
                         const Point& query, Neighbor* best,
                         double* best_dist_sq) const {
  if (begin >= end) return;
  size_t mid = begin + (end - begin) / 2;
  const IndexedPoint& node = points_[mid];
  double d_sq = DistanceSquared(node.point, query);
  if (d_sq < *best_dist_sq) {
    *best_dist_sq = d_sq;
    best->id = node.id;
  }
  double delta = Coord(query, axis) - Coord(node.point, axis);
  // Descend into the near side first; prune the far side by plane distance.
  if (delta < 0) {
    NearestImpl(begin, mid, 1 - axis, query, best, best_dist_sq);
    if (delta * delta < *best_dist_sq) {
      NearestImpl(mid + 1, end, 1 - axis, query, best, best_dist_sq);
    }
  } else {
    NearestImpl(mid + 1, end, 1 - axis, query, best, best_dist_sq);
    if (delta * delta < *best_dist_sq) {
      NearestImpl(begin, mid, 1 - axis, query, best, best_dist_sq);
    }
  }
}

std::vector<Neighbor> KdTree::KNearest(const Point& query, size_t k) const {
  std::vector<Neighbor> heap;
  if (k == 0 || points_.empty()) return heap;
  heap.reserve(k + 1);
  KNearestImpl(0, points_.size(), 0, query, k, &heap);
  std::sort_heap(heap.begin(), heap.end(), HeapLess);
  return heap;
}

void KdTree::KNearestImpl(size_t begin, size_t end, int axis,
                          const Point& query, size_t k,
                          std::vector<Neighbor>* heap) const {
  if (begin >= end) return;
  size_t mid = begin + (end - begin) / 2;
  const IndexedPoint& node = points_[mid];
  double dist = std::sqrt(DistanceSquared(node.point, query));
  if (heap->size() < k) {
    heap->push_back(Neighbor{node.id, dist});
    std::push_heap(heap->begin(), heap->end(), HeapLess);
  } else if (dist < heap->front().distance) {
    std::pop_heap(heap->begin(), heap->end(), HeapLess);
    heap->back() = Neighbor{node.id, dist};
    std::push_heap(heap->begin(), heap->end(), HeapLess);
  }
  double delta = Coord(query, axis) - Coord(node.point, axis);
  double worst = heap->size() < k ? std::numeric_limits<double>::infinity()
                                  : heap->front().distance;
  if (delta < 0) {
    KNearestImpl(begin, mid, 1 - axis, query, k, heap);
    worst = heap->size() < k ? std::numeric_limits<double>::infinity()
                             : heap->front().distance;
    if (std::abs(delta) < worst) {
      KNearestImpl(mid + 1, end, 1 - axis, query, k, heap);
    }
  } else {
    KNearestImpl(mid + 1, end, 1 - axis, query, k, heap);
    worst = heap->size() < k ? std::numeric_limits<double>::infinity()
                             : heap->front().distance;
    if (std::abs(delta) < worst) {
      KNearestImpl(begin, mid, 1 - axis, query, k, heap);
    }
  }
}

std::vector<Neighbor> KdTree::WithinRadius(const Point& query,
                                           double radius) const {
  std::vector<Neighbor> out;
  if (points_.empty() || radius < 0) return out;
  RadiusImpl(0, points_.size(), 0, query, radius * radius, &out);
  std::sort(out.begin(), out.end(), HeapLess);
  return out;
}

void KdTree::RadiusImpl(size_t begin, size_t end, int axis, const Point& query,
                        double radius_sq, std::vector<Neighbor>* out) const {
  if (begin >= end) return;
  size_t mid = begin + (end - begin) / 2;
  const IndexedPoint& node = points_[mid];
  double d_sq = DistanceSquared(node.point, query);
  if (d_sq <= radius_sq) {
    out->push_back(Neighbor{node.id, std::sqrt(d_sq)});
  }
  double delta = Coord(query, axis) - Coord(node.point, axis);
  if (delta < 0 || delta * delta <= radius_sq) {
    RadiusImpl(begin, mid, 1 - axis, query, radius_sq, out);
  }
  if (delta > 0 || delta * delta <= radius_sq) {
    RadiusImpl(mid + 1, end, 1 - axis, query, radius_sq, out);
  }
}

}  // namespace staq::geo
