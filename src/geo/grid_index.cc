#include "geo/grid_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace staq::geo {

GridIndex::GridIndex(std::vector<IndexedPoint> points, double cell_size)
    : points_(std::move(points)), cell_size_(cell_size) {
  assert(cell_size_ > 0);
  if (points_.empty()) return;
  double max_x = points_[0].point.x, max_y = points_[0].point.y;
  min_x_ = max_x;
  min_y_ = max_y;
  for (const auto& ip : points_) {
    min_x_ = std::min(min_x_, ip.point.x);
    min_y_ = std::min(min_y_, ip.point.y);
    max_x = std::max(max_x, ip.point.x);
    max_y = std::max(max_y, ip.point.y);
  }
  cols_ = static_cast<int64_t>((max_x - min_x_) / cell_size_) + 1;
  rows_ = static_cast<int64_t>((max_y - min_y_) / cell_size_) + 1;

  size_t num_cells = static_cast<size_t>(cols_ * rows_);
  std::vector<uint32_t> counts(num_cells + 1, 0);
  for (const auto& ip : points_) {
    ++counts[CellIndex(CellX(ip.point.x), CellY(ip.point.y)) + 1];
  }
  for (size_t i = 1; i <= num_cells; ++i) counts[i] += counts[i - 1];
  cell_start_ = counts;
  order_.resize(points_.size());
  std::vector<uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (uint32_t i = 0; i < points_.size(); ++i) {
    size_t cell = CellIndex(CellX(points_[i].point.x), CellY(points_[i].point.y));
    order_[cursor[cell]++] = i;
  }
}

int64_t GridIndex::CellX(double x) const {
  int64_t c = static_cast<int64_t>((x - min_x_) / cell_size_);
  return std::clamp<int64_t>(c, 0, cols_ - 1);
}

int64_t GridIndex::CellY(double y) const {
  int64_t c = static_cast<int64_t>((y - min_y_) / cell_size_);
  return std::clamp<int64_t>(c, 0, rows_ - 1);
}

size_t GridIndex::CellIndex(int64_t cx, int64_t cy) const {
  return static_cast<size_t>(cy * cols_ + cx);
}

void GridIndex::ScanCell(int64_t cx, int64_t cy, const Point& query,
                         double radius_sq, std::vector<Neighbor>* out) const {
  if (cx < 0 || cx >= cols_ || cy < 0 || cy >= rows_) return;
  size_t cell = CellIndex(cx, cy);
  for (uint32_t k = cell_start_[cell]; k < cell_start_[cell + 1]; ++k) {
    const IndexedPoint& ip = points_[order_[k]];
    double d_sq = DistanceSquared(ip.point, query);
    if (d_sq <= radius_sq) {
      out->push_back(Neighbor{ip.id, std::sqrt(d_sq)});
    }
  }
}

std::vector<Neighbor> GridIndex::WithinRadius(const Point& query,
                                              double radius) const {
  std::vector<Neighbor> out;
  WithinRadius(query, radius, &out);
  return out;
}

void GridIndex::WithinRadius(const Point& query, double radius,
                             std::vector<Neighbor>* result) const {
  std::vector<Neighbor>& out = *result;
  out.clear();
  if (points_.empty() || radius < 0) return;
  // Cell coordinates here are unclamped so the loop covers the query disc
  // even when the query point lies outside the indexed extent.
  int64_t cx0 = static_cast<int64_t>(std::floor((query.x - radius - min_x_) / cell_size_));
  int64_t cx1 = static_cast<int64_t>(std::floor((query.x + radius - min_x_) / cell_size_));
  int64_t cy0 = static_cast<int64_t>(std::floor((query.y - radius - min_y_) / cell_size_));
  int64_t cy1 = static_cast<int64_t>(std::floor((query.y + radius - min_y_) / cell_size_));
  double radius_sq = radius * radius;
  for (int64_t cy = cy0; cy <= cy1; ++cy) {
    for (int64_t cx = cx0; cx <= cx1; ++cx) {
      ScanCell(cx, cy, query, radius_sq, &out);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance < b.distance;
            });
}

Neighbor GridIndex::Nearest(const Point& query) const {
  assert(!points_.empty());
  // Expand the search radius in cell-size increments until a hit is found,
  // then one more ring to guarantee correctness near cell boundaries.
  double radius = cell_size_;
  // Upper bound: the whole indexed extent plus distance to it.
  double extent = cell_size_ * static_cast<double>(std::max(cols_, rows_) + 2) +
                  std::abs(query.x - min_x_) + std::abs(query.y - min_y_);
  while (radius <= extent) {
    auto hits = WithinRadius(query, radius);
    if (!hits.empty()) return hits.front();
    radius *= 2;
  }
  // Fallback: linear scan (only reachable for pathological extents).
  Neighbor best{points_[0].id,
                std::sqrt(DistanceSquared(points_[0].point, query))};
  for (const auto& ip : points_) {
    double d = std::sqrt(DistanceSquared(ip.point, query));
    if (d < best.distance) best = Neighbor{ip.id, d};
  }
  return best;
}

}  // namespace staq::geo
