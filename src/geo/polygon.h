// Simple polygons in the local projected plane.
//
// Walking isochrones (paper Fig. 2C) are represented as polygons: the
// paper derives them from road-network shapefiles; we compute them as the
// convex hull of the road nodes reachable within the walk budget (see
// core/isochrone.h) which preserves the two operations the pipeline needs:
// point containment (stop ∩ isochrone) and polygon intersection
// (interchange test).
#pragma once

#include <vector>

#include "geo/latlon.h"

namespace staq::geo {

/// A simple polygon (no self-intersection assumed), vertices in order.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices)
      : vertices_(std::move(vertices)) {}

  const std::vector<Point>& vertices() const { return vertices_; }
  size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }

  /// Signed area: positive for counter-clockwise winding.
  double SignedArea() const;

  /// |SignedArea()|.
  double Area() const { return std::abs(SignedArea()); }

  /// Centroid of the polygon area (vertex mean for degenerate polygons).
  Point Centroid() const;

  /// Ray-casting point-in-polygon test; boundary points count as inside.
  bool Contains(const Point& p) const;

  /// Tight axis-aligned bounding box; zero box when empty.
  BBox Bounds() const;

  /// True if this polygon and `other` overlap: any vertex of one inside the
  /// other, or any pair of edges crossing. Exact for convex polygons, which
  /// is what isochrones are.
  bool Intersects(const Polygon& other) const;

 private:
  std::vector<Point> vertices_;
};

/// Andrew's monotone-chain convex hull. Returns vertices in
/// counter-clockwise order without the closing duplicate. Collinear input
/// degenerates to the two extreme points; fewer than 3 distinct points are
/// returned as-is.
Polygon ConvexHull(std::vector<Point> points);

/// True if segments (a1,a2) and (b1,b2) intersect (including touching).
bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2);

}  // namespace staq::geo
