// 2-d k-d tree over projected points.
//
// Used for the paper's interchange identification (§IV-B1): a k-NN (k=1)
// search from each outbound-tree leaf onto the inbound tree's leaves, and
// for nearest-stop / nearest-leaf feature computations.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/latlon.h"

namespace staq::geo {

/// A point paired with a caller-supplied id (zone index, stop index, ...).
struct IndexedPoint {
  Point point;
  uint32_t id = 0;
};

/// Result of a nearest-neighbour query.
struct Neighbor {
  uint32_t id = 0;
  double distance = 0.0;  // metres
};

/// Static 2-d k-d tree built once over a point set; O(log n) expected
/// nearest-neighbour queries, O(n log n) build.
///
/// Uses an implicit median layout: the tree is the reordered point array
/// itself — the subtree for a range [begin, end) stores its splitting point
/// at the median index, alternating split axis by depth. No per-node
/// allocation.
class KdTree {
 public:
  /// Builds the tree over `points`. The point set is copied and reordered
  /// internally; ids are preserved.
  explicit KdTree(std::vector<IndexedPoint> points);

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// Nearest neighbour to `query`. Requires a non-empty tree.
  Neighbor Nearest(const Point& query) const;

  /// The k nearest neighbours, ascending by distance. Returns fewer than k
  /// if the tree is smaller.
  std::vector<Neighbor> KNearest(const Point& query, size_t k) const;

  /// All points within `radius` metres of `query`, ascending by distance.
  std::vector<Neighbor> WithinRadius(const Point& query, double radius) const;

 private:
  void Build(size_t begin, size_t end, int axis);
  void NearestImpl(size_t begin, size_t end, int axis, const Point& query,
                   Neighbor* best, double* best_dist_sq) const;
  void KNearestImpl(size_t begin, size_t end, int axis, const Point& query,
                    size_t k, std::vector<Neighbor>* heap) const;
  void RadiusImpl(size_t begin, size_t end, int axis, const Point& query,
                  double radius_sq, std::vector<Neighbor>* out) const;

  std::vector<IndexedPoint> points_;
};

}  // namespace staq::geo
