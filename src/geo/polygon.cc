#include "geo/polygon.h"

#include <algorithm>
#include <cmath>

namespace staq::geo {

namespace {

/// Cross product of (b - a) x (c - a); >0 means c is left of a->b.
double Cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

/// -1 / 0 / +1 orientation of the triple with a small epsilon for
/// collinearity.
int Orientation(const Point& a, const Point& b, const Point& c) {
  double v = Cross(a, b, c);
  // Relative epsilon: coordinates are metres, city extents ~1e5, so doubles
  // carry ~1e-10 absolute noise after a few ops; 1e-9 * scale is safe.
  double scale = std::abs(v) + std::abs((b.x - a.x) * (c.y - a.y)) +
                 std::abs((b.y - a.y) * (c.x - a.x));
  if (std::abs(v) <= 1e-12 * std::max(scale, 1.0)) return 0;
  return v > 0 ? 1 : -1;
}

bool OnSegment(const Point& a, const Point& b, const Point& p) {
  return p.x >= std::min(a.x, b.x) - 1e-9 && p.x <= std::max(a.x, b.x) + 1e-9 &&
         p.y >= std::min(a.y, b.y) - 1e-9 && p.y <= std::max(a.y, b.y) + 1e-9;
}

}  // namespace

double Polygon::SignedArea() const {
  if (vertices_.size() < 3) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % vertices_.size()];
    acc += a.x * b.y - b.x * a.y;
  }
  return acc / 2.0;
}

Point Polygon::Centroid() const {
  if (vertices_.empty()) return Point{};
  double area = SignedArea();
  if (vertices_.size() < 3 || std::abs(area) < 1e-12) {
    Point mean{};
    for (const Point& v : vertices_) {
      mean.x += v.x;
      mean.y += v.y;
    }
    mean.x /= static_cast<double>(vertices_.size());
    mean.y /= static_cast<double>(vertices_.size());
    return mean;
  }
  double cx = 0.0, cy = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % vertices_.size()];
    double w = a.x * b.y - b.x * a.y;
    cx += (a.x + b.x) * w;
    cy += (a.y + b.y) * w;
  }
  return Point{cx / (6.0 * area), cy / (6.0 * area)};
}

bool Polygon::Contains(const Point& p) const {
  if (vertices_.size() < 3) return false;
  bool inside = false;
  for (size_t i = 0, j = vertices_.size() - 1; i < vertices_.size(); j = i++) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[j];
    // Boundary check: point collinear with and within the edge's box.
    if (Orientation(a, b, p) == 0 && OnSegment(a, b, p)) return true;
    if ((a.y > p.y) != (b.y > p.y)) {
      double x_at_y = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (p.x < x_at_y) inside = !inside;
    }
  }
  return inside;
}

BBox Polygon::Bounds() const {
  if (vertices_.empty()) return BBox{};
  BBox box{vertices_[0].x, vertices_[0].y, vertices_[0].x, vertices_[0].y};
  for (const Point& v : vertices_) {
    box.min_x = std::min(box.min_x, v.x);
    box.min_y = std::min(box.min_y, v.y);
    box.max_x = std::max(box.max_x, v.x);
    box.max_y = std::max(box.max_y, v.y);
  }
  return box;
}

bool Polygon::Intersects(const Polygon& other) const {
  if (empty() || other.empty()) return false;
  if (!Bounds().Intersects(other.Bounds())) return false;
  // Vertex containment either way covers full-containment cases.
  for (const Point& v : other.vertices_) {
    if (Contains(v)) return true;
  }
  for (const Point& v : vertices_) {
    if (other.Contains(v)) return true;
  }
  // Edge-crossing check covers partial overlaps with no contained vertex.
  size_t n = vertices_.size(), m = other.vertices_.size();
  if (n < 2 || m < 2) return false;
  for (size_t i = 0; i < n; ++i) {
    const Point& a1 = vertices_[i];
    const Point& a2 = vertices_[(i + 1) % n];
    for (size_t j = 0; j < m; ++j) {
      if (SegmentsIntersect(a1, a2, other.vertices_[j],
                            other.vertices_[(j + 1) % m])) {
        return true;
      }
    }
  }
  return false;
}

bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2) {
  int o1 = Orientation(a1, a2, b1);
  int o2 = Orientation(a1, a2, b2);
  int o3 = Orientation(b1, b2, a1);
  int o4 = Orientation(b1, b2, a2);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && OnSegment(a1, a2, b1)) return true;
  if (o2 == 0 && OnSegment(a1, a2, b2)) return true;
  if (o3 == 0 && OnSegment(b1, b2, a1)) return true;
  if (o4 == 0 && OnSegment(b1, b2, a2)) return true;
  return false;
}

Polygon ConvexHull(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  size_t n = points.size();
  if (n < 3) return Polygon(std::move(points));

  std::vector<Point> hull(2 * n);
  size_t k = 0;
  // Lower hull.
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 && Cross(hull[k - 2], hull[k - 1], points[i]) <= 0) --k;
    hull[k++] = points[i];
  }
  // Upper hull.
  for (size_t i = n - 1, t = k + 1; i > 0; --i) {
    while (k >= t && Cross(hull[k - 2], hull[k - 1], points[i - 1]) <= 0) --k;
    hull[k++] = points[i - 1];
  }
  hull.resize(k - 1);  // Last point repeats the first.
  if (hull.size() < 3) {
    // All input collinear: keep the two extremes.
    return Polygon(std::move(hull));
  }
  return Polygon(std::move(hull));
}

}  // namespace staq::geo
