#include "exp/config.h"

#include <algorithm>
#include <cstdio>

#include "util/hash.h"
#include "util/strings.h"

namespace staq::exp {

std::string Cell::CanonicalKey() const {
  std::string key = "bench=" + bench + "\n";
  for (const auto& [k, v] : params) {  // std::map iterates sorted
    key += k + "=" + v + "\n";
  }
  return key;
}

uint64_t Cell::Hash() const {
  std::string key = CanonicalKey();
  return util::XxHash64(key.data(), key.size());
}

std::string Cell::HashHex() const {
  return util::Format("%016llx", static_cast<unsigned long long>(Hash()));
}

std::string Cell::ParamSummary() const {
  std::string out;
  for (const auto& [k, v] : params) {
    if (!out.empty()) out += " ";
    out += k + "=" + v;
  }
  return out;
}

namespace {

/// Line/column-tracking cursor over the config text.
class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  size_t line() const { return line_; }
  size_t column() const { return pos_ - line_start_ + 1; }

  util::Status Error(const std::string& what) const {
    return util::Status::InvalidArgument(
        util::Format("config parse error at line %zu, column %zu: %s", line_,
                     column(), what.c_str()));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      line_start_ = pos_ + 1;
    }
    ++pos_;
  }

  /// Skips spaces, newlines and '#' comments.
  void SkipWsAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        Advance();
      } else if (c == '#') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        return;
      }
    }
  }

  /// Skips spaces/tabs only (stays on the current line).
  void SkipInline() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\r')) {
      Advance();
    }
  }

  static bool IsWordChar(char c) {
    // ':' joins the fields of scenario-pack disruption specs
    // ("scale_headway:all:2"); existing experiment configs contain none,
    // so admitting it is backward compatible.
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
           c == '+' || c == ':';
  }

  /// Reads a bare word ([A-Za-z0-9_.+-]+). Empty result means "no word
  /// here" — the caller turns that into a positioned error.
  std::string Word() {
    std::string out;
    while (!AtEnd() && IsWordChar(Peek())) {
      out.push_back(Peek());
      Advance();
    }
    return out;
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t line_start_ = 0;
};

util::Status ParseBlockBody(Lexer& lex, const std::string& keyword,
                            MatrixBlock* block) {
  while (true) {
    lex.SkipWsAndComments();
    if (lex.AtEnd()) {
      return lex.Error("unterminated " + keyword + " block (missing '}')");
    }
    if (lex.Peek() == '}') {
      lex.Advance();
      return util::Status::OK();
    }
    std::string key = lex.Word();
    if (key.empty()) return lex.Error("expected a key or '}'");
    for (const auto& [existing, values] : block->axes) {
      (void)values;
      if (existing == key) return lex.Error("duplicate key '" + key + "'");
    }
    lex.SkipInline();
    if (lex.AtEnd() || lex.Peek() != '=') {
      return lex.Error("expected '=' after key '" + key + "'");
    }
    lex.Advance();

    std::vector<std::string> values;
    while (true) {
      lex.SkipInline();
      std::string value = lex.Word();
      if (value.empty()) {
        return lex.Error("expected a value for key '" + key + "'");
      }
      values.push_back(std::move(value));
      lex.SkipInline();
      if (!lex.AtEnd() && lex.Peek() == ',') {
        lex.Advance();
        continue;
      }
      break;
    }
    if (!lex.AtEnd() && lex.Peek() != '\n' && lex.Peek() != '#' &&
        lex.Peek() != '}') {
      return lex.Error("unexpected trailing content after values of '" + key +
                       "'");
    }
    block->axes.emplace_back(std::move(key), std::move(values));
  }
}

}  // namespace

util::Result<ExperimentConfig> ExperimentConfig::Parse(
    const std::string& text) {
  return Parse(text, ParseOptions());
}

util::Result<ExperimentConfig> ExperimentConfig::Parse(
    const std::string& text, const ParseOptions& options) {
  ExperimentConfig config;
  Lexer lex(text);
  while (true) {
    lex.SkipWsAndComments();
    if (lex.AtEnd()) break;
    std::string keyword = lex.Word();
    if (keyword != options.keyword) {
      return lex.Error("expected '" + options.keyword + "', got '" + keyword +
                       "'");
    }
    lex.SkipInline();
    MatrixBlock block;
    block.name = lex.Word();
    if (block.name.empty()) {
      return lex.Error(options.keyword + " block needs a name");
    }
    for (const MatrixBlock& existing : config.blocks_) {
      if (existing.name == block.name) {
        return lex.Error("duplicate " + options.keyword + " name '" +
                         block.name + "'");
      }
    }
    lex.SkipInline();
    if (lex.AtEnd() || lex.Peek() != '{') {
      return lex.Error("expected '{' after " + options.keyword + " name");
    }
    lex.Advance();
    STAQ_RETURN_NOT_OK(ParseBlockBody(lex, options.keyword, &block));

    if (!options.required_key.empty()) {
      bool has_required = false;
      for (const auto& [key, values] : block.axes) {
        (void)values;
        if (key == options.required_key) has_required = true;
      }
      if (!has_required) {
        return lex.Error(options.keyword + " '" + block.name + "' has no '" +
                         options.required_key + "' key");
      }
    }
    config.blocks_.push_back(std::move(block));
  }
  if (config.blocks_.empty()) {
    return util::Status::InvalidArgument(
        "config parse error at line 1, column 1: no " + options.keyword +
        " blocks");
  }
  return config;
}

util::Result<ExperimentConfig> ExperimentConfig::Load(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open config: " + path);
  }
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  auto parsed = Parse(text);
  if (!parsed.ok()) {
    return util::Status::InvalidArgument(path + ": " +
                                         parsed.status().message());
  }
  return parsed;
}

std::vector<Cell> ExperimentConfig::Expand() const {
  std::vector<Cell> cells;
  for (const MatrixBlock& block : blocks_) {
    // Odometer over the axes in declaration order, last key fastest.
    const size_t num_axes = block.axes.size();
    std::vector<size_t> index(num_axes, 0);
    while (true) {
      Cell cell;
      cell.matrix = block.name;
      for (size_t a = 0; a < num_axes; ++a) {
        const auto& [key, values] = block.axes[a];
        const std::string& value = values[index[a]];
        if (key == "bench") {
          cell.bench = value;
        } else {
          cell.params[key] = value;
        }
      }
      cells.push_back(std::move(cell));

      // Tick the odometer; a full wrap ends the block.
      size_t a = num_axes;
      bool wrapped = true;
      while (a > 0) {
        --a;
        if (++index[a] < block.axes[a].second.size()) {
          wrapped = false;
          break;
        }
        index[a] = 0;
      }
      if (wrapped) break;
    }
  }
  return cells;
}

}  // namespace staq::exp
