#include "exp/runner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>

#include "exp/json.h"
#include "store/coding.h"
#include "store/reader.h"
#include "store/writer.h"
#include "util/hash.h"
#include "util/strings.h"

namespace staq::exp {
namespace {

namespace fs = std::filesystem;

constexpr char kKeySection[] = "cell_key";
constexpr char kResultSection[] = "result_json";
constexpr char kExitSection[] = "exit_code";

std::string SnapshotPath(const std::string& state_dir, const Cell& cell) {
  return state_dir + "/cell_" + cell.HashHex() + ".staq";
}

/// Tries to reuse a completed cell from its resume snapshot. Any defect —
/// missing file, checksum mismatch, key collision, non-zero stored exit —
/// means "not reusable" and the cell re-executes.
bool LoadCellSnapshot(const std::string& state_dir, const Cell& cell,
                      std::string* json, int* exit_code) {
  store::Reader reader;
  store::Reader::Options options;
  options.mode = store::Reader::Mode::kBuffered;
  if (!reader.Open(SnapshotPath(state_dir, cell), options).ok()) return false;

  auto read_string = [&](const char* name, std::string* out) {
    auto section = reader.Section(name, store::SectionEncoding::kRaw);
    if (!section.ok()) return false;
    out->assign(reinterpret_cast<const char*>(section.value().cursor()),
                section.value().remaining());
    return true;
  };
  std::string stored_key;
  if (!read_string(kKeySection, &stored_key)) return false;
  if (stored_key != cell.CanonicalKey()) return false;  // hash collision
  if (!read_string(kResultSection, json)) return false;
  auto exit_section = reader.Section(kExitSection, store::SectionEncoding::kRaw);
  if (!exit_section.ok()) return false;
  int32_t stored = 1;
  if (!exit_section.value().ReadFixed(&stored)) return false;
  *exit_code = stored;
  return stored == 0;
}

util::Status SaveCellSnapshot(const std::string& state_dir, const Cell& cell,
                              const std::string& json, int exit_code) {
  store::Writer writer;
  const std::string path = SnapshotPath(state_dir, cell);
  STAQ_RETURN_NOT_OK(writer.Open(path));
  auto as_bytes = [](const std::string& s) {
    return std::vector<uint8_t>(s.begin(), s.end());
  };
  STAQ_RETURN_NOT_OK(writer.AddSection(kKeySection,
                                       store::SectionEncoding::kRaw,
                                       as_bytes(cell.CanonicalKey())));
  STAQ_RETURN_NOT_OK(writer.AddSection(kResultSection,
                                       store::SectionEncoding::kRaw,
                                       as_bytes(json)));
  std::vector<uint8_t> exit_bytes;
  store::PutFixed<int32_t>(&exit_bytes, static_cast<int32_t>(exit_code));
  STAQ_RETURN_NOT_OK(writer.AddSection(kExitSection,
                                       store::SectionEncoding::kRaw,
                                       std::move(exit_bytes)));
  return writer.Finish();
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::Format("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Re-indents an embedded JSON document by `indent` spaces so the sweep
/// file stays readable; byte-deterministic (pure text transform).
std::string Indent(const std::string& json, const std::string& indent) {
  std::string out;
  out.reserve(json.size());
  for (size_t i = 0; i < json.size(); ++i) {
    out.push_back(json[i]);
    if (json[i] == '\n' && i + 1 < json.size()) out += indent;
  }
  // Trim one trailing newline so the closing brace sits inline.
  while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

std::string AssembleFinalJson(const ExperimentConfig& config,
                              const std::vector<CellOutcome>& outcomes) {
  std::string out;
  out += "{\n";
  out += util::Format("  \"config_hash\": \"%016llx\",\n",
                      static_cast<unsigned long long>(ConfigHash(config)));
  out += util::Format("  \"cells\": %zu,\n", outcomes.size());
  size_t failures = 0;
  for (const CellOutcome& o : outcomes) {
    if (o.exit_code != 0) ++failures;
  }
  out += util::Format("  \"failures\": %zu,\n", failures);
  out += "  \"results\": [\n";
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const CellOutcome& o = outcomes[i];
    out += "    {\n";
    out += "      \"matrix\": \"" + EscapeJson(o.cell.matrix) + "\",\n";
    out += "      \"bench\": \"" + EscapeJson(o.cell.bench) + "\",\n";
    out += "      \"cell_hash\": \"" + o.cell.HashHex() + "\",\n";
    out += "      \"params\": {";
    bool first = true;
    for (const auto& [k, v] : o.cell.params) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + EscapeJson(k) + "\": \"" + EscapeJson(v) + "\"";
    }
    out += "},\n";
    out += util::Format("      \"exit_code\": %d,\n", o.exit_code);
    if (o.json.empty()) {
      out += "      \"result\": null\n";
    } else {
      out += "      \"result\": " + Indent(o.json, "      ") + "\n";
    }
    out += i + 1 < outcomes.size() ? "    },\n" : "    }\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

/// The paper-style pivots: any cell whose result carries quality metrics
/// ("jt_mae_min", "spq_reduction_pct") and a "beta" parameter lands in an
/// error-vs-budget grid and a %-SPQ-reduction grid; one row per setting of
/// the remaining parameters.
struct PivotTables {
  std::string text;
};

std::string RowLabel(const Cell& cell) {
  std::string label = cell.bench;
  for (const auto& [k, v] : cell.params) {
    if (k == "beta" || k == "scale" || k == "rate" || k == "seed" ||
        k == "threads") {
      continue;
    }
    label += " " + k + "=" + v;
  }
  return label;
}

std::string BuildTables(const std::vector<CellOutcome>& outcomes) {
  std::string out;

  // --- per-cell summary ---------------------------------------------------
  out += util::Format("%-14s %-10s %5s %6s  %s\n", "matrix", "bench", "exit",
                      "cached", "params / headline");
  const char* headline_metrics[] = {"csa_profile_speedup", "coreg_fit_speedup",
                                    "speedup", "jt_mae_min"};
  for (const CellOutcome& o : outcomes) {
    std::string headline;
    if (!o.json.empty()) {
      auto doc = JsonDoc::Parse(o.json);
      if (doc.ok()) {
        for (const char* metric : headline_metrics) {
          if (const JsonScalar* s = doc.value().Find(metric)) {
            headline = util::Format("  [%s=%s]", metric, s->raw.c_str());
            break;
          }
        }
      }
    }
    out += util::Format("%-14s %-10s %5d %6s  %s%s\n", o.cell.matrix.c_str(),
                        o.cell.bench.c_str(), o.exit_code,
                        o.cached ? "yes" : "no", o.cell.ParamSummary().c_str(),
                        headline.c_str());
  }

  // --- quality pivots -----------------------------------------------------
  struct QualityCell {
    std::string row;
    double beta = 0.0;
    double mae = 0.0;
    double reduction = 0.0;
  };
  std::vector<QualityCell> quality;
  std::set<double> betas;
  for (const CellOutcome& o : outcomes) {
    if (o.exit_code != 0 || o.json.empty()) continue;
    auto it = o.cell.params.find("beta");
    if (it == o.cell.params.end()) continue;
    auto doc = JsonDoc::Parse(o.json);
    if (!doc.ok()) continue;
    const JsonScalar* mae = doc.value().Find("jt_mae_min");
    const JsonScalar* red = doc.value().Find("spq_reduction_pct");
    if (mae == nullptr || red == nullptr) continue;
    QualityCell q;
    q.row = RowLabel(o.cell);
    q.beta = std::atof(it->second.c_str());
    q.mae = mae->num;
    q.reduction = red->num;
    betas.insert(q.beta);
    quality.push_back(std::move(q));
  }
  if (!quality.empty()) {
    std::vector<std::string> rows;
    for (const QualityCell& q : quality) {
      if (std::find(rows.begin(), rows.end(), q.row) == rows.end()) {
        rows.push_back(q.row);
      }
    }
    // RowLabel strips the seed (with the other scale knobs), so cells that
    // differ only by seed land in one (row, beta) bucket: a single sample
    // prints plainly, replicated cells print mean±sd (sample sd, n-1).
    auto grid = [&](const char* title, double QualityCell::* field) {
      out += "\n" + std::string(title) + "\n";
      out += util::Format("%-44s", "setting");
      for (double beta : betas) {
        out += util::Format(" b=%-10.0f%%", beta * 100);
      }
      out += "\n";
      for (const std::string& row : rows) {
        out += util::Format("%-44s", row.c_str());
        for (double beta : betas) {
          std::vector<double> samples;
          for (const QualityCell& q : quality) {
            if (q.row == row && q.beta == beta) samples.push_back(q.*field);
          }
          if (samples.empty()) {
            out += util::Format(" %13s", "-");
            continue;
          }
          double sum = 0.0;
          for (double v : samples) sum += v;
          const double mean = sum / static_cast<double>(samples.size());
          if (samples.size() == 1) {
            out += util::Format(" %13.2f", mean);
          } else {
            double ss = 0.0;
            for (double v : samples) ss += (v - mean) * (v - mean);
            const double sd =
                std::sqrt(ss / static_cast<double>(samples.size() - 1));
            out += util::Format(" %13s",
                                util::Format("%.2f±%.2f", mean, sd).c_str());
          }
        }
        out += "\n";
      }
    };
    grid("JT MAE (minutes) vs labeling budget:", &QualityCell::mae);
    grid("SPQ reduction (%) vs labeling budget:", &QualityCell::reduction);
  }
  return out;
}

}  // namespace

uint64_t ConfigHash(const ExperimentConfig& config) {
  std::string all;
  for (const Cell& cell : config.Expand()) {
    all += cell.CanonicalKey();
    all += "\x1f";
  }
  return util::XxHash64(all.data(), all.size());
}

util::Result<SweepReport> RunSweep(const ExperimentConfig& config,
                                   const BenchRegistry& registry,
                                   const RunnerOptions& options) {
  SweepReport report;
  const std::vector<Cell> cells = config.Expand();

  if (!options.state_dir.empty()) {
    std::error_code ec;
    fs::create_directories(options.state_dir, ec);
    if (ec) {
      return util::Status::IoError("cannot create state dir " +
                                   options.state_dir + ": " + ec.message());
    }
  }

  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];

    if (!options.state_dir.empty() && options.resume) {
      CellOutcome outcome;
      outcome.cell = cell;
      if (LoadCellSnapshot(options.state_dir, cell, &outcome.json,
                           &outcome.exit_code)) {
        outcome.cached = true;
        ++report.cached;
        if (options.verbose) {
          std::printf("[%zu/%zu] %s/%s %s — resumed from snapshot\n", i + 1,
                      cells.size(), cell.matrix.c_str(), cell.bench.c_str(),
                      cell.ParamSummary().c_str());
        }
        report.outcomes.push_back(std::move(outcome));
        continue;
      }
    }

    if (options.max_executed != 0 && report.executed >= options.max_executed) {
      // Interrupted: report what completed; no final assembly.
      report.complete = false;
      report.tables = BuildTables(report.outcomes);
      return report;
    }

    CellOutcome outcome;
    outcome.cell = cell;
    auto bench = registry.find(cell.bench);
    if (bench == registry.end()) {
      outcome.exit_code = 127;
      std::fprintf(stderr, "unknown bench '%s' (matrix '%s')\n",
                   cell.bench.c_str(), cell.matrix.c_str());
    } else {
      if (options.verbose) {
        std::printf("[%zu/%zu] %s/%s %s — running\n", i + 1, cells.size(),
                    cell.matrix.c_str(), cell.bench.c_str(),
                    cell.ParamSummary().c_str());
        std::fflush(stdout);
      }
      RunSpec spec;
      spec.bench = cell.bench;
      spec.params = cell.params;
      RunResult result = bench->second(spec);
      outcome.exit_code = result.exit_code;
      outcome.json = std::move(result.json);
      ++report.executed;
      if (outcome.exit_code == 0 && !options.state_dir.empty()) {
        auto saved = SaveCellSnapshot(options.state_dir, cell, outcome.json,
                                      outcome.exit_code);
        if (!saved.ok()) {
          std::fprintf(stderr, "warning: cell snapshot not saved: %s\n",
                       saved.ToString().c_str());
        }
      }
    }
    if (outcome.exit_code != 0) ++report.failures;
    report.outcomes.push_back(std::move(outcome));
  }

  report.complete = true;
  report.final_json = AssembleFinalJson(config, report.outcomes);
  report.tables = BuildTables(report.outcomes);
  return report;
}

}  // namespace staq::exp
