#include "exp/diff.h"

#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace staq::exp {

const char* RuleKindName(RuleKind kind) {
  switch (kind) {
    case RuleKind::kMin: return "min";
    case RuleKind::kCeiling: return "ceiling";
    case RuleKind::kRatioFloor: return "ratio_floor";
    case RuleKind::kExact: return "exact";
  }
  return "?";
}

namespace {

bool ParseRuleKind(const std::string& word, RuleKind* kind) {
  for (RuleKind k : {RuleKind::kMin, RuleKind::kCeiling, RuleKind::kRatioFloor,
                     RuleKind::kExact}) {
    if (word == RuleKindName(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

/// Line/column-tracking cursor — same shape as the config lexer, with a
/// wider word charset so metric paths ("modes[2].spqs_per_s") lex whole.
class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  util::Status Error(const std::string& what) const {
    return util::Status::InvalidArgument(
        util::Format("policy parse error at line %zu, column %zu: %s", line_,
                     pos_ - line_start_ + 1, what.c_str()));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      line_start_ = pos_ + 1;
    }
    ++pos_;
  }

  void SkipWsAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        Advance();
      } else if (c == '#') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        return;
      }
    }
  }

  void SkipInline() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\r')) {
      Advance();
    }
  }

  static bool IsWordChar(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
           c == '+' || c == '[' || c == ']';
  }

  std::string Word() {
    std::string out;
    while (!AtEnd() && IsWordChar(Peek())) {
      out.push_back(Peek());
      Advance();
    }
    return out;
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t line_start_ = 0;
};

util::Status ParseBenchBody(Lexer& lex, BenchPolicy* bench) {
  while (true) {
    lex.SkipWsAndComments();
    if (lex.AtEnd()) return lex.Error("unterminated bench block (missing '}')");
    if (lex.Peek() == '}') {
      lex.Advance();
      return util::Status::OK();
    }
    Rule rule;
    std::string kind_word = lex.Word();
    if (kind_word.empty()) return lex.Error("expected a rule kind or '}'");
    if (!ParseRuleKind(kind_word, &rule.kind)) {
      return lex.Error("unknown rule kind '" + kind_word +
                       "' (want min/ceiling/ratio_floor/exact)");
    }
    lex.SkipInline();
    rule.metric = lex.Word();
    if (rule.metric.empty()) {
      return lex.Error("rule '" + kind_word + "' needs a metric path");
    }
    if (rule.kind != RuleKind::kExact) {
      lex.SkipInline();
      std::string value_word = lex.Word();
      if (value_word.empty()) {
        return lex.Error("rule '" + kind_word + " " + rule.metric +
                         "' needs a numeric threshold");
      }
      char* end = nullptr;
      rule.value = std::strtod(value_word.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return lex.Error("bad threshold '" + value_word + "' for '" +
                         rule.metric + "'");
      }
    }
    lex.SkipInline();
    if (!lex.AtEnd() && lex.Peek() != '\n' && lex.Peek() != '#' &&
        lex.Peek() != '}') {
      return lex.Error("unexpected trailing content after rule '" + kind_word +
                       " " + rule.metric + "'");
    }
    bench->rules.push_back(std::move(rule));
  }
}

/// "phases[0].p99_ms" -> "phases[0].p99_approx"; "" when the metric isn't
/// a quantile-style *_ms path.
std::string ApproxSibling(const std::string& metric) {
  constexpr char kSuffix[] = "_ms";
  constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
  if (metric.size() < kSuffixLen ||
      metric.compare(metric.size() - kSuffixLen, kSuffixLen, kSuffix) != 0) {
    return "";
  }
  return metric.substr(0, metric.size() - kSuffixLen) + "_approx";
}

bool IsApprox(const JsonDoc& doc, const std::string& metric) {
  std::string sibling = ApproxSibling(metric);
  if (sibling.empty()) return false;
  const JsonScalar* s = doc.Find(sibling);
  return s != nullptr && s->kind == JsonKind::kBool && s->b;
}

}  // namespace

util::Result<TolerancePolicy> TolerancePolicy::Parse(const std::string& text) {
  TolerancePolicy policy;
  Lexer lex(text);
  while (true) {
    lex.SkipWsAndComments();
    if (lex.AtEnd()) break;
    std::string keyword = lex.Word();
    if (keyword != "bench") {
      return lex.Error("expected 'bench', got '" + keyword + "'");
    }
    lex.SkipInline();
    BenchPolicy bench;
    bench.bench = lex.Word();
    if (bench.bench.empty()) return lex.Error("bench block needs a name");
    if (policy.Find(bench.bench) != nullptr) {
      return lex.Error("duplicate bench block '" + bench.bench + "'");
    }
    lex.SkipInline();
    if (lex.AtEnd() || lex.Peek() != '{') {
      return lex.Error("expected '{' after bench name");
    }
    lex.Advance();
    STAQ_RETURN_NOT_OK(ParseBenchBody(lex, &bench));
    policy.benches_.push_back(std::move(bench));
  }
  if (policy.benches_.empty()) {
    return util::Status::InvalidArgument(
        "policy parse error at line 1, column 1: no bench blocks");
  }
  return policy;
}

util::Result<TolerancePolicy> TolerancePolicy::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open policy: " + path);
  }
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  auto parsed = Parse(text);
  if (!parsed.ok()) {
    return util::Status::InvalidArgument(path + ": " +
                                         parsed.status().message());
  }
  return parsed;
}

const BenchPolicy* TolerancePolicy::Find(const std::string& bench) const {
  for (const BenchPolicy& b : benches_) {
    if (b.bench == bench) return &b;
  }
  return nullptr;
}

std::string DiffReport::ToString() const {
  std::string out;
  for (const CheckResult& check : checks) {
    const char* state = check.state == CheckState::kPass   ? "PASS"
                        : check.state == CheckState::kFail ? "FAIL"
                                                           : "SKIP";
    out += util::Format("  %s %-11s %-32s %s\n", state,
                        RuleKindName(check.rule.kind),
                        check.rule.metric.c_str(), check.detail.c_str());
  }
  return out;
}

DiffReport DiffDocuments(const JsonDoc& run, const JsonDoc& baseline,
                         const BenchPolicy& policy,
                         const DiffOptions& options) {
  DiffReport report;
  for (const Rule& rule : policy.rules) {
    CheckResult check;
    check.rule = rule;

    const bool perf_rule = rule.kind != RuleKind::kExact;
    if (perf_rule && options.relax_perf) {
      check.state = CheckState::kSkipped;
      check.detail = "perf rule relaxed (sanitizer build)";
      ++report.skipped;
      report.checks.push_back(std::move(check));
      continue;
    }
    if (perf_rule && (IsApprox(run, rule.metric) ||
                      IsApprox(baseline, rule.metric))) {
      check.state = CheckState::kSkipped;
      check.detail = "quantile is approximate (fewer samples than rank)";
      ++report.skipped;
      report.checks.push_back(std::move(check));
      continue;
    }

    const JsonScalar* run_value = run.Find(rule.metric);
    if (run_value == nullptr) {
      check.state = CheckState::kFail;
      check.detail = "metric missing from run";
      ++report.failed;
      report.checks.push_back(std::move(check));
      continue;
    }

    switch (rule.kind) {
      case RuleKind::kMin: {
        bool ok = run_value->kind == JsonKind::kNumber &&
                  run_value->num >= rule.value;
        check.state = ok ? CheckState::kPass : CheckState::kFail;
        check.detail = util::Format("run=%s floor=%g", run_value->raw.c_str(),
                                    rule.value);
        break;
      }
      case RuleKind::kCeiling: {
        bool ok = run_value->kind == JsonKind::kNumber &&
                  run_value->num <= rule.value;
        check.state = ok ? CheckState::kPass : CheckState::kFail;
        check.detail = util::Format("run=%s ceiling=%g", run_value->raw.c_str(),
                                    rule.value);
        break;
      }
      case RuleKind::kRatioFloor: {
        const JsonScalar* base_value = baseline.Find(rule.metric);
        if (base_value == nullptr) {
          check.state = CheckState::kFail;
          check.detail = "metric missing from baseline";
          break;
        }
        bool ok = run_value->kind == JsonKind::kNumber &&
                  base_value->kind == JsonKind::kNumber &&
                  run_value->num >= rule.value * base_value->num;
        check.state = ok ? CheckState::kPass : CheckState::kFail;
        check.detail =
            util::Format("run=%s baseline=%s ratio_floor=%g",
                         run_value->raw.c_str(), base_value->raw.c_str(),
                         rule.value);
        break;
      }
      case RuleKind::kExact: {
        const JsonScalar* base_value = baseline.Find(rule.metric);
        if (base_value == nullptr) {
          check.state = CheckState::kFail;
          check.detail = "metric missing from baseline";
          break;
        }
        bool ok = run_value->SameAs(*base_value);
        check.state = ok ? CheckState::kPass : CheckState::kFail;
        check.detail =
            util::Format("run=%s baseline=%s", run_value->ToString().c_str(),
                         base_value->ToString().c_str());
        break;
      }
    }
    if (check.state == CheckState::kPass) {
      ++report.passed;
    } else {
      ++report.failed;
    }
    report.checks.push_back(std::move(check));
  }
  return report;
}

}  // namespace staq::exp
