// Declarative experiment configs: the LibCity-style sweep description.
//
// A config is a list of named matrix blocks; each block names a bench (or
// several) and a set of axes, and expands to the cartesian product of its
// axis values:
//
//   # error-vs-budget sweep, both cities, two models
//   matrix quality_sweep {
//     bench = quality
//     city = brindale, covely
//     model = MLP, OLS
//     beta = 0.03, 0.05, 0.10
//     scale = 0.05
//     seed = 42
//   }
//
// Grammar: `matrix <name> {` ... `<key> = <value>[, <value>...]` ... `}`,
// '#' comments, blank lines anywhere. Every parse error names its
// line:column. Keys are free-form ([a-z0-9_]); the bench side decides
// which it understands ("bench" is required, "scale"/"rate"/"seed"/
// "threads"/"engine"/"relax_gates" configure the shared bench parameters,
// anything else reaches the bench as an extra parameter).
//
// Expansion order is deterministic (blocks in file order; within a block
// the odometer ticks the last-declared key fastest), so two runs of the
// same config produce the same cell sequence. The cell *hash* is
// independent of declaration order: it digests the sorted key=value pairs,
// so reordering fields in the config file neither invalidates resume
// snapshots nor changes baselines.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace staq::exp {

/// One block of the config: a bench list plus axes.
struct MatrixBlock {
  std::string name;
  /// Axes in declaration order: (key, values). Includes "bench".
  std::vector<std::pair<std::string, std::vector<std::string>>> axes;
};

/// One fully-instantiated run: a bench name plus concrete parameters.
struct Cell {
  std::string matrix;  // owning block name
  std::string bench;
  std::map<std::string, std::string> params;  // excludes "bench"

  /// Canonical serialisation: "bench=<b>" then sorted "key=value" lines.
  /// Two cells with equal canonical strings are the same experiment
  /// regardless of config field order.
  std::string CanonicalKey() const;

  /// XXH64 of CanonicalKey(); names the resume snapshot for this cell.
  uint64_t Hash() const;

  /// Hash() in fixed-width hex, for file names and reports.
  std::string HashHex() const;

  /// Compact human-readable "key=value key=value" (sorted) for tables.
  std::string ParamSummary() const;
};

class ExperimentConfig {
 public:
  /// Dialect knobs: the same block grammar serves other declarative files
  /// (the scenario-pack format uses `scenario <name> { disrupt = ... }`).
  struct ParseOptions {
    /// Block keyword ("matrix <name> { ... }").
    std::string keyword = "matrix";
    /// Key every block must declare ("" disables the requirement).
    std::string required_key = "bench";
  };

  /// Parses config text; errors carry "line L, column C".
  static util::Result<ExperimentConfig> Parse(const std::string& text);
  static util::Result<ExperimentConfig> Parse(const std::string& text,
                                              const ParseOptions& options);

  /// Reads and parses a config file.
  static util::Result<ExperimentConfig> Load(const std::string& path);

  const std::vector<MatrixBlock>& blocks() const { return blocks_; }

  /// Expands every block into its cartesian cell list, in deterministic
  /// order. Total size is the sum over blocks of the product of axis
  /// value counts.
  std::vector<Cell> Expand() const;

 private:
  std::vector<MatrixBlock> blocks_;
};

}  // namespace staq::exp
