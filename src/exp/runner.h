// The experiment runner: expands a config into cells, executes each cell
// through a registered bench entry point, and assembles the sweep outputs.
//
// Benches are *callable* here, not subprocesses: the bench library
// registers one BenchFn per bench (bench/bench_registry.h adapts the
// linkable bench functions), and the runner drives them in-process, one
// cell at a time, in deterministic order.
//
// Resume: when RunnerOptions::state_dir is set, every completed cell is
// persisted as a staq::store snapshot named by the cell's hash
// (cell_<hex16>.staq, sections: the canonical cell key, the result JSON,
// the exit code). A later run of the same config finds the snapshot,
// verifies its checksums and its embedded key, and reuses the stored
// result bytes verbatim instead of re-executing — so an interrupted sweep
// resumed over the same state dir assembles a final JSON byte-identical
// to what the uninterrupted run would have produced from those cells.
// Failed cells (non-zero exit) are never cached; a resume retries them.
//
// Outputs:
//   * final_json — "<out>/sweep.json" superset record: config hash, every
//     cell with parameters and its verbatim BENCH_* result document;
//   * tables — the paper-style comparison tables (error vs budget, % SPQ
//     reduction) pivoted from any cells that report quality metrics, plus
//     a per-cell summary with headline metrics.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "exp/config.h"
#include "util/status.h"

namespace staq::exp {

/// What a bench entry point receives: its name plus the cell parameters.
struct RunSpec {
  std::string bench;
  std::map<std::string, std::string> params;
};

/// The uniform record every linkable bench returns.
struct RunResult {
  int exit_code = 1;
  std::string json;  // machine-readable BENCH_* document ("" if none)
};

using BenchFn = std::function<RunResult(const RunSpec&)>;
using BenchRegistry = std::map<std::string, BenchFn>;

struct RunnerOptions {
  /// Directory for per-cell resume snapshots; "" disables persistence.
  std::string state_dir;
  /// Reuse valid snapshots from state_dir (turning this off re-executes
  /// everything but still writes fresh snapshots).
  bool resume = true;
  /// Stop after executing this many *new* cells (0 = unlimited). This is
  /// the interruption seam: tests use it to kill a sweep mid-flight and
  /// prove the resumed final output is byte-identical.
  size_t max_executed = 0;
  /// Per-cell progress lines on stdout.
  bool verbose = true;
};

struct CellOutcome {
  Cell cell;
  int exit_code = 1;
  bool cached = false;  // reused from a resume snapshot
  std::string json;
};

struct SweepReport {
  std::vector<CellOutcome> outcomes;
  size_t executed = 0;  // cells actually run this invocation
  size_t cached = 0;    // cells reused from snapshots
  size_t failures = 0;  // non-zero exit codes
  bool complete = false;  // false when max_executed stopped the sweep
  std::string final_json;  // assembled superset document ("" if !complete)
  std::string tables;      // human-readable comparison tables
};

/// Hash of the expanded cell sequence — identifies the experiment an
/// output belongs to independent of config formatting.
uint64_t ConfigHash(const ExperimentConfig& config);

/// Runs the sweep. Unknown bench names fail their cells (exit code 127)
/// rather than aborting the sweep, so one typo doesn't discard a night of
/// results. IO errors on the state dir are returned as a Status.
util::Result<SweepReport> RunSweep(const ExperimentConfig& config,
                                   const BenchRegistry& registry,
                                   const RunnerOptions& options);

}  // namespace staq::exp
