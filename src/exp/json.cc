#include "exp/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace staq::exp {

const char* JsonKindName(JsonKind kind) {
  switch (kind) {
    case JsonKind::kNull: return "null";
    case JsonKind::kBool: return "bool";
    case JsonKind::kNumber: return "number";
    case JsonKind::kString: return "string";
  }
  return "?";
}

bool JsonScalar::SameAs(const JsonScalar& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case JsonKind::kNull: return true;
    case JsonKind::kBool: return b == other.b;
    case JsonKind::kNumber: return raw == other.raw;
    case JsonKind::kString: return str == other.str;
  }
  return false;
}

std::string JsonScalar::ToString() const {
  switch (kind) {
    case JsonKind::kNull: return "null";
    case JsonKind::kBool: return b ? "true" : "false";
    case JsonKind::kNumber: return raw;
    case JsonKind::kString: return "\"" + str + "\"";
  }
  return "?";
}

namespace {

/// Recursive-descent parser over `text`, tracking line/column for errors
/// and emitting flattened (path, scalar) pairs into the output map.
class Parser {
 public:
  Parser(const std::string& text, std::map<std::string, JsonScalar>* out)
      : text_(text), out_(out) {}

  util::Status Run() {
    SkipWs();
    STAQ_RETURN_NOT_OK(Value(""));
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing content after document");
    return util::Status::OK();
  }

 private:
  util::Status Error(const std::string& what) const {
    return util::Status::InvalidArgument(
        util::Format("json parse error at line %zu, column %zu: %s", line_,
                     pos_ - line_start_ + 1, what.c_str()));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      line_start_ = pos_ + 1;
    }
    ++pos_;
  }

  void SkipWs() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      Advance();
    }
  }

  util::Status Expect(char c) {
    if (AtEnd() || Peek() != c) {
      return Error(util::Format("expected '%c'", c));
    }
    Advance();
    return util::Status::OK();
  }

  util::Status Value(const std::string& path) {
    if (AtEnd()) return Error("unexpected end of document");
    char c = Peek();
    if (c == '{') return Object(path);
    if (c == '[') return Array(path);
    if (c == '"') {
      JsonScalar s;
      s.kind = JsonKind::kString;
      STAQ_RETURN_NOT_OK(StringToken(&s.str));
      s.raw = s.str;
      (*out_)[path] = std::move(s);
      return util::Status::OK();
    }
    if (c == 't' || c == 'f' || c == 'n') return Literal(path);
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return Number(path);
    }
    return Error("unexpected character");
  }

  util::Status Object(const std::string& path) {
    STAQ_RETURN_NOT_OK(Expect('{'));
    SkipWs();
    if (!AtEnd() && Peek() == '}') {
      Advance();
      return util::Status::OK();
    }
    while (true) {
      SkipWs();
      std::string key;
      if (AtEnd() || Peek() != '"') return Error("expected member name");
      STAQ_RETURN_NOT_OK(StringToken(&key));
      SkipWs();
      STAQ_RETURN_NOT_OK(Expect(':'));
      SkipWs();
      STAQ_RETURN_NOT_OK(Value(path.empty() ? key : path + "." + key));
      SkipWs();
      if (AtEnd()) return Error("unterminated object");
      if (Peek() == ',') {
        Advance();
        continue;
      }
      return Expect('}');
    }
  }

  util::Status Array(const std::string& path) {
    STAQ_RETURN_NOT_OK(Expect('['));
    SkipWs();
    if (!AtEnd() && Peek() == ']') {
      Advance();
      return util::Status::OK();
    }
    size_t index = 0;
    while (true) {
      SkipWs();
      STAQ_RETURN_NOT_OK(Value(util::Format("%s[%zu]", path.c_str(), index)));
      ++index;
      SkipWs();
      if (AtEnd()) return Error("unterminated array");
      if (Peek() == ',') {
        Advance();
        continue;
      }
      return Expect(']');
    }
  }

  util::Status Literal(const std::string& path) {
    static const struct {
      const char* token;
      JsonKind kind;
      bool value;
    } kLiterals[] = {{"true", JsonKind::kBool, true},
                     {"false", JsonKind::kBool, false},
                     {"null", JsonKind::kNull, false}};
    for (const auto& lit : kLiterals) {
      size_t len = std::string(lit.token).size();
      if (text_.compare(pos_, len, lit.token) == 0) {
        JsonScalar s;
        s.kind = lit.kind;
        s.b = lit.value;
        s.raw = lit.token;
        for (size_t i = 0; i < len; ++i) Advance();
        (*out_)[path] = std::move(s);
        return util::Status::OK();
      }
    }
    return Error("unknown literal");
  }

  util::Status Number(const std::string& path) {
    size_t start = pos_;
    if (!AtEnd() && Peek() == '-') Advance();
    while (!AtEnd() &&
           (std::isdigit(static_cast<unsigned char>(Peek())) || Peek() == '.' ||
            Peek() == 'e' || Peek() == 'E' || Peek() == '+' || Peek() == '-')) {
      Advance();
    }
    JsonScalar s;
    s.kind = JsonKind::kNumber;
    s.raw = text_.substr(start, pos_ - start);
    char* end = nullptr;
    s.num = std::strtod(s.raw.c_str(), &end);
    if (end == nullptr || *end != '\0' || s.raw.empty()) {
      return Error("malformed number '" + s.raw + "'");
    }
    (*out_)[path] = std::move(s);
    return util::Status::OK();
  }

  util::Status StringToken(std::string* out) {
    STAQ_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      char c = Peek();
      if (c == '"') {
        Advance();
        return util::Status::OK();
      }
      if (c == '\\') {
        Advance();
        if (AtEnd()) return Error("unterminated escape");
        char e = Peek();
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            // \uXXXX: decode the code unit; non-ASCII re-encodes as UTF-8.
            if (pos_ + 4 >= text_.size()) return Error("truncated \\u escape");
            unsigned value = 0;
            for (int i = 1; i <= 4; ++i) {
              char h = text_[pos_ + i];
              value <<= 4;
              if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
              else return Error("bad \\u escape digit");
            }
            if (value < 0x80) {
              out->push_back(static_cast<char>(value));
            } else if (value < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (value >> 6)));
              out->push_back(static_cast<char>(0x80 | (value & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (value >> 12)));
              out->push_back(static_cast<char>(0x80 | ((value >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (value & 0x3F)));
            }
            for (int i = 0; i < 4; ++i) Advance();
            break;
          }
          default:
            return Error("unknown escape");
        }
        Advance();
        continue;
      }
      out->push_back(c);
      Advance();
    }
  }

  const std::string& text_;
  std::map<std::string, JsonScalar>* out_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t line_start_ = 0;
};

}  // namespace

util::Result<JsonDoc> JsonDoc::Parse(const std::string& text) {
  JsonDoc doc;
  Parser parser(text, &doc.entries_);
  STAQ_RETURN_NOT_OK(parser.Run());
  return doc;
}

const JsonScalar* JsonDoc::Find(const std::string& path) const {
  auto it = entries_.find(path);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace staq::exp
