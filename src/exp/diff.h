// The perf-regression diff layer: compares a bench run document against a
// checked-in golden baseline under a declarative tolerance policy.
//
// Policy files (bench/baselines/policy.rules) hold one block per bench:
//
//   # CSA must stay >= 3x the naive profile engine
//   bench labeling {
//     min csa_profile_speedup 3.0
//     ratio_floor modes[2].spqs_per_s 0.50
//     exact bit_identical
//   }
//
// Rule kinds:
//   min <metric> <value>          run metric must be >= value (absolute
//                                 floor — e.g. a speedup gate);
//   ceiling <metric> <value>      run metric must be <= value (absolute
//                                 ceiling — e.g. a p99 budget in ms);
//   ratio_floor <metric> <ratio>  run metric must be >= ratio * baseline
//                                 metric (relative floor — "no more than
//                                 2x slower than the golden run");
//   exact <metric>                run and baseline values must match
//                                 exactly (raw text — for bit_identical
//                                 flags, counts, config echoes).
//
// A metric missing from the run is always a failure (a bench silently
// dropping a gated metric must not pass). ratio_floor/exact additionally
// fail when the baseline lacks the metric. One exception: a quantile
// metric `X_ms` whose sibling `X_approx` is true (in run or baseline) is
// *skipped*, because it was computed from fewer samples than its rank —
// see bench_common.h Summarise().
//
// relax_perf (used under sanitizers, where timings are meaningless) skips
// every min/ceiling/ratio_floor rule and keeps only exact rules.
#pragma once

#include <string>
#include <vector>

#include "exp/json.h"
#include "util/status.h"

namespace staq::exp {

enum class RuleKind { kMin, kCeiling, kRatioFloor, kExact };

const char* RuleKindName(RuleKind kind);

struct Rule {
  RuleKind kind = RuleKind::kMin;
  std::string metric;  // flattened JSON path, e.g. "modes[2].spqs_per_s"
  double value = 0.0;  // threshold / ratio (unused for exact)
};

struct BenchPolicy {
  std::string bench;  // matches BENCH_<bench>.json
  std::vector<Rule> rules;
};

class TolerancePolicy {
 public:
  /// Parses policy text; errors carry "line L, column C".
  static util::Result<TolerancePolicy> Parse(const std::string& text);

  /// Reads and parses a policy file.
  static util::Result<TolerancePolicy> Load(const std::string& path);

  const std::vector<BenchPolicy>& benches() const { return benches_; }

  /// The policy block for a bench, or nullptr if the policy doesn't
  /// cover it.
  const BenchPolicy* Find(const std::string& bench) const;

 private:
  std::vector<BenchPolicy> benches_;
};

enum class CheckState { kPass, kFail, kSkipped };

struct CheckResult {
  Rule rule;
  CheckState state = CheckState::kFail;
  std::string detail;  // human-readable "metric=…, baseline=…, floor=…"
};

struct DiffReport {
  std::vector<CheckResult> checks;
  size_t passed = 0;
  size_t failed = 0;
  size_t skipped = 0;

  bool ok() const { return failed == 0; }

  /// One line per check, prefixed PASS/FAIL/SKIP.
  std::string ToString() const;
};

struct DiffOptions {
  /// Skip perf rules (min/ceiling/ratio_floor), keeping exact rules.
  /// For sanitizer builds, where timings carry no information.
  bool relax_perf = false;
};

/// Checks a run document against its baseline under one bench's rules.
DiffReport DiffDocuments(const JsonDoc& run, const JsonDoc& baseline,
                         const BenchPolicy& policy, const DiffOptions& options);

}  // namespace staq::exp
