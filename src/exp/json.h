// Minimal JSON reader for the experiment harness.
//
// The diff layer compares BENCH_*.json runs against checked-in baselines
// metric by metric, so what it needs is not a DOM but a flat view: every
// scalar in the document addressed by a dotted path ("zones",
// "modes[2].seconds", "wal.append_mean_ms"). JsonDoc::Parse builds exactly
// that — a path -> scalar map — in one recursive-descent pass.
//
// Scope: the grammar the bench emitters produce (objects, arrays, strings
// with escapes, numbers, booleans, null). Parse errors carry line:column
// position, same contract as the experiment-config parser. Numbers keep
// their raw source text alongside the parsed double so exact-match rules
// can compare what was actually printed, not a re-rounded value.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/status.h"

namespace staq::exp {

enum class JsonKind : uint8_t { kNull, kBool, kNumber, kString };

const char* JsonKindName(JsonKind kind);

/// One scalar leaf of a JSON document.
struct JsonScalar {
  JsonKind kind = JsonKind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;  // string value (kString)
  std::string raw;  // exact source text (numbers/bools/null; quoted strings
                    // store the unescaped value here too)

  /// Scalar equality as the diff layer defines it: same kind and same
  /// printed value (numbers compare by raw text, so 3.0 != 3.00 is a
  /// *formatting* change a baseline diff should surface).
  bool SameAs(const JsonScalar& other) const;

  /// Human-readable rendering for diff reports.
  std::string ToString() const;
};

/// A parsed JSON document flattened to path -> scalar.
///
/// Paths: object members join with '.', array elements index with "[i]".
/// A root-level scalar gets path "". Empty objects/arrays contribute no
/// entries.
class JsonDoc {
 public:
  /// Parses `text`; errors name the first offending position as
  /// "json parse error at line L, column C: ...".
  static util::Result<JsonDoc> Parse(const std::string& text);

  /// Looks up a scalar by path; nullptr when absent.
  const JsonScalar* Find(const std::string& path) const;

  bool Has(const std::string& path) const { return Find(path) != nullptr; }

  const std::map<std::string, JsonScalar>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, JsonScalar> entries_;
};

}  // namespace staq::exp
