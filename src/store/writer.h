// Snapshot container writer.
//
// Append-only: sections are buffered one at a time, checksummed per block,
// and streamed to disk; Finish() writes the footer index and the trailer,
// fsyncs, and closes. A Writer whose Finish() was not reached (error or
// injected fault) leaves only an unreadable torn file — readers reject it
// at the trailer check, so a failed save can never be mistaken for a
// snapshot.
//
// Failure sites (util/failpoint.h): "store.writer.open",
// "store.writer.write" (every flush), "store.writer.fsync".
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "store/coding.h"
#include "store/format.h"
#include "util/status.h"

namespace staq::store {

class Writer {
 public:
  Writer() = default;
  ~Writer();

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Creates/truncates `path` and writes the header.
  util::Status Open(const std::string& path);

  /// Appends a section. The payload is consumed (moved) to avoid a copy of
  /// multi-megabyte columns.
  util::Status AddSection(const std::string& name, SectionEncoding encoding,
                          std::vector<uint8_t> payload,
                          uint64_t element_count = 0);

  /// Writes footer + trailer, fsyncs, and closes the file.
  util::Status Finish();

  /// Total payload bytes appended so far (bench accounting).
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  util::Status WriteAll(const void* data, size_t size);
  util::Status Pad(size_t alignment);

  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t offset_ = 0;         // current file offset
  uint64_t bytes_written_ = 0;  // payload bytes (excl. header/footer)
  std::vector<SectionEntry> sections_;
  bool finished_ = false;
};

}  // namespace staq::store
