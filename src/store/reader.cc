#include "store/reader.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/hash.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace staq::store {

namespace {

util::Status IoError(const std::string& what, const std::string& path) {
  return util::Status::IoError(what + " " + path + ": " +
                               std::strerror(errno));
}

}  // namespace

Reader::~Reader() {
  if (map_ != nullptr) ::munmap(map_, file_size_);
}

util::Status Reader::Open(const std::string& path, Options options) {
  if (data_ != nullptr) {
    return util::Status::FailedPrecondition("Reader already open");
  }
  options_ = options;
  path_ = path;
  try {
    STAQ_FAILPOINT("store.reader.open");
  } catch (const std::exception& e) {
    return util::Status::IoError(std::string("open ") + path + ": " +
                                 e.what());
  }

  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoError("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    util::Status status = IoError("stat", path);
    ::close(fd);
    return status;
  }
  file_size_ = static_cast<uint64_t>(st.st_size);
  if (file_size_ < kHeaderSize + kTrailerSize) {
    ::close(fd);
    return util::Status::DataLoss(
        util::Format("%s: %llu bytes is smaller than any snapshot",
                     path.c_str(),
                     static_cast<unsigned long long>(file_size_)));
  }

  if (options_.mode == Mode::kMmap) {
    map_ = ::mmap(nullptr, file_size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map_ == MAP_FAILED) {
      map_ = nullptr;
      // mmap can fail where read() would not (e.g. special filesystems);
      // degrade to buffered rather than failing the load.
      options_.mode = Mode::kBuffered;
    } else {
      data_ = static_cast<const uint8_t*>(map_);
    }
  }
  if (data_ == nullptr) {
    buffer_.resize(file_size_);
    size_t got = 0;
    while (got < buffer_.size()) {
      ssize_t n = ::read(fd, buffer_.data() + got, buffer_.size() - got);
      if (n < 0) {
        util::Status status = IoError("read", path);
        ::close(fd);
        return status;
      }
      if (n == 0) break;  // truncated between stat and read
      got += static_cast<size_t>(n);
    }
    ::close(fd);
    if (got != buffer_.size()) {
      return util::Status::DataLoss(path + ": short read (file truncated)");
    }
    data_ = buffer_.data();
  } else {
    ::close(fd);
  }

  util::Status status = ParseFooter();
  if (!status.ok()) {
    // Leave no half-open state behind: a failed Open is indistinguishable
    // from one never attempted.
    if (map_ != nullptr) {
      ::munmap(map_, file_size_);
      map_ = nullptr;
    }
    buffer_.clear();
    data_ = nullptr;
    sections_.clear();
  }
  return status;
}

util::Status Reader::ParseFooter() {
  uint64_t magic, version_flags;
  std::memcpy(&magic, data_, 8);
  if (magic != kHeaderMagic) {
    return util::Status::InvalidArgument(path_ + ": not a staq snapshot");
  }
  std::memcpy(&version_flags, data_ + 8, 8);
  format_version_ = static_cast<uint32_t>(version_flags);
  if (format_version_ == 0 || format_version_ > kFormatVersion) {
    return util::Status::InvalidArgument(
        util::Format("%s: format version %u not supported (this build reads "
                     "versions 1..%u)",
                     path_.c_str(), format_version_, kFormatVersion));
  }
  // No flag bits are defined yet, so any set bit is either corruption (the
  // flags field is outside every checksum's coverage) or a future feature
  // this build cannot honour — reject both.
  const uint32_t flags = static_cast<uint32_t>(version_flags >> 32);
  if (flags != 0) {
    return util::Status::InvalidArgument(
        util::Format("%s: unknown header flags 0x%x", path_.c_str(), flags));
  }

  const uint8_t* trailer = data_ + file_size_ - kTrailerSize;
  uint64_t footer_offset, footer_digest, tail_magic;
  std::memcpy(&footer_offset, trailer, 8);
  std::memcpy(&footer_digest, trailer + 8, 8);
  std::memcpy(&tail_magic, trailer + 16, 8);
  if (tail_magic != kTrailerMagic) {
    return util::Status::DataLoss(
        path_ + ": trailer magic missing (file truncated or torn write)");
  }
  if (footer_offset < kHeaderSize ||
      footer_offset > file_size_ - kTrailerSize) {
    return util::Status::DataLoss(path_ + ": footer offset out of range");
  }
  footer_offset_ = footer_offset;
  const uint8_t* footer = data_ + footer_offset;
  const size_t footer_size = file_size_ - kTrailerSize - footer_offset;
  if (util::XxHash64(footer, footer_size) != footer_digest) {
    return util::Status::DataLoss(path_ + ": footer checksum mismatch");
  }

  ByteReader in(footer, footer_size);
  uint64_t num_sections;
  if (!in.ReadVarint64(&num_sections) || num_sections > file_size_) {
    return util::Status::InvalidArgument(path_ + ": malformed footer");
  }
  sections_.clear();
  sections_.reserve(static_cast<size_t>(num_sections));
  for (uint64_t i = 0; i < num_sections; ++i) {
    SectionEntry entry;
    uint8_t encoding;
    uint64_t num_blocks;
    if (!in.ReadLengthPrefixed(&entry.name) || !in.ReadFixed(&encoding) ||
        !in.ReadVarint64(&entry.offset) || !in.ReadVarint64(&entry.size) ||
        !in.ReadVarint64(&entry.element_count) ||
        !in.ReadVarint64(&num_blocks) ||
        encoding > static_cast<uint8_t>(SectionEncoding::kStruct)) {
      return util::Status::InvalidArgument(path_ + ": malformed footer");
    }
    entry.encoding = static_cast<SectionEncoding>(encoding);
    // A section must lie inside the payload region and its block count
    // must match its size, or the footer itself is inconsistent.
    if (entry.offset < kHeaderSize || entry.offset + entry.size < entry.offset ||
        entry.offset + entry.size > footer_offset ||
        num_blocks != std::max<uint64_t>(1, (entry.size + kBlockSize - 1) /
                                                kBlockSize)) {
      return util::Status::InvalidArgument(
          path_ + ": section '" + entry.name + "' out of bounds");
    }
    entry.block_checksums.resize(static_cast<size_t>(num_blocks));
    for (uint64_t& digest : entry.block_checksums) {
      if (!in.ReadFixed(&digest)) {
        return util::Status::InvalidArgument(path_ + ": malformed footer");
      }
    }
    sections_.push_back(std::move(entry));
  }
  verified_.assign(sections_.size(), 0);
  return util::Status::OK();
}

const SectionEntry* Reader::Find(const std::string& name) const {
  for (const SectionEntry& s : sections_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

bool Reader::Has(const std::string& name) const {
  return Find(name) != nullptr;
}

util::Status Reader::VerifyBlocks(size_t index) {
  const SectionEntry& s = sections_[index];
  if (verified_[index]) return util::Status::OK();
  const uint8_t* payload = data_ + s.offset;
  for (size_t b = 0; b < s.block_checksums.size(); ++b) {
    const size_t at = b * kBlockSize;
    const size_t n = std::min(kBlockSize, static_cast<size_t>(s.size) - at);
    if (util::XxHash64(payload + at, n) != s.block_checksums[b]) {
      return util::Status::DataLoss(
          util::Format("%s: checksum mismatch in section '%s' block %zu",
                       path_.c_str(), s.name.c_str(), b));
    }
  }
  verified_[index] = 1;
  return util::Status::OK();
}

util::Result<ByteReader> Reader::Section(const std::string& name) {
  if (data_ == nullptr) {
    return util::Status::FailedPrecondition("Reader not open");
  }
  try {
    STAQ_FAILPOINT("store.reader.read");
  } catch (const std::exception& e) {
    return util::Status::IoError(std::string("read ") + path_ + ": " +
                                 e.what());
  }
  const SectionEntry* entry = Find(name);
  if (entry == nullptr) {
    return util::Status::NotFound(path_ + ": no section '" + name + "'");
  }
  if (options_.verify_checksums) {
    STAQ_RETURN_NOT_OK(VerifyBlocks(
        static_cast<size_t>(entry - sections_.data())));
  }
  return ByteReader(data_ + entry->offset,
                    static_cast<size_t>(entry->size));
}

util::Result<ByteReader> Reader::Section(const std::string& name,
                                         SectionEncoding expected) {
  const SectionEntry* entry = Find(name);
  if (entry != nullptr && entry->encoding != expected) {
    return util::Status::InvalidArgument(
        util::Format("%s: section '%s' is %s-encoded, expected %s",
                     path_.c_str(), name.c_str(),
                     SectionEncodingName(entry->encoding),
                     SectionEncodingName(expected)));
  }
  return Section(name);
}

util::Status Reader::VerifyAllBlocks() {
  if (data_ == nullptr) {
    return util::Status::FailedPrecondition("Reader not open");
  }
  for (size_t i = 0; i < sections_.size(); ++i) {
    STAQ_RETURN_NOT_OK(VerifyBlocks(i));
  }
  // Alignment padding between sections is the one region no digest covers;
  // the writer emits zeros there, so any set bit is corruption. With this,
  // every byte of the file is accounted for: header and trailer by magics
  // and version checks, the footer by its digest, payloads by block
  // digests, padding by the all-zeros invariant.
  uint64_t cursor = kHeaderSize;
  for (const SectionEntry& section : sections_) {
    for (uint64_t at = cursor; at < section.offset; ++at) {
      if (data_[at] != 0) {
        return util::Status::DataLoss(
            util::Format("%s: nonzero padding byte at offset %llu",
                         path_.c_str(),
                         static_cast<unsigned long long>(at)));
      }
    }
    cursor = section.offset + section.size;
  }
  for (uint64_t at = cursor; at < footer_offset_; ++at) {
    if (data_[at] != 0) {
      return util::Status::DataLoss(
          util::Format("%s: nonzero padding byte at offset %llu",
                       path_.c_str(), static_cast<unsigned long long>(at)));
    }
  }
  return util::Status::OK();
}

}  // namespace staq::store
