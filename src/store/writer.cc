#include "store/writer.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#ifdef _WIN32
#error "staq::store targets POSIX hosts"
#endif
#include <unistd.h>

#include "util/hash.h"
#include "util/failpoint.h"

namespace staq::store {

namespace {

util::Status IoError(const std::string& what, const std::string& path) {
  return util::Status::IoError(what + " " + path + ": " +
                               std::strerror(errno));
}

}  // namespace

const char* SectionEncodingName(SectionEncoding e) {
  switch (e) {
    case SectionEncoding::kRaw: return "raw";
    case SectionEncoding::kVarint: return "varint";
    case SectionEncoding::kDelta: return "delta";
    case SectionEncoding::kStruct: return "struct";
  }
  return "?";
}

Writer::~Writer() {
  if (file_ != nullptr) std::fclose(file_);
}

util::Status Writer::Open(const std::string& path) {
  if (file_ != nullptr) {
    return util::Status::FailedPrecondition("Writer already open");
  }
  try {
    STAQ_FAILPOINT("store.writer.open");
  } catch (const std::exception& e) {
    return util::Status::IoError(std::string("open ") + path + ": " +
                                 e.what());
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return IoError("open", path);
  path_ = path;

  uint8_t header[kHeaderSize];
  std::memcpy(header, &kHeaderMagic, 8);
  uint32_t version = kFormatVersion;
  uint32_t flags = 0;
  std::memcpy(header + 8, &version, 4);
  std::memcpy(header + 12, &flags, 4);
  return WriteAll(header, sizeof(header));
}

util::Status Writer::WriteAll(const void* data, size_t size) {
  try {
    STAQ_FAILPOINT("store.writer.write");
  } catch (const std::exception& e) {
    return util::Status::IoError(std::string("write ") + path_ + ": " +
                                 e.what());
  }
  if (size > 0 && std::fwrite(data, 1, size, file_) != size) {
    return IoError("write", path_);
  }
  offset_ += size;
  return util::Status::OK();
}

util::Status Writer::Pad(size_t alignment) {
  static const uint8_t zeros[16] = {0};
  size_t misalign = static_cast<size_t>(offset_ % alignment);
  if (misalign == 0) return util::Status::OK();
  return WriteAll(zeros, alignment - misalign);
}

util::Status Writer::AddSection(const std::string& name,
                                SectionEncoding encoding,
                                std::vector<uint8_t> payload,
                                uint64_t element_count) {
  if (file_ == nullptr || finished_) {
    return util::Status::FailedPrecondition("Writer not open");
  }
  // 8-byte payload alignment so raw double/u64 columns are directly
  // addressable through the reader's mmap view.
  STAQ_RETURN_NOT_OK(Pad(8));

  SectionEntry entry;
  entry.name = name;
  entry.encoding = encoding;
  entry.offset = offset_;
  entry.size = payload.size();
  entry.element_count = element_count;
  for (size_t at = 0; at < payload.size(); at += kBlockSize) {
    size_t n = std::min(kBlockSize, payload.size() - at);
    entry.block_checksums.push_back(util::XxHash64(payload.data() + at, n));
  }
  // Zero-length sections still carry one digest (of the empty block) so
  // "section exists" and "section verified" stay the same statement.
  if (payload.empty()) entry.block_checksums.push_back(util::XxHash64(nullptr, 0));

  STAQ_RETURN_NOT_OK(WriteAll(payload.data(), payload.size()));
  bytes_written_ += payload.size();
  sections_.push_back(std::move(entry));
  return util::Status::OK();
}

util::Status Writer::Finish() {
  if (file_ == nullptr || finished_) {
    return util::Status::FailedPrecondition("Writer not open");
  }
  STAQ_RETURN_NOT_OK(Pad(8));
  const uint64_t footer_offset = offset_;

  std::vector<uint8_t> footer;
  PutVarint64(&footer, sections_.size());
  for (const SectionEntry& s : sections_) {
    PutLengthPrefixed(&footer, s.name);
    footer.push_back(static_cast<uint8_t>(s.encoding));
    PutVarint64(&footer, s.offset);
    PutVarint64(&footer, s.size);
    PutVarint64(&footer, s.element_count);
    PutVarint64(&footer, s.block_checksums.size());
    for (uint64_t digest : s.block_checksums) PutFixed(&footer, digest);
  }
  STAQ_RETURN_NOT_OK(WriteAll(footer.data(), footer.size()));

  uint8_t trailer[kTrailerSize];
  std::memcpy(trailer, &footer_offset, 8);
  uint64_t footer_digest = util::XxHash64(footer.data(), footer.size());
  std::memcpy(trailer + 8, &footer_digest, 8);
  std::memcpy(trailer + 16, &kTrailerMagic, 8);
  STAQ_RETURN_NOT_OK(WriteAll(trailer, sizeof(trailer)));

  if (std::fflush(file_) != 0) return IoError("flush", path_);
  try {
    STAQ_FAILPOINT("store.writer.fsync");
    if (::fsync(fileno(file_)) != 0) return IoError("fsync", path_);
  } catch (const std::exception& e) {
    return util::Status::IoError(std::string("fsync ") + path_ + ": " +
                                 e.what());
  }
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    return IoError("close", path_);
  }
  file_ = nullptr;
  finished_ = true;
  return util::Status::OK();
}

}  // namespace staq::store
