// Byte-level encoders for snapshot sections.
//
// Three encodings cover every column the snapshot store writes:
//   * fixed — little-endian fixed-width values, memcpy'd in bulk. Used for
//     double columns (IEEE bits round-trip exactly, which the bit-identity
//     guarantee depends on) and anything mmap wants to view in place.
//   * varint — LEB128 unsigned varints; signed values go through zigzag
//     first so small negatives stay short.
//   * delta + zigzag varint — consecutive differences, zigzag'd. The hot
//     integer columns (stop_times, trip sequences, TODAM trips, CSR
//     offsets) are sorted or grouped, so deltas are tiny and the column
//     shrinks 3-6x without a general-purpose compressor.
//
// Every decoder is bounds-checked and returns false instead of reading
// past the end, so a corrupted or truncated section degrades into a clean
// kDataLoss status upstream — never UB. (Checksums catch corruption first
// on the normal path; the decoders stay safe even without them.)
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

namespace staq::store {

// --- encoding --------------------------------------------------------------

inline void PutVarint64(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline void PutZigZag64(std::vector<uint8_t>* out, int64_t v) {
  PutVarint64(out, ZigZagEncode(v));
}

/// Appends `value`'s object representation (little-endian host assumed).
template <typename T>
inline void PutFixed(std::vector<uint8_t>* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t old = out->size();
  out->resize(old + sizeof(T));
  std::memcpy(out->data() + old, &value, sizeof(T));
}

/// Appends a length-prefixed string (varint length + bytes).
inline void PutLengthPrefixed(std::vector<uint8_t>* out,
                              const std::string& s) {
  PutVarint64(out, s.size());
  out->insert(out->end(), s.begin(), s.end());
}

// --- decoding --------------------------------------------------------------

/// A bounds-checked cursor over an immutable byte range (a section payload,
/// possibly living inside an mmap'd file — the cursor never copies).
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : cursor_(data), end_(data + size) {}

  size_t remaining() const { return static_cast<size_t>(end_ - cursor_); }
  bool exhausted() const { return cursor_ == end_; }
  const uint8_t* cursor() const { return cursor_; }

  bool ReadVarint64(uint64_t* out) {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (cursor_ == end_) return false;
      uint8_t byte = *cursor_++;
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        *out = v;
        return true;
      }
    }
    return false;  // > 10 continuation bytes: not a valid varint
  }

  bool ReadZigZag64(int64_t* out) {
    uint64_t raw;
    if (!ReadVarint64(&raw)) return false;
    *out = ZigZagDecode(raw);
    return true;
  }

  template <typename T>
  bool ReadFixed(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) return false;
    std::memcpy(out, cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return true;
  }

  bool ReadLengthPrefixed(std::string* out) {
    uint64_t n;
    if (!ReadVarint64(&n) || n > remaining()) return false;
    out->assign(reinterpret_cast<const char*>(cursor_),
                static_cast<size_t>(n));
    cursor_ += n;
    return true;
  }

  /// Bulk-reads `count` fixed-width values straight out of the underlying
  /// bytes (single memcpy; on the mmap path this is the only copy between
  /// the page cache and the consumer's vector).
  template <typename T>
  bool ReadFixedColumn(size_t count, std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count > remaining() / sizeof(T)) return false;
    out->resize(count);
    std::memcpy(out->data(), cursor_, count * sizeof(T));
    cursor_ += count * sizeof(T);
    return true;
  }

 private:
  const uint8_t* cursor_;
  const uint8_t* end_;
};

// --- column helpers --------------------------------------------------------

/// Delta + zigzag varint encoding of an integer column. Works for any
/// (unsigned or signed) 32/64-bit element type; values are widened to
/// int64, so uint64 columns must stay below 2^63 (every staq id/count does).
template <typename T>
inline void PutDeltaColumn(std::vector<uint8_t>* out,
                           const std::vector<T>& column) {
  PutVarint64(out, column.size());
  int64_t prev = 0;
  for (const T& v : column) {
    int64_t x = static_cast<int64_t>(v);
    PutZigZag64(out, x - prev);
    prev = x;
  }
}

/// Decodes PutDeltaColumn. Returns false on truncation or on a value that
/// does not fit T (corruption must not wrap around into a "valid" id).
template <typename T>
inline bool ReadDeltaColumn(ByteReader* in, std::vector<T>* out) {
  uint64_t count;
  if (!in->ReadVarint64(&count)) return false;
  // A column cannot hold more elements than bytes remain (>= 1 byte per
  // varint), so this bound rejects absurd counts before the resize.
  if (count > in->remaining() + 1) return false;
  out->clear();
  out->reserve(static_cast<size_t>(count));
  int64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    int64_t delta;
    if (!in->ReadZigZag64(&delta)) return false;
    int64_t value = prev + delta;
    if constexpr (std::is_unsigned_v<T>) {
      if (value < 0 ||
          static_cast<uint64_t>(value) > std::numeric_limits<T>::max()) {
        return false;
      }
    } else {
      if (value < std::numeric_limits<T>::min() ||
          value > std::numeric_limits<T>::max()) {
        return false;
      }
    }
    out->push_back(static_cast<T>(value));
    prev = value;
  }
  return true;
}

/// Fixed-width column with a count prefix (doubles, Points, raw structs).
template <typename T>
inline void PutFixedColumn(std::vector<uint8_t>* out,
                           const std::vector<T>& column) {
  PutVarint64(out, column.size());
  const size_t old = out->size();
  out->resize(old + column.size() * sizeof(T));
  if (!column.empty()) {
    std::memcpy(out->data() + old, column.data(), column.size() * sizeof(T));
  }
}

template <typename T>
inline bool ReadFixedColumn(ByteReader* in, std::vector<T>* out) {
  uint64_t count;
  if (!in->ReadVarint64(&count)) return false;
  return in->ReadFixedColumn(static_cast<size_t>(count), out);
}

}  // namespace staq::store
