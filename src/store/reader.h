// Snapshot container reader.
//
// Two read modes behind one API:
//   * kBuffered — the whole file is read into one heap buffer up front
//     (predictable for cold NFS-style storage, no page-fault latency in
//     the decode loop);
//   * kMmap — the file is mapped read-only and sections are decoded
//     directly from the mapping: no read() staging buffer exists, so raw
//     fixed-width columns move page-cache -> destination vector in a
//     single memcpy and varint columns are decoded in place. This is the
//     zero-copy path the large columnar sections (stop_times, TODAM trips,
//     label vectors) use for warm starts.
//
// Open() validates header magic + version and the checksummed footer;
// Section() resolves by name; block checksums of a section are verified on
// first access (memoised) unless Options::verify_checksums is off.
// VerifyAllBlocks() checks every block, for `staq_cli snapshot verify`.
//
// Failure taxonomy: wrong magic / unknown version / malformed footer or
// section -> kInvalidArgument; checksum mismatch or truncation after a
// valid trailer -> kDataLoss; filesystem errors -> kIoError.
//
// Failure sites (util/failpoint.h): "store.reader.open",
// "store.reader.read" (every section access).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "store/coding.h"
#include "store/format.h"
#include "util/status.h"

namespace staq::store {

class Reader {
 public:
  enum class Mode : uint8_t { kBuffered, kMmap };

  struct Options {
    Mode mode = Mode::kMmap;
    /// Verify per-block checksums on first access of each section. Leave
    /// on; benches may switch it off to isolate decode cost.
    bool verify_checksums = true;
  };

  Reader() = default;
  ~Reader();

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  util::Status Open(const std::string& path, Options options);
  util::Status Open(const std::string& path) { return Open(path, Options{}); }

  uint32_t format_version() const { return format_version_; }
  uint64_t file_size() const { return file_size_; }
  Reader::Mode mode() const { return options_.mode; }

  /// Footer entries in file order (for `snapshot inspect`).
  const std::vector<SectionEntry>& sections() const { return sections_; }

  bool Has(const std::string& name) const;

  /// Resolves a section and returns a bounds-checked cursor over its
  /// payload (pointing into the mapping or the file buffer — valid while
  /// the Reader lives). Verifies the section's block checksums on first
  /// access when enabled.
  util::Result<ByteReader> Section(const std::string& name);

  /// Like Section() but also enforces the expected encoding, so a decode
  /// path can never run against bytes written by a different encoder.
  util::Result<ByteReader> Section(const std::string& name,
                                   SectionEncoding expected);

  /// Verifies every block of every section. Returns kDataLoss naming the
  /// first bad (section, block) pair.
  util::Status VerifyAllBlocks();

 private:
  const SectionEntry* Find(const std::string& name) const;
  util::Status VerifyBlocks(size_t index);
  util::Status ParseFooter();

  Options options_;
  std::string path_;
  uint64_t file_size_ = 0;
  uint64_t footer_offset_ = 0;
  uint32_t format_version_ = 0;

  // Exactly one of these backs `data_`.
  std::vector<uint8_t> buffer_;          // kBuffered
  void* map_ = nullptr;                  // kMmap
  const uint8_t* data_ = nullptr;

  std::vector<SectionEntry> sections_;
  std::vector<uint8_t> verified_;  // per section: block checksums passed
};

}  // namespace staq::store
